# Convenience entry points; each is a thin wrapper over the go tool so
# CI and contributors run exactly the same commands.

GO ?= go

.PHONY: build test race lint fuzz-smoke bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Authorization-safety analyzers (docs/ANALYSIS.md) plus the doc
# cross-reference check. Fails on any finding; waive only with an
# //authlint:ignore comment carrying a reason.
lint:
	$(GO) run ./cmd/authlint ./...

# Replay the RSL fuzz corpus and probe briefly for new crashers —
# the same smoke CI runs.
fuzz-smoke:
	$(GO) test ./internal/rsl/ -run '^$$' -fuzz 'FuzzParse$$' -fuzztime=10s
	$(GO) test ./internal/rsl/ -run '^$$' -fuzz 'FuzzParseSpec$$' -fuzztime=10s

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

check: build test lint
