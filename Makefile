# Convenience entry points; each is a thin wrapper over the go tool so
# CI and contributors run exactly the same commands.

GO ?= go

.PHONY: build test race lint analyze fuzz-smoke bench bench-obs bench-audit bench-policy bench-load load-smoke conformance cluster-soak verify-audit check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Authorization-safety analyzers (docs/ANALYSIS.md) plus the doc
# cross-reference check. Fails on any finding; waive only with an
# //authlint:ignore comment carrying a reason.
lint:
	$(GO) run ./cmd/authlint ./...

# Static policy semantics analysis (docs/POLICY-ANALYSIS.md) over the
# example policies, with the site file marked local so the conflict
# pass runs — the same check CI's policy-analyze step does.
analyze:
	$(GO) run ./cmd/policycheck -analyze \
		-policy examples/policies/nfc-vo.policy \
		-policy examples/policies/nfc-local.policy \
		-local examples/policies/nfc-local.policy

# Replay the RSL fuzz corpus and probe briefly for new crashers —
# the same smoke CI runs.
fuzz-smoke:
	$(GO) test ./internal/rsl/ -run '^$$' -fuzz 'FuzzParse$$' -fuzztime=10s
	$(GO) test ./internal/rsl/ -run '^$$' -fuzz 'FuzzParseSpec$$' -fuzztime=10s
	$(GO) test ./internal/policy/ -run '^$$' -fuzz 'FuzzCompiledEquivalence$$' -fuzztime=10s
	$(GO) test ./internal/policy/analyze/ -run '^$$' -fuzz 'FuzzAnalyze$$' -fuzztime=10s

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# The paper-scenario conformance suite under the race detector — the
# same run CI's conformance job does.
conformance:
	$(GO) test -race -run 'TestConformance' -v .

# The federated-cluster chaos soak (docs/CLUSTER.md): three nodes, one
# resource, node kills, a publisher partition and a mid-traffic policy
# revocation under the race detector — the same run CI's cluster-soak
# job does.
cluster-soak:
	$(GO) test -race -timeout 120s -run 'TestClusterSoak' -v .

# Machine-readable observability benchmark series (P5/P7/P10).
bench-obs:
	$(GO) test -run=NONE -bench 'BenchmarkP5_ParallelPDP|BenchmarkP7_SessionResumption|BenchmarkP10_TraceOverhead' -benchtime=1x -json . | tee BENCH_obs.json

# Machine-readable audit-pipeline series (P11): append throughput,
# tuning knobs and the full-stack overhead pair (docs/PERFORMANCE.md).
bench-audit:
	$(GO) test -run=NONE -bench 'BenchmarkP11_AuditThroughput' -benchtime=1x -json . | tee BENCH_audit.json

# Machine-readable compiled-policy-engine series (P12): the
# interpreted-vs-compiled sweep at 1k-1M rules across the three
# workload shapes, compile cost, and the 1M-distinct-subject uniform
# workload (docs/PERFORMANCE.md).
bench-policy:
	$(GO) test -run=NONE -bench 'BenchmarkP12_CompiledPolicy' -benchtime=1x -json . | tee BENCH_policy.json

# Tier-1 slice of the P13 full-stack load harness: a small closed-loop
# mixed-traffic run against a real gatekeeper (loadsmoke_test.go).
load-smoke:
	$(GO) test -run 'TestLoadSmoke' -v .

# The full P13 experiment grid (docs/PERFORMANCE.md): closed- and
# open-loop load against the full service stack, up to a million
# synthetic identities, written to BENCH_load.json at the repo root —
# the baseline cmd/benchdiff compares CI runs against.
bench-load:
	$(GO) run ./scripts/experiments

# Run the conformance suite with each test writing a real sealed
# segment log, then prove every log's integrity with cmd/auditverify —
# the end-to-end tamper-evidence loop (docs/AUDIT.md).
verify-audit:
	rm -rf /tmp/gridauth-conformance-audit
	CONFORMANCE_AUDIT_DIR=/tmp/gridauth-conformance-audit $(GO) test -run 'TestConformance' .
	$(GO) run ./cmd/auditverify -dir /tmp/gridauth-conformance-audit

check: build test lint analyze
