package gridauth

// Benchmark harness regenerating the paper's evaluation artifacts and the
// performance characterization rows of DESIGN.md's experiment index
// (E1/E2/E3/E5/E6/E8 and P1-P5). EXPERIMENTS.md records the measured
// series next to the paper's qualitative claims.
//
// Run everything with:
//
//	go test -bench=. -benchmem .

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridauth/internal/accounts"
	"gridauth/internal/akenti"
	"gridauth/internal/audit"
	"gridauth/internal/cas"
	"gridauth/internal/core"
	"gridauth/internal/gram"
	"gridauth/internal/gridmap"
	"gridauth/internal/gsi"
	"gridauth/internal/jobcontrol"
	"gridauth/internal/obs"
	"gridauth/internal/policy"
	"gridauth/internal/resilience"
	"gridauth/internal/rsl"
	"gridauth/internal/sandbox"
	"gridauth/internal/workload"
)

// benchFabric caches the expensive fixtures across benchmarks.
type benchFabric struct {
	fab   *Fabric
	users []workload.User
	creds map[gsi.DN]*gsi.Credential
	voPol *policy.Policy
	local *policy.Policy
}

func newBenchFabric(b *testing.B, nUsers int) *benchFabric {
	b.Helper()
	fab, err := NewFabric("/O=Grid/CN=Bench CA")
	if err != nil {
		b.Fatal(err)
	}
	users := workload.NFCUsers(nUsers/3+1, nUsers/3+1, nUsers/3+1)
	creds := make(map[gsi.DN]*gsi.Credential, len(users))
	for _, u := range users {
		c, err := fab.IssueUser(string(u.DN))
		if err != nil {
			b.Fatal(err)
		}
		creds[u.DN] = c
	}
	voPol, err := workload.NFCPolicy(users)
	if err != nil {
		b.Fatal(err)
	}
	local, err := workload.NFCLocalPolicy()
	if err != nil {
		b.Fatal(err)
	}
	return &benchFabric{fab: fab, users: users, creds: creds, voPol: voPol, local: local}
}

func (bf *benchFabric) gridMap() map[gsi.DN][]string {
	m := make(map[gsi.DN][]string, len(bf.users))
	for i, u := range bf.users {
		m[u.DN] = []string{"acct" + strconv.Itoa(i)}
	}
	return m
}

func (bf *benchFabric) resource(b *testing.B, mode Mode) *Resource {
	b.Helper()
	cfg := ResourceConfig{
		Name:    "bench.anl.gov",
		CPUs:    1 << 20, // effectively unbounded so submissions never queue
		Mode:    mode,
		GridMap: bf.gridMap(),
	}
	if mode == ModeCallout {
		cfg.VOPolicy = bf.voPol.Unparse()
		cfg.LocalPolicy = bf.local.Unparse()
	}
	res, err := bf.fab.StartResource(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(res.Close)
	return res
}

func (bf *benchFabric) client(b *testing.B, res *Resource, dn gsi.DN) *gram.Client {
	b.Helper()
	c, err := res.Client(bf.creds[dn])
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	return c
}

const benchAnalystJob = `&(executable=TRANSP)(directory=/sandbox/services)(jobtag=NFC)(count=2)(simduration=60)`

// BenchmarkE1_Fig1_BaselineGRAM measures the Figure 1 baseline: a full
// submit→status→cancel conversation through stock-GT2 authorization over
// real TCP.
func BenchmarkE1_Fig1_BaselineGRAM(b *testing.B) {
	bf := newBenchFabric(b, 3)
	res := bf.resource(b, ModeLegacy)
	ana := analystOf(bf)
	c := bf.client(b, res, ana)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		contact, err := c.Submit(benchAnalystJob, "")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Status(contact); err != nil {
			b.Fatal(err)
		}
		if err := c.Cancel(contact); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2_Fig2_ExtendedGRAM measures the same conversation with the
// Figure 2 extension active: authorization callouts on startup and on
// both management requests. The delta vs E1 is the price of fine-grain
// policy.
func BenchmarkE2_Fig2_ExtendedGRAM(b *testing.B) {
	bf := newBenchFabric(b, 3)
	res := bf.resource(b, ModeCallout)
	ana := analystOf(bf)
	c := bf.client(b, res, ana)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		contact, err := c.Submit(benchAnalystJob, "")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Status(contact); err != nil {
			b.Fatal(err)
		}
		if err := c.Cancel(contact); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_Fig3_PolicyEval measures evaluation of the paper's Figure 3
// policy for the narrated permit and deny cases.
func BenchmarkE3_Fig3_PolicyEval(b *testing.B) {
	pol := policy.MustParse(`
/O=Grid/O=Globus/OU=mcs.anl.gov: &(action = start)(jobtag != NULL)
/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu:
  &(action = start)(executable = test1)(directory = /sandbox/test)(jobtag = ADS)(count<4)
  &(action = start)(executable = test2)(directory = /sandbox/test)(jobtag = NFC)(count<4)
/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey:
  &(action = start)(executable = TRANSP)(directory = /sandbox/test)(jobtag = NFC)
  &(action=cancel)(jobtag=NFC)
`, "VO:NFC")
	const boDN = gsi.DN("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu")
	const kateDN = gsi.DN("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey")
	permit := &policy.Request{Subject: boDN, Action: policy.ActionStart,
		Spec: mustBenchSpec(b, `&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=3)`)}
	deny := &policy.Request{Subject: boDN, Action: policy.ActionStart,
		Spec: mustBenchSpec(b, `&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=8)`)}
	manage := &policy.Request{Subject: kateDN, Action: policy.ActionCancel, JobOwner: boDN,
		Spec: mustBenchSpec(b, `&(executable=test2)(directory=/sandbox/test)(jobtag=NFC)`)}
	b.Run("permit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if d := pol.Evaluate(permit); !d.Allowed {
				b.Fatal(d.Reason)
			}
		}
	})
	b.Run("deny", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if d := pol.Evaluate(deny); d.Allowed {
				b.Fatal("permitted")
			}
		}
	})
	b.Run("vo-wide-cancel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if d := pol.Evaluate(manage); !d.Allowed {
				b.Fatal(d.Reason)
			}
		}
	})
}

// BenchmarkE5_CalloutDispatch measures the callout registry's dispatch
// cost as the number of configured PDPs grows, for both PEP placements
// (the dispatch itself is placement-independent; placements differ in
// transport cost, covered by E1/E2).
func BenchmarkE5_CalloutDispatch(b *testing.B) {
	users := workload.NFCUsers(1, 1, 1)
	voPol, err := workload.NFCPolicy(users)
	if err != nil {
		b.Fatal(err)
	}
	req := &core.Request{
		Subject: users[1].DN,
		Action:  policy.ActionStart,
		Spec:    mustBenchSpec(b, benchAnalystJob),
	}
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("pdps=%d", n), func(b *testing.B) {
			reg := core.NewRegistry()
			for i := 0; i < n; i++ {
				reg.Bind(core.CalloutJobManager, &core.PolicyPDP{Policy: voPol})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if d := reg.Invoke(core.CalloutJobManager, req); d.Effect != core.Permit {
					b.Fatal(d.Reason)
				}
			}
		})
	}
}

// BenchmarkE6_EnforcementModes compares the per-decision cost of the
// three enforcement vehicles of §6.1: gateway policy evaluation, account
// rights checks, and sandbox usage polling.
func BenchmarkE6_EnforcementModes(b *testing.B) {
	users := workload.NFCUsers(1, 1, 1)
	voPol, err := workload.NFCPolicy(users)
	if err != nil {
		b.Fatal(err)
	}
	req := &policy.Request{
		Subject: users[1].DN,
		Action:  policy.ActionStart,
		Spec:    mustBenchSpec(b, benchAnalystJob),
	}
	b.Run("gateway-policy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if d := voPol.Evaluate(req); !d.Allowed {
				b.Fatal(d.Reason)
			}
		}
	})
	b.Run("account-rights", func(b *testing.B) {
		mgr := accounts.NewManager()
		acct := mgr.AddStatic("ana", accounts.Rights{MaxCPUs: 64, DiskQuotaMB: 10_000, MaxWallTime: 48 * time.Hour})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := acct.CheckJob(2, 100, time.Hour); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, jobs := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("sandbox-poll/jobs=%d", jobs), func(b *testing.B) {
			cluster := jobcontrol.NewCluster(1 << 20)
			mon := sandbox.NewMonitor(cluster, false)
			for i := 0; i < jobs; i++ {
				j, err := cluster.Submit(jobcontrol.JobSpec{Executable: "w", Count: 1, Duration: 1000 * time.Hour})
				if err != nil {
					b.Fatal(err)
				}
				mon.Attach(j.ID, sandbox.Limits{MaxCPUSeconds: 1 << 40, MaxMemoryMB: 1 << 20})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if vs := mon.Poll(); len(vs) != 0 {
					b.Fatal("unexpected violation")
				}
			}
		})
	}
}

// BenchmarkE8_NFCWorkload pushes the §2 National Fusion Collaboratory
// request mix (80% starts, 20% management, 10% non-conforming) through
// the combined VO+local decision chain.
func BenchmarkE8_NFCWorkload(b *testing.B) {
	users := workload.NFCUsers(10, 10, 2)
	voPol, err := workload.NFCPolicy(users)
	if err != nil {
		b.Fatal(err)
	}
	local, err := workload.NFCLocalPolicy()
	if err != nil {
		b.Fatal(err)
	}
	chain := core.NewCombined(core.RequireAllPermit,
		&core.PolicyPDP{Policy: voPol}, &core.PolicyPDP{Policy: local})
	stream := workload.RequestStream(users, 4096, 2003, 0.9)
	b.ResetTimer()
	permits := 0
	for i := 0; i < b.N; i++ {
		r := stream[i%len(stream)]
		d := chain.Authorize(&core.Request{
			Subject: r.Subject, Action: r.Action, JobOwner: r.Owner, Spec: r.Spec,
		})
		if d.Effect == core.Permit {
			permits++
		}
	}
	b.ReportMetric(float64(permits)/float64(b.N), "permit-fraction")
}

// BenchmarkP1_StartupAuthzOverhead measures end-to-end job startup over
// TCP as the policy grows: the legacy baseline vs callout mode with n
// statements. This is the quantitative form of the paper's implicit
// claim that fine-grain authorization is affordable at job-startup
// granularity.
func BenchmarkP1_StartupAuthzOverhead(b *testing.B) {
	bf := newBenchFabric(b, 3)
	ana := analystOf(bf)

	b.Run("legacy", func(b *testing.B) {
		res := bf.resource(b, ModeLegacy)
		c := bf.client(b, res, ana)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Submit(benchAnalystJob, ""); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, n := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("callout/rules=%d", n), func(b *testing.B) {
			// n filler statements for other users plus the real grants.
			filler, err := workload.SyntheticPolicy(workload.NFCUsers(0, 0, 50), n, 1, 3)
			if err != nil {
				b.Fatal(err)
			}
			pol := bf.voPol.Merge(filler)
			res, err := bf.fab.StartResource(ResourceConfig{
				Name: "p1.anl.gov", CPUs: 1 << 20, Mode: ModeCallout,
				GridMap: bf.gridMap(), VOPolicy: pol.Unparse(),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(res.Close)
			c := bf.client(b, res, ana)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Submit(benchAnalystJob, ""); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP2_PolicyScaling sweeps policy size and shape for the pure
// evaluation path, comparing the naive linear statement scan against the
// compiled engine (the ablation DESIGN.md calls out; P12 extends the
// sweep to 1M rules and distinct shapes).
func BenchmarkP2_PolicyScaling(b *testing.B) {
	users := workload.NFCUsers(0, 200, 0)
	for _, stmts := range []int{10, 100, 1000, 5000} {
		pol, err := workload.SyntheticPolicy(users, stmts, 2, 4)
		if err != nil {
			b.Fatal(err)
		}
		idx := policy.Compile(pol)
		// A request matching the LAST statement (worst case for linear).
		last := stmts - 1
		u := users[last%len(users)]
		spec := rsl.NewSpec().
			Set("executable", fmt.Sprintf("exe%d-0", last)).
			Set("attr2", "v2").Set("attr3", "v3")
		req := &policy.Request{Subject: u.DN, Action: policy.ActionStart, Spec: spec}
		b.Run(fmt.Sprintf("linear/statements=%d", stmts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pol.Evaluate(req)
			}
		})
		b.Run(fmt.Sprintf("compiled/statements=%d", stmts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				idx.Evaluate(req)
			}
		})
	}
}

// BenchmarkP3_RSLParse measures job-description parse+canonicalize
// throughput as descriptions grow.
func BenchmarkP3_RSLParse(b *testing.B) {
	for _, n := range []int{5, 20, 50, 200} {
		text := workload.SyntheticRSL(n)
		b.Run(fmt.Sprintf("attrs=%d", n), func(b *testing.B) {
			b.SetBytes(int64(len(text)))
			for i := 0; i < b.N; i++ {
				if _, err := rsl.ParseSpec(text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP4_PDPBackends runs the same NFC start decision through the
// three backends the paper integrated: plaintext policy files, Akenti
// use conditions, and CAS restricted credentials.
func BenchmarkP4_PDPBackends(b *testing.B) {
	bf := newBenchFabric(b, 3)
	ana := analystOf(bf)
	spec := mustBenchSpec(b, benchAnalystJob)

	b.Run("plainfile", func(b *testing.B) {
		pdp := &core.PolicyPDP{Policy: bf.voPol}
		req := &core.Request{Subject: ana, Action: policy.ActionStart, Spec: spec}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if d := pdp.Authorize(req); d.Effect != core.Permit {
				b.Fatal(d.Reason)
			}
		}
	})
	b.Run("akenti", func(b *testing.B) {
		stakeholder, err := bf.fab.IssueService("/O=Grid/CN=Stakeholder")
		if err != nil {
			b.Fatal(err)
		}
		engine := akenti.NewEngine()
		engine.TrustStakeholder(stakeholder.Leaf())
		engine.TrustAttributeIssuer(stakeholder.Leaf())
		uc := &akenti.UseCondition{
			Resource:     "gram:bench",
			Actions:      []string{policy.ActionStart},
			Requirements: []akenti.Requirement{{Attribute: "member", Value: "NFC"}},
			Constraint:   "(executable = TRANSP EFIT)(count<=64)",
			NotBefore:    time.Now().Add(-time.Minute),
			NotAfter:     time.Now().Add(24 * time.Hour),
		}
		if err := akenti.SignUseCondition(uc, stakeholder); err != nil {
			b.Fatal(err)
		}
		if err := engine.AddUseCondition(uc); err != nil {
			b.Fatal(err)
		}
		ac := &akenti.AttributeCertificate{
			Subject: ana, Attribute: "member", Value: "NFC",
			NotBefore: time.Now().Add(-time.Minute), NotAfter: time.Now().Add(24 * time.Hour),
		}
		if err := akenti.SignAttribute(ac, stakeholder); err != nil {
			b.Fatal(err)
		}
		if err := engine.StoreAttribute(ac); err != nil {
			b.Fatal(err)
		}
		pdp := &akenti.PDP{Engine: engine, Resource: "gram:bench"}
		req := &core.Request{Subject: ana, Action: policy.ActionStart, Spec: spec}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if d := pdp.Authorize(req); d.Effect != core.Permit {
				b.Fatal(d.Reason)
			}
		}
	})
	b.Run("cas", func(b *testing.B) {
		casCred, err := bf.fab.IssueService("/O=Grid/CN=Bench CAS")
		if err != nil {
			b.Fatal(err)
		}
		server := cas.NewServer("NFC", casCred, bf.voPol)
		grant, err := server.Grant(ana)
		if err != nil {
			b.Fatal(err)
		}
		pdp := &cas.PDP{Community: "NFC", Cert: server.Certificate()}
		req := &core.Request{
			Subject: ana, Action: policy.ActionStart, Spec: spec,
			Assertions: []*gsi.Assertion{grant},
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if d := pdp.Authorize(req); d.Effect != core.Permit {
				b.Fatal(d.Reason)
			}
		}
	})
}

// BenchmarkP5_GRAMEndToEnd measures concurrent submit+cancel round trips
// through real sockets at increasing client parallelism.
func BenchmarkP5_GRAMEndToEnd(b *testing.B) {
	bf := newBenchFabric(b, 3)
	ana := analystOf(bf)
	for _, par := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients=%d", par), func(b *testing.B) {
			res := bf.resource(b, ModeCallout)
			b.SetParallelism(par)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				c, err := res.Client(bf.creds[ana])
				if err != nil {
					b.Error(err)
					return
				}
				defer c.Close()
				for pb.Next() {
					contact, err := c.Submit(benchAnalystJob, "")
					if err != nil {
						b.Error(err)
						return
					}
					if err := c.Cancel(contact); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// latencyPDP wraps a PDP with a fixed evaluation delay, modelling the
// remote round trip of a networked PDP (an Akenti server, a CAS query)
// that the in-process backends do not pay.
type latencyPDP struct {
	inner core.PDP
	delay time.Duration
}

func (p *latencyPDP) Name() string { return p.inner.Name() }
func (p *latencyPDP) Authorize(req *core.Request) core.Decision {
	time.Sleep(p.delay)
	return p.inner.Authorize(req)
}

// BenchmarkP5_ParallelPDP compares sequential and parallel evaluation
// of a 4-PDP chain whose members each carry a simulated 200µs callout
// latency (the regime the parallel combiner exists for). The sequential
// chain pays the SUM of the latencies, the parallel chain roughly the
// MAX; the acceptance bar for this PR is >=2x at 4 PDPs.
func BenchmarkP5_ParallelPDP(b *testing.B) {
	users := workload.NFCUsers(1, 1, 1)
	voPol, err := workload.NFCPolicy(users)
	if err != nil {
		b.Fatal(err)
	}
	local, err := workload.NFCLocalPolicy()
	if err != nil {
		b.Fatal(err)
	}
	req := &core.Request{
		Subject: users[1].DN,
		Action:  policy.ActionStart,
		Spec:    mustBenchSpec(b, benchAnalystJob),
	}
	const delay = 200 * time.Microsecond
	for _, n := range []int{2, 4, 8} {
		pdps := make([]core.PDP, n)
		for i := range pdps {
			pol := voPol
			if i%2 == 1 {
				pol = local
			}
			pdps[i] = &latencyPDP{inner: &core.PolicyPDP{Policy: pol}, delay: delay}
		}
		b.Run(fmt.Sprintf("sequential/pdps=%d", n), func(b *testing.B) {
			chain := core.NewCombined(core.RequireAllPermit, pdps...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if d := chain.Authorize(req); d.Effect != core.Permit {
					b.Fatal(d.Reason)
				}
			}
		})
		b.Run(fmt.Sprintf("parallel/pdps=%d", n), func(b *testing.B) {
			chain := core.NewParallelCombined(core.RequireAllPermit, pdps...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if d := chain.Authorize(req); d.Effect != core.Permit {
					b.Fatal(d.Reason)
				}
			}
		})
	}
}

// BenchmarkP6_DecisionCache measures the sharded decision cache on
// repeated identical requests dispatched through the registry: the
// uncached series re-evaluates the VO+local chain every time, the
// cached series serves digests-matched hits. The acceptance bar is
// >=10x on the in-process chain; with a simulated 200µs remote PDP the
// gap is larger still.
func BenchmarkP6_DecisionCache(b *testing.B) {
	users := workload.NFCUsers(1, 1, 1)
	voPol, err := workload.NFCPolicy(users)
	if err != nil {
		b.Fatal(err)
	}
	local, err := workload.NFCLocalPolicy()
	if err != nil {
		b.Fatal(err)
	}
	req := &core.Request{
		Subject: users[1].DN,
		Action:  policy.ActionStart,
		Spec:    mustBenchSpec(b, benchAnalystJob),
	}
	// A production-size VO policy: the real grants plus 1000 synthetic
	// statements for other users (same shape as P1/P2).
	filler, err := workload.SyntheticPolicy(workload.NFCUsers(0, 0, 50), 1000, 2, 4)
	if err != nil {
		b.Fatal(err)
	}
	bigPol := voPol.Merge(filler)
	newReg := func(cache bool, big bool, remoteDelay time.Duration) *core.Registry {
		reg := core.NewRegistry()
		pol := voPol
		if big {
			pol = bigPol
		}
		var vo core.PDP = &core.PolicyPDP{Policy: pol}
		if remoteDelay > 0 {
			vo = &latencyPDP{inner: vo, delay: remoteDelay}
		}
		reg.Bind(core.CalloutJobManager, vo)
		reg.Bind(core.CalloutJobManager, &core.PolicyPDP{Policy: local})
		if cache {
			// The maximum permitted TTL, so the benchmark measures the hit
			// path, not TTL churn.
			reg.SetCalloutOptions(core.CalloutJobManager, core.CalloutOptions{
				Cache: true, CacheTTL: core.MaxCacheTTL,
			})
		}
		return reg
	}
	run := func(b *testing.B, reg *core.Registry) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			if d := reg.Invoke(core.CalloutJobManager, req); d.Effect != core.Permit {
				b.Fatal(d.Reason)
			}
		}
	}
	b.Run("uncached", func(b *testing.B) { run(b, newReg(false, false, 0)) })
	b.Run("cached", func(b *testing.B) { run(b, newReg(true, false, 0)) })
	b.Run("uncached-rules=1000", func(b *testing.B) { run(b, newReg(false, true, 0)) })
	b.Run("cached-rules=1000", func(b *testing.B) { run(b, newReg(true, true, 0)) })
	b.Run("uncached-remote", func(b *testing.B) { run(b, newReg(false, false, 200*time.Microsecond)) })
	b.Run("cached-remote", func(b *testing.B) { run(b, newReg(true, false, 200*time.Microsecond)) })
	b.Run("cached-parallel-clients", func(b *testing.B) {
		reg := newReg(true, false, 0)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if d := reg.Invoke(core.CalloutJobManager, req); d.Effect != core.Permit {
					b.Error(d.Reason)
					return
				}
			}
		})
	})
}

// BenchmarkP7_SessionResumption compares a full GSI mutual handshake
// (chain transfer, chain verification, per-leg signatures) against a
// ticket resumption (one round trip, HMAC checks only) over real TCP.
// The acceptance bar for this PR is >=5x.
func BenchmarkP7_SessionResumption(b *testing.B) {
	ca, err := gsi.NewCA("/O=Grid/CN=P7 CA")
	if err != nil {
		b.Fatal(err)
	}
	trust := gsi.NewTrustStore(ca.Certificate())
	user, err := ca.Issue("/O=Grid/CN=P7 User", gsi.KindUser)
	if err != nil {
		b.Fatal(err)
	}
	proxy, err := gsi.Delegate(user, time.Hour, false)
	if err != nil {
		b.Fatal(err)
	}
	gkCred, err := ca.Issue("/O=Grid/CN=P7 Gatekeeper", gsi.KindService)
	if err != nil {
		b.Fatal(err)
	}
	issuer, err := gsi.NewTicketIssuer(0)
	if err != nil {
		b.Fatal(err)
	}
	acceptor := gsi.NewAuthenticator(gkCred, trust, gsi.WithTicketIssuer(issuer))

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				if _, _, err := acceptor.HandshakeAccept(conn); err != nil {
					return
				}
				// Hold the connection until the client hangs up.
				_, _ = conn.Read(make([]byte, 1))
			}(conn)
		}
	}()
	addr := l.Addr().String()

	handshake := func(b *testing.B, auth *gsi.Authenticator, wantResumed bool) {
		b.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		peer, _, err := auth.HandshakeClient(conn, addr)
		if err != nil {
			b.Fatal(err)
		}
		if peer.Resumed != wantResumed {
			b.Fatalf("resumed = %v, want %v", peer.Resumed, wantResumed)
		}
	}

	b.Run("full", func(b *testing.B) {
		auth := gsi.NewAuthenticator(proxy, trust)
		for i := 0; i < b.N; i++ {
			handshake(b, auth, false)
		}
	})
	b.Run("resumed", func(b *testing.B) {
		auth := gsi.NewAuthenticator(proxy, trust,
			gsi.WithSessionCache(gsi.NewSessionCache()))
		handshake(b, auth, false) // prime: full handshake grants the ticket
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			handshake(b, auth, true)
		}
	})
}

// BenchmarkP8_MultiplexedManagement measures concurrent status requests
// against one gatekeeper whose management path pays a simulated 200µs
// PDP callout (gatekeeper placement — the regime of the paper's remote
// Akenti integration, where per-request latency is dominated by the
// authorization round trip). Increasing in-flight depth over ONE shared
// multiplexed connection overlaps those callouts; a 4-connection fleet
// serves as the pre-multiplexing reference. The acceptance bar is
// one-connection throughput scaling with in-flight depth.
func BenchmarkP8_MultiplexedManagement(b *testing.B) {
	ca, err := gsi.NewCA("/O=Grid/CN=P8 CA")
	if err != nil {
		b.Fatal(err)
	}
	trust := gsi.NewTrustStore(ca.Certificate())
	const userDN = gsi.DN("/O=Grid/CN=P8 User")
	user, err := ca.Issue(userDN, gsi.KindUser)
	if err != nil {
		b.Fatal(err)
	}
	proxy, err := gsi.Delegate(user, time.Hour, false)
	if err != nil {
		b.Fatal(err)
	}
	gkCred, err := ca.Issue("/O=Grid/CN=P8 Gatekeeper", gsi.KindService)
	if err != nil {
		b.Fatal(err)
	}
	gmap := gridmap.New()
	gmap.Add(userDN, "p8acct")
	pol := policy.MustParse(string(userDN)+`:
  &(action = start)(executable = TRANSP)(jobtag = NFC)
  &(action = cancel information signal)(jobowner = self)
`, "VO:P8")
	reg := core.NewRegistry()
	reg.Bind(core.CalloutGatekeeper, &latencyPDP{
		inner: &core.PolicyPDP{Policy: pol},
		delay: 200 * time.Microsecond,
	})
	gk, err := gram.NewGatekeeper(gram.Config{
		Credential:  gkCred,
		Trust:       trust,
		GridMap:     gmap,
		Registry:    reg,
		Mode:        gram.AuthzCallout,
		Placement:   gram.PlacementGatekeeper,
		Cluster:     jobcontrol.NewCluster(1 << 20),
		ConnWorkers: 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = gk.Serve(l) }()
	b.Cleanup(gk.Close)

	newClient := func() *gram.Client {
		c := gram.NewClient(l.Addr().String(), proxy, trust)
		b.Cleanup(c.Close)
		return c
	}
	c := newClient()
	contact, err := c.Submit(benchAnalystJob, "")
	if err != nil {
		b.Fatal(err)
	}

	statusWorkers := func(b *testing.B, clients []*gram.Client, inflight int) {
		b.Helper()
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < inflight; w++ {
			cl := clients[w%len(clients)]
			wg.Add(1)
			go func() {
				defer wg.Done()
				for next.Add(1) <= int64(b.N) {
					if _, err := cl.Status(contact); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}

	for _, inflight := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("one-conn/inflight=%d", inflight), func(b *testing.B) {
			statusWorkers(b, []*gram.Client{c}, inflight)
		})
	}
	b.Run("conns=4/inflight=4", func(b *testing.B) {
		clients := make([]*gram.Client, 4)
		for i := range clients {
			clients[i] = newClient()
			if _, err := clients[i].Status(contact); err != nil { // connect outside the timer
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		statusWorkers(b, clients, 4)
	})
}

// BenchmarkP9_ResilienceOverhead prices the resilience wrapper on the
// happy path: the same registry-dispatched VO+local chain with no
// wrapper, with each protection alone, and with the full stack
// (timeout + retries + breaker) — all on permits, so retries never
// fire and the breaker never opens. The acceptance bar for this PR is
// the full stack within ~5% of unwrapped, on this worst case: an
// in-process chain whose whole unwrapped decision is a few
// microseconds. Both chain PDPs declare core.NonBlockingPDP, so the
// timeout wrapper spends no deadline machinery on them; the per-layer
// costs, including the deadline price a hang-capable PDP pays, are
// isolated by BenchmarkWrapMicro in internal/resilience.
func BenchmarkP9_ResilienceOverhead(b *testing.B) {
	users := workload.NFCUsers(1, 1, 1)
	voPol, err := workload.NFCPolicy(users)
	if err != nil {
		b.Fatal(err)
	}
	local, err := workload.NFCLocalPolicy()
	if err != nil {
		b.Fatal(err)
	}
	req := &core.Request{
		Subject: users[1].DN,
		Action:  policy.ActionStart,
		Spec:    mustBenchSpec(b, benchAnalystJob),
	}
	newReg := func(o core.CalloutOptions) *core.Registry {
		reg := core.NewRegistry()
		resilience.Install(reg, nil, nil)
		reg.Bind(core.CalloutJobManager, &core.PolicyPDP{Policy: voPol})
		reg.Bind(core.CalloutJobManager, &core.PolicyPDP{Policy: local})
		reg.SetCalloutOptions(core.CalloutJobManager, o)
		return reg
	}
	run := func(b *testing.B, reg *core.Registry) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			if d := reg.Invoke(core.CalloutJobManager, req); d.Effect != core.Permit {
				b.Fatal(d.Reason)
			}
		}
	}
	full := core.CalloutOptions{
		PDPTimeout: 250 * time.Millisecond,
		Retries:    2, RetryBackoff: 5 * time.Millisecond,
		Breaker: true, BreakerThreshold: 5, BreakerCooldown: time.Second,
	}
	b.Run("unwrapped", func(b *testing.B) { run(b, newReg(core.CalloutOptions{})) })
	b.Run("timeout", func(b *testing.B) { run(b, newReg(core.CalloutOptions{PDPTimeout: full.PDPTimeout})) })
	b.Run("retries", func(b *testing.B) {
		run(b, newReg(core.CalloutOptions{Retries: full.Retries, RetryBackoff: full.RetryBackoff}))
	})
	b.Run("breaker", func(b *testing.B) {
		run(b, newReg(core.CalloutOptions{Breaker: true,
			BreakerThreshold: full.BreakerThreshold, BreakerCooldown: full.BreakerCooldown}))
	})
	b.Run("full-stack", func(b *testing.B) { run(b, newReg(full)) })
}

// BenchmarkP10_TraceOverhead prices the observability layer in the P5
// regime: a registry-dispatched parallel 4-PDP chain whose members each
// carry a simulated 200µs callout latency (the networked-PDP case the
// gatekeeper actually runs). Three series: observability off, metric
// counters alone, and the full per-request decision trace (request ID,
// span per PDP, retained in a trace store) on top of the counters. The
// acceptance bar for this PR is the traced series within 5% of
// disabled — the span bookkeeping must disappear under a real callout
// round trip.
func BenchmarkP10_TraceOverhead(b *testing.B) {
	users := workload.NFCUsers(1, 1, 1)
	voPol, err := workload.NFCPolicy(users)
	if err != nil {
		b.Fatal(err)
	}
	local, err := workload.NFCLocalPolicy()
	if err != nil {
		b.Fatal(err)
	}
	req := &core.Request{
		Subject: users[1].DN,
		Action:  policy.ActionStart,
		Spec:    mustBenchSpec(b, benchAnalystJob),
	}
	const delay = 200 * time.Microsecond
	newReg := func(m *obs.Metrics) *core.Registry {
		reg := core.NewRegistry()
		for i := 0; i < 4; i++ {
			pol := voPol
			if i%2 == 1 {
				pol = local
			}
			reg.Bind(core.CalloutJobManager, &latencyPDP{inner: &core.PolicyPDP{Policy: pol}, delay: delay})
		}
		reg.SetCalloutOptions(core.CalloutJobManager, core.CalloutOptions{Parallel: true})
		if m != nil {
			reg.SetMetrics(m)
		}
		return reg
	}
	b.Run("disabled", func(b *testing.B) {
		reg := newReg(nil)
		for i := 0; i < b.N; i++ {
			if d := reg.Invoke(core.CalloutJobManager, req); d.Effect != core.Permit {
				b.Fatal(d.Reason)
			}
		}
	})
	b.Run("metrics", func(b *testing.B) {
		reg := newReg(obs.NewMetrics())
		for i := 0; i < b.N; i++ {
			if d := reg.Invoke(core.CalloutJobManager, req); d.Effect != core.Permit {
				b.Fatal(d.Reason)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		reg := newReg(obs.NewMetrics())
		store := obs.NewTraceStore(1024)
		for i := 0; i < b.N; i++ {
			// Per-request trace lifecycle exactly as the gatekeeper runs
			// it: fresh ID and trace, spans recorded during evaluation,
			// summary finished, trace retained.
			rid := obs.NewRequestID()
			tr := obs.NewTrace(rid, string(req.Subject))
			ctx := obs.WithTrace(obs.WithRequestID(context.Background(), rid), tr)
			d := reg.InvokeContext(ctx, core.CalloutJobManager, req)
			if d.Effect != core.Permit {
				b.Fatal(d.Reason)
			}
			tr.Finish(core.CalloutJobManager, req.Action, d.Effect.String(), d.Source, d.Reason)
			store.Publish(tr)
		}
	})
}

// BenchmarkP11_AuditThroughput prices the tamper-evident audit
// pipeline (docs/AUDIT.md). The append series compare the synchronous
// ring (the old audit path) against the asynchronous group-committing
// pipeline across batch sizes, queue capacities and flush intervals —
// the tuning knobs docs/PERFORMANCE.md tabulates. The records=1M
// series appends a million records per iteration and reports sustained
// records/s (the PR's >=1M/s acceptance bar). The fullstack pair
// re-runs the P10 regime — a registry-dispatched parallel 4-PDP chain
// at 200µs simulated callout latency — with auditing off and on; the
// acceptance bar is audited within 5% of disabled, i.e. the hash
// chain, Merkle batching and sealing all disappear behind the writer
// goroutine.
func BenchmarkP11_AuditThroughput(b *testing.B) {
	rec := audit.Record{
		Subject: "/O=Grid/O=NFC/CN=Alan Analyst",
		Action:  policy.ActionStart,
		JobID:   "job-1",
		PDP:     "policy:VO",
		Effect:  core.Permit.String(),
		Source:  "policy:VO",
		Reason:  "granted",
		Elapsed: 180 * time.Microsecond,
	}
	b.Run("sync-ring", func(b *testing.B) {
		log := audit.NewLog(audit.DefaultCapacity)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			log.Append(rec)
		}
	})
	pipeBench := func(cfg audit.Config) func(*testing.B) {
		return func(b *testing.B) {
			log, err := audit.NewPipeline(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				log.Append(rec)
			}
			log.Flush()
			b.StopTimer()
			if err := log.Close(); err != nil {
				b.Fatal(err)
			}
			if n := log.QueueDropped(); n != 0 {
				b.Fatalf("block-mode pipeline dropped %d records", n)
			}
		}
	}
	for _, batch := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("pipeline/batch=%d", batch), pipeBench(audit.Config{Batch: batch}))
	}
	for _, queue := range []int{1024, 65536} {
		b.Run(fmt.Sprintf("pipeline/queue=%d", queue), pipeBench(audit.Config{Queue: queue}))
	}
	for _, flush := range []time.Duration{time.Millisecond, 20 * time.Millisecond} {
		b.Run(fmt.Sprintf("pipeline/flush=%s", flush), pipeBench(audit.Config{FlushInterval: flush}))
	}
	b.Run("records=1M", func(b *testing.B) {
		const n = 1 << 20
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			// The tuned sustained-throughput configuration from
			// docs/PERFORMANCE.md: a large batch amortizes per-commit
			// overhead; the queue is deep enough to ride out commit
			// pauses but not so deep that the GC spends its time scanning
			// pending-record arrays.
			log, err := audit.NewPipeline(audit.Config{Batch: 1024, Queue: 16384})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for j := 0; j < n; j++ {
				log.Append(rec)
			}
			log.Flush()
			b.StopTimer()
			if err := log.Close(); err != nil {
				b.Fatal(err)
			}
			if d := log.QueueDropped(); d != 0 {
				b.Fatalf("dropped %d records", d)
			}
			b.StartTimer()
		}
		b.ReportMetric(float64(b.N)*n/b.Elapsed().Seconds(), "records/s")
	})

	// Full-stack: the P10 networked-callout regime, audited vs not.
	users := workload.NFCUsers(1, 1, 1)
	voPol, err := workload.NFCPolicy(users)
	if err != nil {
		b.Fatal(err)
	}
	local, err := workload.NFCLocalPolicy()
	if err != nil {
		b.Fatal(err)
	}
	req := &core.Request{
		Subject: users[1].DN,
		Action:  policy.ActionStart,
		Spec:    mustBenchSpec(b, benchAnalystJob),
	}
	const delay = 200 * time.Microsecond
	newReg := func() *core.Registry {
		reg := core.NewRegistry()
		for i := 0; i < 4; i++ {
			pol := voPol
			if i%2 == 1 {
				pol = local
			}
			reg.Bind(core.CalloutJobManager, &latencyPDP{inner: &core.PolicyPDP{Policy: pol}, delay: delay})
		}
		reg.SetCalloutOptions(core.CalloutJobManager, core.CalloutOptions{Parallel: true})
		return reg
	}
	b.Run("fullstack/disabled", func(b *testing.B) {
		reg := newReg()
		for i := 0; i < b.N; i++ {
			if d := reg.Invoke(core.CalloutJobManager, req); d.Effect != core.Permit {
				b.Fatal(d.Reason)
			}
		}
	})
	b.Run("fullstack/audited", func(b *testing.B) {
		reg := newReg()
		log, err := audit.NewPipeline(audit.Config{})
		if err != nil {
			b.Fatal(err)
		}
		audit.InstrumentRegistry(reg, core.CalloutJobManager, log)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if d := reg.Invoke(core.CalloutJobManager+".audited", req); d.Effect != core.Permit {
				b.Fatal(d.Reason)
			}
		}
		b.StopTimer()
		if err := log.Close(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkP12_CompiledPolicy prices the compiled policy engine
// (docs/PERFORMANCE.md P12): uncached decision latency at 1k-1M rules
// across the three workload shapes — exact-heavy (per-user statements
// hit the exact-subject bucket), prefix-heavy (group subjects force the
// sorted-prefix search), requirement-heavy (two requirement sets merge
// ahead of every grant) — with the interpreted linear scan as the
// ablation baseline and a compile series pricing the per-update
// rebuild. The permit path must not allocate: each compiled series
// asserts zero allocations before timing. The closing series evaluates
// an exact-heavy 1M-rule policy under a uniform workload touching every
// one of its ~1M distinct subjects, defeating any single-subject
// locality the sweep's 1024-request cycle might enjoy.
func BenchmarkP12_CompiledPolicy(b *testing.B) {
	shapes := []struct {
		name string
		gen  func(int) *policy.Policy
	}{
		{"exact", workload.ExactHeavyPolicy},
		{"prefix", workload.PrefixHeavyPolicy},
		{"req", workload.RequirementHeavyPolicy},
	}
	assertNoAllocs := func(b *testing.B, c *policy.Compiled, reqs []policy.Request) {
		b.Helper()
		i := 0
		if a := testing.AllocsPerRun(64, func() {
			d := c.Evaluate(&reqs[i%len(reqs)])
			i++
			if !d.Allowed {
				b.Fatal(d.Reason)
			}
		}); a != 0 {
			b.Fatalf("permit path allocates: %.1f allocs/op", a)
		}
		// Retire the garbage from policy construction and compilation
		// now; on a single-core box a concurrent mark of the setup heap
		// would otherwise be timed against the zero-allocation loop.
		runtime.GC()
	}
	for _, sh := range shapes {
		for _, rules := range []int{1_000, 10_000, 100_000, 1_000_000} {
			// Policy construction and compilation live inside the series
			// b.Run so a -bench filter that skips a size never builds it
			// (a filtered-out 1M-rule series would otherwise still pay
			// seconds of setup).
			b.Run(fmt.Sprintf("%s/rules=%d", sh.name, rules), func(b *testing.B) {
				pol := sh.gen(rules)
				c := policy.Compile(pol)
				reqs := workload.P12Requests(pol, 1024)
				b.Run("interpreted", func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if d := pol.Evaluate(&reqs[i%len(reqs)]); !d.Allowed {
							b.Fatal(d.Reason)
						}
					}
				})
				b.Run("compiled", func(b *testing.B) {
					assertNoAllocs(b, c, reqs)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if d := c.Evaluate(&reqs[i%len(reqs)]); !d.Allowed {
							b.Fatal(d.Reason)
						}
					}
				})
				b.Run("compile", func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						policy.Compile(pol)
					}
				})
			})
		}
	}
	b.Run("uniform-1M-subjects", func(b *testing.B) {
		// ~1M distinct subjects, one permit-path request each, visited
		// uniformly. The parent run does the setup once; the leaf only
		// evaluates, so b.N escalation never rebuilds the policy.
		pol := workload.ExactHeavyPolicy(1_000_000)
		c := policy.Compile(pol)
		uniform := workload.P12Requests(pol, len(pol.Statements)-1)
		b.Run("compiled", func(b *testing.B) {
			assertNoAllocs(b, c, uniform)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if d := c.Evaluate(&uniform[i%len(uniform)]); !d.Allowed {
					b.Fatal(d.Reason)
				}
			}
		})
	})
}

// BenchmarkAblation_CombineModes compares decision-combination
// algorithms over the same two-source (VO + local) configuration — the
// ablation DESIGN.md calls out for the paper's require-all rule.
func BenchmarkAblation_CombineModes(b *testing.B) {
	users := workload.NFCUsers(1, 1, 1)
	voPol, err := workload.NFCPolicy(users)
	if err != nil {
		b.Fatal(err)
	}
	local, err := workload.NFCLocalPolicy()
	if err != nil {
		b.Fatal(err)
	}
	pdps := []core.PDP{
		&core.PolicyPDP{Policy: voPol},
		&core.PolicyPDP{Policy: local},
	}
	req := &core.Request{
		Subject: users[1].DN,
		Action:  policy.ActionStart,
		Spec:    mustBenchSpec(b, benchAnalystJob),
	}
	modes := []core.CombineMode{
		core.RequireAllPermit, core.DenyOverrides, core.PermitOverrides, core.FirstApplicable,
	}
	for _, mode := range modes {
		b.Run(mode.String(), func(b *testing.B) {
			combined := core.NewCombined(mode, pdps...)
			for i := 0; i < b.N; i++ {
				if d := combined.Authorize(req); d.Effect != core.Permit {
					b.Fatal(d.Reason)
				}
			}
		})
	}
}

// BenchmarkAblation_PEPPlacement compares end-to-end management latency
// with the PEP in the Job Manager vs the Gatekeeper (§6.2).
func BenchmarkAblation_PEPPlacement(b *testing.B) {
	bf := newBenchFabric(b, 3)
	ana := analystOf(bf)
	for _, placement := range []Placement{PlacementJobManager, PlacementGatekeeper} {
		name := "job-manager"
		if placement == PlacementGatekeeper {
			name = "gatekeeper"
		}
		b.Run(name, func(b *testing.B) {
			res, err := bf.fab.StartResource(ResourceConfig{
				Name: "pep.anl.gov", CPUs: 1 << 20, Mode: ModeCallout, Placement: placement,
				GridMap: bf.gridMap(), VOPolicy: bf.voPol.Unparse(), LocalPolicy: bf.local.Unparse(),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(res.Close)
			c := bf.client(b, res, ana)
			contact, err := c.Submit(benchAnalystJob, "")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Status(contact); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- helpers ---

func analystOf(bf *benchFabric) gsi.DN {
	for _, u := range bf.users {
		if u.Role == "analyst" {
			return u.DN
		}
	}
	return bf.users[0].DN
}

func mustBenchSpec(b *testing.B, text string) *rsl.Spec {
	b.Helper()
	s, err := rsl.ParseSpec(text)
	if err != nil {
		b.Fatal(err)
	}
	return s
}
