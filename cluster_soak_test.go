package gridauth

// Federated-cluster chaos soak (docs/CLUSTER.md): three gatekeeper
// nodes front ONE resource — shared scheduler, shared job table,
// replicated policy epochs and replicated GSI ticket secrets from a
// standalone publisher — while concurrent clients with failover lists
// submit and manage jobs. The soak then injects the cluster failure
// modes and asserts the robustness contract end to end:
//
//   - NO SPURIOUS PERMITS, ever: a user the policy never granted is
//     refused by every node through kills, restarts, partitions and
//     policy flips;
//   - node kill + restart: clients redial through their failover list,
//     resume their GSI session on a surviving node (replicated ticket
//     ring), and keep completing work; the restarted node resyncs and
//     rejoins;
//   - partition: a follower cut off from the publisher serves
//     stale-bounded decisions up to max-staleness, then FAILS CLOSED —
//     job startup gets the hard CodeAuthorizationFailure, management
//     the retryable CodeAuthorizationUnavailable — and recovers when
//     the partition heals;
//   - a policy change published at epoch E is enforced by every live
//     node as soon as its follower applies E (bounded by the staleness
//     window), including revocation of a previously working grant;
//   - publisher RESTART: a fresh publisher incarnation (epoch counter
//     back at 0, the documented policy-rollout path) is adopted by the
//     surviving followers, so a rollout via restart is enforced
//     cluster-wide instead of being silently discarded as "older"
//     epochs.
//
// The replication channel runs with mutual GSI authentication — the
// production wiring — so every phase also soaks the handshake path.
//
// Run under -race in CI (make cluster-soak); every failure mode here is
// a concurrency bug by construction.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridauth/internal/cluster"
	"gridauth/internal/core"
	"gridauth/internal/faultinject"
	"gridauth/internal/gram"
	"gridauth/internal/gsi"
	"gridauth/internal/jobcontrol"
	"gridauth/internal/obs"
	"gridauth/internal/policy"
	"gridauth/internal/resilience"
)

const soakSource = "VO"

// Kate may start tagged jobs and manage her own; Eve (mapped to an
// account, so she passes admission) has NO grant and must never be
// permitted.
const soakPolicy = `
/O=Grid/CN=Kate:
  &(action = start)(jobtag = NFC)
  &(action = cancel information signal)(jobowner = self)
`

// soakPolicyRevoked withdraws Kate's start grant but keeps her
// management rights over jobs she already owns.
const soakPolicyRevoked = `
/O=Grid/CN=Kate:
  &(action = cancel information signal)(jobowner = self)
`

const soakJob = `&(executable=sim)(jobtag=NFC)(count=1)`

// soakMaxStaleness is deliberately generous next to the 25ms heartbeat:
// healthy nodes sit far inside it even under -race scheduling noise,
// and the partition phase must wait it out in real time.
const soakMaxStaleness = time.Second

// soakNode is one gatekeeper node of the federation plus its
// replication follower and the knobs the chaos phases pull.
type soakNode struct {
	idx      int
	res      *Resource
	follower *cluster.Follower
	metrics  *obs.Metrics
	stop     func()

	// partitioned makes new publisher dials fail; severing the live
	// stream is done by closing lastConn.
	partitioned atomic.Bool
	connMu      sync.Mutex
	lastConn    net.Conn
}

func (n *soakNode) partition() {
	n.partitioned.Store(true)
	n.connMu.Lock()
	if n.lastConn != nil {
		_ = n.lastConn.Close()
	}
	n.connMu.Unlock()
}

func (n *soakNode) heal() { n.partitioned.Store(false) }

func TestClusterSoak(t *testing.T) {
	fab, err := NewFabric("/O=Grid/CN=Cluster CA")
	if err != nil {
		t.Fatal(err)
	}
	kate, err := fab.IssueUser("/O=Grid/CN=Kate")
	if err != nil {
		t.Fatal(err)
	}
	eve, err := fab.IssueUser("/O=Grid/CN=Eve")
	if err != nil {
		t.Fatal(err)
	}

	// The replication channel is mutually authenticated end to end: the
	// publisher holds a service credential followers pin, and followers
	// present service credentials of their own — exactly the production
	// wiring, so the chaos phases also soak the handshake path.
	pubCred, err := fab.IssueService("/O=Grid/CN=cluster-publisher")
	if err != nil {
		t.Fatal(err)
	}

	// The leader: a standalone publisher seeded with the policy and the
	// ticket secret every node must share.
	pub := cluster.NewPublisher(cluster.PublisherConfig{
		Heartbeat: 25 * time.Millisecond,
		Auth:      gsi.NewAuthenticator(pubCred, fab.Trust),
	})
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = pub.Serve(pl) }()
	t.Cleanup(pub.Close)
	pubAddr := pl.Addr().String()
	if _, err := pub.SetPolicy(soakSource, soakPolicy); err != nil {
		t.Fatal(err)
	}
	leaderRing, err := gsi.NewSecretRing(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if cur, ok := leaderRing.Current(); ok {
		pub.ShareSecret(cur)
	}

	// The federation: ONE scheduler and ONE job table for every node.
	sharedCluster := jobcontrol.NewCluster(64)
	sharedJobs := gram.NewJobTable()
	gridMap := map[gsi.DN][]string{
		kate.Identity(): {"kate"},
		eve.Identity():  {"eve"},
	}

	// startNode builds node i: a follower replica (with a
	// chaos-instrumented publisher dial) wired into a callout-mode
	// resource through PolicyStores + StalenessGuard + shared ring.
	// addr pins the listen address ("" = ephemeral first start).
	startNode := func(i int, addr string) *soakNode {
		t.Helper()
		n := &soakNode{idx: i, metrics: obs.NewMetrics()}
		ring := gsi.NewFollowerSecretRing(time.Minute)
		nodeCred, err := fab.IssueService(fmt.Sprintf("/O=Grid/CN=cluster-node%d", i))
		if err != nil {
			t.Fatal(err)
		}
		dial := func(ctx context.Context, address string) (net.Conn, error) {
			if n.partitioned.Load() {
				return nil, errors.New("soak: partitioned from publisher")
			}
			var d net.Dialer
			c, err := d.DialContext(ctx, "tcp", address)
			if err != nil {
				return nil, err
			}
			n.connMu.Lock()
			n.lastConn = c
			n.connMu.Unlock()
			return c, nil
		}
		n.follower = cluster.NewFollower(cluster.FollowerConfig{
			Addr:              pubAddr,
			Sources:           []string{soakSource},
			Ring:              ring,
			Retry:             resilience.Policy{Attempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 25 * time.Millisecond},
			Dial:              dial,
			Auth:              gsi.NewAuthenticator(nodeCred, fab.Trust),
			PublisherIdentity: pubCred.Identity(),
			Metrics:           n.metrics,
		})
		ctx, cancel := context.WithCancel(context.Background())
		followDone := make(chan struct{})
		go func() {
			defer close(followDone)
			_ = n.follower.Run(ctx)
		}()

		res, err := fab.StartResource(ResourceConfig{
			Name:         fmt.Sprintf("node%d.cluster", i),
			Mode:         ModeCallout,
			Placement:    PlacementGatekeeper, // the recommended cluster placement
			GridMap:      gridMap,
			PolicyStores: []*policy.Store{n.follower.Store(soakSource)},
			ExtraPDPs: []core.PDP{&cluster.StalenessGuard{
				Follower:     n.follower,
				MaxStaleness: soakMaxStaleness,
				Metrics:      n.metrics,
			}},
			SessionTicketRing: ring,
			SharedJobs:        sharedJobs,
			SharedCluster:     sharedCluster,
			Addr:              addr,
			Metrics:           n.metrics,
		})
		if err != nil {
			cancel()
			t.Fatalf("start node %d: %v", i, err)
		}
		n.res = res
		var stopOnce sync.Once
		n.stop = func() {
			stopOnce.Do(func() {
				res.Close()
				cancel()
				<-followDone
			})
		}
		t.Cleanup(n.stop)
		return n
	}

	nodes := make([]*soakNode, 3)
	for i := range nodes {
		nodes[i] = startNode(i, "")
	}
	addrs := []string{nodes[0].res.Addr, nodes[1].res.Addr, nodes[2].res.Addr}
	for _, n := range nodes {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := n.follower.WaitReady(ctx); err != nil {
			t.Fatalf("node %d never synced: %v", n.idx, err)
		}
		cancel()
	}

	waitFor := func(what string, d time.Duration, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(d)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// newFailoverClient builds a client that knows all three nodes.
	newFailoverClient := func(cred *gsi.Credential) *gram.Client {
		t.Helper()
		proxy, err := gsi.Delegate(cred, time.Hour, false)
		if err != nil {
			t.Fatal(err)
		}
		c := gram.NewClient(addrs[0], proxy, fab.Trust)
		c.SetFailover(addrs...)
		c.SetRetryPolicy(resilience.Policy{Attempts: 6, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond})
		t.Cleanup(c.Close)
		return c
	}

	// ---- traffic ----
	var (
		kateOK       atomic.Uint64 // successful permitted submits
		lastContact  atomic.Value  // a recent Kate job contact (string)
		stopTraffic  = make(chan struct{})
		stopKateSub  atomic.Bool // phase 5 stops new Kate submits before the revocation
		trafficGroup sync.WaitGroup
	)
	lastContact.Store("")

	kateClients := make([]*gram.Client, 3)
	for i := range kateClients {
		kateClients[i] = newFailoverClient(kate)
	}
	for _, c := range kateClients {
		c := c
		trafficGroup.Add(1)
		go func() {
			defer trafficGroup.Done()
			for {
				select {
				case <-stopTraffic:
					return
				default:
				}
				if !stopKateSub.Load() {
					if contact, err := c.Submit(soakJob, ""); err == nil {
						kateOK.Add(1)
						lastContact.Store(contact)
						// Manage the job through whichever node answers,
						// then cancel so the shared scheduler never fills.
						_, _ = c.Status(contact)
						_ = c.Cancel(contact)
					}
				} else if contact := lastContact.Load().(string); contact != "" {
					_, _ = c.Status(contact)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	// Eve's stream is the spurious-permit detector: the policy NEVER
	// grants her anything, so through every chaos phase a nil error is
	// an authorization hole.
	eveClient := newFailoverClient(eve)
	trafficGroup.Add(1)
	go func() {
		defer trafficGroup.Done()
		for {
			select {
			case <-stopTraffic:
				return
			default:
			}
			if contact, err := eveClient.Submit(soakJob, ""); err == nil {
				t.Errorf("SPURIOUS PERMIT: ungranted user admitted, contact %s", contact)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	waitFor("baseline traffic", 5*time.Second, func() bool { return kateOK.Load() >= 5 })

	// ---- phase 1: kill the primary node, clients fail over and RESUME ----
	before := kateOK.Load()
	nodes[0].stop()
	waitFor("submissions to keep completing after the node kill", 10*time.Second, func() bool {
		return kateOK.Load() >= before+5
	})
	waitFor("a client to resume its GSI session on a surviving node", 10*time.Second, func() bool {
		for _, c := range kateClients {
			if c.Resumed() {
				return true
			}
		}
		return false
	})

	// Restart the node IN PLACE (same address, so failover lists stay
	// valid) with a fresh follower; it resyncs and rejoins.
	nodes[0] = startNode(0, addrs[0])
	{
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := nodes[0].follower.WaitReady(ctx); err != nil {
			t.Fatalf("restarted node never resynced: %v", err)
		}
		cancel()
	}
	pinned0, err := nodes[0].res.Client(kate)
	if err != nil {
		t.Fatal(err)
	}
	defer pinned0.Close()
	waitFor("the restarted node to serve again", 10*time.Second, func() bool {
		contact, err := pinned0.Submit(soakJob, "")
		if err != nil {
			return false
		}
		_ = pinned0.Cancel(contact)
		return true
	})

	// ---- phase 2: partition a follower; it must fail CLOSED, not open ----
	target := nodes[2]
	target.partition()
	// Give the replication stream its fault-injected last gasp so the
	// disconnect path (not just the dial path) is exercised: the next
	// read on a wrapped conn would reset — here the close above has
	// already severed it; the faultinject wrapper documents the same
	// failure class for the GSI side below.
	time.Sleep(soakMaxStaleness + 300*time.Millisecond)

	pinned2, err := target.res.Client(kate)
	if err != nil {
		t.Fatal(err)
	}
	defer pinned2.Close()
	if _, err := pinned2.Submit(soakJob, ""); !gram.IsAuthorizationFailure(err) {
		t.Errorf("startup on a stale partitioned node = %v, want the hard fail-closed CodeAuthorizationFailure", err)
	}
	if contact := lastContact.Load().(string); contact != "" {
		if _, err := pinned2.Status(contact); !gram.IsAuthorizationUnavailable(err) {
			t.Errorf("management on a stale partitioned node = %v, want the retryable CodeAuthorizationUnavailable", err)
		}
	}
	if target.metrics.ClusterStaleRefusals.Load() == 0 {
		t.Error("staleness guard refused nothing on a partitioned node")
	}

	// Heal: the follower reconnects by itself and the node serves again.
	target.heal()
	waitFor("the healed node to serve again", 10*time.Second, func() bool {
		contact, err := pinned2.Submit(soakJob, "")
		if err != nil {
			return false
		}
		_ = pinned2.Cancel(contact)
		return true
	})

	// ---- phase 3: publish a revocation; every live node enforces it ----
	stopKateSub.Store(true) // stop racing submits, keep management traffic
	time.Sleep(50 * time.Millisecond)
	epochR, err := pub.SetPolicy(soakSource, soakPolicyRevoked)
	if err != nil {
		t.Fatal(err)
	}
	waitFor("all nodes to apply the revocation epoch", soakMaxStaleness+2*time.Second, func() bool {
		for _, n := range nodes {
			if n.follower.Epoch() < epochR {
				return false
			}
		}
		return true
	})
	for _, n := range nodes {
		pinned, err := n.res.Client(kate)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pinned.Submit(soakJob, ""); !gram.IsAuthorizationDenied(err) {
			t.Errorf("node %d after revocation epoch %d: submit = %v, want authorization denial", n.idx, epochR, err)
		}
		pinned.Close()
	}

	// ---- phase 4: RESTART the publisher with edited policy files ----
	// The documented rollout path: kill the admin-host publisher and
	// start a fresh one (new incarnation, epoch counter back at 0)
	// seeded from the edited files — here the re-grant of Kate's start
	// right. Surviving followers sit at a higher pre-restart epoch, so
	// this phase proves they adopt the new incarnation's lower epochs
	// instead of silently discarding them while heartbeats keep their
	// staleness clocks fresh.
	pub.Close()
	pub2 := cluster.NewPublisher(cluster.PublisherConfig{
		Heartbeat: 25 * time.Millisecond,
		Auth:      gsi.NewAuthenticator(pubCred, fab.Trust),
	})
	epochG, err := pub2.SetPolicy(soakSource, soakPolicy)
	if err != nil {
		t.Fatal(err)
	}
	if epochG >= epochR {
		t.Fatalf("restarted publisher minted epoch %d, expected a restart below %d", epochG, epochR)
	}
	if cur, ok := leaderRing.Current(); ok {
		pub2.ShareSecret(cur)
	}
	var pl2 net.Listener
	waitFor("the publisher address to be rebindable", 5*time.Second, func() bool {
		pl2, err = net.Listen("tcp", pubAddr)
		return err == nil
	})
	go func() { _ = pub2.Serve(pl2) }()
	t.Cleanup(pub2.Close)
	for _, n := range nodes {
		n := n
		pinned, err := n.res.Client(kate)
		if err != nil {
			t.Fatal(err)
		}
		waitFor(fmt.Sprintf("node %d to enforce the restarted publisher's re-grant", n.idx),
			soakMaxStaleness+5*time.Second, func() bool {
				contact, err := pinned.Submit(soakJob, "")
				if err != nil {
					return false
				}
				_ = pinned.Cancel(contact)
				return true
			})
		pinned.Close()
	}

	close(stopTraffic)
	trafficGroup.Wait()

	// The GSI-side failure class faultinject models (reset mid-
	// handshake) is what phase 1's kill produced at the socket level;
	// assert the wrapper itself stays deterministic so the soak's
	// chaos is reproducible.
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fc := faultinject.NewConn(a, 1, 0)
	if _, err := fc.Read(make([]byte, 1)); err == nil {
		t.Error("faultinject conn did not reset on schedule")
	}

	t.Logf("soak: %d permitted submissions completed across kills, restarts, partition and revocation", kateOK.Load())
}
