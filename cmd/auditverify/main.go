// Command auditverify proves the integrity of a tamper-evident audit
// log written by the internal/audit pipeline (a directory of
// segment-NNNNNN.jsonl files and their sealed manifests — the
// gatekeeper's -audit-dir output). It re-derives every hash from the
// raw bytes: each batch's Merkle root over its record leaf hashes, the
// hash chain of batch roots from genesis, each segment's root over its
// batches, and the Ed25519 seal over each manifest. Any flipped byte, removed line, reordered
// record or forged manifest makes the derivation diverge, and the tool
// reports where and exits non-zero.
//
// Usage:
//
//	auditverify -dir /var/log/gridauth-audit            # verify everything
//	auditverify -dir DIR -seq 1234                      # + inclusion proof for record 1234
//	auditverify -dir DIR -key <hex ed25519 public key>  # pin the sealing identity
//
// When -dir itself holds no segment files, each immediate subdirectory
// that does is verified independently (the layout the conformance
// suite emits, one log per test). See docs/AUDIT.md for the format
// specification and a worked tamper-detection example.
package main

import (
	"crypto/ed25519"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"gridauth/internal/audit"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("auditverify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "audit segment directory (required)")
	seq := fs.Int64("seq", -1, "additionally prove inclusion of the record with this sequence number")
	key := fs.String("key", "", "hex Ed25519 public key every seal must verify against (empty: manifest-embedded keys)")
	proofJSON := fs.Bool("proof-json", false, "print the inclusion proof as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dir == "" {
		fmt.Fprintln(stderr, "auditverify: -dir is required")
		return 2
	}
	var pin ed25519.PublicKey
	if *key != "" {
		raw, err := hex.DecodeString(*key)
		if err != nil || len(raw) != ed25519.PublicKeySize {
			fmt.Fprintln(stderr, "auditverify: -key must be a hex Ed25519 public key")
			return 2
		}
		pin = ed25519.PublicKey(raw)
	}

	dirs, err := logDirs(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "auditverify:", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintf(stderr, "auditverify: %s holds no segment files (and no subdirectory does)\n", *dir)
		return 1
	}
	failed := false
	for _, d := range dirs {
		rep, err := audit.VerifyDir(d, pin)
		if err != nil {
			fmt.Fprintf(stdout, "FAIL %s: %v\n", d, err)
			failed = true
			continue
		}
		sealed := 0
		for _, s := range rep.Segments {
			if s.Sealed {
				sealed++
			}
		}
		fmt.Fprintf(stdout, "ok   %s: %d sealed segment(s), %d record(s)", d, sealed, rep.Records)
		if rep.Open > 0 {
			fmt.Fprintf(stdout, " (+%d in an open unsealed segment)", rep.Open)
		}
		fmt.Fprintln(stdout)
	}
	if *seq >= 0 {
		// Inclusion is proven against the single log named by -dir (or
		// its sole segment-holding subdirectory).
		if len(dirs) != 1 {
			fmt.Fprintln(stderr, "auditverify: -seq needs exactly one log directory")
			return 2
		}
		proof, err := audit.ProveInclusion(dirs[0], uint64(*seq), pin)
		if err != nil {
			fmt.Fprintf(stdout, "FAIL inclusion seq=%d: %v\n", *seq, err)
			failed = true
		} else if *proofJSON {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			_ = enc.Encode(proof)
		} else {
			fmt.Fprintf(stdout, "ok   inclusion seq=%d: segment %d, %d+%d proof step(s) to sealed root %s\n",
				proof.Seq, proof.Segment, len(proof.LeafSteps), len(proof.BatchSteps), proof.Root)
		}
	}
	if failed {
		return 1
	}
	return 0
}

// logDirs resolves the directories to verify: dir itself when it holds
// segment files, otherwise each immediate subdirectory that does.
func logDirs(dir string) ([]string, error) {
	if hasSegments(dir) {
		return []string{dir}, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && hasSegments(filepath.Join(dir, e.Name())) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

func hasSegments(dir string) bool {
	matches, err := filepath.Glob(filepath.Join(dir, "segment-*.jsonl"))
	return err == nil && len(matches) > 0
}
