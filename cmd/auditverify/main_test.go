package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gridauth/internal/audit"
)

// writeLog seals a fresh pipeline log of n records into dir.
func writeLog(t *testing.T, dir string, n int) {
	t.Helper()
	sink, err := audit.NewDirSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	log, err := audit.NewPipeline(audit.Config{
		Sink:           sink,
		Batch:          4,
		SegmentRecords: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		log.Append(audit.Record{
			Subject: "/O=Grid/CN=Kate",
			Action:  fmt.Sprintf("start-%d", i),
			PDP:     "p",
			Effect:  "permit",
		})
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerifiesIntactLog(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 25)
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", dir}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on an intact log\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "ok   ") || !strings.Contains(out.String(), "25 record(s)") {
		t.Fatalf("unexpected report: %s", out.String())
	}
}

func TestRunFailsOnTamperedLog(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 25)
	path := filepath.Join(dir, "segment-000000.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte("CN=Kate"), []byte("CN=Kurt"), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("subject not found in segment")
	}
	if err := os.WriteFile(path, tampered, 0o600); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", dir}, &out, &errb); code != 1 {
		t.Fatalf("exit %d on a tampered log, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("no FAIL line: %s", out.String())
	}
}

func TestRunProvesInclusion(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 25)
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", dir, "-seq", "7"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d proving seq 7\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "ok   inclusion seq=7") {
		t.Fatalf("no inclusion line: %s", out.String())
	}
	out.Reset()
	if code := run([]string{"-dir", dir, "-seq", "7", "-proof-json"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d with -proof-json", code)
	}
	if !strings.Contains(out.String(), "\"leafSteps\"") {
		t.Fatalf("no JSON proof emitted: %s", out.String())
	}
}

func TestRunRecursesIntoSubdirectoryLogs(t *testing.T) {
	parent := t.TempDir()
	writeLog(t, filepath.Join(parent, "TestA"), 12)
	writeLog(t, filepath.Join(parent, "TestB"), 15)
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", parent}, &out, &errb); code != 0 {
		t.Fatalf("exit %d over the per-test layout\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if n := strings.Count(out.String(), "ok   "); n != 2 {
		t.Fatalf("verified %d log(s), want 2: %s", n, out.String())
	}
	// Inclusion needs exactly one log to address.
	if code := run([]string{"-dir", parent, "-seq", "1"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for -seq over two logs, want 2", code)
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("exit %d without -dir, want 2", code)
	}
	if code := run([]string{"-dir", t.TempDir()}, &out, &errb); code != 1 {
		t.Fatalf("exit %d on an empty directory, want 1", code)
	}
	if code := run([]string{"-dir", t.TempDir(), "-key", "zz"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d with a malformed -key, want 2", code)
	}
}
