// Command authlint is the repository's authorization-safety
// multichecker: it runs the internal/analysis/authlint analyzer suite
// over Go package patterns and, by default, the doclint documentation
// cross-checker over the repository's markdown. Findings print as
//
//	file:line:col: analyzer: message
//
// and a non-zero exit fails CI. See docs/ANALYSIS.md for the analyzer
// catalogue and the //authlint:ignore suppression convention.
//
// Usage:
//
//	go run ./cmd/authlint ./...        # whole module (CI invocation)
//	go run ./cmd/authlint -list        # print the analyzer catalogue
//	go run ./cmd/authlint -docs=false ./internal/gram
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"

	"gridauth/internal/analysis"
	"gridauth/internal/analysis/authlint"
	"gridauth/internal/doclint"
	"gridauth/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("authlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the analyzers and exit")
	docs := fs.Bool("docs", true, "also cross-check documentation references (doclint)")
	metricsOnly := fs.Bool("metrics-only", false, "only check docs/OBSERVABILITY.md against the metric catalog and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range authlint.All() {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "%-15s %s\n", "doclint", "documentation references (paths, links, symbols) must resolve against the tree")
		fmt.Fprintf(stdout, "%-15s %s\n", "metricsdoc", "docs/OBSERVABILITY.md's metric table must match obs.Catalog() exactly")
		return 0
	}
	if *metricsOnly {
		n, err := runMetricsDoc(stdout)
		if err != nil {
			fmt.Fprintln(stderr, "authlint: metricsdoc:", err)
			return 2
		}
		if n > 0 {
			fmt.Fprintf(stderr, "authlint: %d finding(s)\n", n)
			return 1
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "authlint:", err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		for _, a := range authlint.All() {
			diags, err := analysis.Run(a, pkg)
			if err != nil {
				fmt.Fprintln(stderr, "authlint:", err)
				return 2
			}
			for _, d := range diags {
				fmt.Fprintf(stdout, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), a.Name, d.Message)
				findings++
			}
		}
	}
	if *docs {
		n, err := runDoclint(stdout)
		if err != nil {
			fmt.Fprintln(stderr, "authlint: doclint:", err)
			return 2
		}
		findings += n
		n, err = runMetricsDoc(stdout)
		if err != nil {
			fmt.Fprintln(stderr, "authlint: metricsdoc:", err)
			return 2
		}
		findings += n
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "authlint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// runDoclint applies the documentation cross-checker from the module
// root, so authlint covers code and prose in one invocation.
func runDoclint(stdout io.Writer) (int, error) {
	root, err := moduleRoot()
	if err != nil {
		return 0, err
	}
	files, err := doclint.DefaultDocs(root)
	if err != nil {
		return 0, err
	}
	problems, err := doclint.Check(root, files)
	if err != nil {
		return 0, err
	}
	for _, p := range problems {
		fmt.Fprintf(stdout, "%s:%d: doclint: %q: %s\n", p.File, p.Line, p.Ref, p.Msg)
	}
	return len(problems), nil
}

// runMetricsDoc cross-checks the documented metric catalog against the
// authoritative one: every metric obs.Catalog() exposes must appear as
// a backticked name between the metrics:begin/metrics:end markers of
// docs/OBSERVABILITY.md, and nothing may be documented that the code
// does not export. This keeps `GET /metrics` and its documentation from
// drifting apart — the check fails CI from either direction.
func runMetricsDoc(stdout io.Writer) (int, error) {
	root, err := moduleRoot()
	if err != nil {
		return 0, err
	}
	docPath := filepath.Join(root, "docs", "OBSERVABILITY.md")
	data, err := os.ReadFile(docPath)
	if err != nil {
		return 0, err
	}
	text := string(data)
	const beginMarker, endMarker = "<!-- metrics:begin -->", "<!-- metrics:end -->"
	begin := strings.Index(text, beginMarker)
	end := strings.Index(text, endMarker)
	rel := filepath.ToSlash(filepath.Join("docs", "OBSERVABILITY.md"))
	if begin < 0 || end < 0 || end < begin {
		fmt.Fprintf(stdout, "%s:1: metricsdoc: metric table markers %q/%q missing or out of order\n", rel, beginMarker, endMarker)
		return 1, nil
	}
	table := text[begin+len(beginMarker) : end]
	tableLine := 1 + strings.Count(text[:begin], "\n")

	documented := make(map[string]bool)
	for _, m := range regexp.MustCompile("`([a-z][a-z0-9_]*)`").FindAllStringSubmatch(table, -1) {
		documented[m[1]] = true
	}
	findings := 0
	exported := make(map[string]bool)
	for _, d := range obs.Catalog() {
		exported[d.Name] = true
		if !documented[d.Name] {
			fmt.Fprintf(stdout, "%s:%d: metricsdoc: exported metric %q (%s) is not in the documented catalog\n", rel, tableLine, d.Name, d.Kind)
			findings++
		}
	}
	for name := range documented {
		if !exported[name] {
			fmt.Fprintf(stdout, "%s:%d: metricsdoc: documented metric %q is not exported by obs.Catalog()\n", rel, tableLine, name)
			findings++
		}
	}
	return findings, nil
}

// moduleRoot resolves the enclosing module's directory.
func moduleRoot() (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %v\n%s", err, stderr.String())
	}
	return strings.TrimSpace(string(out)), nil
}
