// Command authlint is the repository's authorization-safety
// multichecker: it runs the internal/analysis/authlint analyzer suite
// over Go package patterns and, by default, the doclint documentation
// cross-checker over the repository's markdown. Findings print as
//
//	file:line:col: analyzer: message
//
// and a non-zero exit fails CI. See docs/ANALYSIS.md for the analyzer
// catalogue and the //authlint:ignore suppression convention.
//
// Usage:
//
//	go run ./cmd/authlint ./...        # whole module (CI invocation)
//	go run ./cmd/authlint -list        # print the analyzer catalogue
//	go run ./cmd/authlint -docs=false ./internal/gram
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"

	"gridauth/internal/analysis"
	"gridauth/internal/analysis/authlint"
	"gridauth/internal/audit"
	"gridauth/internal/doclint"
	"gridauth/internal/obs"
	"gridauth/internal/policy"
	"gridauth/internal/policy/analyze"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("authlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the analyzers and exit")
	docs := fs.Bool("docs", true, "also cross-check documentation references (doclint)")
	pols := fs.Bool("policies", true, "also lint the repository's .policy files (parse everywhere, static analysis outside testdata)")
	metricsOnly := fs.Bool("metrics-only", false, "only check docs/OBSERVABILITY.md against the metric catalog and exit")
	auditOnly := fs.Bool("audit-only", false, "only check docs/AUDIT.md against the audit metric rows and gatekeeper audit flags and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range authlint.All() {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "%-15s %s\n", "doclint", "documentation references (paths, links, symbols) must resolve against the tree")
		fmt.Fprintf(stdout, "%-15s %s\n", "metricsdoc", "docs/OBSERVABILITY.md's metric table must match obs.Catalog() exactly")
		fmt.Fprintf(stdout, "%-15s %s\n", "auditdoc", "docs/AUDIT.md's metric rows and flag table must match obs.Catalog() and audit.FlagCatalog()")
		fmt.Fprintf(stdout, "%-15s %s\n", "policylint", ".policy files must parse, and outside testdata the static semantics analyzer must find no error-severity defect")
		return 0
	}
	if *metricsOnly || *auditOnly {
		findings := 0
		if *metricsOnly {
			n, err := runMetricsDoc(stdout)
			if err != nil {
				fmt.Fprintln(stderr, "authlint: metricsdoc:", err)
				return 2
			}
			findings += n
		}
		if *auditOnly {
			n, err := runAuditDoc(stdout)
			if err != nil {
				fmt.Fprintln(stderr, "authlint: auditdoc:", err)
				return 2
			}
			findings += n
		}
		if findings > 0 {
			fmt.Fprintf(stderr, "authlint: %d finding(s)\n", findings)
			return 1
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "authlint:", err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		for _, a := range authlint.All() {
			diags, err := analysis.Run(a, pkg)
			if err != nil {
				fmt.Fprintln(stderr, "authlint:", err)
				return 2
			}
			for _, d := range diags {
				fmt.Fprintf(stdout, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), a.Name, d.Message)
				findings++
			}
		}
	}
	if *docs {
		n, err := runDoclint(stdout)
		if err != nil {
			fmt.Fprintln(stderr, "authlint: doclint:", err)
			return 2
		}
		findings += n
		n, err = runMetricsDoc(stdout)
		if err != nil {
			fmt.Fprintln(stderr, "authlint: metricsdoc:", err)
			return 2
		}
		findings += n
		n, err = runAuditDoc(stdout)
		if err != nil {
			fmt.Fprintln(stderr, "authlint: auditdoc:", err)
			return 2
		}
		findings += n
	}
	if *pols {
		n, err := runPolicyLint(stdout)
		if err != nil {
			fmt.Fprintln(stderr, "authlint: policylint:", err)
			return 2
		}
		findings += n
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "authlint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// runDoclint applies the documentation cross-checker from the module
// root, so authlint covers code and prose in one invocation.
func runDoclint(stdout io.Writer) (int, error) {
	root, err := moduleRoot()
	if err != nil {
		return 0, err
	}
	files, err := doclint.DefaultDocs(root)
	if err != nil {
		return 0, err
	}
	problems, err := doclint.Check(root, files)
	if err != nil {
		return 0, err
	}
	for _, p := range problems {
		fmt.Fprintf(stdout, "%s:%d: doclint: %q: %s\n", p.File, p.Line, p.Ref, p.Msg)
	}
	return len(problems), nil
}

// runMetricsDoc cross-checks the documented metric catalog against the
// authoritative one: every metric obs.Catalog() exposes must appear as
// a backticked name between the metrics:begin/metrics:end markers of
// docs/OBSERVABILITY.md, and nothing may be documented that the code
// does not export. This keeps `GET /metrics` and its documentation from
// drifting apart — the check fails CI from either direction.
func runMetricsDoc(stdout io.Writer) (int, error) {
	root, err := moduleRoot()
	if err != nil {
		return 0, err
	}
	docPath := filepath.Join(root, "docs", "OBSERVABILITY.md")
	data, err := os.ReadFile(docPath)
	if err != nil {
		return 0, err
	}
	text := string(data)
	const beginMarker, endMarker = "<!-- metrics:begin -->", "<!-- metrics:end -->"
	begin := strings.Index(text, beginMarker)
	end := strings.Index(text, endMarker)
	rel := filepath.ToSlash(filepath.Join("docs", "OBSERVABILITY.md"))
	if begin < 0 || end < 0 || end < begin {
		fmt.Fprintf(stdout, "%s:1: metricsdoc: metric table markers %q/%q missing or out of order\n", rel, beginMarker, endMarker)
		return 1, nil
	}
	table := text[begin+len(beginMarker) : end]
	tableLine := 1 + strings.Count(text[:begin], "\n")

	documented := make(map[string]bool)
	for _, m := range regexp.MustCompile("`([a-z][a-z0-9_]*)`").FindAllStringSubmatch(table, -1) {
		documented[m[1]] = true
	}
	findings := 0
	exported := make(map[string]bool)
	for _, d := range obs.Catalog() {
		exported[d.Name] = true
		if !documented[d.Name] {
			fmt.Fprintf(stdout, "%s:%d: metricsdoc: exported metric %q (%s) is not in the documented catalog\n", rel, tableLine, d.Name, d.Kind)
			findings++
		}
	}
	for name := range documented {
		if !exported[name] {
			fmt.Fprintf(stdout, "%s:%d: metricsdoc: documented metric %q is not exported by obs.Catalog()\n", rel, tableLine, name)
			findings++
		}
	}
	return findings, nil
}

// markedNames extracts the backticked names matching pat between the
// begin/end HTML-comment markers in text. It returns the names, the
// 1-based line of the begin marker (for diagnostics), and ok=false when
// the markers are missing or out of order.
func markedNames(text, begin, end string, pat *regexp.Regexp) (map[string]bool, int, bool) {
	b := strings.Index(text, begin)
	e := strings.Index(text, end)
	if b < 0 || e < 0 || e < b {
		return nil, 0, false
	}
	names := make(map[string]bool)
	for _, m := range pat.FindAllStringSubmatch(text[b+len(begin):e], -1) {
		names[m[1]] = true
	}
	return names, 1 + strings.Count(text[:b], "\n"), true
}

// runAuditDoc cross-checks docs/AUDIT.md against the audit subsystem's
// two operator surfaces: the audit_-prefixed rows of obs.Catalog() must
// match the backticked metric names between the auditmetrics
// begin/end markers, and audit.FlagCatalog() (the gatekeeper's
// -audit-* flags) must match the backticked flag names between the
// auditflags markers. Like metricsdoc, the check fails CI from either
// direction, so adding an audit metric or flag without documenting it
// — or documenting one that no longer exists — is caught.
func runAuditDoc(stdout io.Writer) (int, error) {
	root, err := moduleRoot()
	if err != nil {
		return 0, err
	}
	docPath := filepath.Join(root, "docs", "AUDIT.md")
	data, err := os.ReadFile(docPath)
	if err != nil {
		return 0, err
	}
	text := string(data)
	rel := filepath.ToSlash(filepath.Join("docs", "AUDIT.md"))
	findings := 0

	const mBegin, mEnd = "<!-- auditmetrics:begin -->", "<!-- auditmetrics:end -->"
	documented, line, ok := markedNames(text, mBegin, mEnd,
		regexp.MustCompile("`(audit_[a-z0-9_]*)`"))
	if !ok {
		fmt.Fprintf(stdout, "%s:1: auditdoc: metric table markers %q/%q missing or out of order\n", rel, mBegin, mEnd)
		findings++
	} else {
		exported := make(map[string]bool)
		for _, d := range obs.Catalog() {
			if !strings.HasPrefix(d.Name, "audit_") {
				continue
			}
			exported[d.Name] = true
			if !documented[d.Name] {
				fmt.Fprintf(stdout, "%s:%d: auditdoc: exported audit metric %q (%s) is not in the documented table\n", rel, line, d.Name, d.Kind)
				findings++
			}
		}
		for name := range documented {
			if !exported[name] {
				fmt.Fprintf(stdout, "%s:%d: auditdoc: documented audit metric %q is not exported by obs.Catalog()\n", rel, line, name)
				findings++
			}
		}
	}

	const fBegin, fEnd = "<!-- auditflags:begin -->", "<!-- auditflags:end -->"
	docFlags, line, ok := markedNames(text, fBegin, fEnd,
		regexp.MustCompile("`-(audit-[a-z-]*)`"))
	if !ok {
		fmt.Fprintf(stdout, "%s:1: auditdoc: flag table markers %q/%q missing or out of order\n", rel, fBegin, fEnd)
		findings++
		return findings, nil
	}
	registered := make(map[string]bool)
	for _, f := range audit.FlagCatalog() {
		registered[f.Name] = true
		if !docFlags[f.Name] {
			fmt.Fprintf(stdout, "%s:%d: auditdoc: gatekeeper flag %q is not in the documented flag table\n", rel, line, "-"+f.Name)
			findings++
		}
	}
	for name := range docFlags {
		if !registered[name] {
			fmt.Fprintf(stdout, "%s:%d: auditdoc: documented flag %q is not registered by audit.RegisterFlags\n", rel, line, "-"+name)
			findings++
		}
	}
	return findings, nil
}

// runPolicyLint walks the module tree for .policy files. Every file
// must parse; files outside testdata directories (fixtures
// deliberately contain defects) are additionally run through the
// static semantics analyzer, and any error-severity finding —
// unreachable requirements, community/local conflicts, escalation
// holes — is a lint finding. See docs/POLICY-ANALYSIS.md.
func runPolicyLint(stdout io.Writer) (int, error) {
	root, err := moduleRoot()
	if err != nil {
		return 0, err
	}
	findings := 0
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && strings.HasPrefix(d.Name(), ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".policy") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		pol, perr := policy.ParseString(string(data), rel)
		if perr != nil {
			fmt.Fprintf(stdout, "%s:1: policylint: %v\n", rel, perr)
			findings++
			return nil
		}
		if strings.Contains(rel, "testdata/") {
			return nil
		}
		for _, f := range analyze.Analyze(policy.Compile(pol)).Findings {
			if f.Severity < analyze.SeverityError {
				continue
			}
			fmt.Fprintf(stdout, "%s:%d: policylint: %s: %s\n", f.Source, f.Line, f.Class, f.Message)
			findings++
		}
		return nil
	})
	return findings, err
}

// moduleRoot resolves the enclosing module's directory.
func moduleRoot() (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %v\n%s", err, stderr.String())
	}
	return strings.TrimSpace(string(out)), nil
}
