// Command authlint is the repository's authorization-safety
// multichecker: it runs the internal/analysis/authlint analyzer suite
// over Go package patterns and, by default, the doclint documentation
// cross-checker over the repository's markdown. Findings print as
//
//	file:line:col: analyzer: message
//
// and a non-zero exit fails CI. See docs/ANALYSIS.md for the analyzer
// catalogue and the //authlint:ignore suppression convention.
//
// Usage:
//
//	go run ./cmd/authlint ./...        # whole module (CI invocation)
//	go run ./cmd/authlint -list        # print the analyzer catalogue
//	go run ./cmd/authlint -docs=false ./internal/gram
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"gridauth/internal/analysis"
	"gridauth/internal/analysis/authlint"
	"gridauth/internal/doclint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("authlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the analyzers and exit")
	docs := fs.Bool("docs", true, "also cross-check documentation references (doclint)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range authlint.All() {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "%-15s %s\n", "doclint", "documentation references (paths, links, symbols) must resolve against the tree")
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "authlint:", err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		for _, a := range authlint.All() {
			diags, err := analysis.Run(a, pkg)
			if err != nil {
				fmt.Fprintln(stderr, "authlint:", err)
				return 2
			}
			for _, d := range diags {
				fmt.Fprintf(stdout, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), a.Name, d.Message)
				findings++
			}
		}
	}
	if *docs {
		n, err := runDoclint(stdout)
		if err != nil {
			fmt.Fprintln(stderr, "authlint: doclint:", err)
			return 2
		}
		findings += n
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "authlint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// runDoclint applies the documentation cross-checker from the module
// root, so authlint covers code and prose in one invocation.
func runDoclint(stdout io.Writer) (int, error) {
	root, err := moduleRoot()
	if err != nil {
		return 0, err
	}
	files, err := doclint.DefaultDocs(root)
	if err != nil {
		return 0, err
	}
	problems, err := doclint.Check(root, files)
	if err != nil {
		return 0, err
	}
	for _, p := range problems {
		fmt.Fprintf(stdout, "%s:%d: doclint: %q: %s\n", p.File, p.Line, p.Ref, p.Msg)
	}
	return len(problems), nil
}

// moduleRoot resolves the enclosing module's directory.
func moduleRoot() (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %v\n%s", err, stderr.String())
	}
	return strings.TrimSpace(string(out)), nil
}
