// Command benchdiff compares two BENCH_load.json reports (the P13 load
// harness output, internal/loadgen) and fails when latency regressed:
//
//	benchdiff -baseline BENCH_load.json -current new.json
//
// Every grid point present in both reports is compared on its median
// p99 latency; growth beyond -tolerance percent (default 25) is a
// regression. Points that appear on only one side are reported but
// never fail the diff — grids evolve. CI runs this against the
// committed baseline on every push; see docs/PERFORMANCE.md for the
// commit-message opt-out.
//
// Exit status: 0 when no point regressed, 1 on regression, 2 for usage
// or file errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"gridauth/internal/loadgen"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	baseline := fs.String("baseline", "", "committed baseline report (BENCH_load.json)")
	current := fs.String("current", "", "freshly produced report to compare")
	tolerance := fs.Float64("tolerance", 25, "maximum allowed p99 growth in percent")
	if err := fs.Parse(args); err != nil {
		return 2, nil
	}
	if *baseline == "" || *current == "" {
		return 2, fmt.Errorf("-baseline and -current are both required")
	}
	if *tolerance < 0 {
		return 2, fmt.Errorf("-tolerance must be non-negative")
	}
	base, err := loadgen.LoadReport(*baseline)
	if err != nil {
		return 2, err
	}
	cur, err := loadgen.LoadReport(*current)
	if err != nil {
		return 2, err
	}
	regs, notes, err := loadgen.Diff(base, cur, *tolerance)
	if err != nil {
		return 2, err
	}
	for _, n := range notes {
		fmt.Println("note:", n)
	}
	for _, r := range regs {
		fmt.Printf("REGRESSION %s: p99 %.0fµs -> %.0fµs (+%.1f%%, tolerance %.0f%%)\n",
			r.Point, r.OldP99, r.NewP99, r.ChangePct, *tolerance)
	}
	if len(regs) > 0 {
		return 1, fmt.Errorf("%d point(s) regressed beyond %.0f%%", len(regs), *tolerance)
	}
	fmt.Printf("ok: %d point(s) within %.0f%% of baseline\n", len(cur.Points), *tolerance)
	return 0, nil
}
