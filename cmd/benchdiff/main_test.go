package main

import (
	"os"
	"path/filepath"
	"testing"

	"gridauth/internal/loadgen"
)

func writeReport(t *testing.T, name string, rep *loadgen.Report) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func report(p99ByPoint map[string]float64) *loadgen.Report {
	rep := &loadgen.Report{Schema: loadgen.ReportSchema, Seed: 1}
	for name, p99 := range p99ByPoint {
		rep.Points = append(rep.Points, loadgen.PointSummary{Point: name, P99Micros: p99})
	}
	return rep
}

func TestWithinToleranceExitsZero(t *testing.T) {
	base := writeReport(t, "base.json", report(map[string]float64{"a": 1000, "b": 2000}))
	cur := writeReport(t, "cur.json", report(map[string]float64{"a": 1200, "b": 1500}))
	code, err := run([]string{"-baseline", base, "-current", cur})
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
}

func TestRegressionExitsOne(t *testing.T) {
	base := writeReport(t, "base.json", report(map[string]float64{"a": 1000}))
	cur := writeReport(t, "cur.json", report(map[string]float64{"a": 1300}))
	code, err := run([]string{"-baseline", base, "-current", cur})
	if code != 1 || err == nil {
		t.Fatalf("code=%d err=%v, want 1 with error", code, err)
	}
	// A looser tolerance accepts the same pair.
	code, err = run([]string{"-baseline", base, "-current", cur, "-tolerance", "50"})
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v at 50%% tolerance", code, err)
	}
}

func TestNewAndDroppedPointsAreNotes(t *testing.T) {
	base := writeReport(t, "base.json", report(map[string]float64{"old": 1000}))
	cur := writeReport(t, "cur.json", report(map[string]float64{"new": 9000}))
	code, err := run([]string{"-baseline", base, "-current", cur})
	if err != nil || code != 0 {
		t.Fatalf("disjoint grids must not fail: code=%d err=%v", code, err)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, err := run(nil); code != 2 || err == nil {
		t.Fatalf("missing flags: code=%d err=%v", code, err)
	}
	missing := filepath.Join(t.TempDir(), "none.json")
	if code, _ := run([]string{"-baseline", missing, "-current", missing}); code != 2 {
		t.Fatalf("missing file accepted: code=%d", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o600); err != nil {
		t.Fatal(err)
	}
	good := writeReport(t, "good.json", report(map[string]float64{"a": 1}))
	if code, _ := run([]string{"-baseline", bad, "-current", good}); code != 2 {
		t.Fatalf("corrupt baseline accepted: code=%d", code)
	}
}
