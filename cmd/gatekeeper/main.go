// Command gatekeeper runs a GRAM resource: GSI-authenticated TCP
// endpoint, grid-mapfile admission, fine-grain policy callouts, a
// simulated cluster behind it.
//
// Because the GSI layer is simulated, the gatekeeper bootstraps its own
// trust fabric on first start: it creates a CA, its service credential,
// and a credential for every identity in the grid-mapfile, and writes
// them into the -state directory. The gramclient command reads the same
// directory, so a two-terminal demo is:
//
//	gatekeeper -listen 127.0.0.1:7512 -state /tmp/grid \
//	    -gridmap gridmap -vo-policy vo.policy -local-policy local.policy \
//	    -mode callout
//	gramclient -state /tmp/grid -user "/O=Grid/CN=Alice" \
//	    -server 127.0.0.1:7512 \
//	    submit "&(executable=sim)(count=2)(jobtag=demo)"
//
// The simulated cluster's virtual clock advances in real time: every
// wall-clock second advances the cluster by -tick (default 1s).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"gridauth/internal/accounts"
	"gridauth/internal/audit"
	clusterpkg "gridauth/internal/cluster"
	"gridauth/internal/core"
	"gridauth/internal/gram"
	"gridauth/internal/gridmap"
	"gridauth/internal/gsi"
	"gridauth/internal/jobcontrol"
	"gridauth/internal/obs"
	"gridauth/internal/resilience"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal("gatekeeper: ", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gatekeeper", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7512", "address to listen on")
	state := fs.String("state", "", "state directory for simulated GSI credentials (required)")
	gridmapPath := fs.String("gridmap", "", "grid-mapfile path (required)")
	voPolicy := fs.String("vo-policy", "", "VO policy file")
	localPolicy := fs.String("local-policy", "", "resource owner policy file")
	calloutCfg := fs.String("callout-config", "", "callout configuration file (alternative to -vo-policy/-local-policy)")
	mode := fs.String("mode", "legacy", "authorization mode: legacy or callout")
	placement := fs.String("placement", "job-manager", "PEP placement: job-manager or gatekeeper")
	cpus := fs.Int("cpus", 16, "cluster CPU count")
	dynamic := fs.Bool("dynamic-accounts", false, "lease dynamic accounts for unmapped users")
	tick := fs.Duration("tick", time.Second, "virtual-clock advance per wall-clock second")
	authzParallel := fs.Bool("authz-parallel", false, "evaluate callout PDP chains concurrently")
	authzCache := fs.Bool("authz-cache", false, "cache callout decisions (sharded TTL decision cache)")
	authzCacheTTL := fs.Duration("authz-cache-ttl", 5*time.Second, "decision cache entry lifetime (capped at 60s)")
	authzCacheShards := fs.Int("authz-cache-shards", 16, "decision cache shard count")
	pdpTimeout := fs.Duration("pdp-timeout", 0, "per-PDP callout deadline (overruns become authorization system failures; 0 disables)")
	authzRetries := fs.Int("authz-retries", 0, "extra attempts for a PDP answering transient Error (side-effecting PDPs never retry)")
	authzRetryBackoff := fs.Duration("authz-retry-backoff", 0, "base backoff between authorization retries (0 = default 25ms)")
	breaker := fs.Bool("breaker", false, "trip a per-PDP circuit breaker on consecutive failures")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive failures before the breaker opens (0 = default 5)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (0 = default 5s)")
	ticketLifetime := fs.Duration("ticket-lifetime", 0, "GSI session resumption ticket lifetime (0 = default 10m, negative disables resumption)")
	clusterPublish := fs.String("cluster-publish", "", "serve cluster replication (policy epochs + ticket secrets) to follower nodes on this address (leader role, docs/CLUSTER.md)")
	clusterFollow := fs.String("cluster-follow", "", "replicate policy and ticket secrets from the cluster publisher at this address (follower role)")
	clusterMaxStaleness := fs.Duration("cluster-max-staleness", 0, "refuse to decide once the publisher has been silent this long (0 = default 15s; follower role)")
	clusterAuth := fs.Bool("cluster-auth", true, "mutually authenticate the cluster replication channel with the node's GSI service credential; disable only when the replication port is confined to the trusted admin network")
	connWorkers := fs.Int("conn-workers", 0, "max concurrent requests per multiplexed connection (0 = default 8)")
	handshakeTimeout := fs.Duration("handshake-timeout", 0, "GSI handshake deadline on accepted connections (0 = default 10s, negative disables)")
	idleTimeout := fs.Duration("idle-timeout", 0, "idle connection timeout (0 = default 5m, negative disables)")
	metricsAddr := fs.String("metrics-addr", "", "serve GET /metrics, /trace?id= and /traces on this address (empty disables observability)")
	pprofEnabled := fs.Bool("pprof", false, "expose net/http/pprof handlers on the -metrics-addr server")
	// The tamper-evident audit pipeline (docs/AUDIT.md): -audit-dir,
	// -audit-key, sizing and the queue-full degraded mode. Names,
	// defaults and help live in audit.FlagCatalog so the documented
	// table cannot drift from this daemon.
	auditFlags := audit.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *state == "" || *gridmapPath == "" {
		return fmt.Errorf("-state and -gridmap are required")
	}
	if *pprofEnabled && *metricsAddr == "" {
		return fmt.Errorf("-pprof requires -metrics-addr")
	}
	if *clusterPublish != "" && *clusterFollow != "" {
		return fmt.Errorf("-cluster-publish and -cluster-follow are mutually exclusive: a node is either the leader or a follower")
	}

	// Observability is a unit: -metrics-addr turns on both the metric
	// counters and decision-trace retention, served from one endpoint.
	var (
		metrics *obs.Metrics
		traces  *obs.TraceStore
	)
	if *metricsAddr != "" {
		metrics = obs.NewMetrics()
		traces = obs.NewTraceStore(0)
	}

	// Every decision the daemon acts on is audited through the
	// asynchronous tamper-evident pipeline; Close on shutdown drains
	// the queue and seals the final segment so -audit-dir output is
	// always verifiable by cmd/auditverify.
	auditLog, err := auditFlags.Build(metrics)
	if err != nil {
		return err
	}
	defer func() {
		if err := auditLog.Close(); err != nil {
			log.Printf("gatekeeper: audit close: %v", err)
		}
	}()

	gmapFile, err := os.Open(*gridmapPath)
	if err != nil {
		return err
	}
	gmap, err := gridmap.Parse(gmapFile)
	gmapFile.Close()
	if err != nil {
		return err
	}

	ca, gkCred, trust, err := bootstrapFabric(*state, gmap)
	if err != nil {
		return err
	}
	_ = ca

	acctMgr := accounts.NewManager()
	for _, id := range gmap.Identities() {
		for _, a := range gmap.Accounts(id) {
			if !acctMgr.Exists(a) {
				acctMgr.AddStatic(a, accounts.Rights{})
			}
		}
	}
	if *dynamic {
		acctMgr.ProvisionPool("grid", 32)
	}

	reg := core.NewRegistry()
	core.RegisterBuiltinDrivers(reg)
	gkMode := gram.AuthzLegacy
	if *mode == "callout" {
		gkMode = gram.AuthzCallout
		var lines []string
		if *voPolicy != "" {
			lines = append(lines,
				core.CalloutJobManager+" plainfile path="+*voPolicy+" source=VO",
				core.CalloutGatekeeper+" plainfile path="+*voPolicy+" source=VO")
		}
		if *localPolicy != "" {
			lines = append(lines,
				core.CalloutJobManager+" plainfile path="+*localPolicy+" source=local",
				core.CalloutGatekeeper+" plainfile path="+*localPolicy+" source=local")
		}
		if len(lines) > 0 {
			if err := reg.LoadConfigString(strings.Join(lines, "\n")); err != nil {
				return err
			}
		}
		if *calloutCfg != "" {
			f, err := os.Open(*calloutCfg)
			if err != nil {
				return err
			}
			err = reg.LoadConfig(f)
			f.Close()
			if err != nil {
				return err
			}
		}
		if !reg.Configured(core.CalloutJobManager) && !reg.Configured(core.CalloutGatekeeper) && *clusterFollow == "" {
			return fmt.Errorf("callout mode needs -vo-policy, -local-policy, -callout-config or -cluster-follow")
		}
		// The resilience wrapper has to be installed whether the knobs
		// arrive via flags or via a -callout-config "options" line; it is
		// inert for callout types whose options request nothing. Breaker
		// transitions land in the audit pipeline.
		resilience.Install(reg, auditLog, metrics)
		// Flag-level tuning; a -callout-config "options" line can set the
		// same knobs per callout type and takes effect above.
		if *authzParallel || *authzCache || *pdpTimeout > 0 || *authzRetries > 0 || *breaker {
			o := core.CalloutOptions{
				Parallel:         *authzParallel,
				Cache:            *authzCache,
				CacheTTL:         *authzCacheTTL,
				CacheShards:      *authzCacheShards,
				PDPTimeout:       *pdpTimeout,
				Retries:          *authzRetries,
				RetryBackoff:     *authzRetryBackoff,
				Breaker:          *breaker,
				BreakerThreshold: *breakerThreshold,
				BreakerCooldown:  *breakerCooldown,
			}
			for _, t := range []string{core.CalloutJobManager, core.CalloutGatekeeper} {
				merged := reg.Options(t)
				merged.Parallel = merged.Parallel || o.Parallel
				merged.Cache = merged.Cache || o.Cache
				if merged.CacheTTL == 0 {
					merged.CacheTTL = o.CacheTTL
				}
				if merged.CacheShards == 0 {
					merged.CacheShards = o.CacheShards
				}
				if merged.PDPTimeout == 0 {
					merged.PDPTimeout = o.PDPTimeout
				}
				if merged.Retries == 0 {
					merged.Retries = o.Retries
				}
				if merged.RetryBackoff == 0 {
					merged.RetryBackoff = o.RetryBackoff
				}
				merged.Breaker = merged.Breaker || o.Breaker
				if merged.BreakerThreshold == 0 {
					merged.BreakerThreshold = o.BreakerThreshold
				}
				if merged.BreakerCooldown == 0 {
					merged.BreakerCooldown = o.BreakerCooldown
				}
				reg.SetCalloutOptions(t, merged)
			}
		}
	}
	if metrics != nil {
		reg.SetMetrics(metrics)
	}
	gkPlacement := gram.PlacementJM
	if *placement == "gatekeeper" {
		gkPlacement = gram.PlacementGatekeeper
	}

	// Cluster federation (docs/CLUSTER.md): the leader publishes its
	// policy files and ticket secret as replicated epochs; a follower
	// replaces file-based policy with replicated stores guarded by a
	// staleness bound, and redeems any cluster node's session tickets.
	// The replication channel carries those ticket-sealing secrets, so
	// by default both roles authenticate it with the node's service
	// credential (-cluster-auth=false requires a trusted admin network).
	var ticketRing *gsi.SecretRing
	if *clusterPublish != "" {
		ring, err := gsi.NewSecretRing(gsi.DefaultSecretOverlap)
		if err != nil {
			return err
		}
		ticketRing = ring
		pubCfg := clusterpkg.PublisherConfig{Metrics: metrics}
		if *clusterAuth {
			pubCfg.Auth = gsi.NewAuthenticator(gkCred, trust)
		}
		pub := clusterpkg.NewPublisher(pubCfg)
		for _, src := range []struct{ source, path string }{{"VO", *voPolicy}, {"local", *localPolicy}} {
			if src.path == "" {
				continue
			}
			text, err := os.ReadFile(src.path)
			if err != nil {
				return err
			}
			if _, err := pub.SetPolicy(src.source, string(text)); err != nil {
				return err
			}
		}
		if cur, ok := ring.Current(); ok {
			pub.ShareSecret(cur)
		}
		pl, err := net.Listen("tcp", *clusterPublish)
		if err != nil {
			return err
		}
		go func() { _ = pub.Serve(pl) }()
		defer pub.Close()
		log.Printf("gatekeeper: cluster leader publishing on %s (epoch %d)", pl.Addr(), pub.Epoch())
	}
	if *clusterFollow != "" {
		ticketRing = gsi.NewFollowerSecretRing(gsi.DefaultSecretOverlap)
		followCfg := clusterpkg.FollowerConfig{
			Addr:    *clusterFollow,
			Sources: []string{"VO", "local"},
			Ring:    ticketRing,
			Metrics: metrics,
		}
		if *clusterAuth {
			followCfg.Auth = gsi.NewAuthenticator(gkCred, trust)
		}
		follower := clusterpkg.NewFollower(followCfg)
		if gkMode == gram.AuthzCallout {
			guard := &clusterpkg.StalenessGuard{
				Follower:     follower,
				MaxStaleness: *clusterMaxStaleness,
				Metrics:      metrics,
			}
			for _, t := range []string{core.CalloutJobManager, core.CalloutGatekeeper} {
				reg.Bind(t, guard)
				for _, src := range []string{"VO", "local"} {
					reg.Bind(t, &core.StorePDP{Store: follower.Store(src)})
				}
			}
			for _, src := range []string{"VO", "local"} {
				follower.Store(src).OnChange(reg.InvalidateCaches)
			}
		}
		followCtx, stopFollow := context.WithCancel(context.Background())
		go func() { _ = follower.Run(followCtx) }()
		defer stopFollow()
		log.Printf("gatekeeper: cluster follower syncing from %s", *clusterFollow)
	}

	cluster := jobcontrol.NewCluster(*cpus)
	gk, err := gram.NewGatekeeper(gram.Config{
		Credential:       gkCred,
		Trust:            trust,
		GridMap:          gmap,
		Accounts:         acctMgr,
		DynamicAccounts:  *dynamic,
		Registry:         reg,
		Mode:             gkMode,
		Placement:        gkPlacement,
		Cluster:          cluster,
		TicketLifetime:   *ticketLifetime,
		TicketRing:       ticketRing,
		ConnWorkers:      *connWorkers,
		HandshakeTimeout: *handshakeTimeout,
		IdleTimeout:      *idleTimeout,
		Audit:            auditLog,
		Metrics:          metrics,
		Traces:           traces,
	})
	if err != nil {
		return err
	}

	if *metricsAddr != "" {
		mux := obs.NewServeMux(metrics, traces)
		if *pprofEnabled {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		msrv := &http.Server{Handler: mux}
		go func() { _ = msrv.Serve(ml) }()
		defer msrv.Close()
		log.Printf("gatekeeper: observability on http://%s/metrics (pprof=%v)", ml.Addr(), *pprofEnabled)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	log.Printf("gatekeeper: listening on %s (mode=%s, placement=%s, cpus=%d)", l.Addr(), *mode, *placement, *cpus)

	// Advance the simulated cluster clock in real time.
	stopTicker := make(chan struct{})
	tickerDone := make(chan struct{})
	go func() {
		defer close(tickerDone)
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				cluster.Advance(*tick)
			case <-stopTicker:
				return
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- gk.Serve(l) }()
	select {
	case err := <-serveErr:
		close(stopTicker)
		<-tickerDone
		return err
	case s := <-sig:
		log.Printf("gatekeeper: received %s, shutting down", s)
		gk.Close()
		close(stopTicker)
		<-tickerDone
		return nil
	}
}

// bootstrapFabric creates (or reloads) the simulated trust fabric in the
// state directory: ca.cert, gatekeeper.cred, and users/<n>.cred for each
// grid-mapfile identity.
func bootstrapFabric(dir string, gmap *gridmap.Map) (*gsi.CA, *gsi.Credential, *gsi.TrustStore, error) {
	if err := os.MkdirAll(filepath.Join(dir, "users"), 0o700); err != nil {
		return nil, nil, nil, err
	}
	caCertPath := filepath.Join(dir, "ca.cert")
	caCredPath := filepath.Join(dir, "ca.cred")
	gkCredPath := filepath.Join(dir, "gatekeeper.cred")

	var (
		ca     *gsi.CA
		gkCred *gsi.Credential
	)
	if _, err := os.Stat(caCredPath); err == nil {
		// Existing fabric: a CA credential cannot be rehydrated into a
		// *gsi.CA (it holds unexported state), so a fresh start reuses
		// only the anchors and the gatekeeper credential; user
		// credentials must already exist.
		caCert, err := gsi.LoadCertificate(caCertPath)
		if err != nil {
			return nil, nil, nil, err
		}
		gkCred, err = gsi.LoadCredential(gkCredPath)
		if err != nil {
			return nil, nil, nil, err
		}
		return nil, gkCred, gsi.NewTrustStore(caCert), nil
	}

	ca, err := gsi.NewCA("/O=Grid/CN=Simulated Fabric CA", gsi.WithTTL(30*24*time.Hour))
	if err != nil {
		return nil, nil, nil, err
	}
	if err := gsi.SaveCertificate(ca.Certificate(), caCertPath); err != nil {
		return nil, nil, nil, err
	}
	if err := gsi.SaveCredential(ca.Credential(), caCredPath); err != nil {
		return nil, nil, nil, err
	}
	gkCred, err = ca.Issue("/O=Grid/CN=gatekeeper/local", gsi.KindService)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := gsi.SaveCredential(gkCred, gkCredPath); err != nil {
		return nil, nil, nil, err
	}
	for i, id := range gmap.Identities() {
		cred, err := ca.Issue(id, gsi.KindUser)
		if err != nil {
			return nil, nil, nil, err
		}
		path := filepath.Join(dir, "users", fmt.Sprintf("user%03d.cred", i))
		if err := gsi.SaveCredential(cred, path); err != nil {
			return nil, nil, nil, err
		}
		log.Printf("gatekeeper: issued credential for %s -> %s", id, path)
	}
	return ca, gkCred, gsi.NewTrustStore(ca.Certificate()), nil
}
