package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"gridauth/internal/gridmap"
	"gridauth/internal/gsi"
)

const testMap = `
"/O=Grid/CN=Alice" alice
"/O=Grid/CN=Bob" bob,batch
`

func TestBootstrapFabricFreshAndReload(t *testing.T) {
	dir := t.TempDir()
	gmap, err := gridmap.ParseString(testMap)
	if err != nil {
		t.Fatal(err)
	}
	ca, gkCred, trust, err := bootstrapFabric(dir, gmap)
	if err != nil {
		t.Fatal(err)
	}
	if ca == nil {
		t.Fatalf("fresh bootstrap returned no CA")
	}
	if _, err := trust.Verify(gkCred, time.Now()); err != nil {
		t.Fatalf("gatekeeper credential does not verify: %v", err)
	}

	// Every grid-mapfile identity received a credential that verifies.
	entries, err := os.ReadDir(filepath.Join(dir, "users"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("user credentials = %d, want 2", len(entries))
	}
	seen := map[gsi.DN]bool{}
	for _, e := range entries {
		cred, err := gsi.LoadCredential(filepath.Join(dir, "users", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		id, err := trust.Verify(cred, time.Now())
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		seen[id] = true
	}
	if !seen["/O=Grid/CN=Alice"] || !seen["/O=Grid/CN=Bob"] {
		t.Errorf("identities = %v", seen)
	}

	// Reload path: same directory, no CA object but working credentials.
	ca2, gkCred2, trust2, err := bootstrapFabric(dir, gmap)
	if err != nil {
		t.Fatal(err)
	}
	if ca2 != nil {
		t.Errorf("reload should not mint a new CA")
	}
	if _, err := trust2.Verify(gkCred2, time.Now()); err != nil {
		t.Fatalf("reloaded gatekeeper credential: %v", err)
	}
	if gkCred2.Identity() != gkCred.Identity() {
		t.Errorf("gatekeeper identity changed across reload")
	}
}

func TestRunValidation(t *testing.T) {
	gm := filepath.Join(t.TempDir(), "gridmap")
	if err := os.WriteFile(gm, []byte(testMap), 0o600); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{},                      // missing state+gridmap
		{"-state", t.TempDir()}, // missing gridmap
		{"-gridmap", gm},        // missing state
		{"-state", t.TempDir(), "-gridmap", filepath.Join(t.TempDir(), "nope")}, // unreadable
		{"-state", t.TempDir(), "-gridmap", gm, "-mode", "callout"},             // callout w/o policy
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}
