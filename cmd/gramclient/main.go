// Command gramclient is the user-side GRAM tool (the globusrun role): it
// loads a user credential from the shared state directory written by the
// gatekeeper command, authenticates, and submits or manages jobs.
//
//	gramclient -state /tmp/grid -user "/O=Grid/CN=Alice" -server 127.0.0.1:7512 \
//	    submit "&(executable=sim)(count=2)(jobtag=demo)(simduration=120)"
//	gramclient ... status  gram://local/job/1
//	gramclient ... cancel  gram://local/job/1
//	gramclient ... signal  gram://local/job/1 suspend
//	gramclient ... signal  gram://local/job/1 priority 9
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"gridauth/internal/gram"
	"gridauth/internal/gsi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal("gramclient: ", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gramclient", flag.ContinueOnError)
	state := fs.String("state", "", "state directory shared with the gatekeeper (required)")
	user := fs.String("user", "", "user DN to act as (required)")
	server := fs.String("server", "127.0.0.1:7512", "gatekeeper address")
	account := fs.String("account", "", "requested local account (submit only)")
	assertionPath := fs.String("assertion", "", "VO assertion file to present")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if *state == "" || *user == "" || len(rest) == 0 {
		return fmt.Errorf("usage: gramclient -state DIR -user DN [-server ADDR] submit RSL | status CONTACT | cancel CONTACT | signal CONTACT SIG [ARG]")
	}

	cred, err := findUserCredential(*state, gsi.DN(*user))
	if err != nil {
		return err
	}
	caCert, err := gsi.LoadCertificate(filepath.Join(*state, "ca.cert"))
	if err != nil {
		return err
	}
	proxy, err := gsi.Delegate(cred, 12*time.Hour, false)
	if err != nil {
		return err
	}
	var assertions []*gsi.Assertion
	if *assertionPath != "" {
		a, err := gsi.LoadAssertion(*assertionPath)
		if err != nil {
			return err
		}
		assertions = append(assertions, a)
	}
	client := gram.NewClient(*server, proxy, gsi.NewTrustStore(caCert), assertions...)
	defer client.Close()

	switch rest[0] {
	case "submit":
		if len(rest) != 2 {
			return fmt.Errorf("submit needs exactly one RSL argument")
		}
		contact, err := client.Submit(rest[1], *account)
		if err != nil {
			return err
		}
		fmt.Println(contact)
		return nil
	case "status":
		if len(rest) != 2 {
			return fmt.Errorf("status needs a job contact")
		}
		st, err := client.Status(rest[1])
		if err != nil {
			return err
		}
		fmt.Printf("state:  %s\nowner:  %s\n", st.State, st.Owner)
		if st.Detail != "" {
			fmt.Printf("detail: %s\n", st.Detail)
		}
		return nil
	case "cancel":
		if len(rest) != 2 {
			return fmt.Errorf("cancel needs a job contact")
		}
		return client.Cancel(rest[1])
	case "signal":
		if len(rest) < 3 {
			return fmt.Errorf("signal needs a job contact and a signal name")
		}
		arg := ""
		if len(rest) > 3 {
			arg = rest[3]
		}
		return client.Signal(rest[1], rest[2], arg)
	default:
		return fmt.Errorf("unknown subcommand %q", rest[0])
	}
}

// findUserCredential scans the state directory for the credential whose
// identity matches dn.
func findUserCredential(state string, dn gsi.DN) (*gsi.Credential, error) {
	dir := filepath.Join(state, "users")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		cred, err := gsi.LoadCredential(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		if cred.Identity() == dn {
			return cred, nil
		}
	}
	return nil, fmt.Errorf("no credential for %s under %s (is it in the grid-mapfile?)", dn, dir)
}
