package main

import (
	"os"
	"path/filepath"
	"testing"

	"gridauth/internal/gsi"
)

func TestFindUserCredential(t *testing.T) {
	dir := t.TempDir()
	users := filepath.Join(dir, "users")
	if err := os.MkdirAll(users, 0o700); err != nil {
		t.Fatal(err)
	}
	ca, err := gsi.NewCA("/O=Grid/CN=CA")
	if err != nil {
		t.Fatal(err)
	}
	for _, dn := range []gsi.DN{"/O=Grid/CN=Alice", "/O=Grid/CN=Bob"} {
		cred, err := ca.Issue(dn, gsi.KindUser)
		if err != nil {
			t.Fatal(err)
		}
		if err := gsi.SaveCredential(cred, filepath.Join(users, string(dn.CN())+".cred")); err != nil {
			t.Fatal(err)
		}
	}
	// Noise the scanner must skip.
	if err := os.WriteFile(filepath.Join(users, "garbage"), []byte("not json"), 0o600); err != nil {
		t.Fatal(err)
	}

	cred, err := findUserCredential(dir, "/O=Grid/CN=Bob")
	if err != nil {
		t.Fatal(err)
	}
	if cred.Identity() != "/O=Grid/CN=Bob" {
		t.Errorf("identity = %s", cred.Identity())
	}
	if _, err := findUserCredential(dir, "/O=Grid/CN=Nobody"); err == nil {
		t.Errorf("missing user found")
	}
	if _, err := findUserCredential(t.TempDir(), "/O=Grid/CN=Alice"); err == nil {
		t.Errorf("missing directory tolerated")
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-state", t.TempDir()}, // no user/command
		{"-state", t.TempDir(), "-user", "/O=G/CN=A"}, // no command
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
