// Command gridload is the CLI of the P13 full-stack load harness
// (internal/loadgen): it drives a real in-process gatekeeper — TCP, GSI
// handshakes, callout chain, metrics — with synthetic identities and a
// mixed traffic profile, and reports exact p50/p99/p999 latency, peak
// decisions/sec and the client-vs-/metrics cross-check.
//
// Run a whole experiment grid file (see scripts/experiments/grid.json
// for the schema by example, docs/PERFORMANCE.md for the reference):
//
//	gridload -grid scripts/experiments/grid.json -out BENCH_load.json
//
// Dry-run a grid file without generating any load — schema validation
// plus a probe build of every referenced policy shape:
//
//	gridload -validate -grid scripts/experiments/grid.json
//
// Or run a single ad-hoc point from flags:
//
//	gridload -identities 100000 -requests 5000 -dist zipf -shape prefix
//
// Exit status is 0 on success, 1 when a run records transport errors,
// 2 for usage or validation errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"gridauth/internal/loadgen"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridload:", err)
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("gridload", flag.ContinueOnError)
	gridPath := fs.String("grid", "", "experiment grid file (JSON); overrides the single-point flags")
	validate := fs.Bool("validate", false, "validate the -grid file (schema + referenced policy shapes) without running load")
	out := fs.String("out", "", "write the machine-readable report (BENCH_load.json layout) to this path")
	seed := fs.Int64("seed", 1, "deterministic seed for identities and op streams (single-point mode)")

	identities := fs.Int("identities", 1000, "synthetic identity population (single-point mode)")
	workers := fs.Int("workers", loadgen.DefaultWorkers, "closed-loop worker count")
	requests := fs.Int("requests", 2000, "total operations")
	rate := fs.Float64("rate", 0, "open-loop arrival rate per second (0 = closed loop)")
	dist := fs.String("dist", loadgen.DistUniform, "subject distribution: uniform, zipf or hotkey")
	shape := fs.String("shape", loadgen.ShapeExact, "policy shape: exact, prefix or req")
	rules := fs.Int("rules", loadgen.DefaultRules, "policy statement count")
	resume := fs.Float64("resume", 0, "fraction of GRAM ops forcing session-resumption reconnects")
	full := fs.Float64("full", 0, "fraction of GRAM ops paying a full handshake on a throwaway connection")
	if err := fs.Parse(args); err != nil {
		return 2, nil
	}

	if *validate {
		if *gridPath == "" {
			return 2, fmt.Errorf("-validate requires -grid")
		}
		g, err := loadgen.LoadGrid(*gridPath)
		if err != nil {
			return 2, err
		}
		for i := range g.Points {
			if err := loadgen.ValidatePolicy(&g.Points[i]); err != nil {
				return 2, fmt.Errorf("point %s: %w", g.Points[i].Name, err)
			}
		}
		fmt.Printf("%s: ok (%d points)\n", *gridPath, len(g.Points))
		return 0, nil
	}

	var g *loadgen.Grid
	if *gridPath != "" {
		var err error
		g, err = loadgen.LoadGrid(*gridPath)
		if err != nil {
			return 2, err
		}
	} else {
		if *resume < 0 || *full < 0 || *resume+*full > 1 {
			return 2, fmt.Errorf("-resume and -full must be non-negative and sum to at most 1")
		}
		g = &loadgen.Grid{Seed: *seed, Points: []loadgen.Point{{
			Name:       "adhoc",
			Identities: *identities,
			Workers:    *workers,
			Requests:   *requests,
			Rate:       *rate,
			Dist:       *dist,
			Policy:     loadgen.PolicyShape{Shape: *shape, Rules: *rules},
			Conn:       loadgen.ConnMix{Reuse: 1 - *resume - *full, Resume: *resume, Full: *full},
		}}}
		if err := g.Validate(); err != nil {
			return 2, err
		}
	}

	rep, err := loadgen.RunGrid(g, func(line string) { fmt.Println(line) })
	if err != nil {
		return 2, err
	}
	fmt.Print(rep.Table())
	if *out != "" {
		if err := rep.WriteJSON(*out); err != nil {
			return 2, err
		}
	}
	for _, p := range rep.Points {
		if p.Errors > 0 {
			return 1, fmt.Errorf("point %s recorded %d transport errors", p.Point, p.Errors)
		}
	}
	return 0, nil
}
