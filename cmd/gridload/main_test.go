package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gridauth/internal/loadgen"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

const goodGrid = `{
  "seed": 7,
  "repeats": 1,
  "points": [
    {"name": "a", "identities": 50, "requests": 40, "dist": "uniform",
     "policy": {"shape": "exact", "rules": 16}},
    {"name": "b", "identities": 50, "requests": 40, "dist": "zipf",
     "policy": {"shape": "prefix", "rules": 16}}
  ]
}
`

func TestValidateOK(t *testing.T) {
	grid := writeTemp(t, "grid.json", goodGrid)
	code, err := run([]string{"-validate", "-grid", grid})
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
}

func TestValidateRejectsBadGrid(t *testing.T) {
	cases := map[string]string{
		"bad-dist":  `{"seed":1,"points":[{"name":"x","identities":10,"requests":10,"dist":"pareto","policy":{"shape":"exact","rules":4}}]}`,
		"bad-shape": `{"seed":1,"points":[{"name":"x","identities":10,"requests":10,"dist":"uniform","policy":{"shape":"btree","rules":4}}]}`,
		"typo-key":  `{"seed":1,"points":[{"name":"x","identities":10,"requestz":10,"dist":"uniform","policy":{"shape":"exact","rules":4}}]}`,
		"not-json":  `points: [x]`,
	}
	for name, text := range cases {
		t.Run(name, func(t *testing.T) {
			grid := writeTemp(t, "grid.json", text)
			code, err := run([]string{"-validate", "-grid", grid})
			if code != 2 || err == nil {
				t.Fatalf("code=%d err=%v, want 2 with error", code, err)
			}
		})
	}
}

func TestValidateRequiresGrid(t *testing.T) {
	if code, err := run([]string{"-validate"}); code != 2 || err == nil {
		t.Fatalf("code=%d err=%v, want usage error", code, err)
	}
}

func TestUnknownFlagExitsUsage(t *testing.T) {
	if code, _ := run([]string{"-no-such-flag"}); code != 2 {
		t.Fatalf("code=%d, want 2", code)
	}
}

// TestTinyRunWritesReport runs a minimal real load through the CLI path
// and checks the report round-trips.
func TestTinyRunWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("real load run")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	code, err := run([]string{
		"-identities", "20", "-requests", "30", "-workers", "2",
		"-dist", "uniform", "-shape", "req", "-rules", "8",
		"-resume", "0.2", "-full", "0.2",
		"-out", out,
	})
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	rep, err := loadgen.LoadReport(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 1 || rep.Points[0].Point != "adhoc" {
		t.Fatalf("report points = %+v", rep.Points)
	}
	p := rep.Points[0]
	if p.Errors != 0 || p.CrossCheckPct > 1.0 {
		t.Fatalf("errors=%d crosscheck=%.2f%%", p.Errors, p.CrossCheckPct)
	}
	if !strings.Contains(rep.Table(), "adhoc") {
		t.Fatal("table missing the point row")
	}
}
