// Command policycheck evaluates authorization requests against policy
// files in the paper's language, offline. It is the policy
// administrator's lint-and-what-if tool:
//
//	policycheck -policy vo.policy -policy local.policy \
//	    -subject "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu" \
//	    -action start \
//	    -rsl "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)"
//
// With -lint only, it parses the policies and prints their canonical
// form. With -analyze it runs the static semantics analyzer
// (internal/policy/analyze) over the policy set instead of evaluating a
// request: findings print one per line (or as JSON with -json), and the
// exit status is 1 when any finding reaches the -fail-on severity.
//
// For evaluation the exit status is 0 for permit, 1 for deny, 2 for
// usage or policy errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gridauth/internal/core"
	"gridauth/internal/gsi"
	"gridauth/internal/policy"
	"gridauth/internal/policy/analyze"
	"gridauth/internal/rsl"
)

type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "policycheck:", err)
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("policycheck", flag.ContinueOnError)
	var policies stringList
	fs.Var(&policies, "policy", "policy file (repeatable; each file is one administrative source)")
	subject := fs.String("subject", "", "requesting Grid identity (DN)")
	action := fs.String("action", policy.ActionStart, "action: start, cancel, information or signal")
	owner := fs.String("owner", "", "job initiator DN, for management actions")
	rslText := fs.String("rsl", "", "RSL job description")
	lint := fs.Bool("lint", false, "only parse the policies and print their canonical form")
	stats := fs.Bool("stats", false, "compile each policy and print compile time, interned-symbol and bucket counts")
	mode := fs.String("combine", "require-all", "combination: require-all, deny-overrides, permit-overrides, first-applicable")
	doAnalyze := fs.Bool("analyze", false, "run the static semantics analyzer over the policy set instead of evaluating a request")
	jsonOut := fs.Bool("json", false, "with -analyze, print the report as JSON")
	failOn := fs.String("fail-on", "error", "with -analyze, exit 1 when a finding at or above this severity exists (info, warning, error; 'none' disables)")
	actions := fs.String("actions", strings.Join(registryActions, ","), "with -analyze, comma-separated action registry for coverage reporting (empty disables)")
	var locals stringList
	fs.Var(&locals, "local", "with -analyze, treat this -policy file as a local (resource-owner) source (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2, nil
	}
	if len(policies) == 0 {
		return 2, fmt.Errorf("at least one -policy file is required")
	}

	var pdps []core.PDP
	var compiled []*policy.Compiled
	for _, path := range policies {
		f, err := os.Open(path)
		if err != nil {
			return 2, err
		}
		pol, perr := policy.Parse(f, path)
		f.Close()
		if perr != nil {
			return 2, perr
		}
		if *doAnalyze {
			compiled = append(compiled, policy.Compile(pol))
			continue
		}
		if *lint {
			fmt.Printf("# %s: %d statements\n%s", path, len(pol.Statements), pol.Unparse())
			continue
		}
		if *stats {
			s := policy.Compile(pol).Stats()
			fmt.Printf("# %s: compiled %d statements (%d sets: %d grant, %d requirement, %d dead) in %v\n",
				path, s.Statements, s.Sets, s.GrantSets, s.RequirementSets, s.DeadSets, s.CompileTime)
			fmt.Printf("#   subjects: %d (%d group prefixes)  actions: %d  action buckets: %d  wildcard sets: %d  interned symbols: %d\n",
				s.Subjects, s.GroupPrefixes, s.Actions, s.ActionBuckets, s.WildcardSets, s.Symbols)
		}
		pdps = append(pdps, &core.PolicyPDP{Policy: pol})
	}
	if *doAnalyze {
		return runAnalyze(compiled, locals, *actions, *failOn, *jsonOut)
	}
	if *lint {
		return 0, nil
	}
	if *stats && *subject == "" {
		// Stats-only run: nothing to evaluate.
		return 0, nil
	}

	if *subject == "" {
		return 2, fmt.Errorf("-subject is required")
	}
	if !gsi.DN(*subject).Valid() {
		return 2, fmt.Errorf("invalid subject DN %q", *subject)
	}
	var spec *rsl.Spec
	if *rslText != "" {
		s, err := rsl.ParseSpec(*rslText)
		if err != nil {
			return 2, err
		}
		spec = s
	}

	var combine core.CombineMode
	switch *mode {
	case "require-all":
		combine = core.RequireAllPermit
	case "deny-overrides":
		combine = core.DenyOverrides
	case "permit-overrides":
		combine = core.PermitOverrides
	case "first-applicable":
		combine = core.FirstApplicable
	default:
		return 2, fmt.Errorf("unknown -combine %q", *mode)
	}

	req := &core.Request{
		Subject:  gsi.DN(*subject),
		Action:   *action,
		JobOwner: gsi.DN(*owner),
		Spec:     spec,
	}
	d := core.NewCombined(combine, pdps...).Authorize(req)
	fmt.Printf("%s\nsource: %s\nreason: %s\n", strings.ToUpper(d.Effect.String()), d.Source, d.Reason)
	if d.Effect == core.Permit {
		return 0, nil
	}
	return 1, nil
}

// registryActions is the default coverage registry for -analyze: the
// four request actions the protocol defines.
var registryActions = []string{
	policy.ActionStart, policy.ActionCancel, policy.ActionInformation, policy.ActionSignal,
}

// runAnalyze runs the static analyzer over the compiled policy set and
// reports findings. Exit status 1 means a finding reached the -fail-on
// severity; 2 means the analyzer could not run as asked.
func runAnalyze(compiled []*policy.Compiled, locals stringList, actions, failOn string, jsonOut bool) (int, error) {
	opts := analyze.Options{LocalSources: locals}
	if actions != "" {
		for _, a := range strings.Split(actions, ",") {
			if a = strings.TrimSpace(a); a != "" {
				opts.Actions = append(opts.Actions, a)
			}
		}
	}
	var gate analyze.Severity
	if failOn != "none" {
		s, err := analyze.ParseSeverity(failOn)
		if err != nil {
			return 2, err
		}
		gate = s
	}

	rep := analyze.With(opts, compiled...)
	if jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return 2, err
		}
		fmt.Println(string(out))
	} else {
		for _, f := range rep.Findings {
			fmt.Println(f)
		}
		if rep.Skipped {
			fmt.Println("# note: shadow and conflict passes skipped (policy set too large)")
		}
		fmt.Printf("# %d finding(s) in %d source(s)\n", len(rep.Findings), len(rep.Sources))
	}
	if gate != 0 && rep.Count(gate) > 0 {
		return 1, nil
	}
	return 0, nil
}
