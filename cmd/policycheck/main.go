// Command policycheck evaluates authorization requests against policy
// files in the paper's language, offline. It is the policy
// administrator's lint-and-what-if tool:
//
//	policycheck -policy vo.policy -policy local.policy \
//	    -subject "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu" \
//	    -action start \
//	    -rsl "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)"
//
// With -lint only, it parses the policies and prints their canonical
// form. The exit status is 0 for permit, 1 for deny, 2 for usage or
// policy errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gridauth/internal/core"
	"gridauth/internal/gsi"
	"gridauth/internal/policy"
	"gridauth/internal/rsl"
)

type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "policycheck:", err)
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("policycheck", flag.ContinueOnError)
	var policies stringList
	fs.Var(&policies, "policy", "policy file (repeatable; each file is one administrative source)")
	subject := fs.String("subject", "", "requesting Grid identity (DN)")
	action := fs.String("action", policy.ActionStart, "action: start, cancel, information or signal")
	owner := fs.String("owner", "", "job initiator DN, for management actions")
	rslText := fs.String("rsl", "", "RSL job description")
	lint := fs.Bool("lint", false, "only parse the policies and print their canonical form")
	stats := fs.Bool("stats", false, "compile each policy and print compile time, interned-symbol and bucket counts")
	mode := fs.String("combine", "require-all", "combination: require-all, deny-overrides, permit-overrides, first-applicable")
	if err := fs.Parse(args); err != nil {
		return 2, nil
	}
	if len(policies) == 0 {
		return 2, fmt.Errorf("at least one -policy file is required")
	}

	var pdps []core.PDP
	for _, path := range policies {
		f, err := os.Open(path)
		if err != nil {
			return 2, err
		}
		pol, perr := policy.Parse(f, path)
		f.Close()
		if perr != nil {
			return 2, perr
		}
		if *lint {
			fmt.Printf("# %s: %d statements\n%s", path, len(pol.Statements), pol.Unparse())
			continue
		}
		if *stats {
			s := policy.Compile(pol).Stats()
			fmt.Printf("# %s: compiled %d statements (%d sets: %d grant, %d requirement, %d dead) in %v\n",
				path, s.Statements, s.Sets, s.GrantSets, s.RequirementSets, s.DeadSets, s.CompileTime)
			fmt.Printf("#   subjects: %d (%d group prefixes)  actions: %d  action buckets: %d  wildcard sets: %d  interned symbols: %d\n",
				s.Subjects, s.GroupPrefixes, s.Actions, s.ActionBuckets, s.WildcardSets, s.Symbols)
		}
		pdps = append(pdps, &core.PolicyPDP{Policy: pol})
	}
	if *lint {
		return 0, nil
	}
	if *stats && *subject == "" {
		// Stats-only run: nothing to evaluate.
		return 0, nil
	}

	if *subject == "" {
		return 2, fmt.Errorf("-subject is required")
	}
	if !gsi.DN(*subject).Valid() {
		return 2, fmt.Errorf("invalid subject DN %q", *subject)
	}
	var spec *rsl.Spec
	if *rslText != "" {
		s, err := rsl.ParseSpec(*rslText)
		if err != nil {
			return 2, err
		}
		spec = s
	}

	var combine core.CombineMode
	switch *mode {
	case "require-all":
		combine = core.RequireAllPermit
	case "deny-overrides":
		combine = core.DenyOverrides
	case "permit-overrides":
		combine = core.PermitOverrides
	case "first-applicable":
		combine = core.FirstApplicable
	default:
		return 2, fmt.Errorf("unknown -combine %q", *mode)
	}

	req := &core.Request{
		Subject:  gsi.DN(*subject),
		Action:   *action,
		JobOwner: gsi.DN(*owner),
		Spec:     spec,
	}
	d := core.NewCombined(combine, pdps...).Authorize(req)
	fmt.Printf("%s\nsource: %s\nreason: %s\n", strings.ToUpper(d.Effect.String()), d.Source, d.Reason)
	if d.Effect == core.Permit {
		return 0, nil
	}
	return 1, nil
}
