package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

const voPolicy = `
/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu: &(action = start)(executable = test1)(jobtag = ADS)(count<4)
`

const localPolicy = `
/O=Grid: &(action = start)(queue != fast)
`

func TestPermitExitZero(t *testing.T) {
	vo := writeTemp(t, "vo.policy", voPolicy)
	local := writeTemp(t, "local.policy", localPolicy)
	code, err := run([]string{
		"-policy", vo, "-policy", local,
		"-subject", "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu",
		"-action", "start",
		"-rsl", `&(executable=test1)(jobtag=ADS)(count=2)`,
	})
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
}

func TestDenyExitOne(t *testing.T) {
	vo := writeTemp(t, "vo.policy", voPolicy)
	code, err := run([]string{
		"-policy", vo,
		"-subject", "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu",
		"-rsl", `&(executable=test1)(jobtag=ADS)(count=9)`,
	})
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v", code, err)
	}
}

func TestLint(t *testing.T) {
	vo := writeTemp(t, "vo.policy", voPolicy)
	code, err := run([]string{"-policy", vo, "-lint"})
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	bad := writeTemp(t, "bad.policy", "((broken")
	code, err = run([]string{"-policy", bad, "-lint"})
	if code != 2 || err == nil {
		t.Fatalf("bad policy: code=%d err=%v", code, err)
	}
}

func TestStatsOnly(t *testing.T) {
	vo := writeTemp(t, "vo.policy", voPolicy)
	local := writeTemp(t, "local.policy", localPolicy)
	// Stats-only run: compiles and reports without requiring -subject.
	code, err := run([]string{"-policy", vo, "-policy", local, "-stats"})
	if err != nil || code != 0 {
		t.Fatalf("stats-only: code=%d err=%v", code, err)
	}
	// -stats combined with an evaluation still decides the request.
	code, err = run([]string{
		"-policy", vo, "-stats",
		"-subject", "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu",
		"-rsl", `&(executable=test1)(jobtag=ADS)(count=2)`,
	})
	if err != nil || code != 0 {
		t.Fatalf("stats+eval: code=%d err=%v", code, err)
	}
}

func TestUsageErrors(t *testing.T) {
	vo := writeTemp(t, "vo.policy", voPolicy)
	cases := [][]string{
		{},                                      // no policy
		{"-policy", vo},                         // no subject
		{"-policy", vo, "-subject", "nonsense"}, // bad DN
		{"-policy", vo, "-subject", "/O=Grid/CN=x", "-rsl", "(("},           // bad RSL
		{"-policy", vo, "-subject", "/O=Grid/CN=x", "-combine", "weirdest"}, // bad mode
		{"-policy", filepath.Join(t.TempDir(), "missing")},                  // unreadable
	}
	for i, args := range cases {
		if code, _ := run(args); code != 2 {
			t.Errorf("case %d: code = %d, want 2", i, code)
		}
	}
}

func TestCombineModes(t *testing.T) {
	vo := writeTemp(t, "vo.policy", voPolicy)
	local := writeTemp(t, "local.policy", localPolicy)
	// permit-overrides: VO grant wins even with a second denying source.
	deny := writeTemp(t, "deny.policy", `
/O=Grid: &(action = start)(executable = nothing-matches-this)
`)
	code, err := run([]string{
		"-policy", vo, "-policy", local, "-policy", deny,
		"-combine", "permit-overrides",
		"-subject", "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu",
		"-rsl", `&(executable=test1)(jobtag=ADS)(count=2)`,
	})
	if err != nil || code != 0 {
		t.Fatalf("permit-overrides: code=%d err=%v", code, err)
	}
	for _, mode := range []string{"require-all", "deny-overrides", "first-applicable"} {
		code, err := run([]string{
			"-policy", vo, "-combine", mode,
			"-subject", "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu",
			"-rsl", `&(executable=test1)(jobtag=ADS)(count=2)`,
		})
		if err != nil || code != 0 {
			t.Fatalf("%s: code=%d err=%v", mode, code, err)
		}
	}
}
