package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

const voPolicy = `
/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu: &(action = start)(executable = test1)(jobtag = ADS)(count<4)
`

const localPolicy = `
/O=Grid: &(action = start)(queue != fast)
`

func TestPermitExitZero(t *testing.T) {
	vo := writeTemp(t, "vo.policy", voPolicy)
	local := writeTemp(t, "local.policy", localPolicy)
	code, err := run([]string{
		"-policy", vo, "-policy", local,
		"-subject", "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu",
		"-action", "start",
		"-rsl", `&(executable=test1)(jobtag=ADS)(count=2)`,
	})
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
}

func TestDenyExitOne(t *testing.T) {
	vo := writeTemp(t, "vo.policy", voPolicy)
	code, err := run([]string{
		"-policy", vo,
		"-subject", "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu",
		"-rsl", `&(executable=test1)(jobtag=ADS)(count=9)`,
	})
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v", code, err)
	}
}

func TestLint(t *testing.T) {
	vo := writeTemp(t, "vo.policy", voPolicy)
	code, err := run([]string{"-policy", vo, "-lint"})
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	bad := writeTemp(t, "bad.policy", "((broken")
	code, err = run([]string{"-policy", bad, "-lint"})
	if code != 2 || err == nil {
		t.Fatalf("bad policy: code=%d err=%v", code, err)
	}
}

func TestStatsOnly(t *testing.T) {
	vo := writeTemp(t, "vo.policy", voPolicy)
	local := writeTemp(t, "local.policy", localPolicy)
	// Stats-only run: compiles and reports without requiring -subject.
	code, err := run([]string{"-policy", vo, "-policy", local, "-stats"})
	if err != nil || code != 0 {
		t.Fatalf("stats-only: code=%d err=%v", code, err)
	}
	// -stats combined with an evaluation still decides the request.
	code, err = run([]string{
		"-policy", vo, "-stats",
		"-subject", "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu",
		"-rsl", `&(executable=test1)(jobtag=ADS)(count=2)`,
	})
	if err != nil || code != 0 {
		t.Fatalf("stats+eval: code=%d err=%v", code, err)
	}
}

func TestUsageErrors(t *testing.T) {
	vo := writeTemp(t, "vo.policy", voPolicy)
	cases := [][]string{
		{},                                      // no policy
		{"-policy", vo},                         // no subject
		{"-policy", vo, "-subject", "nonsense"}, // bad DN
		{"-policy", vo, "-subject", "/O=Grid/CN=x", "-rsl", "(("},           // bad RSL
		{"-policy", vo, "-subject", "/O=Grid/CN=x", "-combine", "weirdest"}, // bad mode
		{"-policy", filepath.Join(t.TempDir(), "missing")},                  // unreadable
	}
	for i, args := range cases {
		if code, _ := run(args); code != 2 {
			t.Errorf("case %d: code = %d, want 2", i, code)
		}
	}
}

// capture runs fn with os.Stdout redirected and returns what it wrote.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestAnalyzeClean(t *testing.T) {
	vo := writeTemp(t, "vo.policy", voPolicy)
	code, err := run([]string{"-policy", vo, "-analyze", "-actions", ""})
	if err != nil || code != 0 {
		t.Fatalf("clean policy: code=%d err=%v", code, err)
	}
}

const escalationPolicy = `
/O=Grid/O=VO/CN=Admin:
  &(action = grant)(grantee = self)
`

func TestAnalyzeFailOn(t *testing.T) {
	pol := writeTemp(t, "esc.policy", escalationPolicy)
	var code int
	var err error
	out := capture(t, func() { code, err = run([]string{"-policy", pol, "-analyze", "-actions", ""}) })
	if err != nil || code != 1 {
		t.Fatalf("escalation error should gate: code=%d err=%v\n%s", code, err, out)
	}
	// Findings report file:line positions (line 3 holds the set).
	if !strings.Contains(out, pol+":3: error: escalation:") {
		t.Fatalf("finding missing file:line position:\n%s", out)
	}
	if code, err = run([]string{"-policy", pol, "-analyze", "-actions", "", "-fail-on", "none"}); err != nil || code != 0 {
		t.Fatalf("-fail-on none: code=%d err=%v", code, err)
	}
	if code, _ = run([]string{"-policy", pol, "-analyze", "-fail-on", "sometimes"}); code != 2 {
		t.Fatalf("bad -fail-on: code=%d", code)
	}
}

func TestAnalyzeJSON(t *testing.T) {
	pol := writeTemp(t, "esc.policy", escalationPolicy)
	var code int
	out := capture(t, func() { code, _ = run([]string{"-policy", pol, "-analyze", "-json", "-actions", ""}) })
	if code != 1 {
		t.Fatalf("code=%d", code)
	}
	var rep struct {
		Findings []struct {
			Class    string `json:"class"`
			Severity string `json:"severity"`
			Line     int    `json:"line"`
		} `json:"findings"`
		Sources []string `json:"sources"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(rep.Findings) != 1 || rep.Findings[0].Class != "escalation" ||
		rep.Findings[0].Severity != "error" || rep.Findings[0].Line != 3 || len(rep.Sources) != 1 {
		t.Fatalf("unexpected report: %+v", rep)
	}
}

func TestAnalyzeLocalConflict(t *testing.T) {
	vo := writeTemp(t, "vo.policy", `
/O=Grid/O=Globus/OU=acme.org/CN=Dave: &(action = start)(jobtag = HPC)
`)
	site := writeTemp(t, "site.policy", `
/O=Grid/O=Globus/OU=acme.org: &(action = start)(jobtag != HPC)
`)
	var code int
	out := capture(t, func() { code, _ = run([]string{"-policy", vo, "-policy", site, "-analyze", "-actions", "", "-local", site}) })
	if code != 1 || !strings.Contains(out, "conflict") {
		t.Fatalf("conflict not reported: code=%d\n%s", code, out)
	}
	// Without -local the site file is not a local source: no conflict.
	code, _ = run([]string{"-policy", vo, "-policy", site, "-analyze", "-actions", ""})
	if code != 0 {
		t.Fatalf("without -local: code=%d", code)
	}
}

func TestCombineModes(t *testing.T) {
	vo := writeTemp(t, "vo.policy", voPolicy)
	local := writeTemp(t, "local.policy", localPolicy)
	// permit-overrides: VO grant wins even with a second denying source.
	deny := writeTemp(t, "deny.policy", `
/O=Grid: &(action = start)(executable = nothing-matches-this)
`)
	code, err := run([]string{
		"-policy", vo, "-policy", local, "-policy", deny,
		"-combine", "permit-overrides",
		"-subject", "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu",
		"-rsl", `&(executable=test1)(jobtag=ADS)(count=2)`,
	})
	if err != nil || code != 0 {
		t.Fatalf("permit-overrides: code=%d err=%v", code, err)
	}
	for _, mode := range []string{"require-all", "deny-overrides", "first-applicable"} {
		code, err := run([]string{
			"-policy", vo, "-combine", mode,
			"-subject", "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu",
			"-rsl", `&(executable=test1)(jobtag=ADS)(count=2)`,
		})
		if err != nil || code != 0 {
			t.Fatalf("%s: code=%d err=%v", mode, code, err)
		}
	}
}
