// Command voadmin administers a Virtual Organization for the simulated
// fabric: it keeps a VO state file (members, roles, jobtags), issues VO
// attribute assertions, and renders the VO's policy in the paper's
// language from role templates.
//
//	voadmin -state /tmp/grid -vo NFC init
//	voadmin -state /tmp/grid -vo NFC jobtag add NFC "fusion runs" admin
//	voadmin -state /tmp/grid -vo NFC member add "/O=Grid/CN=Kate" analyst,admin NFC
//	voadmin -state /tmp/grid -vo NFC assert "/O=Grid/CN=Kate" kate.assertion
//	voadmin -state /tmp/grid -vo NFC policy vo.policy
//
// The VO signing credential is issued by the fabric CA created by the
// gatekeeper command in the same -state directory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"gridauth/internal/gsi"
	"gridauth/internal/vo"
)

// voState is the serialized VO bookkeeping.
type voState struct {
	Name    string      `json:"name"`
	Members []voMember  `json:"members"`
	Jobtags []vo.Jobtag `json:"jobtags"`
}

type voMember struct {
	Identity gsi.DN   `json:"identity"`
	Roles    []string `json:"roles"`
	Jobtags  []string `json:"jobtags"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal("voadmin: ", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("voadmin", flag.ContinueOnError)
	state := fs.String("state", "", "state directory shared with the gatekeeper (required)")
	voName := fs.String("vo", "", "VO name (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if *state == "" || *voName == "" || len(rest) == 0 {
		return fmt.Errorf("usage: voadmin -state DIR -vo NAME init | jobtag add NAME DESC ROLE | member add DN ROLES TAGS | assert DN OUT | policy OUT")
	}
	statePath := filepath.Join(*state, "vo-"+*voName+".json")
	credPath := filepath.Join(*state, "vo-"+*voName+".cred")

	switch rest[0] {
	case "init":
		caCred, err := gsi.LoadCredential(filepath.Join(*state, "ca.cred"))
		if err != nil {
			return fmt.Errorf("load fabric CA (run the gatekeeper once first): %w", err)
		}
		// Sign the VO credential directly with the stored CA key.
		voCred, err := issueWithCA(caCred, gsi.DN("/O=Grid/CN="+*voName+" VO"))
		if err != nil {
			return err
		}
		if err := gsi.SaveCredential(voCred, credPath); err != nil {
			return err
		}
		return saveState(statePath, &voState{Name: *voName})
	case "jobtag":
		if len(rest) != 5 || rest[1] != "add" {
			return fmt.Errorf("usage: jobtag add NAME DESCRIPTION MANAGER-ROLE")
		}
		st, err := loadState(statePath)
		if err != nil {
			return err
		}
		for _, t := range st.Jobtags {
			if t.Name == rest[2] {
				return fmt.Errorf("jobtag %q already defined", rest[2])
			}
		}
		st.Jobtags = append(st.Jobtags, vo.Jobtag{Name: rest[2], Description: rest[3], ManagerRole: rest[4]})
		return saveState(statePath, st)
	case "member":
		if len(rest) != 5 || rest[1] != "add" {
			return fmt.Errorf("usage: member add DN ROLE[,ROLE...] TAG[,TAG...]")
		}
		st, err := loadState(statePath)
		if err != nil {
			return err
		}
		dn := gsi.DN(rest[2])
		if !dn.Valid() {
			return fmt.Errorf("invalid DN %q", rest[2])
		}
		m := voMember{Identity: dn, Roles: splitList(rest[3]), Jobtags: splitList(rest[4])}
		st.Members = append(st.Members, m)
		return saveState(statePath, st)
	case "assert":
		if len(rest) != 3 {
			return fmt.Errorf("usage: assert DN OUTPUT-FILE")
		}
		v, err := buildVO(statePath, credPath)
		if err != nil {
			return err
		}
		a, err := v.IssueAssertion(gsi.DN(rest[1]))
		if err != nil {
			return err
		}
		return gsi.SaveAssertion(a, rest[2])
	case "policy":
		if len(rest) != 2 {
			return fmt.Errorf("usage: policy OUTPUT-FILE")
		}
		v, err := buildVO(statePath, credPath)
		if err != nil {
			return err
		}
		pol, err := vo.NewPolicyBuilder(v).Build()
		if err != nil {
			return err
		}
		return os.WriteFile(rest[1], []byte(pol.Unparse()), 0o644)
	default:
		return fmt.Errorf("unknown subcommand %q", rest[0])
	}
}

func splitList(s string) []string {
	if s == "" || s == "-" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func loadState(path string) (*voState, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("load VO state (did you run init?): %w", err)
	}
	var st voState
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

func saveState(path string, st *voState) error {
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o600)
}

func buildVO(statePath, credPath string) (*vo.VO, error) {
	st, err := loadState(statePath)
	if err != nil {
		return nil, err
	}
	cred, err := gsi.LoadCredential(credPath)
	if err != nil {
		return nil, err
	}
	v := vo.New(st.Name, cred)
	for _, t := range st.Jobtags {
		if err := v.DefineJobtag(t); err != nil {
			return nil, err
		}
	}
	for _, m := range st.Members {
		if err := v.AddMember(&vo.Member{Identity: m.Identity, Roles: m.Roles, Jobtags: m.Jobtags}); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// issueWithCA signs a service certificate for subject using a stored CA
// credential (the CA object itself is not serializable).
func issueWithCA(caCred *gsi.Credential, subject gsi.DN) (*gsi.Credential, error) {
	return gsi.IssueWithCredential(caCred, subject, gsi.KindService)
}
