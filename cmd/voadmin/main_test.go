package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gridauth/internal/gsi"
	"gridauth/internal/policy"
)

// newStateDir prepares a state directory with a fabric CA, as the
// gatekeeper command would.
func newStateDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	ca, err := gsi.NewCA("/O=Grid/CN=Test Fabric CA")
	if err != nil {
		t.Fatal(err)
	}
	if err := gsi.SaveCertificate(ca.Certificate(), filepath.Join(dir, "ca.cert")); err != nil {
		t.Fatal(err)
	}
	if err := gsi.SaveCredential(ca.Credential(), filepath.Join(dir, "ca.cred")); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestVOAdminLifecycle(t *testing.T) {
	dir := newStateDir(t)
	kate := "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey"

	steps := [][]string{
		{"-state", dir, "-vo", "NFC", "init"},
		{"-state", dir, "-vo", "NFC", "jobtag", "add", "NFC", "fusion runs", "admin"},
		{"-state", dir, "-vo", "NFC", "jobtag", "add", "ADS", "app dev", "admin"},
		{"-state", dir, "-vo", "NFC", "member", "add", kate, "analyst,admin", "NFC,ADS"},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}

	// Issue an assertion and verify it against the VO credential.
	assertPath := filepath.Join(dir, "kate.assertion")
	if err := run([]string{"-state", dir, "-vo", "NFC", "assert", kate, assertPath}); err != nil {
		t.Fatal(err)
	}
	a, err := gsi.LoadAssertion(assertPath)
	if err != nil {
		t.Fatal(err)
	}
	voCred, err := gsi.LoadCredential(filepath.Join(dir, "vo-NFC.cred"))
	if err != nil {
		t.Fatal(err)
	}
	if err := gsi.VerifyAssertion(a, voCred.Leaf(), gsi.DN(kate), time.Now()); err != nil {
		t.Fatalf("issued assertion does not verify: %v", err)
	}
	if !a.HasRole("admin") || !a.AllowsJobtag("NFC") {
		t.Errorf("assertion contents: %+v", a)
	}

	// Generate the policy and check it parses and grants the analyst.
	polPath := filepath.Join(dir, "vo.policy")
	if err := run([]string{"-state", dir, "-vo", "NFC", "policy", polPath}); err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile(polPath)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := policy.ParseString(string(text), "VO:NFC")
	if err != nil {
		t.Fatalf("generated policy invalid: %v\n%s", err, text)
	}
	if len(pol.Statements) < 2 {
		t.Errorf("policy too small:\n%s", text)
	}
	if !strings.Contains(string(text), "TRANSP") {
		t.Errorf("analyst template missing:\n%s", text)
	}
}

func TestVOAdminErrors(t *testing.T) {
	dir := newStateDir(t)
	if err := run([]string{"-state", dir, "-vo", "NFC", "init"}); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"-state", dir, "-vo", "NFC", "frobnicate"},
		{"-state", dir, "-vo", "NFC", "jobtag", "add", "only-name"},
		{"-state", dir, "-vo", "NFC", "member", "add", "not-a-dn", "analyst", "NFC"},
		{"-state", dir, "-vo", "NFC", "assert", "/O=Grid/CN=Nobody", filepath.Join(dir, "x")},
		{"-state", dir, "-vo", "OTHER", "policy", filepath.Join(dir, "y")}, // uninitialized VO
		{},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
	// Duplicate jobtag.
	if err := run([]string{"-state", dir, "-vo", "NFC", "jobtag", "add", "NFC", "d", "admin"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-state", dir, "-vo", "NFC", "jobtag", "add", "NFC", "d", "admin"}); err == nil {
		t.Errorf("duplicate jobtag accepted")
	}
}
