package gridauth

// End-to-end conformance suite for the paper's usage scenarios (§2, §5.1,
// §6): each case replays one of the policy situations the paper
// describes over a real in-process gatekeeper and GSI client, and then
// — this is the point of the suite — asserts not only the wire-visible
// result but the full observability record of the decision: the audit
// record (with its request ID), the retained decision trace, and the
// per-PDP spans inside it. The scenarios covered:
//
//  1. VO grants and the resource owner does not object       -> permit
//  2. VO grants but the resource owner's policy objects      -> deny
//  3. resource owner silent, VO grant unsatisfied            -> deny
//  4. jobtag group management by a non-initiator (§5.1)      -> permit
//  5. "jobowner = self" management of one's own job          -> permit
//  6. the same rule withholding someone else's job           -> deny
//  7. "jobtag != NULL" requirement on an absent attribute    -> deny
//  8. an action no statement asserts (default deny, §5.2)    -> deny
//  9. limited proxy refused before any callout (GT2 rule)    -> refusal
//
// Every decision case checks: one new audit record, carrying a
// RequestID; a trace retrievable under that ID; one span per PDP the
// combiner actually consulted, with the per-source effects the policy
// semantics dictate.

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gridauth/internal/audit"
	"gridauth/internal/gram"
	"gridauth/internal/gsi"
	"gridauth/internal/obs"
	"gridauth/internal/policy"
)

// The conformance fabric: one organization, three members with the
// paper's §2 roles (a code developer, an analyst running the service
// codes, and a group administrator managing the community's jobs).
const (
	confOrg = "/O=Grid/O=NFC"
	confDev = confOrg + "/CN=Dana Developer"
	confAna = confOrg + "/CN=Alan Analyst"
	confAdm = confOrg + "/CN=Ada Admin"

	voPDP    = "policy:VO"
	localPDP = "policy:local"
)

// confVOPolicy is the community policy: an organization-wide
// requirement that every job startup is tagged, per-member grant sets
// for startup, and management rights expressed two ways — through job
// ownership ("jobowner = self") and through tag-based group management
// ("jobtag = ..." held by the administrator). The developer
// deliberately holds no "signal" grant, so scenario 8 can show default
// deny on an unasserted action.
const confVOPolicy = confOrg + `: &(action = start)(jobtag != NULL)
` + confDev + `: &(action = start)(executable = sim)(jobtag = DEV)(count<=4) &(action = cancel information)(jobowner = self)
` + confAna + `: &(action = start)(executable = TRANSP)(jobtag = NFC) &(action = cancel information signal)(jobowner = self)
` + confAdm + `: &(action = start)(executable = TRANSP)(jobtag = NFC) &(action = cancel information signal)(jobtag = NFC DEV)
`

// confLocalPolicy is the resource owner's policy: requirement sets only
// (the owner restricts, the VO grants — the paper's division of
// labour), so its PDP abstains unless a restriction is violated.
const confLocalPolicy = `/O=Grid: &(action = start)(queue != fast)(count<=64)
/O=Grid: &(action = cancel information signal)(executable != NULL)
`

type confEnv struct {
	fab     *Fabric
	res     *Resource
	log     *audit.Log
	metrics *obs.Metrics
	traces  *obs.TraceStore
	dev     *gsi.Credential
	ana     *gsi.Credential
	adm     *gsi.Credential
}

func newConfEnv(t *testing.T) *confEnv {
	t.Helper()
	fab, err := NewFabric("/O=Grid/CN=Conformance CA")
	if err != nil {
		t.Fatal(err)
	}
	e := &confEnv{
		fab:     fab,
		log:     audit.NewLog(256),
		metrics: obs.NewMetrics(),
		traces:  obs.NewTraceStore(256),
	}
	// With CONFORMANCE_AUDIT_DIR set (the CI verify-audit job), each
	// test records into its own tamper-evident pipeline log, which
	// cmd/auditverify then proves after the suite. Small batch/segment
	// knobs force group commits and rotations even at test volumes. The
	// Close cleanup is registered before StartResource's, so the
	// resource stops appending before the log seals.
	if root := os.Getenv("CONFORMANCE_AUDIT_DIR"); root != "" {
		sink, err := audit.NewDirSink(filepath.Join(root, t.Name()))
		if err != nil {
			t.Fatal(err)
		}
		plog, err := audit.NewPipeline(audit.Config{
			Sink:           sink,
			Batch:          4,
			FlushInterval:  time.Millisecond,
			SegmentRecords: 16,
			Metrics:        e.metrics,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.log = plog
		t.Cleanup(func() {
			if err := plog.Close(); err != nil {
				t.Errorf("audit pipeline close: %v", err)
			}
		})
	}
	for dn, credp := range map[string]**gsi.Credential{
		confDev: &e.dev, confAna: &e.ana, confAdm: &e.adm,
	} {
		c, err := fab.IssueUser(dn)
		if err != nil {
			t.Fatal(err)
		}
		*credp = c
	}
	e.res, err = fab.StartResource(ResourceConfig{
		Name: "conformance.anl.gov", Mode: ModeCallout,
		GridMap: map[gsi.DN][]string{
			gsi.DN(confDev): {"dev1"},
			gsi.DN(confAna): {"ana1"},
			gsi.DN(confAdm): {"adm1"},
		},
		VOPolicy:       confVOPolicy,
		LocalPolicy:    confLocalPolicy,
		AuditLog:       e.log,
		Metrics:        e.metrics,
		DecisionTraces: e.traces,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.res.Close)
	return e
}

// spanEffects indexes a trace's spans as PDP name -> effect, failing on
// duplicates (each PDP is consulted at most once per decision).
func spanEffects(t *testing.T, spans []obs.Span) map[string]string {
	t.Helper()
	out := make(map[string]string, len(spans))
	for _, sp := range spans {
		if _, dup := out[sp.PDP]; dup {
			t.Fatalf("trace has two spans for PDP %s", sp.PDP)
		}
		out[sp.PDP] = sp.Effect
	}
	return out
}

// lastDecision asserts that exactly one audit record was appended past
// `before`, that it carries a request ID with a retrievable trace, and
// returns both.
func (e *confEnv) lastDecision(t *testing.T, before int) (audit.Record, obs.TraceRecord) {
	t.Helper()
	recs := e.log.Records()
	if len(recs) != before+1 {
		t.Fatalf("audit records = %d, want %d", len(recs), before+1)
	}
	rec := recs[len(recs)-1]
	if rec.RequestID == "" {
		t.Fatal("audit record carries no request ID")
	}
	tr, ok := e.traces.Get(rec.RequestID)
	if !ok {
		t.Fatalf("no decision trace retained for request %s", rec.RequestID)
	}
	if len(tr.Spans) != len(rec.Spans) {
		t.Fatalf("trace has %d spans but the audit record carries %d", len(tr.Spans), len(rec.Spans))
	}
	return rec, tr
}

// confSummary is the observable outcome of one full scenario replay:
// the ordered audit-record digests plus the decision counters. The
// resumed-session variant must reproduce it exactly — session
// resumption is a transport optimization and may not change a single
// authorization outcome.
type confSummary struct {
	records []string
	permits uint64
	denies  uint64
}

// digestRecord normalizes an audit record to its decision-relevant
// fields. RequestIDs and timing are fresh per run; everything policy
// semantics determine is in the digest.
func digestRecord(rec audit.Record) string {
	return strings.Join([]string{
		rec.Effect, rec.Action, string(rec.Subject), string(rec.JobOwner), rec.PDP, rec.Source,
	}, "|")
}

// primeResumed establishes the client's GSI session with a request that
// produces no authorization decision (a management call on a contact no
// job owns fails at the job table, before any callout), drops the
// connection, and repeats it so the lazy reconnect redeems the session
// ticket. After it returns, all of the client's scenario traffic rides
// a resumed session.
func primeResumed(t *testing.T, c *gram.Client) {
	t.Helper()
	const bogus = "gram://prime/no-such-job"
	var pe *gram.ProtoError
	if _, err := c.Status(bogus); !asProtoError(err, &pe) || pe.Code != gram.CodeNoSuchJob {
		t.Fatalf("priming status = %v, want no-such-job", err)
	}
	c.Close()
	if _, err := c.Status(bogus); !asProtoError(err, &pe) || pe.Code != gram.CodeNoSuchJob {
		t.Fatalf("post-resume status = %v, want no-such-job", err)
	}
	if !c.Resumed() {
		t.Fatal("client reconnected with a full handshake, not a resumed session")
	}
}

// runConformanceScenarios replays the nine paper scenarios and returns
// the run's summary. With resumed set, every client is primed to carry
// its traffic over a resumed GSI session (ticket redemption instead of
// a fresh chain verification) first.
func runConformanceScenarios(t *testing.T, resumed bool) confSummary {
	e := newConfEnv(t)
	dev := mustClient(t, e.res, e.dev)
	ana := mustClient(t, e.res, e.ana)
	adm := mustClient(t, e.res, e.adm)
	if resumed {
		for _, c := range []*gram.Client{dev, ana, adm} {
			primeResumed(t, c)
		}
	}

	// Jobs created along the way, shared by the management scenarios.
	var devJob, anaJob string

	t.Run("1 VO grants and owner does not object", func(t *testing.T) {
		before := e.log.Len()
		contact, err := dev.Submit(`&(executable=sim)(count=2)(jobtag=DEV)(simduration=600)`, "")
		if err != nil {
			t.Fatalf("conforming submit: %v", err)
		}
		devJob = contact
		rec, tr := e.lastDecision(t, before)
		if rec.Effect != "permit" || rec.Action != policy.ActionStart || rec.Subject != confDev {
			t.Errorf("record = %+v", rec)
		}
		if tr.Effect != "permit" || tr.Action != policy.ActionStart {
			t.Errorf("trace summary = %+v", tr)
		}
		// The VO grants; the restriction-only local policy abstains. Both
		// sources were consulted, so the trace holds one span each.
		eff := spanEffects(t, tr.Spans)
		if eff[voPDP] != "permit" || eff[localPDP] != "not-applicable" || len(eff) != 2 {
			t.Errorf("span effects = %v", eff)
		}
	})

	t.Run("2 VO grants but the owner objects", func(t *testing.T) {
		before := e.log.Len()
		_, err := dev.Submit(`&(executable=sim)(count=2)(jobtag=DEV)(queue=fast)`, "")
		if !gram.IsAuthorizationDenied(err) {
			t.Fatalf("reserved queue not denied: %v", err)
		}
		rec, tr := e.lastDecision(t, before)
		if rec.Effect != "deny" {
			t.Errorf("record effect = %s", rec.Effect)
		}
		// The VO permitted, then the owner's "queue != fast" vetoed: both
		// spans present, the denial attributed to the local source.
		eff := spanEffects(t, tr.Spans)
		if eff[voPDP] != "permit" || eff[localPDP] != "deny" || len(eff) != 2 {
			t.Errorf("span effects = %v", eff)
		}
		if !strings.Contains(rec.Source, "local") {
			t.Errorf("denial source = %s, want the local policy", rec.Source)
		}
	})

	t.Run("3 VO grant unsatisfied", func(t *testing.T) {
		before := e.log.Len()
		_, err := dev.Submit(`&(executable=rogue-binary)(count=2)(jobtag=DEV)`, "")
		if !gram.IsAuthorizationDenied(err) {
			t.Fatalf("unlisted executable not denied: %v", err)
		}
		_, tr := e.lastDecision(t, before)
		// The VO's start grant applied and was violated, so the combiner
		// stopped there: exactly one span, the VO denial. The local PDP
		// was never consulted.
		eff := spanEffects(t, tr.Spans)
		if eff[voPDP] != "deny" || len(eff) != 1 {
			t.Errorf("span effects = %v", eff)
		}
	})

	t.Run("4 group management by a non-initiator", func(t *testing.T) {
		before := e.log.Len()
		// The administrator never started devJob, but holds the
		// "jobtag = NFC DEV" management grant — the paper's §5.1 group
		// management use case, impossible under initiator-only GT2.
		if err := adm.Cancel(devJob); err != nil {
			t.Fatalf("group-manager cancel: %v", err)
		}
		rec, tr := e.lastDecision(t, before)
		if rec.Effect != "permit" || rec.Action != policy.ActionCancel {
			t.Errorf("record = %+v", rec)
		}
		if rec.Subject != confAdm || rec.JobOwner != gsi.DN(confDev) {
			t.Errorf("management record subject/owner = %s/%s", rec.Subject, rec.JobOwner)
		}
		eff := spanEffects(t, tr.Spans)
		if eff[voPDP] != "permit" || eff[localPDP] != "not-applicable" || len(eff) != 2 {
			t.Errorf("span effects = %v", eff)
		}
	})

	t.Run("5 jobowner=self grants own job", func(t *testing.T) {
		contact, err := ana.Submit(`&(executable=TRANSP)(jobtag=NFC)(simduration=600)`, "")
		if err != nil {
			t.Fatalf("analyst submit: %v", err)
		}
		anaJob = contact
		before := e.log.Len()
		if err := ana.Cancel(anaJob); err != nil {
			t.Fatalf("self cancel: %v", err)
		}
		rec, tr := e.lastDecision(t, before)
		if rec.Effect != "permit" || rec.Action != policy.ActionCancel || rec.Subject != confAna {
			t.Errorf("record = %+v", rec)
		}
		if eff := spanEffects(t, tr.Spans); eff[voPDP] != "permit" {
			t.Errorf("span effects = %v", eff)
		}
	})

	t.Run("6 jobowner=self withholds another's job", func(t *testing.T) {
		contact, err := dev.Submit(`&(executable=sim)(count=1)(jobtag=DEV)(simduration=600)`, "")
		if err != nil {
			t.Fatalf("developer resubmit: %v", err)
		}
		devJob = contact
		before := e.log.Len()
		if err := ana.Cancel(devJob); !gram.IsAuthorizationDenied(err) {
			t.Fatalf("analyst canceled a developer job: %v", err)
		}
		rec, tr := e.lastDecision(t, before)
		if rec.Effect != "deny" || rec.Subject != confAna {
			t.Errorf("record = %+v", rec)
		}
		// "jobowner = self" resolved to the analyst, did not match the
		// developer-owned job, and the applicable grant denied.
		if eff := spanEffects(t, tr.Spans); eff[voPDP] != "deny" {
			t.Errorf("span effects = %v", eff)
		}
	})

	t.Run("7 jobtag != NULL requirement", func(t *testing.T) {
		before := e.log.Len()
		_, err := dev.Submit(`&(executable=sim)(count=2)`, "")
		if !gram.IsAuthorizationDenied(err) {
			t.Fatalf("untagged submit not denied: %v", err)
		}
		rec, tr := e.lastDecision(t, before)
		// The organization-wide "(jobtag != NULL)" requirement rejects a
		// request that omits the attribute — the paper's NULL marker.
		if rec.Effect != "deny" {
			t.Errorf("record effect = %s", rec.Effect)
		}
		if eff := spanEffects(t, tr.Spans); eff[voPDP] != "deny" {
			t.Errorf("span effects = %v", eff)
		}
	})

	t.Run("8 unasserted action is default-denied", func(t *testing.T) {
		before := e.log.Len()
		// No statement grants the developer "signal" — on their own job
		// or anyone's. Both sources abstain and the combiner's default
		// deny closes the gap.
		if err := dev.Signal(devJob, "suspend", ""); !gram.IsAuthorizationDenied(err) {
			t.Fatalf("unasserted action not denied: %v", err)
		}
		rec, tr := e.lastDecision(t, before)
		if rec.Effect != "deny" || rec.Action != policy.ActionSignal {
			t.Errorf("record = %+v", rec)
		}
		if !strings.Contains(rec.Reason, "default deny") {
			t.Errorf("reason = %q, want the combiner's default deny", rec.Reason)
		}
		eff := spanEffects(t, tr.Spans)
		if eff[voPDP] != "not-applicable" || eff[localPDP] != "not-applicable" || len(eff) != 2 {
			t.Errorf("span effects = %v", eff)
		}
	})

	t.Run("9 limited proxy refused before callout", func(t *testing.T) {
		beforeRecords := e.log.Len()
		beforeTraces := e.traces.Len()
		limited, err := gsi.Delegate(e.dev, time.Hour, true)
		if err != nil {
			t.Fatal(err)
		}
		c := gram.NewClient(e.res.Addr, limited, e.fab.Trust)
		defer c.Close()
		_, err = c.Submit(`&(executable=sim)(count=1)(jobtag=DEV)`, "")
		var pe *gram.ProtoError
		if !asProtoError(err, &pe) || pe.Code != gram.CodeAuthentication {
			t.Fatalf("limited-proxy submit = %v, want an authentication refusal", err)
		}
		// The GT2 rule fires before any callout: no audit record, but the
		// request still left a retrievable (span-less) trace.
		if got := e.log.Len(); got != beforeRecords {
			t.Errorf("audit records = %d, want %d (refusal precedes the PEP)", got, beforeRecords)
		}
		if got := e.traces.Len(); got != beforeTraces+1 {
			t.Fatalf("retained traces = %d, want %d", got, beforeTraces+1)
		}
		ids := e.traces.RequestIDs()
		tr, ok := e.traces.Get(ids[len(ids)-1])
		if !ok {
			t.Fatal("newest trace not retrievable")
		}
		if tr.Subject != confDev || len(tr.Spans) != 0 {
			t.Errorf("pre-callout trace = %+v, want the developer's span-less trace", tr)
		}
	})

	// The metric counters saw every decision above: 4 permits (scenarios
	// 1, 4, 5 and the submit inside 5... plus 6's resubmit) and 5 denies.
	permits := e.metrics.DecisionsPermit.Load()
	denies := e.metrics.DecisionsDeny.Load()
	if permits != 5 || denies != 5 {
		t.Errorf("decision counters = %d permits / %d denies, want 5/5", permits, denies)
	}
	if got := e.metrics.HandshakesFailed.Load(); got != 0 {
		t.Errorf("failed handshakes = %d, want 0", got)
	}
	if full := e.metrics.HandshakesFull.Load(); full < 4 {
		t.Errorf("full handshakes = %d, want at least one per client", full)
	}
	if got := e.metrics.HandshakesResumed.Load(); resumed && got < 3 {
		t.Errorf("resumed handshakes = %d, want one per primed client", got)
	} else if !resumed && got != 0 {
		t.Errorf("resumed handshakes = %d, want 0 without priming", got)
	}
	if e.metrics.DecisionSeconds.Count() != permits+denies {
		t.Errorf("latency histogram count = %d, want %d", e.metrics.DecisionSeconds.Count(), permits+denies)
	}

	sum := confSummary{permits: permits, denies: denies}
	for _, rec := range e.log.Records() {
		sum.records = append(sum.records, digestRecord(rec))
	}
	return sum
}

func TestConformanceScenarios(t *testing.T) {
	runConformanceScenarios(t, false)
}

// TestConformanceScenariosResumedSession replays the whole suite twice
// — once over full GSI handshakes, once over resumed session tickets —
// and asserts the observable outcomes are identical: same decisions in
// the same order, same audit-record digests, same permit/deny counts.
// The paper's authorization semantics must be invariant under the
// transport's session-resumption optimization.
func TestConformanceScenariosResumedSession(t *testing.T) {
	var full, resumed confSummary
	t.Run("full", func(t *testing.T) { full = runConformanceScenarios(t, false) })
	t.Run("resumed", func(t *testing.T) { resumed = runConformanceScenarios(t, true) })
	if t.Failed() {
		t.Fatal("scenario replay failed; skipping the cross-mode comparison")
	}
	if full.permits != resumed.permits || full.denies != resumed.denies {
		t.Errorf("decision counts diverge: full %d/%d vs resumed %d/%d",
			full.permits, full.denies, resumed.permits, resumed.denies)
	}
	if len(full.records) != len(resumed.records) {
		t.Fatalf("audit volume diverges: full %d records vs resumed %d",
			len(full.records), len(resumed.records))
	}
	for i := range full.records {
		if full.records[i] != resumed.records[i] {
			t.Errorf("audit record %d diverges:\n  full:    %s\n  resumed: %s",
				i, full.records[i], resumed.records[i])
		}
	}
}

// TestConformanceRequestIDsEndToEnd submits concurrently from three
// identities and checks that request IDs never cross wires: every audit
// record's ID resolves to a trace whose subject and action match that
// record, and no ID repeats.
func TestConformanceRequestIDsEndToEnd(t *testing.T) {
	e := newConfEnv(t)
	clients := map[string]*gram.Client{
		confDev: mustClient(t, e.res, e.dev),
		confAna: mustClient(t, e.res, e.ana),
		confAdm: mustClient(t, e.res, e.adm),
	}
	rsls := map[string]string{
		confDev: `&(executable=sim)(count=1)(jobtag=DEV)`,
		confAna: `&(executable=TRANSP)(jobtag=NFC)`,
		confAdm: `&(executable=TRANSP)(jobtag=NFC)`,
	}

	const perUser = 8
	var wg sync.WaitGroup
	for dn, c := range clients {
		wg.Add(1)
		go func(dn string, c *gram.Client) {
			defer wg.Done()
			for i := 0; i < perUser; i++ {
				if _, err := c.Submit(rsls[dn], ""); err != nil {
					t.Errorf("%s submit: %v", dn, err)
					return
				}
			}
		}(dn, c)
	}
	wg.Wait()

	recs := e.log.Records()
	if len(recs) != len(clients)*perUser {
		t.Fatalf("audit records = %d, want %d", len(recs), len(clients)*perUser)
	}
	seen := make(map[string]bool, len(recs))
	for _, rec := range recs {
		if rec.RequestID == "" {
			t.Fatal("audit record carries no request ID")
		}
		if seen[rec.RequestID] {
			t.Fatalf("request ID %s appears on two records", rec.RequestID)
		}
		seen[rec.RequestID] = true
		tr, ok := e.traces.Get(rec.RequestID)
		if !ok {
			t.Fatalf("no trace for request %s", rec.RequestID)
		}
		if tr.Subject != string(rec.Subject) || tr.Action != rec.Action {
			t.Fatalf("trace %s carries %s/%s but its record says %s/%s",
				rec.RequestID, tr.Subject, tr.Action, rec.Subject, rec.Action)
		}
	}
}
