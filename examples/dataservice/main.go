// Dataservice demonstrates the paper's concluding direction — the same
// pluggable authorization mechanism in other Globus components: a
// GridFTP-style file service and an MDS-style discovery directory, both
// behind callout-configured policy, plus decision auditing.
//
//	go run ./examples/dataservice
package main

import (
	"fmt"
	"log"
	"net"
	"os"

	"gridauth/internal/audit"
	"gridauth/internal/core"
	"gridauth/internal/gridftp"
	"gridauth/internal/gsi"
	"gridauth/internal/mds"
	"gridauth/internal/policy"
	"gridauth/internal/rsl"
)

const sitePolicy = `
# Discovery: any /O=Grid identity may query the directory.
/O=Grid: &(action = information)(service = mds)

# Data: the public area is world-readable; Alice owns her home.
/O=Grid: &(action = get list)(dir = /public)
/O=Grid/CN=Alice:
  &(action = get put list)(dir = /home/alice)(size<=1048576)
  &(action = delete)(dir = /home/alice)
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ca, err := gsi.NewCA("/O=Grid/CN=Data CA")
	if err != nil {
		return err
	}
	trust := gsi.NewTrustStore(ca.Certificate())
	alice, err := ca.Issue("/O=Grid/CN=Alice", gsi.KindUser)
	if err != nil {
		return err
	}
	bob, err := ca.Issue("/O=Grid/CN=Bob", gsi.KindUser)
	if err != nil {
		return err
	}
	svc, err := ca.Issue("/O=Grid/CN=gridftp/data.anl.gov", gsi.KindService)
	if err != nil {
		return err
	}

	// One callout registry serves every component, with decisions
	// audited.
	reg := core.NewRegistry()
	sitePDP := &core.PolicyPDP{Policy: policy.MustParse(sitePolicy, "site")}
	auditLog := audit.NewLog(256)
	reg.Bind(gridftp.CalloutGridFTP, audit.Wrap(sitePDP, auditLog))
	reg.Bind(mds.CalloutMDS, audit.Wrap(sitePDP, auditLog))

	// Discovery: the data service registers itself.
	directory := mds.NewDirectory()
	store := gridftp.NewStore()
	store.Put("/public/dataset-42.h5", []byte("plasma profiles"))
	server, err := gridftp.NewServer(svc, trust, reg, store)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = server.Serve(l) }()
	defer func() { server.Close(); <-done }()
	if err := directory.Register(mds.Record{
		Name: "data.anl.gov", Contact: l.Addr().String(), TotalCPUs: 0, VOs: []string{"NFC"},
	}); err != nil {
		return err
	}

	// Alice discovers the service (an authorized MDS query)...
	// PEP-side auditing is nil here because the chains above are already
	// wrapped with audit.Wrap — recording at both layers would double
	// every entry.
	query := mds.QueryPDP(reg, directory, nil)
	req := &core.Request{Subject: alice.Identity(), Action: policy.ActionInformation}
	req.Spec = rsl.NewSpec().Set("service", "mds")
	records, decision := query(req, mds.Query{VO: "NFC"})
	if decision.Effect != core.Permit || len(records) == 0 {
		return fmt.Errorf("discovery failed: %s", decision.Reason)
	}
	fmt.Println("discovered data service at", records[0].Contact)

	// ...and uses it under policy.
	ac := gridftp.NewClient(records[0].Contact, alice, trust)
	defer ac.Close()
	data, err := ac.Get("/public/dataset-42.h5")
	if err != nil {
		return err
	}
	fmt.Printf("alice fetched %d bytes from the public area\n", len(data))
	if err := ac.Put("/home/alice/analysis.txt", []byte("T_e peaked")); err != nil {
		return err
	}
	fmt.Println("alice stored her analysis")

	bc := gridftp.NewClient(records[0].Contact, bob, trust)
	defer bc.Close()
	if _, err := bc.Get("/home/alice/analysis.txt"); err != nil {
		fmt.Println("bob reading alice's home denied:", err)
	}

	// The audit trail names every decision.
	fmt.Println("\naudit trail:")
	stats := auditLog.Stats()
	fmt.Printf("  decisions: %v\n", stats)
	for _, r := range auditLog.Denials() {
		fmt.Printf("  DENY %s %s: %s\n", r.Subject, r.Action, r.Reason)
	}
	return auditLog.WriteJSONL(os.Stdout)
}
