// Fusioncollab replays the paper's §2 use case — the National Fusion
// Collaboratory — end to end over TCP:
//
//   - the VO has a development group (small allocations, many tools) and
//     an analysis group (large allocations, sanctioned services only);
//
//   - every job must join a jobtag management group;
//
//   - VO administrators manage any job in those groups, including
//     suspending a long-running simulation to run a short-notice
//     high-priority demo "for a funding agency".
//
//     go run ./examples/fusioncollab
package main

import (
	"fmt"
	"log"
	"time"

	"gridauth"
	"gridauth/internal/gram"
	"gridauth/internal/gsi"
	"gridauth/internal/vo"
	"gridauth/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fab, err := gridauth.NewFabric("/O=Grid/CN=NFC Fabric CA")
	if err != nil {
		return err
	}

	// The VO: one developer, one analyst, one admin.
	users := workload.NFCUsers(1, 1, 1)
	dev, ana, adm := users[0], users[1], users[2]
	nfc, err := fab.NewVO("NFC", "/O=Grid/CN=NFC VO")
	if err != nil {
		return err
	}
	if err := nfc.DefineJobtag(vo.Jobtag{Name: "NFC", Description: "fusion analysis runs", ManagerRole: vo.RoleAdmin}); err != nil {
		return err
	}
	if err := nfc.DefineJobtag(vo.Jobtag{Name: "ADS", Description: "application development and support", ManagerRole: vo.RoleAdmin}); err != nil {
		return err
	}

	creds := map[string]*gsi.Credential{}
	memberships := []struct {
		u     workload.User
		roles []string
		tags  []string
	}{
		{dev, []string{vo.RoleDeveloper}, []string{"ADS"}},
		{ana, []string{vo.RoleAnalyst}, []string{"NFC"}},
		{adm, []string{vo.RoleAnalyst, vo.RoleAdmin}, []string{"NFC", "ADS"}},
	}
	for _, m := range memberships {
		cred, err := fab.IssueUser(string(m.u.DN))
		if err != nil {
			return err
		}
		creds[m.u.Role] = cred
		if err := nfc.AddMember(&vo.Member{Identity: m.u.DN, Roles: m.roles, Jobtags: m.tags}); err != nil {
			return err
		}
	}

	// The resource: VO policy from the role templates, the owner's local
	// policy on top, assertions verified at the gate.
	voPol, err := workload.NFCPolicy(users)
	if err != nil {
		return err
	}
	localPol, err := workload.NFCLocalPolicy()
	if err != nil {
		return err
	}
	res, err := fab.StartResource(gridauth.ResourceConfig{
		Name:        "fusion.anl.gov",
		CPUs:        8,
		Mode:        gridauth.ModeCallout,
		GridMap:     map[gsi.DN][]string{dev.DN: {"dev"}, ana.DN: {"ana"}, adm.DN: {"adm"}},
		VOPolicy:    voPol.Unparse(),
		LocalPolicy: localPol.Unparse(),
		VOs:         []*vo.VO{nfc},
	})
	if err != nil {
		return err
	}
	defer res.Close()
	fmt.Println("fusion.anl.gov gatekeeper on", res.Addr)

	client := func(role string, dn gsi.DN) (*gram.Client, error) {
		a, err := nfc.IssueAssertion(dn)
		if err != nil {
			return nil, err
		}
		return res.Client(creds[role], a)
	}

	devClient, err := client("developer", dev.DN)
	if err != nil {
		return err
	}
	defer devClient.Close()
	anaClient, err := client("analyst", ana.DN)
	if err != nil {
		return err
	}
	defer anaClient.Close()
	admClient, err := client("admin", adm.DN)
	if err != nil {
		return err
	}
	defer admClient.Close()

	// The developer compiles; small allocations only.
	build, err := devClient.Submit(`&(executable=gcc)(jobtag=ADS)(count=2)(maxtime=10)(simduration=240)`, "")
	if err != nil {
		return fmt.Errorf("developer build: %w", err)
	}
	fmt.Println("developer build job:", build)
	if _, err := devClient.Submit(`&(executable=gcc)(jobtag=ADS)(count=8)(maxtime=10)`, ""); gram.IsAuthorizationDenied(err) {
		fmt.Println("developer asking for 8 cpus denied:", err)
	}

	// The analyst launches a day-long TRANSP run on 6 of 8 CPUs.
	transp, err := anaClient.Submit(
		`&(executable=TRANSP)(directory=/sandbox/services)(jobtag=NFC)(count=6)(simduration=86400)`, "")
	if err != nil {
		return fmt.Errorf("analyst TRANSP: %w", err)
	}
	fmt.Println("analyst TRANSP run:", transp)
	res.Cluster.Advance(2 * time.Hour)

	// Crisis: an active demo for a funding agency needs the machine.
	// The admin — not the job's initiator — suspends TRANSP.
	fmt.Println("\n--- high-priority demo arrives ---")
	if err := admClient.Signal(transp, gram.SignalSuspend, ""); err != nil {
		return fmt.Errorf("admin suspend: %w", err)
	}
	st, _ := admClient.Status(transp)
	fmt.Printf("TRANSP after admin suspend: %s (owner %s)\n", st.State, st.Owner)

	demo, err := admClient.Submit(
		`&(executable=EFIT)(directory=/sandbox/services)(jobtag=NFC)(count=6)(priority=10)(simduration=1800)`, "")
	if err != nil {
		return fmt.Errorf("demo job: %w", err)
	}
	res.Cluster.Advance(31 * time.Minute)
	st, _ = admClient.Status(demo)
	fmt.Printf("demo job: %s\n", st.State)

	// Demo done: resume the long run.
	if err := admClient.Signal(transp, gram.SignalResume, ""); err != nil {
		return fmt.Errorf("admin resume: %w", err)
	}
	st, _ = anaClient.Status(transp)
	fmt.Printf("TRANSP resumed: %s\n", st.State)

	// The analyst tries to cancel the developer's build — denied: the
	// ADS group is not theirs to manage.
	if err := anaClient.Cancel(build); gram.IsAuthorizationDenied(err) {
		fmt.Println("\nanalyst canceling developer job denied:", err)
	}
	return nil
}
