// Management focuses on the paper's second headline capability: VO-wide
// job management via jobtag groups, including the protocol's extended
// authorization errors and the §6.2 trust-model comparison between PEP
// placements.
//
//	go run ./examples/management
package main

import (
	"fmt"
	"log"
	"time"

	"gridauth"
	"gridauth/internal/gram"
	"gridauth/internal/gsi"
)

const pol = `
# Every start must join a management group.
/O=Grid: &(action = start)(jobtag != NULL)

# Workers may run the worker binary under the "batch" tag and manage
# their own jobs.
/O=Grid/CN=Worker A: &(action = start)(executable = worker)(jobtag = batch)(count<=4) &(action = cancel information signal)(jobowner = self)
/O=Grid/CN=Worker B: &(action = start)(executable = worker)(jobtag = batch)(count<=4) &(action = cancel information signal)(jobowner = self)

# The operator manages every job in the "batch" group but starts nothing.
/O=Grid/CN=Operator: &(action = cancel information signal)(jobtag = batch)
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fab, err := gridauth.NewFabric("/O=Grid/CN=Mgmt CA")
	if err != nil {
		return err
	}
	workerA, err := fab.IssueUser("/O=Grid/CN=Worker A")
	if err != nil {
		return err
	}
	workerB, err := fab.IssueUser("/O=Grid/CN=Worker B")
	if err != nil {
		return err
	}
	operator, err := fab.IssueUser("/O=Grid/CN=Operator")
	if err != nil {
		return err
	}
	gmap := map[gsi.DN][]string{
		workerA.Identity():  {"worka"},
		workerB.Identity():  {"workb"},
		operator.Identity(): {"ops"},
	}

	start := func(placement gridauth.Placement, tamper bool, name string) (*gridauth.Resource, error) {
		return fab.StartResource(gridauth.ResourceConfig{
			Name:      name,
			Mode:      gridauth.ModeCallout,
			Placement: placement,
			GridMap:   gmap,
			VOPolicy:  pol,
			TamperJMI: tamper,
		})
	}

	res, err := start(gridauth.PlacementJobManager, false, "batch.example.org")
	if err != nil {
		return err
	}
	defer res.Close()

	a, err := res.Client(workerA)
	if err != nil {
		return err
	}
	defer a.Close()
	b, err := res.Client(workerB)
	if err != nil {
		return err
	}
	defer b.Close()
	ops, err := res.Client(operator)
	if err != nil {
		return err
	}
	defer ops.Close()

	// Two workers start batch jobs.
	jobA, err := a.Submit(`&(executable=worker)(jobtag=batch)(count=2)(simduration=3600)`, "")
	if err != nil {
		return err
	}
	jobB, err := b.Submit(`&(executable=worker)(jobtag=batch)(count=2)(simduration=3600)`, "")
	if err != nil {
		return err
	}
	fmt.Println("worker jobs:", jobA, jobB)

	// Workers cannot touch each other's jobs; the error names the policy
	// source and reason (the paper's protocol extension).
	if err := a.Cancel(jobB); gram.IsAuthorizationDenied(err) {
		fmt.Println("worker A canceling worker B's job:")
		fmt.Println("  ", err)
	}

	// The operator — initiator of neither — manages both via the jobtag
	// group, first learning who owns what.
	for _, j := range []string{jobA, jobB} {
		st, err := ops.Status(j)
		if err != nil {
			return err
		}
		fmt.Printf("operator sees %s: %s owned by %s\n", j, st.State, st.Owner)
	}
	if err := ops.Signal(jobA, gram.SignalPriority, "5"); err != nil {
		return err
	}
	if err := ops.Signal(jobB, gram.SignalSuspend, ""); err != nil {
		return err
	}
	res.Cluster.Advance(time.Minute)
	if err := ops.Signal(jobB, gram.SignalResume, ""); err != nil {
		return err
	}
	if err := ops.Cancel(jobA); err != nil {
		return err
	}
	fmt.Println("operator reprioritized, suspended/resumed and canceled via jobtag rights")

	// But the operator cannot START anything: no grant.
	if _, err := ops.Submit(`&(executable=worker)(jobtag=batch)(count=1)`, ""); gram.IsAuthorizationDenied(err) {
		fmt.Println("operator starting a job denied (management-only role):", err)
	}

	// --- Trust model: a tampered JMI ignores policy...
	fmt.Println("\n== §6.2 trust model ==")
	tampered, err := start(gridauth.PlacementJobManager, true, "tampered.example.org")
	if err != nil {
		return err
	}
	defer tampered.Close()
	ta, err := tampered.Client(workerA)
	if err != nil {
		return err
	}
	defer ta.Close()
	tb, err := tampered.Client(workerB)
	if err != nil {
		return err
	}
	defer tb.Close()
	tJob, err := ta.Submit(`&(executable=worker)(jobtag=batch)(count=1)(simduration=600)`, "")
	if err != nil {
		return err
	}
	if err := tb.Cancel(tJob); err == nil {
		fmt.Println("tampered JMI let worker B cancel worker A's job (the §6.2 weakness)")
	}

	// ...unless the PEP moves into the trusted Gatekeeper.
	hardened, err := start(gridauth.PlacementGatekeeper, true, "hardened.example.org")
	if err != nil {
		return err
	}
	defer hardened.Close()
	ha, err := hardened.Client(workerA)
	if err != nil {
		return err
	}
	defer ha.Close()
	hb, err := hardened.Client(workerB)
	if err != nil {
		return err
	}
	defer hb.Close()
	hJob, err := ha.Submit(`&(executable=worker)(jobtag=batch)(count=1)(simduration=600)`, "")
	if err != nil {
		return err
	}
	if err := hb.Cancel(hJob); gram.IsAuthorizationDenied(err) {
		fmt.Println("gatekeeper-placed PEP stops the same attack even with a tampered JMI")
	}
	return nil
}
