// Multisource demonstrates combining policies from multiple
// administrative sources and swapping authorization backends — the §5
// generality claim: the same policies served by the plaintext engine, an
// Akenti-style certificate engine, and a CAS issuing restricted
// credentials, all behind the same callout API. It also shows dynamic
// accounts admitting a user with no grid-mapfile entry, and the sandbox
// catching a job that over-consumes after admission.
//
//	go run ./examples/multisource
package main

import (
	"fmt"
	"log"
	"time"

	"gridauth"
	"gridauth/internal/akenti"
	"gridauth/internal/cas"
	"gridauth/internal/core"
	"gridauth/internal/gram"
	"gridauth/internal/gsi"
	"gridauth/internal/policy"
	"gridauth/internal/sandbox"
)

const (
	kateDN = "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey"
	voPol  = `
/O=Grid/O=Globus/OU=mcs.anl.gov: &(action = start)(jobtag != NULL)
/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey:
  &(action = start)(executable = TRANSP)(jobtag = NFC)(count<=8)
  &(action = cancel information signal)(jobowner = self)
`
	localPol = `/O=Grid: &(action = start)(queue != fast)`
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fab, err := gridauth.NewFabric("/O=Grid/CN=Multisource CA")
	if err != nil {
		return err
	}
	kate, err := fab.IssueUser(kateDN)
	if err != nil {
		return err
	}

	// --- Backend 1+2: plaintext VO policy AND the owner's local policy,
	// both must permit (the paper's combination rule).
	fmt.Println("== plaintext engine, two administrative sources ==")
	res, err := fab.StartResource(gridauth.ResourceConfig{
		Name:            "plain.anl.gov",
		Mode:            gridauth.ModeCallout,
		GridMap:         map[gsi.DN][]string{kate.Identity(): {"keahey"}},
		VOPolicy:        voPol,
		LocalPolicy:     localPol,
		DynamicAccounts: true,
		Sandbox:         true,
	})
	if err != nil {
		return err
	}
	defer res.Close()
	client, err := res.Client(kate)
	if err != nil {
		return err
	}
	defer client.Close()

	contact, err := client.Submit(`&(executable=TRANSP)(jobtag=NFC)(count=4)(simduration=7200)`, "")
	if err != nil {
		return err
	}
	fmt.Println("VO-and-local permit:", contact)
	if _, err := client.Submit(`&(executable=TRANSP)(jobtag=NFC)(count=4)(queue=fast)`, ""); gram.IsAuthorizationDenied(err) {
		fmt.Println("local policy vetoes the reserved queue:", err)
	}

	// Dynamic accounts: a user with NO grid-mapfile entry gets a leased
	// account; policy still applies (and denies this stranger).
	stranger, err := fab.IssueUser("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=New Postdoc")
	if err != nil {
		return err
	}
	sc, err := res.Client(stranger)
	if err != nil {
		return err
	}
	defer sc.Close()
	_, err = sc.Submit(`&(executable=TRANSP)(jobtag=NFC)`, "")
	fmt.Println("unmapped user (dynamic account leased, policy denies):", err)
	if acct, ok := res.Accounts.LeaseFor(stranger.Identity()); ok {
		fmt.Println("  leased dynamic account:", acct.Name)
	}

	// Sandbox: the admitted TRANSP job is capped at 1800 cpu-seconds of
	// actual consumption; it would use 4*7200. Continuous enforcement
	// kills it where the gateway could not.
	jmi, _ := res.Gatekeeper.Job(contact)
	res.Monitor.Attach(jmi.LRMJobID(), sandbox.Limits{MaxCPUSeconds: 1800})
	res.Cluster.Advance(time.Hour)
	res.Monitor.Poll()
	st, _ := client.Status(contact)
	fmt.Printf("after 1 virtual hour under sandbox: %s (%s)\n\n", st.State, st.Detail)

	// --- Backend 3: Akenti. Same rights expressed as use conditions +
	// attribute certificates, behind the same callout API.
	fmt.Println("== Akenti backend ==")
	stakeholder, err := fab.IssueService("/O=Grid/CN=ANL Stakeholder")
	if err != nil {
		return err
	}
	engine := akenti.NewEngine()
	engine.TrustStakeholder(stakeholder.Leaf())
	engine.TrustAttributeIssuer(stakeholder.Leaf())
	uc := &akenti.UseCondition{
		Resource:     "gram:akenti.anl.gov",
		Actions:      []string{policy.ActionStart, policy.ActionCancel, policy.ActionInformation, policy.ActionSignal},
		Requirements: []akenti.Requirement{{Attribute: "group", Value: "fusion"}},
		Constraint:   "(executable = TRANSP)(count<=8)",
		NotBefore:    time.Now().Add(-time.Minute),
		NotAfter:     time.Now().Add(24 * time.Hour),
	}
	if err := akenti.SignUseCondition(uc, stakeholder); err != nil {
		return err
	}
	if err := engine.AddUseCondition(uc); err != nil {
		return err
	}
	ac := &akenti.AttributeCertificate{
		Subject: kate.Identity(), Attribute: "group", Value: "fusion",
		NotBefore: time.Now().Add(-time.Minute), NotAfter: time.Now().Add(24 * time.Hour),
	}
	if err := akenti.SignAttribute(ac, stakeholder); err != nil {
		return err
	}
	if err := engine.StoreAttribute(ac); err != nil {
		return err
	}
	akRes, err := fab.StartResource(gridauth.ResourceConfig{
		Name:      "akenti.anl.gov",
		Mode:      gridauth.ModeCallout,
		GridMap:   map[gsi.DN][]string{kate.Identity(): {"keahey"}},
		ExtraPDPs: []core.PDP{&akenti.PDP{Engine: engine, Resource: "gram:akenti.anl.gov"}},
	})
	if err != nil {
		return err
	}
	defer akRes.Close()
	akClient, err := akRes.Client(kate)
	if err != nil {
		return err
	}
	defer akClient.Close()
	if c, err := akClient.Submit(`&(executable=TRANSP)(count=8)(simduration=60)`, ""); err == nil {
		fmt.Println("Akenti permit:", c)
	} else {
		return err
	}
	if _, err := akClient.Submit(`&(executable=TRANSP)(count=64)`, ""); gram.IsAuthorizationDenied(err) {
		fmt.Println("Akenti constraint denies count=64:", err)
	}

	// --- Backend 4: CAS. The community policy travels INSIDE the
	// restricted credential; the resource trusts only the CAS signer.
	fmt.Println("\n== CAS backend ==")
	casCred, err := fab.IssueService("/O=Grid/CN=NFC CAS")
	if err != nil {
		return err
	}
	communityPol, err := policy.ParseString(voPol, "VO:NFC")
	if err != nil {
		return err
	}
	server := cas.NewServer("NFC", casCred, communityPol)
	casRes, err := fab.StartResource(gridauth.ResourceConfig{
		Name:             "cas.anl.gov",
		Mode:             gridauth.ModeCallout,
		GridMap:          map[gsi.DN][]string{kate.Identity(): {"keahey"}},
		ExtraPDPs:        []core.PDP{&cas.PDP{Community: "NFC", Cert: server.Certificate()}},
		AssertionIssuers: []*gsi.Certificate{server.Certificate()},
	})
	if err != nil {
		return err
	}
	defer casRes.Close()
	grant, err := server.Grant(kate.Identity())
	if err != nil {
		return err
	}
	casClient, err := casRes.Client(kate, grant)
	if err != nil {
		return err
	}
	defer casClient.Close()
	if c, err := casClient.Submit(`&(executable=TRANSP)(jobtag=NFC)(count=2)(simduration=60)`, ""); err == nil {
		fmt.Println("CAS restricted-credential permit:", c)
	} else {
		return err
	}
	bare, err := casRes.Client(kate)
	if err != nil {
		return err
	}
	defer bare.Close()
	if _, err := bare.Submit(`&(executable=TRANSP)(jobtag=NFC)(count=2)`, ""); gram.IsAuthorizationDenied(err) {
		fmt.Println("without the CAS credential, denied:", err)
	}
	return nil
}
