// Quickstart: the smallest end-to-end deployment — one trust fabric, one
// resource with a fine-grain policy, one user submitting jobs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"gridauth"
	"gridauth/internal/gram"
	"gridauth/internal/gsi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A trust fabric: certificate authority + trust store.
	fab, err := gridauth.NewFabric("/O=Grid/CN=Quickstart CA")
	if err != nil {
		return err
	}
	alice, err := fab.IssueUser("/O=Grid/CN=Alice")
	if err != nil {
		return err
	}

	// A resource in callout mode: Alice may run "sim" with fewer than 8
	// CPUs, and manage her own jobs. Everything else is denied (default
	// deny).
	res, err := fab.StartResource(gridauth.ResourceConfig{
		Name: "cluster.example.org",
		CPUs: 8,
		Mode: gridauth.ModeCallout,
		GridMap: map[gsi.DN][]string{
			alice.Identity(): {"alice"},
		},
		VOPolicy: `
/O=Grid/CN=Alice:
  &(action = start)(executable = sim)(count<8)
  &(action = cancel information signal)(jobowner = self)
`,
	})
	if err != nil {
		return err
	}
	defer res.Close()
	fmt.Println("gatekeeper listening on", res.Addr)

	client, err := res.Client(alice)
	if err != nil {
		return err
	}
	defer client.Close()

	// A conforming job is admitted and runs.
	contact, err := client.Submit(`&(executable=sim)(count=4)(simduration=90)`, "")
	if err != nil {
		return err
	}
	st, err := client.Status(contact)
	if err != nil {
		return err
	}
	fmt.Printf("submitted %s -> %s\n", contact, st.State)

	// An oversized job is denied with the policy's reason.
	_, err = client.Submit(`&(executable=sim)(count=16)`, "")
	if gram.IsAuthorizationDenied(err) {
		fmt.Println("oversized job denied as expected:")
		fmt.Println("  ", err)
	} else {
		return fmt.Errorf("expected a denial, got %v", err)
	}

	// Advance the simulated cluster and watch the job finish.
	res.Cluster.Advance(2 * time.Minute)
	st, err = client.Status(contact)
	if err != nil {
		return err
	}
	fmt.Printf("after 2 virtual minutes: %s\n", st.State)
	return nil
}
