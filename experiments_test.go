package gridauth

// Behavioural reproductions of the paper's evaluation artifacts (see
// DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
// outcomes):
//
//	E1/E2 (Figures 1 and 2)  — internal/gram: TestFig1BaselineTrace,
//	                           TestFig2ExtendedTrace
//	E3 (Figure 3)            — internal/policy: TestFig3Decisions
//	E4 (§4.3 shortcomings)   — TestShortcomingsMatrix (here)
//	E5 (§5.2 callouts)       — TestCalloutConfiguration (here)
//	E6 (§6.1 enforcement)    — TestGatewayEnforcementGap (here)
//	E7 (§6.2 trust model)    — internal/gram: TestJMTrustModel
//	E8 (§2 use case)         — TestFusionCollaboratoryScenario (here)

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gridauth/internal/akenti"
	"gridauth/internal/cas"
	"gridauth/internal/core"
	"gridauth/internal/gram"
	"gridauth/internal/gsi"
	"gridauth/internal/policy"
	"gridauth/internal/rsl"
	"gridauth/internal/sandbox"
	"gridauth/internal/vo"
	"gridauth/internal/workload"
)

// fixtures shared by the experiments.
type expEnv struct {
	fab   *Fabric
	vo    *vo.VO
	dev   *gsi.Credential
	ana   *gsi.Credential
	adm   *gsi.Credential
	users []workload.User
}

func newExpEnv(t *testing.T) *expEnv {
	t.Helper()
	fab, err := NewFabric("/O=Grid/CN=Experiment CA")
	if err != nil {
		t.Fatal(err)
	}
	users := workload.NFCUsers(1, 1, 1)
	nfc, err := fab.NewVO("NFC", "/O=Grid/CN=NFC VO")
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range []string{"NFC", "ADS"} {
		if err := nfc.DefineJobtag(vo.Jobtag{Name: tag, ManagerRole: vo.RoleAdmin}); err != nil {
			t.Fatal(err)
		}
	}
	creds := make([]*gsi.Credential, 3)
	tags := [][]string{{"ADS"}, {"NFC"}, {"NFC", "ADS"}}
	roles := [][]string{{vo.RoleDeveloper}, {vo.RoleAnalyst}, {vo.RoleAnalyst, vo.RoleAdmin}}
	for i, u := range users {
		c, err := fab.IssueUser(string(u.DN))
		if err != nil {
			t.Fatal(err)
		}
		creds[i] = c
		if err := nfc.AddMember(&vo.Member{Identity: u.DN, Roles: roles[i], Jobtags: tags[i]}); err != nil {
			t.Fatal(err)
		}
	}
	return &expEnv{fab: fab, vo: nfc, dev: creds[0], ana: creds[1], adm: creds[2], users: users}
}

func (e *expEnv) policies(t *testing.T) (voText, localText string) {
	t.Helper()
	pol, err := workload.NFCPolicy(e.users)
	if err != nil {
		t.Fatal(err)
	}
	local, err := workload.NFCLocalPolicy()
	if err != nil {
		t.Fatal(err)
	}
	return pol.Unparse(), local.Unparse()
}

func (e *expEnv) gridMap() map[gsi.DN][]string {
	return map[gsi.DN][]string{
		e.dev.Identity(): {"dev1"},
		e.ana.Identity(): {"ana1"},
		e.adm.Identity(): {"adm1"},
	}
}

// TestShortcomingsMatrix (E4) demonstrates each §4.3 shortcoming on the
// baseline and its fate under the extension.
func TestShortcomingsMatrix(t *testing.T) {
	e := newExpEnv(t)
	voText, localText := e.policies(t)

	legacy, err := e.fab.StartResource(ResourceConfig{
		Name: "legacy.anl.gov", Mode: ModeLegacy, GridMap: e.gridMap(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	extended, err := e.fab.StartResource(ResourceConfig{
		Name: "extended.anl.gov", Mode: ModeCallout, GridMap: e.gridMap(),
		VOPolicy: voText, LocalPolicy: localText,
		DynamicAccounts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer extended.Close()

	devLegacy := mustClient(t, legacy, e.dev)
	devExt := mustClient(t, extended, e.dev)
	anaLegacy := mustClient(t, legacy, e.ana)
	admLegacy := mustClient(t, legacy, e.adm)
	admExt := mustClient(t, extended, e.adm)

	t.Run("1 startup authorization is coarse-grained", func(t *testing.T) {
		// Baseline: having an account is the whole check — a developer
		// may run anything at any scale.
		if _, err := devLegacy.Submit(`&(executable=arbitrary-binary)(count=16)(simduration=60)`, ""); err != nil {
			t.Errorf("baseline unexpectedly fine-grained: %v", err)
		}
		// Extension: the same request is denied by policy.
		if _, err := devExt.Submit(`&(executable=arbitrary-binary)(count=16)(jobtag=ADS)`, ""); !gram.IsAuthorizationDenied(err) {
			t.Errorf("extension did not constrain startup: %v", err)
		}
	})

	t.Run("2 management authorization is static initiator-only", func(t *testing.T) {
		contact, err := anaLegacy.Submit(`&(executable=TRANSP)(simduration=600)`, "")
		if err != nil {
			t.Fatal(err)
		}
		if err := admLegacy.Cancel(contact); !gram.IsAuthorizationDenied(err) {
			t.Errorf("baseline allowed non-initiator management: %v", err)
		}
		// Extension: admin manages via the jobtag group.
		anaExt := mustClient(t, extended, e.ana)
		c2, err := anaExt.Submit(`&(executable=TRANSP)(directory=/sandbox/services)(jobtag=NFC)(count=4)(simduration=600)`, "")
		if err != nil {
			t.Fatal(err)
		}
		if err := admExt.Cancel(c2); err != nil {
			t.Errorf("extension denied VO-wide management: %v", err)
		}
	})

	t.Run("3 jobs as managed resources need dynamic grouping", func(t *testing.T) {
		// A job submitted WITHOUT the VO jobtag is outside VO management
		// (the user may have a non-VO allocation): the extension's
		// policy requires jobtags for VO members but admins cannot touch
		// jobs in other groups.
		anaExt := mustClient(t, extended, e.ana)
		c, err := anaExt.Submit(`&(executable=TRANSP)(directory=/sandbox/services)(jobtag=NFC)(count=1)(simduration=600)`, "")
		if err != nil {
			t.Fatal(err)
		}
		st, err := admExt.Status(c)
		if err != nil {
			t.Fatalf("admin status on NFC job: %v", err)
		}
		if st.Owner != e.ana.Identity() {
			t.Errorf("owner = %s", st.Owner)
		}
	})

	t.Run("4 enforcement tied to account not request", func(t *testing.T) {
		// Extension with dynamic accounts: rights configured from the
		// request (rightsFromSpec), demonstrated by the dynamic lease
		// carrying the request's own limits.
		stranger, err := e.fab.IssueUser("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Analyst 999")
		if err != nil {
			t.Fatal(err)
		}
		// No grid-mapfile entry: dynamic account is leased; policy then
		// denies (no grant for this stranger) — but the account mapping
		// itself succeeded, which is the point.
		c := mustClient(t, extended, stranger)
		_, err = c.Submit(`&(executable=TRANSP)(directory=/sandbox/services)(jobtag=NFC)(count=2)`, "")
		if !gram.IsAuthorizationDenied(err) {
			t.Errorf("want policy denial after dynamic mapping, got %v", err)
		}
		if _, ok := extended.Accounts.LeaseFor(stranger.Identity()); !ok {
			t.Errorf("no dynamic account was leased")
		}
	})

	t.Run("5 account must pre-exist", func(t *testing.T) {
		stranger, err := e.fab.IssueUser("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Analyst 998")
		if err != nil {
			t.Fatal(err)
		}
		c := mustClient(t, legacy, stranger)
		_, err = c.Submit(`&(executable=TRANSP)`, "")
		var pe *gram.ProtoError
		if !asProtoError(err, &pe) || pe.Code != gram.CodeNoLocalAccount {
			t.Errorf("baseline should refuse unmapped users: %v", err)
		}
	})
}

// TestCalloutConfiguration (E5) exercises the runtime-configurable
// callout mechanism end to end: a configuration file binding three
// drivers — plaintext policy, Akenti and CAS — plus misconfiguration
// error paths.
func TestCalloutConfiguration(t *testing.T) {
	e := newExpEnv(t)
	voText, _ := e.policies(t)

	// Akenti engine with a use condition for NFC members.
	akEngine := akenti.NewEngine()
	stakeholder, err := e.fab.IssueService("/O=Grid/CN=ANL Stakeholder")
	if err != nil {
		t.Fatal(err)
	}
	akEngine.TrustStakeholder(stakeholder.Leaf())
	akEngine.TrustAttributeIssuer(stakeholder.Leaf())
	uc := &akenti.UseCondition{
		Resource:     "gram:fusion.anl.gov",
		Actions:      []string{policy.ActionStart, policy.ActionCancel, policy.ActionInformation, policy.ActionSignal},
		Requirements: []akenti.Requirement{{Attribute: "member", Value: "NFC"}},
		NotBefore:    time.Now().Add(-time.Minute),
		NotAfter:     time.Now().Add(time.Hour),
	}
	if err := akenti.SignUseCondition(uc, stakeholder); err != nil {
		t.Fatal(err)
	}
	if err := akEngine.AddUseCondition(uc); err != nil {
		t.Fatal(err)
	}
	for _, u := range e.users {
		ac := &akenti.AttributeCertificate{
			Subject: u.DN, Attribute: "member", Value: "NFC",
			NotBefore: time.Now().Add(-time.Minute), NotAfter: time.Now().Add(time.Hour),
		}
		if err := akenti.SignAttribute(ac, stakeholder); err != nil {
			t.Fatal(err)
		}
		if err := akEngine.StoreAttribute(ac); err != nil {
			t.Fatal(err)
		}
	}

	// CAS server embedding the community policy.
	casCred, err := e.fab.IssueService("/O=Grid/CN=NFC CAS")
	if err != nil {
		t.Fatal(err)
	}
	communityPol, err := policy.ParseString(voText, "VO:NFC")
	if err != nil {
		t.Fatal(err)
	}
	casServer := cas.NewServer("NFC", casCred, communityPol)

	// Configuration file binding all three drivers to the JM callout.
	dir := t.TempDir()
	polPath := filepath.Join(dir, "vo.policy")
	if err := os.WriteFile(polPath, []byte(voText), 0o600); err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry()
	core.RegisterBuiltinDrivers(reg)
	akenti.RegisterDriver(reg, akEngine)
	cas.RegisterDriver(reg, casServer)
	cfg := strings.Join([]string{
		core.CalloutJobManager + " plainfile path=" + polPath + " source=VO:NFC",
		core.CalloutJobManager + " akenti resource=gram:fusion.anl.gov",
		core.CalloutJobManager + " cas-enforcement",
	}, "\n")
	if err := reg.LoadConfigString(cfg); err != nil {
		t.Fatal(err)
	}

	// All three PDPs must permit (RequireAllPermit): an analyst with a
	// CAS credential and the Akenti attribute starting a sanctioned job.
	casGrant, err := casServer.Grant(e.ana.Identity())
	if err != nil {
		t.Fatal(err)
	}
	req := &core.Request{
		Subject:    e.ana.Identity(),
		Assertions: []*gsi.Assertion{casGrant},
		Action:     policy.ActionStart,
		Spec:       mustSpec(t, `&(executable=TRANSP)(directory=/sandbox/services)(jobtag=NFC)(count=4)`),
	}
	if d := reg.Invoke(core.CalloutJobManager, req); d.Effect != core.Permit {
		t.Fatalf("three-source permit failed: %s / %s", d.Source, d.Reason)
	}
	// Remove the CAS credential: the CAS PDP denies and the combination
	// denies.
	req.Assertions = nil
	if d := reg.Invoke(core.CalloutJobManager, req); d.Effect != core.Deny {
		t.Errorf("missing CAS credential not fatal: %v", d.Effect)
	}

	// Misconfiguration paths.
	bad := []string{
		core.CalloutJobManager + " akenti",               // missing resource
		core.CalloutJobManager + " plainfile path=/nope", // unreadable policy
		core.CalloutJobManager + " no-such-driver",
	}
	for _, line := range bad {
		if err := reg.LoadConfigString(line); err == nil {
			t.Errorf("misconfiguration %q accepted", line)
		}
	}
	// An unconfigured callout type fails closed as a SYSTEM failure.
	if d := reg.Invoke("unconfigured-type", req); d.Effect != core.Error {
		t.Errorf("unconfigured callout = %v, want Error", d.Effect)
	}
}

// TestGatewayEnforcementGap (E6) demonstrates §6.1: gateway authorization
// admits a job whose runtime behaviour exceeds policy; only continuous
// enforcement (sandbox) catches it.
func TestGatewayEnforcementGap(t *testing.T) {
	e := newExpEnv(t)
	voText, localText := e.policies(t)

	run := func(t *testing.T, useSandbox bool) (jobState gram.JobState, cpuSeconds float64, violations int) {
		t.Helper()
		res, err := e.fab.StartResource(ResourceConfig{
			Name: "gap.anl.gov", Mode: ModeCallout, GridMap: e.gridMap(),
			VOPolicy: voText, LocalPolicy: localText,
			Sandbox: useSandbox,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer res.Close()
		dev := mustClient(t, res, e.dev)
		// The developer's policy caps maxtime<=30 minutes; the gateway
		// checks the DECLARED maxtime. The job declares 30 but would run
		// for 4 hours of cpu time if nothing stops it (the declared
		// maxtime is what the scheduler enforces; imagine a site whose
		// LRM ignores maxtime — simulate by omitting it after admission).
		contact, err := dev.Submit(`&(executable=test1)(jobtag=ADS)(count=2)(simduration=14400)`, "")
		if err != nil {
			t.Fatal(err)
		}
		jmi, _ := res.Gatekeeper.Job(contact)
		if useSandbox {
			// VO intent: developers consume at most 600 cpu-seconds.
			res.Monitor.Attach(jmi.LRMJobID(), sandbox.Limits{MaxCPUSeconds: 600})
		}
		for i := 0; i < 8; i++ {
			res.Cluster.Advance(30 * time.Minute)
			if useSandbox {
				res.Monitor.Poll()
			}
		}
		job, err := res.Cluster.Lookup(jmi.LRMJobID())
		if err != nil {
			t.Fatal(err)
		}
		st, _ := jmi.State()
		nViol := 0
		if useSandbox {
			nViol = len(res.Monitor.Violations())
		}
		return st, job.CPUSeconds, nViol
	}

	t.Run("gateway only", func(t *testing.T) {
		state, cpu, _ := run(t, false)
		if state != gram.StateDone {
			t.Fatalf("state = %s", state)
		}
		if cpu < 28000 {
			t.Fatalf("cpu = %v; expected the job to overrun unchecked", cpu)
		}
	})
	t.Run("with sandbox", func(t *testing.T) {
		state, cpu, viol := run(t, true)
		if state != gram.StateCanceled {
			t.Fatalf("state = %s, want CANCELED", state)
		}
		if viol == 0 {
			t.Fatalf("no violation recorded")
		}
		if cpu > 4000 {
			t.Fatalf("cpu = %v; sandbox stopped the job too late", cpu)
		}
	})
}

// TestFusionCollaboratoryScenario (E8) runs the §2 use case end to end:
// two member classes with different rights, and a VO administrator
// preempting a long-running job for a short-notice high-priority run.
func TestFusionCollaboratoryScenario(t *testing.T) {
	e := newExpEnv(t)
	voText, localText := e.policies(t)
	res, err := e.fab.StartResource(ResourceConfig{
		Name: "fusion.anl.gov", Mode: ModeCallout, CPUs: 8,
		GridMap: e.gridMap(), VOPolicy: voText, LocalPolicy: localText,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()

	dev := mustClient(t, res, e.dev)
	ana := mustClient(t, res, e.ana)
	adm := mustClient(t, res, e.adm)

	// Developers run small tool jobs.
	devJob, err := dev.Submit(`&(executable=gcc)(jobtag=ADS)(count=2)(maxtime=30)(simduration=36000)`, "")
	if err != nil {
		t.Fatalf("developer job: %v", err)
	}
	// ... but not large ones.
	if _, err := dev.Submit(`&(executable=gcc)(jobtag=ADS)(count=8)(maxtime=10)`, ""); !gram.IsAuthorizationDenied(err) {
		t.Errorf("developer large job = %v", err)
	}
	// Analysts run big sanctioned services.
	longRun, err := ana.Submit(`&(executable=TRANSP)(directory=/sandbox/services)(jobtag=NFC)(count=6)(simduration=86400)`, "")
	if err != nil {
		t.Fatalf("analyst job: %v", err)
	}
	res.Cluster.Advance(time.Hour)

	// A funding-agency demo needs the machine NOW: the admin suspends
	// the analyst's long-running job (which they did not start)...
	if err := adm.Signal(longRun, gram.SignalSuspend, ""); err != nil {
		t.Fatalf("admin suspend: %v", err)
	}
	// ...runs the high-priority demo...
	demo, err := adm.Submit(`&(executable=TRANSP)(directory=/sandbox/services)(jobtag=NFC)(count=6)(priority=10)(simduration=1800)`, "")
	if err != nil {
		t.Fatalf("demo job: %v", err)
	}
	res.Cluster.Advance(31 * time.Minute)
	if st, _ := adm.Status(demo); st.State != gram.StateDone {
		t.Errorf("demo state = %s", st.State)
	}
	// ...and resumes the long job afterwards.
	if err := adm.Signal(longRun, gram.SignalResume, ""); err != nil {
		t.Fatalf("admin resume: %v", err)
	}
	if st, _ := ana.Status(longRun); st.State != gram.StateActive && st.State != gram.StatePending {
		t.Errorf("long job state = %s", st.State)
	}
	// The analyst cannot preempt a developer's ADS job (not their
	// management group); the admin manages ADS too. Use a fresh dev job
	// so earlier clock advances have not finished it.
	devJob2, err := dev.Submit(`&(executable=make)(jobtag=ADS)(count=1)(maxtime=30)(simduration=1200)`, "")
	if err != nil {
		t.Fatalf("second developer job: %v", err)
	}
	if err := ana.Cancel(devJob2); !gram.IsAuthorizationDenied(err) {
		t.Errorf("analyst canceled a developer job: %v", err)
	}
	if err := adm.Cancel(devJob2); err != nil {
		t.Errorf("admin cancel of developer job: %v", err)
	}
	_ = devJob
}

// --- helpers ---

func mustClient(t *testing.T, r *Resource, cred *gsi.Credential) *gram.Client {
	t.Helper()
	c, err := r.Client(cred)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func mustSpec(t *testing.T, text string) *rsl.Spec {
	t.Helper()
	s, err := rsl.ParseSpec(text)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// asProtoError is errors.As specialized for GRAM protocol errors.
func asProtoError(err error, target **gram.ProtoError) bool {
	return errors.As(err, target)
}
