module gridauth

go 1.22
