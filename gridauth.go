// Package gridauth is the public entry point of this library: a
// fine-grain authorization system for Grid resource management,
// reproducing Keahey, Welch, Lang, Liu and Meder, "Fine-Grain
// Authorization Policies in the GRID: Design and Implementation"
// (Middleware 2003).
//
// The package wires the subsystems — simulated GSI, grid-mapfile, the
// RSL-based policy engine, the authorization callout framework, GRAM
// (Gatekeeper + Job Manager), a local scheduler, dynamic accounts and
// sandbox enforcement — into two concepts:
//
//   - a Fabric: a trust domain with a certificate authority, users and
//     virtual organizations;
//   - Resources: GRAM endpoints started on the fabric, each with its own
//     grid-mapfile, policies, authorization mode and local scheduler.
//
// A minimal end-to-end deployment:
//
//	fab, _ := gridauth.NewFabric("/O=Grid/CN=Example CA")
//	alice, _ := fab.IssueUser("/O=Grid/CN=Alice")
//	res, _ := fab.StartResource(gridauth.ResourceConfig{
//	    Name:     "cluster.example.org",
//	    CPUs:     16,
//	    Mode:     gridauth.ModeCallout,
//	    GridMap:  map[gsi.DN][]string{alice.Identity(): {"alice"}},
//	    VOPolicy: `/O=Grid/CN=Alice: &(action = start)(executable = sim)(count<8)`,
//	})
//	defer res.Close()
//	client, _ := res.Client(alice)
//	contact, err := client.Submit(`&(executable=sim)(count=4)`, "")
//
// Lower-level control is available from the internal packages through
// the fields this package exposes (Registry, Cluster, Accounts, ...).
package gridauth

import (
	"errors"
	"fmt"
	"net"
	"time"

	"gridauth/internal/accounts"
	"gridauth/internal/allocation"
	"gridauth/internal/audit"
	"gridauth/internal/core"
	"gridauth/internal/gram"
	"gridauth/internal/gridmap"
	"gridauth/internal/gsi"
	"gridauth/internal/jobcontrol"
	"gridauth/internal/obs"
	"gridauth/internal/policy"
	"gridauth/internal/policy/analyze"
	"gridauth/internal/resilience"
	"gridauth/internal/sandbox"
	"gridauth/internal/vo"
)

// Mode selects the authorization model of a resource.
type Mode int

// Authorization modes.
const (
	// ModeLegacy is stock GT2: grid-mapfile admission, initiator-only
	// management (the paper's §4 baseline).
	ModeLegacy Mode = iota + 1
	// ModeCallout is the paper's extension: fine-grain policies
	// evaluated through authorization callouts.
	ModeCallout
)

// Placement selects where the policy evaluation point lives in callout
// mode (§6.2).
type Placement int

// PEP placements.
const (
	// PlacementJobManager evaluates policy in the Job Manager (the
	// paper's design).
	PlacementJobManager Placement = iota + 1
	// PlacementGatekeeper evaluates policy in the Gatekeeper (the
	// hardened alternative).
	PlacementGatekeeper
)

// Fabric is a Grid trust domain: one certificate authority, its trust
// store, and the identities and VOs issued within it.
type Fabric struct {
	// CA is the fabric's certificate authority.
	CA *gsi.CA
	// Trust holds the fabric's trust anchors.
	Trust *gsi.TrustStore
}

// NewFabric creates a trust domain rooted at a new CA with the given
// subject DN.
func NewFabric(caSubject string) (*Fabric, error) {
	ca, err := gsi.NewCA(gsi.DN(caSubject))
	if err != nil {
		return nil, fmt.Errorf("gridauth: create CA: %w", err)
	}
	return &Fabric{CA: ca, Trust: gsi.NewTrustStore(ca.Certificate())}, nil
}

// IssueUser issues a user credential for the DN.
func (f *Fabric) IssueUser(dn string) (*gsi.Credential, error) {
	return f.CA.Issue(gsi.DN(dn), gsi.KindUser)
}

// IssueService issues a service credential for the DN.
func (f *Fabric) IssueService(dn string) (*gsi.Credential, error) {
	return f.CA.Issue(gsi.DN(dn), gsi.KindService)
}

// NewVO creates a virtual organization with a fabric-issued signing
// credential.
func (f *Fabric) NewVO(name, dn string, opts ...vo.Option) (*vo.VO, error) {
	cred, err := f.IssueService(dn)
	if err != nil {
		return nil, fmt.Errorf("gridauth: issue VO credential: %w", err)
	}
	return vo.New(name, cred, opts...), nil
}

// ResourceConfig describes a GRAM resource to start on a fabric.
type ResourceConfig struct {
	// Name is the resource's host name (used in its service DN).
	Name string
	// CPUs sizes the local scheduler (default 16).
	CPUs int
	// Mode selects legacy GT2 or callout authorization (default legacy).
	Mode Mode
	// Placement selects the PEP location in callout mode (default the
	// Job Manager, as in the paper).
	Placement Placement
	// GridMap maps Grid identities to local accounts. Accounts named
	// here are created automatically.
	GridMap map[gsi.DN][]string
	// SharedGridMap, when set, is used as the resource's grid-mapfile
	// instead of a private one (GridMap entries are still added to it).
	// The caller keeps the handle and may add identities while the
	// resource serves — the load harness (internal/loadgen) registers
	// its synthetic identities lazily this way, so a million-identity
	// run only materializes the identities traffic actually samples.
	SharedGridMap *gridmap.Map
	// VOPolicy and LocalPolicy are policy texts in the paper's language;
	// both empty in callout mode is an error (nothing could ever be
	// permitted) unless PolicyStores, ExtraPDPs or VOs supply policy.
	VOPolicy    string
	LocalPolicy string
	// PolicyStores binds runtime-mutable policy stores into the callout
	// chain (core.StorePDP), one per administrative source. Each
	// store's OnChange hook is wired to decision-cache invalidation, so
	// whoever replaces the store's policy — a local reloader or a
	// cluster.Follower applying a replicated snapshot (docs/CLUSTER.md)
	// — is enforced on the very next request. A non-empty list counts
	// as a policy source for callout-mode validation.
	PolicyStores []*policy.Store
	// VOs whose attribute assertions the resource accepts. For each VO a
	// membership PDP (assertion + jobtag entitlement check) is added to
	// the callout chain.
	VOs []*vo.VO
	// AssertionIssuers are additional certificates whose signed
	// assertions the gatekeeper accepts and verifies (e.g. a CAS signing
	// certificate), without adding a membership gate.
	AssertionIssuers []*gsi.Certificate
	// ExtraPDPs are appended to the callout chain (Akenti, CAS, custom).
	ExtraPDPs []core.PDP
	// Allocation, when set, enforces the resource provider's coarse
	// per-VO budget (§2): an allocation PDP is appended LAST in the
	// callout chain (so it only reserves once every other source has
	// accepted), reservations follow jobs into the scheduler, and
	// terminal jobs commit their actual usage back to the tracker.
	Allocation *allocation.Tracker
	// DynamicAccounts enables a pool of on-the-fly accounts for users
	// without grid-mapfile entries.
	DynamicAccounts bool
	// DynamicPoolSize is the dynamic pool size (default 16).
	DynamicPoolSize int
	// ParallelAuthz evaluates each callout chain's PDPs concurrently
	// (core.ParallelCombined) instead of one after another. Decision
	// semantics are unchanged; per-request latency drops from the sum of
	// the PDPs' costs to roughly the slowest one's. Side-effecting PDPs
	// (the Allocation PDP, any core.EffectfulPDP among ExtraPDPs) are
	// never fanned out speculatively: they still run in configuration
	// order, only when every earlier source has accepted, so a denied
	// request cannot reserve allocation budget.
	ParallelAuthz bool
	// DecisionCache memoizes Permit/Deny callout decisions in a sharded
	// TTL cache keyed on the request's canonical digest
	// (core.DecisionCache). Policy mutations on attached VOs invalidate
	// it immediately. Incompatible with Allocation: the allocation PDP
	// reserves budget on permit, and a cache hit would skip the
	// reservation.
	DecisionCache bool
	// DecisionCacheTTL bounds cache entry lifetime (default 5s, clamped
	// to core.MaxCacheTTL: the TTL is the only bound on credential
	// expiry the cache key cannot see).
	DecisionCacheTTL time.Duration
	// DecisionCacheShards is the cache shard count (default 16).
	DecisionCacheShards int
	// PDPTimeout bounds every individual PDP evaluation in the callout
	// chain (internal/resilience). A callout that overruns its deadline
	// answers Error — an authorization system failure — which stays
	// fail-closed for job startup and becomes the retryable
	// authorization-unavailable code for job management. Zero disables
	// the deadline.
	PDPTimeout time.Duration
	// AuthzRetries re-evaluates a PDP that answered Error (transient
	// authorization system failure) up to this many extra times with
	// jittered exponential backoff. Side-effecting PDPs (Allocation) are
	// never retried. Zero disables retries.
	AuthzRetries int
	// AuthzRetryBackoff is the base backoff between authorization
	// retries (default 25ms when AuthzRetries > 0).
	AuthzRetryBackoff time.Duration
	// CircuitBreaker trips a per-PDP breaker after BreakerThreshold
	// consecutive failures: further calls are shed (answered Error
	// without invoking the PDP) until BreakerCooldown elapses, then a
	// half-open probe decides recovery. Transitions are audited when
	// AuditLog is set.
	CircuitBreaker   bool
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// AuditLog, when set, receives the resource's authorization audit
	// records, including circuit-breaker state transitions.
	AuditLog *audit.Log
	// Metrics, when set, receives the resource's observability counters
	// and latency histograms (docs/OBSERVABILITY.md): decision counts by
	// effect, cache hit ratio, retries, breaker transitions, handshake
	// and connection gauges.
	Metrics *obs.Metrics
	// DecisionTraces, when set, retains a per-request decision trace
	// (one span per PDP evaluated) for every gatekeeper request,
	// retrievable by the RequestID stamped on audit records.
	DecisionTraces *obs.TraceStore
	// Sandbox attaches a kill-on-violation sandbox monitor to the
	// resource's scheduler.
	Sandbox bool
	// TamperJMI simulates the §6.2 user-tampered job manager.
	TamperJMI bool
	// DefaultPriority is the scheduler priority for unprioritized jobs.
	DefaultPriority int
	// SessionTicketLifetime bounds the GSI session-resumption tickets
	// the gatekeeper issues after full handshakes (0 selects
	// gsi.DefaultTicketLifetime; negative disables resumption).
	SessionTicketLifetime time.Duration
	// SessionTicketRing, when set, seals and redeems resumption tickets
	// with this (typically cluster-replicated) secret ring instead of a
	// process-private random secret, so a session ticket granted by one
	// federated node resumes on any node sharing the ring
	// (docs/CLUSTER.md).
	SessionTicketRing *gsi.SecretRing
	// Addr is the gatekeeper listen address (default "127.0.0.1:0").
	// Cluster nodes pin a stable address so a node restarted in place
	// keeps its slot in clients' failover lists.
	Addr string
	// SharedJobs and SharedCluster federate several resources into ONE:
	// every gatekeeper node of a cluster deployment is started with the
	// same gram.JobTable and the same jobcontrol.Cluster, so a job
	// submitted through any node can be managed through any other after
	// a failover. Nil gives the resource private instances (the normal
	// single-node case).
	SharedJobs    *gram.JobTable
	SharedCluster *jobcontrol.Cluster
	// ConnWorkers bounds concurrent request processing per multiplexed
	// client connection (0 selects 8).
	ConnWorkers int
	// HandshakeTimeout bounds the gatekeeper-side GSI handshake on an
	// accepted connection (0 selects 10s; negative disables).
	HandshakeTimeout time.Duration
	// IdleTimeout closes authenticated connections with no client
	// traffic (0 selects 5m; negative disables). Subscription streams
	// are exempt.
	IdleTimeout time.Duration
}

// Resource is a running GRAM endpoint.
type Resource struct {
	// Addr is the TCP address of the gatekeeper.
	Addr string
	// Gatekeeper is the GRAM daemon.
	Gatekeeper *gram.Gatekeeper
	// Cluster is the local job control system (drive it with Advance in
	// simulations).
	Cluster *jobcontrol.Cluster
	// Registry is the authorization callout registry.
	Registry *core.Registry
	// Accounts is the local account layer.
	Accounts *accounts.Manager
	// Monitor is the sandbox monitor when ResourceConfig.Sandbox is set.
	Monitor *sandbox.Monitor

	fabric *Fabric
	done   chan struct{}
}

// StartResource builds and serves a resource on 127.0.0.1 (ephemeral
// port).
func (f *Fabric) StartResource(cfg ResourceConfig) (*Resource, error) {
	if cfg.Name == "" {
		return nil, errors.New("gridauth: resource needs a name")
	}
	if cfg.CPUs == 0 {
		cfg.CPUs = 16
	}
	if cfg.Mode == 0 {
		cfg.Mode = ModeLegacy
	}
	if cfg.Placement == 0 {
		cfg.Placement = PlacementJobManager
	}
	if cfg.Mode == ModeCallout && cfg.VOPolicy == "" && cfg.LocalPolicy == "" &&
		len(cfg.ExtraPDPs) == 0 && len(cfg.PolicyStores) == 0 {
		return nil, errors.New("gridauth: callout mode without any policy source would deny everything")
	}

	gkCred, err := f.IssueService("/O=Grid/CN=gatekeeper/" + cfg.Name)
	if err != nil {
		return nil, fmt.Errorf("gridauth: issue gatekeeper credential: %w", err)
	}

	gmap := cfg.SharedGridMap
	if gmap == nil {
		gmap = gridmap.New()
	}
	acctMgr := accounts.NewManager()
	seen := map[string]bool{}
	for id, accts := range cfg.GridMap {
		gmap.Add(id, accts...)
		for _, a := range accts {
			if !seen[a] {
				acctMgr.AddStatic(a, accounts.Rights{})
				seen[a] = true
			}
		}
	}
	if cfg.DynamicAccounts {
		n := cfg.DynamicPoolSize
		if n == 0 {
			n = 16
		}
		acctMgr.ProvisionPool("grid", n)
	}

	reg := core.NewRegistry()
	core.RegisterBuiltinDrivers(reg)
	var pdps []core.PDP
	if cfg.VOPolicy != "" {
		pol, err := policy.ParseString(cfg.VOPolicy, "VO")
		if err != nil {
			return nil, fmt.Errorf("gridauth: VO policy: %w", err)
		}
		pdps = append(pdps, &core.PolicyPDP{Policy: pol})
	}
	if cfg.LocalPolicy != "" {
		pol, err := policy.ParseString(cfg.LocalPolicy, "local")
		if err != nil {
			return nil, fmt.Errorf("gridauth: local policy: %w", err)
		}
		pdps = append(pdps, &core.PolicyPDP{Policy: pol})
	}
	for _, st := range cfg.PolicyStores {
		pdps = append(pdps, &core.StorePDP{Store: st})
		// A store swap — local reload or cluster replication — must be
		// enforced on the very next request even when decisions are
		// cached, exactly like a VO mutation below.
		st.OnChange(reg.InvalidateCaches)
		if cfg.Metrics != nil {
			// Every installed policy version is also run through the
			// static semantics analyzer, counting its findings into
			// policy_findings_total (docs/POLICY-ANALYSIS.md): a rule that
			// became shadowed or a grant that became unsatisfiable by a
			// reload shows up in monitoring even when nobody reran the
			// offline lint. Each store is analyzed alone, so cross-source
			// conflicts remain the cluster publisher's job.
			store, metrics := st, cfg.Metrics
			countFindings := func() {
				_, compiled, _ := store.Snapshot()
				metrics.PolicyFindings.Add(uint64(len(analyze.Analyze(compiled).Findings)))
			}
			countFindings() // the initially-installed policy counts too
			store.OnChange(countFindings)
		}
	}
	var voCerts []*gsi.Certificate
	for _, v := range cfg.VOs {
		voCerts = append(voCerts, v.Certificate())
		pdps = append(pdps, v.MembershipPDP())
	}
	voCerts = append(voCerts, cfg.AssertionIssuers...)
	pdps = append(pdps, cfg.ExtraPDPs...)
	if cfg.Allocation != nil {
		pdps = append(pdps, &allocation.PDP{Tracker: cfg.Allocation, ReserveOnPermit: true})
	}
	for _, p := range pdps {
		reg.Bind(core.CalloutJobManager, p)
		reg.Bind(core.CalloutGatekeeper, p)
	}
	if cfg.DecisionCache && cfg.Allocation != nil {
		return nil, errors.New("gridauth: DecisionCache cannot be combined with Allocation: the allocation PDP reserves budget on permit, and a cache hit would skip the reservation")
	}
	if cfg.DecisionCache {
		for _, p := range pdps {
			if core.IsSideEffecting(p) {
				return nil, fmt.Errorf("gridauth: DecisionCache cannot be combined with side-effecting PDP %s: a cache hit would skip its effect", p.Name())
			}
		}
	}
	if cfg.Metrics != nil {
		reg.SetMetrics(cfg.Metrics)
	}
	resilient := cfg.PDPTimeout > 0 || cfg.AuthzRetries > 0 || cfg.CircuitBreaker
	if resilient {
		// The wrapper must be installed before options that use it take
		// effect; SetPDPWrapper rebuilds every chain, so order relative
		// to SetCalloutOptions does not otherwise matter.
		resilience.Install(reg, cfg.AuditLog, cfg.Metrics)
	}
	if cfg.ParallelAuthz || cfg.DecisionCache || resilient {
		o := core.CalloutOptions{
			Parallel:         cfg.ParallelAuthz,
			Cache:            cfg.DecisionCache,
			CacheTTL:         cfg.DecisionCacheTTL,
			CacheShards:      cfg.DecisionCacheShards,
			PDPTimeout:       cfg.PDPTimeout,
			Retries:          cfg.AuthzRetries,
			RetryBackoff:     cfg.AuthzRetryBackoff,
			Breaker:          cfg.CircuitBreaker,
			BreakerThreshold: cfg.BreakerThreshold,
			BreakerCooldown:  cfg.BreakerCooldown,
		}
		reg.SetCalloutOptions(core.CalloutJobManager, o)
		reg.SetCalloutOptions(core.CalloutGatekeeper, o)
	}
	// Any VO mutation (membership, jobtags) must be visible on the very
	// next request even when decisions are cached.
	for _, v := range cfg.VOs {
		v.OnChange(reg.InvalidateCaches)
	}

	cluster := cfg.SharedCluster
	if cluster == nil {
		cluster = jobcontrol.NewCluster(cfg.CPUs)
	}
	var monitor *sandbox.Monitor
	if cfg.Sandbox {
		monitor = sandbox.NewMonitor(cluster, true)
	}

	gkMode := gram.AuthzLegacy
	if cfg.Mode == ModeCallout {
		gkMode = gram.AuthzCallout
	}
	gkPlacement := gram.PlacementJM
	if cfg.Placement == PlacementGatekeeper {
		gkPlacement = gram.PlacementGatekeeper
	}
	gramCfg := gram.Config{
		Credential:       gkCred,
		Trust:            f.Trust,
		VOCerts:          voCerts,
		GridMap:          gmap,
		Accounts:         acctMgr,
		DynamicAccounts:  cfg.DynamicAccounts,
		Registry:         reg,
		Mode:             gkMode,
		Placement:        gkPlacement,
		Cluster:          cluster,
		DefaultPriority:  cfg.DefaultPriority,
		TamperJMI:        cfg.TamperJMI,
		TicketLifetime:   cfg.SessionTicketLifetime,
		TicketRing:       cfg.SessionTicketRing,
		Jobs:             cfg.SharedJobs,
		ConnWorkers:      cfg.ConnWorkers,
		HandshakeTimeout: cfg.HandshakeTimeout,
		IdleTimeout:      cfg.IdleTimeout,
		Audit:            cfg.AuditLog,
		Metrics:          cfg.Metrics,
		Traces:           cfg.DecisionTraces,
	}
	if cfg.Allocation != nil {
		cfg.Allocation.Attach(cluster)
		gramCfg.OnJobStart = cfg.Allocation.Rebind
		gramCfg.OnJobAborted = func(contact string) { cfg.Allocation.Commit(contact, 0) }
	}
	gk, err := gram.NewGatekeeper(gramCfg)
	if err != nil {
		return nil, err
	}
	listenAddr := cfg.Addr
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("gridauth: listen: %w", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = gk.Serve(l)
	}()
	return &Resource{
		Addr:       l.Addr().String(),
		Gatekeeper: gk,
		Cluster:    cluster,
		Registry:   reg,
		Accounts:   acctMgr,
		Monitor:    monitor,
		fabric:     f,
		done:       done,
	}, nil
}

// Close stops the resource and waits for its connections to drain.
func (r *Resource) Close() {
	r.Gatekeeper.Close()
	<-r.done
}

// Client returns a GRAM client for the resource, authenticating with a
// fresh proxy delegated from cred and presenting the given assertions.
func (r *Resource) Client(cred *gsi.Credential, assertions ...*gsi.Assertion) (*gram.Client, error) {
	proxy, err := gsi.Delegate(cred, 12*time.Hour, false)
	if err != nil {
		return nil, fmt.Errorf("gridauth: delegate proxy: %w", err)
	}
	return gram.NewClient(r.Addr, proxy, r.fabric.Trust, assertions...), nil
}
