package gridauth

import (
	"testing"
	"time"

	"gridauth/internal/gram"
	"gridauth/internal/gsi"
	"gridauth/internal/obs"
	"gridauth/internal/policy"
	"gridauth/internal/sandbox"
	"gridauth/internal/vo"
)

func TestFabricQuickstart(t *testing.T) {
	fab, err := NewFabric("/O=Grid/CN=Test CA")
	if err != nil {
		t.Fatal(err)
	}
	alice, err := fab.IssueUser("/O=Grid/CN=Alice")
	if err != nil {
		t.Fatal(err)
	}
	res, err := fab.StartResource(ResourceConfig{
		Name: "cluster.example.org",
		CPUs: 8,
		Mode: ModeCallout,
		GridMap: map[gsi.DN][]string{
			alice.Identity(): {"alice"},
		},
		VOPolicy: `/O=Grid/CN=Alice: &(action = start)(executable = sim)(count<8) &(action = cancel information signal)(jobowner = self)`,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()

	client, err := res.Client(alice)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	contact, err := client.Submit(`&(executable=sim)(count=4)(simduration=60)`, "")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err := client.Status(contact)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != gram.StateActive {
		t.Errorf("state = %s", st.State)
	}
	if _, err := client.Submit(`&(executable=sim)(count=16)`, ""); !gram.IsAuthorizationDenied(err) {
		t.Errorf("over-limit submit = %v, want denial", err)
	}
	res.Cluster.Advance(2 * time.Minute)
	if st, _ := client.Status(contact); st.State != gram.StateDone {
		t.Errorf("state after advance = %s", st.State)
	}
}

func TestFabricWithVOAssertions(t *testing.T) {
	fab, err := NewFabric("/O=Grid/CN=Test CA")
	if err != nil {
		t.Fatal(err)
	}
	nfc, err := fab.NewVO("NFC", "/O=Grid/CN=NFC VO")
	if err != nil {
		t.Fatal(err)
	}
	if err := nfc.DefineJobtag(vo.Jobtag{Name: "NFC", ManagerRole: vo.RoleAdmin}); err != nil {
		t.Fatal(err)
	}
	kate, err := fab.IssueUser("/O=Grid/CN=Kate")
	if err != nil {
		t.Fatal(err)
	}
	if err := nfc.AddMember(&vo.Member{
		Identity: kate.Identity(),
		Roles:    []string{vo.RoleAnalyst},
		Jobtags:  []string{"NFC"},
	}); err != nil {
		t.Fatal(err)
	}
	assertion, err := nfc.IssueAssertion(kate.Identity())
	if err != nil {
		t.Fatal(err)
	}
	res, err := fab.StartResource(ResourceConfig{
		Name: "fusion.anl.gov",
		Mode: ModeCallout,
		GridMap: map[gsi.DN][]string{
			kate.Identity(): {"keahey"},
		},
		VOPolicy: `/O=Grid/CN=Kate: &(action = start)(executable = TRANSP)(jobtag = NFC)`,
		VOs:      []*vo.VO{nfc},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()

	// Without the assertion the VO membership PDP denies.
	bare, err := res.Client(kate)
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if _, err := bare.Submit(`&(executable=TRANSP)(jobtag=NFC)`, ""); !gram.IsAuthorizationDenied(err) {
		t.Errorf("submission without VO credential = %v, want denial", err)
	}

	withVO, err := res.Client(kate, assertion)
	if err != nil {
		t.Fatal(err)
	}
	defer withVO.Close()
	if _, err := withVO.Submit(`&(executable=TRANSP)(jobtag=NFC)`, ""); err != nil {
		t.Errorf("submission with VO credential failed: %v", err)
	}
}

func TestResourceConfigValidation(t *testing.T) {
	fab, err := NewFabric("/O=Grid/CN=Test CA")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fab.StartResource(ResourceConfig{}); err == nil {
		t.Errorf("nameless resource accepted")
	}
	if _, err := fab.StartResource(ResourceConfig{Name: "x", Mode: ModeCallout}); err == nil {
		t.Errorf("callout mode without policy accepted")
	}
	if _, err := fab.StartResource(ResourceConfig{Name: "x", VOPolicy: "garbage("}); err == nil {
		t.Errorf("bad policy accepted")
	}
}

func TestSandboxOnResource(t *testing.T) {
	fab, err := NewFabric("/O=Grid/CN=Test CA")
	if err != nil {
		t.Fatal(err)
	}
	alice, err := fab.IssueUser("/O=Grid/CN=Alice")
	if err != nil {
		t.Fatal(err)
	}
	res, err := fab.StartResource(ResourceConfig{
		Name:    "sandboxed.example.org",
		Mode:    ModeLegacy,
		Sandbox: true,
		GridMap: map[gsi.DN][]string{alice.Identity(): {"alice"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if res.Monitor == nil {
		t.Fatalf("sandbox monitor not attached")
	}
	client, err := res.Client(alice)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	contact, err := client.Submit(`&(executable=hog)(count=2)(simduration=3600)`, "")
	if err != nil {
		t.Fatal(err)
	}
	jmi, ok := res.Gatekeeper.Job(contact)
	if !ok {
		t.Fatal("no JMI")
	}
	res.Monitor.Attach(jmi.LRMJobID(), sandbox.Limits{MaxCPUSeconds: 60})
	res.Cluster.Advance(2 * time.Minute)
	if vs := res.Monitor.Poll(); len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	if st, _ := client.Status(contact); st.State != gram.StateCanceled {
		t.Errorf("state = %s, want CANCELED by sandbox", st.State)
	}
}

// Every policy version installed into a bound store — the initial one
// and every swap — is statically analyzed, with findings counted into
// policy_findings_total.
func TestPolicyStoreSwapCountsFindings(t *testing.T) {
	fab, err := NewFabric("/O=Grid/CN=Test CA")
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics()
	store := policy.NewStore(policy.MustParse(
		`/O=Grid/CN=Alice: &(action = start)(executable = sim)`, "VO"))
	res, err := fab.StartResource(ResourceConfig{
		Name:         "cluster.example.org",
		Mode:         ModeCallout,
		PolicyStores: []*policy.Store{store},
		Metrics:      m,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()

	if got := m.PolicyFindings.Load(); got != 0 {
		t.Fatalf("clean initial policy counted %d findings", got)
	}
	// Swap in a policy whose second grant is shadowed by its first: the
	// hook must analyze the new snapshot synchronously.
	if err := store.UpdateText(`
/O=Grid/CN=Alice:
  &(action = start)(executable = sim)
  &(action = start)(executable = sim)(count <= 4)
`); err != nil {
		t.Fatal(err)
	}
	if got := m.PolicyFindings.Load(); got != 1 {
		t.Fatalf("policy_findings_total = %d after shadowed swap, want 1", got)
	}
	// A clean swap adds nothing further.
	if err := store.UpdateText(`/O=Grid/CN=Alice: &(action = start)(executable = sim)`); err != nil {
		t.Fatal(err)
	}
	if got := m.PolicyFindings.Load(); got != 1 {
		t.Fatalf("policy_findings_total = %d after clean swap, want 1", got)
	}
}
