package gridauth

// Cross-subsystem integration tests wiring the extension packages
// (allocation, audit) into a live TCP resource through the facade.

import (
	"strings"
	"testing"
	"time"

	"gridauth/internal/allocation"
	"gridauth/internal/audit"
	"gridauth/internal/core"
	"gridauth/internal/gram"
	"gridauth/internal/gsi"
	"gridauth/internal/policy"
)

// TestVOAllocationOnResource demonstrates the §2 split end to end: the
// provider grants the VO a coarse CPU-second budget; the VO's fine-grain
// policy splits it among members; once the VO as a whole exhausts the
// budget, further startups are refused no matter what the VO policy
// says.
func TestVOAllocationOnResource(t *testing.T) {
	fab, err := NewFabric("/O=Grid/CN=Integration CA")
	if err != nil {
		t.Fatal(err)
	}
	kate, err := fab.IssueUser("/O=Grid/CN=Kate")
	if err != nil {
		t.Fatal(err)
	}

	tracker := allocation.NewTracker()
	tracker.SetGrant(allocation.Grant{VO: "NFC", CPUSeconds: 7200}) // 2 cpu-hours
	tracker.Enroll(kate.Identity(), "NFC")

	res, err := fab.StartResource(ResourceConfig{
		Name: "alloc.anl.gov",
		Mode: ModeCallout,
		GridMap: map[gsi.DN][]string{
			kate.Identity(): {"keahey"},
		},
		VOPolicy:   `/O=Grid/CN=Kate: &(action = start)(executable = TRANSP)(maxtime != NULL) &(action = cancel information signal)(jobowner = self)`,
		Allocation: tracker,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()

	client, err := res.Client(kate)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Two 1-cpu-hour jobs fit the grant exactly.
	for i := 0; i < 2; i++ {
		if _, err := client.Submit(`&(executable=TRANSP)(count=2)(maxtime=30)(simduration=600)`, ""); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	// The third exceeds the VO's budget: denied by the allocation PDP,
	// not by VO policy.
	_, err = client.Submit(`&(executable=TRANSP)(count=2)(maxtime=30)`, "")
	if !gram.IsAuthorizationDenied(err) {
		t.Fatalf("over-budget submit = %v", err)
	}
	if !strings.Contains(err.Error(), "exhausted") {
		t.Errorf("denial does not name the allocation: %v", err)
	}

	// When jobs finish under their worst case, the difference returns to
	// the budget and admission resumes.
	res.Cluster.Advance(11 * time.Minute)
	u, err := tracker.UsageOf("NFC")
	if err != nil {
		t.Fatal(err)
	}
	if u.Reserved != 0 {
		t.Fatalf("reservations not committed: %+v", u)
	}
	if u.Used != 2*2*600 { // two jobs × 2 cpus × 600 s
		t.Errorf("used = %v", u.Used)
	}
	if _, err := client.Submit(`&(executable=TRANSP)(count=1)(maxtime=30)(simduration=60)`, ""); err != nil {
		t.Errorf("post-release submit: %v", err)
	}
}

// TestAuditedResource verifies that wrapping the callout chain in the
// audit middleware records every decision flowing through a live
// gatekeeper.
func TestAuditedResource(t *testing.T) {
	fab, err := NewFabric("/O=Grid/CN=Audit CA")
	if err != nil {
		t.Fatal(err)
	}
	kate, err := fab.IssueUser("/O=Grid/CN=Kate")
	if err != nil {
		t.Fatal(err)
	}
	log := audit.NewLog(64)
	pol := `/O=Grid/CN=Kate: &(action = start)(executable = sim)(count<4) &(action = cancel information signal)(jobowner = self)`
	res, err := fab.StartResource(ResourceConfig{
		Name:    "audited.anl.gov",
		Mode:    ModeCallout,
		GridMap: map[gsi.DN][]string{kate.Identity(): {"keahey"}},
		ExtraPDPs: []core.PDP{
			audit.Wrap(mustPolicyPDP(t, pol), log),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	client, err := res.Client(kate)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	contact, err := client.Submit(`&(executable=sim)(count=2)(simduration=600)`, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Submit(`&(executable=sim)(count=8)`, ""); !gram.IsAuthorizationDenied(err) {
		t.Fatalf("oversized submit = %v", err)
	}
	if err := client.Cancel(contact); err != nil {
		t.Fatal(err)
	}

	stats := log.Stats()
	if stats["permit"] < 2 { // start + cancel
		t.Errorf("permits audited = %d (%v)", stats["permit"], stats)
	}
	if stats["deny"] != 1 {
		t.Errorf("denies audited = %d (%v)", stats["deny"], stats)
	}
	denials := log.Denials()
	if len(denials) != 1 || !strings.Contains(denials[0].Reason, "count<4") {
		t.Errorf("denial record = %+v", denials)
	}
	for _, r := range log.Records() {
		if r.Subject != kate.Identity() {
			t.Errorf("record subject = %s", r.Subject)
		}
		if r.Elapsed <= 0 {
			t.Errorf("record without latency")
		}
	}
}

func mustPolicyPDP(t *testing.T, text string) core.PDP {
	t.Helper()
	pol, err := policy.ParseString(text, "VO")
	if err != nil {
		t.Fatal(err)
	}
	return &core.PolicyPDP{Policy: pol}
}
