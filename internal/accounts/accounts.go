// Package accounts models the local-account layer GRAM enforcement rests
// on: static Unix-style accounts with coarse rights, and the dynamic
// account pool discussed in §6.1 as a partial remedy for the paper's
// shortcomings (4) and (5) — enforcement "tied to a statically configured
// local account" and the burden of requiring an account per user.
//
// An account's rights are deliberately coarse (group memberships, a disk
// quota, a CPU cap): the point the paper makes — and experiment E6
// measures — is that accounts cannot express fine-grain policy, only
// approximate it.
package accounts

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"gridauth/internal/gsi"
)

// Errors returned by the manager.
var (
	ErrUnknownAccount = errors.New("accounts: unknown account")
	ErrPoolExhausted  = errors.New("accounts: dynamic account pool exhausted")
	ErrNotLeased      = errors.New("accounts: account is not leased")
)

// Rights are the coarse-grained controls an account can carry — the
// "very few configuration parameters" accounts offer for enforcement.
type Rights struct {
	// Groups control file system access (the §6.1 sandbox-by-groups
	// remark).
	Groups []string
	// MaxCPUs caps processors per job (0 = unlimited).
	MaxCPUs int
	// DiskQuotaMB caps disk use (0 = unlimited).
	DiskQuotaMB int
	// MaxWallTime caps job runtime (0 = unlimited).
	MaxWallTime time.Duration
}

// Account is a local account.
type Account struct {
	Name string
	UID  int
	// Dynamic marks pool accounts created/recycled on the fly.
	Dynamic bool
	Rights  Rights
	// LeasedTo is the Grid identity currently bound to a dynamic
	// account.
	LeasedTo gsi.DN
	// LeaseExpires is when the lease lapses.
	LeaseExpires time.Time
}

// Manager owns the static account table and the dynamic pool.
type Manager struct {
	mu      sync.Mutex
	static  map[string]*Account
	pool    []*Account
	leases  map[gsi.DN]*Account
	nextUID int
	now     func() time.Time
}

// Option configures a Manager.
type Option func(*Manager)

// WithClock sets the manager's time source.
func WithClock(now func() time.Time) Option {
	return func(m *Manager) { m.now = now }
}

// NewManager creates an account manager.
func NewManager(opts ...Option) *Manager {
	m := &Manager{
		static:  make(map[string]*Account),
		leases:  make(map[gsi.DN]*Account),
		nextUID: 1000,
		now:     time.Now,
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// AddStatic installs a static account.
func (m *Manager) AddStatic(name string, rights Rights) *Account {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextUID++
	a := &Account{Name: name, UID: m.nextUID, Rights: cloneRights(rights)}
	m.static[name] = a
	return cloneAccount(a)
}

// Lookup finds an account by name (static accounts and leased dynamic
// accounts).
func (m *Manager) Lookup(name string) (*Account, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if a, ok := m.static[name]; ok {
		return cloneAccount(a), nil
	}
	for _, a := range m.pool {
		if a.Name == name {
			return cloneAccount(a), nil
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrUnknownAccount, name)
}

// Exists reports whether the named account exists.
func (m *Manager) Exists(name string) bool {
	_, err := m.Lookup(name)
	return err == nil
}

// ProvisionPool creates n dynamic accounts named prefixNNN.
func (m *Manager) ProvisionPool(prefix string, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := 0; i < n; i++ {
		m.nextUID++
		m.pool = append(m.pool, &Account{
			Name:    prefix + strconv.Itoa(len(m.pool)+1),
			UID:     m.nextUID,
			Dynamic: true,
		})
	}
}

// Lease binds a dynamic account to a Grid identity for ttl, configuring
// it with rights derived from the *request* rather than from a static
// user profile — the property §6.1 highlights: "account configuration
// relevant to policies for a particular resource management request as
// opposed to a static user's configuration". A second lease for the same
// identity extends the existing one.
func (m *Manager) Lease(id gsi.DN, rights Rights, ttl time.Duration) (*Account, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	if a, ok := m.leases[id]; ok {
		a.Rights = cloneRights(rights)
		a.LeaseExpires = now.Add(ttl)
		return cloneAccount(a), nil
	}
	for _, a := range m.pool {
		if a.LeasedTo != "" && a.LeaseExpires.After(now) {
			continue
		}
		if a.LeasedTo != "" {
			delete(m.leases, a.LeasedTo) // expired: recycle
		}
		a.LeasedTo = id
		a.LeaseExpires = now.Add(ttl)
		a.Rights = cloneRights(rights)
		m.leases[id] = a
		return cloneAccount(a), nil
	}
	return nil, ErrPoolExhausted
}

// Release returns an identity's dynamic account to the pool, scrubbing
// its configuration.
func (m *Manager) Release(id gsi.DN) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.leases[id]
	if !ok {
		return fmt.Errorf("%w: no lease for %s", ErrNotLeased, id)
	}
	delete(m.leases, id)
	a.LeasedTo = ""
	a.LeaseExpires = time.Time{}
	a.Rights = Rights{}
	return nil
}

// LeaseFor returns the active dynamic account for an identity.
func (m *Manager) LeaseFor(id gsi.DN) (*Account, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.leases[id]
	if !ok || !a.LeaseExpires.After(m.now()) {
		return nil, false
	}
	return cloneAccount(a), true
}

// Accounts lists every account, static first, sorted by name.
func (m *Manager) Accounts() []*Account {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Account, 0, len(m.static)+len(m.pool))
	for _, a := range m.static {
		out = append(out, cloneAccount(a))
	}
	for _, a := range m.pool {
		out = append(out, cloneAccount(a))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dynamic != out[j].Dynamic {
			return !out[i].Dynamic
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// CheckJob applies the account's coarse rights to a job request,
// returning nil when the account's privileges admit it. This is the
// "enforcement by privileges of the account" of §4.1 — note what it
// CANNOT check: executables, directories, jobtags, per-request limits.
func (a *Account) CheckJob(cpus int, diskMB int, wall time.Duration) error {
	if a.Rights.MaxCPUs > 0 && cpus > a.Rights.MaxCPUs {
		return fmt.Errorf("accounts: %s may use at most %d cpus, requested %d", a.Name, a.Rights.MaxCPUs, cpus)
	}
	if a.Rights.DiskQuotaMB > 0 && diskMB > a.Rights.DiskQuotaMB {
		return fmt.Errorf("accounts: %s disk quota %dMB exceeded by %dMB request", a.Name, a.Rights.DiskQuotaMB, diskMB)
	}
	if a.Rights.MaxWallTime > 0 && wall > a.Rights.MaxWallTime {
		return fmt.Errorf("accounts: %s wall time cap %s exceeded by %s request", a.Name, a.Rights.MaxWallTime, wall)
	}
	return nil
}

// InGroup reports whether the account belongs to the group.
func (a *Account) InGroup(group string) bool {
	for _, g := range a.Rights.Groups {
		if g == group {
			return true
		}
	}
	return false
}

func cloneRights(r Rights) Rights {
	cp := r
	cp.Groups = append([]string(nil), r.Groups...)
	return cp
}

func cloneAccount(a *Account) *Account {
	cp := *a
	cp.Rights = cloneRights(a.Rights)
	return &cp
}
