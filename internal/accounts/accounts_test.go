package accounts

import (
	"errors"
	"testing"
	"time"

	"gridauth/internal/gsi"
)

const (
	kate = gsi.DN("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey")
	bo   = gsi.DN("/O=Grid/O=Globus/OU=uh.edu/CN=Bo Liu")
)

func TestStaticAccounts(t *testing.T) {
	m := NewManager()
	m.AddStatic("keahey", Rights{Groups: []string{"fusion"}, MaxCPUs: 8})
	a, err := m.Lookup("keahey")
	if err != nil {
		t.Fatal(err)
	}
	if !a.InGroup("fusion") || a.InGroup("wheel") {
		t.Errorf("group membership wrong")
	}
	if !m.Exists("keahey") || m.Exists("nobody") {
		t.Errorf("Exists wrong")
	}
	if _, err := m.Lookup("nobody"); !errors.Is(err, ErrUnknownAccount) {
		t.Errorf("Lookup(nobody) = %v", err)
	}
}

func TestCheckJobCoarseRights(t *testing.T) {
	m := NewManager()
	acct := m.AddStatic("bliu", Rights{MaxCPUs: 4, DiskQuotaMB: 100, MaxWallTime: time.Hour})
	if err := acct.CheckJob(4, 100, time.Hour); err != nil {
		t.Errorf("within rights rejected: %v", err)
	}
	if err := acct.CheckJob(5, 10, time.Minute); err == nil {
		t.Errorf("cpu cap not enforced")
	}
	if err := acct.CheckJob(1, 101, time.Minute); err == nil {
		t.Errorf("disk quota not enforced")
	}
	if err := acct.CheckJob(1, 10, 2*time.Hour); err == nil {
		t.Errorf("wall cap not enforced")
	}
	unlimited := m.AddStatic("root", Rights{})
	if err := unlimited.CheckJob(1000, 1<<20, 1000*time.Hour); err != nil {
		t.Errorf("zero rights should be unlimited: %v", err)
	}
}

func TestDynamicLeaseLifecycle(t *testing.T) {
	now := time.Date(2003, 6, 16, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	m := NewManager(WithClock(clock))
	m.ProvisionPool("grid", 2)

	a1, err := m.Lease(kate, Rights{MaxCPUs: 4}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Dynamic || a1.LeasedTo != kate {
		t.Errorf("lease = %+v", a1)
	}
	// Re-lease extends and reconfigures.
	a1b, err := m.Lease(kate, Rights{MaxCPUs: 8}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if a1b.Name != a1.Name || a1b.Rights.MaxCPUs != 8 {
		t.Errorf("re-lease = %+v", a1b)
	}
	a2, err := m.Lease(bo, Rights{}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Name == a1.Name {
		t.Errorf("two identities share an account")
	}
	// Pool exhausted.
	if _, err := m.Lease("/O=Grid/CN=Third", Rights{}, time.Hour); !errors.Is(err, ErrPoolExhausted) {
		t.Errorf("exhaustion = %v", err)
	}
	// Release frees and scrubs.
	if err := m.Release(kate); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.LeaseFor(kate); ok {
		t.Errorf("lease survives release")
	}
	a3, err := m.Lease("/O=Grid/CN=Third", Rights{}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if a3.Rights.MaxCPUs != 0 {
		t.Errorf("recycled account kept old rights")
	}
	if err := m.Release(kate); !errors.Is(err, ErrNotLeased) {
		t.Errorf("double release = %v", err)
	}
}

func TestLeaseExpiryRecycles(t *testing.T) {
	now := time.Date(2003, 6, 16, 12, 0, 0, 0, time.UTC)
	m := NewManager(WithClock(func() time.Time { return now }))
	m.ProvisionPool("grid", 1)
	if _, err := m.Lease(kate, Rights{}, time.Minute); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute) // lease lapses
	if _, ok := m.LeaseFor(kate); ok {
		t.Errorf("expired lease still active")
	}
	a, err := m.Lease(bo, Rights{}, time.Hour)
	if err != nil {
		t.Fatalf("expired account not recycled: %v", err)
	}
	if a.LeasedTo != bo {
		t.Errorf("recycled lease holder = %s", a.LeasedTo)
	}
}

func TestAccountsListing(t *testing.T) {
	m := NewManager()
	m.AddStatic("zeta", Rights{})
	m.AddStatic("alpha", Rights{})
	m.ProvisionPool("grid", 2)
	all := m.Accounts()
	if len(all) != 4 {
		t.Fatalf("Accounts = %d", len(all))
	}
	if all[0].Name != "alpha" || all[1].Name != "zeta" {
		t.Errorf("static ordering wrong: %s, %s", all[0].Name, all[1].Name)
	}
	if !all[2].Dynamic || !all[3].Dynamic {
		t.Errorf("pool accounts should sort after static")
	}
}

func TestSnapshotsAreIsolated(t *testing.T) {
	m := NewManager()
	m.AddStatic("keahey", Rights{Groups: []string{"fusion"}})
	a, err := m.Lookup("keahey")
	if err != nil {
		t.Fatal(err)
	}
	a.Rights.Groups[0] = "mutated"
	b, err := m.Lookup("keahey")
	if err != nil {
		t.Fatal(err)
	}
	if b.Rights.Groups[0] != "fusion" {
		t.Errorf("Lookup leaked internal state")
	}
}
