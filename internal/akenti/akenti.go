// Package akenti implements an Akenti-style certificate-based
// authorization system (Thompson et al., "Certificate-based Access
// Control for Widely Distributed Resources", USENIX Security '99), the
// first third-party system the paper integrated with its GRAM callouts:
// "This work has recently been tested with the Akenti system representing
// the same policies as described here."
//
// Akenti's model: independent STAKEHOLDERS each publish signed
// use-condition certificates for a resource; users hold signed attribute
// certificates binding attribute=value pairs to their identity. Access is
// granted when, for every stakeholder with use conditions on the
// resource, at least one of that stakeholder's conditions is satisfied by
// the user's trusted attributes. Use conditions may additionally carry
// RSL constraint sets — which is exactly how the paper's policies were
// represented in Akenti.
package akenti

import (
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"gridauth/internal/core"
	"gridauth/internal/gsi"
	"gridauth/internal/policy"
	"gridauth/internal/rsl"
)

// Errors reported by the engine.
var (
	ErrUntrustedIssuer = errors.New("akenti: issuer is not trusted")
	ErrBadSignature    = errors.New("akenti: invalid signature")
)

// AttributeCertificate binds attribute=value to a subject, signed by an
// attribute authority.
type AttributeCertificate struct {
	Subject   gsi.DN    `json:"subject"`
	Attribute string    `json:"attribute"`
	Value     string    `json:"value"`
	Issuer    gsi.DN    `json:"issuer"`
	NotBefore time.Time `json:"notBefore"`
	NotAfter  time.Time `json:"notAfter"`
	Signature []byte    `json:"signature"`
}

func (ac *AttributeCertificate) tbs() ([]byte, error) {
	shadow := *ac
	shadow.Signature = nil
	return json.Marshal(&shadow)
}

// SignAttribute issues an attribute certificate.
func SignAttribute(ac *AttributeCertificate, issuer *gsi.Credential) error {
	ac.Issuer = issuer.Subject()
	msg, err := ac.tbs()
	if err != nil {
		return fmt.Errorf("encode attribute certificate: %w", err)
	}
	sig, err := issuer.Sign(msg)
	if err != nil {
		return err
	}
	ac.Signature = sig
	return nil
}

// Requirement is one attribute=value a use condition demands, restricted
// to attribute authorities the stakeholder trusts.
type Requirement struct {
	Attribute string `json:"attribute"`
	Value     string `json:"value"`
	// Issuers lists the attribute authorities whose certificates satisfy
	// the requirement; empty means any issuer the engine trusts.
	Issuers []gsi.DN `json:"issuers,omitempty"`
}

// UseCondition is a stakeholder's signed grant for a resource.
type UseCondition struct {
	Resource string `json:"resource"`
	// Actions the condition covers (policy action names).
	Actions []string `json:"actions"`
	// Requirements the user's attributes must meet (conjunction).
	Requirements []Requirement `json:"requirements"`
	// Constraint optionally restricts the job description, in the
	// paper's policy language (an RSL assertion set, e.g.
	// "(executable = TRANSP)(count<4)"). Empty means unconstrained.
	Constraint string    `json:"constraint,omitempty"`
	Issuer     gsi.DN    `json:"issuer"`
	NotBefore  time.Time `json:"notBefore"`
	NotAfter   time.Time `json:"notAfter"`
	Signature  []byte    `json:"signature"`
}

func (uc *UseCondition) tbs() ([]byte, error) {
	shadow := *uc
	shadow.Signature = nil
	return json.Marshal(&shadow)
}

// SignUseCondition issues a use condition from a stakeholder credential.
func SignUseCondition(uc *UseCondition, stakeholder *gsi.Credential) error {
	uc.Issuer = stakeholder.Subject()
	msg, err := uc.tbs()
	if err != nil {
		return fmt.Errorf("encode use condition: %w", err)
	}
	sig, err := stakeholder.Sign(msg)
	if err != nil {
		return err
	}
	uc.Signature = sig
	return nil
}

// Engine is the Akenti policy engine for one administrative domain.
type Engine struct {
	mu sync.RWMutex
	// stakeholders and attribute authorities trusted by this engine,
	// keyed by DN.
	stakeholders map[gsi.DN]ed25519.PublicKey
	attrIssuers  map[gsi.DN]ed25519.PublicKey
	// conditions per resource.
	conditions map[string][]*UseCondition
	// attribute certificate repository, per subject (Akenti fetches
	// these from directories; we store them directly).
	attrs map[gsi.DN][]*AttributeCertificate
	now   func() time.Time
	hooks []func()
}

// OnChange subscribes fn to policy-relevant mutations: trusting a new
// stakeholder or attribute issuer, installing a use condition, storing
// an attribute certificate. Resources caching decisions from an Akenti
// PDP wire fn to their registry's InvalidateCaches so certificate-store
// changes take effect on the very next request.
func (e *Engine) OnChange(fn func()) {
	if fn == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.hooks = append(e.hooks, fn)
}

// notifyChange runs the hooks outside the lock.
func (e *Engine) notifyChange() {
	e.mu.RLock()
	hooks := append([]func(){}, e.hooks...)
	e.mu.RUnlock()
	for _, fn := range hooks {
		fn()
	}
}

// Option configures the engine.
type Option func(*Engine)

// WithClock sets the engine's time source.
func WithClock(now func() time.Time) Option {
	return func(e *Engine) { e.now = now }
}

// NewEngine creates an empty engine.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		stakeholders: make(map[gsi.DN]ed25519.PublicKey),
		attrIssuers:  make(map[gsi.DN]ed25519.PublicKey),
		conditions:   make(map[string][]*UseCondition),
		attrs:        make(map[gsi.DN][]*AttributeCertificate),
		now:          time.Now,
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// TrustStakeholder registers a stakeholder certificate.
func (e *Engine) TrustStakeholder(cert *gsi.Certificate) {
	e.mu.Lock()
	e.stakeholders[cert.Subject] = ed25519.PublicKey(cert.PublicKey)
	e.mu.Unlock()
	e.notifyChange()
}

// TrustAttributeIssuer registers an attribute authority certificate.
func (e *Engine) TrustAttributeIssuer(cert *gsi.Certificate) {
	e.mu.Lock()
	e.attrIssuers[cert.Subject] = ed25519.PublicKey(cert.PublicKey)
	e.mu.Unlock()
	e.notifyChange()
}

// AddUseCondition installs a use condition after verifying its signature
// against a trusted stakeholder.
func (e *Engine) AddUseCondition(uc *UseCondition) error {
	e.mu.RLock()
	key, ok := e.stakeholders[uc.Issuer]
	e.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: stakeholder %s", ErrUntrustedIssuer, uc.Issuer)
	}
	msg, err := uc.tbs()
	if err != nil {
		return err
	}
	if !ed25519.Verify(key, msg, uc.Signature) {
		return ErrBadSignature
	}
	if uc.Constraint != "" {
		// Fail early on malformed constraints.
		if _, err := rsl.Parse("&" + uc.Constraint); err != nil {
			return fmt.Errorf("akenti: bad constraint: %w", err)
		}
	}
	e.mu.Lock()
	e.conditions[uc.Resource] = append(e.conditions[uc.Resource], uc)
	e.mu.Unlock()
	e.notifyChange()
	return nil
}

// StoreAttribute verifies and stores an attribute certificate in the
// repository.
func (e *Engine) StoreAttribute(ac *AttributeCertificate) error {
	e.mu.RLock()
	key, ok := e.attrIssuers[ac.Issuer]
	e.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: attribute issuer %s", ErrUntrustedIssuer, ac.Issuer)
	}
	msg, err := ac.tbs()
	if err != nil {
		return err
	}
	if !ed25519.Verify(key, msg, ac.Signature) {
		return ErrBadSignature
	}
	e.mu.Lock()
	e.attrs[ac.Subject] = append(e.attrs[ac.Subject], ac)
	e.mu.Unlock()
	e.notifyChange()
	return nil
}

// Authorize runs the Akenti decision for subject performing action on
// resource with the given job description. Every stakeholder holding
// conditions on the resource must grant (one of their conditions covering
// the action must be satisfied); a resource with no conditions denies.
func (e *Engine) Authorize(resource string, subject gsi.DN, action string, spec *rsl.Spec) (bool, string) {
	now := e.now()
	e.mu.RLock()
	conds := append([]*UseCondition(nil), e.conditions[resource]...)
	attrs := append([]*AttributeCertificate(nil), e.attrs[subject]...)
	e.mu.RUnlock()

	if len(conds) == 0 {
		return false, fmt.Sprintf("no use conditions published for resource %q", resource)
	}

	// Live attributes for the subject.
	live := make(map[string][]*AttributeCertificate)
	for _, ac := range attrs {
		if now.Before(ac.NotBefore) || now.After(ac.NotAfter) {
			continue
		}
		live[ac.Attribute+"="+ac.Value] = append(live[ac.Attribute+"="+ac.Value], ac)
	}

	// Group conditions by stakeholder; each must grant.
	byStakeholder := make(map[gsi.DN][]*UseCondition)
	for _, uc := range conds {
		byStakeholder[uc.Issuer] = append(byStakeholder[uc.Issuer], uc)
	}
	for issuer, ucs := range byStakeholder {
		granted := false
		var lastReason string
		for _, uc := range ucs {
			ok, reason := e.conditionSatisfied(uc, subject, action, spec, live, now)
			if ok {
				granted = true
				break
			}
			lastReason = reason
		}
		if !granted {
			if lastReason == "" {
				lastReason = "no condition covers action " + action
			}
			return false, fmt.Sprintf("stakeholder %s does not grant: %s", issuer, lastReason)
		}
	}
	return true, "all stakeholders grant"
}

func (e *Engine) conditionSatisfied(uc *UseCondition, subject gsi.DN, action string, spec *rsl.Spec, live map[string][]*AttributeCertificate, now time.Time) (bool, string) {
	if now.Before(uc.NotBefore) || now.After(uc.NotAfter) {
		return false, "use condition expired"
	}
	if !containsString(uc.Actions, action) {
		return false, "action not covered"
	}
	for _, req := range uc.Requirements {
		certs := live[req.Attribute+"="+req.Value]
		if len(certs) == 0 {
			return false, fmt.Sprintf("missing attribute %s=%s", req.Attribute, req.Value)
		}
		if len(req.Issuers) > 0 {
			okIssuer := false
			for _, c := range certs {
				for _, want := range req.Issuers {
					if c.Issuer == want {
						okIssuer = true
					}
				}
			}
			if !okIssuer {
				return false, fmt.Sprintf("attribute %s=%s not from a stakeholder-trusted issuer", req.Attribute, req.Value)
			}
		}
	}
	if uc.Constraint != "" {
		set, err := parseConstraint(uc.Constraint)
		if err != nil {
			return false, "malformed constraint"
		}
		preq := &policy.Request{Subject: subject, Action: action, Spec: spec}
		if ok, msg := set.Satisfied(preq); !ok {
			return false, "constraint not satisfied: " + msg
		}
	}
	return true, ""
}

func parseConstraint(text string) (*policy.AssertionSet, error) {
	node, err := rsl.Parse("&" + text)
	if err != nil {
		return nil, err
	}
	set := &policy.AssertionSet{}
	var walk func(rsl.Node) error
	walk = func(n rsl.Node) error {
		switch v := n.(type) {
		case *rsl.Relation:
			set.Clauses = append(set.Clauses, v)
			return nil
		case *rsl.Boolean:
			if v.Op != rsl.And {
				return fmt.Errorf("constraint must be a conjunction")
			}
			for _, c := range v.Children {
				if err := walk(c); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("unexpected node %T", n)
		}
	}
	if err := walk(node); err != nil {
		return nil, err
	}
	return set, nil
}

// PDP adapts the engine to the framework's callout interface for a fixed
// resource name.
type PDP struct {
	// Engine is the Akenti engine to consult.
	Engine *Engine
	// Resource is the Akenti resource name this PEP protects.
	Resource string
}

var _ core.PDP = (*PDP)(nil)

// Name implements core.PDP.
func (p *PDP) Name() string { return "akenti:" + p.Resource }

// Authorize implements core.PDP.
func (p *PDP) Authorize(req *core.Request) core.Decision {
	ok, reason := p.Engine.Authorize(p.Resource, req.Subject, req.Action, req.Spec)
	if ok {
		return core.PermitDecision(p.Name(), reason)
	}
	return core.DenyDecision(p.Name(), reason)
}

// RegisterDriver installs the "akenti" callout driver backed by a shared
// engine; params: resource=<name>.
func RegisterDriver(r *core.Registry, engine *Engine) {
	r.RegisterDriver("akenti", func(params map[string]string) (core.PDP, error) {
		res := params["resource"]
		if res == "" {
			return nil, fmt.Errorf("akenti driver requires resource=")
		}
		return &PDP{Engine: engine, Resource: res}, nil
	})
}

func containsString(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
