package akenti

import (
	"errors"
	"testing"
	"time"

	"gridauth/internal/core"
	"gridauth/internal/gsi"
	"gridauth/internal/policy"
	"gridauth/internal/rsl"
)

const (
	kate     = gsi.DN("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey")
	bo       = gsi.DN("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu")
	resource = "gram:fusion.anl.gov"
)

type fixture struct {
	engine  *Engine
	voCred  *gsi.Credential
	ownCred *gsi.Credential
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	ca, err := gsi.NewCA("/O=Grid/CN=Test CA")
	if err != nil {
		t.Fatal(err)
	}
	voCred, err := ca.Issue("/O=Grid/CN=NFC VO", gsi.KindService)
	if err != nil {
		t.Fatal(err)
	}
	ownCred, err := ca.Issue("/O=Grid/CN=ANL Ops", gsi.KindService)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	e.TrustStakeholder(voCred.Leaf())
	e.TrustStakeholder(ownCred.Leaf())
	e.TrustAttributeIssuer(voCred.Leaf())
	return &fixture{engine: e, voCred: voCred, ownCred: ownCred}
}

func (f *fixture) addCondition(t *testing.T, signer *gsi.Credential, uc *UseCondition) {
	t.Helper()
	uc.Resource = resource
	if uc.NotBefore.IsZero() {
		uc.NotBefore = time.Now().Add(-time.Minute)
		uc.NotAfter = time.Now().Add(time.Hour)
	}
	if err := SignUseCondition(uc, signer); err != nil {
		t.Fatal(err)
	}
	if err := f.engine.AddUseCondition(uc); err != nil {
		t.Fatal(err)
	}
}

func (f *fixture) grantAttr(t *testing.T, subject gsi.DN, attr, value string) {
	t.Helper()
	ac := &AttributeCertificate{
		Subject: subject, Attribute: attr, Value: value,
		NotBefore: time.Now().Add(-time.Minute),
		NotAfter:  time.Now().Add(time.Hour),
	}
	if err := SignAttribute(ac, f.voCred); err != nil {
		t.Fatal(err)
	}
	if err := f.engine.StoreAttribute(ac); err != nil {
		t.Fatal(err)
	}
}

func TestStakeholderConjunction(t *testing.T) {
	f := newFixture(t)
	// VO grants analysts; resource owner grants group=fusion.
	f.addCondition(t, f.voCred, &UseCondition{
		Actions:      []string{policy.ActionStart},
		Requirements: []Requirement{{Attribute: "role", Value: "analyst"}},
	})
	f.addCondition(t, f.ownCred, &UseCondition{
		Actions:      []string{policy.ActionStart},
		Requirements: []Requirement{{Attribute: "group", Value: "fusion"}},
	})
	f.grantAttr(t, kate, "role", "analyst")
	f.grantAttr(t, kate, "group", "fusion")
	f.grantAttr(t, bo, "role", "analyst") // bo lacks the owner's attribute

	if ok, reason := f.engine.Authorize(resource, kate, policy.ActionStart, nil); !ok {
		t.Errorf("kate denied: %s", reason)
	}
	if ok, _ := f.engine.Authorize(resource, bo, policy.ActionStart, nil); ok {
		t.Errorf("bo permitted without all stakeholders granting")
	}
}

func TestConstraintCarriesPaperPolicy(t *testing.T) {
	f := newFixture(t)
	// The paper's Bo Liu rule expressed as an Akenti use condition.
	f.addCondition(t, f.voCred, &UseCondition{
		Actions:      []string{policy.ActionStart},
		Requirements: []Requirement{{Attribute: "member", Value: "NFC"}},
		Constraint:   "(executable = test1)(directory = /sandbox/test)(jobtag = ADS)(count<4)",
	})
	f.grantAttr(t, bo, "member", "NFC")

	ok1, err := rsl.ParseSpec(`&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=3)`)
	if err != nil {
		t.Fatal(err)
	}
	if ok, reason := f.engine.Authorize(resource, bo, policy.ActionStart, ok1); !ok {
		t.Errorf("conforming job denied: %s", reason)
	}
	bad, err := rsl.ParseSpec(`&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=8)`)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := f.engine.Authorize(resource, bo, policy.ActionStart, bad); ok {
		t.Errorf("count limit not enforced through constraint")
	}
}

func TestUnknownResourceDenies(t *testing.T) {
	f := newFixture(t)
	if ok, _ := f.engine.Authorize("gram:elsewhere", kate, policy.ActionStart, nil); ok {
		t.Errorf("resource without conditions permitted")
	}
}

func TestActionCoverage(t *testing.T) {
	f := newFixture(t)
	f.addCondition(t, f.voCred, &UseCondition{
		Actions:      []string{policy.ActionCancel, policy.ActionSignal},
		Requirements: []Requirement{{Attribute: "role", Value: "admin"}},
	})
	f.grantAttr(t, kate, "role", "admin")
	if ok, _ := f.engine.Authorize(resource, kate, policy.ActionCancel, nil); !ok {
		t.Errorf("covered action denied")
	}
	if ok, _ := f.engine.Authorize(resource, kate, policy.ActionStart, nil); ok {
		t.Errorf("uncovered action permitted")
	}
}

func TestExpiredArtifactsRejected(t *testing.T) {
	f := newFixture(t)
	f.addCondition(t, f.voCred, &UseCondition{
		Actions:      []string{policy.ActionStart},
		Requirements: []Requirement{{Attribute: "role", Value: "analyst"}},
	})
	// Expired attribute certificate.
	ac := &AttributeCertificate{
		Subject: kate, Attribute: "role", Value: "analyst",
		NotBefore: time.Now().Add(-2 * time.Hour),
		NotAfter:  time.Now().Add(-time.Hour),
	}
	if err := SignAttribute(ac, f.voCred); err != nil {
		t.Fatal(err)
	}
	if err := f.engine.StoreAttribute(ac); err != nil {
		t.Fatal(err)
	}
	if ok, _ := f.engine.Authorize(resource, kate, policy.ActionStart, nil); ok {
		t.Errorf("expired attribute honored")
	}
}

func TestUntrustedIssuersRejected(t *testing.T) {
	f := newFixture(t)
	rogueCA, err := gsi.NewCA("/O=Rogue/CN=CA")
	if err != nil {
		t.Fatal(err)
	}
	rogue, err := rogueCA.Issue("/O=Rogue/CN=Issuer", gsi.KindService)
	if err != nil {
		t.Fatal(err)
	}
	uc := &UseCondition{
		Resource: resource, Actions: []string{policy.ActionStart},
		NotBefore: time.Now().Add(-time.Minute), NotAfter: time.Now().Add(time.Hour),
	}
	if err := SignUseCondition(uc, rogue); err != nil {
		t.Fatal(err)
	}
	if err := f.engine.AddUseCondition(uc); !errors.Is(err, ErrUntrustedIssuer) {
		t.Errorf("rogue use condition accepted: %v", err)
	}
	ac := &AttributeCertificate{
		Subject: kate, Attribute: "role", Value: "admin",
		NotBefore: time.Now().Add(-time.Minute), NotAfter: time.Now().Add(time.Hour),
	}
	if err := SignAttribute(ac, rogue); err != nil {
		t.Fatal(err)
	}
	if err := f.engine.StoreAttribute(ac); !errors.Is(err, ErrUntrustedIssuer) {
		t.Errorf("rogue attribute accepted: %v", err)
	}
}

func TestTamperedSignaturesRejected(t *testing.T) {
	f := newFixture(t)
	uc := &UseCondition{
		Resource: resource, Actions: []string{policy.ActionStart},
		NotBefore: time.Now().Add(-time.Minute), NotAfter: time.Now().Add(time.Hour),
	}
	if err := SignUseCondition(uc, f.voCred); err != nil {
		t.Fatal(err)
	}
	uc.Actions = append(uc.Actions, policy.ActionCancel) // tamper
	if err := f.engine.AddUseCondition(uc); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered use condition accepted: %v", err)
	}
}

func TestRequirementIssuerRestriction(t *testing.T) {
	f := newFixture(t)
	otherIssuer := f.ownCred
	f.engine.TrustAttributeIssuer(otherIssuer.Leaf())
	f.addCondition(t, f.voCred, &UseCondition{
		Actions: []string{policy.ActionStart},
		Requirements: []Requirement{{
			Attribute: "role", Value: "analyst",
			Issuers: []gsi.DN{otherIssuer.Subject()},
		}},
	})
	// Attribute from the VO issuer does not satisfy an owner-restricted
	// requirement.
	f.grantAttr(t, kate, "role", "analyst")
	if ok, _ := f.engine.Authorize(resource, kate, policy.ActionStart, nil); ok {
		t.Errorf("issuer restriction ignored")
	}
	ac := &AttributeCertificate{
		Subject: kate, Attribute: "role", Value: "analyst",
		NotBefore: time.Now().Add(-time.Minute), NotAfter: time.Now().Add(time.Hour),
	}
	if err := SignAttribute(ac, otherIssuer); err != nil {
		t.Fatal(err)
	}
	if err := f.engine.StoreAttribute(ac); err != nil {
		t.Fatal(err)
	}
	if ok, reason := f.engine.Authorize(resource, kate, policy.ActionStart, nil); !ok {
		t.Errorf("restricted-issuer attribute not honored: %s", reason)
	}
}

func TestPDPAndDriver(t *testing.T) {
	f := newFixture(t)
	f.addCondition(t, f.voCred, &UseCondition{
		Actions:      []string{policy.ActionStart},
		Requirements: []Requirement{{Attribute: "role", Value: "analyst"}},
	})
	f.grantAttr(t, kate, "role", "analyst")

	reg := core.NewRegistry()
	RegisterDriver(reg, f.engine)
	if err := reg.LoadConfigString(core.CalloutJobManager + " akenti resource=" + resource); err != nil {
		t.Fatal(err)
	}
	req := &core.Request{Subject: kate, Action: policy.ActionStart}
	if d := reg.Invoke(core.CalloutJobManager, req); d.Effect != core.Permit {
		t.Errorf("driver-configured akenti denied: %s", d.Reason)
	}
	if err := reg.LoadConfigString(core.CalloutJobManager + " akenti"); err == nil {
		t.Errorf("driver without resource accepted")
	}
}

func TestBadConstraintRejectedAtInstall(t *testing.T) {
	f := newFixture(t)
	uc := &UseCondition{
		Resource: resource, Actions: []string{policy.ActionStart},
		Constraint: "(((",
		NotBefore:  time.Now().Add(-time.Minute), NotAfter: time.Now().Add(time.Hour),
	}
	if err := SignUseCondition(uc, f.voCred); err != nil {
		t.Fatal(err)
	}
	if err := f.engine.AddUseCondition(uc); err == nil {
		t.Errorf("malformed constraint accepted")
	}
}
