package akenti

import (
	"testing"
	"time"

	"gridauth/internal/policy"
)

// TestOnChangeFires verifies every certificate-store mutation notifies
// subscribers: a decision cache wired to the engine must never serve a
// permit computed before a new use condition or attribute arrived.
func TestOnChangeFires(t *testing.T) {
	f := newFixture(t)
	fired := 0
	f.engine.OnChange(func() { fired++ })

	f.engine.TrustStakeholder(f.ownCred.Leaf())
	if fired != 1 {
		t.Fatalf("TrustStakeholder: hook fired %d times, want 1", fired)
	}
	f.engine.TrustAttributeIssuer(f.ownCred.Leaf())
	if fired != 2 {
		t.Fatalf("TrustAttributeIssuer: hook fired %d times, want 2", fired)
	}
	f.addCondition(t, f.voCred, &UseCondition{
		Actions:      []string{policy.ActionStart},
		Requirements: []Requirement{{Attribute: "role", Value: "analyst"}},
	})
	if fired != 3 {
		t.Fatalf("AddUseCondition: hook fired %d times, want 3", fired)
	}
	f.grantAttr(t, kate, "role", "analyst")
	if fired != 4 {
		t.Fatalf("StoreAttribute: hook fired %d times, want 4", fired)
	}

	// Rejected certificates mutate nothing and must not notify.
	bad := &UseCondition{Resource: resource, Actions: []string{policy.ActionStart},
		NotBefore: time.Now().Add(-time.Minute), NotAfter: time.Now().Add(time.Hour)}
	if err := f.engine.AddUseCondition(bad); err == nil {
		t.Fatal("unsigned use condition accepted")
	}
	if fired != 4 {
		t.Errorf("rejected use condition fired hooks (fired = %d)", fired)
	}
}
