// Package allocation implements the resource provider's side of the
// paper's §2 agreement: "a resource provider has reached an agreement
// with a VO to allow the VO to use some resource allocation. The
// resource providers think of the allocation in a coarse-grained manner:
// they are concerned about how many resources the VO can use as a whole,
// but they are not concerned about how allocation is used inside the
// VO."
//
// A Tracker accounts CPU-seconds consumed per VO against a granted
// budget, fed by the local scheduler's events, and exposes a PDP that
// denies further job startups once a VO's allocation is exhausted. The
// fine-grained split *inside* the allocation remains the VO's business
// (its own policy), exactly the two-level arrangement the paper
// describes.
package allocation

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"gridauth/internal/core"
	"gridauth/internal/gsi"
	"gridauth/internal/jobcontrol"
	"gridauth/internal/policy"
)

// ErrUnknownVO is returned for VOs without a grant.
var ErrUnknownVO = errors.New("allocation: unknown VO")

// Grant is a provider→VO allocation.
type Grant struct {
	// VO names the community.
	VO string
	// CPUSeconds is the granted budget.
	CPUSeconds float64
}

// Usage is a VO's current consumption.
type Usage struct {
	VO string
	// Granted is the budget.
	Granted float64
	// Used is committed consumption from finished (or accounted) jobs.
	Used float64
	// Reserved is the worst-case consumption of admitted, still-running
	// jobs (count × maxtime), so admission control is safe rather than
	// optimistic.
	Reserved float64
}

// Remaining returns the budget left for new admissions.
func (u Usage) Remaining() float64 {
	r := u.Granted - u.Used - u.Reserved
	if r < 0 {
		return 0
	}
	return r
}

// Tracker accounts usage per VO.
type Tracker struct {
	mu     sync.Mutex
	grants map[string]*Usage
	// jobs maps a scheduler job ID to its VO and reservation.
	jobs map[string]*jobEntry
	// members resolves an identity to its VO (the resource provider
	// knows which allocation a user draws on).
	members map[gsi.DN]string
}

type jobEntry struct {
	vo       string
	reserved float64
}

// NewTracker creates an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		grants:  make(map[string]*Usage),
		jobs:    make(map[string]*jobEntry),
		members: make(map[gsi.DN]string),
	}
}

// SetGrant installs or replaces a VO's allocation.
func (t *Tracker) SetGrant(g Grant) {
	t.mu.Lock()
	defer t.mu.Unlock()
	u, ok := t.grants[g.VO]
	if !ok {
		t.grants[g.VO] = &Usage{VO: g.VO, Granted: g.CPUSeconds}
		return
	}
	u.Granted = g.CPUSeconds
}

// Enroll associates an identity with the VO whose allocation it draws
// on. A user may also hold non-VO allocations; requests from identities
// not enrolled here are outside this tracker's scope (the §2 remark that
// "jobs invoked under this alternate allocation should not be subject to
// VO policy" cuts both ways).
func (t *Tracker) Enroll(id gsi.DN, vo string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.members[id] = vo
}

// VOFor resolves the VO an identity draws on.
func (t *Tracker) VOFor(id gsi.DN) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	vo, ok := t.members[id]
	return vo, ok
}

// UsageOf reports a VO's usage.
func (t *Tracker) UsageOf(vo string) (Usage, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	u, ok := t.grants[vo]
	if !ok {
		return Usage{}, fmt.Errorf("%w: %s", ErrUnknownVO, vo)
	}
	return *u, nil
}

// Usages lists all VOs' usage sorted by name.
func (t *Tracker) Usages() []Usage {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Usage, 0, len(t.grants))
	for _, u := range t.grants {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VO < out[j].VO })
	return out
}

// Reserve charges a job's worst-case consumption against the VO before
// admission. It fails when the remaining budget cannot cover it.
func (t *Tracker) Reserve(vo, jobID string, cpuSeconds float64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	u, ok := t.grants[vo]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownVO, vo)
	}
	if u.Used+u.Reserved+cpuSeconds > u.Granted {
		return fmt.Errorf("allocation: VO %s exhausted: granted %.0f, used %.0f, reserved %.0f, requested %.0f",
			vo, u.Granted, u.Used, u.Reserved, cpuSeconds)
	}
	u.Reserved += cpuSeconds
	t.jobs[jobID] = &jobEntry{vo: vo, reserved: cpuSeconds}
	return nil
}

// Rebind renames a reservation, e.g. from the GRAM job contact the
// admission callout saw to the local scheduler's job ID once the job is
// submitted. Unknown old IDs are ignored.
func (t *Tracker) Rebind(oldID, newID string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.jobs[oldID]
	if !ok {
		return
	}
	delete(t.jobs, oldID)
	t.jobs[newID] = e
}

// Commit converts a job's reservation into actual usage when it ends.
func (t *Tracker) Commit(jobID string, actualCPUSeconds float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.jobs[jobID]
	if !ok {
		return
	}
	delete(t.jobs, jobID)
	u := t.grants[e.vo]
	if u == nil {
		return
	}
	u.Reserved -= e.reserved
	if u.Reserved < 0 {
		u.Reserved = 0
	}
	u.Used += actualCPUSeconds
}

// Attach subscribes the tracker to a cluster so terminal job events
// commit reservations automatically with the scheduler's accounting.
func (t *Tracker) Attach(cluster *jobcontrol.Cluster) {
	cluster.Subscribe(func(e jobcontrol.Event) {
		switch e.Kind {
		case jobcontrol.EventCompleted, jobcontrol.EventCanceled, jobcontrol.EventFailed:
			job, err := cluster.Lookup(e.JobID)
			if err != nil {
				t.Commit(e.JobID, 0)
				return
			}
			t.Commit(e.JobID, job.CPUSeconds)
		default:
		}
	})
}

// worstCase computes a request's worst-case CPU-seconds from its RSL:
// count × maxtime. Requests without maxtime cannot be admission-checked
// against a budget and are rejected by the PDP (the provider demands a
// bound).
func worstCase(req *core.Request) (float64, error) {
	if req.Spec == nil {
		return 0, errors.New("no job description")
	}
	count := 1
	if req.Spec.Has("count") {
		n, err := strconv.Atoi(req.Spec.Get("count"))
		if err != nil || n <= 0 {
			return 0, fmt.Errorf("bad count %q", req.Spec.Get("count"))
		}
		count = n
	}
	if !req.Spec.Has("maxtime") {
		return 0, errors.New("allocation accounting requires a maxtime attribute")
	}
	minutes, err := strconv.Atoi(req.Spec.Get("maxtime"))
	if err != nil || minutes < 0 {
		return 0, fmt.Errorf("bad maxtime %q", req.Spec.Get("maxtime"))
	}
	return float64(count) * float64(minutes) * 60, nil
}

// PDP is the admission-control decision point for the provider's
// coarse-grained allocation. It only constrains job startup; management
// actions abstain. Identities not enrolled with any VO abstain too
// (they may hold a non-VO allocation; some other source must grant
// them).
type PDP struct {
	// Tracker holds grants and usage.
	Tracker *Tracker
	// ReserveOnPermit reserves the worst case on permits, so admission
	// and accounting are one atomic step. The caller must later Commit
	// (or Attach the tracker to the cluster and let events commit).
	ReserveOnPermit bool
}

var _ core.PDP = (*PDP)(nil)
var _ core.EffectfulPDP = (*PDP)(nil)

// Name implements core.PDP.
func (p *PDP) Name() string { return "vo-allocation" }

// SideEffecting implements core.EffectfulPDP: with ReserveOnPermit the
// PDP charges the VO budget as part of evaluation, so it must never be
// evaluated speculatively (a parallel fan-out would reserve for
// requests another source denies) nor skipped (a cache hit would admit
// without reserving).
func (p *PDP) SideEffecting() bool { return p.ReserveOnPermit }

// Authorize implements core.PDP.
func (p *PDP) Authorize(req *core.Request) core.Decision {
	if req.Action != policy.ActionStart {
		return core.AbstainDecision(p.Name(), "allocation constrains startup only")
	}
	vo, ok := p.Tracker.VOFor(req.Subject)
	if !ok {
		return core.AbstainDecision(p.Name(), "subject draws on no tracked allocation")
	}
	need, err := worstCase(req)
	if err != nil {
		return core.DenyDecision(p.Name(), err.Error())
	}
	if p.ReserveOnPermit {
		if err := p.Tracker.Reserve(vo, req.JobID, need); err != nil {
			return core.DenyDecision(p.Name(), err.Error())
		}
		return core.AbstainDecision(p.Name(),
			fmt.Sprintf("VO %s charged %.0f cpu-seconds (reserved)", vo, need))
	}
	u, err := p.Tracker.UsageOf(vo)
	if err != nil {
		return core.DenyDecision(p.Name(), err.Error())
	}
	if need > u.Remaining() {
		return core.DenyDecision(p.Name(),
			fmt.Sprintf("VO %s allocation exhausted: need %.0f, remaining %.0f", vo, need, u.Remaining()))
	}
	return core.AbstainDecision(p.Name(),
		fmt.Sprintf("VO %s within allocation (need %.0f of %.0f remaining)", vo, need, u.Remaining()))
}
