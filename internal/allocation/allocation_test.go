package allocation

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"gridauth/internal/core"
	"gridauth/internal/gsi"
	"gridauth/internal/jobcontrol"
	"gridauth/internal/policy"
	"gridauth/internal/rsl"
)

const (
	kate = "/O=Grid/CN=Kate"
	bo   = "/O=Grid/CN=Bo"
	solo = "/O=Grid/CN=Independent"
)

func startReq(subject, jobID string, count, maxtimeMin int) *core.Request {
	spec := rsl.NewSpec().Set("executable", "sim")
	if count > 0 {
		spec.Set("count", itoa(count))
	}
	if maxtimeMin >= 0 {
		spec.Set("maxtime", itoa(maxtimeMin))
	}
	return &core.Request{
		Subject: dn(subject),
		Action:  policy.ActionStart,
		JobID:   jobID,
		Spec:    spec,
	}
}

func TestReserveCommitLifecycle(t *testing.T) {
	tr := NewTracker()
	tr.SetGrant(Grant{VO: "NFC", CPUSeconds: 10_000})
	if err := tr.Reserve("NFC", "j1", 6000); err != nil {
		t.Fatal(err)
	}
	u, err := tr.UsageOf("NFC")
	if err != nil {
		t.Fatal(err)
	}
	if u.Reserved != 6000 || u.Remaining() != 4000 {
		t.Errorf("usage = %+v", u)
	}
	// A second reservation that exceeds the rest is refused.
	if err := tr.Reserve("NFC", "j2", 5000); err == nil {
		t.Errorf("over-reservation accepted")
	}
	// Commit with the actual (smaller) consumption releases the
	// difference.
	tr.Commit("j1", 1500)
	u, _ = tr.UsageOf("NFC")
	if u.Used != 1500 || u.Reserved != 0 || u.Remaining() != 8500 {
		t.Errorf("after commit: %+v", u)
	}
	// Unknown jobs and VOs are harmless / explicit.
	tr.Commit("ghost", 42)
	if _, err := tr.UsageOf("ATLAS"); !errors.Is(err, ErrUnknownVO) {
		t.Errorf("unknown VO: %v", err)
	}
	if err := tr.Reserve("ATLAS", "j", 1); !errors.Is(err, ErrUnknownVO) {
		t.Errorf("reserve unknown VO: %v", err)
	}
}

func TestPDPAdmissionControl(t *testing.T) {
	tr := NewTracker()
	tr.SetGrant(Grant{VO: "NFC", CPUSeconds: 7200}) // 2 cpu-hours
	tr.Enroll(dn(kate), "NFC")
	pdp := &PDP{Tracker: tr, ReserveOnPermit: true}

	// 2 cpus × 30 min = 3600 cpu-s: fits.
	if d := pdp.Authorize(startReq(kate, "j1", 2, 30)); d.Effect != core.NotApplicable {
		t.Fatalf("first job: %v (%s)", d.Effect, d.Reason)
	}
	// Second identical job exactly exhausts the grant.
	if d := pdp.Authorize(startReq(kate, "j2", 2, 30)); d.Effect != core.NotApplicable {
		t.Fatalf("second job: %v (%s)", d.Effect, d.Reason)
	}
	// Third is refused: the VO as a whole is out of budget.
	d := pdp.Authorize(startReq(kate, "j3", 1, 1))
	if d.Effect != core.Deny || !strings.Contains(d.Reason, "exhausted") {
		t.Fatalf("third job: %v (%s)", d.Effect, d.Reason)
	}
	// A job finishing under its worst case frees budget.
	tr.Commit("j1", 600)
	if d := pdp.Authorize(startReq(kate, "j4", 1, 10)); d.Effect != core.NotApplicable {
		t.Errorf("after commit: %v (%s)", d.Effect, d.Reason)
	}
}

func TestPDPScope(t *testing.T) {
	tr := NewTracker()
	tr.SetGrant(Grant{VO: "NFC", CPUSeconds: 100})
	tr.Enroll(dn(kate), "NFC")
	pdp := &PDP{Tracker: tr}

	// Management actions abstain.
	mgmt := &core.Request{Subject: dn(kate), Action: policy.ActionCancel}
	if d := pdp.Authorize(mgmt); d.Effect != core.NotApplicable {
		t.Errorf("management: %v", d.Effect)
	}
	// Unenrolled identities abstain (alternate allocations exist).
	if d := pdp.Authorize(startReq(solo, "j", 1, 1)); d.Effect != core.NotApplicable {
		t.Errorf("unenrolled: %v", d.Effect)
	}
	// Unbounded requests are refused: the provider demands maxtime.
	if d := pdp.Authorize(startReq(kate, "j", 1, -1)); d.Effect != core.Deny {
		t.Errorf("unbounded: %v", d.Effect)
	}
	// Garbage counts are refused.
	bad := startReq(kate, "j", 0, 10)
	bad.Spec.Set("count", "lots")
	if d := pdp.Authorize(bad); d.Effect != core.Deny {
		t.Errorf("bad count: %v", d.Effect)
	}
}

// TestPDPNotSpeculatedInParallelChain is the REVIEW.md regression: in
// a parallel callout chain, a denied request must not reserve VO
// budget. The PDP declares itself side-effecting (ReserveOnPermit), so
// core.ParallelCombined keeps it out of the eager fan-out and only
// evaluates it when every earlier source has accepted — repeated
// denials therefore cannot drain the allocation.
func TestPDPNotSpeculatedInParallelChain(t *testing.T) {
	tr := NewTracker()
	tr.SetGrant(Grant{VO: "NFC", CPUSeconds: 7200})
	tr.Enroll(dn(kate), "NFC")
	pdp := &PDP{Tracker: tr, ReserveOnPermit: true}
	if !pdp.SideEffecting() {
		t.Fatal("reserving PDP must declare itself side-effecting")
	}

	deny := core.PDPFunc{ID: "local", Fn: func(*core.Request) core.Decision {
		return core.DenyDecision("local", "no")
	}}
	chain := core.NewParallelCombined(core.RequireAllPermit, deny, pdp)
	for i := 0; i < 10; i++ {
		if d := chain.Authorize(startReq(kate, "j"+itoa(i), 2, 30)); d.Effect != core.Deny {
			t.Fatalf("request %d: %v, want Deny", i, d.Effect)
		}
	}
	u, err := tr.UsageOf("NFC")
	if err != nil {
		t.Fatal(err)
	}
	if u.Reserved != 0 || u.Used != 0 {
		t.Fatalf("denied requests drained the allocation: %+v", u)
	}

	// With a permitting source in front, the reservation fires normally.
	permit := core.PDPFunc{ID: "vo", Fn: func(*core.Request) core.Decision {
		return core.PermitDecision("vo", "ok")
	}}
	chain = core.NewParallelCombined(core.RequireAllPermit, permit, pdp)
	if d := chain.Authorize(startReq(kate, "ok", 2, 30)); d.Effect != core.Permit {
		t.Fatalf("permitted request: %v (%s)", d.Effect, d.Reason)
	}
	u, _ = tr.UsageOf("NFC")
	if u.Reserved != 3600 {
		t.Errorf("Reserved = %v, want 3600", u.Reserved)
	}
}

func TestAttachCommitsFromSchedulerEvents(t *testing.T) {
	tr := NewTracker()
	tr.SetGrant(Grant{VO: "NFC", CPUSeconds: 100_000})
	cluster := jobcontrol.NewCluster(8)
	tr.Attach(cluster)

	job, err := cluster.Submit(jobcontrol.JobSpec{Executable: "sim", Count: 2, Duration: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	// Reserve under the scheduler's job ID so the event commit finds it.
	if err := tr.Reserve("NFC", job.ID, 2*30*60); err != nil {
		t.Fatal(err)
	}
	cluster.Advance(11 * time.Minute)
	u, err := tr.UsageOf("NFC")
	if err != nil {
		t.Fatal(err)
	}
	if u.Reserved != 0 {
		t.Errorf("reservation not released: %+v", u)
	}
	if u.Used != 1200 { // 2 cpus × 600 s
		t.Errorf("used = %v, want 1200", u.Used)
	}
}

func TestUsagesSorted(t *testing.T) {
	tr := NewTracker()
	tr.SetGrant(Grant{VO: "ZVO", CPUSeconds: 1})
	tr.SetGrant(Grant{VO: "AVO", CPUSeconds: 2})
	tr.SetGrant(Grant{VO: "AVO", CPUSeconds: 3}) // replace keeps usage
	us := tr.Usages()
	if len(us) != 2 || us[0].VO != "AVO" || us[0].Granted != 3 {
		t.Errorf("usages = %+v", us)
	}
}

// Property: Used+Reserved never exceeds Granted under any interleaving
// of successful reserves and commits.
func TestQuickBudgetInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		tr := NewTracker()
		tr.SetGrant(Grant{VO: "V", CPUSeconds: 1000})
		live := []string{}
		for i, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				// Commit the oldest live job with some actual usage.
				id := live[0]
				live = live[1:]
				tr.Commit(id, float64(op%500))
			} else {
				id := "j" + itoa(i)
				if err := tr.Reserve("V", id, float64(op%400)); err == nil {
					live = append(live, id)
				}
			}
			u, err := tr.UsageOf("V")
			if err != nil {
				return false
			}
			if u.Reserved < 0 {
				return false
			}
			if u.Used+u.Reserved > u.Granted+500 { // commits may exceed reservation by actuals
				// Reserved portion alone must never overshoot.
				if u.Reserved > u.Granted {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func dn(s string) gsi.DN { return gsi.DN(s) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
