// Package analysis is a dependency-free reimplementation of the small
// slice of golang.org/x/tools/go/analysis that this repository's
// authorization-safety linters (cmd/authlint) need: an Analyzer is a
// named check with a Run function, a Pass hands it one type-checked
// package, and diagnostics are plain positions plus messages.
//
// The repository deliberately has no external Go dependencies (go.mod
// lists none), so instead of importing x/tools this package rebuilds
// the same analyzer/driver contract on the standard library: go/ast
// and go/types for syntax and types, and `go list -export` for import
// resolution (see loader.go). Analyzers written against this package
// mirror the upstream shape closely enough that migrating them to
// x/tools later is mechanical.
//
// # Suppression
//
// A diagnostic can be waived for an audited exception with a comment
// on the flagged line or the line directly above it:
//
//	//authlint:ignore <analyzer> <reason>
//
// The analyzer name must match and the reason must be non-empty — a
// suppression without a recorded justification is itself an error.
// A whole file is exempted from one analyzer with
//
//	//authlint:file-ignore <analyzer> <reason>
//
// docs/ANALYSIS.md describes each analyzer, the invariant it enforces
// and the convention for auditing suppressions in review.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// comments (a short lowercase word, e.g. "pdpcap").
	Name string
	// Doc states the invariant the analyzer enforces, first line short.
	Doc string
	// Run applies the analyzer to one package, reporting findings via
	// pass.Report or pass.Reportf. The result value is unused by the
	// driver (kept for upstream API parity).
	Run func(pass *Pass) (any, error)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) { p.diags = append(p.diags, d) }

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// suppression is one parsed authlint:ignore directive.
type suppression struct {
	file      string
	line      int  // line the directive ends on
	wholeFile bool // set by the file-ignore directive form
	analyzers map[string]bool
}

// BadSuppression reports a malformed suppression directive (missing
// analyzer name or missing reason); these fail the lint run so an
// unjustified waiver cannot slip in.
type BadSuppression struct {
	Pos token.Pos
	Msg string
}

// parseSuppressions scans the package's comments for authlint
// directives.
func parseSuppressions(fset *token.FileSet, files []*ast.File) ([]suppression, []BadSuppression) {
	var sups []suppression
	var bad []BadSuppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				var wholeFile bool
				switch {
				case strings.HasPrefix(text, "authlint:ignore"):
					text = strings.TrimPrefix(text, "authlint:ignore")
				case strings.HasPrefix(text, "authlint:file-ignore"):
					text = strings.TrimPrefix(text, "authlint:file-ignore")
					wholeFile = true
				default:
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, BadSuppression{Pos: c.Pos(),
						Msg: "authlint suppression needs an analyzer name and a reason: //authlint:ignore <analyzer> <reason>"})
					continue
				}
				names := map[string]bool{}
				for _, n := range strings.Split(fields[0], ",") {
					names[n] = true
				}
				pos := fset.Position(c.End())
				sups = append(sups, suppression{
					file:      pos.Filename,
					line:      pos.Line,
					wholeFile: wholeFile,
					analyzers: names,
				})
			}
		}
	}
	return sups, bad
}

// suppressed reports whether a diagnostic from analyzer at pos is
// covered by a directive on the same line, the line above, or a
// file-ignore.
func suppressed(sups []suppression, fset *token.FileSet, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, s := range sups {
		if !s.analyzers[analyzer] || s.file != p.Filename {
			continue
		}
		if s.wholeFile || s.line == p.Line || s.line == p.Line-1 {
			return true
		}
	}
	return false
}

// Run applies one analyzer to one loaded package, returning findings
// with suppressions already filtered out. Malformed suppression
// directives are returned as diagnostics too — a waiver with no reason
// must not silently succeed.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	if _, err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Types.Path(), err)
	}
	sups, bad := parseSuppressions(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, d := range pass.diags {
		if !suppressed(sups, pkg.Fset, a.Name, d.Pos) {
			out = append(out, d)
		}
	}
	for _, b := range bad {
		out = append(out, Diagnostic{Pos: b.Pos, Message: b.Msg})
	}
	sortDiagnostics(pkg.Fset, out)
	return out, nil
}

// sortDiagnostics orders findings by file position for stable output.
func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}
