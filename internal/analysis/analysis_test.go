package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"testing"
)

// loadSrc type-checks one dependency-free source file into a Package.
func loadSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tpkg, err := (&types.Config{}).Check("fix", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	return &Package{Path: "fix", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

// flagall reports every function declaration at its name.
var flagall = &Analyzer{
	Name: "flagall",
	Doc:  "flags every function declaration (test analyzer)",
	Run: func(pass *Pass) (any, error) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Name.Pos(), "flagged %s", fd.Name.Name)
				}
			}
		}
		return nil, nil
	},
}

func render(pkg *Package, diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%d: %s", pkg.Fset.Position(d.Pos).Line, d.Message))
	}
	return out
}

func TestSuppressionFiltering(t *testing.T) {
	pkg := loadSrc(t, `package fix

func Plain() {}

//authlint:ignore flagall covered by the integration suite
func Waived() {}

func Inline() {} //authlint:ignore flagall audited in review

//authlint:ignore otherlint reason that names a different analyzer
func WrongAnalyzer() {}

//authlint:ignore flagall
func MissingReason() {}
`)
	diags, err := Run(flagall, pkg)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"3: flagged Plain",
		"11: flagged WrongAnalyzer",
		"13: authlint suppression needs an analyzer name and a reason: //authlint:ignore <analyzer> <reason>",
		"14: flagged MissingReason",
	}
	if got := render(pkg, diags); !reflect.DeepEqual(got, want) {
		t.Errorf("diagnostics:\n got %q\nwant %q", got, want)
	}
}

func TestFileIgnore(t *testing.T) {
	pkg := loadSrc(t, `package fix

//authlint:file-ignore flagall generated shim, audited as a unit

func One() {}

func Two() {}
`)
	diags, err := Run(flagall, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("file-ignore left %d diagnostics: %q", len(diags), render(pkg, diags))
	}
}

func TestMultiAnalyzerSuppression(t *testing.T) {
	pkg := loadSrc(t, `package fix

//authlint:ignore flagall,otherlint one waiver naming two analyzers
func Both() {}

//authlint:ignore otherlint waiver for a different analyzer only
func OtherOnly() {}
`)
	diags, err := Run(flagall, pkg)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"7: flagged OtherOnly"}
	if got := render(pkg, diags); !reflect.DeepEqual(got, want) {
		t.Errorf("diagnostics:\n got %q\nwant %q", got, want)
	}
}
