// Package analysistest runs an analyzer over GOPATH-style fixture
// packages and checks its diagnostics against // want comments, the
// same golden-test contract as x/tools/go/analysis/analysistest (see
// the internal/analysis package doc for why this is a stdlib-only
// reimplementation).
//
// A fixture line that should be flagged carries an expectation whose
// argument is a regular expression the diagnostic message must match:
//
//	p.mu.Lock()
//	time.Sleep(time.Second) // want `blocking call .* while .* is held`
//
// Every diagnostic must match an expectation on its exact line and
// every expectation must be matched — unflagged positives and
// unexpected findings both fail the test.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"gridauth/internal/analysis"
)

// expectation is one // want pattern awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each fixture package under srcRoot, applies the analyzer,
// and reports mismatches between diagnostics and // want comments.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	loader := analysis.NewLoader("")
	loader.SrcRoot = srcRoot
	pkgs, err := loader.LoadSource(paths...)
	if err != nil {
		t.Fatalf("load fixtures %v: %v", paths, err)
	}
	for _, pkg := range pkgs {
		expects, err := collectExpectations(pkg)
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		diags, err := analysis.Run(a, pkg)
		if err != nil {
			t.Fatalf("%s: run %s: %v", pkg.Path, a.Name, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if e := findExpectation(expects, pos.Filename, pos.Line, d.Message); e != nil {
				e.matched = true
				continue
			}
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
		for _, e := range expects {
			if !e.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.raw)
			}
		}
	}
}

// findExpectation returns an unmatched expectation on file:line whose
// pattern matches msg.
func findExpectation(expects []*expectation, file string, line int, msg string) *expectation {
	for _, e := range expects {
		if !e.matched && e.file == file && e.line == line && e.rx.MatchString(msg) {
			return e
		}
	}
	return nil
}

// collectExpectations parses // want comments from a fixture package.
func collectExpectations(pkg *analysis.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := parsePatterns(strings.TrimSpace(text[idx+len("want "):]))
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					rx, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern: %v", pos.Filename, pos.Line, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, rx: rx, raw: p})
				}
			}
		}
	}
	return out, nil
}

// parsePatterns splits a want payload into its quoted regexps; both
// `backquoted` and "double-quoted" forms are accepted.
func parsePatterns(s string) ([]string, error) {
	var out []string
	for s != "" {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated ` in want payload %q", s)
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		case '"':
			// Find the closing quote, honouring escapes.
			i := 1
			for i < len(s) && (s[i] != '"' || s[i-1] == '\\') {
				i++
			}
			if i >= len(s) {
				return nil, fmt.Errorf("unterminated \" in want payload %q", s)
			}
			unq, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return nil, fmt.Errorf("bad want pattern %q: %v", s[:i+1], err)
			}
			out = append(out, unq)
			s = s[i+1:]
		default:
			return nil, fmt.Errorf("want payload must be a quoted regexp, got %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want payload")
	}
	return out, nil
}
