// Package auditdeny checks that enforcement points audit the
// decisions they act on. The paper counts the loss of "security,
// audit, accounting" among the costs the fine-grain architecture
// repairs; that repair only holds if every PEP dispatch leaves a
// trail. Concretely: any function that obtains a decision from the
// callout registry ((*core.Registry).Invoke or InvokeContext) must,
// on some intra-package path reachable from it, call into the audit
// package (an audit.Log method or helper) — otherwise a Deny or Error
// is returned to the client with no record of who asked, for what,
// and which policy source refused.
//
// The core package itself is exempt: it DEFINES the registry, and its
// dispatch plumbing (registryPDP) is not an enforcement point — the
// callers in the PEP layers are.
package auditdeny

import (
	"go/ast"
	"go/types"

	"gridauth/internal/analysis"
	"gridauth/internal/analysis/lintutil"
)

// Analyzer flags unaudited PEP dispatches.
var Analyzer = &analysis.Analyzer{
	Name: "auditdeny",
	Doc:  "every Registry.Invoke/InvokeContext call site must reach an audit call, so Deny/Error decisions always leave an audit record",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	core := lintutil.FindCore(pass)
	if core == nil || core.Registry == nil {
		return nil, nil
	}
	if core.Pkg == pass.Pkg {
		return nil, nil // the registry's own plumbing is not a PEP
	}
	auditPkg := lintutil.FindAudit(pass)
	cg := lintutil.NewCallGraph(pass)

	for fn, decl := range cg.Decls {
		var invokes []*ast.CallExpr
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isRegistryInvoke(pass, core, call) {
				invokes = append(invokes, call)
			}
			return true
		})
		if len(invokes) == 0 {
			continue
		}
		if auditPkg != nil && reachesAudit(cg, fn, auditPkg) {
			continue
		}
		for _, call := range invokes {
			msg := "authorization decision obtained here never reaches an audit call on any path from %s; Deny and Error decisions must leave an audit record (call audit.Log.Append or an auditing helper)"
			if auditPkg == nil {
				msg = "authorization decision obtained here is unaudited and %s's package does not even import the audit package; wire an audit.Log into this enforcement point"
			}
			pass.Reportf(call.Pos(), msg, fn.Name())
		}
	}
	return nil, nil
}

// isRegistryInvoke matches calls to (*core.Registry).Invoke and
// (*core.Registry).InvokeContext by method object identity.
func isRegistryInvoke(pass *analysis.Pass, core *lintutil.Core, call *ast.CallExpr) bool {
	callee := lintutil.Callee(pass.TypesInfo, call)
	if callee == nil || (callee.Name() != "Invoke" && callee.Name() != "InvokeContext") {
		return false
	}
	recv := lintutil.ReceiverNamed(callee)
	return recv != nil && recv.Obj() == core.Registry.Obj()
}

// reachesAudit reports whether any function reachable from root
// (intra-package) calls into the audit package.
func reachesAudit(cg *lintutil.CallGraph, root *types.Func, auditPkg *types.Package) bool {
	return cg.Reach(root, func(_ *types.Func, decl *ast.FuncDecl) bool {
		found := false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := lintutil.Callee(cg.Info, call); callee != nil && callee.Pkg() == auditPkg {
				found = true
				return false
			}
			return true
		})
		return found
	})
}
