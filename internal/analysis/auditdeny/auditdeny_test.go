package auditdeny_test

import (
	"path/filepath"
	"testing"

	"gridauth/internal/analysis/analysistest"
	"gridauth/internal/analysis/auditdeny"
)

func TestAuditDeny(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata", "src"), auditdeny.Analyzer,
		"auditdeny", "auditdeny_noimport")
}
