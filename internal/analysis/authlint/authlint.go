// Package authlint assembles the repository's authorization-safety
// analyzer suite. cmd/authlint runs it over the real tree; each
// analyzer's own package carries its golden fixture tests.
package authlint

import (
	"gridauth/internal/analysis"
	"gridauth/internal/analysis/auditdeny"
	"gridauth/internal/analysis/ctxprop"
	"gridauth/internal/analysis/decisionswitch"
	"gridauth/internal/analysis/epochuse"
	"gridauth/internal/analysis/locksafe"
	"gridauth/internal/analysis/pdpcap"
)

// All returns the suite in stable (alphabetical) order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		auditdeny.Analyzer,
		ctxprop.Analyzer,
		decisionswitch.Analyzer,
		epochuse.Analyzer,
		locksafe.Analyzer,
		pdpcap.Analyzer,
	}
}
