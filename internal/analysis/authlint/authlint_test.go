package authlint

import "testing"

func TestSuiteWellFormed(t *testing.T) {
	seen := map[string]bool{}
	prev := ""
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete: needs Name, Doc and Run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Name < prev {
			t.Errorf("suite out of order: %q after %q", a.Name, prev)
		}
		prev = a.Name
	}
	if len(seen) < 5 {
		t.Errorf("suite has %d analyzers, want at least 5", len(seen))
	}
}
