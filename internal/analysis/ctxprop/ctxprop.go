// Package ctxprop checks that request-path code threads its
// context.Context instead of severing the cancellation chain. The
// gatekeeper gives every request its own context (cancelled on daemon
// shutdown and request abandonment), and the parallel combiner relies
// on that chain to stop remote callouts whose result can no longer
// matter. A function that receives a ctx but calls
// context.Background()/context.TODO(), or that invokes the
// context-free variant of an API whose receiver offers a Context
// variant (Authorize vs AuthorizeContext, Invoke vs InvokeContext),
// silently re-anchors the work to a root context: shutdown no longer
// reaches it and abandoned requests keep paying for policy
// evaluation.
package ctxprop

import (
	"go/ast"
	"go/types"

	"gridauth/internal/analysis"
	"gridauth/internal/analysis/lintutil"
)

// Analyzer flags dropped contexts on request paths.
var Analyzer = &analysis.Analyzer{
	Name: "ctxprop",
	Doc:  "functions that take a context.Context must thread it: no context.Background/TODO, no context-free call when a Context variant exists",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || lintutil.HasCtxParam(fn) < 0 {
				continue
			}
			checkBody(pass, fn, fd)
		}
	}
	return nil, nil
}

func checkBody(pass *analysis.Pass, fn *types.Func, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := lintutil.Callee(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "context" &&
			(callee.Name() == "Background" || callee.Name() == "TODO") {
			pass.Reportf(call.Pos(),
				"%s receives a context.Context but constructs context.%s here; thread the caller's ctx so cancellation reaches this work",
				fn.Name(), callee.Name())
			return true
		}
		checkDroppedVariant(pass, fn, call, callee)
		return true
	})
}

// checkDroppedVariant flags x.M(...) inside a ctx-bearing function
// when x's type also offers M+"Context"(ctx, ...) — the call silently
// re-anchors to context.Background inside M.
func checkDroppedVariant(pass *analysis.Pass, fn *types.Func, call *ast.CallExpr, callee *types.Func) {
	if lintutil.HasCtxParam(callee) >= 0 {
		return // already the context-aware form
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	variantName := callee.Name() + "Context"
	obj, _, _ := types.LookupFieldOrMethod(sig.Recv().Type(), true, pass.Pkg, variantName)
	variant, ok := obj.(*types.Func)
	if !ok {
		return
	}
	vsig, ok := variant.Type().(*types.Signature)
	if !ok || vsig.Params().Len() == 0 || !lintutil.IsContextType(vsig.Params().At(0).Type()) {
		return
	}
	pass.Reportf(call.Pos(),
		"%s has a ctx but calls %s, dropping it; use %s(ctx, ...) so cancellation propagates",
		fn.Name(), callee.Name(), variantName)
}
