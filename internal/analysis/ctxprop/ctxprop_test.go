package ctxprop_test

import (
	"path/filepath"
	"testing"

	"gridauth/internal/analysis/analysistest"
	"gridauth/internal/analysis/ctxprop"
)

func TestCtxProp(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata", "src"), ctxprop.Analyzer, "ctxprop")
}
