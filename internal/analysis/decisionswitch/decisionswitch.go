// Package decisionswitch checks that every switch over core.Effect is
// total: it either handles all four effects (Permit, Deny, Error,
// NotApplicable) or carries a default case — and that default never
// permits. The paper's assertion semantics are default-deny; an
// Effect switch that silently falls through for an unlisted value is
// exactly the kind of hole that turns "the combiner requires at least
// one Permit" into "a forgotten case permits by accident" when a new
// effect or a zero value reaches it.
package decisionswitch

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gridauth/internal/analysis"
)

// Analyzer flags non-total or permit-defaulting Effect switches.
var Analyzer = &analysis.Analyzer{
	Name: "decisionswitch",
	Doc:  "a switch over core.Effect must handle Permit, Deny, Error and NotApplicable or have a default, and the default must not permit",
	Run:  run,
}

var effectNames = []string{"Permit", "Deny", "Error", "NotApplicable"}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			corePkg := effectPackage(pass, sw.Tag)
			if corePkg == nil {
				return true
			}
			checkSwitch(pass, sw, corePkg)
			return true
		})
	}
	return nil, nil
}

// effectPackage returns the defining package when expr's type is the
// core Effect type (a named type Effect in a package named core).
func effectPackage(pass *analysis.Pass, expr ast.Expr) *types.Package {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok {
		return nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != "Effect" || obj.Pkg() == nil || obj.Pkg().Name() != "core" {
		return nil
	}
	return obj.Pkg()
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt, corePkg *types.Package) {
	// Resolve the four effect constants from the tag's own package so
	// object identity — not spelling — decides coverage.
	consts := map[types.Object]string{}
	for _, name := range effectNames {
		if obj, ok := corePkg.Scope().Lookup(name).(*types.Const); ok {
			consts[obj] = name
		}
	}

	covered := map[string]bool{}
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			defaultClause = clause
			continue
		}
		for _, e := range clause.List {
			if name := constName(pass, consts, e); name != "" {
				covered[name] = true
			}
		}
	}

	if defaultClause == nil {
		var missing []string
		for _, name := range effectNames {
			if !covered[name] {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			pass.Reportf(sw.Pos(),
				"switch on core.Effect does not handle %s and has no default; an unlisted effect silently falls through — add the missing cases or a denying default",
				strings.Join(missing, ", "))
		}
		return
	}
	if pos, ok := permitEscape(pass, corePkg, defaultClause); ok {
		pass.Reportf(pos,
			"the default case of a core.Effect switch permits; unknown effects must deny or error (default-deny), never permit")
	}
}

// constName resolves a case expression to one of the effect constants.
func constName(pass *analysis.Pass, consts map[types.Object]string, e ast.Expr) string {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	}
	if obj == nil {
		return ""
	}
	return consts[obj]
}

// permitEscape reports a use of the Permit constant or the
// PermitDecision constructor inside the default clause.
func permitEscape(pass *analysis.Pass, corePkg *types.Package, clause *ast.CaseClause) (pos token.Pos, found bool) {
	permit := corePkg.Scope().Lookup("Permit")
	permitFn := corePkg.Scope().Lookup("PermitDecision")
	for _, stmt := range clause.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if found {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			if (permit != nil && obj == permit) || (permitFn != nil && obj == permitFn) {
				pos, found = id.Pos(), true
				return false
			}
			return true
		})
		if found {
			return pos, true
		}
	}
	return pos, false
}
