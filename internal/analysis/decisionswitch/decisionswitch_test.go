package decisionswitch_test

import (
	"path/filepath"
	"testing"

	"gridauth/internal/analysis/analysistest"
	"gridauth/internal/analysis/decisionswitch"
)

func TestDecisionSwitch(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata", "src"), decisionswitch.Analyzer, "decisionswitch")
}
