// Package epochuse checks that cluster-layer code never reads a
// replicated policy snapshot without capturing the epoch it decided
// at. In a federation (docs/CLUSTER.md) every node enforces a compiled
// snapshot that a publisher replaced at some epoch E; a bare
// Store.Current()/Store.Compiled() read is anonymous — when an
// operator later asks "which policy version denied this job on node 2"
// there is nothing to correlate against the leader's publish log, and
// a Current()+Epoch() pair read as two separate loads can even tear
// across a concurrent Replace. Store.Snapshot() returns policy,
// compiled form and epoch from ONE atomic load and is the sanctioned
// accessor; calling Epoch() in the same function at least records the
// correlation point and is accepted.
//
// The check is scoped to packages named "cluster" (the replication
// layer, where epochs are the consistency currency); other layers read
// through their own PDP adapters and are out of scope.
package epochuse

import (
	"go/ast"

	"gridauth/internal/analysis"
	"gridauth/internal/analysis/lintutil"
)

// Analyzer flags epoch-less policy snapshot reads in cluster packages.
var Analyzer = &analysis.Analyzer{
	Name: "epochuse",
	Doc:  "cluster-layer code must not read a policy Store snapshot (Current/Compiled) without capturing its epoch; Store.Snapshot() is the atomic, sanctioned accessor",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() != "cluster" {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// checkFunc flags Current/Compiled reads in one function unless the
// same function also captures an epoch (Snapshot or Epoch). Function
// literals are scanned as part of their enclosing declaration: a
// closure deciding on a snapshot its parent correlated is fine.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var reads []*ast.CallExpr
	captured := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch storeMethod(pass, call) {
		case "Current", "Compiled":
			reads = append(reads, call)
		case "Epoch", "Snapshot":
			captured = true
		}
		return true
	})
	if captured {
		return
	}
	for _, call := range reads {
		pass.Reportf(call.Pos(),
			"cluster code reads a replicated policy snapshot (Store.%s) without capturing its epoch; the decision cannot be correlated with what the leader published — read Store.Snapshot() (policy, compiled and epoch in one atomic load) or record Store.Epoch() alongside",
			storeMethod(pass, call))
	}
}

// storeMethod returns the method name when call is a method on the
// policy Store (a named type Store in a package named policy, matched
// structurally like the other analyzers), else "".
func storeMethod(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := lintutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return ""
	}
	named := lintutil.ReceiverNamed(fn)
	if named == nil {
		return ""
	}
	obj := named.Obj()
	if obj.Name() != "Store" || obj.Pkg() == nil || obj.Pkg().Name() != "policy" {
		return ""
	}
	return fn.Name()
}
