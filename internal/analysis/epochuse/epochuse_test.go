package epochuse_test

import (
	"path/filepath"
	"testing"

	"gridauth/internal/analysis/analysistest"
	"gridauth/internal/analysis/epochuse"
)

func TestEpochUse(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata", "src"), epochuse.Analyzer,
		"epochuse", "epochuse_other")
}
