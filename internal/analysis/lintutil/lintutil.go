// Package lintutil holds the type- and AST-level helpers the authlint
// analyzers share: locating the authorization core package from the
// package under analysis, building an intra-package call graph, and
// classifying operations that may block or mutate shared state.
package lintutil

import (
	"go/ast"
	"go/types"
	"strings"

	"gridauth/internal/analysis"
)

// Core exposes the authorization framework's key objects as visible
// from the package under analysis. Analyzers match the core package
// structurally — a package named "core" declaring the PDP interface
// and the Decision type — so the real tree (gridauth/internal/core)
// and test fixtures (a stub package "core") are handled identically.
type Core struct {
	Pkg *types.Package

	PDP            *types.Interface // always non-nil
	ContextPDP     *types.Interface // may be nil
	NonBlockingPDP *types.Interface // may be nil
	EffectfulPDP   *types.Interface // may be nil

	Decision *types.Named // always non-nil
	Effect   *types.Named // may be nil
	Registry *types.Named // may be nil

	// EffectConsts maps the four effect names (Permit, Deny, Error,
	// NotApplicable) to their constants, when declared.
	EffectConsts map[string]*types.Const
}

// FindCore locates the core package: the package under analysis
// itself, or one of its direct imports.
func FindCore(pass *analysis.Pass) *Core {
	if c := coreFrom(pass.Pkg); c != nil {
		return c
	}
	for _, imp := range pass.Pkg.Imports() {
		if c := coreFrom(imp); c != nil {
			return c
		}
	}
	return nil
}

// coreFrom inspects one package for the core surface.
func coreFrom(pkg *types.Package) *Core {
	if pkg.Name() != "core" {
		return nil
	}
	scope := pkg.Scope()
	pdp := namedInterface(scope, "PDP")
	decision := namedType(scope, "Decision")
	if pdp == nil || decision == nil {
		return nil
	}
	c := &Core{
		Pkg:            pkg,
		PDP:            pdp,
		ContextPDP:     namedInterface(scope, "ContextPDP"),
		NonBlockingPDP: namedInterface(scope, "NonBlockingPDP"),
		EffectfulPDP:   namedInterface(scope, "EffectfulPDP"),
		Decision:       decision,
		Effect:         namedType(scope, "Effect"),
		Registry:       namedType(scope, "Registry"),
		EffectConsts:   map[string]*types.Const{},
	}
	for _, name := range []string{"Permit", "Deny", "Error", "NotApplicable"} {
		if obj, ok := scope.Lookup(name).(*types.Const); ok {
			c.EffectConsts[name] = obj
		}
	}
	return c
}

// FindAudit locates the audit package (a direct import named "audit"
// declaring a Log type), or nil.
func FindAudit(pass *analysis.Pass) *types.Package {
	for _, imp := range pass.Pkg.Imports() {
		if imp.Name() == "audit" && namedType(imp.Scope(), "Log") != nil {
			return imp
		}
	}
	return nil
}

func namedType(scope *types.Scope, name string) *types.Named {
	obj, ok := scope.Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	named, _ := obj.Type().(*types.Named)
	return named
}

func namedInterface(scope *types.Scope, name string) *types.Interface {
	named := namedType(scope, name)
	if named == nil {
		return nil
	}
	iface, _ := named.Underlying().(*types.Interface)
	return iface
}

// Implements reports whether T or *T satisfies iface.
func Implements(t types.Type, iface *types.Interface) bool {
	if iface == nil {
		return false
	}
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// Callee resolves the static *types.Func a call invokes, or nil for
// indirect calls (function values, conversions, builtins).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			// Package-qualified call: pkg.F(...)
			obj = info.Uses[fun.Sel]
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// CallGraph indexes the function declarations of one package and, for
// reachability questions, the static calls inside each.
type CallGraph struct {
	Info  *types.Info
	Decls map[*types.Func]*ast.FuncDecl
}

// NewCallGraph builds the package's declaration index.
func NewCallGraph(pass *analysis.Pass) *CallGraph {
	g := &CallGraph{Info: pass.TypesInfo, Decls: map[*types.Func]*ast.FuncDecl{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				g.Decls[fn] = fd
			}
		}
	}
	return g
}

// Reach walks the intra-package call graph from root (inclusive),
// invoking visit once per reachable declared function. If visit
// returns true the walk stops early and Reach returns true.
func (g *CallGraph) Reach(root *types.Func, visit func(fn *types.Func, decl *ast.FuncDecl) bool) bool {
	seen := map[*types.Func]bool{}
	var walk func(fn *types.Func) bool
	walk = func(fn *types.Func) bool {
		if fn == nil || seen[fn] {
			return false
		}
		seen[fn] = true
		decl, ok := g.Decls[fn]
		if !ok {
			return false
		}
		if visit(fn, decl) {
			return true
		}
		stop := false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if stop {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := Callee(g.Info, call); callee != nil {
					if walk(callee) {
						stop = true
					}
				}
			}
			return !stop
		})
		return stop
	}
	return walk(root)
}

// blockingPkgs are packages any call into which is treated as
// potentially blocking I/O.
var blockingPkgs = map[string]bool{
	"net":          true,
	"net/http":     true,
	"net/rpc":      true,
	"os/exec":      true,
	"database/sql": true,
}

// osBlocking are os package functions that reach the filesystem.
var osBlocking = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true, "Pipe": true,
}

// CallBlocks classifies a resolved callee as potentially blocking,
// returning a short description ("" when it is not). Mutex
// acquisition is deliberately NOT in this set: NonBlockingPDP's
// contract tolerates nanosecond-scale lock handoffs, and locksafe
// tracks lock *holding* separately.
func CallBlocks(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case blockingPkgs[path]:
		return "calls " + path + "." + qualifiedName(fn)
	case path == "time" && name == "Sleep":
		return "calls time.Sleep"
	case path == "os" && osBlocking[name]:
		return "calls os." + name
	case path == "os" && recvIsOSFile(fn) && (name == "Read" || name == "Write" || name == "ReadAt" || name == "WriteAt" || name == "Sync" || name == "ReadFrom" || name == "WriteTo"):
		return "calls (*os.File)." + name
	case path == "sync" && name == "Wait":
		return "calls sync." + qualifiedName(fn)
	}
	return ""
}

// recvIsOSFile reports whether fn is a method on os.File.
func recvIsOSFile(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "File"
}

// qualifiedName renders Recv.Name for methods and Name for functions.
func qualifiedName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// nonBlockingComms collects the communication statements of
// select-with-default clauses within root: those sends/receives are
// non-blocking attempts and must not be classified as blocking.
func nonBlockingComms(root ast.Node) map[ast.Node]bool {
	skip := map[ast.Node]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				skip[cc.Comm] = true
			}
		}
		return true
	})
	return skip
}

// within reports whether pos lies inside any node of the set.
func within(skip map[ast.Node]bool, n ast.Node) bool {
	for s := range skip {
		if s.Pos() <= n.Pos() && n.End() <= s.End() {
			return true
		}
	}
	return false
}

// BlockInfo answers "can this function or node block?" for one
// package, memoizing per-function summaries so transitive
// intra-package calls are followed without exponential rewalks.
type BlockInfo struct {
	cg   *CallGraph
	memo map[*types.Func]string
}

// NewBlockInfo builds the summary table over a call graph.
func NewBlockInfo(cg *CallGraph) *BlockInfo {
	return &BlockInfo{cg: cg, memo: map[*types.Func]string{}}
}

// FuncBlocks returns a description of the first potentially blocking
// operation reachable from fn within the package, or "".
func (b *BlockInfo) FuncBlocks(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	if desc, ok := b.memo[fn]; ok {
		return desc
	}
	// Cycle guard: while fn is being computed, treat recursive calls to
	// it as non-blocking; the outer frame will classify their bodies.
	b.memo[fn] = ""
	decl, ok := b.cg.Decls[fn]
	if !ok {
		desc := CallBlocks(fn)
		b.memo[fn] = desc
		return desc
	}
	desc := ""
	skip := nonBlockingComms(decl.Body)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		if d := b.nodeBlocks(n, skip); d != "" {
			desc = d
			return false
		}
		return true
	})
	b.memo[fn] = desc
	return desc
}

// NodeBlocks classifies one AST node as a potentially blocking
// operation ("" when it is not), following intra-package calls. skip
// is the select-with-default comm set of the enclosing body (see
// NonBlockingComms).
func (b *BlockInfo) NodeBlocks(n ast.Node, skip map[ast.Node]bool) string {
	return b.nodeBlocks(n, skip)
}

// NonBlockingComms exposes the select-with-default comm statements of
// a body, for callers driving their own traversal.
func NonBlockingComms(root ast.Node) map[ast.Node]bool { return nonBlockingComms(root) }

func (b *BlockInfo) nodeBlocks(n ast.Node, skip map[ast.Node]bool) string {
	switch n := n.(type) {
	case *ast.CallExpr:
		callee := Callee(b.cg.Info, n)
		if callee == nil {
			return ""
		}
		if d := CallBlocks(callee); d != "" {
			return d
		}
		if _, ok := b.cg.Decls[callee]; ok {
			if d := b.FuncBlocks(callee); d != "" {
				return "calls " + callee.Name() + ", which " + d
			}
		}
	case *ast.UnaryExpr:
		if n.Op.String() == "<-" && !within(skip, n) {
			return "receives from a channel"
		}
	case *ast.SendStmt:
		if !within(skip, n) {
			return "sends on a channel"
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return "blocks in a select without default"
		}
	case *ast.RangeStmt:
		if n.X != nil {
			if tv, ok := b.cg.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					return "ranges over a channel"
				}
			}
		}
	}
	return ""
}

// MutationInfo answers "does this function mutate caller-visible
// state?" — an assignment, increment, delete or append-reassignment
// whose target roots at a pointer receiver, a pointer/reference
// parameter, or a package-level variable — following intra-package
// calls with memoized summaries.
type MutationInfo struct {
	cg   *CallGraph
	memo map[*types.Func]string
}

// NewMutationInfo builds the summary table over a call graph.
func NewMutationInfo(cg *CallGraph) *MutationInfo {
	return &MutationInfo{cg: cg, memo: map[*types.Func]string{}}
}

// FuncMutates returns a description of the first shared-state
// mutation reachable from fn within the package, or "".
func (m *MutationInfo) FuncMutates(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	if desc, ok := m.memo[fn]; ok {
		return desc
	}
	m.memo[fn] = "" // cycle guard, as in BlockInfo
	decl, ok := m.cg.Decls[fn]
	if !ok {
		return ""
	}
	desc := ""
	report := func(d string) {
		if desc == "" {
			desc = d
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if root := m.sharedRoot(fn, lhs); root != "" {
					report("writes " + ExprString(lhs) + " (shared via " + root + ")")
				}
			}
		case *ast.IncDecStmt:
			if root := m.sharedRoot(fn, n.X); root != "" {
				report("writes " + ExprString(n.X) + " (shared via " + root + ")")
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" && len(n.Args) > 0 {
				if _, isBuiltin := m.cg.Info.Uses[id].(*types.Builtin); isBuiltin {
					if root := m.sharedRoot(fn, n.Args[0]); root != "" {
						report("deletes from " + ExprString(n.Args[0]) + " (shared via " + root + ")")
					}
				}
			}
			if callee := Callee(m.cg.Info, n); callee != nil {
				if _, declared := m.cg.Decls[callee]; declared {
					if d := m.FuncMutates(callee); d != "" {
						report("calls " + callee.Name() + ", which " + d)
					}
				}
			}
		}
		return desc == ""
	})
	m.memo[fn] = desc
	return desc
}

// sharedRoot walks a selector/index chain to its root identifier and
// reports the root's name when an assignment through the chain is
// visible outside fn: a pointer receiver, a pointer-, map-, slice- or
// interface-typed parameter or receiver, or a package-level variable.
// A blank or purely local root returns "".
func (m *MutationInfo) sharedRoot(fn *types.Func, expr ast.Expr) string {
	base := expr
	depth := 0
	for {
		switch e := ast.Unparen(base).(type) {
		case *ast.SelectorExpr:
			base = e.X
			depth++
		case *ast.IndexExpr:
			base = e.X
			depth++
		case *ast.StarExpr:
			base = e.X
			depth++
		default:
			id, ok := ast.Unparen(base).(*ast.Ident)
			if !ok || id.Name == "_" {
				return ""
			}
			v, ok := m.cg.Info.Uses[id].(*types.Var)
			if !ok {
				return ""
			}
			return m.classifyRoot(fn, v, depth)
		}
	}
}

// classifyRoot decides whether writes through root escape fn.
func (m *MutationInfo) classifyRoot(fn *types.Func, v *types.Var, depth int) string {
	sig, _ := fn.Type().(*types.Signature)
	// Package-level variable: always shared.
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return "package variable " + v.Name()
	}
	isParam := func() bool {
		if sig == nil {
			return false
		}
		if sig.Recv() == v {
			return true
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i) == v {
				return true
			}
		}
		return false
	}()
	if !isParam {
		return ""
	}
	// Plain reassignment of the parameter itself (p = x) only changes
	// the copy; a caller-visible write is always depth >= 1 (*p, p.f,
	// p[k] all walk at least one chain step).
	if depth == 0 {
		return ""
	}
	// A write through a field/index/deref chain escapes when the
	// parameter is a pointer, map, slice, or channel — or a struct
	// containing one at the written path. Conservatively require a
	// reference-like parameter type; writes into a by-value struct
	// parameter stay local.
	switch v.Type().Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Interface:
		return "parameter " + v.Name()
	}
	return ""
}

// exprString renders a short source-ish form of an expression chain.
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return ExprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + ExprString(e.X)
	case *ast.ParenExpr:
		return ExprString(e.X)
	default:
		return "expr"
	}
}

// ReceiverNamed returns the named type of a method's receiver (through
// one pointer), or nil.
func ReceiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// HasCtxParam reports whether fn's signature takes a context.Context
// parameter, returning its index (-1 when absent).
func HasCtxParam(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if IsContextType(sig.Params().At(i).Type()) {
			return i
		}
	}
	return -1
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// PkgPathSuffix reports whether path is exactly suffix or ends in
// "/"+suffix (so fixtures named "core" and the real
// "gridauth/internal/core" both match).
func PkgPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
