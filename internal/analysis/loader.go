package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages without x/tools/go/packages.
// Two modes share one mechanism:
//
//   - Module mode (Load): package patterns are resolved with
//     `go list -export -deps -json`, target packages are parsed from
//     source, and every import — stdlib or intra-module — is satisfied
//     from the compiler export data the go tool just produced. This is
//     how cmd/authlint loads the real tree.
//
//   - Fixture mode (LoadSource): packages live in a GOPATH-style
//     source root (testdata/src/<importpath>), imports between
//     fixtures are type-checked from source recursively, and stdlib
//     imports fall back to export data obtained lazily from `go list`.
//     This is how analysistest loads analyzer fixtures.
type Loader struct {
	// Dir is the working directory for `go list` (module mode resolves
	// patterns relative to it; empty means the current directory).
	Dir string
	// SrcRoot, when set, enables fixture mode: import paths resolve to
	// SrcRoot/<path> before falling back to export data.
	SrcRoot string

	mu      sync.Mutex
	fset    *token.FileSet
	exports map[string]string         // import path -> export data file
	srcPkgs map[string]*types.Package // fixture packages, by import path
	loading map[string]bool           // fixture import cycle detection
	gcimp   types.Importer            // shared: one instance keeps type identity
}

// NewLoader returns a loader; dir is the `go list` working directory.
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:     dir,
		fset:    token.NewFileSet(),
		exports: map[string]string{},
		srcPkgs: map[string]*types.Package{},
		loading: map[string]bool{},
	}
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` for the given patterns and
// returns the decoded packages.
func (l *Loader) goList(patterns ...string) ([]*listPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,Standard,DepOnly,GoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decode: %v", patterns, err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// addExports records export data files from a go list run.
func (l *Loader) addExports(pkgs []*listPackage) {
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
}

// Load resolves patterns in module mode and returns the matched
// packages, parsed and type-checked, sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.addExports(listed)
	l.mu.Unlock()
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := l.check(p.ImportPath, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadSource loads fixture packages by import path from SrcRoot.
func (l *Loader) LoadSource(paths ...string) ([]*Package, error) {
	if l.SrcRoot == "" {
		return nil, fmt.Errorf("LoadSource requires SrcRoot")
	}
	var out []*Package
	for _, path := range paths {
		files, err := sourceFiles(filepath.Join(l.SrcRoot, path))
		if err != nil {
			return nil, err
		}
		pkg, err := l.check(path, files)
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		l.srcPkgs[path] = pkg.Types
		l.mu.Unlock()
		out = append(out, pkg)
	}
	return out, nil
}

// sourceFiles lists the non-test .go files of one directory, sorted.
func sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".go" {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}

// check parses and type-checks one package from source files.
func (l *Loader) check(path string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	return &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// loaderImporter resolves imports for type checking: fixture packages
// from SrcRoot (recursively, from source), everything else from the
// compiler export data `go list -export` produced.
type loaderImporter Loader

// Import implements types.Importer.
func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.SrcRoot != "" {
		l.mu.Lock()
		if p, ok := l.srcPkgs[path]; ok {
			l.mu.Unlock()
			return p, nil
		}
		cycle := l.loading[path]
		l.mu.Unlock()
		dir := filepath.Join(l.SrcRoot, path)
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			if cycle {
				return nil, fmt.Errorf("import cycle through %q", path)
			}
			l.mu.Lock()
			l.loading[path] = true
			l.mu.Unlock()
			defer func() {
				l.mu.Lock()
				delete(l.loading, path)
				l.mu.Unlock()
			}()
			files, err := sourceFiles(dir)
			if err != nil {
				return nil, err
			}
			pkg, err := l.check(path, files)
			if err != nil {
				return nil, err
			}
			l.mu.Lock()
			l.srcPkgs[path] = pkg.Types
			l.mu.Unlock()
			return pkg.Types, nil
		}
	}
	if err := l.ensureExport(path); err != nil {
		return nil, err
	}
	return l.gcImporter().Import(path)
}

// gcImporter returns the loader's single export-data importer. Sharing
// one instance is load-bearing: the gc importer caches every package
// it materializes, so two imports that both reach (say) internal/core
// see the identical *types.Package and type identity holds.
func (l *Loader) gcImporter() types.Importer {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.gcimp == nil {
		l.gcimp = importer.ForCompiler(l.fset, "gc", func(p string) (io.ReadCloser, error) {
			l.mu.Lock()
			f, ok := l.exports[p]
			l.mu.Unlock()
			if !ok {
				if err := l.ensureExport(p); err != nil {
					return nil, err
				}
				l.mu.Lock()
				f = l.exports[p]
				l.mu.Unlock()
			}
			return os.Open(f)
		})
	}
	return l.gcimp
}

// ensureExport makes sure export data for path (and its dependencies)
// is on hand, shelling out to `go list` at most once per missing path.
func (l *Loader) ensureExport(path string) error {
	l.mu.Lock()
	_, ok := l.exports[path]
	l.mu.Unlock()
	if ok {
		return nil
	}
	listed, err := l.goList(path)
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.addExports(listed)
	_, ok = l.exports[path]
	l.mu.Unlock()
	if !ok {
		return fmt.Errorf("no export data for %s", strconv.Quote(path))
	}
	return nil
}
