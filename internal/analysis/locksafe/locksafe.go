// Package locksafe checks that no potentially blocking operation —
// network/file/exec I/O, time.Sleep, channel sends/receives outside a
// select with default, WaitGroup waits — runs while a sync.Mutex or
// sync.RWMutex is held. The decision cache's shard locks and the
// registry mutex sit on the hot authorization path: the cache is
// consulted per request and every configuration call rebuilds chains
// under the registry lock, so one blocking call under either turns a
// per-PDP hang into a whole-gatekeeper stall. The check is
// intra-procedural over lock regions (Lock/Unlock pairs, deferred
// unlocks hold to function end) but follows intra-package calls when
// deciding whether an operation can block.
//
// sync.Cond.Wait is deliberately exempt: waiting on a condition
// variable while holding its mutex is that API's contract (Wait
// releases the lock).
package locksafe

import (
	"go/ast"
	"go/token"
	"strings"

	"gridauth/internal/analysis"
	"gridauth/internal/analysis/lintutil"
)

// Analyzer flags blocking operations inside mutex-held regions.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "no blocking call (I/O, sleep, channel op without default) while holding a sync.Mutex/RWMutex, e.g. a DecisionCache shard lock or the registry mutex",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	cg := lintutil.NewCallGraph(pass)
	blocks := lintutil.NewBlockInfo(cg)
	for _, decl := range cg.Decls {
		w := &walker{
			pass:   pass,
			blocks: blocks,
			skip:   lintutil.NonBlockingComms(decl.Body),
			held:   map[string]token.Pos{},
		}
		w.stmts(decl.Body.List)
	}
	return nil, nil
}

// walker tracks which mutexes are held through a linear traversal of
// one function body. Branching is handled conservatively: a region's
// statements are visited in source order with one shared held-set, so
// an Unlock in any branch releases for everything after it.
type walker struct {
	pass   *analysis.Pass
	blocks *lintutil.BlockInfo
	skip   map[ast.Node]bool
	held   map[string]token.Pos
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, op := w.mutexOp(call); key != "" {
				switch op {
				case "Lock", "RLock":
					w.held[key] = call.Pos()
				case "Unlock", "RUnlock":
					delete(w.held, key)
				}
				return
			}
		}
		w.check(s)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the region held to function end,
		// which is already this walker's behaviour; other deferred work
		// runs after the body, outside any region we can reason about.
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's locks.
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.IfStmt:
		w.checkExprs(s.Init, s.Cond)
		w.stmt(s.Body)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		w.checkExprs(s.Init, s.Cond, s.Post)
		w.stmt(s.Body)
	case *ast.RangeStmt:
		w.check(s) // the range expression itself may block (channel)
		w.stmt(s.Body)
	case *ast.SwitchStmt:
		w.checkExprs(s.Init, s.Tag)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		w.check(s) // flags select-without-default as a whole
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	default:
		w.check(s)
	}
}

// checkExprs scans optional sub-clauses (inits, conditions).
func (w *walker) checkExprs(nodes ...ast.Node) {
	for _, n := range nodes {
		if n != nil && !isNilNode(n) {
			w.check(n)
		}
	}
}

// isNilNode guards typed-nil ast.Stmt/ast.Expr interface values.
func isNilNode(n ast.Node) bool {
	switch v := n.(type) {
	case ast.Stmt:
		return v == nil
	case ast.Expr:
		return v == nil
	}
	return n == nil
}

// check scans one statement subtree for blocking operations while any
// lock is held. Function literals are skipped: their bodies run when
// called, not where defined.
func (w *walker) check(n ast.Node) {
	if len(w.held) == 0 || n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch node.(type) {
		case *ast.FuncLit:
			return false
		case nil:
			return false
		}
		desc := w.blocks.NodeBlocks(node, w.skip)
		if desc == "" {
			return true
		}
		if strings.Contains(desc, "sync.Cond.Wait") {
			return true // condition-variable wait releases the mutex
		}
		// One report per node, naming the earliest-acquired held lock so
		// the choice is deterministic when several are held.
		key := ""
		for k := range w.held {
			if key == "" || w.held[k] < w.held[key] {
				key = k
			}
		}
		lp := w.pass.Fset.Position(w.held[key])
		w.pass.Reportf(node.Pos(),
			"potentially blocking operation (%s) while %s is held (locked at line %d); release the lock first or the whole shard/registry stalls with it",
			strings.TrimPrefix(desc, "calls "), key, lp.Line)
		return false // deepest-first duplicates are noise; stop descending
	})
}

// mutexOp matches x.mu.Lock()/Unlock()/RLock()/RUnlock() on
// sync.Mutex/RWMutex, returning the receiver chain ("x.mu") and op.
func (w *walker) mutexOp(call *ast.CallExpr) (key, op string) {
	callee := lintutil.Callee(w.pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return "", ""
	}
	switch callee.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	return lintutil.ExprString(sel.X), callee.Name()
}
