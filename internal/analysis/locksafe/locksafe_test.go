package locksafe_test

import (
	"path/filepath"
	"testing"

	"gridauth/internal/analysis/analysistest"
	"gridauth/internal/analysis/locksafe"
)

func TestLockSafe(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata", "src"), locksafe.Analyzer, "locksafe")
}
