// Package pdpcap checks that PDP implementations declare capabilities
// truthfully. The resilience layer and the combiners TRUST these
// declarations: core.NonBlockingPDP waives the per-callout deadline
// entirely (internal/resilience skips its watchdog), and a PDP that
// mutates shared state but does not declare core.EffectfulPDP will be
// eagerly fanned out by ParallelCombined and memoized by CachedPDP —
// firing or skipping its side effect for requests sequential
// evaluation would never have shown it. A false declaration is
// therefore not a style problem but a silent hole in the paper's
// default-deny enforcement; this analyzer makes both directions a
// compile-time failure:
//
//   - a type implementing core.PDP whose Authorize/AuthorizeContext
//     path reaches network, file or exec I/O, sleeps, or channel
//     operations must NOT declare core.NonBlockingPDP;
//   - a type whose authorize path writes caller-visible state (pointer
//     receiver fields, reference parameters, package variables) MUST
//     declare core.EffectfulPDP.
package pdpcap

import (
	"go/ast"
	"go/token"
	"go/types"

	"gridauth/internal/analysis"
	"gridauth/internal/analysis/lintutil"
)

// Analyzer flags PDP capability declarations contradicted by the
// implementation.
var Analyzer = &analysis.Analyzer{
	Name: "pdpcap",
	Doc:  "PDP capability declarations (NonBlockingPDP, EffectfulPDP) must match what the authorize path actually does",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	core := lintutil.FindCore(pass)
	if core == nil {
		return nil, nil
	}
	cg := lintutil.NewCallGraph(pass)
	blocks := lintutil.NewBlockInfo(cg)
	mutates := lintutil.NewMutationInfo(cg)

	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		if !lintutil.Implements(named, core.PDP) {
			continue
		}
		checkType(pass, core, cg, blocks, mutates, named)
	}
	return nil, nil
}

// authorizeRoots returns the type's authorize-path methods whose
// bodies are declared in this package.
func authorizeRoots(pass *analysis.Pass, cg *lintutil.CallGraph, named *types.Named) []*types.Func {
	var roots []*types.Func
	for _, m := range []string{"Authorize", "AuthorizeContext"} {
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, pass.Pkg, m)
		if fn, ok := obj.(*types.Func); ok {
			if _, declared := cg.Decls[fn]; declared {
				roots = append(roots, fn)
			}
		}
	}
	return roots
}

func checkType(pass *analysis.Pass, core *lintutil.Core, cg *lintutil.CallGraph, blocks *lintutil.BlockInfo, mutates *lintutil.MutationInfo, named *types.Named) {
	roots := authorizeRoots(pass, cg, named)
	if len(roots) == 0 {
		return // wrapper around an out-of-package implementation
	}

	if lintutil.Implements(named, core.NonBlockingPDP) {
		for _, root := range roots {
			if desc := blocks.FuncBlocks(root); desc != "" {
				pass.Reportf(declPos(cg, roots, named),
					"%s declares core.NonBlockingPDP but %s %s; a PDP that can block must not waive the callout deadline",
					named.Obj().Name(), root.Name(), desc)
				break
			}
		}
	}

	if !lintutil.Implements(named, core.EffectfulPDP) {
		for _, root := range roots {
			if desc := mutates.FuncMutates(root); desc != "" {
				pass.Reportf(declPos(cg, roots, named),
					"%s.%s %s but %s does not declare core.EffectfulPDP; parallel fan-out or a decision cache would fire or skip the side effect for requests sequential evaluation never showed it",
					named.Obj().Name(), root.Name(), desc, named.Obj().Name())
				break
			}
		}
	}
}

// declPos anchors the diagnostic on the Authorize declaration when it
// is in this package (suppression comments sit on the method), falling
// back to the type's position.
func declPos(cg *lintutil.CallGraph, roots []*types.Func, named *types.Named) token.Pos {
	for _, root := range roots {
		if decl, ok := cg.Decls[root]; ok {
			return namePos(decl)
		}
	}
	return named.Obj().Pos()
}

func namePos(decl *ast.FuncDecl) token.Pos { return decl.Name.Pos() }
