package pdpcap_test

import (
	"path/filepath"
	"testing"

	"gridauth/internal/analysis/analysistest"
	"gridauth/internal/analysis/pdpcap"
)

func TestPDPCap(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata", "src"), pdpcap.Analyzer, "pdpcap")
}
