// Package audit is a fixture stub of gridauth/internal/audit for the
// auditdeny analyzer, which matches the audit package structurally (a
// package named audit declaring a Log type).
package audit

// Record is one audited decision.
type Record struct {
	Subject string
	Action  string
	PDP     string
	Effect  string
	Reason  string
}

// Log is a decision log.
type Log struct {
	records []Record
}

// Append stores a record.
func (l *Log) Append(r Record) { l.records = append(l.records, r) }
