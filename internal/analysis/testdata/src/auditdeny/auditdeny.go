// Fixture for the auditdeny analyzer: every function that obtains a
// decision from the callout registry must reach an audit call on some
// intra-package path, so denials leave a record.
package auditdeny

import (
	"context"

	"audit"
	"core"
)

type gatekeeper struct {
	reg *core.Registry
	log *audit.Log
}

// audited dispatches and records through a helper: no finding.
func (g *gatekeeper) audited(ctx context.Context, req *core.Request) core.Decision {
	d := g.reg.InvokeContext(ctx, "job-submit", req)
	g.record(req, d)
	return d
}

// record is the shared auditing helper.
func (g *gatekeeper) record(req *core.Request, d core.Decision) {
	if d.Effect != core.Permit {
		g.log.Append(audit.Record{
			Subject: req.Subject,
			Action:  req.Action,
			Effect:  "refused",
			Reason:  d.Reason,
		})
	}
}

// auditedDeep reaches the audit call two hops down: no finding.
func (g *gatekeeper) auditedDeep(ctx context.Context, req *core.Request) core.Decision {
	d := g.reg.InvokeContext(ctx, "job-manage", req)
	g.finish(req, d)
	return d
}

func (g *gatekeeper) finish(req *core.Request, d core.Decision) {
	g.record(req, d)
}

// silent drops the decision on the floor: who asked, for what, and
// which source refused is lost.
func (g *gatekeeper) silent(ctx context.Context, req *core.Request) core.Decision {
	return g.reg.InvokeContext(ctx, "job-submit", req) // want `authorization decision obtained here never reaches an audit call on any path from silent`
}

// silentPlain uses the context-free variant; still unaudited.
func (g *gatekeeper) silentPlain(req *core.Request) core.Decision {
	return g.reg.Invoke("job-cancel", req) // want `never reaches an audit call on any path from silentPlain`
}

// probe is a health check whose decision is discarded by design; the
// waiver records why it may skip the audit trail.
func (g *gatekeeper) probe(ctx context.Context) core.Decision {
	req := &core.Request{Subject: "healthcheck", Action: "noop"}
	return g.reg.InvokeContext(ctx, "probe", req) //authlint:ignore auditdeny synthetic self-probe, never user traffic; auditing it would flood the log
}

// noRegistry never touches the registry: no finding.
func (g *gatekeeper) noRegistry(req *core.Request) core.Decision {
	return core.DenyDecision("static", "always deny")
}
