// Fixture for the auditdeny analyzer's stronger finding: this package
// dispatches through the registry but does not import the audit
// package at all.
package auditdeny_noimport

import (
	"context"

	"core"
)

type dispatcher struct {
	reg *core.Registry
}

func (d *dispatcher) handle(ctx context.Context, req *core.Request) core.Decision {
	return d.reg.InvokeContext(ctx, "job-submit", req) // want `unaudited and handle's package does not even import the audit package`
}
