// Package core is a fixture stub of gridauth/internal/core: just
// enough surface (PDP and its capability interfaces, Decision/Effect,
// Registry) for the authlint analyzers, which match the core package
// structurally by name and declarations rather than by import path.
package core

import "context"

// Effect is the outcome class of an authorization decision.
type Effect int

// Decision effects.
const (
	Permit Effect = iota + 1
	Deny
	Error
	NotApplicable
)

// Request is an authorization request.
type Request struct {
	Subject string
	Action  string
}

// Decision is a PDP's answer.
type Decision struct {
	Effect Effect
	Source string
	Reason string
}

// PermitDecision builds a permit.
func PermitDecision(source, reason string) Decision {
	return Decision{Effect: Permit, Source: source, Reason: reason}
}

// DenyDecision builds a denial.
func DenyDecision(source, reason string) Decision {
	return Decision{Effect: Deny, Source: source, Reason: reason}
}

// ErrorDecision builds an authorization-system-failure decision.
func ErrorDecision(source, reason string) Decision {
	return Decision{Effect: Error, Source: source, Reason: reason}
}

// PDP is a policy decision point.
type PDP interface {
	Name() string
	Authorize(req *Request) Decision
}

// ContextPDP is a PDP that observes cancellation.
type ContextPDP interface {
	PDP
	AuthorizeContext(ctx context.Context, req *Request) Decision
}

// NonBlockingPDP marks purely in-process PDPs; the deadline is waived.
type NonBlockingPDP interface {
	PDP
	NonBlocking() bool
}

// EffectfulPDP marks PDPs whose evaluation mutates state.
type EffectfulPDP interface {
	PDP
	SideEffecting() bool
}

// Registry dispatches callout types to PDP chains.
type Registry struct{}

// Invoke evaluates a request against a callout type's chain.
func (r *Registry) Invoke(calloutType string, req *Request) Decision {
	return DenyDecision("registry:"+calloutType, "stub")
}

// InvokeContext is Invoke with a caller-supplied context.
func (r *Registry) InvokeContext(ctx context.Context, calloutType string, req *Request) Decision {
	if ctx.Err() != nil {
		return ErrorDecision("registry:"+calloutType, ctx.Err().Error())
	}
	return DenyDecision("registry:"+calloutType, "stub")
}
