// Fixture for the ctxprop analyzer: a function that receives a
// context.Context must thread it — no context.Background/TODO, no
// context-free call when the receiver offers a Context variant.
package ctxprop

import (
	"context"

	"core"
)

type engine struct {
	reg *core.Registry
}

// threaded passes the caller's ctx through: no finding.
func (e *engine) threaded(ctx context.Context, req *core.Request) core.Decision {
	return e.reg.InvokeContext(ctx, "job-submit", req)
}

// reanchored severs the cancellation chain with context.Background.
func (e *engine) reanchored(ctx context.Context, req *core.Request) core.Decision {
	return e.reg.InvokeContext(context.Background(), "job-submit", req) // want `reanchored receives a context\.Context but constructs context\.Background here`
}

// stubbed does the same with context.TODO.
func (e *engine) stubbed(ctx context.Context, req *core.Request) core.Decision {
	_ = ctx
	return e.reg.InvokeContext(context.TODO(), "job-submit", req) // want `stubbed receives a context\.Context but constructs context\.TODO here`
}

// dropped has a ctx in hand but calls the context-free Invoke even
// though the registry offers InvokeContext.
func (e *engine) dropped(ctx context.Context, req *core.Request) core.Decision {
	return e.reg.Invoke("job-submit", req) // want `dropped has a ctx but calls Invoke, dropping it; use InvokeContext\(ctx, \.\.\.\)`
}

// noCtx has no context to thread, so the context-free call is the only
// option: no finding.
func noCtx(reg *core.Registry, req *core.Request) core.Decision {
	return reg.Invoke("job-submit", req)
}

// dualPDP offers both forms, like core.CachedPDP.
type dualPDP struct{}

func (d *dualPDP) Name() string { return "dual" }

func (d *dualPDP) Authorize(req *core.Request) core.Decision {
	return core.DenyDecision("dual", "default")
}

func (d *dualPDP) AuthorizeContext(ctx context.Context, req *core.Request) core.Decision {
	if ctx.Err() != nil {
		return core.ErrorDecision("dual", ctx.Err().Error())
	}
	return d.Authorize(req) //authlint:ignore ctxprop ctx already checked above; Authorize is the shared slow path
}

// wrapper drops the ctx when dispatching to a PDP that has a Context
// variant.
func wrapper(ctx context.Context, p *dualPDP, req *core.Request) core.Decision {
	return p.Authorize(req) // want `wrapper has a ctx but calls Authorize, dropping it; use AuthorizeContext\(ctx, \.\.\.\)`
}

// ifaceDispatch calls through the plain core.PDP interface, which has
// no Context variant: no finding.
func ifaceDispatch(ctx context.Context, p core.PDP, req *core.Request) core.Decision {
	_ = ctx
	return p.Authorize(req)
}
