// Fixture for the decisionswitch analyzer: switches over core.Effect
// must be total (all four effects or a default) and the default must
// never permit.
package decisionswitch

import "core"

// total handles every effect explicitly: no finding.
func total(d core.Decision) string {
	switch d.Effect {
	case core.Permit:
		return "permit"
	case core.Deny:
		return "deny"
	case core.Error:
		return "error"
	case core.NotApplicable:
		return "not-applicable"
	}
	return ""
}

// defaultDeny is partial but falls back to a denial: no finding.
func defaultDeny(d core.Decision) core.Decision {
	switch d.Effect {
	case core.Permit:
		return d
	default:
		return core.DenyDecision("gate", "unrecognized effect")
	}
}

// partial forgets Error and NotApplicable and has no default.
func partial(d core.Decision) string {
	switch d.Effect { // want `switch on core\.Effect does not handle Error, NotApplicable and has no default`
	case core.Permit:
		return "permit"
	case core.Deny:
		return "deny"
	}
	return ""
}

// localTag switches over a copied effect value; coverage is decided by
// constant identity, so the alias still counts.
func localTag(d core.Decision) string {
	e := d.Effect
	switch e { // want `switch on core\.Effect does not handle Permit and has no default`
	case core.Deny:
		return "deny"
	case core.Error:
		return "error"
	case core.NotApplicable:
		return "not-applicable"
	}
	return ""
}

// permitDefault turns every unknown effect into a Permit.
func permitDefault(d core.Decision) core.Decision {
	switch d.Effect {
	case core.Deny:
		return d
	default:
		return core.PermitDecision("gate", "assumed fine") // want `default case of a core\.Effect switch permits`
	}
}

// permitConstDefault leaks the Permit constant from the default.
func permitConstDefault(d core.Decision) core.Effect {
	switch d.Effect {
	case core.Deny, core.Error:
		return d.Effect
	default:
		return core.Permit // want `default case of a core\.Effect switch permits`
	}
}

// grouped covers all four effects across grouped case lists: no
// finding.
func grouped(d core.Decision) bool {
	switch d.Effect {
	case core.Permit, core.NotApplicable:
		return true
	case core.Deny, core.Error:
		return false
	}
	return false
}

// notEffect switches over a plain int and is none of our business.
func notEffect(n int) string {
	switch n {
	case 1:
		return "one"
	}
	return "other"
}

// waived documents an audited exception on the switch line.
func waived(d core.Decision) string {
	switch d.Effect { //authlint:ignore decisionswitch metrics label only; enforcement happens in the caller
	case core.Permit:
		return "permit"
	}
	return "other"
}
