// Fixture for the epochuse analyzer: cluster-layer reads of a
// replicated policy store must capture the epoch they decided at.
package cluster

import "policy"

// torn reads the policy with no epoch anywhere in the function.
func torn(s *policy.Store) *policy.Policy {
	return s.Current() // want `reads a replicated policy snapshot \(Store\.Current\) without capturing its epoch`
}

// tornCompiled reads the compiled form the same anonymous way.
func tornCompiled(s *policy.Store) *policy.Compiled {
	c := s.Compiled() // want `reads a replicated policy snapshot \(Store\.Compiled\) without capturing its epoch`
	return c
}

// tornInClosure hides the read inside a function literal; the
// enclosing declaration still never captures an epoch.
func tornInClosure(s *policy.Store) func() *policy.Policy {
	return func() *policy.Policy {
		return s.Current() // want `Store\.Current\) without capturing its epoch`
	}
}

// atomicRead uses the sanctioned accessor: no finding.
func atomicRead(s *policy.Store) (*policy.Compiled, uint64) {
	_, c, epoch := s.Snapshot()
	return c, epoch
}

// correlated records Epoch alongside the read: accepted.
func correlated(s *policy.Store) (*policy.Policy, uint64) {
	return s.Current(), s.Epoch()
}

// waived carries an audited suppression with a reason.
func waived(s *policy.Store) *policy.Policy {
	return s.Current() //authlint:ignore epochuse fixture demonstrating an audited waiver with a recorded reason
}
