// Fixture: the epochuse analyzer is scoped to cluster-layer packages.
// A package with any other name reading Current without an epoch is
// out of scope and produces no findings.
package syncer

import "policy"

func plainRead(s *policy.Store) *policy.Policy { return s.Current() }
