// Fixture for the locksafe analyzer: no potentially blocking
// operation while a sync.Mutex/RWMutex is held.
package locksafe

import (
	"net"
	"sync"
	"time"
)

type shard struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	cond    *sync.Cond
	entries map[string]string
	updates chan string
}

// get holds the lock only around the map access: no finding.
func (s *shard) get(k string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entries[k]
}

// sleepUnderLock parks the whole shard.
func (s *shard) sleepUnderLock(k string) string {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `potentially blocking operation \(time\.Sleep\) while s\.mu is held \(locked at line \d+\)`
	v := s.entries[k]
	s.mu.Unlock()
	return v
}

// dialUnderDeferredUnlock holds the lock (via defer) across a network
// dial.
func (s *shard) dialUnderDeferredUnlock(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	conn, err := net.Dial("tcp", addr) // want `potentially blocking operation \(net\.Dial\) while s\.mu is held`
	if err != nil {
		return err
	}
	_ = conn
	return nil
}

// releaseFirst copies under the lock and blocks after releasing it: no
// finding.
func (s *shard) releaseFirst(k string) string {
	s.mu.Lock()
	v := s.entries[k]
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
	return v
}

// recvUnderLock waits on a channel while holding the lock.
func (s *shard) recvUnderLock() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.updates // want `potentially blocking operation \(receives from a channel\) while s\.mu is held`
}

// pollUnderLock only attempts a non-blocking receive: no finding.
func (s *shard) pollUnderLock() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.updates:
		return v
	default:
		return ""
	}
}

// helperUnderReadLock blocks transitively through an intra-package
// helper while holding the read lock.
func (s *shard) helperUnderReadLock(k string) string {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.slowLoad(k) // want `potentially blocking operation \(slowLoad, which calls time\.Sleep\) while s\.rw is held`
}

func (s *shard) slowLoad(k string) string {
	time.Sleep(time.Millisecond)
	return s.entries[k]
}

// spawnUnderLock starts a goroutine that blocks; the goroutine does
// not hold the caller's lock, so: no finding.
func (s *shard) spawnUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond)
	}()
}

// condWait is the one sanctioned blocking-while-locked pattern:
// sync.Cond.Wait releases the mutex while parked. No finding.
func (s *shard) condWait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.entries) == 0 {
		s.cond.Wait()
	}
}

// warmup blocks under the lock once at startup, before any request
// traffic exists; the waiver records that reasoning.
func (s *shard) warmup() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) //authlint:ignore locksafe startup-only prefill, runs before the shard is published
	s.entries = map[string]string{}
}
