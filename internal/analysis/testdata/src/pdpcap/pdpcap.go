// Fixture for the pdpcap analyzer: PDP capability declarations
// (core.NonBlockingPDP, core.EffectfulPDP) must match what the
// authorize path actually does.
package pdpcap

import (
	"net"
	"time"

	"core"
)

// GoodInProc truthfully declares NonBlockingPDP: pure map lookups.
type GoodInProc struct {
	rules map[string]bool
}

func (p *GoodInProc) Name() string      { return "good" }
func (p *GoodInProc) NonBlocking() bool { return true }

func (p *GoodInProc) Authorize(req *core.Request) core.Decision {
	if p.rules[req.Subject] {
		return core.PermitDecision("good", "rule matched")
	}
	return core.DenyDecision("good", "no rule")
}

// DialingNonBlocking claims NonBlockingPDP but dials the network.
type DialingNonBlocking struct {
	addr string
}

func (p *DialingNonBlocking) Name() string      { return "dialer" }
func (p *DialingNonBlocking) NonBlocking() bool { return true }

func (p *DialingNonBlocking) Authorize(req *core.Request) core.Decision { // want `DialingNonBlocking declares core\.NonBlockingPDP but Authorize calls net\.Dial`
	conn, err := net.Dial("tcp", p.addr)
	if err != nil {
		return core.ErrorDecision("dialer", err.Error())
	}
	conn.Close()
	return core.PermitDecision("dialer", "remote said yes")
}

// IndirectSleeper claims NonBlockingPDP but blocks through a helper.
type IndirectSleeper struct{}

func (p *IndirectSleeper) Name() string      { return "indirect" }
func (p *IndirectSleeper) NonBlocking() bool { return true }

func (p *IndirectSleeper) Authorize(req *core.Request) core.Decision { // want `IndirectSleeper declares core\.NonBlockingPDP but Authorize calls slowLookup, which calls time\.Sleep`
	return slowLookup(req)
}

func slowLookup(req *core.Request) core.Decision {
	time.Sleep(10 * time.Millisecond)
	return core.DenyDecision("indirect", "slow path")
}

// WaitingNonBlocking claims NonBlockingPDP but parks in a select with
// no default clause.
type WaitingNonBlocking struct {
	done chan struct{}
}

func (p *WaitingNonBlocking) Name() string      { return "waiter" }
func (p *WaitingNonBlocking) NonBlocking() bool { return true }

func (p *WaitingNonBlocking) Authorize(req *core.Request) core.Decision { // want `WaitingNonBlocking declares core\.NonBlockingPDP but Authorize blocks in a select without default`
	select {
	case <-p.done:
		return core.DenyDecision("waiter", "shut down")
	}
}

// PollingNonBlocking only ever attempts a non-blocking receive
// (select with default), which the contract tolerates.
type PollingNonBlocking struct {
	updates chan map[string]bool
	rules   map[string]bool
}

func (p *PollingNonBlocking) Name() string      { return "poller" }
func (p *PollingNonBlocking) NonBlocking() bool { return true }

func (p *PollingNonBlocking) Authorize(req *core.Request) core.Decision {
	select {
	case rules := <-p.updates:
		_ = rules
	default:
	}
	if p.rules[req.Subject] {
		return core.PermitDecision("poller", "rule matched")
	}
	return core.DenyDecision("poller", "no rule")
}

// SlowButHonest blocks and says so: it does NOT declare NonBlockingPDP,
// so the deadline watchdog covers it. No finding.
type SlowButHonest struct{}

func (p *SlowButHonest) Name() string { return "honest" }

func (p *SlowButHonest) Authorize(req *core.Request) core.Decision {
	time.Sleep(time.Millisecond)
	return core.DenyDecision("honest", "took our time")
}

// QuotaCounter mutates its own state per decision without declaring
// core.EffectfulPDP: parallel fan-out or a decision cache would skew
// the count.
type QuotaCounter struct {
	used int
}

func (p *QuotaCounter) Name() string { return "quota" }

func (p *QuotaCounter) Authorize(req *core.Request) core.Decision { // want `QuotaCounter\.Authorize writes p\.used \(shared via parameter p\) but QuotaCounter does not declare core\.EffectfulPDP`
	p.used++
	if p.used > 10 {
		return core.DenyDecision("quota", "exhausted")
	}
	return core.PermitDecision("quota", "within quota")
}

// HonestCounter does the same but declares EffectfulPDP. No finding.
type HonestCounter struct {
	used int
}

func (p *HonestCounter) Name() string        { return "honest-quota" }
func (p *HonestCounter) SideEffecting() bool { return true }

func (p *HonestCounter) Authorize(req *core.Request) core.Decision {
	p.used++
	if p.used > 10 {
		return core.DenyDecision("honest-quota", "exhausted")
	}
	return core.PermitDecision("honest-quota", "within quota")
}

// RequestStamper writes through a reference parameter (the request)
// without declaring EffectfulPDP.
type RequestStamper struct{}

func (p *RequestStamper) Name() string { return "stamper" }

func (p *RequestStamper) Authorize(req *core.Request) core.Decision { // want `RequestStamper\.Authorize writes req\.Action \(shared via parameter req\) but RequestStamper does not declare core\.EffectfulPDP`
	req.Action = "normalized:" + req.Action
	return core.DenyDecision("stamper", "not applicable")
}

// MemoPDP memoizes decisions in a receiver map. The write is real but
// idempotent per subject, so it carries an audited waiver.
type MemoPDP struct {
	memo map[string]core.Decision
}

func (p *MemoPDP) Name() string { return "memo" }

//authlint:ignore pdpcap memo write is idempotent per subject; replay under fan-out is safe and audited here
func (p *MemoPDP) Authorize(req *core.Request) core.Decision {
	if d, ok := p.memo[req.Subject]; ok {
		return d
	}
	d := core.DenyDecision("memo", "first sight")
	p.memo[req.Subject] = d
	return d
}

// localState only mutates locals and by-value copies: no finding.
type localState struct{}

func (p localState) Name() string { return "local" }

func (p localState) Authorize(req *core.Request) core.Decision {
	seen := map[string]bool{}
	seen[req.Subject] = true
	n := 0
	n++
	_ = n
	return core.DenyDecision("local", "stateless")
}
