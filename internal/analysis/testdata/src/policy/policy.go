// Package policy is a fixture stub of gridauth/internal/policy: just
// the Store snapshot surface the epochuse analyzer matches
// structurally by type and package name.
package policy

// Policy is a parsed policy document.
type Policy struct{ Text string }

// Compiled is the compiled evaluation form.
type Compiled struct{ rules int }

// Store holds an atomically replaceable compiled-policy snapshot with
// a monotonically increasing epoch.
type Store struct {
	pol   *Policy
	comp  *Compiled
	epoch uint64
}

// Current returns the live policy.
func (s *Store) Current() *Policy { return s.pol }

// Compiled returns the live compiled form.
func (s *Store) Compiled() *Compiled { return s.comp }

// Epoch returns the live snapshot's epoch.
func (s *Store) Epoch() uint64 { return s.epoch }

// Snapshot returns policy, compiled form and epoch from one load.
func (s *Store) Snapshot() (*Policy, *Compiled, uint64) { return s.pol, s.comp, s.epoch }
