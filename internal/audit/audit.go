// Package audit records authorization decisions. The paper lists the
// loss of "security, audit, accounting" as a cost of shared-account
// workarounds (§4.3); a fine-grain authorization system restores
// auditability only if every decision leaves a trail naming who asked,
// for what, and which policy source decided. This package provides that
// trail twice over:
//
//   - a bounded in-memory log with JSONL export and a PDP middleware
//     that records every decision flowing through a callout chain
//     (NewLog — the synchronous ring the tests and examples use), and
//   - an asynchronous, batched, tamper-evident pipeline (NewPipeline)
//     that group-commits records into a hash-chained, Merkle-batched
//     segment log whose rotated segments are sealed with an Ed25519
//     signature, verifiable offline by cmd/auditverify.
//
// Both are the same *Log type, so enforcement points (the GRAM
// dispatcher, GridFTP, MDS, the resilience breaker) do not care which
// one they were handed. docs/AUDIT.md is the operator document: on-disk
// format, verification runbook, and the degraded-mode policy matrix.
package audit

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"gridauth/internal/core"
	"gridauth/internal/gsi"
	"gridauth/internal/obs"
)

// Record is one audited authorization decision.
type Record struct {
	// Seq is the record's position in the tamper-evident sequence,
	// assigned at group commit by the pipeline (pipeline logs only; a
	// synchronous ring leaves it zero). It is what auditverify's
	// inclusion proofs address.
	Seq  uint64    `json:"seq,omitempty"`
	Time time.Time `json:"time"`
	// RequestID correlates every record of one gatekeeper request (and
	// its retained decision trace, when tracing is on). Generated once
	// per request at the gatekeeper dispatch point; empty for records
	// that do not belong to a request (circuit-breaker transitions).
	RequestID string `json:"requestId,omitempty"`
	Subject   gsi.DN `json:"subject"`
	Action    string `json:"action"`
	JobID     string `json:"jobId,omitempty"`
	JobOwner  gsi.DN `json:"jobOwner,omitempty"`
	PDP       string `json:"pdp"`
	Effect    string `json:"effect"`
	Source    string `json:"source,omitempty"`
	Reason    string `json:"reason,omitempty"`
	// Elapsed is the decision latency. The JSON name is the unit: the
	// field marshals as integer nanoseconds (Go's time.Duration
	// encoding), not as a formatted duration string.
	Elapsed time.Duration `json:"elapsedNanos"`
	// Spans is the per-PDP decision path of a traced request (one span
	// per PDP evaluated, or a single cache-hit span); empty when tracing
	// is disabled.
	Spans []obs.Span `json:"spans,omitempty"`
}

// Log is a bounded, concurrency-safe decision log. A Log built by
// NewLog is a synchronous ring buffer (old entries are dropped once
// Capacity is exceeded); one built by NewPipeline additionally runs the
// asynchronous tamper-evident writer, with the ring serving as the
// recent-records window behind the query methods.
//
// Clock contract: the time source installed by SetClock stamps
// Record.Time for every record entering through Append, and it is also
// the clock Wrap measures decision latency (Record.Elapsed) with — a
// test that injects a clock can assert both fields deterministically.
// Pipeline internals (flush scheduling, metrics) keep using the wall
// clock; SetClock governs record content only.
type Log struct {
	mu      sync.Mutex
	records []Record
	start   int
	count   int
	dropped uint64
	nowFn   atomic.Value // func() time.Time
	pipe    *pipeline    // nil for a synchronous ring
}

// NewLog creates a synchronous ring log holding up to capacity records.
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = 1024
	}
	l := &Log{records: make([]Record, capacity)}
	l.nowFn.Store(time.Now)
	return l
}

// SetClock overrides the time source (tests). See the clock contract
// on Log: the override stamps Record.Time and drives Wrap's Elapsed
// measurement. Safe to call concurrently with Append.
func (l *Log) SetClock(now func() time.Time) {
	l.nowFn.Store(now)
}

// clockNow reads the current record-stamping clock.
func (l *Log) clockNow() time.Time {
	return l.nowFn.Load().(func() time.Time)()
}

// CanBlock reports whether Append may wait for queue space: true only
// for a pipeline log in ModeBlock, whose full-queue policy is
// backpressure. Wrap consults it so an audited PDP never claims
// core.NonBlockingPDP over a log that can stall the request.
func (l *Log) CanBlock() bool {
	return l.pipe != nil && l.pipe.cfg.Mode == ModeBlock
}

// Append stores a record, stamping its time when unset. On a pipeline
// log the record is enqueued for the next group commit; with the queue
// full the configured DegradedMode decides whether Append waits
// (ModeBlock) or sheds the record and counts it (ModeDrop) — the
// block-vs-drop trade per enforcement point is tabulated in
// docs/AUDIT.md.
func (l *Log) Append(r Record) {
	if r.Time.IsZero() {
		r.Time = l.clockNow()
	}
	if l.pipe != nil {
		l.pipe.enqueue(r)
		return
	}
	l.mu.Lock()
	l.appendRing(r)
	l.mu.Unlock()
}

// appendRing inserts into the bounded ring. Callers hold l.mu.
func (l *Log) appendRing(r Record) {
	idx := (l.start + l.count) % len(l.records)
	if l.count == len(l.records) {
		l.start = (l.start + 1) % len(l.records)
		l.dropped++
	} else {
		l.count++
	}
	l.records[idx] = r
}

// Flush blocks until every record appended before the call has been
// committed (hashed, chained and handed to the sink). A synchronous
// ring log has nothing in flight; Flush returns immediately.
func (l *Log) Flush() {
	if l.pipe != nil {
		l.pipe.flush()
	}
}

// Close drains and commits everything queued, seals the open segment,
// and closes the sink. Appends arriving after Close are counted as
// queue drops. Close is idempotent; it returns the first error the
// pipeline's sink reported. Closing a synchronous ring log is a no-op.
func (l *Log) Close() error {
	if l.pipe == nil {
		return nil
	}
	return l.pipe.close()
}

// QueueDropped reports how many records the pipeline shed because the
// bounded queue was full (ModeDrop), or because the record arrived
// after Close. Always zero for a synchronous ring log. Distinct from
// Dropped, which counts ring evictions: an evicted record left the
// recent-records window but — on a pipeline log — was still committed
// to the sink; a queue-dropped record is gone.
func (l *Log) QueueDropped() uint64 {
	if l.pipe == nil {
		return 0
	}
	return l.pipe.queueDropped.Load()
}

// Len reports the number of retained records.
func (l *Log) Len() int {
	if l.pipe != nil {
		l.pipe.flush()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Dropped reports how many records the ring has evicted.
func (l *Log) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Records returns the retained records, oldest first. On a pipeline
// log it flushes first, so every record appended before the call is
// visible — queries are read-your-writes consistent even though the
// writer is asynchronous.
func (l *Log) Records() []Record {
	if l.pipe != nil {
		l.pipe.flush()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, 0, l.count)
	for i := 0; i < l.count; i++ {
		out = append(out, l.records[(l.start+i)%len(l.records)])
	}
	return out
}

// Filter returns retained records matching pred, oldest first.
func (l *Log) Filter(pred func(Record) bool) []Record {
	var out []Record
	for _, r := range l.Records() {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// Denials returns the retained denials.
func (l *Log) Denials() []Record {
	return l.Filter(func(r Record) bool { return r.Effect == core.Deny.String() })
}

// Stats summarizes decision counts per effect.
func (l *Log) Stats() map[string]int {
	stats := make(map[string]int, 4)
	for _, r := range l.Records() {
		stats[r.Effect]++
	}
	return stats
}

// WriteJSONL streams the retained records as JSON lines.
func (l *Log) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range l.Records() {
		if err := enc.Encode(&r); err != nil {
			return fmt.Errorf("audit: encode record: %w", err)
		}
	}
	return nil
}

// ReadJSONL loads records from a JSONL stream into a new slice. It
// reads exactly what the pipeline's segment files contain, so a sealed
// segment round-trips: ReadJSONL(segment-NNNNNN.jsonl) returns the
// committed records, Seq ascending.
func ReadJSONL(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for dec.More() {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("audit: decode record: %w", err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// Wrap returns a PDP that forwards to inner and records every decision.
// The wrapper is context-aware: the caller's context reaches inner, and
// a request correlation ID riding on it (obs.WithRequestID) is stamped
// onto the record. Capability declarations are forwarded so combiners
// and caches treat the wrapped PDP exactly like the bare one. Latency
// (Record.Elapsed) is measured with the log's clock, so a SetClock
// override governs it (see the clock contract on Log).
func Wrap(inner core.PDP, log *Log) core.PDP {
	return &auditedPDP{
		inner:       inner,
		name:        inner.Name(),
		effectful:   core.IsSideEffecting(inner),
		nonBlocking: core.IsNonBlocking(inner),
		log:         log,
	}
}

type auditedPDP struct {
	inner       core.PDP
	name        string
	effectful   bool
	nonBlocking bool
	log         *Log
}

var (
	_ core.ContextPDP     = (*auditedPDP)(nil)
	_ core.EffectfulPDP   = (*auditedPDP)(nil)
	_ core.NonBlockingPDP = (*auditedPDP)(nil)
)

// Name implements core.PDP; the wrapper is invisible.
func (p *auditedPDP) Name() string { return p.name }

// SideEffecting implements core.EffectfulPDP by forwarding inner's
// declaration.
func (p *auditedPDP) SideEffecting() bool { return p.effectful }

// NonBlocking implements core.NonBlockingPDP by forwarding inner's
// declaration — unless the attached log itself can block (a pipeline
// in ModeBlock applies backpressure on a full queue), in which case
// the wrapper truthfully reports false so deadline wrappers keep
// their watchdog.
func (p *auditedPDP) NonBlocking() bool { return p.nonBlocking && !p.log.CanBlock() }

// Authorize implements core.PDP.
//
//authlint:ignore pdpcap NonBlocking() consults Log.CanBlock and reports false for any log whose Append can wait (pipeline in ModeBlock); the Cond.Wait reachable here runs only under that declared-blocking configuration
func (p *auditedPDP) Authorize(req *core.Request) core.Decision {
	return p.AuthorizeContext(context.Background(), req)
}

// AuthorizeContext implements core.ContextPDP.
func (p *auditedPDP) AuthorizeContext(ctx context.Context, req *core.Request) core.Decision {
	start := p.log.clockNow()
	d := core.AuthorizeWithContext(ctx, p.inner, req)
	p.log.Append(Record{
		Time:      start,
		RequestID: obs.RequestIDFrom(ctx),
		Subject:   req.Subject,
		Action:    req.Action,
		JobID:     req.JobID,
		JobOwner:  req.JobOwner,
		PDP:       p.name,
		Effect:    d.Effect.String(),
		Source:    d.Source,
		Reason:    d.Reason,
		Elapsed:   p.log.clockNow().Sub(start),
	})
	return d
}

// InstrumentRegistry rebinds a callout type so that its combined
// decision is audited (the chain is wrapped as one unit, mirroring what
// the enforcement point actually acted on).
func InstrumentRegistry(reg *core.Registry, calloutType string, log *Log) {
	inner := reg.PDP(calloutType)
	wrapped := Wrap(inner, log)
	// Rebind: replace the callout's chain with the audited view under a
	// derived type, leaving the original intact for direct use.
	reg.Bind(calloutType+".audited", wrapped)
}
