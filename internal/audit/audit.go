// Package audit records authorization decisions. The paper lists the
// loss of "security, audit, accounting" as a cost of shared-account
// workarounds (§4.3); a fine-grain authorization system restores
// auditability only if every decision leaves a trail naming who asked,
// for what, and which policy source decided. This package provides that
// trail: a bounded in-memory log with JSONL export and a PDP middleware
// that records every decision flowing through a callout chain.
package audit

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"gridauth/internal/core"
	"gridauth/internal/gsi"
	"gridauth/internal/obs"
)

// Record is one audited authorization decision.
type Record struct {
	Time time.Time `json:"time"`
	// RequestID correlates every record of one gatekeeper request (and
	// its retained decision trace, when tracing is on). Generated once
	// per request at the gatekeeper dispatch point; empty for records
	// that do not belong to a request (circuit-breaker transitions).
	RequestID string    `json:"requestId,omitempty"`
	Subject   gsi.DN    `json:"subject"`
	Action    string    `json:"action"`
	JobID     string    `json:"jobId,omitempty"`
	JobOwner  gsi.DN    `json:"jobOwner,omitempty"`
	PDP       string    `json:"pdp"`
	Effect    string    `json:"effect"`
	Source    string    `json:"source,omitempty"`
	Reason    string    `json:"reason,omitempty"`
	// Elapsed is the decision latency.
	Elapsed time.Duration `json:"elapsedNanos"`
	// Spans is the per-PDP decision path of a traced request (one span
	// per PDP evaluated, or a single cache-hit span); empty when tracing
	// is disabled.
	Spans []obs.Span `json:"spans,omitempty"`
}

// Log is a bounded, concurrency-safe decision log (a ring buffer: old
// entries are dropped once Capacity is exceeded).
type Log struct {
	mu      sync.Mutex
	records []Record
	start   int
	count   int
	dropped uint64
	now     func() time.Time
}

// NewLog creates a log holding up to capacity records.
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Log{records: make([]Record, capacity), now: time.Now}
}

// SetClock overrides the time source (tests).
func (l *Log) SetClock(now func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.now = now
}

// Append stores a record, stamping its time when unset.
func (l *Log) Append(r Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if r.Time.IsZero() {
		r.Time = l.now()
	}
	idx := (l.start + l.count) % len(l.records)
	if l.count == len(l.records) {
		l.start = (l.start + 1) % len(l.records)
		l.dropped++
	} else {
		l.count++
	}
	l.records[idx] = r
}

// Len reports the number of retained records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Dropped reports how many records the ring has evicted.
func (l *Log) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Records returns the retained records, oldest first.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, 0, l.count)
	for i := 0; i < l.count; i++ {
		out = append(out, l.records[(l.start+i)%len(l.records)])
	}
	return out
}

// Filter returns retained records matching pred, oldest first.
func (l *Log) Filter(pred func(Record) bool) []Record {
	var out []Record
	for _, r := range l.Records() {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// Denials returns the retained denials.
func (l *Log) Denials() []Record {
	return l.Filter(func(r Record) bool { return r.Effect == core.Deny.String() })
}

// Stats summarizes decision counts per effect.
func (l *Log) Stats() map[string]int {
	stats := make(map[string]int, 4)
	for _, r := range l.Records() {
		stats[r.Effect]++
	}
	return stats
}

// WriteJSONL streams the retained records as JSON lines.
func (l *Log) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range l.Records() {
		if err := enc.Encode(&r); err != nil {
			return fmt.Errorf("audit: encode record: %w", err)
		}
	}
	return nil
}

// ReadJSONL loads records from a JSONL stream into a new slice.
func ReadJSONL(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for dec.More() {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("audit: decode record: %w", err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// Wrap returns a PDP that forwards to inner and records every decision.
// The wrapper is context-aware: the caller's context reaches inner, and
// a request correlation ID riding on it (obs.WithRequestID) is stamped
// onto the record. Capability declarations are forwarded so combiners
// and caches treat the wrapped PDP exactly like the bare one.
func Wrap(inner core.PDP, log *Log) core.PDP {
	return &auditedPDP{
		inner:       inner,
		name:        inner.Name(),
		effectful:   core.IsSideEffecting(inner),
		nonBlocking: core.IsNonBlocking(inner),
		log:         log,
	}
}

type auditedPDP struct {
	inner       core.PDP
	name        string
	effectful   bool
	nonBlocking bool
	log         *Log
}

var (
	_ core.ContextPDP     = (*auditedPDP)(nil)
	_ core.EffectfulPDP   = (*auditedPDP)(nil)
	_ core.NonBlockingPDP = (*auditedPDP)(nil)
)

// Name implements core.PDP; the wrapper is invisible.
func (p *auditedPDP) Name() string { return p.name }

// SideEffecting implements core.EffectfulPDP by forwarding inner's
// declaration.
func (p *auditedPDP) SideEffecting() bool { return p.effectful }

// NonBlocking implements core.NonBlockingPDP by forwarding inner's
// declaration.
func (p *auditedPDP) NonBlocking() bool { return p.nonBlocking }

// Authorize implements core.PDP.
func (p *auditedPDP) Authorize(req *core.Request) core.Decision {
	return p.AuthorizeContext(context.Background(), req)
}

// AuthorizeContext implements core.ContextPDP.
func (p *auditedPDP) AuthorizeContext(ctx context.Context, req *core.Request) core.Decision {
	start := time.Now()
	d := core.AuthorizeWithContext(ctx, p.inner, req)
	p.log.Append(Record{
		RequestID: obs.RequestIDFrom(ctx),
		Subject:   req.Subject,
		Action:    req.Action,
		JobID:     req.JobID,
		JobOwner:  req.JobOwner,
		PDP:       p.name,
		Effect:    d.Effect.String(),
		Source:    d.Source,
		Reason:    d.Reason,
		Elapsed:   time.Since(start),
	})
	return d
}

// InstrumentRegistry rebinds a callout type so that its combined
// decision is audited (the chain is wrapped as one unit, mirroring what
// the enforcement point actually acted on).
func InstrumentRegistry(reg *core.Registry, calloutType string, log *Log) {
	inner := reg.PDP(calloutType)
	wrapped := Wrap(inner, log)
	// Rebind: replace the callout's chain with the audited view under a
	// derived type, leaving the original intact for direct use.
	reg.Bind(calloutType+".audited", wrapped)
}
