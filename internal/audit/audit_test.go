package audit

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"gridauth/internal/core"
	"gridauth/internal/obs"
	"gridauth/internal/policy"
)

const kate = "/O=Grid/CN=Kate"

func permitPDP() core.PDP {
	return core.PDPFunc{ID: "p", Fn: func(*core.Request) core.Decision {
		return core.PermitDecision("p", "ok")
	}}
}

func denyPDP() core.PDP {
	return core.PDPFunc{ID: "d", Fn: func(*core.Request) core.Decision {
		return core.DenyDecision("d", "no")
	}}
}

func TestWrapRecordsDecisions(t *testing.T) {
	log := NewLog(16)
	pdp := Wrap(denyPDP(), log)
	req := &core.Request{Subject: kate, Action: policy.ActionStart, JobID: "j1"}
	if d := pdp.Authorize(req); d.Effect != core.Deny {
		t.Fatalf("wrapped decision changed: %v", d.Effect)
	}
	recs := log.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.Subject != kate || r.Action != policy.ActionStart || r.JobID != "j1" {
		t.Errorf("record = %+v", r)
	}
	if r.Effect != "deny" || r.Source != "d" || r.Reason != "no" {
		t.Errorf("decision fields = %+v", r)
	}
	if r.Time.IsZero() {
		t.Errorf("record not timestamped")
	}
}

// TestWrapNonBlockingTracksLog pins the claim the pdpcap suppression
// on auditedPDP.Authorize rests on: the wrapper forwards inner's
// NonBlocking declaration only over a log whose Append cannot wait.
func TestWrapNonBlockingTracksLog(t *testing.T) {
	inner := core.SelfOnlyPDP{} // declares NonBlocking
	if !core.IsNonBlocking(inner) {
		t.Fatal("fixture PDP must declare NonBlocking")
	}

	if !core.IsNonBlocking(Wrap(inner, NewLog(16))) {
		t.Error("ring log cannot block Append; wrapper should stay non-blocking")
	}

	blockLog, err := NewPipeline(Config{Sink: &MemSink{}, Mode: ModeBlock})
	if err != nil {
		t.Fatal(err)
	}
	defer blockLog.Close()
	if core.IsNonBlocking(Wrap(inner, blockLog)) {
		t.Error("ModeBlock pipeline applies backpressure; wrapper must not claim non-blocking")
	}

	dropLog, err := NewPipeline(Config{Sink: &MemSink{}, Mode: ModeDrop})
	if err != nil {
		t.Fatal(err)
	}
	defer dropLog.Close()
	if !core.IsNonBlocking(Wrap(inner, dropLog)) {
		t.Error("ModeDrop pipeline sheds instead of waiting; wrapper should stay non-blocking")
	}
}

func TestRingEviction(t *testing.T) {
	log := NewLog(3)
	pdp := Wrap(permitPDP(), log)
	for i := 0; i < 5; i++ {
		pdp.Authorize(&core.Request{Subject: kate, Action: policy.ActionStart, JobID: "j" + string(rune('0'+i))})
	}
	if log.Len() != 3 {
		t.Fatalf("Len = %d", log.Len())
	}
	if log.Dropped() != 2 {
		t.Errorf("Dropped = %d", log.Dropped())
	}
	recs := log.Records()
	if recs[0].JobID != "j2" || recs[2].JobID != "j4" {
		t.Errorf("eviction order wrong: %v ... %v", recs[0].JobID, recs[2].JobID)
	}
}

func TestFilterDenialsStats(t *testing.T) {
	log := NewLog(16)
	p := Wrap(permitPDP(), log)
	d := Wrap(denyPDP(), log)
	req := &core.Request{Subject: kate, Action: policy.ActionStart}
	p.Authorize(req)
	d.Authorize(req)
	d.Authorize(req)
	if got := len(log.Denials()); got != 2 {
		t.Errorf("Denials = %d", got)
	}
	stats := log.Stats()
	if stats["permit"] != 1 || stats["deny"] != 2 {
		t.Errorf("stats = %v", stats)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	log := NewLog(8)
	log.SetClock(func() time.Time { return time.Date(2003, 6, 16, 12, 0, 0, 0, time.UTC) })
	Wrap(denyPDP(), log).Authorize(&core.Request{Subject: kate, Action: policy.ActionCancel, JobOwner: "/O=Grid/CN=Bo"})
	var buf bytes.Buffer
	if err := log.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Subject != kate || recs[0].JobOwner != "/O=Grid/CN=Bo" {
		t.Errorf("round trip = %+v", recs)
	}
	if _, err := ReadJSONL(bytes.NewBufferString("nonsense")); err == nil {
		t.Errorf("garbage accepted")
	}
}

func TestInstrumentRegistry(t *testing.T) {
	reg := core.NewRegistry()
	reg.Bind(core.CalloutJobManager, denyPDP())
	log := NewLog(8)
	InstrumentRegistry(reg, core.CalloutJobManager, log)
	req := &core.Request{Subject: kate, Action: policy.ActionStart}
	d := reg.Invoke(core.CalloutJobManager+".audited", req)
	if d.Effect != core.Deny {
		t.Fatalf("audited chain decision = %v", d.Effect)
	}
	if log.Len() != 1 {
		t.Errorf("audited chain not recorded")
	}
	// The original chain remains usable and unaudited.
	if d := reg.Invoke(core.CalloutJobManager, req); d.Effect != core.Deny {
		t.Errorf("original chain broken")
	}
	if log.Len() != 1 {
		t.Errorf("original chain unexpectedly audited")
	}
}

// Property: the ring retains exactly min(n, capacity) newest records in
// order.
func TestQuickRingOrder(t *testing.T) {
	f := func(n uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		log := NewLog(capacity)
		total := int(n % 64)
		for i := 0; i < total; i++ {
			log.Append(Record{JobID: itoa(i), Time: time.Unix(int64(i), 0)})
		}
		recs := log.Records()
		want := total
		if want > capacity {
			want = capacity
		}
		if len(recs) != want {
			return false
		}
		for i, r := range recs {
			if r.JobID != itoa(total-want+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestWrapStampsRequestIDFromContext(t *testing.T) {
	log := NewLog(16)
	pdp := Wrap(permitPDP(), log)
	rid := obs.NewRequestID()
	ctx := obs.WithRequestID(context.Background(), rid)
	req := &core.Request{Subject: kate, Action: policy.ActionStart}
	if d := core.AuthorizeWithContext(ctx, pdp, req); d.Effect != core.Permit {
		t.Fatalf("decision = %v", d.Effect)
	}
	recs := log.Records()
	if len(recs) != 1 || recs[0].RequestID != rid {
		t.Fatalf("records = %+v, want one record with id %s", recs, rid)
	}
	// Without a context ID the field stays empty — the record still lands.
	pdp.Authorize(req)
	recs = log.Records()
	if len(recs) != 2 || recs[1].RequestID != "" {
		t.Fatalf("ctx-less record = %+v, want empty RequestID", recs[len(recs)-1])
	}
}

// TestConcurrentRequestIDsNeverInterleave drives many goroutines through
// one audited PDP, each with its own request ID and a distinguishing
// JobID. Every retained record must pair the request ID with the JobID
// it was issued for — concurrent appends must not mix fields across
// requests.
func TestConcurrentRequestIDsNeverInterleave(t *testing.T) {
	const workers, perWorker = 8, 50
	log := NewLog(workers * perWorker)
	pdp := Wrap(permitPDP(), log)

	idOf := func(w, i int) string { return "req-" + itoa(w) + "-" + itoa(i) }
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rid := idOf(w, i)
				ctx := obs.WithRequestID(context.Background(), rid)
				req := &core.Request{Subject: kate, Action: policy.ActionStart, JobID: rid}
				core.AuthorizeWithContext(ctx, pdp, req)
			}
		}(w)
	}
	wg.Wait()

	recs := log.Records()
	if len(recs) != workers*perWorker {
		t.Fatalf("records = %d, want %d", len(recs), workers*perWorker)
	}
	seen := make(map[string]bool, len(recs))
	for _, r := range recs {
		if r.RequestID == "" || r.RequestID != r.JobID {
			t.Fatalf("record interleaved ids: requestId=%q jobId=%q", r.RequestID, r.JobID)
		}
		if seen[r.RequestID] {
			t.Fatalf("duplicate request id %s", r.RequestID)
		}
		seen[r.RequestID] = true
	}
}

func TestGeneratedRequestIDsUniqueUnderConcurrency(t *testing.T) {
	const workers, perWorker = 8, 200
	ids := make([][]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ids[w] = append(ids[w], obs.NewRequestID())
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[string]bool, workers*perWorker)
	for _, batch := range ids {
		for _, id := range batch {
			if seen[id] {
				t.Fatalf("request id %s issued twice", id)
			}
			seen[id] = true
		}
	}
}
