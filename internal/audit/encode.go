// Reflection-free JSON encoding for the pipeline's group commit. At
// the >=1M records/s the P11 benchmark holds the pipeline to,
// encoding/json's reflective Marshal is the single largest per-record
// cost; this encoder renders the common record shape — ASCII strings
// with nothing to escape, no spans — by appending into a reused
// buffer, and punts anything else back to encoding/json. The output is
// what json.Marshal would produce for the same record, so segment
// files look identical either way; correctness only requires valid
// JSON, since every hash is computed over the bytes as written.

package audit

import (
	"strconv"
	"time"
)

// plainJSON marks the bytes a JSON string can embed verbatim:
// printable ASCII with no quote or backslash. A table lookup is
// measurably cheaper than the four-comparison form at the rate the
// scan runs (nine strings per record, a million records a second).
var plainJSON = func() (t [256]bool) {
	for c := 0x20; c <= 0x7e; c++ {
		t[c] = true
	}
	t['"'], t['\\'] = false, false
	return
}()

// plainJSONString reports whether s can be embedded in a JSON string
// verbatim. Anything else (control bytes, escapes, non-ASCII) takes
// the encoding/json path.
func plainJSONString(s string) bool {
	for i := 0; i < len(s); i++ {
		if !plainJSON[s[i]] {
			return false
		}
	}
	return true
}

// recordEncoder renders records on the fast path. It caches the
// rendered timestamp down to the second: at group-commit rates many
// consecutive records land inside one wall-clock second, and
// re-rendering only the fractional part is far cheaper than a full
// RFC3339Nano format.
type recordEncoder struct {
	lastSec int64
	lastOff int    // zone offset the cache was rendered under
	prefix  []byte // "2006-01-02T15:04:05" of lastSec
	zone    []byte // "Z" or "+07:00" suffix
}

// appendTime appends t in RFC3339Nano — byte for byte what
// encoding/json emits for a time.Time.
func (e *recordEncoder) appendTime(dst []byte, t time.Time) []byte {
	sec := t.Unix()
	_, off := t.Zone()
	if sec != e.lastSec || off != e.lastOff || len(e.prefix) == 0 {
		whole := t.Add(-time.Duration(t.Nanosecond()))
		e.prefix = whole.AppendFormat(e.prefix[:0], "2006-01-02T15:04:05")
		e.zone = whole.AppendFormat(e.zone[:0], "Z07:00")
		e.lastSec, e.lastOff = sec, off
	}
	dst = append(dst, e.prefix...)
	if ns := t.Nanosecond(); ns != 0 {
		// RFC3339Nano: nine fractional digits with trailing zeros trimmed.
		var frac [10]byte
		frac[0] = '.'
		for i := 9; i >= 1; i-- {
			frac[i] = byte('0' + ns%10)
			ns /= 10
		}
		n := 9
		for frac[n] == '0' {
			n--
		}
		dst = append(dst, frac[:n+1]...)
	}
	return append(dst, e.zone...)
}

// appendField appends `,"name":"value"` for a pre-checked plain string.
func appendField(dst []byte, name, value string) []byte {
	dst = append(dst, ',', '"')
	dst = append(dst, name...)
	dst = append(dst, '"', ':', '"')
	dst = append(dst, value...)
	dst = append(dst, '"')
	return dst
}

// appendRecord appends r's JSON object to dst. ok is false when r
// needs the encoding/json slow path (spans present, a string needing
// escaping, or a timestamp outside JSON's year range); dst is then
// returned unchanged.
func (e *recordEncoder) appendRecord(dst []byte, r *Record) (_ []byte, ok bool) {
	if len(r.Spans) > 0 {
		return dst, false
	}
	for _, s := range [...]string{
		r.RequestID, string(r.Subject), r.Action, r.JobID,
		string(r.JobOwner), r.PDP, r.Effect, r.Source, r.Reason,
	} {
		if !plainJSONString(s) {
			return dst, false
		}
	}
	if y := r.Time.Year(); y < 0 || y > 9999 {
		return dst, false // json.Marshal rejects these; let it say so
	}
	dst = append(dst, '{')
	if r.Seq != 0 {
		dst = append(dst, `"seq":`...)
		dst = strconv.AppendUint(dst, r.Seq, 10)
		dst = append(dst, ',')
	}
	dst = append(dst, `"time":"`...)
	dst = e.appendTime(dst, r.Time)
	dst = append(dst, '"')
	if r.RequestID != "" {
		dst = appendField(dst, "requestId", r.RequestID)
	}
	dst = appendField(dst, "subject", string(r.Subject))
	dst = appendField(dst, "action", r.Action)
	if r.JobID != "" {
		dst = appendField(dst, "jobId", r.JobID)
	}
	if r.JobOwner != "" {
		dst = appendField(dst, "jobOwner", string(r.JobOwner))
	}
	dst = appendField(dst, "pdp", r.PDP)
	dst = appendField(dst, "effect", r.Effect)
	if r.Source != "" {
		dst = appendField(dst, "source", r.Source)
	}
	if r.Reason != "" {
		dst = appendField(dst, "reason", r.Reason)
	}
	dst = append(dst, `,"elapsedNanos":`...)
	dst = strconv.AppendInt(dst, int64(r.Elapsed), 10)
	dst = append(dst, '}')
	return dst, true
}
