package audit

import (
	"encoding/json"
	"testing"
	"time"

	"gridauth/internal/obs"
)

// TestAppendRecordMatchesEncodingJSON pins the fast-path encoder to
// encoding/json byte for byte across the record shapes the pipeline
// commits, so segment files look identical whichever path rendered
// them.
func TestAppendRecordMatchesEncodingJSON(t *testing.T) {
	when := time.Date(2026, 8, 9, 13, 14, 15, 123456789, time.UTC)
	cases := []Record{
		{Time: when, Subject: "/O=Grid/CN=Kate", Action: "start", PDP: "p", Effect: "permit"},
		{Seq: 7, Time: when, Subject: "/O=Grid/CN=Kate", Action: "cancel", PDP: "p", Effect: "deny",
			Source: "policy:local", Reason: "queue != fast violated", Elapsed: 1830 * time.Nanosecond},
		{Seq: 1, Time: when.Truncate(time.Second), RequestID: "req-00000001",
			Subject: "/O=Grid/O=NFC/CN=Alan Analyst", Action: "start", JobID: "job-9",
			JobOwner: "/O=Grid/O=NFC/CN=Alan Analyst", PDP: "gk", Effect: "permit", Elapsed: time.Millisecond},
		// Fractional-second shapes: trailing zeros trimmed, leading zeros
		// kept, and a non-UTC zone suffix.
		{Seq: 2, Time: when.Truncate(time.Second).Add(123 * time.Millisecond),
			Subject: "/O=Grid/CN=Kate", Action: "start", PDP: "p", Effect: "permit"},
		{Seq: 3, Time: when.Truncate(time.Second).Add(42 * time.Nanosecond),
			Subject: "/O=Grid/CN=Kate", Action: "start", PDP: "p", Effect: "permit"},
		{Seq: 4, Time: when.In(time.FixedZone("IST", 5*3600+1800)),
			Subject: "/O=Grid/CN=Kate", Action: "start", PDP: "p", Effect: "permit"},
		{Seq: 5, Time: time.Now(), Subject: "/O=Grid/CN=Kate", Action: "start", PDP: "p", Effect: "permit"},
	}
	var enc recordEncoder
	for i, r := range cases {
		want, err := json.Marshal(&r)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := enc.appendRecord(nil, &r)
		if !ok {
			t.Fatalf("case %d: fast path refused a plain record", i)
		}
		if string(got) != string(want) {
			t.Fatalf("case %d:\nfast: %s\njson: %s", i, got, want)
		}
	}
	// Repeated timestamps exercise the cached rendering.
	var enc2 recordEncoder
	for i := 0; i < 3; i++ {
		r := cases[0]
		got, ok := enc2.appendRecord(nil, &r)
		want, _ := json.Marshal(&r)
		if !ok || string(got) != string(want) {
			t.Fatalf("cached-time pass %d diverged: %s", i, got)
		}
	}
}

// TestAppendRecordFallsBack pins the shapes that must take the
// encoding/json path: spans, strings needing escapes, non-ASCII, and
// out-of-range years.
func TestAppendRecordFallsBack(t *testing.T) {
	when := time.Date(2026, 8, 9, 13, 14, 15, 0, time.UTC)
	cases := []Record{
		{Time: when, Subject: "/O=Grid/CN=Kate", Action: "start", PDP: "p", Effect: "permit",
			Spans: []obs.Span{{PDP: "p", Effect: "permit"}}},
		{Time: when, Subject: "/O=Grid/CN=Quote\"", Action: "start", PDP: "p", Effect: "permit"},
		{Time: when, Subject: "/O=Grid/CN=Køte", Action: "start", PDP: "p", Effect: "permit"},
		{Time: when, Subject: "/O=Grid/CN=Kate", Action: "start", PDP: "p", Effect: "permit",
			Reason: "line\nbreak"},
		{Time: time.Date(10001, 1, 1, 0, 0, 0, 0, time.UTC), Subject: "/O=Grid/CN=Kate",
			Action: "start", PDP: "p", Effect: "permit"},
	}
	var enc recordEncoder
	for i, r := range cases {
		if out, ok := enc.appendRecord([]byte("keep"), &r); ok {
			t.Fatalf("case %d: fast path accepted a record needing the slow path", i)
		} else if string(out) != "keep" {
			t.Fatalf("case %d: refused encode mutated dst: %q", i, out)
		}
	}
}
