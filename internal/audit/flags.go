// The gatekeeper's audit flag surface, defined here so the daemon's
// flag registration, the pipeline defaults and the documented flag
// table (docs/AUDIT.md) share one source of truth — cmd/authlint's
// auditdoc check diffs the doc against FlagCatalog and fails CI when
// either side drifts.

package audit

import (
	"flag"
	"fmt"
	"strconv"
	"time"

	"gridauth/internal/obs"
)

// FlagDesc describes one gatekeeper audit flag for catalog comparison
// and documentation rendering. Name carries no leading dash.
type FlagDesc struct {
	Name    string
	Default string
	Help    string
}

// FlagCatalog returns the gatekeeper's audit flags, in registration
// order. docs/AUDIT.md's flag table is checked against this by
// cmd/authlint.
func FlagCatalog() []FlagDesc {
	return []FlagDesc{
		{"audit-dir", "", "write hash-chained audit segments and sealed manifests into this directory (empty: in-memory sink only)"},
		{"audit-key", "", "Ed25519 seal key file (hex seed), created if missing (empty: ephemeral per-process key)"},
		{"audit-capacity", strconv.Itoa(DefaultCapacity), "in-memory ring of recent records behind the query surface"},
		{"audit-queue", strconv.Itoa(DefaultQueue), "bounded pipeline queue capacity, in records"},
		{"audit-batch", strconv.Itoa(DefaultBatch), "maximum records per group commit"},
		{"audit-flush", DefaultFlushInterval.String(), "group-commit flush interval"},
		{"audit-segment", strconv.Itoa(DefaultSegmentRecords), "records per segment before rotation and sealing"},
		{"audit-mode", ModeBlock.String(), "queue-full degraded mode: block (backpressure, lossless) or drop (shed and count)"},
	}
}

// Flags holds the parsed values of the catalog's flags.
type Flags struct {
	Dir      string
	Key      string
	Capacity int
	Queue    int
	Batch    int
	Flush    time.Duration
	Segment  int
	Mode     string
}

// RegisterFlags defines the audit flags on fs, names, defaults and
// help text taken from FlagCatalog.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	cat := FlagCatalog()
	byName := make(map[string]FlagDesc, len(cat))
	for _, d := range cat {
		byName[d.Name] = d
	}
	str := func(name string, dst *string) {
		d := byName[name]
		fs.StringVar(dst, d.Name, d.Default, d.Help)
	}
	num := func(name string, dst *int) {
		d := byName[name]
		def, _ := strconv.Atoi(d.Default)
		fs.IntVar(dst, d.Name, def, d.Help)
	}
	str("audit-dir", &f.Dir)
	str("audit-key", &f.Key)
	num("audit-capacity", &f.Capacity)
	num("audit-queue", &f.Queue)
	num("audit-batch", &f.Batch)
	fs.DurationVar(&f.Flush, "audit-flush", DefaultFlushInterval, byName["audit-flush"].Help)
	num("audit-segment", &f.Segment)
	str("audit-mode", &f.Mode)
	return f
}

// Build constructs the pipeline Log the flags describe. The returned
// Log must be Closed on shutdown to seal the final segment. Metrics
// may be nil.
func (f *Flags) Build(m *obs.Metrics) (*Log, error) {
	mode, err := ParseDegradedMode(f.Mode)
	if err != nil {
		return nil, err
	}
	cfg := Config{
		Capacity:       f.Capacity,
		Queue:          f.Queue,
		Batch:          f.Batch,
		FlushInterval:  f.Flush,
		SegmentRecords: f.Segment,
		Mode:           mode,
		Metrics:        m,
	}
	if f.Dir != "" {
		sink, err := NewDirSink(f.Dir)
		if err != nil {
			return nil, err
		}
		cfg.Sink = sink
	}
	if f.Key != "" {
		sealer, err := LoadOrCreateSealer(f.Key)
		if err != nil {
			return nil, err
		}
		cfg.Sealer = sealer
	}
	log, err := NewPipeline(cfg)
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	return log, nil
}
