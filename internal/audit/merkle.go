// Merkle batching for the tamper-evident pipeline. Every group commit
// hashes its records into leaves and summarizes them as one Merkle
// root, so a sealed segment can later prove that a single record is
// included without rehashing the whole log — the proof is the
// logarithmic path of sibling hashes from the leaf to the batch root.
//
// Domain separation: leaf hashes, interior nodes and chain links use
// distinct one-byte prefixes (0x00, 0x01, 0x02), so a record's bytes
// can never be confused with an interior node (the classic
// second-preimage construction against naive Merkle trees).

package audit

import (
	"crypto/sha256"
	"encoding/hex"
)

type digest = [sha256.Size]byte

// leafHash hashes one committed JSONL line (without the trailing
// newline) into the tree's leaf domain. The pipeline's group commit
// does not call this — it renders the 0x00 prefix straight into its
// line buffer and hashes the slice in place — but the result is the
// same digest over the same bytes.
func leafHash(line []byte) digest {
	buf := make([]byte, 1+len(line))
	buf[0] = 0x00
	copy(buf[1:], line)
	return sha256.Sum256(buf)
}

// nodeHash combines two child digests into an interior node.
func nodeHash(left, right digest) digest {
	var buf [1 + 2*sha256.Size]byte
	buf[0] = 0x01
	copy(buf[1:], left[:])
	copy(buf[1+sha256.Size:], right[:])
	return sha256.Sum256(buf[:])
}

// chainHash links the running hash chain forward over one batch's
// Merkle root.
func chainHash(prev, leaf digest) digest {
	var buf [1 + 2*sha256.Size]byte
	buf[0] = 0x02
	copy(buf[1:], prev[:])
	copy(buf[1+sha256.Size:], leaf[:])
	return sha256.Sum256(buf[:])
}

// merkleRoot computes the root over the given leaves. An odd node at
// any level is promoted unchanged (no duplication), which keeps proofs
// minimal: a promoted node's proof simply has no step at that level.
// merkleRoot of a single leaf is the leaf itself; callers never pass an
// empty slice (a group commit is skipped when the batch is empty).
// The fold happens in place — leaves is consumed — so the per-commit
// hot path allocates nothing. (Writing level[n] is safe: n <= i and
// nodeHash takes its operands by value.)
func merkleRoot(leaves []digest) digest {
	level := leaves
	for len(level) > 1 {
		n := 0
		for i := 0; i+1 < len(level); i += 2 {
			level[n] = nodeHash(level[i], level[i+1])
			n++
		}
		if len(level)%2 == 1 {
			level[n] = level[len(level)-1]
			n++
		}
		level = level[:n]
	}
	return level[0]
}

// ProofStep is one level of a Merkle inclusion proof: the sibling
// digest to combine with, and which side it sits on.
type ProofStep struct {
	// Sibling is the hex-encoded sibling digest at this level.
	Sibling string `json:"sibling"`
	// Left reports whether the sibling is the left operand of the
	// combining hash.
	Left bool `json:"left"`
}

// merkleProof returns the inclusion proof for leaves[i]: the sibling
// path from the leaf up to (but excluding) the root.
func merkleProof(leaves []digest, i int) []ProofStep {
	var steps []ProofStep
	level := leaves
	idx := i
	for len(level) > 1 {
		if sib := idx ^ 1; sib < len(level) {
			steps = append(steps, ProofStep{
				Sibling: hex.EncodeToString(level[sib][:]),
				Left:    sib < idx,
			})
		}
		next := make([]digest, 0, (len(level)+1)/2)
		for j := 0; j+1 < len(level); j += 2 {
			next = append(next, nodeHash(level[j], level[j+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
		idx /= 2
	}
	return steps
}

// merkleVerify replays a proof from the leaf and returns the root it
// arrives at. Steps with malformed sibling hex fail closed by yielding
// a root that cannot match anything.
func merkleVerify(leaf digest, steps []ProofStep) digest {
	cur := leaf
	for _, s := range steps {
		raw, err := hex.DecodeString(s.Sibling)
		if err != nil || len(raw) != sha256.Size {
			return digest{}
		}
		var sib digest
		copy(sib[:], raw)
		if s.Left {
			cur = nodeHash(sib, cur)
		} else {
			cur = nodeHash(cur, sib)
		}
	}
	return cur
}
