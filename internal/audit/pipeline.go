// The asynchronous pipeline: a bounded queue feeding a single writer
// goroutine that group-commits records — hashing each into a leaf,
// Merkle-summarizing the batch, chaining the batch root onto the hash
// chain, appending the raw JSONL to the sink — and rotates + seals
// segments. Appending is what the enforcement
// points pay on the decision hot path; everything cryptographic happens
// on the writer, off that path. When the queue fills, the configured
// DegradedMode decides the failure semantics: ModeBlock applies
// backpressure (no decision proceeds unaudited — fail closed, the
// startup-PEP posture), ModeDrop sheds the record and counts it (the
// trail thins but the service answers — fail open). docs/AUDIT.md's
// degraded-mode matrix says which mode fits which enforcement point.

package audit

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gridauth/internal/obs"
)

// DegradedMode selects what Append does when the pipeline queue is
// full.
type DegradedMode int

const (
	// ModeBlock makes Append wait for queue space: auditing applies
	// backpressure and no record is lost.
	ModeBlock DegradedMode = iota
	// ModeDrop makes Append shed the record immediately, counting it in
	// QueueDropped and the audit_dropped_total metric.
	ModeDrop
)

// String renders the mode as its flag value.
func (m DegradedMode) String() string {
	if m == ModeDrop {
		return "drop"
	}
	return "block"
}

// ParseDegradedMode parses a -audit-mode flag value.
func ParseDegradedMode(s string) (DegradedMode, error) {
	switch s {
	case "block":
		return ModeBlock, nil
	case "drop":
		return ModeDrop, nil
	}
	return ModeBlock, fmt.Errorf("audit: unknown degraded mode %q (want block or drop)", s)
}

// Pipeline sizing defaults — shared by Config and the gatekeeper's
// flag catalog (FlagCatalog), so the documented defaults cannot drift
// from the effective ones.
const (
	DefaultCapacity       = 4096
	DefaultQueue          = 8192
	DefaultBatch          = 256
	DefaultFlushInterval  = 5 * time.Millisecond
	DefaultSegmentRecords = 65536
)

// Config parameterizes NewPipeline. The zero value of every field
// selects a production-reasonable default.
type Config struct {
	// Capacity bounds the in-memory recent-records ring behind the
	// query methods (default DefaultCapacity). Ring eviction does not
	// lose records: they are already committed to the sink.
	Capacity int
	// Queue bounds the append queue (default DefaultQueue).
	Queue int
	// Batch caps records per group commit (default DefaultBatch).
	Batch int
	// FlushInterval bounds how long a queued record waits for a commit
	// when traffic is light (default DefaultFlushInterval).
	FlushInterval time.Duration
	// SegmentRecords is the rotation threshold: the first group commit
	// that brings the open segment to this many records seals it
	// (default DefaultSegmentRecords). Segments may therefore exceed the
	// threshold by at most one batch.
	SegmentRecords int
	// Mode is the queue-full policy (default ModeBlock).
	Mode DegradedMode
	// Sink receives committed batches and sealed manifests (default: a
	// fresh MemSink).
	Sink Sink
	// Sealer signs segment manifests (default: a fresh ephemeral key).
	Sealer *Sealer
	// Metrics, when non-nil, feeds the audit_* series of the catalog
	// (docs/OBSERVABILITY.md): records/batches/segments counters, queue
	// depth, flush latency, dropped and blocked counts.
	Metrics *obs.Metrics
}

// NewPipeline starts the asynchronous tamper-evident writer and
// returns the Log fronting it. The caller owns the Log and must Close
// it to seal the final segment and release the sink.
func NewPipeline(cfg Config) (*Log, error) {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.Queue <= 0 {
		cfg.Queue = DefaultQueue
	}
	if cfg.Batch <= 0 {
		cfg.Batch = DefaultBatch
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = DefaultFlushInterval
	}
	if cfg.SegmentRecords <= 0 {
		cfg.SegmentRecords = DefaultSegmentRecords
	}
	if cfg.Sink == nil {
		cfg.Sink = NewMemSink()
	}
	if cfg.Sealer == nil {
		s, err := NewSealer()
		if err != nil {
			return nil, err
		}
		cfg.Sealer = s
	}
	l := &Log{records: make([]Record, cfg.Capacity)}
	l.nowFn.Store(time.Now)
	p := &pipeline{
		log:       l,
		cfg:       cfg,
		wake:      make(chan struct{}, 1),
		flushCh:   make(chan chan struct{}),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		chain:     genesisChain(),
		chainInit: genesisChain(),
	}
	p.notFull.L = &p.mu
	l.pipe = p
	go p.run()
	return l, nil
}

// pipeline is the writer side of an asynchronous Log.
//
// The queue is a swap buffer, the shape real group-commit writers use:
// appenders append to pending under mu (one short critical section per
// record), and the writer goroutine takes the whole slice in one swap
// per commit. Compared with a channel this removes a per-record
// select, a per-record copy, and most lock traffic — which is what
// lets a single writer core sustain the P11 throughput bar.
type pipeline struct {
	log     *Log
	cfg     Config
	mu      sync.Mutex
	notFull sync.Cond     // appenders in ModeBlock wait here when pending is full
	pending []Record      // append side; bounded by cfg.Queue
	spare   []Record      // writer-owned swap target, ping-ponged with pending
	wake    chan struct{} // cap 1: pending went non-empty or reached a full batch
	flushCh chan chan struct{}
	stop    chan struct{}
	done    chan struct{}

	closeOnce    sync.Once
	closed       atomic.Bool
	queueDropped atomic.Uint64
	sinkErr      atomic.Value // error

	// Writer-goroutine-only state below.
	seq         uint64
	segIndex    int
	segFirstSeq uint64
	segCount    int
	segBatches  []BatchInfo
	chain       digest
	chainInit   digest
	prevSeal    string

	// Per-commit scratch, reused so a steady-state group commit
	// allocates nothing: the rendered JSONL bytes, per-line end offsets
	// into buf, the line sub-slices handed to the sink, and the leaf
	// hashes.
	enc    recordEncoder
	buf    []byte
	ends   []int
	lines  [][]byte
	leaves []digest
}

// enqueue applies the degraded-mode policy on the append hot path.
func (p *pipeline) enqueue(r Record) {
	if p.closed.Load() {
		p.countDrop()
		return
	}
	p.mu.Lock()
	if len(p.pending) >= p.cfg.Queue {
		// Queue full: degrade per the configured mode.
		if p.cfg.Mode == ModeDrop {
			p.mu.Unlock()
			p.countDrop()
			return
		}
		if m := p.cfg.Metrics; m != nil {
			m.AuditBlocked.Inc()
		}
		for len(p.pending) >= p.cfg.Queue && !p.closed.Load() {
			p.notFull.Wait()
		}
	}
	if p.closed.Load() {
		// Shutdown raced the append; the record is lost and counted,
		// exactly like a post-Close append. (Close sets closed before the
		// writer's final drain, so everything appended while !closed under
		// mu is still committed.)
		p.mu.Unlock()
		p.countDrop()
		return
	}
	p.pending = append(p.pending, r)
	// Wake the writer when pending goes non-empty (it only sleeps after
	// observing it empty) and again when a full batch is ready (so a
	// sustained burst commits immediately instead of at the next tick).
	notify := len(p.pending) == 1 || len(p.pending) == p.cfg.Batch
	p.mu.Unlock()
	if notify {
		select {
		case p.wake <- struct{}{}:
		default:
		}
	}
}

func (p *pipeline) countDrop() {
	p.queueDropped.Add(1)
	if m := p.cfg.Metrics; m != nil {
		m.AuditDropped.Inc()
	}
}

// flush blocks until everything appended before the call is committed.
func (p *pipeline) flush() {
	ack := make(chan struct{})
	select {
	case p.flushCh <- ack:
		select {
		case <-ack:
		case <-p.done:
		}
	case <-p.done:
	}
}

// close drains, commits, seals the open segment and closes the sink.
func (p *pipeline) close() error {
	p.closeOnce.Do(func() {
		p.closed.Store(true)
		// Release appenders blocked on a full queue; they observe closed
		// and count their record as dropped.
		p.mu.Lock()
		p.notFull.Broadcast()
		p.mu.Unlock()
		close(p.stop)
		<-p.done
	})
	if err, ok := p.sinkErr.Load().(error); ok {
		return err
	}
	return nil
}

// run is the single writer goroutine.
func (p *pipeline) run() {
	defer close(p.done)
	ticker := time.NewTicker(p.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-p.wake:
			// Commit only once a full batch is pending; a partial batch
			// waits for the ticker, which bounds its latency to
			// FlushInterval — the group-commit contract.
			p.commitPending(false)
		case <-ticker.C:
			p.commitPending(true)
		case ack := <-p.flushCh:
			p.commitPending(true)
			close(ack)
		case <-p.stop:
			p.commitPending(true)
			p.sealSegment()
			if err := p.cfg.Sink.Close(); err != nil {
				p.noteErr(err)
			}
			return
		}
	}
}

// commitPending swaps out the pending records and commits them in
// batch-sized chunks, looping while full batches keep arriving. With
// force it also commits a trailing partial batch (tick, flush,
// shutdown) — but only what was pending on entry, so a flush cannot
// chase an active appender forever.
func (p *pipeline) commitPending(force bool) {
	for {
		p.mu.Lock()
		n := len(p.pending)
		if n == 0 || (!force && n < p.cfg.Batch) {
			if m := p.cfg.Metrics; m != nil {
				m.AuditQueueDepth.Set(int64(n))
			}
			p.mu.Unlock()
			return
		}
		batch := p.pending
		p.pending = p.spare[:0]
		p.notFull.Broadcast()
		p.mu.Unlock()
		for off := 0; off < len(batch); off += p.cfg.Batch {
			end := off + p.cfg.Batch
			if end > len(batch) {
				end = len(batch)
			}
			p.commit(batch[off:end])
		}
		p.spare = batch // keep the array for the next swap
		force = false
	}
}

// commit is the group commit: sequence, hash-chain and Merkle-summarize
// the batch, hand the raw lines to the sink, publish the records to the
// query ring, and rotate the segment at the threshold.
func (p *pipeline) commit(batch []Record) {
	if len(batch) == 0 {
		return
	}
	start := time.Now()
	info := BatchInfo{FirstSeq: p.seq}
	p.buf, p.ends = p.buf[:0], p.ends[:0]
	kept := 0 // records that rendered; a failure compacts the batch in place
	for i := range batch {
		r := &batch[i]
		r.Seq = p.seq
		from := len(p.buf)
		// Each record is rendered as [0x00][json][\n]: the 0x00 is the
		// leaf-hash domain prefix, placed inline so the leaf can be hashed
		// straight out of the buffer with no copy. The sink line skips it.
		p.buf = append(p.buf, 0x00)
		var ok bool
		if p.buf, ok = p.enc.appendRecord(p.buf, r); !ok {
			line, err := json.Marshal(r)
			if err != nil {
				// A record that cannot marshal (would need an exotic span
				// payload) is unrepresentable in the log; count it as
				// dropped rather than poisoning the batch. Its sequence
				// number is not consumed, keeping the committed sequence
				// contiguous.
				p.countDrop()
				p.buf = p.buf[:from]
				continue
			}
			p.buf = append(p.buf, line...)
		}
		p.buf = append(p.buf, '\n')
		p.ends = append(p.ends, len(p.buf))
		p.seq++
		if kept != i {
			batch[kept] = batch[i]
		}
		kept++
	}
	if len(p.ends) == 0 {
		return
	}
	// Hash and sub-slice only now that the whole batch is rendered:
	// p.buf can no longer reallocate, so the line slices stay valid.
	p.lines, p.leaves = p.lines[:0], p.leaves[:0]
	from := 0
	for _, end := range p.ends {
		p.lines = append(p.lines, p.buf[from+1:end])                  // json + newline
		p.leaves = append(p.leaves, sha256.Sum256(p.buf[from:end-1])) // 0x00 + json
		from = end
	}
	info.Count = len(p.lines)
	root := merkleRoot(p.leaves)
	info.Root = hex.EncodeToString(root[:])
	// The chain links batch roots, not individual records: every leaf is
	// already bound by its batch's Merkle root, so chaining the roots
	// carries the same tamper evidence at one hash per group commit
	// instead of one per record.
	p.chain = chainHash(p.chain, root)
	if err := p.cfg.Sink.WriteBatch(p.segIndex, p.lines); err != nil {
		p.noteErr(err)
	}
	p.segBatches = append(p.segBatches, info)
	p.segCount += len(p.lines)

	p.log.mu.Lock()
	for i := 0; i < kept; i++ {
		p.log.appendRing(batch[i])
	}
	p.log.mu.Unlock()

	if m := p.cfg.Metrics; m != nil {
		m.AuditRecords.Add(uint64(len(p.lines)))
		m.AuditBatches.Inc()
		m.AuditFlushSeconds.Observe(time.Since(start))
	}
	if p.segCount >= p.cfg.SegmentRecords {
		p.sealSegment()
	}
}

// sealSegment closes the open segment with a signed manifest and
// starts the next one. An empty open segment (rotation just happened,
// or the log never saw a record) is not sealed.
func (p *pipeline) sealSegment() {
	if p.segCount == 0 {
		return
	}
	roots := make([]digest, len(p.segBatches))
	for i, b := range p.segBatches {
		raw, _ := hex.DecodeString(b.Root)
		copy(roots[i][:], raw)
	}
	segRoot := merkleRoot(roots)
	m := &Manifest{
		Index:     p.segIndex,
		FirstSeq:  p.segFirstSeq,
		Count:     p.segCount,
		ChainInit: hex.EncodeToString(p.chainInit[:]),
		ChainHead: hex.EncodeToString(p.chain[:]),
		PrevSeal:  p.prevSeal,
		Batches:   p.segBatches,
		Root:      hex.EncodeToString(segRoot[:]),
	}
	if err := p.cfg.Sealer.seal(m); err != nil {
		p.noteErr(err)
	}
	if err := p.cfg.Sink.SealSegment(m); err != nil {
		p.noteErr(err)
	}
	if mm := p.cfg.Metrics; mm != nil {
		mm.AuditSegmentsSealed.Inc()
	}
	p.prevSeal = m.Seal
	p.chainInit = p.chain
	p.segIndex++
	p.segFirstSeq = p.seq
	p.segCount = 0
	p.segBatches = nil
}

// noteErr retains the first sink/seal error for Close to surface.
func (p *pipeline) noteErr(err error) {
	if _, ok := p.sinkErr.Load().(error); !ok {
		p.sinkErr.Store(err)
	}
}
