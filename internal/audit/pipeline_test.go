package audit

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gridauth/internal/core"
	"gridauth/internal/obs"
)

// gatedSink stalls WriteBatch until the gate closes, simulating a slow
// or wedged storage backend so the queue-full degraded modes can be
// exercised deterministically.
type gatedSink struct {
	mem  *MemSink
	gate chan struct{}
}

func newGatedSink() *gatedSink {
	return &gatedSink{mem: NewMemSink(), gate: make(chan struct{})}
}

func (g *gatedSink) WriteBatch(segIndex int, lines [][]byte) error {
	<-g.gate
	return g.mem.WriteBatch(segIndex, lines)
}
func (g *gatedSink) SealSegment(m *Manifest) error { return g.mem.SealSegment(m) }
func (g *gatedSink) Close() error                  { return g.mem.Close() }

// committed counts the records a MemSink holds across all segments.
func committed(m *MemSink) int {
	n := 0
	for i := 0; ; i++ {
		seg := m.Segment(i)
		if seg == nil {
			return n
		}
		n += bytes.Count(seg, []byte("\n"))
	}
}

func TestPipelineConcurrentAppendAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewDirSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	log, err := NewPipeline(Config{
		Sink:           sink,
		Batch:          4,
		FlushInterval:  time.Millisecond,
		SegmentRecords: 16, // force many rotations under load
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				log.Append(Record{
					Subject: "/O=Grid/CN=Kate",
					Action:  fmt.Sprintf("start-%d-%d", w, i),
					PDP:     "p",
					Effect:  core.Permit.String(),
				})
			}
		}(w)
	}
	wg.Wait()
	if err := log.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if n := log.QueueDropped(); n != 0 {
		t.Fatalf("queue dropped %d records with an unbounded-enough queue", n)
	}
	rep, err := VerifyDir(dir, nil)
	if err != nil {
		t.Fatalf("verify after concurrent rotation: %v", err)
	}
	if got := rep.Records + rep.Open; got != workers*perWorker {
		t.Fatalf("verified %d records (open %d), appended %d", got, rep.Open, workers*perWorker)
	}
	sealed := 0
	for _, s := range rep.Segments {
		if s.Sealed {
			sealed++
		}
	}
	if sealed < 2 {
		t.Fatalf("expected multiple sealed segments at threshold 16, got %d", sealed)
	}
}

func TestPipelineBlockModeIsLossless(t *testing.T) {
	sink := newGatedSink()
	m := obs.NewMetrics()
	log, err := NewPipeline(Config{
		Sink:          sink,
		Queue:         8,
		Batch:         4,
		FlushInterval: time.Millisecond,
		Mode:          ModeBlock,
		Metrics:       m,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Far more records than queue+batch can hold while the sink is
	// wedged: block mode must make the appenders wait, not shed.
	const total = 500
	var wg sync.WaitGroup
	for w := 0; w < 5; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/5; i++ {
				log.Append(Record{Action: "start", PDP: "p", Effect: "permit"})
			}
		}()
	}
	// Give the appenders time to saturate the queue against the wedged
	// sink, then open the gate.
	time.Sleep(20 * time.Millisecond)
	if m.AuditBlocked.Load() == 0 {
		t.Fatalf("no append ever blocked against a wedged sink and a full queue")
	}
	close(sink.gate)
	wg.Wait()
	if err := log.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if n := log.QueueDropped(); n != 0 {
		t.Fatalf("block mode dropped %d records", n)
	}
	if got := committed(sink.mem); got != total {
		t.Fatalf("sink holds %d records, appended %d", got, total)
	}
}

func TestPipelineDropModeShedsAndCounts(t *testing.T) {
	sink := newGatedSink()
	m := obs.NewMetrics()
	log, err := NewPipeline(Config{
		Sink:          sink,
		Queue:         8,
		Batch:         4,
		FlushInterval: time.Millisecond,
		Mode:          ModeDrop,
		Metrics:       m,
	})
	if err != nil {
		t.Fatal(err)
	}
	const total = 1000
	for i := 0; i < total; i++ { // never blocks: drop mode on the caller's goroutine
		log.Append(Record{Action: "start", PDP: "p", Effect: "permit"})
	}
	close(sink.gate)
	if err := log.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	dropped := log.QueueDropped()
	if dropped == 0 {
		t.Fatalf("a wedged sink and an 8-slot queue shed nothing out of %d appends", total)
	}
	if got := committed(sink.mem); uint64(got)+dropped != total {
		t.Fatalf("accounting hole: %d committed + %d dropped != %d appended", got, dropped, total)
	}
	if got := m.AuditDropped.Load(); got != dropped {
		t.Fatalf("audit_dropped_total = %d, QueueDropped = %d", got, dropped)
	}
}

func TestPipelineAppendAfterCloseCountsAsDrop(t *testing.T) {
	log, err := NewPipeline(Config{})
	if err != nil {
		t.Fatal(err)
	}
	log.Append(Record{Action: "start", PDP: "p", Effect: "permit"})
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	log.Append(Record{Action: "late", PDP: "p", Effect: "permit"})
	if n := log.QueueDropped(); n != 1 {
		t.Fatalf("post-Close append counted as %d drops, want 1", n)
	}
	if err := log.Close(); err != nil { // idempotent
		t.Fatalf("second close: %v", err)
	}
}

func TestSealedSegmentRoundTripsThroughReadJSONL(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewDirSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	log, err := NewPipeline(Config{Sink: sink, Batch: 4, SegmentRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		log.Append(Record{
			Subject: "/O=Grid/CN=Kate",
			Action:  fmt.Sprintf("action-%d", i),
			PDP:     "p",
			Effect:  core.Permit.String(),
			Reason:  "ok",
			Elapsed: time.Duration(i) * time.Microsecond,
		})
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "segment-000000.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadJSONL(f)
	if err != nil {
		t.Fatalf("read sealed segment: %v", err)
	}
	if len(recs) != n {
		t.Fatalf("round-tripped %d records, wrote %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d carries seq %d: pipeline sequence not ascending from 0", i, r.Seq)
		}
		if want := fmt.Sprintf("action-%d", i); r.Action != want {
			t.Fatalf("record %d action %q, want %q (order not preserved)", i, r.Action, want)
		}
		if r.Elapsed != time.Duration(i)*time.Microsecond {
			t.Fatalf("record %d elapsed %v did not round-trip", i, r.Elapsed)
		}
	}
}

func TestWrapMeasuresWithInjectedClock(t *testing.T) {
	log := NewLog(4)
	base := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	now := base
	log.SetClock(func() time.Time {
		t := now
		now = now.Add(250 * time.Microsecond) // each clock read advances
		return t
	})
	pdp := Wrap(permitPDP(), log)
	if d := pdp.Authorize(&core.Request{Subject: kate, Action: "start"}); d.Effect != core.Permit {
		t.Fatalf("decision: %v", d.Effect)
	}
	recs := log.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	if !recs[0].Time.Equal(base) {
		t.Fatalf("Record.Time = %v, want the injected clock's first reading %v", recs[0].Time, base)
	}
	// Two clock reads happen inside the wrapper (start, end); the
	// injected step makes the latency exactly one step.
	if recs[0].Elapsed != 250*time.Microsecond {
		t.Fatalf("Record.Elapsed = %v: Wrap is not using the log's injected clock", recs[0].Elapsed)
	}
}

func TestParseDegradedMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want DegradedMode
		ok   bool
	}{
		{"block", ModeBlock, true},
		{"drop", ModeDrop, true},
		{"panic", ModeBlock, false},
	} {
		got, err := ParseDegradedMode(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParseDegradedMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	if ModeBlock.String() != "block" || ModeDrop.String() != "drop" {
		t.Fatalf("mode String() does not round-trip the flag values")
	}
}
