// Segment layout and sealing for the tamper-evident pipeline.
//
// The on-disk unit is a segment: a JSONL file of committed records
// (segment-NNNNNN.jsonl) plus, once the segment rotates, a manifest
// (segment-NNNNNN.manifest.json) that seals it. The manifest carries
// the per-batch Merkle roots, the segment's own root over those, the
// hash-chain boundary values, a link to the previous segment's seal,
// and an Ed25519 signature over all of it. docs/AUDIT.md specifies the
// format field by field; cmd/auditverify re-derives everything from the
// raw bytes and checks it against the manifest.

package audit

import (
	"bufio"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// genesisChain is the hash-chain value before the first batch of the
// first segment: every log starts from the same publicly known seed.
// The chain links batch Merkle roots (each record is bound by its
// batch's root, so chaining roots carries per-record tamper evidence
// at one hash per group commit).
func genesisChain() digest {
	return sha256.Sum256([]byte("gridauth/audit chain genesis v1"))
}

// Sealer signs segment manifests with an Ed25519 key.
type Sealer struct {
	priv ed25519.PrivateKey
}

// NewSealer generates a fresh ephemeral sealing key.
func NewSealer() (*Sealer, error) {
	_, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("audit: generate seal key: %w", err)
	}
	return &Sealer{priv: priv}, nil
}

// NewSealerFromSeed builds a sealer from a 32-byte Ed25519 seed
// (deterministic; tests and key files use this).
func NewSealerFromSeed(seed []byte) (*Sealer, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("audit: seal seed must be %d bytes, got %d", ed25519.SeedSize, len(seed))
	}
	return &Sealer{priv: ed25519.NewKeyFromSeed(seed)}, nil
}

// LoadOrCreateSealer reads a hex-encoded Ed25519 seed from path,
// creating the file (mode 0600) with a fresh seed when it does not
// exist — the gatekeeper's -audit-key behaviour.
func LoadOrCreateSealer(path string) (*Sealer, error) {
	data, err := os.ReadFile(path)
	if err == nil {
		seed, err := hex.DecodeString(strings.TrimSpace(string(data)))
		if err != nil {
			return nil, fmt.Errorf("audit: seal key file %s: %w", path, err)
		}
		return NewSealerFromSeed(seed)
	}
	if !os.IsNotExist(err) {
		return nil, err
	}
	seed := make([]byte, ed25519.SeedSize)
	if _, err := rand.Read(seed); err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, []byte(hex.EncodeToString(seed)+"\n"), 0o600); err != nil {
		return nil, err
	}
	return NewSealerFromSeed(seed)
}

// Public returns the verifying key embedded into sealed manifests.
func (s *Sealer) Public() ed25519.PublicKey {
	return s.priv.Public().(ed25519.PublicKey)
}

// BatchInfo summarizes one group commit inside a segment.
type BatchInfo struct {
	// FirstSeq is the sequence number of the batch's first record.
	FirstSeq uint64 `json:"firstSeq"`
	// Count is the number of records the batch committed.
	Count int `json:"count"`
	// Root is the hex Merkle root over the batch's record leaf hashes.
	Root string `json:"root"`
}

// Manifest seals one rotated segment. All digests are hex SHA-256;
// PublicKey and Seal are hex Ed25519 values.
type Manifest struct {
	// Index is the segment's position (segment-NNNNNN file names).
	Index int `json:"index"`
	// FirstSeq and Count delimit the record sequence the segment holds.
	FirstSeq uint64 `json:"firstSeq"`
	Count    int    `json:"count"`
	// ChainInit is the hash-chain value before the segment's first
	// batch (the genesis constant for segment 0, the previous segment's
	// ChainHead otherwise); ChainHead is the value after its last batch
	// root was chained in.
	ChainInit string `json:"chainInit"`
	ChainHead string `json:"chainHead"`
	// PrevSeal is the previous segment's Seal, linking manifests into
	// their own chain; empty on segment 0.
	PrevSeal string `json:"prevSeal,omitempty"`
	// Batches lists the group commits, in order.
	Batches []BatchInfo `json:"batches"`
	// Root is the Merkle root over the batch roots.
	Root string `json:"root"`
	// PublicKey is the sealing key's Ed25519 public half.
	PublicKey string `json:"publicKey"`
	// Seal is the Ed25519 signature over the manifest with Seal itself
	// blanked (canonical JSON encoding).
	Seal string `json:"seal"`
}

// sealPayload is the byte string the seal signs: the manifest's
// canonical JSON with the Seal field empty.
func (m *Manifest) sealPayload() ([]byte, error) {
	unsealed := *m
	unsealed.Seal = ""
	return json.Marshal(&unsealed)
}

// seal signs the manifest and stamps the public key.
func (s *Sealer) seal(m *Manifest) error {
	m.PublicKey = hex.EncodeToString(s.Public())
	payload, err := m.sealPayload()
	if err != nil {
		return err
	}
	m.Seal = hex.EncodeToString(ed25519.Sign(s.priv, payload))
	return nil
}

// VerifySeal checks the manifest's signature. With a nil pub the
// manifest-embedded key is used (proves internal consistency); pinning
// a key additionally proves *who* sealed it.
func (m *Manifest) VerifySeal(pub ed25519.PublicKey) error {
	if pub == nil {
		raw, err := hex.DecodeString(m.PublicKey)
		if err != nil || len(raw) != ed25519.PublicKeySize {
			return fmt.Errorf("segment %d: malformed embedded public key", m.Index)
		}
		pub = ed25519.PublicKey(raw)
	} else if hex.EncodeToString(pub) != m.PublicKey {
		return fmt.Errorf("segment %d: sealed by %s, not the pinned key", m.Index, m.PublicKey)
	}
	sig, err := hex.DecodeString(m.Seal)
	if err != nil {
		return fmt.Errorf("segment %d: malformed seal: %v", m.Index, err)
	}
	payload, err := m.sealPayload()
	if err != nil {
		return err
	}
	if !ed25519.Verify(pub, payload, sig) {
		return fmt.Errorf("segment %d: seal signature does not verify", m.Index)
	}
	return nil
}

// segmentFile and manifestFile name a segment's on-disk pieces.
func segmentFile(index int) string  { return fmt.Sprintf("segment-%06d.jsonl", index) }
func manifestFile(index int) string { return fmt.Sprintf("segment-%06d.manifest.json", index) }

// Sink receives the pipeline's committed output. Implementations need
// not be concurrency-safe: the pipeline's single writer goroutine is
// the only caller.
type Sink interface {
	// WriteBatch appends one group commit's raw JSONL lines (newline
	// included) to the open segment. The line slices alias a buffer the
	// pipeline reuses: a sink that needs the bytes after returning must
	// copy them.
	WriteBatch(segIndex int, lines [][]byte) error
	// SealSegment completes the open segment with its manifest; the
	// next WriteBatch starts segment segIndex+1.
	SealSegment(m *Manifest) error
	// Close releases the sink. The pipeline seals the open segment
	// before closing.
	Close() error
}

// DirSink writes segments and manifests into a directory — the layout
// cmd/auditverify consumes.
type DirSink struct {
	dir string
	idx int
	f   *os.File
	w   *bufio.Writer
}

// NewDirSink creates (if needed) dir and returns a sink writing into
// it. The directory must not already contain segment files: the
// pipeline's sequence numbering restarts at zero, which would break the
// chain an existing log established.
func NewDirSink(dir string) (*DirSink, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	matches, err := filepath.Glob(filepath.Join(dir, "segment-*.jsonl"))
	if err != nil {
		return nil, err
	}
	if len(matches) > 0 {
		return nil, fmt.Errorf("audit: %s already holds %d segment file(s); a pipeline cannot extend a prior log", dir, len(matches))
	}
	return &DirSink{dir: dir, idx: -1}, nil
}

// Dir returns the sink's directory.
func (s *DirSink) Dir() string { return s.dir }

// WriteBatch implements Sink. Each group commit ends with one buffered
// flush to the OS — the group-commit amortization the pipeline exists
// for (durability against process crash; an OS crash can lose the tail,
// which the chain then reports as truncation, not tampering).
func (s *DirSink) WriteBatch(segIndex int, lines [][]byte) error {
	if s.f == nil || s.idx != segIndex {
		if s.f != nil {
			return fmt.Errorf("audit: batch for segment %d while segment %d is open", segIndex, s.idx)
		}
		f, err := os.OpenFile(filepath.Join(s.dir, segmentFile(segIndex)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o600)
		if err != nil {
			return err
		}
		s.f, s.w, s.idx = f, bufio.NewWriter(f), segIndex
	}
	for _, line := range lines {
		if _, err := s.w.Write(line); err != nil {
			return err
		}
	}
	return s.w.Flush()
}

// SealSegment implements Sink: it closes the segment file and writes
// the manifest atomically (temp file + rename), so a manifest is either
// absent or complete.
func (s *DirSink) SealSegment(m *Manifest) error {
	if s.f != nil && s.idx == m.Index {
		if err := s.w.Flush(); err != nil {
			return err
		}
		if err := s.f.Close(); err != nil {
			return err
		}
		s.f, s.w = nil, nil
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, manifestFile(m.Index)+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o600); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(s.dir, manifestFile(m.Index)))
}

// Close implements Sink.
func (s *DirSink) Close() error {
	if s.f == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	err := s.f.Close()
	s.f, s.w = nil, nil
	return err
}

// MemSink retains segments in memory — the sink benchmarks and
// in-memory deployments (no -audit-dir) use. Segment bytes and
// manifests are verifiable exactly like the directory layout. Each
// batch is kept as one exact-size blob (concatenated on read): the
// lines alias a pipeline-reused buffer and must be copied anyway, and
// a single right-sized allocation per commit avoids the repeated
// grow-and-move of appending into one ever-larger segment buffer.
type MemSink struct {
	mu        sync.Mutex
	segments  map[int][][]byte // per-batch blobs, in commit order
	manifests []*Manifest
}

// NewMemSink returns an empty in-memory sink.
func NewMemSink() *MemSink {
	return &MemSink{segments: make(map[int][][]byte)}
}

// WriteBatch implements Sink.
func (s *MemSink) WriteBatch(segIndex int, lines [][]byte) error {
	n := 0
	for _, line := range lines {
		n += len(line)
	}
	blob := make([]byte, 0, n)
	for _, line := range lines {
		blob = append(blob, line...)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.segments[segIndex] = append(s.segments[segIndex], blob)
	return nil
}

// SealSegment implements Sink.
func (s *MemSink) SealSegment(m *Manifest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.manifests = append(s.manifests, m)
	return nil
}

// Close implements Sink.
func (s *MemSink) Close() error { return nil }

// Segment returns the raw JSONL bytes of one retained segment, or nil
// when no batch has been written to it.
func (s *MemSink) Segment(index int) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	blobs, ok := s.segments[index]
	if !ok {
		return nil
	}
	n := 0
	for _, b := range blobs {
		n += len(b)
	}
	out := make([]byte, 0, n)
	for _, b := range blobs {
		out = append(out, b...)
	}
	return out
}

// Manifests returns the sealed manifests, in segment order.
func (s *MemSink) Manifests() []*Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Manifest(nil), s.manifests...)
}
