// Offline verification of a segment directory — the library behind
// cmd/auditverify. Everything is re-derived from the raw bytes: leaf
// hashes from the JSONL lines, the hash chain from genesis (or the
// previous segment's head), batch Merkle roots from the leaves, the
// segment root from the batch roots, and the seal signature from the
// manifest bytes. A single flipped bit anywhere in a sealed segment
// changes a leaf, which changes its batch root, the segment root, the
// chain head and the sealed payload — the verifier reports the first
// divergence it meets. docs/AUDIT.md walks through a worked tamper
// case.

package audit

import (
	"bytes"
	"crypto/ed25519"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// SegmentReport summarizes one verified segment.
type SegmentReport struct {
	Index   int
	Records int
	Batches int
	Sealed  bool // false only for a trailing open segment
}

// Report is the result of a successful VerifyDir.
type Report struct {
	Dir      string
	Segments []SegmentReport
	Records  int // total records across sealed segments
	Open     int // records in a trailing unsealed segment, if any
}

// readSegmentLines returns a segment file's JSONL lines, newline
// stripped.
func readSegmentLines(path string) ([][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var lines [][]byte
	for len(data) > 0 {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			return nil, fmt.Errorf("%s: truncated final line (no newline)", filepath.Base(path))
		}
		lines = append(lines, data[:i])
		data = data[i+1:]
	}
	return lines, nil
}

// loadManifest parses one manifest file.
func loadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %v", filepath.Base(path), err)
	}
	return &m, nil
}

// segmentIndexes lists the segment indexes present in dir, sorted.
func segmentIndexes(dir string) ([]int, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "segment-*.jsonl"))
	if err != nil {
		return nil, err
	}
	var idx []int
	for _, m := range matches {
		var i int
		if _, err := fmt.Sscanf(filepath.Base(m), "segment-%06d.jsonl", &i); err == nil {
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	return idx, nil
}

// verifySegment re-derives one sealed segment against its manifest.
// chainIn is the expected ChainInit; it returns the verified ChainHead.
func verifySegment(dir string, m *Manifest, chainIn digest, prevSeal string, pin ed25519.PublicKey) (digest, error) {
	fail := func(format string, args ...any) (digest, error) {
		return digest{}, fmt.Errorf("segment %d: %s", m.Index, fmt.Sprintf(format, args...))
	}
	if m.ChainInit != hex.EncodeToString(chainIn[:]) {
		return fail("chainInit %s does not continue the preceding chain head %s", m.ChainInit, hex.EncodeToString(chainIn[:]))
	}
	if m.PrevSeal != prevSeal {
		return fail("prevSeal does not match the preceding segment's seal")
	}
	if err := m.VerifySeal(pin); err != nil {
		return digest{}, err
	}
	lines, err := readSegmentLines(filepath.Join(dir, segmentFile(m.Index)))
	if err != nil {
		return digest{}, err
	}
	if len(lines) != m.Count {
		return fail("holds %d records but the manifest seals %d", len(lines), m.Count)
	}
	chain := chainIn
	leaves := make([]digest, len(lines))
	wantSeq := m.FirstSeq
	for i, line := range lines {
		var rec struct {
			Seq uint64 `json:"seq"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			return fail("record %d: %v", i, err)
		}
		if rec.Seq != wantSeq {
			return fail("record %d carries seq %d, want %d (reorder or splice)", i, rec.Seq, wantSeq)
		}
		wantSeq++
		leaves[i] = leafHash(line)
	}
	// Batch partition: contiguous, in order, covering every record.
	off := 0
	roots := make([]digest, len(m.Batches))
	for bi, b := range m.Batches {
		if b.FirstSeq != m.FirstSeq+uint64(off) {
			return fail("batch %d firstSeq %d does not continue the partition", bi, b.FirstSeq)
		}
		if b.Count <= 0 || off+b.Count > len(leaves) {
			return fail("batch %d count %d overruns the segment", bi, b.Count)
		}
		root := merkleRoot(leaves[off : off+b.Count])
		if hex.EncodeToString(root[:]) != b.Root {
			return fail("batch %d (seq %d..%d): recomputed Merkle root %s != manifest %s",
				bi, b.FirstSeq, b.FirstSeq+uint64(b.Count)-1, hex.EncodeToString(root[:]), b.Root)
		}
		roots[bi] = root
		chain = chainHash(chain, root)
		off += b.Count
	}
	if off != len(leaves) {
		return fail("batches cover %d of %d records", off, len(leaves))
	}
	segRoot := merkleRoot(roots)
	if hex.EncodeToString(segRoot[:]) != m.Root {
		return fail("recomputed segment root %s != manifest %s", hex.EncodeToString(segRoot[:]), m.Root)
	}
	if m.ChainHead != hex.EncodeToString(chain[:]) {
		return fail("recomputed chain head %s != manifest %s", hex.EncodeToString(chain[:]), m.ChainHead)
	}
	return chain, nil
}

// VerifyDir verifies every sealed segment in dir: hash-chain
// continuity from genesis, per-batch and per-segment Merkle roots,
// record sequence numbering, manifest-to-manifest seal links, and the
// Ed25519 seal of each manifest. A non-nil pin additionally requires
// every seal to be by that key. A trailing segment without a manifest
// (the pipeline is still running, or was killed before Close) is
// reported as open, not an error; a missing manifest anywhere else is
// an error.
func VerifyDir(dir string, pin ed25519.PublicKey) (*Report, error) {
	idxs, err := segmentIndexes(dir)
	if err != nil {
		return nil, err
	}
	if len(idxs) == 0 {
		return nil, fmt.Errorf("%s: no segment files", dir)
	}
	rep := &Report{Dir: dir}
	chain := genesisChain()
	prevSeal := ""
	for pos, idx := range idxs {
		if idx != pos {
			return nil, fmt.Errorf("%s: segment %d missing (found index %d)", dir, pos, idx)
		}
		mPath := filepath.Join(dir, manifestFile(idx))
		if _, err := os.Stat(mPath); os.IsNotExist(err) {
			if pos != len(idxs)-1 {
				return nil, fmt.Errorf("segment %d: manifest missing but later segments exist", idx)
			}
			lines, err := readSegmentLines(filepath.Join(dir, segmentFile(idx)))
			if err != nil {
				return nil, err
			}
			rep.Open = len(lines)
			rep.Segments = append(rep.Segments, SegmentReport{Index: idx, Records: len(lines)})
			return rep, nil
		}
		m, err := loadManifest(mPath)
		if err != nil {
			return nil, err
		}
		if m.Index != idx {
			return nil, fmt.Errorf("segment %d: manifest claims index %d", idx, m.Index)
		}
		chain, err = verifySegment(dir, m, chain, prevSeal, pin)
		if err != nil {
			return nil, err
		}
		prevSeal = m.Seal
		rep.Records += m.Count
		rep.Segments = append(rep.Segments, SegmentReport{Index: idx, Records: m.Count, Batches: len(m.Batches), Sealed: true})
	}
	return rep, nil
}

// InclusionProof proves that the record with a given sequence number is
// included in a sealed, verified segment: the Merkle path from the
// record's leaf to its batch root, plus the path from the batch root to
// the sealed segment root.
type InclusionProof struct {
	Seq        uint64      `json:"seq"`
	Segment    int         `json:"segment"`
	Record     string      `json:"record"` // the raw JSONL line
	LeafSteps  []ProofStep `json:"leafSteps"`
	BatchRoot  string      `json:"batchRoot"`
	BatchSteps []ProofStep `json:"batchSteps"`
	Root       string      `json:"root"` // the sealed segment root
}

// ProveInclusion builds and checks an inclusion proof for seq. The
// segment holding seq must be sealed; the manifest's seal is verified
// (against pin when non-nil) so the proof anchors in a signature, not
// just in local bytes.
func ProveInclusion(dir string, seq uint64, pin ed25519.PublicKey) (*InclusionProof, error) {
	idxs, err := segmentIndexes(dir)
	if err != nil {
		return nil, err
	}
	for _, idx := range idxs {
		mPath := filepath.Join(dir, manifestFile(idx))
		if _, err := os.Stat(mPath); os.IsNotExist(err) {
			continue
		}
		m, err := loadManifest(mPath)
		if err != nil {
			return nil, err
		}
		if seq < m.FirstSeq || seq >= m.FirstSeq+uint64(m.Count) {
			continue
		}
		if err := m.VerifySeal(pin); err != nil {
			return nil, err
		}
		lines, err := readSegmentLines(filepath.Join(dir, segmentFile(idx)))
		if err != nil {
			return nil, err
		}
		if len(lines) != m.Count {
			return nil, fmt.Errorf("segment %d: holds %d records but the manifest seals %d", idx, len(lines), m.Count)
		}
		// Locate the batch holding seq.
		bi := -1
		for i, b := range m.Batches {
			if seq >= b.FirstSeq && seq < b.FirstSeq+uint64(b.Count) {
				bi = i
				break
			}
		}
		if bi < 0 {
			return nil, fmt.Errorf("segment %d: no batch covers seq %d", idx, seq)
		}
		b := m.Batches[bi]
		first := int(b.FirstSeq - m.FirstSeq)
		leaves := make([]digest, b.Count)
		for i := 0; i < b.Count; i++ {
			leaves[i] = leafHash(lines[first+i])
		}
		li := int(seq - b.FirstSeq)
		leafSteps := merkleProof(leaves, li)
		if got := merkleVerify(leaves[li], leafSteps); hex.EncodeToString(got[:]) != b.Root {
			return nil, fmt.Errorf("seq %d: leaf path arrives at %s, batch root is %s (record or batch tampered)",
				seq, hex.EncodeToString(got[:]), b.Root)
		}
		roots := make([]digest, len(m.Batches))
		for i, bb := range m.Batches {
			raw, err := hex.DecodeString(bb.Root)
			if err != nil || len(raw) != len(roots[i]) {
				return nil, fmt.Errorf("segment %d: malformed batch root %d", idx, i)
			}
			copy(roots[i][:], raw)
		}
		batchSteps := merkleProof(roots, bi)
		if got := merkleVerify(roots[bi], batchSteps); hex.EncodeToString(got[:]) != m.Root {
			return nil, fmt.Errorf("seq %d: batch path arrives at %s, sealed root is %s", seq, hex.EncodeToString(got[:]), m.Root)
		}
		return &InclusionProof{
			Seq:        seq,
			Segment:    idx,
			Record:     string(lines[seq-m.FirstSeq]),
			LeafSteps:  leafSteps,
			BatchRoot:  b.Root,
			BatchSteps: batchSteps,
			Root:       m.Root,
		}, nil
	}
	return nil, fmt.Errorf("no sealed segment holds seq %d", seq)
}
