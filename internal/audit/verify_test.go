package audit

import (
	"bytes"
	"crypto/ed25519"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// sealedDir writes a fresh multi-segment sealed log into a temp
// directory and returns it with the sealing key's public half.
func sealedDir(t *testing.T, records int) (string, ed25519.PublicKey) {
	t.Helper()
	dir := t.TempDir()
	sink, err := NewDirSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	seed := bytes.Repeat([]byte{0x42}, ed25519.SeedSize)
	sealer, err := NewSealerFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	log, err := NewPipeline(Config{
		Sink:           sink,
		Sealer:         sealer,
		Batch:          4,
		SegmentRecords: 10, // several rotations for a few dozen records
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < records; i++ {
		log.Append(Record{
			Subject: "/O=Grid/CN=Kate",
			Action:  fmt.Sprintf("start-%d", i),
			PDP:     "p",
			Effect:  "permit",
			Reason:  "ok",
			Elapsed: time.Duration(i) * time.Microsecond,
		})
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, sealer.Public()
}

func TestVerifyDirAcceptsIntactLog(t *testing.T) {
	dir, pub := sealedDir(t, 35)
	rep, err := VerifyDir(dir, nil)
	if err != nil {
		t.Fatalf("intact log rejected: %v", err)
	}
	if rep.Records+rep.Open != 35 {
		t.Fatalf("verified %d+%d records, wrote 35", rep.Records, rep.Open)
	}
	sealed := 0
	for _, s := range rep.Segments {
		if s.Sealed {
			sealed++
		}
	}
	if sealed < 3 {
		t.Fatalf("35 records at threshold 10 sealed only %d segment(s)", sealed)
	}
	// Pinning the real key passes; pinning any other key fails.
	if _, err := VerifyDir(dir, pub); err != nil {
		t.Fatalf("pinned verification rejected the sealing key: %v", err)
	}
	other := ed25519.NewKeyFromSeed(bytes.Repeat([]byte{0x7}, ed25519.SeedSize)).Public().(ed25519.PublicKey)
	if _, err := VerifyDir(dir, other); err == nil {
		t.Fatal("a foreign pinned key verified the seals")
	}
}

func TestVerifyDirDetectsFlippedByte(t *testing.T) {
	dir, _ := sealedDir(t, 35)
	path := filepath.Join(dir, segmentFile(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one letter inside a record's subject — the JSON stays valid,
	// only the content lies.
	tampered := bytes.Replace(data, []byte("CN=Kate"), []byte("CN=Kurt"), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("test subject not found in segment")
	}
	if err := os.WriteFile(path, tampered, 0o600); err != nil {
		t.Fatal(err)
	}
	_, err = VerifyDir(dir, nil)
	if err == nil {
		t.Fatal("a flipped byte in a sealed segment verified clean")
	}
	if !strings.Contains(err.Error(), "segment 1") {
		t.Fatalf("tamper not localized to segment 1: %v", err)
	}
}

func TestVerifyDirDetectsRemovedRecord(t *testing.T) {
	dir, _ := sealedDir(t, 35)
	path := filepath.Join(dir, segmentFile(0))
	lines, err := readSegmentLines(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for i, line := range lines {
		if i == 3 { // excise one record
			continue
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDir(dir, nil); err == nil {
		t.Fatal("a spliced-out record verified clean")
	}
}

func TestVerifyDirDetectsManifestTamper(t *testing.T) {
	dir, _ := sealedDir(t, 35)
	path := filepath.Join(dir, manifestFile(0))
	m, err := loadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite history: claim the segment holds one record fewer. The
	// seal was computed over the honest manifest, so the signature check
	// must fail.
	m.Count--
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte(fmt.Sprintf("\"count\": %d", m.Count+1)), []byte(fmt.Sprintf("\"count\": %d", m.Count)), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("count field not found in manifest")
	}
	if err := os.WriteFile(path, tampered, 0o600); err != nil {
		t.Fatal(err)
	}
	_, err = VerifyDir(dir, nil)
	if err == nil {
		t.Fatal("an edited manifest verified clean")
	}
	if !strings.Contains(err.Error(), "seal") {
		t.Fatalf("manifest edit not caught by the seal check: %v", err)
	}
}

func TestVerifyDirTrailingOpenSegment(t *testing.T) {
	dir, _ := sealedDir(t, 35)
	idxs, err := segmentIndexes(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := idxs[len(idxs)-1]
	// Remove the last manifest: the pipeline might have been killed
	// before Close. The segment is reported open, not an error.
	if err := os.Remove(filepath.Join(dir, manifestFile(last))); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyDir(dir, nil)
	if err != nil {
		t.Fatalf("trailing open segment treated as tampering: %v", err)
	}
	if rep.Open == 0 {
		t.Fatal("open segment's records not reported")
	}
	// A missing manifest anywhere else is an error: segments cannot
	// silently lose their seal mid-log.
	if err := os.Remove(filepath.Join(dir, manifestFile(0))); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDir(dir, nil); err == nil {
		t.Fatal("mid-log missing manifest verified clean")
	}
}

func TestProveInclusionRoundTrip(t *testing.T) {
	dir, pub := sealedDir(t, 35)
	rep, err := VerifyDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(0); seq < uint64(rep.Records); seq++ {
		proof, err := ProveInclusion(dir, seq, pub)
		if err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		if proof.Seq != seq {
			t.Fatalf("proof addresses seq %d, asked for %d", proof.Seq, seq)
		}
		if want := fmt.Sprintf("\"action\":\"start-%d\"", seq); !strings.Contains(proof.Record, want) {
			t.Fatalf("seq %d: proof carries the wrong record: %s", seq, proof.Record)
		}
	}
	// Beyond the sealed range there is nothing to prove.
	if _, err := ProveInclusion(dir, uint64(rep.Records+rep.Open), pub); err == nil {
		t.Fatal("inclusion proven for a sequence number past the log")
	}
}

func TestProveInclusionDetectsTamperedRecord(t *testing.T) {
	dir, _ := sealedDir(t, 35)
	path := filepath.Join(dir, segmentFile(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte("start-2"), []byte("start-9"), 1)
	if err := os.WriteFile(path, tampered, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := ProveInclusion(dir, 2, nil); err == nil {
		t.Fatal("inclusion proven for a tampered record")
	}
}
