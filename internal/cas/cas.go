// Package cas implements a Community Authorization Service in the style
// of Pearlman et al. ("A Community Authorization Service for Group
// Collaboration", POLICY 2002), the second third-party system the paper
// reports integrating: "In order to show generality of our approach, we
// are also experimenting with the Community Authorization Service (CAS)."
//
// CAS inverts the trust arrangement of per-user policy files: the
// community (VO) runs a server that knows the community policy; a user
// asks CAS for a RESTRICTED CREDENTIAL that embeds exactly the rights the
// community grants them; the resource then only needs to trust the CAS
// signing identity and enforce the rights carried in the credential
// (combined, as always, with the resource owner's own policy). The
// paper's remark that "in a real system the VO policies would be carried
// in the VO credentials" is precisely this arrangement.
package cas

import (
	"fmt"
	"sync"
	"time"

	"gridauth/internal/core"
	"gridauth/internal/gsi"
	"gridauth/internal/policy"
)

// Server is the community authorization server.
type Server struct {
	community string
	cred      *gsi.Credential

	mu    sync.RWMutex
	pol   *policy.Policy
	ttl   time.Duration
	now   func() time.Time
	hooks []func()
}

// Option configures the server.
type Option func(*Server)

// WithTTL sets the lifetime of issued restricted credentials.
func WithTTL(ttl time.Duration) Option {
	return func(s *Server) { s.ttl = ttl }
}

// WithClock sets the server's time source.
func WithClock(now func() time.Time) Option {
	return func(s *Server) { s.now = now }
}

// NewServer creates a CAS for a community. cred is the CAS signing
// credential; pol is the community policy in the paper's language.
func NewServer(community string, cred *gsi.Credential, pol *policy.Policy, opts ...Option) *Server {
	s := &Server{
		community: community,
		cred:      cred,
		pol:       pol,
		ttl:       4 * time.Hour,
		now:       time.Now,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Community returns the community name.
func (s *Server) Community() string { return s.community }

// Certificate returns the CAS signing certificate resources must trust.
func (s *Server) Certificate() *gsi.Certificate { return s.cred.Leaf() }

// SetPolicy atomically replaces the community policy — CAS makes VO
// policy updates take effect at the next credential issuance, without
// touching any resource.
func (s *Server) SetPolicy(pol *policy.Policy) {
	s.mu.Lock()
	s.pol = pol
	hooks := append([]func(){}, s.hooks...)
	s.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// OnChange subscribes fn to community policy replacements. Note that
// resource-side PDP decisions depend only on the restricted credential
// a request PRESENTS (which a decision cache keys on), so CAS policy
// changes naturally take effect at the next issuance; the hook exists
// for deployments that also want already-issued-credential decisions
// re-evaluated promptly.
func (s *Server) OnChange(fn func()) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hooks = append(s.hooks, fn)
}

// Grant issues a restricted credential for a community member: an
// assertion embedding the subset of the community policy whose
// statements apply to the member. A member with no applicable statements
// receives an error rather than an empty (useless) credential.
func (s *Server) Grant(member gsi.DN) (*gsi.Assertion, error) {
	s.mu.RLock()
	pol := s.pol
	s.mu.RUnlock()

	stmts := pol.ApplicableTo(member)
	if len(stmts) == 0 {
		return nil, fmt.Errorf("cas: community %s grants no rights to %s", s.community, member)
	}
	sub := &policy.Policy{Source: "CAS:" + s.community, Statements: stmts}
	now := s.now()
	a := &gsi.Assertion{
		VO:        s.community,
		Holder:    member,
		Policy:    sub.Unparse(),
		NotBefore: now.Add(-time.Minute),
		NotAfter:  now.Add(s.ttl),
	}
	if err := gsi.SignAssertion(a, s.cred); err != nil {
		return nil, fmt.Errorf("sign restricted credential: %w", err)
	}
	return a, nil
}

// PDP is the resource-side enforcement point for CAS credentials: it
// verifies that the request carries a restricted credential from the
// trusted CAS and evaluates the request against the policy EMBEDDED in
// that credential. The resource needs no per-user state.
type PDP struct {
	// Community is the community whose credentials are accepted.
	Community string
	// Cert is the trusted CAS signing certificate.
	Cert *gsi.Certificate
	// Now is the time source (nil means time.Now).
	Now func() time.Time
}

var _ core.PDP = (*PDP)(nil)

// Name implements core.PDP.
func (p *PDP) Name() string { return "cas:" + p.Community }

// Authorize implements core.PDP.
func (p *PDP) Authorize(req *core.Request) core.Decision {
	now := time.Now
	if p.Now != nil {
		now = p.Now
	}
	var cred *gsi.Assertion
	for _, a := range req.Assertions {
		if a.VO != p.Community || a.Policy == "" {
			continue
		}
		if err := gsi.VerifyAssertion(a, p.Cert, req.Subject, now()); err != nil {
			return core.DenyDecision(p.Name(), fmt.Sprintf("restricted credential rejected: %v", err))
		}
		cred = a
		break
	}
	if cred == nil {
		return core.DenyDecision(p.Name(), fmt.Sprintf("no %s restricted credential presented", p.Community))
	}
	embedded, err := policy.ParseString(cred.Policy, "CAS:"+p.Community)
	if err != nil {
		return core.ErrorDecision(p.Name(), fmt.Sprintf("embedded policy unparseable: %v", err))
	}
	d := embedded.Evaluate(&policy.Request{
		Subject:  req.Subject,
		Action:   req.Action,
		JobOwner: req.JobOwner,
		Spec:     req.Spec,
	})
	if d.Allowed {
		return core.PermitDecision(p.Name(), d.Reason)
	}
	return core.DenyDecision(p.Name(), d.Reason)
}

// RegisterDriver installs the "cas-enforcement" callout driver; the
// server's certificate is captured at registration time. Params:
// community=<name> (defaults to the server's community).
func RegisterDriver(r *core.Registry, server *Server) {
	r.RegisterDriver("cas-enforcement", func(params map[string]string) (core.PDP, error) {
		community := params["community"]
		if community == "" {
			community = server.Community()
		}
		return &PDP{Community: community, Cert: server.Certificate()}, nil
	})
}
