package cas

import (
	"strings"
	"testing"
	"time"

	"gridauth/internal/core"
	"gridauth/internal/gsi"
	"gridauth/internal/policy"
	"gridauth/internal/rsl"
)

const (
	bo   = gsi.DN("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu")
	kate = gsi.DN("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey")
	out  = gsi.DN("/O=Elsewhere/CN=Outsider")
)

const communityPolicy = `
/O=Grid/O=Globus/OU=mcs.anl.gov: &(action = start)(jobtag != NULL)
/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu: &(action = start)(executable = test1)(jobtag = ADS)(count<4)
/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey: &(action = start)(executable = TRANSP)(jobtag = NFC) &(action=cancel)(jobtag=NFC)
`

func newServer(t *testing.T) *Server {
	t.Helper()
	ca, err := gsi.NewCA("/O=Grid/CN=Test CA")
	if err != nil {
		t.Fatal(err)
	}
	cred, err := ca.Issue("/O=Grid/CN=NFC CAS", gsi.KindService)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := policy.ParseString(communityPolicy, "VO:NFC")
	if err != nil {
		t.Fatal(err)
	}
	return NewServer("NFC", cred, pol)
}

func spec(t *testing.T, in string) *rsl.Spec {
	t.Helper()
	s, err := rsl.ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGrantEmbedsOnlyApplicableStatements(t *testing.T) {
	s := newServer(t)
	a, err := s.Grant(bo)
	if err != nil {
		t.Fatal(err)
	}
	if a.Holder != bo || a.VO != "NFC" {
		t.Errorf("assertion header wrong: %+v", a)
	}
	if !strings.Contains(a.Policy, "test1") {
		t.Errorf("bo's rights missing from embedded policy:\n%s", a.Policy)
	}
	if strings.Contains(a.Policy, "TRANSP") {
		t.Errorf("kate's rights leaked into bo's credential:\n%s", a.Policy)
	}
	// The group requirement travels with every member's credential.
	if !strings.Contains(a.Policy, "jobtag!=NULL") {
		t.Errorf("group requirement missing:\n%s", a.Policy)
	}
	if _, err := s.Grant(out); err == nil {
		t.Errorf("outsider received a credential")
	}
}

func TestPDPEnforcesEmbeddedPolicy(t *testing.T) {
	s := newServer(t)
	cred, err := s.Grant(bo)
	if err != nil {
		t.Fatal(err)
	}
	pdp := &PDP{Community: "NFC", Cert: s.Certificate()}

	ok := &core.Request{
		Subject: bo, Action: policy.ActionStart,
		Spec:       spec(t, `&(executable=test1)(jobtag=ADS)(count=2)`),
		Assertions: []*gsi.Assertion{cred},
	}
	if d := pdp.Authorize(ok); d.Effect != core.Permit {
		t.Errorf("conforming request denied: %s", d.Reason)
	}
	over := &core.Request{
		Subject: bo, Action: policy.ActionStart,
		Spec:       spec(t, `&(executable=test1)(jobtag=ADS)(count=16)`),
		Assertions: []*gsi.Assertion{cred},
	}
	if d := pdp.Authorize(over); d.Effect != core.Deny {
		t.Errorf("over-limit request permitted")
	}
	bare := &core.Request{Subject: bo, Action: policy.ActionStart, Spec: ok.Spec}
	if d := pdp.Authorize(bare); d.Effect != core.Deny {
		t.Errorf("request without credential permitted")
	}
}

func TestPDPRejectsStolenCredential(t *testing.T) {
	s := newServer(t)
	cred, err := s.Grant(kate)
	if err != nil {
		t.Fatal(err)
	}
	pdp := &PDP{Community: "NFC", Cert: s.Certificate()}
	req := &core.Request{
		Subject: bo, Action: policy.ActionStart,
		Spec:       spec(t, `&(executable=TRANSP)(jobtag=NFC)`),
		Assertions: []*gsi.Assertion{cred}, // kate's credential, bo's request
	}
	if d := pdp.Authorize(req); d.Effect != core.Deny {
		t.Errorf("stolen credential honored")
	}
}

func TestPDPRejectsExpiredCredential(t *testing.T) {
	ca, err := gsi.NewCA("/O=Grid/CN=Test CA")
	if err != nil {
		t.Fatal(err)
	}
	cred, err := ca.Issue("/O=Grid/CN=NFC CAS", gsi.KindService)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := policy.ParseString(communityPolicy, "VO:NFC")
	if err != nil {
		t.Fatal(err)
	}
	past := time.Now().Add(-10 * time.Hour)
	s := NewServer("NFC", cred, pol, WithTTL(time.Hour), WithClock(func() time.Time { return past }))
	stale, err := s.Grant(bo)
	if err != nil {
		t.Fatal(err)
	}
	pdp := &PDP{Community: "NFC", Cert: s.Certificate()}
	req := &core.Request{
		Subject: bo, Action: policy.ActionStart,
		Spec:       spec(t, `&(executable=test1)(jobtag=ADS)(count=1)`),
		Assertions: []*gsi.Assertion{stale},
	}
	if d := pdp.Authorize(req); d.Effect != core.Deny {
		t.Errorf("expired credential honored")
	}
}

func TestPolicyUpdateTakesEffectOnNextGrant(t *testing.T) {
	s := newServer(t)
	before, err := s.Grant(bo)
	if err != nil {
		t.Fatal(err)
	}
	newPol, err := policy.ParseString(`
/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu: &(action = start)(executable = test9)
`, "VO:NFC")
	if err != nil {
		t.Fatal(err)
	}
	s.SetPolicy(newPol)
	after, err := s.Grant(bo)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(after.Policy, "test1") || !strings.Contains(after.Policy, "test9") {
		t.Errorf("policy update not reflected:\n%s", after.Policy)
	}
	// Old (still unexpired) credentials retain the old rights — the CAS
	// revocation caveat.
	if !strings.Contains(before.Policy, "test1") {
		t.Errorf("earlier credential mutated")
	}
}

func TestRegisterDriver(t *testing.T) {
	s := newServer(t)
	reg := core.NewRegistry()
	RegisterDriver(reg, s)
	if err := reg.LoadConfigString(core.CalloutJobManager + " cas-enforcement"); err != nil {
		t.Fatal(err)
	}
	cred, err := s.Grant(bo)
	if err != nil {
		t.Fatal(err)
	}
	req := &core.Request{
		Subject: bo, Action: policy.ActionStart,
		Spec:       spec(t, `&(executable=test1)(jobtag=ADS)(count=1)`),
		Assertions: []*gsi.Assertion{cred},
	}
	if d := reg.Invoke(core.CalloutJobManager, req); d.Effect != core.Permit {
		t.Errorf("driver-configured CAS denied: %s", d.Reason)
	}
}
