// Package cluster federates multiple gatekeeper nodes fronting one
// resource into a single authorization domain (docs/CLUSTER.md).
//
// The paper's architecture places the fine-grain policy beside the
// resource; a production deployment runs SEVERAL gatekeeper processes
// for availability, and all of them must enforce the SAME policy at
// (bounded-staleness) the same version. This package supplies the three
// replication primitives that make that true:
//
//   - a Publisher on the leader/seed node that assigns a monotonically
//     increasing CLUSTER EPOCH to every policy or ticket-secret change
//     and pushes full-state snapshots to subscribed followers;
//   - a Follower per replica node that applies snapshots atomically
//     through policy.Store's lock-free snapshot swap (firing OnChange so
//     decision-cache invalidation crosses process boundaries) and
//     installs shared GSI ticket secrets into the node's SecretRing so
//     session resumption survives failover;
//   - a StalenessGuard PDP that lets a partitioned follower keep serving
//     stale-bounded decisions up to a configured staleness bound and
//     then FAIL CLOSED (an Error decision, which the PEP maps to the
//     degraded-mode codes of docs/ARCHITECTURE.md: fail-closed for job
//     startup, retryable for management).
//
// The wire protocol is deliberately minimal: newline-delimited JSON
// State messages over TCP, full state every time. Snapshots are
// idempotent — a follower ignores any state whose epoch is not newer
// than what it already applied — so redelivery, reconnection and
// heartbeats (which resend the current state as a liveness signal) need
// no special casing.
package cluster

import (
	"gridauth/internal/gsi"
	"gridauth/internal/policy/analyze"
)

// PolicyText is one administrative source's policy in transportable
// form: the text is re-parsed and re-compiled on each follower, so
// nodes never exchange compiled artifacts.
type PolicyText struct {
	Source string `json:"source"`
	Text   string `json:"text"`
}

// State is the full replicated state of the cluster at one epoch. The
// publisher always ships the complete state rather than deltas: at the
// sizes policies and secret rings reach, losing delta bookkeeping (and
// its resync bugs) is worth far more than the bytes.
type State struct {
	// Incarnation identifies the publisher instance that minted this
	// state. Epoch counters live in the publisher's memory, so a
	// RESTARTED publisher (the documented policy-rollout path) starts
	// minting from 1 again; the fresh random incarnation ID tells
	// followers that the old ordering no longer applies and they must
	// re-open their strictly-newer epoch gate. Without it, surviving
	// followers at a higher pre-restart epoch would silently discard the
	// new lineage forever while its heartbeats kept them "fresh".
	Incarnation string `json:"incarnation,omitempty"`
	// Epoch orders states within one incarnation: a follower applies a
	// state only if its epoch exceeds everything it has applied from the
	// same incarnation. Epoch 0 is the empty pre-seed state and is never
	// applied (but still refreshes liveness).
	Epoch uint64 `json:"epoch"`
	// Policies carries every administrative source's current policy.
	Policies []PolicyText `json:"policies,omitempty"`
	// Secrets is the live GSI ticket-secret set (current and
	// still-overlapping old versions), so any node can redeem any
	// node's resumption tickets.
	Secrets []gsi.SecretVersion `json:"secrets,omitempty"`
	// Findings is the leader's static analysis of the policy set this
	// state carries (docs/POLICY-ANALYSIS.md). It is stamped at publish
	// time so every node — and every operator inspecting any node —
	// sees the same diagnosis of the same epoch without re-running the
	// analyzer per replica.
	Findings []analyze.Finding `json:"findings,omitempty"`
}

// clone deep-copies a state so snapshots handed to subscribers are
// immune to later mutation under the publisher's lock.
func (s State) clone() State {
	out := State{Incarnation: s.Incarnation, Epoch: s.Epoch}
	if len(s.Policies) > 0 {
		out.Policies = append([]PolicyText(nil), s.Policies...)
	}
	if len(s.Findings) > 0 {
		out.Findings = append([]analyze.Finding(nil), s.Findings...)
	}
	for _, v := range s.Secrets {
		out.Secrets = append(out.Secrets, gsi.SecretVersion{
			ID:  v.ID,
			Key: append([]byte(nil), v.Key...),
		})
	}
	return out
}
