package cluster

import (
	"bufio"
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gridauth/internal/core"
	"gridauth/internal/gsi"
	"gridauth/internal/obs"
	"gridauth/internal/policy/analyze"
	"gridauth/internal/resilience"
	"gridauth/internal/rsl"
)

const voSource = "VO:NFC"

const permitKate = `
/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey: &(action = start)(jobtag = NFC)
`

const denyAll = `
`

// fastRetry keeps reconnect loops snappy in tests.
var fastRetry = resilience.Policy{Attempts: 3, BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond}

// startPublisher serves a publisher on a loopback listener.
func startPublisher(t *testing.T, cfg PublisherConfig) (*Publisher, string) {
	t.Helper()
	p := NewPublisher(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = p.Serve(l) }()
	t.Cleanup(p.Close)
	return p, l.Addr().String()
}

// runFollower starts a follower's sync loop under a cancellable ctx.
func runFollower(t *testing.T, f *Follower) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = f.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestReplicationReachesFollowerAndInvalidatesCaches(t *testing.T) {
	pub, addr := startPublisher(t, PublisherConfig{Heartbeat: 20 * time.Millisecond})

	m := obs.NewMetrics()
	f := NewFollower(FollowerConfig{
		Addr:    addr,
		Sources: []string{voSource},
		Retry:   fastRetry,
		Metrics: m,
	})

	// The node's wiring: the replicated store backs a PDP, and OnChange
	// crosses into cache invalidation — exactly like a local edit.
	store := f.Store(voSource)
	pdp := &core.StorePDP{Store: store}
	var invalidations int
	var invMu sync.Mutex
	store.OnChange(func() {
		invMu.Lock()
		invalidations++
		invMu.Unlock()
	})

	runFollower(t, f)

	spec, err := rsl.ParseSpec(`&(executable=TRANSP)(jobtag=NFC)`)
	if err != nil {
		t.Fatal(err)
	}
	req := &core.Request{
		Subject: "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey",
		Action:  "start",
		Spec:    spec,
	}

	// Before any publish the pre-seeded store is empty: abstain.
	if d := pdp.Authorize(req); d.Effect != core.NotApplicable {
		t.Fatalf("pre-sync effect = %v, want abstain", d.Effect)
	}

	epoch, err := pub.SetPolicy(voSource, permitKate)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "follower to apply the permit policy", func() bool {
		return f.Epoch() >= epoch
	})
	if d := pdp.Authorize(req); d.Effect != core.Permit {
		t.Fatalf("post-sync effect = %v, want permit", d.Effect)
	}
	invMu.Lock()
	if invalidations == 0 {
		t.Error("policy replication did not fire the store's OnChange hook")
	}
	invMu.Unlock()

	// Flip to deny and confirm the change is enforced.
	epoch2, err := pub.SetPolicy(voSource, denyAll)
	if err != nil {
		t.Fatal(err)
	}
	if epoch2 <= epoch {
		t.Fatalf("epoch did not increase: %d then %d", epoch, epoch2)
	}
	waitFor(t, "follower to apply the deny policy", func() bool {
		return f.Epoch() >= epoch2
	})
	if d := pdp.Authorize(req); d.Effect == core.Permit {
		t.Fatal("superseded permit still served after replication")
	}

	if got := m.ClusterEpoch.Load(); uint64(got) != epoch2 {
		t.Errorf("cluster_epoch = %d, want %d", got, epoch2)
	}
	if m.ClusterSnapshotsApplied.Load() < 2 {
		t.Errorf("cluster_snapshots_applied_total = %d, want >= 2", m.ClusterSnapshotsApplied.Load())
	}

	// A bad policy is refused at the leader, before it can reach anyone.
	if _, err := pub.SetPolicy(voSource, "/O=Grid: &(action"); err == nil {
		t.Error("publisher accepted an unparsable policy")
	}
}

func TestSecretReplicationEnablesCrossNodeRedeem(t *testing.T) {
	pub, addr := startPublisher(t, PublisherConfig{Heartbeat: 20 * time.Millisecond})

	leaderRing, err := gsi.NewSecretRing(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	followerRing := gsi.NewFollowerSecretRing(time.Minute)
	f := NewFollower(FollowerConfig{Addr: addr, Ring: followerRing, Retry: fastRetry})
	runFollower(t, f)

	cur, ok := leaderRing.Current()
	if !ok {
		t.Fatal("leader ring empty")
	}
	epoch := pub.ShareSecret(cur)
	waitFor(t, "secret to replicate", func() bool { return f.Epoch() >= epoch })

	got, ok := followerRing.Current()
	if !ok {
		t.Fatal("follower ring still empty after replication")
	}
	if got.ID != cur.ID || string(got.Key) != string(cur.Key) {
		t.Fatal("replicated secret differs from the leader's")
	}

	// Rotation: share the new version; the follower ring keeps the old
	// one redeemable for its overlap window (ring semantics, tested in
	// gsi) and adopts the new current.
	next, err := leaderRing.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	epoch = pub.ShareSecret(next)
	waitFor(t, "rotated secret to replicate", func() bool { return f.Epoch() >= epoch })
	if got, _ := followerRing.Current(); got.ID != next.ID {
		t.Fatalf("follower current secret = v%d, want v%d", got.ID, next.ID)
	}
}

func TestFollowerReconnectsAfterPublisherRestart(t *testing.T) {
	m := obs.NewMetrics()
	pub, addr := startPublisher(t, PublisherConfig{Heartbeat: 10 * time.Millisecond})
	if _, err := pub.SetPolicy(voSource, permitKate); err != nil {
		t.Fatal(err)
	}

	f := NewFollower(FollowerConfig{Addr: addr, Sources: []string{voSource}, Retry: fastRetry, Metrics: m})
	runFollower(t, f)
	if err := f.WaitReady(ctxWithTimeout(t)); err != nil {
		t.Fatal(err)
	}

	// Kill the publisher; the follower's stream breaks and sync
	// failures start counting.
	pub.Close()
	waitFor(t, "sync failures after publisher death", func() bool {
		return m.ClusterSyncFailures.Load() > 0
	})

	// Resurrect a publisher ON THE SAME ADDRESS with newer state (epoch
	// counters survive Close, as a restarted leader's would via its
	// policy files): the follower reconnects and catches up by itself.
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = pub2Serve(pub, l) }()
	epoch, err := pub.SetPolicy(voSource, denyAll)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "follower to catch up after restart", func() bool {
		return f.Epoch() >= epoch
	})
}

// pub2Serve re-serves a closed publisher's state on a fresh publisher —
// Close is terminal for the serving side, so a restarted leader is a
// NEW publisher seeded with the old state and a higher epoch.
func pub2Serve(old *Publisher, l net.Listener) error {
	p := NewPublisher(PublisherConfig{Heartbeat: 10 * time.Millisecond})
	st := old.State()
	p.mu.Lock()
	p.state = st.clone()
	p.mu.Unlock()
	// Mirror future changes made through the old handle (test
	// convenience: the test keeps calling old.SetPolicy).
	go func() {
		last := st.Epoch
		for {
			time.Sleep(2 * time.Millisecond)
			cur := old.State()
			if cur.Epoch > last {
				last = cur.Epoch
				p.mu.Lock()
				p.state = cur.clone()
				p.broadcastLocked()
				p.mu.Unlock()
			}
		}
	}()
	return p.Serve(l)
}

// TestRestartedPublisherNewIncarnationIsAdopted pins the recovery path
// the runbook documents: the epoch counter is in-memory on the admin
// host, so a restarted publisher mints 1..k again under a NEW
// incarnation. A surviving follower at a higher pre-restart epoch must
// adopt those states — silently discarding them would leave a
// revocation rolled out via restart unenforced forever while heartbeats
// kept the staleness guard happy.
func TestRestartedPublisherNewIncarnationIsAdopted(t *testing.T) {
	pub, addr := startPublisher(t, PublisherConfig{Heartbeat: 10 * time.Millisecond})
	// Drive the epoch well past anything the restarted publisher will
	// mint.
	for i := 0; i < 5; i++ {
		if _, err := pub.SetPolicy(voSource, permitKate); err != nil {
			t.Fatal(err)
		}
	}
	epoch, err := pub.SetPolicy(voSource, permitKate)
	if err != nil {
		t.Fatal(err)
	}

	f := NewFollower(FollowerConfig{Addr: addr, Sources: []string{voSource}, Retry: fastRetry})
	runFollower(t, f)
	waitFor(t, "follower to reach the pre-restart epoch", func() bool {
		return f.Epoch() >= epoch
	})

	// Restart: a brand-new publisher (fresh incarnation, epoch counter
	// back at 0) on the same address, publishing an edited policy — the
	// revocation case from the runbook.
	pub.Close()
	pub2 := NewPublisher(PublisherConfig{Heartbeat: 10 * time.Millisecond})
	epoch2, err := pub2.SetPolicy(voSource, denyAll)
	if err != nil {
		t.Fatal(err)
	}
	if epoch2 >= epoch {
		t.Fatalf("restarted publisher minted epoch %d, expected a restart below %d", epoch2, epoch)
	}
	var l2 net.Listener
	waitFor(t, "the publisher address to be rebindable", func() bool {
		l2, err = net.Listen("tcp", addr)
		return err == nil
	})
	go func() { _ = pub2.Serve(l2) }()
	t.Cleanup(pub2.Close)

	// The follower reconnects by itself and must apply the NEW lineage's
	// lower epoch, enforcing the revocation.
	store := f.Store(voSource)
	req := &core.Request{Subject: "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey", Action: "start"}
	waitFor(t, "the follower to enforce the restarted publisher's policy", func() bool {
		if f.Epoch() != epoch2 {
			return false
		}
		d := (&core.StorePDP{Store: store}).Authorize(req)
		return d.Effect != core.Permit
	})
}

// TestAuthenticatedReplication exercises the mutually authenticated
// channel: a service-credentialed follower syncs, while a
// user-credentialed dialer — trusted by the same CA — is refused before
// any state (and any ticket secret) is sent.
func TestAuthenticatedReplication(t *testing.T) {
	ca, err := gsi.NewCA("/O=Grid/CN=Cluster Test CA")
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore(ca.Certificate())
	pubCred, err := ca.Issue("/O=Grid/CN=cluster-publisher", gsi.KindService)
	if err != nil {
		t.Fatal(err)
	}
	nodeCred, err := ca.Issue("/O=Grid/CN=node-a", gsi.KindService)
	if err != nil {
		t.Fatal(err)
	}
	userCred, err := ca.Issue("/O=Grid/CN=Mallory", gsi.KindUser)
	if err != nil {
		t.Fatal(err)
	}

	m := obs.NewMetrics()
	pub, addr := startPublisher(t, PublisherConfig{
		Heartbeat: 10 * time.Millisecond,
		Metrics:   m,
		Auth:      gsi.NewAuthenticator(pubCred, trust),
	})
	leaderRing, err := gsi.NewSecretRing(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	cur, _ := leaderRing.Current()
	epoch := pub.ShareSecret(cur)

	// A properly credentialed follower (which also pins the publisher's
	// identity) replicates the secret.
	ring := gsi.NewFollowerSecretRing(time.Minute)
	f := NewFollower(FollowerConfig{
		Addr:              addr,
		Ring:              ring,
		Retry:             fastRetry,
		Auth:              gsi.NewAuthenticator(nodeCred, trust),
		PublisherIdentity: pubCred.Identity(),
	})
	runFollower(t, f)
	waitFor(t, "authenticated follower to sync", func() bool { return f.Epoch() >= epoch })
	if _, ok := ring.Current(); !ok {
		t.Fatal("authenticated follower did not receive the ticket secret")
	}

	// A trusted USER credential must not subscribe: the state carries
	// ticket-sealing secrets no user may hold.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, _, err := gsi.NewAuthenticator(userCred, trust).Handshake(conn); err == nil {
		// The handshake itself is mutual and succeeds; the refusal is the
		// publisher closing the stream without ever sending state.
		buf := make([]byte, 1)
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if n, err := conn.Read(buf); err == nil || n > 0 {
			t.Fatal("user-credentialed subscriber received cluster state")
		}
	}
	waitFor(t, "the refusal to be counted", func() bool {
		return m.ClusterAuthFailures.Load() >= 1
	})

	// A bare (no-handshake) dialer sees at most the handshake hello (the
	// publisher's public certificate chain and a nonce) — never a State,
	// so never the ticket secrets.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	rawr := bufio.NewReader(raw)
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if line, err := rawr.ReadString('\n'); err == nil && strings.Contains(line, `"secrets"`) {
		t.Fatal("publisher sent ticket secrets before authentication")
	}
	raw.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
	if _, err := rawr.ReadString('\n'); err == nil {
		t.Fatal("publisher kept streaming to an unauthenticated dialer")
	}

	// A follower pinned to the publisher's identity refuses a publisher
	// that authenticates as someone else (squatter with a stolen-but-
	// trusted service credential).
	rogueF := NewFollower(FollowerConfig{
		Addr:              addr,
		Retry:             fastRetry,
		Auth:              gsi.NewAuthenticator(nodeCred, trust),
		PublisherIdentity: "/O=Grid/CN=the-real-publisher",
	})
	runFollower(t, rogueF)
	time.Sleep(100 * time.Millisecond)
	if rogueF.Epoch() != 0 {
		t.Fatal("follower accepted state from a publisher with the wrong identity")
	}
}

// TestFollowerDivergenceGaugeTracksParseFailures pins the keep-last-good
// behavior's observability: a snapshot whose policy text fails to parse
// leaves that source on its previous policy, visibly counted in
// cluster_diverged_sources until a later epoch heals it.
func TestFollowerDivergenceGaugeTracksParseFailures(t *testing.T) {
	m := obs.NewMetrics()
	f := NewFollower(FollowerConfig{Sources: []string{voSource}, Metrics: m})

	f.apply(&State{Epoch: 1, Policies: []PolicyText{{Source: voSource, Text: permitKate}}})
	if m.ClusterDivergedSources.Load() != 0 {
		t.Fatalf("diverged sources = %d after a clean apply, want 0", m.ClusterDivergedSources.Load())
	}

	// Corrupt text (the publisher validates, so this models wire
	// corruption or version skew): the epoch advances, the store keeps
	// the last good policy, and the gauge flags the pinned source.
	f.apply(&State{Epoch: 2, Policies: []PolicyText{{Source: voSource, Text: "/O=Grid: &(action"}}})
	if f.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2 (keep-last-good still advances)", f.Epoch())
	}
	if m.ClusterDivergedSources.Load() != 1 {
		t.Fatalf("diverged sources = %d after a parse failure, want 1", m.ClusterDivergedSources.Load())
	}
	if m.ClusterSyncFailures.Load() == 0 {
		t.Error("parse failure not counted as a sync failure")
	}

	// The next epoch reverts to the last good text: the unchanged-skip
	// path must clear the divergence, not leave the flag stuck.
	f.apply(&State{Epoch: 3, Policies: []PolicyText{{Source: voSource, Text: permitKate}}})
	if m.ClusterDivergedSources.Load() != 0 {
		t.Fatalf("diverged sources = %d after healing, want 0", m.ClusterDivergedSources.Load())
	}
}

func ctxWithTimeout(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestStalenessGuardFailsClosedWhenPartitioned(t *testing.T) {
	pub, addr := startPublisher(t, PublisherConfig{Heartbeat: 10 * time.Millisecond})
	if _, err := pub.SetPolicy(voSource, permitKate); err != nil {
		t.Fatal(err)
	}

	// A virtual clock drives staleness so the test never sleeps past
	// real bounds: the follower stamps contacts with it and the guard
	// measures against it.
	var clockMu sync.Mutex
	base := time.Now()
	offset := time.Duration(0)
	now := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return base.Add(offset)
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		offset += d
		clockMu.Unlock()
	}

	m := obs.NewMetrics()
	f := NewFollower(FollowerConfig{
		Addr:    addr,
		Sources: []string{voSource},
		Retry:   fastRetry,
		Metrics: m,
		Now:     now,
	})
	guard := &StalenessGuard{Follower: f, MaxStaleness: 500 * time.Millisecond, Metrics: m}
	req := &core.Request{Subject: "/O=Grid/CN=anyone", Action: "start"}

	// Before the first sync the guard refuses outright: a node that has
	// never seen the cluster must not decide.
	if d := guard.Authorize(req); d.Effect != core.Error {
		t.Fatalf("never-synced effect = %v, want error", d.Effect)
	}
	if m.ClusterStaleRefusals.Load() != 1 {
		t.Fatalf("cluster_stale_refusals_total = %d, want 1", m.ClusterStaleRefusals.Load())
	}

	runFollower(t, f)
	if err := f.WaitReady(ctxWithTimeout(t)); err != nil {
		t.Fatal(err)
	}

	// Fresh replica: abstain, and the reason pins the epoch it decided
	// at (the epochuse discipline made observable).
	d := guard.Authorize(req)
	if d.Effect != core.NotApplicable {
		t.Fatalf("fresh effect = %v (%s), want abstain", d.Effect, d.Reason)
	}

	// Partition: kill the publisher, then advance the virtual clock
	// past the bound. Real heartbeats have stopped, so lastContact
	// freezes and staleness grows with the virtual clock.
	pub.Close()
	time.Sleep(30 * time.Millisecond) // let the last in-flight heartbeat land
	advance(time.Second)
	waitFor(t, "guard to trip", func() bool {
		return guard.Authorize(req).Effect == core.Error
	})
	if got := m.ClusterStaleRefusals.Load(); got < 2 {
		t.Errorf("cluster_stale_refusals_total = %d, want >= 2", got)
	}
}

func TestApplyIgnoresStaleAndDuplicateEpochs(t *testing.T) {
	f := NewFollower(FollowerConfig{Sources: []string{voSource}})
	store := f.Store(voSource)

	f.apply(&State{Epoch: 5, Policies: []PolicyText{{Source: voSource, Text: permitKate}}})
	if f.Epoch() != 5 {
		t.Fatalf("epoch = %d, want 5", f.Epoch())
	}
	_, _, storeEpoch := store.Snapshot()

	// A redelivered (same-epoch) and an older state must change nothing
	// — not even a store swap, which would needlessly invalidate
	// caches.
	f.apply(&State{Epoch: 5, Policies: []PolicyText{{Source: voSource, Text: denyAll}}})
	f.apply(&State{Epoch: 3, Policies: []PolicyText{{Source: voSource, Text: denyAll}}})
	if f.Epoch() != 5 {
		t.Fatalf("epoch moved to %d on stale state", f.Epoch())
	}
	if _, _, e := store.Snapshot(); e != storeEpoch {
		t.Fatal("stale state swapped the policy store")
	}

	// An unchanged policy text at a newer epoch advances the epoch but
	// does NOT re-swap the store (no gratuitous cache invalidation).
	f.apply(&State{Epoch: 6, Policies: []PolicyText{{Source: voSource, Text: permitKate}}})
	if f.Epoch() != 6 {
		t.Fatalf("epoch = %d, want 6", f.Epoch())
	}
	if _, _, e := store.Snapshot(); e != storeEpoch {
		t.Fatal("unchanged policy text re-swapped the store")
	}

	// A source never pre-declared materializes on first delivery.
	f.apply(&State{Epoch: 7, Policies: []PolicyText{{Source: "local", Text: permitKate}}})
	if pol, _, _ := f.Store("local").Snapshot(); pol == nil || len(pol.Statements) == 0 {
		t.Fatal("undeclared source not materialized")
	}
}

// The leader analyzes the full policy set on every publish: a
// community grant that a local (resource-owner) source always denies
// raises cluster_policy_findings on the leader, the finding travels in
// the replicated state to every follower, and a clean republish clears
// it everywhere.
func TestAnalysisFindingsReplicate(t *testing.T) {
	const siteSource = "site:local" // "local" selects the resource-owner partition

	const conflictVO = `
/O=Grid/O=Globus/OU=acme.org/CN=Dave: &(action = start)(jobtag = HPC)
`
	const siteBan = `
/O=Grid/O=Globus/OU=acme.org: &(action = start)(jobtag != HPC)
`
	const siteClean = `
/O=Grid/O=Globus/OU=acme.org: &(action = start)(count <= 64)
`

	pm := obs.NewMetrics()
	pub, addr := startPublisher(t, PublisherConfig{Heartbeat: 20 * time.Millisecond, Metrics: pm})

	fm := obs.NewMetrics()
	f := NewFollower(FollowerConfig{
		Addr:    addr,
		Sources: []string{voSource, siteSource},
		Retry:   fastRetry,
		Metrics: fm,
	})
	runFollower(t, f)

	if _, err := pub.SetPolicy(voSource, conflictVO); err != nil {
		t.Fatal(err)
	}
	if pm.ClusterPolicyFindings.Load() != 0 {
		t.Fatalf("findings before the local ban: %v", pub.Findings())
	}
	epoch, err := pub.SetPolicy(siteSource, siteBan)
	if err != nil {
		t.Fatal(err)
	}
	if got := pm.ClusterPolicyFindings.Load(); got != 1 {
		t.Fatalf("leader cluster_policy_findings = %d, want 1: %v", got, pub.Findings())
	}

	waitFor(t, "follower to apply the conflicting policy set", func() bool {
		return f.Epoch() >= epoch
	})
	finds := f.Findings()
	if len(finds) != 1 || finds[0].Class != "conflict" || finds[0].Source != voSource {
		t.Fatalf("follower findings = %+v, want one conflict against %s", finds, voSource)
	}
	if got := fm.ClusterPolicyFindings.Load(); got != 1 {
		t.Fatalf("follower cluster_policy_findings = %d, want 1", got)
	}

	// Republishing a compatible local policy clears the diagnosis on
	// both sides.
	epoch2, err := pub.SetPolicy(siteSource, siteClean)
	if err != nil {
		t.Fatal(err)
	}
	if got := pm.ClusterPolicyFindings.Load(); got != 0 {
		t.Fatalf("leader gauge not cleared: %d: %v", got, pub.Findings())
	}
	waitFor(t, "follower to apply the clean policy set", func() bool {
		return f.Epoch() >= epoch2
	})
	if finds := f.Findings(); len(finds) != 0 {
		t.Fatalf("follower findings not cleared: %+v", finds)
	}
	if got := fm.ClusterPolicyFindings.Load(); got != 0 {
		t.Fatalf("follower gauge not cleared: %d", got)
	}
}

// With FailOn set the publisher refuses a change whose analysis reaches
// the gate, leaving state, epoch and followers untouched.
func TestPublisherFailOnGate(t *testing.T) {
	pub := NewPublisher(PublisherConfig{FailOn: analyze.SeverityError})
	if _, err := pub.SetPolicy(voSource, permitKate); err != nil {
		t.Fatal(err)
	}
	before := pub.State()

	const selfGrant = `
/O=Grid/O=VO/CN=Admin: &(action = grant)(grantee = self)
`
	if _, err := pub.SetPolicy("VO:admin", selfGrant); err == nil {
		t.Fatal("gated publish succeeded")
	} else if !strings.Contains(err.Error(), "escalation") {
		t.Fatalf("gate error does not name the finding: %v", err)
	}
	after := pub.State()
	if after.Epoch != before.Epoch || len(after.Policies) != len(before.Policies) || len(after.Findings) != 0 {
		t.Fatalf("refused publish mutated state: %+v -> %+v", before, after)
	}
}
