package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gridauth/internal/gsi"
	"gridauth/internal/obs"
	"gridauth/internal/policy"
	"gridauth/internal/policy/analyze"
	"gridauth/internal/resilience"
)

// neverSynced is the staleness reported before the first publisher
// contact: effectively infinite, so a guard refuses until the node has
// seen the cluster at least once.
const neverSynced = time.Duration(math.MaxInt64)

// FollowerConfig wires a Follower into one gatekeeper node.
type FollowerConfig struct {
	// Addr is the publisher's address.
	Addr string
	// Sources pre-creates a (still empty) policy.Store per named
	// administrative source, so the node's PDP chain can bind them —
	// and subscribe their OnChange hooks — BEFORE the first snapshot
	// arrives. A source the publisher ships that was not pre-declared
	// still gets a store (see Store), but nothing is bound to it.
	Sources []string
	// Ring receives replicated ticket-secret versions; nil disables
	// secret replication on this node.
	Ring *gsi.SecretRing
	// Retry paces reconnection to the publisher; the zero value selects
	// the resilience defaults. The follower NEVER gives up while its
	// context lives: an exhausted retry budget just restarts the cycle.
	Retry resilience.Policy
	// Dial overrides the transport (tests inject partitions and
	// faultinject conns); nil selects net.Dialer.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Auth, when set, mutually authenticates every publisher connection
	// with the GSI handshake before any state is accepted: whatever
	// answers the dial must prove a service-kind credential the trust
	// store verifies, or a port squatter / MITM could inject policy and
	// ticket secrets. Without Auth the channel MUST be confined to the
	// trusted admin network (docs/CLUSTER.md).
	Auth *gsi.Authenticator
	// PublisherIdentity, when non-empty, additionally pins the verified
	// publisher identity — any other trusted service is refused. Only
	// meaningful with Auth set.
	PublisherIdentity gsi.DN
	// Metrics receives cluster_epoch, cluster_snapshots_applied_total,
	// cluster_sync_failures_total and cluster_diverged_sources. Nil
	// selects a private sink.
	Metrics *obs.Metrics
	// OnApply, when set, runs after each snapshot is fully applied
	// (policies swapped, secrets installed), with the cluster epoch it
	// carried.
	OnApply func(epoch uint64)
	// Now is the follower's clock (tests); nil selects time.Now.
	Now func() time.Time
}

// Follower is the replica side of cluster replication: it subscribes to
// the publisher, applies each newer-epoch state atomically, and tracks
// how stale its view is. Policy swaps go through policy.Store.Replace,
// so the node's decision caches are invalidated through the stores'
// OnChange hooks exactly as a local policy edit would — replication is
// invisible to the PDP chain.
type Follower struct {
	cfg     FollowerConfig
	metrics *obs.Metrics
	now     func() time.Time

	mu          sync.Mutex
	stores      map[string]*policy.Store
	lastText    map[string]string
	diverged    map[string]bool // sources pinned on last-good policy after a parse failure
	incarnation string          // publisher lineage the applied epoch belongs to
	findings    []analyze.Finding

	epoch       atomic.Uint64
	lastContact atomic.Int64 // UnixNano of the last received state; 0 = never

	readyOnce sync.Once
	ready     chan struct{}
}

// NewFollower creates a follower; call Run to start syncing.
func NewFollower(cfg FollowerConfig) *Follower {
	f := &Follower{
		cfg:      cfg,
		metrics:  cfg.Metrics,
		now:      cfg.Now,
		stores:   make(map[string]*policy.Store),
		lastText: make(map[string]string),
		diverged: make(map[string]bool),
		ready:    make(chan struct{}),
	}
	if f.metrics == nil {
		f.metrics = obs.NewMetrics()
	}
	if f.now == nil {
		f.now = time.Now
	}
	for _, source := range cfg.Sources {
		f.stores[source] = policy.NewStore(policy.MustParse("", source))
	}
	return f
}

// Store returns the policy store replicating the named source, creating
// an empty one on first use so callers can bind sources that appear
// later. The same name always returns the same store.
func (f *Follower) Store(source string) *policy.Store {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.stores[source]
	if !ok {
		st = policy.NewStore(policy.MustParse("", source))
		f.stores[source] = st
	}
	return st
}

// Epoch returns the last cluster epoch this node applied (0 before the
// first snapshot).
func (f *Follower) Epoch() uint64 {
	return f.epoch.Load()
}

// Findings returns the leader's static-analysis findings carried by the
// last applied state, so the policy diagnosis is inspectable on any
// replica without re-running the analyzer there.
func (f *Follower) Findings() []analyze.Finding {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]analyze.Finding(nil), f.findings...)
}

// Staleness reports how long ago the publisher was last heard from —
// heartbeats count, so a healthy idle cluster stays near the heartbeat
// interval. Before the first contact it is effectively infinite.
func (f *Follower) Staleness() time.Duration {
	last := f.lastContact.Load()
	if last == 0 {
		return neverSynced
	}
	d := f.now().Sub(time.Unix(0, last))
	if d < 0 {
		return 0
	}
	return d
}

// WaitReady blocks until the follower has applied its first snapshot
// (so policies and secrets are live) or ctx ends.
func (f *Follower) WaitReady(ctx context.Context) error {
	select {
	case <-f.ready:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Run syncs from the publisher until ctx ends, reconnecting with the
// configured retry pacing after every failure. It always returns ctx's
// error.
func (f *Follower) Run(ctx context.Context) error {
	dial := f.cfg.Dial
	if dial == nil {
		var d net.Dialer
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	for ctx.Err() == nil {
		// One Do cycle = up to Attempts tries with growing backoff; the
		// outer loop restarts the cycle forever. A successful stream
		// that later breaks re-enters as a fresh failure.
		_ = f.cfg.Retry.Do(ctx, func(int) (error, bool) {
			err := f.stream(ctx, dial)
			if err != nil && ctx.Err() == nil {
				f.metrics.ClusterSyncFailures.Inc()
			}
			return err, true
		})
	}
	return ctx.Err()
}

// stream runs one subscription: dial, authenticate (when configured),
// then decode and apply states until the connection breaks.
func (f *Follower) stream(ctx context.Context, dial func(context.Context, string) (net.Conn, error)) error {
	conn, err := dial(ctx, f.cfg.Addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	dec := json.NewDecoder(conn)
	if f.cfg.Auth != nil {
		peer, br, err := f.cfg.Auth.Handshake(conn)
		if err != nil {
			return err
		}
		if err := f.checkPublisher(peer); err != nil {
			return err
		}
		// The handshake's buffered reader may already hold the first
		// snapshot; all further reads must go through it.
		dec = json.NewDecoder(br)
	}
	for {
		var st State
		if err := dec.Decode(&st); err != nil {
			return err
		}
		f.apply(&st)
	}
}

// checkPublisher decides whether the authenticated peer at the far end
// of a replication stream is a publisher this node will accept state
// from.
func (f *Follower) checkPublisher(peer *gsi.Peer) error {
	if peer.Credential == nil || peer.Credential.Leaf().Kind != gsi.KindService {
		return fmt.Errorf("cluster: publisher %s did not present a service credential", peer.Identity)
	}
	if f.cfg.PublisherIdentity != "" && peer.Identity != f.cfg.PublisherIdentity {
		return fmt.Errorf("cluster: publisher identity %s, want %s", peer.Identity, f.cfg.PublisherIdentity)
	}
	return nil
}

// apply installs one received state. Any contact — heartbeat or change
// — resets the staleness clock; only a strictly newer epoch of the
// current publisher incarnation mutates policy and secrets, so
// redelivered or reordered states are no-ops. Secrets install before
// policies: a snapshot that both rotates the ticket secret and tightens
// policy must not leave a window where the new policy is enforced but
// freshly sealed tickets are unredeemable.
func (f *Follower) apply(st *State) {
	f.lastContact.Store(f.now().UnixNano())
	f.mu.Lock()
	if st.Incarnation != "" && st.Incarnation != f.incarnation {
		// A restarted publisher mints epochs from 1 again (the counter is
		// in-memory on the admin host), so its states must not lose the
		// strictly-newer comparison to the previous lineage — or a policy
		// rolled out through the documented restart path would be
		// silently ignored by every surviving follower while heartbeats
		// kept them reporting fresh. Resetting the applied epoch re-opens
		// the gate for the new incarnation; unchanged policy text is
		// still skipped below, so adopting a lineage does not churn
		// stores or caches.
		f.incarnation = st.Incarnation
		f.epoch.Store(0)
	}
	f.mu.Unlock()
	if st.Epoch == 0 || st.Epoch <= f.epoch.Load() {
		return
	}
	if f.cfg.Ring != nil {
		for _, v := range st.Secrets {
			f.cfg.Ring.Install(v)
		}
	}
	for _, pt := range st.Policies {
		f.mu.Lock()
		store, known := f.stores[pt.Source]
		unchanged := known && f.lastText[pt.Source] == pt.Text
		f.mu.Unlock()
		if unchanged {
			// The source is back on (or never left) its last good text —
			// e.g. a publisher reverted a snapshot this node could not
			// parse — so it no longer diverges.
			f.setDiverged(pt.Source, false)
			continue
		}
		pol, err := policy.ParseString(pt.Text, pt.Source)
		if err != nil {
			// The publisher validates before broadcasting, so this is
			// wire corruption or version skew: keep the last good
			// policy for this source rather than dropping to empty. The
			// epoch still advances below (heartbeats carry the same
			// state, so retrying it is pointless), which pins this
			// source on a stale policy until the next epoch —
			// cluster_diverged_sources makes that divergence visible so
			// operators can tell it from transient sync noise.
			f.metrics.ClusterSyncFailures.Inc()
			f.setDiverged(pt.Source, true)
			continue
		}
		if !known {
			store = f.Store(pt.Source)
		}
		store.Replace(pol)
		f.mu.Lock()
		f.lastText[pt.Source] = pt.Text
		f.mu.Unlock()
		f.setDiverged(pt.Source, false)
	}
	f.mu.Lock()
	f.findings = append(f.findings[:0:0], st.Findings...)
	f.mu.Unlock()
	f.metrics.ClusterPolicyFindings.Set(int64(len(st.Findings)))
	f.epoch.Store(st.Epoch)
	f.metrics.ClusterEpoch.Set(int64(st.Epoch))
	f.metrics.ClusterSnapshotsApplied.Inc()
	f.readyOnce.Do(func() { close(f.ready) })
	if f.cfg.OnApply != nil {
		f.cfg.OnApply(st.Epoch)
	}
}

// setDiverged tracks which sources are pinned on their last good policy
// after a snapshot parse failure and keeps the gauge in step.
func (f *Follower) setDiverged(source string, bad bool) {
	f.mu.Lock()
	if bad {
		f.diverged[source] = true
	} else if !f.diverged[source] {
		f.mu.Unlock()
		return
	} else {
		delete(f.diverged, source)
	}
	n := len(f.diverged)
	f.mu.Unlock()
	f.metrics.ClusterDivergedSources.Set(int64(n))
}
