package cluster

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"gridauth/internal/gsi"
	"gridauth/internal/obs"
	"gridauth/internal/policy"
	"gridauth/internal/policy/analyze"
)

// DefaultHeartbeat is how often the publisher resends the current state
// to each subscriber when nothing changes. Heartbeats are the
// followers' liveness signal: a follower's staleness clock resets on
// EVERY received state, so the staleness bound a deployment can enforce
// is floored by this interval (see StalenessGuard).
const DefaultHeartbeat = time.Second

// authTimeout bounds the subscriber handshake so a silent or stalled
// dialer cannot pin a publisher goroutine forever.
const authTimeout = 10 * time.Second

// PublisherConfig tunes a Publisher.
type PublisherConfig struct {
	// Heartbeat is the idle resend interval (0 selects
	// DefaultHeartbeat).
	Heartbeat time.Duration
	// Metrics receives cluster_snapshots_published_total and
	// cluster_auth_failures_total. Nil selects a private, unexported
	// sink.
	Metrics *obs.Metrics
	// Auth, when set, requires every subscriber to complete the mutual
	// GSI handshake before ANY state is sent. The replicated state
	// includes the ticket-sealing secrets — a key that lets its holder
	// mint resumption tickets for arbitrary identities — so without Auth
	// the listener MUST be confined to the trusted admin network (see
	// docs/CLUSTER.md). An authenticated subscriber must present a
	// service-kind credential: user and proxy credentials issued by the
	// same CA never receive cluster state.
	Auth *gsi.Authenticator
	// Allowed, when non-empty, further restricts authenticated
	// subscribers to these verified identities. Empty admits any
	// service identity the Auth trust store verifies.
	Allowed []gsi.DN
	// Analyze configures the leader-side static semantics analysis that
	// runs over the FULL policy set on every SetPolicy. The findings are
	// stamped into the published State (so every replica sees the same
	// diagnosis of the same epoch) and counted into the
	// cluster_policy_findings gauge. The zero value enables the analysis
	// with default options; sources whose name contains "local" are
	// treated as resource-owner sources unless LocalSources says
	// otherwise.
	Analyze analyze.Options
	// FailOn, when non-zero, makes SetPolicy REFUSE a change whose
	// analysis produces a finding at or above this severity — the
	// cluster equivalent of a failing pre-publish lint. The state and
	// epoch are untouched on refusal, so followers never see the
	// offending policy.
	FailOn analyze.Severity
}

// Publisher is the leader/seed side of cluster replication: the ONE
// process where policy and ticket-secret changes enter the cluster. It
// assigns each change the next cluster epoch and pushes the full state
// to every subscribed follower, plus periodic heartbeats so followers
// can bound their staleness.
//
// There is no election: the paper's deployment model has a distinguished
// administrative host (where the VO and resource-owner policy files
// live), and that host runs the publisher. If it dies, followers serve
// their last state until the staleness bound expires, then fail closed
// — no split brain is possible because nobody else can mint epochs.
type Publisher struct {
	heartbeat time.Duration
	metrics   *obs.Metrics
	auth      *gsi.Authenticator
	allowed   []gsi.DN
	analyze   analyze.Options
	failOn    analyze.Severity

	mu        sync.Mutex
	state     State
	subs      map[chan State]struct{}
	listeners map[net.Listener]struct{}
	closed    chan struct{}
	wg        sync.WaitGroup
}

// NewPublisher creates a publisher with empty state at epoch 0 under a
// fresh incarnation ID (each publisher instance is a new lineage; see
// State.Incarnation).
func NewPublisher(cfg PublisherConfig) *Publisher {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewMetrics()
	}
	return &Publisher{
		heartbeat: cfg.Heartbeat,
		metrics:   cfg.Metrics,
		auth:      cfg.Auth,
		allowed:   append([]gsi.DN(nil), cfg.Allowed...),
		analyze:   cfg.Analyze,
		failOn:    cfg.FailOn,
		state:     State{Incarnation: newIncarnation()},
		subs:      make(map[chan State]struct{}),
		listeners: make(map[net.Listener]struct{}),
		closed:    make(chan struct{}),
	}
}

// newIncarnation mints a random publisher-instance ID.
func newIncarnation() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("cluster: no entropy for incarnation id: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// Epoch returns the last assigned cluster epoch (0 before any change).
func (p *Publisher) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state.Epoch
}

// State returns a copy of the current replicated state.
func (p *Publisher) State() State {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state.clone()
}

// SetPolicy installs (or replaces) the policy text of one
// administrative source, assigns the next epoch and broadcasts. The
// text is parse-validated HERE, on the leader, so a syntax error never
// reaches — let alone diverges — the followers; the full resulting
// policy set is then run through the static semantics analyzer
// (internal/policy/analyze) and the findings are stamped into the
// published state. When PublisherConfig.FailOn is set and a finding
// reaches it, the change is refused with the findings in the error and
// the cluster state stays untouched.
func (p *Publisher) SetPolicy(source, text string) (uint64, error) {
	if _, err := policy.ParseString(text, source); err != nil {
		return 0, fmt.Errorf("cluster: refusing to publish %s: %w", source, err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()

	// Analyze the candidate set (current sources with this change
	// swapped in) before mutating anything, so a gated refusal leaves
	// the replicated state exactly as it was.
	candidate := append([]PolicyText(nil), p.state.Policies...)
	replacedAt := -1
	for i := range candidate {
		if candidate[i].Source == source {
			replacedAt = i
			break
		}
	}
	if replacedAt >= 0 {
		candidate[replacedAt].Text = text
	} else {
		candidate = append(candidate, PolicyText{Source: source, Text: text})
	}
	rep, err := analyzeSet(p.analyze, candidate)
	if err != nil {
		return 0, fmt.Errorf("cluster: refusing to publish %s: %w", source, err)
	}
	if p.failOn != 0 && rep.Count(p.failOn) > 0 {
		return 0, fmt.Errorf("cluster: refusing to publish %s: %d finding(s) at or above %s, first: %s",
			source, rep.Count(p.failOn), p.failOn, firstAtOrAbove(rep, p.failOn))
	}

	p.state.Policies = candidate
	p.state.Findings = rep.Findings
	p.metrics.ClusterPolicyFindings.Set(int64(len(rep.Findings)))
	p.state.Epoch++
	epoch := p.state.Epoch
	p.broadcastLocked()
	return epoch, nil
}

// Findings returns the analyzer findings stamped into the current
// state (those of the last successful SetPolicy).
func (p *Publisher) Findings() []analyze.Finding {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]analyze.Finding(nil), p.state.Findings...)
}

// analyzeSet compiles every source of a candidate policy set and runs
// the static analyzer over them together, so cross-source passes (the
// community-versus-local conflict detection) see the whole cluster
// policy. Texts were parse-validated when they entered the state, so a
// parse error here is a publisher bug, not an operator error.
func analyzeSet(opts analyze.Options, set []PolicyText) (*analyze.Report, error) {
	compiled := make([]*policy.Compiled, 0, len(set))
	for _, pt := range set {
		pol, err := policy.ParseString(pt.Text, pt.Source)
		if err != nil {
			return nil, err
		}
		compiled = append(compiled, policy.Compile(pol))
	}
	return analyze.With(opts, compiled...), nil
}

// firstAtOrAbove returns the first finding at or above min, for error
// messages. Findings are sorted most severe first, so it is the lead
// diagnosis.
func firstAtOrAbove(rep *analyze.Report, min analyze.Severity) string {
	for _, f := range rep.Findings {
		if f.Severity >= min {
			return f.String()
		}
	}
	return ""
}

// ShareSecret publishes one GSI ticket-secret version to the cluster
// (typically the leader ring's current secret, re-shared after every
// rotation). Followers Install it into their rings, so a resumption
// ticket sealed by any node redeems on any node. Re-sharing an
// already-known version still bumps the epoch — idempotence lives in
// SecretRing.Install, not here.
func (p *Publisher) ShareSecret(v gsi.SecretVersion) uint64 {
	key := append([]byte(nil), v.Key...)
	p.mu.Lock()
	replaced := false
	for i := range p.state.Secrets {
		if p.state.Secrets[i].ID == v.ID {
			p.state.Secrets[i].Key = key
			replaced = true
			break
		}
	}
	if !replaced {
		p.state.Secrets = append(p.state.Secrets, gsi.SecretVersion{ID: v.ID, Key: key})
	}
	p.state.Epoch++
	epoch := p.state.Epoch
	p.broadcastLocked()
	p.mu.Unlock()
	return epoch
}

// broadcastLocked hands the (just-mutated) state to every subscriber,
// coalescing: a subscriber that has not yet drained its previous
// delivery gets only the newest state. Caller holds p.mu.
func (p *Publisher) broadcastLocked() {
	st := p.state.clone()
	for ch := range p.subs {
		select {
		case <-ch: // drop the superseded pending state
		default:
		}
		select {
		case ch <- st:
		default:
			// Unreachable: the channel has capacity 1, this (mu-held)
			// loop is the only sender, and the drain above just emptied
			// it — but a provably non-blocking send keeps the
			// broadcast safe to run under p.mu.
		}
	}
}

// Serve accepts follower subscriptions on l until Close (returns nil)
// or a listener error. A publisher may serve multiple listeners.
func (p *Publisher) Serve(l net.Listener) error {
	p.mu.Lock()
	alreadyClosed := false
	select {
	case <-p.closed:
		alreadyClosed = true
	default:
		p.listeners[l] = struct{}{}
	}
	p.mu.Unlock()
	if alreadyClosed {
		l.Close()
		return nil
	}
	defer func() {
		p.mu.Lock()
		delete(p.listeners, l)
		p.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-p.closed:
				return nil
			default:
				return err
			}
		}
		// The Add must be mutually exclusive with Close observing the
		// closed channel: a bare Add here could race Close's Wait at
		// counter zero (invalid per sync.WaitGroup) and let Close return
		// while a just-accepted subscriber goroutine still runs.
		p.mu.Lock()
		accepted := false
		select {
		case <-p.closed:
		default:
			p.wg.Add(1)
			accepted = true
		}
		p.mu.Unlock()
		if !accepted {
			conn.Close()
			continue
		}
		go p.serveConn(conn)
	}
}

// serveConn streams states to one follower: the current state
// immediately on subscribe, every change as it happens, and heartbeats
// in between. After the (optional) authentication handshake followers
// never write; a broken pipe is detected on the next send (at most one
// heartbeat away).
func (p *Publisher) serveConn(conn net.Conn) {
	defer p.wg.Done()
	defer conn.Close()

	if p.auth != nil && !p.authenticate(conn) {
		return
	}

	ch := make(chan State, 1)
	p.mu.Lock()
	cur := p.state.clone()
	p.subs[ch] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.subs, ch)
		p.mu.Unlock()
	}()

	enc := json.NewEncoder(conn)
	if err := enc.Encode(cur); err != nil {
		return
	}
	p.metrics.ClusterSnapshotsPublished.Inc()

	tick := time.NewTicker(p.heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-p.closed:
			return
		case st := <-ch:
			if err := enc.Encode(st); err != nil {
				return
			}
			p.metrics.ClusterSnapshotsPublished.Inc()
		case <-tick.C:
			p.mu.Lock()
			cur := p.state.clone()
			p.mu.Unlock()
			// Heartbeats are liveness, not replication: they do not
			// count toward cluster_snapshots_published_total.
			if err := enc.Encode(cur); err != nil {
				return
			}
		}
	}
}

// authenticate runs the mutual GSI handshake with a subscriber and
// checks the verified peer against the subscriber policy. It reports
// whether the connection may receive state; refusals count into
// cluster_auth_failures_total.
func (p *Publisher) authenticate(conn net.Conn) bool {
	_ = conn.SetDeadline(time.Now().Add(authTimeout))
	peer, _, err := p.auth.Handshake(conn)
	if err == nil {
		err = p.checkSubscriber(peer)
	}
	_ = conn.SetDeadline(time.Time{})
	if err != nil {
		p.metrics.ClusterAuthFailures.Inc()
		return false
	}
	return true
}

// checkSubscriber decides whether an authenticated peer may subscribe:
// it must hold a service-kind credential (the replicated state carries
// ticket-sealing secrets, which no user or proxy credential may see),
// and — when an allow-list is configured — appear on it.
func (p *Publisher) checkSubscriber(peer *gsi.Peer) error {
	if peer.Credential == nil || peer.Credential.Leaf().Kind != gsi.KindService {
		return fmt.Errorf("cluster: subscriber %s did not present a service credential", peer.Identity)
	}
	if len(p.allowed) == 0 {
		return nil
	}
	for _, dn := range p.allowed {
		if peer.Identity == dn {
			return nil
		}
	}
	return fmt.Errorf("cluster: subscriber %s is not in the allowed set", peer.Identity)
}

// Close stops serving: listeners close, subscriber streams terminate,
// and Serve returns. The state (and epoch counter) survive, so a
// publisher can be re-served after a listener swap.
func (p *Publisher) Close() {
	p.mu.Lock()
	select {
	case <-p.closed:
		p.mu.Unlock()
		return
	default:
	}
	close(p.closed)
	ls := make([]net.Listener, 0, len(p.listeners))
	for l := range p.listeners {
		ls = append(ls, l)
	}
	p.mu.Unlock()
	for _, l := range ls {
		_ = l.Close()
	}
	p.wg.Wait()
}
