package cluster

import (
	"context"
	"fmt"
	"time"

	"gridauth/internal/core"
	"gridauth/internal/obs"
)

// DefaultMaxStaleness is the staleness bound a guard enforces when none
// is configured: long enough to ride out a publisher restart, short
// enough that a partitioned node cannot keep enforcing a superseded
// policy for long.
const DefaultMaxStaleness = 15 * time.Second

// StalenessGuard is a PDP that bounds how stale a follower's replicated
// policy may be while the node keeps deciding. While the replica is
// within the bound it ABSTAINS (decisions proceed on the replicated
// policy, which may be up to the bound behind the leader — the
// stale-bounded window). Once the publisher has been silent longer than
// the bound, it returns an ERROR decision: the node no longer knows
// whether its policy is current, so it must not claim a Permit OR a
// Deny. The PEP's degraded-mode mapping (docs/ARCHITECTURE.md) then does
// exactly the right thing per action class — job startup fails closed
// (CodeAuthorizationFailure), management surfaces the retryable
// CodeAuthorizationUnavailable so clients fail over to a node that
// still hears the publisher.
//
// Bind it into the node's PDP chain ahead of the replicated StorePDPs;
// combined under RequireAllPermit, its Error dominates any stale
// Permit.
type StalenessGuard struct {
	// Follower is the replica whose freshness gates decisions.
	Follower *Follower
	// MaxStaleness is the bound (0 selects DefaultMaxStaleness). It
	// must comfortably exceed the publisher's heartbeat interval or a
	// healthy idle cluster trips it.
	MaxStaleness time.Duration
	// Metrics receives cluster_stale_refusals_total; nil skips
	// counting.
	Metrics *obs.Metrics
}

var (
	_ core.ContextPDP     = (*StalenessGuard)(nil)
	_ core.NonBlockingPDP = (*StalenessGuard)(nil)
)

// Name implements PDP.
func (g *StalenessGuard) Name() string { return "cluster-staleness" }

// NonBlocking implements NonBlockingPDP: the check is two atomic loads.
func (g *StalenessGuard) NonBlocking() bool { return true }

// bound returns the effective staleness bound.
func (g *StalenessGuard) bound() time.Duration {
	if g.MaxStaleness > 0 {
		return g.MaxStaleness
	}
	return DefaultMaxStaleness
}

// Authorize implements PDP.
func (g *StalenessGuard) Authorize(req *core.Request) core.Decision {
	stale := g.Follower.Staleness()
	max := g.bound()
	epoch := g.Follower.Epoch()
	if stale <= max {
		return core.AbstainDecision(g.Name(),
			fmt.Sprintf("replica fresh at epoch %d (staleness %v within %v)",
				epoch, stale.Round(time.Millisecond), max))
	}
	if g.Metrics != nil {
		g.Metrics.ClusterStaleRefusals.Inc()
	}
	if stale == neverSynced {
		return core.ErrorDecision(g.Name(),
			fmt.Sprintf("policy replica never synced with the publisher (bound %v)", max))
	}
	return core.ErrorDecision(g.Name(),
		fmt.Sprintf("policy replica stale: last publisher contact %v ago exceeds bound %v (still at epoch %d)",
			stale.Round(time.Millisecond), max, epoch))
}

// AuthorizeContext implements ContextPDP (a liveness pre-check; the
// guard itself cannot block).
func (g *StalenessGuard) AuthorizeContext(ctx context.Context, req *core.Request) core.Decision {
	if err := ctx.Err(); err != nil {
		return core.ErrorDecision(g.Name(), "request abandoned: "+err.Error())
	}
	return g.Authorize(req) //authlint:ignore ctxprop ctx liveness is pre-checked above; the staleness check is two atomic loads and cannot block
}
