package core

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"

	"gridauth/internal/policy"
)

// PolicyPDP adapts the plaintext policy engine (internal/policy) to the
// PDP interface. This is the paper's prototype configuration:
// "we experimented with policies written in plain text files on the
// resource. These files included both local resource and VO policies."
//
// Evaluation runs on the compiled form (policy.Compiled), built lazily
// on first use and cached until the Policy field is swapped; the
// plainfile driver pre-compiles at load so no request pays for it.
type PolicyPDP struct {
	// Policy is the policy to evaluate.
	Policy *policy.Policy

	// compiled caches the compiled form of Policy. It is validated by
	// snapshot identity, so replacing Policy invalidates it implicitly.
	compiled atomic.Pointer[policy.Compiled]
}

var (
	_ ContextPDP     = (*PolicyPDP)(nil)
	_ NonBlockingPDP = (*PolicyPDP)(nil)
)

// Name implements PDP.
func (p *PolicyPDP) Name() string { return "policy:" + p.Policy.Source }

// NonBlocking implements NonBlockingPDP: evaluation is an in-memory
// scan of parsed statements and cannot hang.
func (p *PolicyPDP) NonBlocking() bool { return true }

// Authorize implements PDP.
func (p *PolicyPDP) Authorize(req *Request) Decision {
	return evaluatePolicy(p.Name(), p.compiledForm(), req)
}

// compiledForm returns the compiled form of the current Policy,
// compiling and caching it on first use. Concurrent first calls may
// compile redundantly; all results are equivalent and any one wins.
func (p *PolicyPDP) compiledForm() *policy.Compiled {
	if c := p.compiled.Load(); c != nil && c.Policy() == p.Policy {
		return c
	}
	c := policy.Compile(p.Policy)
	p.compiled.Store(c)
	return c
}

// AuthorizeContext implements ContextPDP. In-process policy evaluation
// is microsecond-scale and cannot hang, so honouring the context is a
// pre-check: a dead context fails closed with Error, a live one
// evaluates synchronously. Declaring context-awareness lets timeout
// wrappers (internal/resilience) skip their watchdog goroutine.
func (p *PolicyPDP) AuthorizeContext(ctx context.Context, req *Request) Decision {
	if err := ctx.Err(); err != nil {
		return ErrorDecision(p.Name(), "request abandoned: "+err.Error())
	}
	return p.Authorize(req) //authlint:ignore ctxprop ctx liveness is pre-checked above; in-memory evaluation cannot block, so there is nothing left to cancel
}

// evaluatePolicy runs one compiled policy over a request and maps the
// engine's ternary outcome onto decision effects.
func evaluatePolicy(name string, pol *policy.Compiled, req *Request) Decision {
	d := pol.Evaluate(&policy.Request{
		Subject:  req.Subject,
		Action:   req.Action,
		JobOwner: req.JobOwner,
		Spec:     req.Spec,
	})
	switch {
	case d.Allowed:
		return PermitDecision(name, d.Reason)
	case d.Applicable:
		return DenyDecision(name, d.Reason)
	default:
		// The policy neither grants nor objects: abstain, so a
		// restrictions-only source (e.g. the resource owner's "(queue !=
		// fast)" rule) does not veto requests the VO granted. Overall
		// default-deny is preserved by the combiner.
		return AbstainDecision(name, d.Reason)
	}
}

// StorePDP adapts a policy.Store — a mutable holder of the current
// policy of one administrative source — to the PDP interface. Use it
// instead of PolicyPDP when the policy can change at runtime; wire the
// store's OnChange hook to Registry.InvalidateCaches so decision caches
// never serve permits from before an update.
type StorePDP struct {
	// Store holds the current policy.
	Store *policy.Store
}

var (
	_ ContextPDP     = (*StorePDP)(nil)
	_ NonBlockingPDP = (*StorePDP)(nil)
)

// Name implements PDP.
func (p *StorePDP) Name() string { return "policy-store:" + p.Store.Source() }

// NonBlocking implements NonBlockingPDP (see PolicyPDP; the store read
// is a single atomic pointer load).
func (p *StorePDP) NonBlocking() bool { return true }

// Authorize implements PDP: it evaluates against the policy current at
// call time, using the compiled form the store rebuilt on last update.
func (p *StorePDP) Authorize(req *Request) Decision {
	return evaluatePolicy(p.Name(), p.Store.Compiled(), req)
}

// AuthorizeContext implements ContextPDP (see PolicyPDP: a pre-check,
// since in-process evaluation cannot hang).
func (p *StorePDP) AuthorizeContext(ctx context.Context, req *Request) Decision {
	if err := ctx.Err(); err != nil {
		return ErrorDecision(p.Name(), "request abandoned: "+err.Error())
	}
	return p.Authorize(req) //authlint:ignore ctxprop ctx liveness is pre-checked above; the store read and evaluation are in-memory and cannot block
}

// SelfOnlyPDP reproduces the stock GT2 job-management rule: "the Grid
// identity of the user making the request must match the Grid identity of
// the user who initiated the job" (§4.2). Job startup is out of its
// scope and yields a deny, since the Gatekeeper's grid-mapfile decides
// startup in stock GT2.
type SelfOnlyPDP struct{}

var _ NonBlockingPDP = SelfOnlyPDP{}

// Name implements PDP.
func (SelfOnlyPDP) Name() string { return "gt2-self-only" }

// NonBlocking implements NonBlockingPDP: the rule is a field
// comparison.
func (SelfOnlyPDP) NonBlocking() bool { return true }

// Authorize implements PDP.
func (s SelfOnlyPDP) Authorize(req *Request) Decision {
	if req.Action == policy.ActionStart {
		return DenyDecision(s.Name(), "job startup is authorized by the gatekeeper, not the job manager")
	}
	if req.JobOwner != "" && req.JobOwner == req.Subject {
		return PermitDecision(s.Name(), "requester is the job initiator")
	}
	return DenyDecision(s.Name(), fmt.Sprintf("requester %s is not the job initiator %s", req.Subject, req.JobOwner))
}

// RegisterBuiltinDrivers installs the drivers every deployment has:
//
//   - "plainfile": the plaintext policy engine; params: path=<policy file>
//     or inline=<policy text>, source=<label>.
//   - "gt2-self-only": the legacy GT2 management rule; no params.
//
// Third-party systems (Akenti, CAS) register their own drivers.
func RegisterBuiltinDrivers(r *Registry) {
	r.RegisterDriver("plainfile", func(params map[string]string) (PDP, error) {
		source := params["source"]
		if source == "" {
			source = "local"
		}
		var (
			pol *policy.Policy
			err error
		)
		switch {
		case params["path"] != "":
			f, ferr := os.Open(params["path"])
			if ferr != nil {
				return nil, fmt.Errorf("open policy file: %w", ferr)
			}
			defer f.Close()
			pol, err = policy.Parse(f, source)
		case params["inline"] != "":
			pol, err = policy.ParseString(params["inline"], source)
		default:
			return nil, fmt.Errorf("plainfile driver requires path= or inline=")
		}
		if err != nil {
			return nil, err
		}
		pdp := &PolicyPDP{Policy: pol}
		pdp.compiledForm() // compile at load, not on the first request
		return pdp, nil
	})
	r.RegisterDriver("gt2-self-only", func(map[string]string) (PDP, error) {
		return SelfOnlyPDP{}, nil
	})
}
