package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gridauth/internal/obs"
)

// CacheKey is the canonical digest a decision is cached under: a
// SHA-256 over every request field a PDP may consult. Two requests with
// equal keys are indistinguishable to every side-effect-free PDP in
// this system, so they must receive the same decision (within a policy
// epoch).
type CacheKey [sha256.Size]byte

// DecisionCacheKey computes the cache key for a request dispatched to a
// callout type. The digest covers the callout type, the subject, the
// action, the job owner, the requested account, the CANONICAL job
// description (which subsumes the jobtag attribute) and the signatures
// of every presented assertion (a signature uniquely identifies the
// assertion's content, so VO attribute sets and CAS-embedded policies
// are covered without re-serializing them).
//
// The job contact (Request.JobID) is deliberately excluded: no policy
// construct in the paper's language — nor any PDP in this repository —
// can reference it, and excluding it lets repeated management requests
// against different jobs with the same owner and description share an
// entry. Request.Time is likewise excluded; time sensitivity (assertion
// and use-condition validity windows) is bounded by the cache TTL.
func DecisionCacheKey(calloutType string, req *Request) CacheKey {
	// Assembled into one buffer and hashed in a single pass: this runs on
	// every cached dispatch, so it must not dominate the hit latency.
	buf := make([]byte, 0, 256)
	buf = appendField(buf, calloutType)
	buf = appendField(buf, string(req.Subject))
	buf = appendField(buf, req.Action)
	buf = appendField(buf, string(req.JobOwner))
	buf = appendField(buf, req.Account)
	if req.Spec != nil {
		buf = appendField(buf, req.Spec.Unparse())
	} else {
		buf = appendField(buf, "")
	}
	buf = appendField(buf, strconv.Itoa(len(req.Assertions)))
	for _, a := range req.Assertions {
		buf = appendField(buf, a.VO)
		buf = appendField(buf, string(a.Holder))
		buf = append(buf, a.Signature...)
	}
	return sha256.Sum256(buf)
}

// appendField appends a length-prefixed field so adjacent fields cannot
// alias ("ab"+"c" vs "a"+"bc").
func appendField(buf []byte, s string) []byte {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
	buf = append(buf, n[:]...)
	return append(buf, s...)
}

// MaxCacheTTL is the hard ceiling on decision-cache entry lifetime.
// The cache key deliberately excludes Request.Time, so time-dependent
// validity — assertion NotAfter, Akenti use-condition and
// attribute-certificate windows — is only re-checked when an entry
// expires, and no OnChange event fires when a credential merely ages
// out. The cap bounds that staleness window regardless of
// configuration: NewDecisionCache clamps larger TTLs, and the
// config-file path rejects them outright.
const MaxCacheTTL = time.Minute

// CacheConfig sizes a DecisionCache.
type CacheConfig struct {
	// TTL bounds how long an entry may be served (default 5s, clamped to
	// MaxCacheTTL). The TTL also bounds the staleness window for
	// time-dependent validity (assertion expiry), which the cache key
	// does not capture.
	TTL time.Duration
	// Shards is the number of independently locked shards (default 16,
	// rounded up to a power of two).
	Shards int
	// MaxEntriesPerShard caps shard growth (default 4096); when full,
	// expired and stale-epoch entries are swept, then arbitrary entries
	// evicted.
	MaxEntriesPerShard int
	// Clock is the time source (nil means time.Now).
	Clock func() time.Time
}

// CacheStats is a snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
	Entries       int
}

// DecisionCache memoizes authorization decisions. It is sharded for
// concurrent access, TTL-bounded, and epoch-guarded: Invalidate bumps
// the epoch, instantly orphaning every existing entry, so a policy
// mutation anywhere (plaintext policy update, VO membership change,
// Akenti certificate store change) can guarantee that no stale permit
// is ever served — the very next request re-evaluates.
//
// Only Permit and Deny decisions are cached. Errors (authorization
// system failures) are transient by definition and NotApplicable never
// escapes a combined chain.
type DecisionCache struct {
	ttl    time.Duration
	max    int
	now    func() time.Time
	epoch  atomic.Uint64
	shards []cacheShard

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[CacheKey]cacheEntry
}

type cacheEntry struct {
	d       Decision
	epoch   uint64
	expires time.Time
}

// NewDecisionCache builds a cache from a config (zero values take the
// documented defaults).
func NewDecisionCache(cfg CacheConfig) *DecisionCache {
	if cfg.TTL <= 0 {
		cfg.TTL = 5 * time.Second
	}
	if cfg.TTL > MaxCacheTTL {
		cfg.TTL = MaxCacheTTL
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	shards := 1
	for shards < cfg.Shards {
		shards <<= 1
	}
	if cfg.MaxEntriesPerShard <= 0 {
		cfg.MaxEntriesPerShard = 4096
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	c := &DecisionCache{
		ttl:    cfg.TTL,
		max:    cfg.MaxEntriesPerShard,
		now:    cfg.Clock,
		shards: make([]cacheShard, shards),
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[CacheKey]cacheEntry)
	}
	return c
}

// TTL returns the cache's entry lifetime.
func (c *DecisionCache) TTL() time.Duration { return c.ttl }

// ShardCount returns the number of shards.
func (c *DecisionCache) ShardCount() int { return len(c.shards) }

func (c *DecisionCache) shard(key CacheKey) *cacheShard {
	// The key is a cryptographic digest; any 8 bytes are uniformly
	// distributed.
	return &c.shards[binary.LittleEndian.Uint64(key[:8])&uint64(len(c.shards)-1)]
}

// Get returns the cached decision for key, if a live one exists. The
// current epoch is loaded inside the shard lock, after the entry is
// found, so an Invalidate that completes before the lookup is always
// honoured.
func (c *DecisionCache) Get(key CacheKey) (Decision, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok && (e.epoch != c.epoch.Load() || c.now().After(e.expires)) {
		delete(s.entries, key)
		ok = false
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return Decision{}, false
	}
	c.hits.Add(1)
	return e.d, true
}

// Put stores a decision under key. epoch must be the cache epoch
// observed BEFORE the decision was computed (Epoch()): if the policy
// changed while the evaluation ran, the decision reflects the old
// policy, and storing it under the post-change epoch would serve it as
// fresh for up to the TTL. Put therefore drops the entry when the
// epoch has moved on; in the residual race (the bump lands after the
// check) the entry is stored under the captured, now-stale epoch, so
// Get rejects it anyway. Error and NotApplicable decisions are not
// cached.
func (c *DecisionCache) Put(key CacheKey, d Decision, epoch uint64) {
	if d.Effect != Permit && d.Effect != Deny {
		return
	}
	now := c.now()
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch != c.epoch.Load() {
		return
	}
	if len(s.entries) >= c.max {
		c.sweepLocked(s, epoch, now)
	}
	s.entries[key] = cacheEntry{d: d, epoch: epoch, expires: now.Add(c.ttl)}
}

// sweepLocked drops dead entries; if the shard is still full, arbitrary
// entries go (map iteration order serves as cheap random eviction).
func (c *DecisionCache) sweepLocked(s *cacheShard, epoch uint64, now time.Time) {
	for k, e := range s.entries {
		if e.epoch != epoch || now.After(e.expires) {
			delete(s.entries, k)
		}
	}
	for k := range s.entries {
		if len(s.entries) < c.max {
			break
		}
		delete(s.entries, k)
	}
}

// Invalidate bumps the policy epoch: every existing entry becomes
// unservable immediately. This is the hook policy mutation points call
// (directly or through Registry.InvalidateCaches) so a policy change is
// visible on the very next authorization request.
func (c *DecisionCache) Invalidate() {
	c.epoch.Add(1)
	c.invalidations.Add(1)
}

// Epoch returns the current policy epoch (diagnostics).
func (c *DecisionCache) Epoch() uint64 { return c.epoch.Load() }

// Len returns the number of resident entries (including not-yet-swept
// dead ones).
func (c *DecisionCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].entries)
		c.shards[i].mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the cache counters.
func (c *DecisionCache) Stats() CacheStats {
	return CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       c.Len(),
	}
}

// CachedPDP wraps a PDP (typically a whole combined chain) with a
// DecisionCache under a fixed key scope (the callout type).
//
// Correctness requires the wrapped chain to be side-effect free: a PDP
// that reserves allocation or leases accounts on permit must not sit
// behind a cache, because a hit would skip the side effect.
type CachedPDP struct {
	// Inner is the decision point whose results are memoized.
	Inner PDP
	// Cache holds the memoized decisions.
	Cache *DecisionCache
	// Scope is mixed into every key; use the callout type so distinct
	// callout chains sharing a cache cannot collide.
	Scope string
	// Metrics, when set, receives cache hit/miss counts (the
	// DecisionCache keeps its own per-cache stats regardless).
	Metrics *obs.Metrics
}

var _ ContextPDP = (*CachedPDP)(nil)

// Name implements PDP.
func (p *CachedPDP) Name() string { return "cached(" + p.Inner.Name() + ")" }

// Authorize implements PDP.
//
//authlint:ignore pdpcap the only mutation on the authorize path is the cache fill, which is replay-safe by construction (epoch-checked Put); declaring EffectfulPDP would wrongly bar effect-free chains from fan-out
func (p *CachedPDP) Authorize(req *Request) Decision {
	return p.AuthorizeContext(context.Background(), req)
}

// AuthorizeContext implements ContextPDP. The epoch is captured before
// the inner chain runs: if a policy mutation fires Invalidate during
// evaluation (remote PDPs make this window wide), the decision was
// computed against the old policy and Put discards it rather than
// publishing it under the new epoch.
func (p *CachedPDP) AuthorizeContext(ctx context.Context, req *Request) Decision {
	key := DecisionCacheKey(p.Scope, req)
	if d, ok := p.Cache.Get(key); ok {
		if p.Metrics != nil {
			p.Metrics.CacheHits.Inc()
		}
		// On a hit no PDP runs, so the whole decision path is one
		// cache-hit span naming the wrapper.
		if tr := obs.TraceFrom(ctx); tr != nil {
			tr.Record(obs.Span{
				PDP:      p.Name(),
				Effect:   d.Effect.String(),
				Source:   d.Source,
				CacheHit: true,
			})
		}
		return d
	}
	if p.Metrics != nil {
		p.Metrics.CacheMisses.Inc()
	}
	epoch := p.Cache.Epoch()
	d := AuthorizeWithContext(ctx, p.Inner, req)
	p.Cache.Put(key, d, epoch)
	return d
}
