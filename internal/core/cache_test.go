package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridauth/internal/gsi"
	"gridauth/internal/policy"
	"gridauth/internal/rsl"
)

// fakeClock is a hand-advanced time source for TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestDecisionCacheKeyFields(t *testing.T) {
	base := func() *Request {
		return &Request{
			Subject:  bo,
			Action:   policy.ActionStart,
			JobOwner: bo,
			Account:  "grid1",
			Spec:     rsl.NewSpec().Set("executable", "sim").Set("jobtag", "bio"),
		}
	}
	k0 := DecisionCacheKey(CalloutJobManager, base())
	if k0 != DecisionCacheKey(CalloutJobManager, base()) {
		t.Fatal("key is not deterministic")
	}
	variants := map[string]*Request{}
	r := base()
	r.Subject = kate
	variants["subject"] = r
	r = base()
	r.Action = policy.ActionCancel
	variants["action"] = r
	r = base()
	r.JobOwner = kate
	variants["jobowner"] = r
	r = base()
	r.Account = "grid2"
	variants["account"] = r
	r = base()
	r.Spec = rsl.NewSpec().Set("executable", "sim").Set("jobtag", "physics")
	variants["jobtag"] = r
	r = base()
	r.Spec = rsl.NewSpec().Set("executable", "rm").Set("jobtag", "bio")
	variants["executable"] = r
	r = base()
	r.Assertions = []*gsi.Assertion{{VO: "NFC", Holder: bo, Signature: []byte{1, 2, 3}}}
	variants["assertions"] = r
	for name, v := range variants {
		if DecisionCacheKey(CalloutJobManager, v) == k0 {
			t.Errorf("changing %s did not change the key", name)
		}
	}
	if DecisionCacheKey(CalloutGatekeeper, base()) == k0 {
		t.Error("callout type is not part of the key")
	}
	// JobID is documented as excluded: management requests against
	// different jobs share entries.
	r = base()
	r.JobID = "https://gk/123"
	if DecisionCacheKey(CalloutJobManager, r) != k0 {
		t.Error("JobID must not affect the key")
	}
}

func TestDecisionCacheHitMissTTL(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := NewDecisionCache(CacheConfig{TTL: 5 * time.Second, Shards: 4, Clock: clk.Now})
	key := DecisionCacheKey(CalloutJobManager, &Request{Subject: bo, Action: policy.ActionStart})
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(key, PermitDecision("vo", "ok"), c.Epoch())
	d, ok := c.Get(key)
	if !ok || d.Effect != Permit || d.Source != "vo" {
		t.Fatalf("Get = (%v, %v), want cached permit", d, ok)
	}
	clk.Advance(4 * time.Second)
	if _, ok := c.Get(key); !ok {
		t.Fatal("entry expired before its TTL")
	}
	clk.Advance(2 * time.Second) // the Get above refreshed nothing; 6s > 5s after Put
	if _, ok := c.Get(key); ok {
		t.Fatal("entry served after its TTL")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("Stats = %+v, want 2 hits / 2 misses", st)
	}
}

func TestDecisionCacheOnlyCachesPermitAndDeny(t *testing.T) {
	c := NewDecisionCache(CacheConfig{})
	mk := func(i int) CacheKey {
		return DecisionCacheKey("t", &Request{Subject: bo, Action: fmt.Sprintf("a%d", i)})
	}
	c.Put(mk(0), PermitDecision("x", "ok"), c.Epoch())
	c.Put(mk(1), DenyDecision("x", "no"), c.Epoch())
	c.Put(mk(2), ErrorDecision("x", "backend down"), c.Epoch())
	c.Put(mk(3), AbstainDecision("x", "n/a"), c.Epoch())
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2 (Error and NotApplicable must not be cached)", c.Len())
	}
	if _, ok := c.Get(mk(2)); ok {
		t.Error("Error decision was cached")
	}
}

func TestDecisionCacheInvalidate(t *testing.T) {
	c := NewDecisionCache(CacheConfig{})
	key := DecisionCacheKey("t", &Request{Subject: bo, Action: policy.ActionStart})
	c.Put(key, PermitDecision("vo", "ok"), c.Epoch())
	if _, ok := c.Get(key); !ok {
		t.Fatal("warm entry missing")
	}
	c.Invalidate()
	if _, ok := c.Get(key); ok {
		t.Fatal("stale permit served after Invalidate")
	}
	// A fresh entry stored AFTER the bump is served normally.
	c.Put(key, DenyDecision("vo", "new policy"), c.Epoch())
	if d, ok := c.Get(key); !ok || d.Effect != Deny {
		t.Fatalf("post-invalidation store not served: (%v, %v)", d, ok)
	}
	if got := c.Stats().Invalidations; got != 1 {
		t.Errorf("Invalidations = %d, want 1", got)
	}
}

func TestDecisionCacheEviction(t *testing.T) {
	c := NewDecisionCache(CacheConfig{Shards: 1, MaxEntriesPerShard: 8})
	for i := 0; i < 100; i++ {
		key := DecisionCacheKey("t", &Request{Subject: bo, Action: fmt.Sprintf("a%d", i)})
		c.Put(key, PermitDecision("x", "ok"), c.Epoch())
	}
	if c.Len() > 8 {
		t.Errorf("Len = %d, want <= MaxEntriesPerShard (8)", c.Len())
	}
}

func TestDecisionCacheConcurrent(t *testing.T) {
	c := NewDecisionCache(CacheConfig{Shards: 8})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := DecisionCacheKey("t", &Request{Subject: bo, Action: fmt.Sprintf("a%d", i%17)})
				if i%31 == 0 {
					c.Invalidate()
				}
				if d, ok := c.Get(key); ok && d.Effect != Permit {
					t.Errorf("cached decision corrupted: %v", d)
					return
				}
				c.Put(key, PermitDecision("x", "ok"), c.Epoch())
			}
		}(g)
	}
	wg.Wait()
}

// countingPDP counts evaluations, to distinguish hits from misses.
type countingPDP struct {
	name  string
	calls atomic.Int64
	d     func(*Request) Decision
}

func (p *countingPDP) Name() string { return p.name }
func (p *countingPDP) Authorize(req *Request) Decision {
	p.calls.Add(1)
	return p.d(req)
}

func TestCachedPDP(t *testing.T) {
	inner := &countingPDP{name: "vo", d: func(*Request) Decision { return PermitDecision("vo", "ok") }}
	cached := &CachedPDP{Inner: inner, Cache: NewDecisionCache(CacheConfig{}), Scope: "t"}
	req := &Request{Subject: bo, Action: policy.ActionStart}
	for i := 0; i < 10; i++ {
		if d := cached.Authorize(req); d.Effect != Permit {
			t.Fatalf("Effect = %v", d.Effect)
		}
	}
	if n := inner.calls.Load(); n != 1 {
		t.Errorf("inner evaluated %d times for 10 identical requests, want 1", n)
	}
}

// TestCachedPDPNeverPinsErrors is the dispatch-level guarantee behind
// TestDecisionCacheOnlyCachesPermitAndDeny: an Error decision (transient
// authorization system failure) flowing through a CachedPDP must be
// re-evaluated on every request — a cached Error would pin an outage for
// a whole TTL — and the recovery decision that follows IS cached.
func TestCachedPDPNeverPinsErrors(t *testing.T) {
	inner := &countingPDP{name: "vo"}
	inner.d = func(*Request) Decision {
		if inner.calls.Load() <= 2 {
			return ErrorDecision("vo", "backend down")
		}
		return PermitDecision("vo", "recovered")
	}
	cached := &CachedPDP{Inner: inner, Cache: NewDecisionCache(CacheConfig{}), Scope: "t"}
	req := &Request{Subject: bo, Action: policy.ActionStart}
	for i := 0; i < 2; i++ {
		if d := cached.Authorize(req); d.Effect != Error {
			t.Fatalf("call %d = %v, want the live Error", i, d.Effect)
		}
	}
	if n := inner.calls.Load(); n != 2 {
		t.Fatalf("inner evaluated %d times during the outage, want 2 (Error was served from cache)", n)
	}
	// The backend healed: the next request reaches it and its permit is
	// cached for the ones after.
	if d := cached.Authorize(req); d.Effect != Permit {
		t.Fatalf("post-recovery decision = %v, want Permit", d.Effect)
	}
	cached.Authorize(req)
	if n := inner.calls.Load(); n != 3 {
		t.Errorf("inner evaluated %d times, want 3: the recovery permit should be cached", n)
	}
}

// TestDecisionCachePutStaleEpoch: a Put carrying an epoch observed
// before an Invalidate must not publish the decision — it was computed
// against the old policy.
func TestDecisionCachePutStaleEpoch(t *testing.T) {
	c := NewDecisionCache(CacheConfig{})
	key := DecisionCacheKey("t", &Request{Subject: bo, Action: policy.ActionStart})
	epoch := c.Epoch()
	c.Invalidate() // policy changed while the decision was being computed
	c.Put(key, PermitDecision("vo", "ok"), epoch)
	if _, ok := c.Get(key); ok {
		t.Fatal("decision computed under a stale epoch was served")
	}
}

// TestCachedPDPInvalidateDuringEvaluation closes the window REVIEW.md
// flagged: an invalidation that fires WHILE the inner chain is
// evaluating (here, from inside the inner PDP itself) must prevent the
// in-flight decision from being cached, so the next request
// re-evaluates against the new policy.
func TestCachedPDPInvalidateDuringEvaluation(t *testing.T) {
	cache := NewDecisionCache(CacheConfig{})
	inner := &countingPDP{name: "vo"}
	inner.d = func(*Request) Decision {
		if inner.calls.Load() == 1 {
			cache.Invalidate() // concurrent policy mutation mid-evaluation
		}
		return PermitDecision("vo", "ok")
	}
	cached := &CachedPDP{Inner: inner, Cache: cache, Scope: "t"}
	req := &Request{Subject: bo, Action: policy.ActionStart}
	cached.Authorize(req)
	cached.Authorize(req)
	if n := inner.calls.Load(); n != 2 {
		t.Fatalf("inner evaluated %d times, want 2: the decision computed across the invalidation must not be served from cache", n)
	}
	// With no further mutations the second decision IS cached.
	cached.Authorize(req)
	if n := inner.calls.Load(); n != 2 {
		t.Errorf("inner evaluated %d times, want 2: post-invalidation decision should now be cached", n)
	}
}

// TestCacheTTLClamped: no construction path may produce a cache whose
// TTL exceeds MaxCacheTTL — it is the only bound on how long an
// expired credential keeps satisfying a cached permit.
func TestCacheTTLClamped(t *testing.T) {
	if got := NewDecisionCache(CacheConfig{TTL: time.Hour}).TTL(); got != MaxCacheTTL {
		t.Errorf("NewDecisionCache TTL = %v, want clamp to %v", got, MaxCacheTTL)
	}
	r := NewRegistry()
	r.SetCalloutOptions(CalloutJobManager, CalloutOptions{Cache: true, CacheTTL: time.Hour})
	if got := r.Options(CalloutJobManager).CacheTTL; got != MaxCacheTTL {
		t.Errorf("SetCalloutOptions CacheTTL = %v, want clamp to %v", got, MaxCacheTTL)
	}
}

// TestRegistryOptionsDirective exercises the reserved "options" config
// line: it must install parallel + cached evaluation without binding a
// PDP, in either order relative to the driver lines.
func TestRegistryOptionsDirective(t *testing.T) {
	r := NewRegistry()
	RegisterBuiltinDrivers(r)
	cfg := CalloutJobManager + ` options mode=parallel cache=on cache-ttl=250ms cache-shards=4
` + CalloutJobManager + ` gt2-self-only`
	if err := r.LoadConfigString(cfg); err != nil {
		t.Fatal(err)
	}
	o := r.Options(CalloutJobManager)
	if !o.Parallel || !o.Cache || o.CacheTTL != 250*time.Millisecond || o.CacheShards != 4 {
		t.Fatalf("Options = %+v", o)
	}
	req := &Request{Subject: bo, Action: policy.ActionCancel, JobOwner: bo}
	if d := r.Invoke(CalloutJobManager, req); d.Effect != Permit {
		t.Fatalf("Invoke = %v (%s)", d.Effect, d.Reason)
	}
	// Second identical request must be a cache hit.
	r.Invoke(CalloutJobManager, req)
	st := r.CacheStats()[CalloutJobManager]
	if st.Hits < 1 {
		t.Errorf("CacheStats = %+v, want at least one hit", st)
	}
}

func TestRegistryOptionsErrors(t *testing.T) {
	cases := []string{
		CalloutJobManager + ` options mode=sideways`,
		CalloutJobManager + ` options cache=maybe`,
		CalloutJobManager + ` options cache-ttl=-3s`,
		CalloutJobManager + ` options cache-ttl=fast`,
		CalloutJobManager + ` options cache-ttl=2h`,
		CalloutJobManager + ` options cache-shards=0`,
		CalloutJobManager + ` options cache-shards=lots`,
		CalloutJobManager + ` options turbo=on`,
	}
	for _, c := range cases {
		r := NewRegistry()
		err := r.LoadConfigString(c)
		if err == nil {
			t.Errorf("LoadConfigString(%q): expected error", c)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("LoadConfigString(%q): %v is not a *ConfigError", c, err)
		}
	}
}

// TestRegistryCacheInvalidationVisibleNextRequest is the end-to-end
// staleness guarantee: with caching on, a policy update wired through
// Store.OnChange -> Registry.InvalidateCaches is reflected on the VERY
// NEXT request — a cached permit from the old policy is never served.
func TestRegistryCacheInvalidationVisibleNextRequest(t *testing.T) {
	grant := `/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu: &(action = start)(executable = sim)`
	store := policy.NewStore(policy.MustParse(grant, "VO:NFC"))
	r := NewRegistry()
	r.Bind(CalloutJobManager, &StorePDP{Store: store})
	r.SetCalloutOptions(CalloutJobManager, CalloutOptions{Cache: true, CacheTTL: MaxCacheTTL})
	store.OnChange(r.InvalidateCaches)

	req := &Request{
		Subject: bo,
		Action:  policy.ActionStart,
		Spec:    rsl.NewSpec().Set("executable", "sim"),
	}
	if d := r.Invoke(CalloutJobManager, req); d.Effect != Permit {
		t.Fatalf("initial request: %v (%s)", d.Effect, d.Reason)
	}
	// Warm hit — the TTL is the maximum allowed, far longer than this
	// test runs, so only invalidation can unseat it.
	if d := r.Invoke(CalloutJobManager, req); d.Effect != Permit {
		t.Fatalf("warm request: %v", d.Effect)
	}
	// The VO administrator revokes Bo's right to run sim.
	if err := store.UpdateText(`/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu: &(action = start)(executable = other)`); err != nil {
		t.Fatal(err)
	}
	if d := r.Invoke(CalloutJobManager, req); d.Effect != Deny {
		t.Fatalf("request after policy update: %v, want Deny (stale permit served)", d.Effect)
	}
}

// TestRegistryRebindInvalidatesCache: changing what a callout type MEANS
// (Bind/Unbind/SetMode) must orphan cached decisions even without an
// OnChange hook.
func TestRegistryRebindInvalidatesCache(t *testing.T) {
	r := NewRegistry()
	r.Bind(CalloutJobManager, permitAll("vo"))
	r.SetCalloutOptions(CalloutJobManager, CalloutOptions{Cache: true, CacheTTL: MaxCacheTTL})
	req := &Request{Subject: bo, Action: policy.ActionStart}
	if d := r.Invoke(CalloutJobManager, req); d.Effect != Permit {
		t.Fatalf("before rebind: %v", d.Effect)
	}
	r.Bind(CalloutJobManager, denyAll("local"))
	if d := r.Invoke(CalloutJobManager, req); d.Effect != Deny {
		t.Fatalf("after binding a denying PDP: %v, want Deny", d.Effect)
	}
}

// TestRegistryDispatchDoesNotHoldLock: a PDP that calls back into the
// registry's configuration API from inside Authorize must not deadlock,
// because dispatch evaluates outside the registry lock.
func TestRegistryDispatchDoesNotHoldLock(t *testing.T) {
	r := NewRegistry()
	reentrant := PDPFunc{ID: "reentrant", Fn: func(*Request) Decision {
		r.Bind("other_callout", permitAll("x")) // takes the write lock
		return PermitDecision("reentrant", "ok")
	}}
	r.Bind(CalloutJobManager, reentrant)
	done := make(chan Decision, 1)
	go func() { done <- r.Invoke(CalloutJobManager, &Request{Subject: bo}) }()
	select {
	case d := <-done:
		if d.Effect != Permit {
			t.Errorf("Effect = %v", d.Effect)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dispatch holds the registry lock across PDP evaluation (deadlock)")
	}
}
