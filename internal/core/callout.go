package core

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gridauth/internal/obs"
)

// Well-known abstract callout types, mirroring the callout points the
// paper inserts into GRAM.
const (
	// CalloutJobManager guards job management requests in the Job
	// Manager: before creating a job manager request and before cancel,
	// query (information) and signal.
	CalloutJobManager = "globus_gram_jobmanager_authz"
	// CalloutGatekeeper guards job startup in the Gatekeeper (the
	// alternate PEP placement discussed in §6.2).
	CalloutGatekeeper = "globus_gatekeeper_authz"
)

// OptionsDirective is the reserved word that, in a callout
// configuration line's driver position, tunes how a callout type is
// EVALUATED rather than binding a PDP:
//
//	globus_gram_jobmanager_authz options mode=parallel cache=on cache-ttl=5s cache-shards=32
//	globus_gram_jobmanager_authz options pdp-timeout=500ms retries=2 breaker=on
//
// It cannot be registered as a driver name.
const OptionsDirective = "options"

// Driver creates a PDP from configuration parameters. Drivers stand in
// for the dynamic libraries the C prototype loaded with dlopen.
type Driver func(params map[string]string) (PDP, error)

// ConfigError reports a malformed callout configuration.
type ConfigError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("callout config: line %d: %s", e.Line, e.Msg)
}

// CalloutOptions tunes how one callout type's PDP chain is evaluated.
// The zero value is the paper's prototype behaviour: sequential
// evaluation, no memoization.
type CalloutOptions struct {
	// Parallel fans the chain's PDPs out across goroutines
	// (ParallelCombined) instead of evaluating them one after another.
	// Decision semantics are unchanged.
	Parallel bool
	// Cache memoizes Permit/Deny decisions in a sharded TTL cache keyed
	// on the request's canonical digest. Enable only for side-effect
	// free chains (see CachedPDP).
	Cache bool
	// CacheTTL bounds entry lifetime (default 5s, clamped to
	// MaxCacheTTL: the TTL is the only bound on time-based credential
	// validity the cache key cannot see).
	CacheTTL time.Duration
	// CacheShards is the shard count (default 16, rounded to a power of
	// two).
	CacheShards int
	// PDPTimeout bounds each chain member's evaluation per callout; an
	// overrun becomes an Error decision (authorization system failure).
	// Applied by the installed PDP wrapper (internal/resilience); 0
	// disables.
	PDPTimeout time.Duration
	// Retries is how many extra attempts a transient Error decision
	// gets, with jittered exponential backoff (0 disables). Permit,
	// Deny and NotApplicable never retry, and side-effecting PDPs are
	// never retried regardless.
	Retries int
	// RetryBackoff is the base backoff before the first retry (0
	// selects the resilience default, 25ms).
	RetryBackoff time.Duration
	// Breaker enables a per-PDP circuit breaker: consecutive Error
	// decisions trip it open and calls are shed (failing fast with an
	// Error decision) until a cooldown probe succeeds.
	Breaker bool
	// BreakerThreshold is the consecutive-failure trip point (0 selects
	// 5).
	BreakerThreshold int
	// BreakerCooldown is the open → half-open delay (0 selects 5s).
	BreakerCooldown time.Duration
}

// resilient reports whether the options ask for any per-PDP
// protection, i.e. whether the installed PDP wrapper has work to do.
func (o CalloutOptions) resilient() bool {
	return o.PDPTimeout > 0 || o.Retries > 0 || o.Breaker
}

// PDPWrapper decorates each member of a callout chain when the chain
// is rebuilt. It is how the resilience layer (internal/resilience)
// injects timeout, retry and circuit-breaker wrappers without a
// core → resilience dependency: the registry parses the knobs
// (CalloutOptions), the wrapper implements them.
type PDPWrapper func(pdp PDP, o CalloutOptions) PDP

// Registry maps abstract callout types to configured PDP chains, and
// driver names to factories. It is the Go analogue of the prototype's
// "runtime configurable callouts": configuration happens "either through
// a configuration file or an API call".
//
// The registry PREBUILDS each callout type's evaluation chain (the
// combiner, optionally parallel, optionally wrapped in a decision
// cache) whenever its configuration changes. Dispatch therefore only
// reads one pointer under the read lock and evaluates entirely outside
// it: a slow PDP can never block Bind, RegisterDriver or any other
// configuration call, and dispatch allocates nothing per request.
type Registry struct {
	mu       sync.RWMutex
	drivers  map[string]Driver
	callouts map[string][]PDP
	opts     map[string]CalloutOptions
	caches   map[string]*DecisionCache
	chains   map[string]PDP
	mode     CombineMode
	wrapper  PDPWrapper
	metrics  *obs.Metrics
}

// NewRegistry returns a registry combining each callout type's PDPs with
// RequireAllPermit, the paper's combination rule.
func NewRegistry() *Registry {
	return &Registry{
		drivers:  make(map[string]Driver),
		callouts: make(map[string][]PDP),
		opts:     make(map[string]CalloutOptions),
		caches:   make(map[string]*DecisionCache),
		chains:   make(map[string]PDP),
		mode:     RequireAllPermit,
	}
}

// SetMode changes the combination rule applied when a callout type has
// several configured PDPs (ablation hook).
func (r *Registry) SetMode(mode CombineMode) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mode = mode
	for t := range r.callouts {
		r.rebuildLocked(t)
	}
}

// SetPDPWrapper installs (or, with nil, removes) the decorator applied
// to every chain member on rebuild, and rebuilds all chains. Callout
// types whose options request no protection are unaffected — the
// wrapper is consulted but expected to return the PDP unchanged.
func (r *Registry) SetPDPWrapper(w PDPWrapper) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.wrapper = w
	for t := range r.callouts {
		r.rebuildLocked(t)
	}
}

// SetMetrics installs (or, with nil, removes) the metric set dispatch
// reports into: decision counts by effect and end-to-end callout
// latency at InvokeContext, cache hits/misses at each CachedPDP. All
// chains are rebuilt so existing cache wrappers pick the metrics up.
func (r *Registry) SetMetrics(m *obs.Metrics) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = m
	for t := range r.callouts {
		r.rebuildLocked(t)
	}
}

// Metrics returns the installed metric set, or nil.
func (r *Registry) Metrics() *obs.Metrics {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.metrics
}

// RegisterDriver installs a driver under a name, replacing any previous
// registration. The name "options" is reserved for the configuration
// directive and is never dispatched to.
func (r *Registry) RegisterDriver(name string, d Driver) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.drivers[name] = d
}

// Drivers returns the sorted names of registered drivers.
func (r *Registry) Drivers() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.drivers))
	for n := range r.drivers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Bind configures a PDP instance for an abstract callout type via the API
// (the non-file configuration path).
func (r *Registry) Bind(calloutType string, pdp PDP) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.callouts[calloutType] = append(r.callouts[calloutType], pdp)
	r.rebuildLocked(calloutType)
}

// Unbind removes every PDP configured for the callout type.
func (r *Registry) Unbind(calloutType string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.callouts, calloutType)
	r.rebuildLocked(calloutType)
}

// Configured reports whether any PDP is bound to the callout type.
func (r *Registry) Configured(calloutType string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.callouts[calloutType]) > 0
}

// SetCalloutOptions replaces the evaluation options of a callout type
// and rebuilds its chain. Enabling the cache creates it; re-applying
// options recreates it (and thus drops every entry).
func (r *Registry) SetCalloutOptions(calloutType string, o CalloutOptions) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if o.CacheTTL > MaxCacheTTL {
		// Clamp rather than error on the API path, so Options() reports
		// the TTL the cache actually enforces.
		o.CacheTTL = MaxCacheTTL
	}
	r.opts[calloutType] = o
	if o.Cache {
		r.caches[calloutType] = NewDecisionCache(CacheConfig{TTL: o.CacheTTL, Shards: o.CacheShards})
	} else {
		delete(r.caches, calloutType)
	}
	r.rebuildLocked(calloutType)
}

// Options returns the evaluation options of a callout type.
func (r *Registry) Options(calloutType string) CalloutOptions {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.opts[calloutType]
}

// InvalidateCaches bumps the policy epoch of every decision cache in
// the registry. Policy mutation points (policy.Store updates, VO
// membership changes, Akenti certificate stores) call this — usually
// via an OnChange hook — so no stale permit survives a policy change.
func (r *Registry) InvalidateCaches() {
	r.mu.RLock()
	caches := make([]*DecisionCache, 0, len(r.caches))
	for _, c := range r.caches {
		caches = append(caches, c)
	}
	r.mu.RUnlock()
	for _, c := range caches {
		c.Invalidate()
	}
}

// CacheStats returns a snapshot of each cached callout type's counters.
func (r *Registry) CacheStats() map[string]CacheStats {
	r.mu.RLock()
	caches := make(map[string]*DecisionCache, len(r.caches))
	for t, c := range r.caches {
		caches[t] = c
	}
	r.mu.RUnlock()
	out := make(map[string]CacheStats, len(caches))
	for t, c := range caches {
		out[t] = c.Stats()
	}
	return out
}

// rebuildLocked recomputes the prebuilt evaluation chain of a callout
// type. Callers hold r.mu. Existing caches are invalidated (not
// dropped): a Bind/Unbind/SetMode changes what decisions mean, so
// entries from before the change must never be served.
func (r *Registry) rebuildLocked(calloutType string) {
	pdps := r.callouts[calloutType]
	if len(pdps) == 0 {
		delete(r.chains, calloutType)
		return
	}
	o := r.opts[calloutType]
	if r.wrapper != nil && o.resilient() {
		wrapped := make([]PDP, len(pdps))
		for i, p := range pdps {
			wrapped[i] = r.wrapper(p, o)
		}
		pdps = wrapped
	}
	// Every member gets the tracing decorator, outside any resilience
	// wrapper, so a span covers the whole evaluation including retries
	// and breaker sheds. Without a trace on the request context the
	// decorator is a single context lookup.
	members := make([]PDP, len(pdps))
	for i, p := range pdps {
		members[i] = traced(p)
	}
	var chain PDP
	if o.Parallel {
		chain = NewParallelCombined(r.mode, members...)
	} else {
		chain = NewCombined(r.mode, members...)
	}
	if o.Cache {
		cache := r.caches[calloutType]
		if cache == nil {
			cache = NewDecisionCache(CacheConfig{TTL: o.CacheTTL, Shards: o.CacheShards})
			r.caches[calloutType] = cache
		} else {
			cache.Invalidate()
		}
		chain = &CachedPDP{Inner: chain, Cache: cache, Scope: calloutType, Metrics: r.metrics}
	}
	r.chains[calloutType] = chain
}

// parseCalloutOptions applies key=value pairs from an "options"
// configuration line on top of existing options.
func parseCalloutOptions(base CalloutOptions, params map[string]string) (CalloutOptions, error) {
	o := base
	for k, v := range params {
		switch k {
		case "mode":
			switch v {
			case "parallel":
				o.Parallel = true
			case "sequential":
				o.Parallel = false
			default:
				return o, fmt.Errorf("mode must be parallel or sequential, got %q", v)
			}
		case "cache":
			switch v {
			case "on":
				o.Cache = true
			case "off":
				o.Cache = false
			default:
				return o, fmt.Errorf("cache must be on or off, got %q", v)
			}
		case "cache-ttl":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return o, fmt.Errorf("cache-ttl must be a positive duration, got %q", v)
			}
			if d > MaxCacheTTL {
				return o, fmt.Errorf("cache-ttl %q exceeds the %v cap (the TTL bounds how long an expired assertion can keep satisfying a cached permit)", v, MaxCacheTTL)
			}
			o.CacheTTL = d
		case "cache-shards":
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return o, fmt.Errorf("cache-shards must be a positive integer, got %q", v)
			}
			o.CacheShards = n
		case "pdp-timeout":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return o, fmt.Errorf("pdp-timeout must be a positive duration, got %q", v)
			}
			o.PDPTimeout = d
		case "retries":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return o, fmt.Errorf("retries must be a non-negative integer, got %q", v)
			}
			o.Retries = n
		case "retry-backoff":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return o, fmt.Errorf("retry-backoff must be a positive duration, got %q", v)
			}
			o.RetryBackoff = d
		case "breaker":
			switch v {
			case "on":
				o.Breaker = true
			case "off":
				o.Breaker = false
			default:
				return o, fmt.Errorf("breaker must be on or off, got %q", v)
			}
		case "breaker-threshold":
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return o, fmt.Errorf("breaker-threshold must be a positive integer, got %q", v)
			}
			o.BreakerThreshold = n
		case "breaker-cooldown":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return o, fmt.Errorf("breaker-cooldown must be a positive duration, got %q", v)
			}
			o.BreakerCooldown = d
		default:
			return o, fmt.Errorf("unknown option %q (want mode, cache, cache-ttl, cache-shards, pdp-timeout, retries, retry-backoff, breaker, breaker-threshold, breaker-cooldown)", k)
		}
	}
	return o, nil
}

// LoadConfig reads a callout configuration file. Each non-comment line
// has the form
//
//	<abstract-type> <driver> [key=value ...]
//
// mirroring the prototype's "abstract callout name, the path to the
// dynamic library that implements the callout and the symbol for the
// callout in the library": here the driver name plays the library+symbol
// role and key=value pairs carry driver parameters (policy file paths,
// source labels, ...).
//
// The reserved driver word "options" instead tunes evaluation of the
// callout type (see CalloutOptions):
//
//	globus_gram_jobmanager_authz options mode=parallel cache=on cache-ttl=5s
func (r *Registry) LoadConfig(rd io.Reader) error {
	sc := bufio.NewScanner(rd)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return &ConfigError{Line: lineNo, Msg: "want: <abstract-type> <driver> [key=value ...]"}
		}
		calloutType, driverName := fields[0], fields[1]
		params := make(map[string]string, len(fields)-2)
		for _, kv := range fields[2:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok || k == "" {
				return &ConfigError{Line: lineNo, Msg: fmt.Sprintf("malformed parameter %q", kv)}
			}
			params[k] = v
		}
		if driverName == OptionsDirective {
			o, err := parseCalloutOptions(r.Options(calloutType), params)
			if err != nil {
				return &ConfigError{Line: lineNo, Msg: err.Error()}
			}
			r.SetCalloutOptions(calloutType, o)
			continue
		}
		r.mu.RLock()
		driver, ok := r.drivers[driverName]
		r.mu.RUnlock()
		if !ok {
			return &ConfigError{Line: lineNo, Msg: fmt.Sprintf("unknown driver %q (have %v)", driverName, r.Drivers())}
		}
		pdp, err := driver(params)
		if err != nil {
			return &ConfigError{Line: lineNo, Msg: fmt.Sprintf("driver %q: %v", driverName, err)}
		}
		r.Bind(calloutType, pdp)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("callout config: read: %w", err)
	}
	return nil
}

// LoadConfigString parses configuration from a string.
func (r *Registry) LoadConfigString(s string) error {
	return r.LoadConfig(strings.NewReader(s))
}

// Invoke dispatches the request to the PDPs configured for the callout
// type, combining their decisions. An unconfigured callout type yields an
// Error decision — the paper's "authorization system failure" class —
// because an enforcement point whose callout is missing must fail closed
// loudly, not silently permit.
func (r *Registry) Invoke(calloutType string, req *Request) Decision {
	return r.InvokeContext(context.Background(), calloutType, req)
}

// InvokeContext is Invoke with a caller-supplied context: the PEP's
// per-request context reaches every context-aware PDP in the chain, so
// an abandoned request (client gone, deadline passed) can stop paying
// for policy evaluation. The prebuilt chain pointer is read under the
// lock; evaluation runs entirely outside it, so configuration calls are
// never blocked by a slow PDP. A chain is an immutable snapshot:
// concurrent Bind/Unbind affect the next dispatch, not in-flight ones.
func (r *Registry) InvokeContext(ctx context.Context, calloutType string, req *Request) Decision {
	r.mu.RLock()
	chain := r.chains[calloutType]
	m := r.metrics
	r.mu.RUnlock()
	if chain == nil {
		d := ErrorDecision("callout:"+calloutType, "no authorization callout configured")
		if m != nil {
			m.DecisionsError.Inc()
		}
		return d
	}
	if m == nil {
		return AuthorizeWithContext(ctx, chain, req)
	}
	start := time.Now()
	d := AuthorizeWithContext(ctx, chain, req)
	m.DecisionSeconds.Observe(time.Since(start))
	switch d.Effect {
	case Permit:
		m.DecisionsPermit.Inc()
	case Deny:
		m.DecisionsDeny.Inc()
	case Error:
		m.DecisionsError.Inc()
	case NotApplicable:
		m.DecisionsNotApplicable.Inc()
	default:
		// Unknown effects count as authorization system failures.
		m.DecisionsError.Inc()
	}
	return d
}

// PDP returns the combined PDP bound to a callout type, for callers that
// want to hold a decision point rather than dispatch by name. The
// returned PDP is context-aware.
func (r *Registry) PDP(calloutType string) PDP {
	return &registryPDP{r: r, calloutType: calloutType}
}

type registryPDP struct {
	r           *Registry
	calloutType string
}

var _ ContextPDP = (*registryPDP)(nil)

func (p *registryPDP) Name() string { return "callout:" + p.calloutType }

func (p *registryPDP) Authorize(req *Request) Decision {
	return p.r.Invoke(p.calloutType, req)
}

func (p *registryPDP) AuthorizeContext(ctx context.Context, req *Request) Decision {
	return p.r.InvokeContext(ctx, p.calloutType, req)
}
