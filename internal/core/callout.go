package core

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Well-known abstract callout types, mirroring the callout points the
// paper inserts into GRAM.
const (
	// CalloutJobManager guards job management requests in the Job
	// Manager: before creating a job manager request and before cancel,
	// query (information) and signal.
	CalloutJobManager = "globus_gram_jobmanager_authz"
	// CalloutGatekeeper guards job startup in the Gatekeeper (the
	// alternate PEP placement discussed in §6.2).
	CalloutGatekeeper = "globus_gatekeeper_authz"
)

// Driver creates a PDP from configuration parameters. Drivers stand in
// for the dynamic libraries the C prototype loaded with dlopen.
type Driver func(params map[string]string) (PDP, error)

// ConfigError reports a malformed callout configuration.
type ConfigError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("callout config: line %d: %s", e.Line, e.Msg)
}

// Registry maps abstract callout types to configured PDP chains, and
// driver names to factories. It is the Go analogue of the prototype's
// "runtime configurable callouts": configuration happens "either through
// a configuration file or an API call".
type Registry struct {
	mu       sync.RWMutex
	drivers  map[string]Driver
	callouts map[string][]PDP
	mode     CombineMode
}

// NewRegistry returns a registry combining each callout type's PDPs with
// RequireAllPermit, the paper's combination rule.
func NewRegistry() *Registry {
	return &Registry{
		drivers:  make(map[string]Driver),
		callouts: make(map[string][]PDP),
		mode:     RequireAllPermit,
	}
}

// SetMode changes the combination rule applied when a callout type has
// several configured PDPs (ablation hook).
func (r *Registry) SetMode(mode CombineMode) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mode = mode
}

// RegisterDriver installs a driver under a name, replacing any previous
// registration.
func (r *Registry) RegisterDriver(name string, d Driver) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.drivers[name] = d
}

// Drivers returns the sorted names of registered drivers.
func (r *Registry) Drivers() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.drivers))
	for n := range r.drivers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Bind configures a PDP instance for an abstract callout type via the API
// (the non-file configuration path).
func (r *Registry) Bind(calloutType string, pdp PDP) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.callouts[calloutType] = append(r.callouts[calloutType], pdp)
}

// Unbind removes every PDP configured for the callout type.
func (r *Registry) Unbind(calloutType string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.callouts, calloutType)
}

// Configured reports whether any PDP is bound to the callout type.
func (r *Registry) Configured(calloutType string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.callouts[calloutType]) > 0
}

// LoadConfig reads a callout configuration file. Each non-comment line
// has the form
//
//	<abstract-type> <driver> [key=value ...]
//
// mirroring the prototype's "abstract callout name, the path to the
// dynamic library that implements the callout and the symbol for the
// callout in the library": here the driver name plays the library+symbol
// role and key=value pairs carry driver parameters (policy file paths,
// source labels, ...).
func (r *Registry) LoadConfig(rd io.Reader) error {
	sc := bufio.NewScanner(rd)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return &ConfigError{Line: lineNo, Msg: "want: <abstract-type> <driver> [key=value ...]"}
		}
		calloutType, driverName := fields[0], fields[1]
		params := make(map[string]string, len(fields)-2)
		for _, kv := range fields[2:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok || k == "" {
				return &ConfigError{Line: lineNo, Msg: fmt.Sprintf("malformed parameter %q", kv)}
			}
			params[k] = v
		}
		r.mu.RLock()
		driver, ok := r.drivers[driverName]
		r.mu.RUnlock()
		if !ok {
			return &ConfigError{Line: lineNo, Msg: fmt.Sprintf("unknown driver %q (have %v)", driverName, r.Drivers())}
		}
		pdp, err := driver(params)
		if err != nil {
			return &ConfigError{Line: lineNo, Msg: fmt.Sprintf("driver %q: %v", driverName, err)}
		}
		r.Bind(calloutType, pdp)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("callout config: read: %w", err)
	}
	return nil
}

// LoadConfigString parses configuration from a string.
func (r *Registry) LoadConfigString(s string) error {
	return r.LoadConfig(strings.NewReader(s))
}

// Invoke dispatches the request to the PDPs configured for the callout
// type, combining their decisions. An unconfigured callout type yields an
// Error decision — the paper's "authorization system failure" class —
// because an enforcement point whose callout is missing must fail closed
// loudly, not silently permit.
func (r *Registry) Invoke(calloutType string, req *Request) Decision {
	r.mu.RLock()
	pdps := append([]PDP(nil), r.callouts[calloutType]...)
	mode := r.mode
	r.mu.RUnlock()
	if len(pdps) == 0 {
		return ErrorDecision("callout:"+calloutType, "no authorization callout configured")
	}
	return NewCombined(mode, pdps...).Authorize(req)
}

// PDP returns the combined PDP bound to a callout type, for callers that
// want to hold a decision point rather than dispatch by name.
func (r *Registry) PDP(calloutType string) PDP {
	return PDPFunc{
		ID: "callout:" + calloutType,
		Fn: func(req *Request) Decision { return r.Invoke(calloutType, req) },
	}
}
