// Package core implements the authorization framework of the paper: the
// request/decision model shared by all policy evaluation points (PEPs),
// the policy decision point (PDP) interface, decision combination from
// multiple administrative sources, and the runtime-configurable
// authorization callout mechanism of §5.2.
//
// The paper inserts a PEP into the GRAM Job Manager through a "callout
// API": the JM passes the requesting user's credential, the job
// initiator's credential, the action, a job identifier and the RSL job
// description, and receives success or an authorization error. Callouts
// are configured at runtime — in the C prototype by naming a dynamic
// library and symbol in a configuration file loaded with GNU Libtool's
// dlopen. This package reproduces that architecture with a driver
// registry standing in for dlopen: a configuration file (or API call)
// binds an abstract callout type such as "globus_gram_jobmanager_authz"
// to a named driver plus parameters.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"gridauth/internal/gsi"
	"gridauth/internal/rsl"
)

// Effect is the outcome class of an authorization decision.
type Effect int

// Decision effects. The paper's callout API distinguishes success,
// authorization denial, and authorization *system* failure, which map to
// Permit, Deny and Error. NotApplicable exists for decision COMBINATION:
// it is how a policy source that only expresses restrictions abstains
// from granting (e.g. a resource owner whose policy says "no reserved
// queues" but leaves grants to the VO). A lone NotApplicable never
// authorizes anything — the combiner requires at least one Permit.
const (
	Permit Effect = iota + 1
	Deny
	Error
	NotApplicable
)

// String returns the effect name.
func (e Effect) String() string {
	switch e {
	case Permit:
		return "permit"
	case Deny:
		return "deny"
	case Error:
		return "error"
	case NotApplicable:
		return "not-applicable"
	default:
		return fmt.Sprintf("Effect(%d)", int(e))
	}
}

// Request carries everything the callout API passes to a PEP (§5.2): the
// credential of the requesting user, the identity of the job initiator,
// the action, a unique job identifier and the job description.
type Request struct {
	// Subject is the verified Grid identity of the requester.
	Subject gsi.DN
	// Assertions holds the verified VO attribute assertions presented
	// with the request.
	Assertions []*gsi.Assertion
	// Action is one of the policy action names (start, cancel,
	// information, signal).
	Action string
	// JobID uniquely identifies the targeted job; empty at startup
	// before an ID is assigned.
	JobID string
	// JobOwner is the Grid identity that initiated the targeted job;
	// empty at startup.
	JobOwner gsi.DN
	// Spec is the RSL job description.
	Spec *rsl.Spec
	// Account is the local account the request asked to run under, if
	// any.
	Account string
	// Time is the evaluation time; the zero value means "now".
	Time time.Time
}

// At returns the request's evaluation time, defaulting to time.Now.
func (r *Request) At() time.Time {
	if r.Time.IsZero() {
		return time.Now()
	}
	return r.Time
}

// Decision is the result a PDP returns through the callout API.
type Decision struct {
	Effect Effect
	// Source names the deciding policy or subsystem.
	Source string
	// Reason is a human-readable explanation (the paper extends the GRAM
	// protocol to return such reasons to the client).
	Reason string
}

// PermitDecision builds a permit.
func PermitDecision(source, reason string) Decision {
	return Decision{Effect: Permit, Source: source, Reason: reason}
}

// DenyDecision builds a denial.
func DenyDecision(source, reason string) Decision {
	return Decision{Effect: Deny, Source: source, Reason: reason}
}

// ErrorDecision builds an authorization-system-failure decision.
func ErrorDecision(source, reason string) Decision {
	return Decision{Effect: Error, Source: source, Reason: reason}
}

// AbstainDecision builds a NotApplicable decision: the source neither
// grants nor objects.
func AbstainDecision(source, reason string) Decision {
	return Decision{Effect: NotApplicable, Source: source, Reason: reason}
}

// PDP is a policy decision point: anything that can answer an
// authorization request. The plaintext policy engine, Akenti and CAS all
// implement it.
type PDP interface {
	// Name identifies the PDP for decision attribution.
	Name() string
	// Authorize decides the request. Implementations must not mutate it.
	Authorize(req *Request) Decision
}

// PDPFunc adapts a function to the PDP interface.
type PDPFunc struct {
	// ID is the PDP name.
	ID string
	// Fn decides requests.
	Fn func(req *Request) Decision
}

// Name implements PDP.
func (p PDPFunc) Name() string { return p.ID }

// Authorize implements PDP.
func (p PDPFunc) Authorize(req *Request) Decision { return p.Fn(req) }

var _ PDP = PDPFunc{}

// CombineMode selects how decisions from multiple PDPs are combined.
type CombineMode int

// Combination algorithms. The paper's architecture requires
// RequireAllPermit: "If the request is authorized by both PEPs" — the
// resource owner's policy AND the VO's policy must each permit. The
// others exist for ablation (see DESIGN.md).
const (
	// RequireAllPermit permits only when every PDP permits. Any Error is
	// an Error; otherwise any Deny is a Deny.
	RequireAllPermit CombineMode = iota + 1
	// DenyOverrides denies if any PDP denies, permits if at least one
	// permits and none denies.
	DenyOverrides
	// PermitOverrides permits if any PDP permits.
	PermitOverrides
	// FirstApplicable returns the first non-Error decision.
	FirstApplicable
)

// String returns the mode name.
func (m CombineMode) String() string {
	switch m {
	case RequireAllPermit:
		return "require-all-permit"
	case DenyOverrides:
		return "deny-overrides"
	case PermitOverrides:
		return "permit-overrides"
	case FirstApplicable:
		return "first-applicable"
	default:
		return fmt.Sprintf("CombineMode(%d)", int(m))
	}
}

// Combined is a PDP that merges the decisions of several PDPs.
type Combined struct {
	mode CombineMode
	pdps []PDP
}

// NewCombined builds a combining PDP. With no children it denies
// everything (default deny).
func NewCombined(mode CombineMode, pdps ...PDP) *Combined {
	return &Combined{mode: mode, pdps: append([]PDP(nil), pdps...)}
}

var (
	_ PDP        = (*Combined)(nil)
	_ ContextPDP = (*Combined)(nil)
)

// Name implements PDP.
func (c *Combined) Name() string {
	names := make([]string, len(c.pdps))
	for i, p := range c.pdps {
		names[i] = p.Name()
	}
	return c.mode.String() + "(" + strings.Join(names, ",") + ")"
}

// Authorize implements PDP.
func (c *Combined) Authorize(req *Request) Decision {
	return combineDecisions(c.mode, c.Name, len(c.pdps), func(i int) Decision {
		return c.pdps[i].Authorize(req)
	})
}

// AuthorizeContext implements ContextPDP: the caller's context reaches
// every context-aware child (strictly in configuration order, as
// Authorize would evaluate them), so cancellation — and request-scoped
// values like a decision trace — propagate through sequential chains
// exactly as they do through parallel ones.
func (c *Combined) AuthorizeContext(ctx context.Context, req *Request) Decision {
	return combineDecisions(c.mode, c.Name, len(c.pdps), func(i int) Decision {
		return AuthorizeWithContext(ctx, c.pdps[i], req)
	})
}

// combineDecisions resolves the combined decision of n children under a
// combination mode. Child decisions are obtained through get, strictly in
// configuration order, and get is not called for children the resolution
// no longer needs (early exit). Both Combined and ParallelCombined
// resolve through this single function, which is what makes the parallel
// combiner equivalent to the sequential one by construction: the only
// difference between them is whether get(i) computes the decision on the
// spot or waits for a goroutine that is already computing it.
//
// name is called lazily because building a combined name walks all
// children; decisions attributed to a single child never pay for it.
func combineDecisions(mode CombineMode, name func() string, n int, get func(int) Decision) Decision {
	if n == 0 {
		return DenyDecision(name(), "no policy decision points configured (default deny)")
	}
	switch mode {
	case RequireAllPermit:
		// The paper's rule: every source must accept the request (no
		// denials), and at least one must positively grant it; sources
		// that only express restrictions abstain.
		var (
			reasons []string
			permits int
		)
		for i := 0; i < n; i++ {
			d := get(i)
			switch d.Effect {
			case Error:
				return d
			case Deny:
				return DenyDecision(d.Source, d.Reason)
			case Permit:
				permits++
				reasons = append(reasons, d.Source+": "+d.Reason)
			case NotApplicable:
				// abstention: no objection, no grant
			}
		}
		if permits == 0 {
			return DenyDecision(name(), "no policy source grants the request (default deny)")
		}
		return PermitDecision(name(), strings.Join(reasons, "; "))
	case DenyOverrides:
		var permit *Decision
		for i := 0; i < n; i++ {
			d := get(i)
			switch d.Effect {
			case Error:
				return d
			case Deny:
				return d
			case Permit:
				if permit == nil {
					permit = &d
				}
			case NotApplicable:
			}
		}
		if permit != nil {
			return *permit
		}
		return DenyDecision(name(), "no permit")
	case PermitOverrides:
		var firstDeny *Decision
		for i := 0; i < n; i++ {
			d := get(i)
			switch d.Effect {
			case Permit:
				return d
			case Deny, Error:
				if firstDeny == nil {
					firstDeny = &d
				}
			case NotApplicable:
			}
		}
		if firstDeny != nil {
			return *firstDeny
		}
		return DenyDecision(name(), "no permit")
	case FirstApplicable:
		for i := 0; i < n; i++ {
			d := get(i)
			if d.Effect == Permit || d.Effect == Deny {
				return d
			}
		}
		return DenyDecision(name(), "no applicable decision")
	default:
		return ErrorDecision(name(), "unknown combination mode")
	}
}

// AuthorizationError is the error form of a non-permit decision, used
// where an error return is more natural than a Decision (e.g. the GRAM
// protocol layer).
type AuthorizationError struct {
	Decision Decision
}

// Error implements the error interface.
func (e *AuthorizationError) Error() string {
	return fmt.Sprintf("authorization %s by %s: %s", e.Decision.Effect, e.Decision.Source, e.Decision.Reason)
}

// ErrDenied matches any authorization denial via errors.Is.
var ErrDenied = errors.New("authorization denied")

// Is implements errors.Is support: denials match ErrDenied.
func (e *AuthorizationError) Is(target error) bool {
	return target == ErrDenied && e.Decision.Effect == Deny
}

// CheckDecision converts a decision to an error: nil for permits, an
// *AuthorizationError otherwise.
func CheckDecision(d Decision) error {
	if d.Effect == Permit {
		return nil
	}
	return &AuthorizationError{Decision: d}
}
