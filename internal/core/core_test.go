package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"gridauth/internal/gsi"
	"gridauth/internal/policy"
	"gridauth/internal/rsl"
)

const (
	bo   = gsi.DN("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu")
	kate = gsi.DN("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey")
)

func permitAll(name string) PDP {
	return PDPFunc{ID: name, Fn: func(*Request) Decision { return PermitDecision(name, "ok") }}
}

func denyAll(name string) PDP {
	return PDPFunc{ID: name, Fn: func(*Request) Decision { return DenyDecision(name, "no") }}
}

func errorAll(name string) PDP {
	return PDPFunc{ID: name, Fn: func(*Request) Decision { return ErrorDecision(name, "boom") }}
}

func abstainAll(name string) PDP {
	return PDPFunc{ID: name, Fn: func(*Request) Decision { return AbstainDecision(name, "nothing to say") }}
}

func TestCombineRequireAllPermit(t *testing.T) {
	req := &Request{Subject: bo, Action: policy.ActionStart}
	tests := []struct {
		name string
		pdps []PDP
		want Effect
	}{
		{"both permit", []PDP{permitAll("vo"), permitAll("local")}, Permit},
		{"vo denies", []PDP{denyAll("vo"), permitAll("local")}, Deny},
		{"local denies", []PDP{permitAll("vo"), denyAll("local")}, Deny},
		{"error dominates", []PDP{permitAll("vo"), errorAll("local")}, Error},
		{"empty denies", nil, Deny},
		{"abstention does not veto", []PDP{permitAll("vo"), abstainAll("local")}, Permit},
		{"abstentions alone deny (default deny)", []PDP{abstainAll("vo"), abstainAll("local")}, Deny},
		{"abstention plus deny denies", []PDP{abstainAll("vo"), denyAll("local")}, Deny},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := NewCombined(RequireAllPermit, tt.pdps...).Authorize(req)
			if d.Effect != tt.want {
				t.Errorf("Effect = %v, want %v (%s)", d.Effect, tt.want, d.Reason)
			}
		})
	}
}

func TestCombineOtherModes(t *testing.T) {
	req := &Request{Subject: bo, Action: policy.ActionStart}
	tests := []struct {
		mode CombineMode
		pdps []PDP
		want Effect
	}{
		{DenyOverrides, []PDP{permitAll("a"), denyAll("b")}, Deny},
		{DenyOverrides, []PDP{permitAll("a"), permitAll("b")}, Permit},
		{DenyOverrides, []PDP{errorAll("a"), permitAll("b")}, Error},
		{PermitOverrides, []PDP{denyAll("a"), permitAll("b")}, Permit},
		{PermitOverrides, []PDP{denyAll("a"), denyAll("b")}, Deny},
		{FirstApplicable, []PDP{errorAll("a"), denyAll("b"), permitAll("c")}, Deny},
		{FirstApplicable, []PDP{errorAll("a"), permitAll("b")}, Permit},
		{FirstApplicable, []PDP{errorAll("a")}, Deny},
		{FirstApplicable, []PDP{abstainAll("a"), permitAll("b")}, Permit},
		{DenyOverrides, []PDP{abstainAll("a"), permitAll("b")}, Permit},
		{PermitOverrides, []PDP{abstainAll("a"), denyAll("b")}, Deny},
	}
	for _, tt := range tests {
		d := NewCombined(tt.mode, tt.pdps...).Authorize(req)
		if d.Effect != tt.want {
			t.Errorf("%s: Effect = %v, want %v", tt.mode, d.Effect, tt.want)
		}
	}
}

func TestPolicyPDP(t *testing.T) {
	pol := policy.MustParse(`
/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu: &(action = start)(executable = test1)
`, "VO:NFC")
	pdp := &PolicyPDP{Policy: pol}
	ok := &Request{Subject: bo, Action: policy.ActionStart, Spec: rsl.NewSpec().Set("executable", "test1")}
	if d := pdp.Authorize(ok); d.Effect != Permit {
		t.Errorf("permit expected: %s", d.Reason)
	}
	bad := &Request{Subject: bo, Action: policy.ActionStart, Spec: rsl.NewSpec().Set("executable", "rm")}
	if d := pdp.Authorize(bad); d.Effect != Deny {
		t.Errorf("deny expected")
	}
	if !strings.HasPrefix(pdp.Name(), "policy:") {
		t.Errorf("Name = %q", pdp.Name())
	}
}

func TestPolicyPDPAbstains(t *testing.T) {
	// A restrictions-only policy (the resource owner's typical shape)
	// abstains when its requirements are met and denies when violated.
	local := &PolicyPDP{Policy: policy.MustParse(`
/O=Grid: &(action = start)(queue != fast)
`, "local")}
	okReq := &Request{Subject: bo, Action: policy.ActionStart, Spec: rsl.NewSpec().Set("executable", "x")}
	if d := local.Authorize(okReq); d.Effect != NotApplicable {
		t.Errorf("restrictions-only policy: got %v, want NotApplicable", d.Effect)
	}
	badReq := &Request{Subject: bo, Action: policy.ActionStart,
		Spec: rsl.NewSpec().Set("executable", "x").Set("queue", "fast")}
	if d := local.Authorize(badReq); d.Effect != Deny {
		t.Errorf("violated requirement: got %v, want Deny", d.Effect)
	}
	// Combined with a granting VO policy, the owner's restrictions veto
	// without being required to grant.
	voPDP := &PolicyPDP{Policy: policy.MustParse(`
/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu: &(action = start)(executable = x)
`, "VO")}
	both := NewCombined(RequireAllPermit, voPDP, local)
	if d := both.Authorize(okReq); d.Effect != Permit {
		t.Errorf("VO grant + owner abstain: got %v (%s)", d.Effect, d.Reason)
	}
	if d := both.Authorize(badReq); d.Effect != Deny {
		t.Errorf("VO grant + owner veto: got %v", d.Effect)
	}
}

func TestSelfOnlyPDP(t *testing.T) {
	pdp := SelfOnlyPDP{}
	own := &Request{Subject: bo, Action: policy.ActionCancel, JobOwner: bo}
	if d := pdp.Authorize(own); d.Effect != Permit {
		t.Errorf("initiator cancel denied: %s", d.Reason)
	}
	other := &Request{Subject: kate, Action: policy.ActionCancel, JobOwner: bo}
	if d := pdp.Authorize(other); d.Effect != Deny {
		t.Errorf("non-initiator cancel permitted")
	}
	start := &Request{Subject: bo, Action: policy.ActionStart}
	if d := pdp.Authorize(start); d.Effect != Deny {
		t.Errorf("JM self-only PDP should not authorize startup")
	}
}

func TestRegistryConfigFile(t *testing.T) {
	dir := t.TempDir()
	polPath := filepath.Join(dir, "vo.policy")
	polText := `/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu: &(action = start)(executable = test1)`
	if err := os.WriteFile(polPath, []byte(polText), 0o600); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	RegisterBuiltinDrivers(r)
	cfg := `
# GRAM authorization callout configuration
` + CalloutJobManager + ` plainfile path=` + polPath + ` source=VO:NFC
`
	if err := r.LoadConfigString(cfg); err != nil {
		t.Fatal(err)
	}
	if !r.Configured(CalloutJobManager) {
		t.Fatalf("callout not configured")
	}
	req := &Request{Subject: bo, Action: policy.ActionStart, Spec: rsl.NewSpec().Set("executable", "test1")}
	if d := r.Invoke(CalloutJobManager, req); d.Effect != Permit {
		t.Errorf("Invoke = %v: %s", d.Effect, d.Reason)
	}
	// The bound PDP is also reachable as a PDP value.
	if d := r.PDP(CalloutJobManager).Authorize(req); d.Effect != Permit {
		t.Errorf("PDP() route failed")
	}
}

func TestRegistryInlineAndAPI(t *testing.T) {
	r := NewRegistry()
	RegisterBuiltinDrivers(r)
	err := r.LoadConfigString(CalloutJobManager + ` plainfile inline="/O=Grid:" source=x`)
	if err == nil {
		t.Errorf("inline with spaces should fail field splitting or parsing")
	}
	// API binding path.
	r.Bind(CalloutJobManager, SelfOnlyPDP{})
	req := &Request{Subject: bo, Action: policy.ActionCancel, JobOwner: bo}
	if d := r.Invoke(CalloutJobManager, req); d.Effect != Permit {
		t.Errorf("API-bound callout not used: %s", d.Reason)
	}
	r.Unbind(CalloutJobManager)
	if r.Configured(CalloutJobManager) {
		t.Errorf("Unbind did not clear")
	}
}

func TestRegistryErrors(t *testing.T) {
	r := NewRegistry()
	RegisterBuiltinDrivers(r)
	cases := []string{
		`only-one-field`,
		CalloutJobManager + ` nosuchdriver`,
		CalloutJobManager + ` plainfile`,                      // missing params
		CalloutJobManager + ` plainfile path=/does/not/exist`, // bad file
		CalloutJobManager + ` plainfile =v`,                   // malformed param
	}
	for _, c := range cases {
		if err := r.LoadConfigString(c); err == nil {
			t.Errorf("LoadConfigString(%q): expected error", c)
		} else {
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Errorf("LoadConfigString(%q): %v is not a *ConfigError", c, err)
			}
		}
	}
}

func TestUnconfiguredCalloutFailsClosed(t *testing.T) {
	r := NewRegistry()
	req := &Request{Subject: bo, Action: policy.ActionStart}
	d := r.Invoke(CalloutJobManager, req)
	if d.Effect != Error {
		t.Errorf("unconfigured callout: Effect = %v, want Error", d.Effect)
	}
}

func TestCheckDecisionAndErrors(t *testing.T) {
	if err := CheckDecision(PermitDecision("x", "ok")); err != nil {
		t.Errorf("permit produced error: %v", err)
	}
	err := CheckDecision(DenyDecision("vo", "count too high"))
	if err == nil {
		t.Fatalf("deny produced nil error")
	}
	if !errors.Is(err, ErrDenied) {
		t.Errorf("deny does not match ErrDenied")
	}
	var ae *AuthorizationError
	if !errors.As(err, &ae) || ae.Decision.Source != "vo" {
		t.Errorf("error lost decision detail: %v", err)
	}
	sysErr := CheckDecision(ErrorDecision("vo", "backend down"))
	if errors.Is(sysErr, ErrDenied) {
		t.Errorf("system failure must not match ErrDenied")
	}
}

// Property: under RequireAllPermit, adding a DENYING PDP can never turn
// a Deny into a Permit, a deny anywhere forces Deny, and a Permit
// requires at least one permit with zero denies.
func TestQuickRequireAllMonotone(t *testing.T) {
	req := &Request{Subject: bo, Action: policy.ActionStart}
	build := func(votes []uint8) ([]PDP, int, int) {
		var (
			pdps            []PDP
			permits, denies int
		)
		for i, v := range votes {
			name := "p" + string(rune('0'+i%10))
			switch v % 3 {
			case 0:
				pdps = append(pdps, permitAll(name))
				permits++
			case 1:
				pdps = append(pdps, denyAll(name))
				denies++
			default:
				pdps = append(pdps, abstainAll(name))
			}
		}
		return pdps, permits, denies
	}
	f := func(votes []uint8) bool {
		pdps, permits, denies := build(votes)
		got := NewCombined(RequireAllPermit, pdps...).Authorize(req)
		want := Deny
		if denies == 0 && permits > 0 {
			want = Permit
		}
		if got.Effect != want {
			return false
		}
		// Adding a deny always yields Deny.
		withDeny := NewCombined(RequireAllPermit, append(pdps, denyAll("extra"))...).Authorize(req)
		return withDeny.Effect == Deny
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
