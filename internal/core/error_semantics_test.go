package core

import (
	"fmt"
	"testing"

	"gridauth/internal/policy"
)

// TestCombinersErrorSemantics pins down how an Error decision — the
// paper's "authorization system failure" class, and the effect every
// resilience degradation (timeout, open breaker) collapses into —
// propagates through BOTH combiners under EVERY combination mode. The
// two combiners must agree case by case: the parallel combiner's whole
// correctness claim is "same decision as sequential, sooner".
func TestCombinersErrorSemantics(t *testing.T) {
	req := &Request{Subject: bo, Action: policy.ActionStart}
	chains := []struct {
		name string
		pdps func() []PDP
		want map[CombineMode]Effect
	}{
		{
			name: "error alone",
			pdps: func() []PDP { return []PDP{errorAll("vo")} },
			want: map[CombineMode]Effect{
				RequireAllPermit: Error,
				DenyOverrides:    Error,
				PermitOverrides:  Error,
				FirstApplicable:  Deny, // no applicable decision -> default deny
			},
		},
		{
			name: "error then permit",
			pdps: func() []PDP { return []PDP{errorAll("vo"), permitAll("local")} },
			want: map[CombineMode]Effect{
				RequireAllPermit: Error,
				DenyOverrides:    Error,
				PermitOverrides:  Permit,
				FirstApplicable:  Permit,
			},
		},
		{
			name: "permit then error",
			pdps: func() []PDP { return []PDP{permitAll("vo"), errorAll("local")} },
			want: map[CombineMode]Effect{
				RequireAllPermit: Error,
				DenyOverrides:    Error,
				PermitOverrides:  Permit,
				FirstApplicable:  Permit,
			},
		},
		{
			name: "error then deny",
			pdps: func() []PDP { return []PDP{errorAll("vo"), denyAll("local")} },
			want: map[CombineMode]Effect{
				RequireAllPermit: Error,
				DenyOverrides:    Error,
				PermitOverrides:  Error, // first non-permit wins; the error came first
				FirstApplicable:  Deny,
			},
		},
		{
			name: "deny then error",
			pdps: func() []PDP { return []PDP{denyAll("vo"), errorAll("local")} },
			want: map[CombineMode]Effect{
				RequireAllPermit: Deny, // the deny resolves before the error is needed
				DenyOverrides:    Deny,
				PermitOverrides:  Deny,
				FirstApplicable:  Deny,
			},
		},
		{
			name: "abstain then error",
			pdps: func() []PDP { return []PDP{abstainAll("vo"), errorAll("local")} },
			want: map[CombineMode]Effect{
				RequireAllPermit: Error,
				DenyOverrides:    Error,
				PermitOverrides:  Error,
				FirstApplicable:  Deny,
			},
		},
	}
	combiners := []struct {
		name  string
		build func(CombineMode, ...PDP) PDP
	}{
		{"sequential", func(m CombineMode, pdps ...PDP) PDP { return NewCombined(m, pdps...) }},
		{"parallel", func(m CombineMode, pdps ...PDP) PDP { return NewParallelCombined(m, pdps...) }},
	}
	modes := []CombineMode{RequireAllPermit, DenyOverrides, PermitOverrides, FirstApplicable}
	for _, comb := range combiners {
		for _, chain := range chains {
			for _, mode := range modes {
				t.Run(fmt.Sprintf("%s/%s/%s", comb.name, chain.name, mode), func(t *testing.T) {
					d := comb.build(mode, chain.pdps()...).Authorize(req)
					if d.Effect != chain.want[mode] {
						t.Fatalf("Effect = %v (%s: %s), want %v", d.Effect, d.Source, d.Reason, chain.want[mode])
					}
				})
			}
		}
	}
}

// TestCombinersErrorShortCircuitsSideEffects covers the lazy
// EffectfulPDP path under failure: when an earlier source answers Error,
// a side-effecting PDP later in the chain (the allocation PDP's
// position) must not run at all — in either combiner — because its
// effect (a budget reservation) would be attached to a request that is
// about to be refused, and nothing would ever release it.
func TestCombinersErrorShortCircuitsSideEffects(t *testing.T) {
	req := &Request{Subject: bo, Action: policy.ActionStart}
	for _, comb := range []struct {
		name  string
		build func(CombineMode, ...PDP) PDP
	}{
		{"sequential", func(m CombineMode, pdps ...PDP) PDP { return NewCombined(m, pdps...) }},
		{"parallel", func(m CombineMode, pdps ...PDP) PDP { return NewParallelCombined(m, pdps...) }},
	} {
		t.Run(comb.name, func(t *testing.T) {
			eff := newEffectPDP("alloc", true, PermitDecision("alloc", "reserved"))
			d := comb.build(RequireAllPermit, errorAll("vo"), eff).Authorize(req)
			if d.Effect != Error {
				t.Fatalf("Effect = %v, want Error", d.Effect)
			}
			if n := eff.calls.Load(); n != 0 {
				t.Fatalf("side-effecting PDP ran %d times behind an Error, want 0", n)
			}
		})
	}
}
