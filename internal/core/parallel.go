package core

import (
	"context"
	"strings"

	"gridauth/internal/obs"
)

// ContextPDP is a PDP that can observe cancellation. The parallel
// combiner cancels the evaluation context as soon as the combined
// decision is determined, so a context-aware PDP representing an
// expensive remote callout (Akenti, CAS) can abandon work whose result
// can no longer matter. Implementing it is optional: plain PDPs are
// simply run to completion and their late results discarded.
type ContextPDP interface {
	PDP
	// AuthorizeContext decides the request, honouring ctx cancellation.
	// A PDP that aborts on cancellation should return an Error decision
	// (authorization system failure), never a Permit.
	AuthorizeContext(ctx context.Context, req *Request) Decision
}

// AuthorizeWithContext dispatches to AuthorizeContext when the PDP
// supports it and to Authorize otherwise.
func AuthorizeWithContext(ctx context.Context, p PDP, req *Request) Decision {
	if cp, ok := p.(ContextPDP); ok {
		return cp.AuthorizeContext(ctx, req)
	}
	return p.Authorize(req)
}

// EffectfulPDP is optionally implemented by PDPs whose evaluation
// mutates state — reserving allocation budget, leasing accounts. Such a
// PDP must only be evaluated when sequential combination would have
// evaluated it: speculative evaluation would fire the side effect for
// requests an earlier source already rejected, and a cache hit would
// skip it entirely. ParallelCombined therefore never fans a
// side-effecting child out eagerly (it evaluates it in combination
// order, only if reached), and enforcement points must keep such PDPs
// out of cached chains (see CachedPDP).
type EffectfulPDP interface {
	PDP
	// SideEffecting reports whether evaluating this PDP mutates state.
	SideEffecting() bool
}

// IsSideEffecting reports whether p declares evaluation side effects.
func IsSideEffecting(p PDP) bool {
	e, ok := p.(EffectfulPDP)
	return ok && e.SideEffecting()
}

// NonBlockingPDP is optionally implemented by PDPs whose evaluation is
// purely in-process — no network round trip, no I/O, no waiting on
// other goroutines — and therefore cannot hang. Timeout wrappers
// (internal/resilience) skip their deadline machinery for such PDPs: a
// per-callout deadline exists to bound evaluations that might outlive
// it, and arming one around a microsecond-scale memory computation is
// pure overhead. Declaring it waives the timeout entirely, so only a
// PDP that provably cannot block should.
type NonBlockingPDP interface {
	PDP
	// NonBlocking reports that evaluation cannot block.
	NonBlocking() bool
}

// IsNonBlocking reports whether p declares itself non-blocking.
func IsNonBlocking(p PDP) bool {
	nb, ok := p.(NonBlockingPDP)
	return ok && nb.NonBlocking()
}

// ParallelCombined is a PDP that merges the decisions of several PDPs
// like Combined, but evaluates the children concurrently: one goroutine
// per child, with the results consumed strictly in configuration order
// by the same resolution logic Combined uses. Consuming in order makes
// the combined decision identical to sequential combination for
// deterministic children — including which child's deny or error is
// reported — while the wall-clock cost drops from the SUM of the
// children's latencies to (roughly) the MAX over the prefix that
// determines the outcome. Under RequireAllPermit with all children
// permitting, that is the latency of the slowest child.
//
// Early exit: the moment the resolver returns (e.g. first deny under
// RequireAllPermit, first permit under PermitOverrides), the evaluation
// context is cancelled so ContextPDP children still running can abort.
//
// Side-effecting children (EffectfulPDP) are excluded from the eager
// fan-out: they are evaluated synchronously, in combination order, only
// when the resolver actually reaches them — i.e. exactly when
// sequential evaluation would have run them. An allocation PDP that
// reserves budget on evaluation therefore never reserves for a request
// an earlier source already denied.
type ParallelCombined struct {
	mode CombineMode
	pdps []PDP
}

// NewParallelCombined builds a concurrent combining PDP. With no
// children it denies everything (default deny), like NewCombined.
func NewParallelCombined(mode CombineMode, pdps ...PDP) *ParallelCombined {
	return &ParallelCombined{mode: mode, pdps: append([]PDP(nil), pdps...)}
}

var _ ContextPDP = (*ParallelCombined)(nil)

// Name implements PDP.
func (c *ParallelCombined) Name() string {
	names := make([]string, len(c.pdps))
	for i, p := range c.pdps {
		names[i] = p.Name()
	}
	return "parallel-" + c.mode.String() + "(" + strings.Join(names, ",") + ")"
}

// Authorize implements PDP.
func (c *ParallelCombined) Authorize(req *Request) Decision {
	return c.AuthorizeContext(context.Background(), req)
}

// AuthorizeContext implements ContextPDP: it fans the children out and
// resolves their decisions in configuration order.
func (c *ParallelCombined) AuthorizeContext(ctx context.Context, req *Request) Decision {
	n := len(c.pdps)
	if n == 0 {
		return DenyDecision(c.Name(), "no policy decision points configured (default deny)")
	}
	if n == 1 {
		// Nothing to parallelize; skip the goroutine machinery.
		return combineDecisions(c.mode, c.Name, 1, func(int) Decision {
			return AuthorizeWithContext(ctx, c.pdps[0], req)
		})
	}
	if tr := obs.TraceFrom(ctx); tr != nil {
		tr.SetParallel()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]Decision, n)
	done := make([]chan struct{}, n)
	for i := range c.pdps {
		if IsSideEffecting(c.pdps[i]) {
			// Left to the resolver below: a side-effecting child may only
			// run once every earlier child has been consumed without
			// determining the outcome, or its effect (e.g. an allocation
			// reservation) would fire for requests sequential evaluation
			// would never have shown it.
			continue
		}
		done[i] = make(chan struct{})
		go func(i int) {
			defer close(done[i])
			results[i] = AuthorizeWithContext(ctx, c.pdps[i], req)
		}(i)
	}
	return combineDecisions(c.mode, c.Name, n, func(i int) Decision {
		if done[i] == nil {
			return AuthorizeWithContext(ctx, c.pdps[i], req)
		}
		<-done[i]
		return results[i]
	})
}
