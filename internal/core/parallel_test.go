package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridauth/internal/policy"
)

// pdpOutcome enumerates the four decision shapes a child can produce.
var pdpOutcomes = []struct {
	tag  string
	make func(name string) PDP
}{
	{"P", permitAll},
	{"D", denyAll},
	{"E", errorAll},
	{"A", abstainAll},
}

var allModes = []CombineMode{RequireAllPermit, DenyOverrides, PermitOverrides, FirstApplicable}

// TestParallelEquivalence checks that ParallelCombined produces the
// EXACT decision (effect, source and reason) Combined produces, for
// every permutation of child outcomes of length 0..3 under every
// combination mode. With deterministic children, which child's deny or
// error gets reported is part of the contract — parallel evaluation
// must not change it.
func TestParallelEquivalence(t *testing.T) {
	req := &Request{Subject: bo, Action: policy.ActionStart}
	var cases [][]int // indices into pdpOutcomes
	cases = append(cases, nil)
	for a := range pdpOutcomes {
		cases = append(cases, []int{a})
		for b := range pdpOutcomes {
			cases = append(cases, []int{a, b})
			for c := range pdpOutcomes {
				cases = append(cases, []int{a, b, c})
			}
		}
	}
	for _, mode := range allModes {
		for _, perm := range cases {
			tag := ""
			pdps := make([]PDP, len(perm))
			for i, oi := range perm {
				o := pdpOutcomes[oi]
				tag += o.tag
				pdps[i] = o.make(fmt.Sprintf("p%d", i))
			}
			t.Run(fmt.Sprintf("%s/%s", mode, tag), func(t *testing.T) {
				seq := NewCombined(mode, pdps...).Authorize(req)
				par := NewParallelCombined(mode, pdps...).Authorize(req)
				if par.Effect != seq.Effect || par.Reason != seq.Reason {
					t.Errorf("parallel = (%v, %q, %q), sequential = (%v, %q, %q)",
						par.Effect, par.Source, par.Reason, seq.Effect, seq.Source, seq.Reason)
				}
				// Sources differ only by the combiner's own label (the
				// parallel one carries a "parallel-" prefix); a decision
				// attributed to a CHILD (p0/p1/p2) must name the same child.
				if len(seq.Source) == 2 && seq.Source[0] == 'p' && par.Source != seq.Source {
					t.Errorf("attributed source: parallel %q, sequential %q", par.Source, seq.Source)
				}
			})
		}
	}
}

// slowPDP sleeps before answering, simulating a remote callout.
type slowPDP struct {
	name  string
	delay time.Duration
	d     Decision
}

func (p *slowPDP) Name() string { return p.name }
func (p *slowPDP) Authorize(*Request) Decision {
	time.Sleep(p.delay)
	return p.d
}

// TestParallelConcurrency verifies the chain actually overlaps child
// evaluation: four children sleeping 30ms each must finish well under
// the 120ms a sequential pass needs.
func TestParallelConcurrency(t *testing.T) {
	const delay = 30 * time.Millisecond
	var pdps []PDP
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("slow%d", i)
		pdps = append(pdps, &slowPDP{name: name, delay: delay, d: PermitDecision(name, "ok")})
	}
	req := &Request{Subject: bo, Action: policy.ActionStart}
	start := time.Now()
	d := NewParallelCombined(RequireAllPermit, pdps...).Authorize(req)
	elapsed := time.Since(start)
	if d.Effect != Permit {
		t.Fatalf("Effect = %v (%s)", d.Effect, d.Reason)
	}
	if elapsed >= 4*delay {
		t.Errorf("parallel chain took %v, not faster than sequential %v", elapsed, 4*delay)
	}
}

// blockingPDP is a ContextPDP that blocks until its context is
// cancelled, recording that the cancellation arrived.
type blockingPDP struct {
	name      string
	cancelled atomic.Bool
}

func (p *blockingPDP) Name() string { return p.name }
func (p *blockingPDP) Authorize(*Request) Decision {
	return ErrorDecision(p.name, "called without context")
}
func (p *blockingPDP) AuthorizeContext(ctx context.Context, _ *Request) Decision {
	<-ctx.Done()
	p.cancelled.Store(true)
	return ErrorDecision(p.name, "cancelled")
}

// TestParallelEarlyExitCancels verifies that once the combined outcome
// is determined (first deny under RequireAllPermit), the evaluation
// context is cancelled so still-running context-aware children abort
// instead of completing doomed work.
func TestParallelEarlyExitCancels(t *testing.T) {
	blocker := &blockingPDP{name: "slow-remote"}
	chain := NewParallelCombined(RequireAllPermit, denyAll("vo"), blocker)
	req := &Request{Subject: bo, Action: policy.ActionStart}
	done := make(chan Decision, 1)
	go func() { done <- chain.Authorize(req) }()
	select {
	case d := <-done:
		if d.Effect != Deny {
			t.Fatalf("Effect = %v, want Deny", d.Effect)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("combined decision never returned: early exit did not cancel the blocking child")
	}
	// The blocker's goroutine observes cancellation asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for !blocker.cancelled.Load() {
		if time.Now().After(deadline) {
			t.Fatal("blocking child never observed cancellation")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestParallelOuterContextCancellation: cancelling the PEP's request
// context aborts context-aware children even when no child has decided.
func TestParallelOuterContextCancellation(t *testing.T) {
	blocker := &blockingPDP{name: "remote"}
	chain := NewParallelCombined(RequireAllPermit, blocker, blocker)
	ctx, cancel := context.WithCancel(context.Background())
	req := &Request{Subject: bo, Action: policy.ActionStart}
	done := make(chan Decision, 1)
	go func() { done <- chain.AuthorizeContext(ctx, req) }()
	cancel()
	select {
	case d := <-done:
		if d.Effect != Error {
			t.Errorf("cancelled evaluation must fail closed with Error, got %v", d.Effect)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not unblock the chain")
	}
}

// effectPDP counts evaluations and declares them side-effecting, like
// the allocation PDP reserving budget on evaluation.
type effectPDP struct {
	countingPDP
	effectful bool
}

func (p *effectPDP) SideEffecting() bool { return p.effectful }

func newEffectPDP(name string, effectful bool, d Decision) *effectPDP {
	p := &effectPDP{effectful: effectful}
	p.name = name
	p.d = func(*Request) Decision { return d }
	return p
}

// TestParallelSideEffectingNotSpeculated is the REVIEW.md regression:
// a side-effecting child (allocation reservation) bound after a denying
// source must NOT be evaluated by the parallel combiner — sequential
// RequireAllPermit evaluation would never reach it, and its effect
// (budget drained by a request that is never admitted) cannot be
// undone by discarding the decision.
func TestParallelSideEffectingNotSpeculated(t *testing.T) {
	req := &Request{Subject: bo, Action: policy.ActionStart}
	effect := newEffectPDP("alloc", true, AbstainDecision("alloc", "reserved"))
	d := NewParallelCombined(RequireAllPermit, permitAll("vo"), denyAll("local"), effect).Authorize(req)
	if d.Effect != Deny {
		t.Fatalf("Effect = %v, want Deny", d.Effect)
	}
	if n := effect.calls.Load(); n != 0 {
		t.Errorf("side-effecting child evaluated %d times on a denied request, want 0", n)
	}
	// When every earlier source accepts, the side-effecting child runs —
	// exactly once, as in sequential evaluation.
	d = NewParallelCombined(RequireAllPermit, permitAll("vo"), permitAll("local"), effect).Authorize(req)
	if d.Effect != Permit {
		t.Fatalf("Effect = %v (%s), want Permit", d.Effect, d.Reason)
	}
	if n := effect.calls.Load(); n != 1 {
		t.Errorf("side-effecting child evaluated %d times on a permitted request, want 1", n)
	}
	// An unmarked (effectful=false) child IS fanned out: the marker, not
	// the type, gates speculation.
	pure := newEffectPDP("pure", false, AbstainDecision("pure", "n/a"))
	NewParallelCombined(RequireAllPermit, denyAll("local"), pure).Authorize(req)
	if n := pure.calls.Load(); n != 1 {
		t.Errorf("pure child evaluated %d times, want 1 (eager fan-out)", n)
	}
}

// TestParallelSideEffectingMatchesSequential: for every prefix outcome
// and mode, the parallel combiner must evaluate a trailing
// side-effecting child exactly as often as the sequential combiner
// does, and produce the same decision.
func TestParallelSideEffectingMatchesSequential(t *testing.T) {
	req := &Request{Subject: bo, Action: policy.ActionStart}
	for _, mode := range allModes {
		for _, o := range pdpOutcomes {
			seqEff := newEffectPDP("alloc", true, AbstainDecision("alloc", "reserved"))
			parEff := newEffectPDP("alloc", true, AbstainDecision("alloc", "reserved"))
			prefix := o.make("p0")
			seq := NewCombined(mode, prefix, seqEff).Authorize(req)
			par := NewParallelCombined(mode, prefix, parEff).Authorize(req)
			if seq.Effect != par.Effect || seq.Reason != par.Reason {
				t.Errorf("%s/%s: parallel = (%v, %q), sequential = (%v, %q)",
					mode, o.tag, par.Effect, par.Reason, seq.Effect, seq.Reason)
			}
			if s, p := seqEff.calls.Load(), parEff.calls.Load(); s != p {
				t.Errorf("%s/%s: side-effecting child evaluated %d times in parallel, %d sequentially", mode, o.tag, p, s)
			}
		}
	}
}

// TestParallelEmptyDefaultDeny mirrors the sequential default-deny rule.
func TestParallelEmptyDefaultDeny(t *testing.T) {
	d := NewParallelCombined(RequireAllPermit).Authorize(&Request{Subject: bo})
	if d.Effect != Deny {
		t.Errorf("empty parallel chain: Effect = %v, want Deny", d.Effect)
	}
}

// TestParallelConcurrentDispatch hammers one chain from many
// goroutines; run under -race this is the data-race check for the
// fan-out machinery.
func TestParallelConcurrentDispatch(t *testing.T) {
	chain := NewParallelCombined(RequireAllPermit,
		permitAll("vo"), permitAll("local"), abstainAll("owner"))
	req := &Request{Subject: bo, Action: policy.ActionStart}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if d := chain.Authorize(req); d.Effect != Permit {
					t.Errorf("Effect = %v", d.Effect)
					return
				}
			}
		}()
	}
	wg.Wait()
}
