package core

import (
	"context"
	"time"

	"gridauth/internal/obs"
)

// tracedPDP decorates one callout-chain member with decision tracing:
// when the request context carries an obs.Trace, each evaluation is
// recorded as one span (name, effect, source, latency). The wrapper is
// transparent — it reports the inner PDP's name and forwards the
// side-effect and non-blocking capability declarations — so combiners
// treat the traced member exactly like the bare one. Every chain member
// is wrapped unconditionally on rebuild; the cost without a trace on
// the context is a single context lookup.
//
// The span is published on the evaluation context (obs.WithSpan) before
// the inner PDP runs, so layers below — the resilience wrapper sits
// between this wrapper and the raw PDP — can annotate retry counts and
// breaker state on the same goroutine. The span value is recorded on
// the trace only after evaluation finishes, so trace readers never see
// a span that is still being written.
type tracedPDP struct {
	inner       PDP
	ctxInner    ContextPDP // non-nil when inner is context-aware
	name        string
	effectful   bool
	nonBlocking bool
}

var (
	_ ContextPDP     = (*tracedPDP)(nil)
	_ EffectfulPDP   = (*tracedPDP)(nil)
	_ NonBlockingPDP = (*tracedPDP)(nil)
)

// traced wraps p for decision tracing. Capabilities are captured once:
// the wrapper must answer them without consulting the inner PDP on the
// hot path, and a combiner probing the wrapper must see exactly what
// the bare PDP would have declared (a side-effecting allocation PDP
// hidden behind an opaque wrapper would be fanned out eagerly —
// a correctness bug, not a performance one).
func traced(p PDP) PDP {
	t := &tracedPDP{
		inner:       p,
		name:        p.Name(),
		effectful:   IsSideEffecting(p),
		nonBlocking: IsNonBlocking(p),
	}
	if cp, ok := p.(ContextPDP); ok {
		t.ctxInner = cp
	}
	return t
}

// Name implements PDP; the wrapper is invisible in decision sources and
// span labels.
func (t *tracedPDP) Name() string { return t.name }

// SideEffecting implements EffectfulPDP by forwarding the inner
// declaration.
func (t *tracedPDP) SideEffecting() bool { return t.effectful }

// NonBlocking implements NonBlockingPDP by forwarding the inner
// declaration.
func (t *tracedPDP) NonBlocking() bool { return t.nonBlocking }

// Authorize implements PDP.
func (t *tracedPDP) Authorize(req *Request) Decision {
	return t.AuthorizeContext(context.Background(), req)
}

// AuthorizeContext implements ContextPDP.
func (t *tracedPDP) AuthorizeContext(ctx context.Context, req *Request) Decision {
	tr := obs.TraceFrom(ctx)
	if tr == nil {
		// Tracing not requested: stay off the span path entirely.
		if t.ctxInner != nil {
			return t.ctxInner.AuthorizeContext(ctx, req)
		}
		return t.inner.Authorize(req)
	}
	sp := &obs.Span{PDP: t.name}
	ctx = obs.WithSpan(ctx, sp)
	start := time.Now()
	var d Decision
	if t.ctxInner != nil {
		d = t.ctxInner.AuthorizeContext(ctx, req)
	} else {
		d = t.inner.Authorize(req)
	}
	sp.Effect = d.Effect.String()
	sp.Source = d.Source
	sp.Elapsed = time.Since(start)
	tr.Record(*sp)
	return d
}
