package core

import (
	"context"
	"testing"
	"time"

	"gridauth/internal/obs"
	"gridauth/internal/policy"
)

// sideEffectPDP is a test PDP declaring evaluation side effects.
type sideEffectPDP struct{ PDP }

func (p sideEffectPDP) SideEffecting() bool { return true }

// nonBlockingPDP is a test PDP declaring non-blocking evaluation.
type nonBlockingPDP struct{ PDP }

func (p nonBlockingPDP) NonBlocking() bool { return true }

func TestTracedTransparency(t *testing.T) {
	w := traced(sideEffectPDP{permitAll("alloc")})
	if w.Name() != "alloc" {
		t.Errorf("Name = %q, want inner name", w.Name())
	}
	if !IsSideEffecting(w) {
		t.Error("traced wrapper hides SideEffecting — parallel fan-out would run side effects speculatively")
	}
	if IsNonBlocking(w) {
		t.Error("traced wrapper invents NonBlocking")
	}
	w2 := traced(nonBlockingPDP{permitAll("fast")})
	if !IsNonBlocking(w2) {
		t.Error("traced wrapper hides NonBlocking")
	}
	if IsSideEffecting(w2) {
		t.Error("traced wrapper invents SideEffecting")
	}
}

func TestTracedRecordsSpans(t *testing.T) {
	reg := NewRegistry()
	reg.Bind(CalloutJobManager, permitAll("vo"))
	reg.Bind(CalloutJobManager, denyAll("local"))
	req := &Request{Subject: bo, Action: policy.ActionStart}

	// Without a trace on the context: plain dispatch, no panic, same
	// decision.
	if d := reg.Invoke(CalloutJobManager, req); d.Effect != Deny {
		t.Fatalf("untraced Effect = %v, want Deny", d.Effect)
	}

	tr := obs.NewTrace("rid-t", string(bo))
	ctx := obs.WithTrace(context.Background(), tr)
	d := reg.InvokeContext(ctx, CalloutJobManager, req)
	if d.Effect != Deny {
		t.Fatalf("Effect = %v, want Deny", d.Effect)
	}
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want one per PDP: %+v", len(spans), spans)
	}
	byPDP := make(map[string]obs.Span, len(spans))
	for _, sp := range spans {
		byPDP[sp.PDP] = sp
	}
	if sp := byPDP["vo"]; sp.Effect != "permit" {
		t.Errorf("vo span = %+v, want effect permit", sp)
	}
	if sp := byPDP["local"]; sp.Effect != "deny" || sp.Source != "local" {
		t.Errorf("local span = %+v, want effect deny source local", sp)
	}
}

func TestTracedParallelMarkerAndSpans(t *testing.T) {
	reg := NewRegistry()
	reg.Bind(CalloutJobManager, permitAll("vo"))
	reg.Bind(CalloutJobManager, permitAll("local"))
	reg.SetCalloutOptions(CalloutJobManager, CalloutOptions{Parallel: true})
	req := &Request{Subject: bo, Action: policy.ActionStart}

	tr := obs.NewTrace("rid-p", string(bo))
	ctx := obs.WithTrace(context.Background(), tr)
	if d := reg.InvokeContext(ctx, CalloutJobManager, req); d.Effect != Permit {
		t.Fatalf("Effect = %v, want Permit", d.Effect)
	}
	rec := tr.Snapshot()
	if !rec.Parallel {
		t.Error("parallel fan-out not marked on trace")
	}
	if len(rec.Spans) != 2 {
		t.Errorf("got %d spans, want 2: %+v", len(rec.Spans), rec.Spans)
	}
}

func TestTracedCacheHitSpan(t *testing.T) {
	m := obs.NewMetrics()
	reg := NewRegistry()
	reg.SetMetrics(m)
	reg.Bind(CalloutJobManager, permitAll("vo"))
	reg.SetCalloutOptions(CalloutJobManager, CalloutOptions{Cache: true})
	req := &Request{Subject: bo, Action: policy.ActionStart}

	// Miss, then hit.
	tr1 := obs.NewTrace("rid-1", string(bo))
	reg.InvokeContext(obs.WithTrace(context.Background(), tr1), CalloutJobManager, req)
	tr2 := obs.NewTrace("rid-2", string(bo))
	reg.InvokeContext(obs.WithTrace(context.Background(), tr2), CalloutJobManager, req)

	if got := len(tr1.Spans()); got != 1 {
		t.Fatalf("miss trace spans = %d, want 1", got)
	}
	if tr1.Spans()[0].CacheHit {
		t.Error("miss span marked CacheHit")
	}
	hit := tr2.Spans()
	if len(hit) != 1 || !hit[0].CacheHit || hit[0].Effect != "permit" {
		t.Errorf("hit trace spans = %+v, want one CacheHit permit span", hit)
	}
	if m.CacheHits.Load() != 1 || m.CacheMisses.Load() != 1 {
		t.Errorf("cache counters = %d hits / %d misses, want 1/1",
			m.CacheHits.Load(), m.CacheMisses.Load())
	}
}

func TestInvokeContextMetrics(t *testing.T) {
	m := obs.NewMetrics()
	reg := NewRegistry()
	reg.SetMetrics(m)
	reg.Bind(CalloutJobManager, permitAll("vo"))
	req := &Request{Subject: bo, Action: policy.ActionStart}

	reg.Invoke(CalloutJobManager, req)
	reg.Invoke("unconfigured", req)
	if m.DecisionsPermit.Load() != 1 {
		t.Errorf("permit counter = %d, want 1", m.DecisionsPermit.Load())
	}
	if m.DecisionsError.Load() != 1 {
		t.Errorf("error counter = %d, want 1 (unconfigured callout fails closed)", m.DecisionsError.Load())
	}
	if m.DecisionSeconds.Count() != 1 {
		t.Errorf("latency observations = %d, want 1 (unconfigured dispatch is not a chain evaluation)", m.DecisionSeconds.Count())
	}
	if m.DecisionSeconds.Sum() <= 0 {
		t.Error("latency sum not positive")
	}
	_ = time.Now
}
