// Package doclint checks that the repository's documentation does not
// drift from the code: every `internal/...` path it mentions must
// exist, every relative markdown link must resolve, and every
// `pkg.Symbol` (or `pkg.Type.Member`) reference written in code spans
// must name an exported declaration that the referenced package
// actually has. It runs as an ordinary test (doclint_test.go), so `go
// test ./...` — and therefore CI — fails on a dead reference.
package doclint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Problem is one dead reference found in a documentation file.
type Problem struct {
	File string
	Line int // 1-based line of the reference's first occurrence
	Ref  string
	Msg  string
}

// String renders the problem for test and lint-driver output.
func (p Problem) String() string {
	return fmt.Sprintf("%s:%d: %q: %s", p.File, p.Line, p.Ref, p.Msg)
}

// lineAt converts a byte offset in text to a 1-based line number.
func lineAt(text string, off int) int {
	return 1 + strings.Count(text[:off], "\n")
}

var (
	// internal/... source paths, optionally with a lower-case file
	// extension. A dot followed by an upper-case letter (as in
	// "internal/gram.TestFig1BaselineTrace") ends the path part.
	pathRef = regexp.MustCompile(`\binternal/[a-z0-9_/-]+(?:\.[a-z0-9_]+)?`)
	// Relative markdown links [text](target); anchors and absolute URLs
	// are skipped by the caller.
	linkRef = regexp.MustCompile(`\]\(([^()\s]+)\)`)
	// pkg.Symbol or pkg.Type.Member references, pkg being one of this
	// repository's package names.
	symbolRef = regexp.MustCompile(`\b([a-z][a-z0-9]*)\.([A-Z][A-Za-z0-9_]*)(?:\.([A-Z][A-Za-z0-9_]*))?`)
)

// pkgDecls is the exported surface of one package.
type pkgDecls struct {
	symbols map[string]bool            // top-level exported names
	members map[string]map[string]bool // type -> exported methods and fields
}

// Check scans the given documentation files (paths relative to root)
// and returns every dead reference found. root is the repository root.
func Check(root string, docs []string) ([]Problem, error) {
	pkgs, err := loadPackages(root)
	if err != nil {
		return nil, err
	}
	var problems []Problem
	for _, doc := range docs {
		data, err := os.ReadFile(filepath.Join(root, doc))
		if err != nil {
			return nil, err
		}
		text := string(data)
		problems = append(problems, checkPaths(root, doc, text)...)
		problems = append(problems, checkLinks(root, doc, text)...)
		problems = append(problems, checkSymbols(doc, text, pkgs)...)
	}
	return problems, nil
}

// DefaultDocs returns the documentation files Check covers by default:
// README.md, EXPERIMENTS.md and everything under docs/.
func DefaultDocs(root string) ([]string, error) {
	docs := []string{"README.md", "EXPERIMENTS.md"}
	entries, err := os.ReadDir(filepath.Join(root, "docs"))
	if err != nil {
		if os.IsNotExist(err) {
			return docs, nil
		}
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
			docs = append(docs, filepath.Join("docs", e.Name()))
		}
	}
	sort.Strings(docs)
	return docs, nil
}

func checkPaths(root, doc, text string) []Problem {
	var problems []Problem
	seen := map[string]bool{}
	for _, loc := range pathRef.FindAllStringIndex(text, -1) {
		ref := text[loc[0]:loc[1]]
		if seen[ref] {
			continue
		}
		seen[ref] = true
		if _, err := os.Stat(filepath.Join(root, ref)); err != nil {
			problems = append(problems, Problem{File: doc, Line: lineAt(text, loc[0]), Ref: ref, Msg: "path does not exist"})
		}
	}
	return problems
}

func checkLinks(root, doc, text string) []Problem {
	var problems []Problem
	for _, m := range linkRef.FindAllStringSubmatchIndex(text, -1) {
		target := text[m[2]:m[3]]
		raw := target
		if strings.Contains(target, "://") || strings.HasPrefix(target, "#") || strings.HasPrefix(target, "mailto:") {
			continue
		}
		target, _, _ = strings.Cut(target, "#")
		if target == "" {
			continue
		}
		resolved := filepath.Join(root, filepath.Dir(doc), target)
		if _, err := os.Stat(resolved); err != nil {
			problems = append(problems, Problem{File: doc, Line: lineAt(text, m[0]), Ref: raw, Msg: "link target does not exist"})
		}
	}
	return problems
}

func checkSymbols(doc, text string, pkgs map[string]*pkgDecls) []Problem {
	var problems []Problem
	seen := map[string]bool{}
	for _, m := range symbolRef.FindAllStringSubmatchIndex(text, -1) {
		group := func(i int) string {
			if m[2*i] < 0 {
				return ""
			}
			return text[m[2*i]:m[2*i+1]]
		}
		ref, pkg, sym, member := group(0), group(1), group(2), group(3)
		if seen[ref] {
			continue
		}
		seen[ref] = true
		decls, ok := pkgs[pkg]
		if !ok {
			continue // not one of this repository's packages (stdlib, prose)
		}
		if !decls.symbols[sym] {
			problems = append(problems, Problem{File: doc, Line: lineAt(text, m[0]), Ref: ref,
				Msg: fmt.Sprintf("package %s has no exported %s", pkg, sym)})
			continue
		}
		if member != "" && !decls.members[sym][member] {
			problems = append(problems, Problem{File: doc, Line: lineAt(text, m[0]), Ref: ref,
				Msg: fmt.Sprintf("%s.%s has no exported method or field %s", pkg, sym, member)})
		}
	}
	return problems
}

// loadPackages parses every package in the module (the root package and
// each internal/* directory) and collects its exported surface.
func loadPackages(root string) (map[string]*pkgDecls, error) {
	pkgs := map[string]*pkgDecls{}
	addDir := func(dir string) error {
		name, decls, err := parseDir(dir)
		if err != nil || name == "" {
			return err
		}
		if existing, ok := pkgs[name]; ok {
			// Same package name in two directories: merge surfaces.
			for s := range decls.symbols {
				existing.symbols[s] = true
			}
			for t, ms := range decls.members {
				if existing.members[t] == nil {
					existing.members[t] = ms
					continue
				}
				for m := range ms {
					existing.members[t][m] = true
				}
			}
			return nil
		}
		pkgs[name] = decls
		return nil
	}
	if err := addDir(root); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(filepath.Join(root, "internal"))
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			if err := addDir(filepath.Join(root, "internal", e.Name())); err != nil {
				return nil, err
			}
		}
	}
	return pkgs, nil
}

// parseDir parses the Go files of one directory — tests included, so
// documentation may reference test functions by name — and returns the
// package name and its exported declarations.
func parseDir(dir string) (string, *pkgDecls, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", nil, err
	}
	fset := token.NewFileSet()
	decls := &pkgDecls{symbols: map[string]bool{}, members: map[string]map[string]bool{}}
	pkgName := ""
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.SkipObjectResolution)
		if err != nil {
			return "", nil, err
		}
		// External test packages (pkg_test) document the same pkg.
		if name := strings.TrimSuffix(f.Name.Name, "_test"); pkgName == "" || !strings.HasSuffix(e.Name(), "_test.go") {
			pkgName = name
		}
		collectFile(f, decls)
	}
	return pkgName, decls, nil
}

func collectFile(f *ast.File, decls *pkgDecls) {
	addMember := func(typ, name string) {
		if !ast.IsExported(name) {
			return
		}
		if decls.members[typ] == nil {
			decls.members[typ] = map[string]bool{}
		}
		decls.members[typ][name] = true
	}
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			if d.Recv == nil {
				if ast.IsExported(d.Name.Name) {
					decls.symbols[d.Name.Name] = true
				}
				continue
			}
			if typ := recvTypeName(d.Recv); typ != "" {
				addMember(typ, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !ast.IsExported(s.Name.Name) {
						continue
					}
					decls.symbols[s.Name.Name] = true
					switch t := s.Type.(type) {
					case *ast.StructType:
						for _, field := range t.Fields.List {
							for _, n := range field.Names {
								addMember(s.Name.Name, n.Name)
							}
						}
					case *ast.InterfaceType:
						for _, method := range t.Methods.List {
							for _, n := range method.Names {
								addMember(s.Name.Name, n.Name)
							}
						}
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if ast.IsExported(n.Name) {
							decls.symbols[n.Name] = true
						}
					}
				}
			}
		}
	}
}

func recvTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.Name
	}
	return ""
}
