package doclint

import (
	"os"
	"path/filepath"
	"testing"
)

// repoRoot is the module root relative to this package directory.
const repoRoot = "../.."

// TestDocsHaveNoDeadReferences is the doc-link check itself: it fails
// the build when README.md, EXPERIMENTS.md or anything under docs/
// references a package path, symbol or file that does not exist.
func TestDocsHaveNoDeadReferences(t *testing.T) {
	docs, err := DefaultDocs(repoRoot)
	if err != nil {
		t.Fatalf("DefaultDocs: %v", err)
	}
	if len(docs) < 3 {
		t.Fatalf("expected README.md, EXPERIMENTS.md and docs/*.md, got %v", docs)
	}
	problems, err := Check(repoRoot, docs)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	for _, p := range problems {
		t.Errorf("dead reference: %s", p)
	}
}

// TestCheckDetectsDeadReferences proves the checker actually catches
// each class of drift, so a green TestDocsHaveNoDeadReferences means
// something.
func TestCheckDetectsDeadReferences(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "internal", "widget"), 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package widget

type Gadget struct{ Size int }

func (g *Gadget) Spin() {}

func New() *Gadget { return nil }
`
	if err := os.WriteFile(filepath.Join(dir, "internal", "widget", "widget.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "root.go"), []byte("package mainpkg\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := "See `internal/widget` and `internal/gone`.\n" +
		"Good: `widget.New`, `widget.Gadget.Spin`, `widget.Gadget.Size`.\n" +
		"Bad: `widget.Missing` and `widget.Gadget.Fly`.\n" +
		"Link: [ok](root.go) and [broken](nowhere.md).\n" +
		"Ignored: `fmt.Println` is not ours.\n"
	if err := os.WriteFile(filepath.Join(dir, "GUIDE.md"), []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}

	problems, err := Check(dir, []string{"GUIDE.md"})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	// Reference -> the GUIDE.md line it appears on (0 = not yet seen).
	wantLine := map[string]int{
		"internal/gone":     1,
		"widget.Missing":    3,
		"widget.Gadget.Fly": 3,
		"nowhere.md":        4,
	}
	found := map[string]bool{}
	for _, p := range problems {
		line, ok := wantLine[p.Ref]
		if !ok {
			t.Errorf("unexpected problem: %s", p)
			continue
		}
		if p.Line != line {
			t.Errorf("%q reported at line %d, want %d", p.Ref, p.Line, line)
		}
		found[p.Ref] = true
	}
	for ref := range wantLine {
		if !found[ref] {
			t.Errorf("checker missed dead reference %q", ref)
		}
	}
}

// TestCheckAcceptsCleanDocs pins the negative direction explicitly: a
// document whose every reference resolves produces zero problems, so a
// finding from the real tree is always actionable.
func TestCheckAcceptsCleanDocs(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "internal", "widget"), 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package widget

type Gadget struct{ Size int }

func New() *Gadget { return nil }
`
	if err := os.WriteFile(filepath.Join(dir, "internal", "widget", "widget.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "root.go"), []byte("package mainpkg\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := "All good: `internal/widget`, `widget.New`, `widget.Gadget.Size`,\n" +
		"[a link](root.go), [an anchor](#section), and [external](https://example.com).\n" +
		"Prose like fmt.Println or a sentence ending in internal/widget.\n"
	if err := os.WriteFile(filepath.Join(dir, "GUIDE.md"), []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err := Check(dir, []string{"GUIDE.md"})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	for _, p := range problems {
		t.Errorf("clean doc flagged: %s", p)
	}
}
