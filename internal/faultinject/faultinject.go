// Package faultinject is the chaos harness for the authorization
// chain and its transport: a PDP wrapper that injects latency, errors
// and hangs into callout evaluation, and a net.Conn wrapper that
// fails reads and writes on schedule. Both are deterministic — the
// PDP wrapper draws from a caller-seeded source, the conn wrapper
// counts operations — so a soak test that found a bug replays it.
//
// Nothing in this package ships in a production configuration; it
// exists so the resilience layer (internal/resilience) and the GRAM
// degraded modes can be exercised under the failure conditions the
// paper's remote-PDP deployment model implies (Akenti and CAS callouts
// crossing the network).
package faultinject

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"gridauth/internal/core"
)

// PDPConfig selects the faults a ChaosPDP injects. Rates are
// probabilities in [0, 1], evaluated per call in order: hang, then
// error, then latency; a call that draws no fault passes through to
// the wrapped PDP.
type PDPConfig struct {
	// ErrorRate is the probability of answering with an injected Error
	// decision (the transient "authorization system failure" class).
	ErrorRate float64
	// HangRate is the probability of hanging: the call blocks until
	// its context is cancelled (a timeout wrapper's watchdog, the
	// request being abandoned) and then returns Error. A hang injected
	// into a context-free call blocks forever — exactly the failure
	// mode a deadline-less PEP cannot survive.
	HangRate float64
	// Latency is added to every passed-through call.
	Latency time.Duration
	// LatencyJitter adds up to this much more, uniformly.
	LatencyJitter time.Duration
}

// ChaosPDP wraps a PDP with configurable fault injection. The
// configuration is swappable at runtime (SetConfig), so a soak test
// can fail a backend hard and then heal it.
type ChaosPDP struct {
	inner core.PDP

	mu  sync.Mutex
	rng *rand.Rand
	cfg PDPConfig

	calls  atomic.Uint64
	errors atomic.Uint64
	hangs  atomic.Uint64
}

var _ core.ContextPDP = (*ChaosPDP)(nil)

// NewChaosPDP wraps inner, drawing fault rolls from a source seeded
// with seed.
func NewChaosPDP(inner core.PDP, seed int64, cfg PDPConfig) *ChaosPDP {
	return &ChaosPDP{inner: inner, rng: rand.New(rand.NewSource(seed)), cfg: cfg}
}

// SetConfig replaces the fault configuration (runtime heal/break).
func (c *ChaosPDP) SetConfig(cfg PDPConfig) {
	c.mu.Lock()
	c.cfg = cfg
	c.mu.Unlock()
}

// Stats reports calls seen, errors injected and hangs injected.
func (c *ChaosPDP) Stats() (calls, errors, hangs uint64) {
	return c.calls.Load(), c.errors.Load(), c.hangs.Load()
}

// Name implements core.PDP.
func (c *ChaosPDP) Name() string { return "chaos(" + c.inner.Name() + ")" }

// Authorize implements core.PDP. A hang drawn here blocks forever —
// use the context path unless that is the point of the test.
func (c *ChaosPDP) Authorize(req *core.Request) core.Decision {
	return c.AuthorizeContext(context.Background(), req)
}

// AuthorizeContext implements core.ContextPDP.
func (c *ChaosPDP) AuthorizeContext(ctx context.Context, req *core.Request) core.Decision {
	c.calls.Add(1)
	c.mu.Lock()
	cfg := c.cfg
	hangRoll := c.rng.Float64()
	errRoll := c.rng.Float64()
	jitterRoll := c.rng.Float64()
	c.mu.Unlock()

	if hangRoll < cfg.HangRate {
		c.hangs.Add(1)
		<-ctx.Done()
		return core.ErrorDecision(c.Name(), "injected hang aborted: "+ctx.Err().Error())
	}
	if errRoll < cfg.ErrorRate {
		c.errors.Add(1)
		return core.ErrorDecision(c.Name(), "injected authorization system failure")
	}
	if d := cfg.Latency + time.Duration(jitterRoll*float64(cfg.LatencyJitter)); d > 0 {
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return core.ErrorDecision(c.Name(), "request abandoned during injected latency: "+ctx.Err().Error())
		}
	}
	return core.AuthorizeWithContext(ctx, c.inner, req)
}

// Conn wraps a net-style connection (anything with Read/Write; the
// GSI handshake runs over io.ReadWriter) and fails operations on a
// deterministic schedule: the Nth read and/or Mth write returns
// ECONNRESET. Counts are 1-based; 0 means "never fail".
type Conn struct {
	// Inner is the wrapped connection.
	Inner interface {
		Read(p []byte) (int, error)
		Write(p []byte) (int, error)
	}
	// Err is the injected error (nil selects syscall.ECONNRESET).
	Err error

	reads     atomic.Int64
	writes    atomic.Int64
	failRead  int64
	failWrite int64
	failed    atomic.Bool
}

// NewConn wraps inner so that read number failAtRead and write number
// failAtWrite (1-based; 0 disables) fail with ECONNRESET, as does
// every operation after the first failure — a reset connection stays
// reset.
func NewConn(inner interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
}, failAtRead, failAtWrite int) *Conn {
	return &Conn{Inner: inner, failRead: int64(failAtRead), failWrite: int64(failAtWrite)}
}

func (c *Conn) err() error {
	if c.Err != nil {
		return c.Err
	}
	return syscall.ECONNRESET
}

// Read implements io.Reader with scheduled failure. A connection that
// failed in EITHER direction is reset: both directions fail from then
// on, matching what a real ECONNRESET does to a socket.
func (c *Conn) Read(p []byte) (int, error) {
	n := c.reads.Add(1)
	if c.failed.Load() || (c.failRead > 0 && n >= c.failRead) {
		c.failed.Store(true)
		return 0, c.err()
	}
	return c.Inner.Read(p)
}

// Write implements io.Writer with scheduled failure; see Read for the
// stays-reset rule.
func (c *Conn) Write(p []byte) (int, error) {
	n := c.writes.Add(1)
	if c.failed.Load() || (c.failWrite > 0 && n >= c.failWrite) {
		c.failed.Store(true)
		return 0, c.err()
	}
	return c.Inner.Write(p)
}
