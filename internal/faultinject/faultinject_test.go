package faultinject

import (
	"context"
	"errors"
	"net"
	"syscall"
	"testing"
	"time"

	"gridauth/internal/core"
	"gridauth/internal/gsi"
)

type recordingPDP struct{ calls int }

func (p *recordingPDP) Name() string { return "inner" }
func (p *recordingPDP) Authorize(req *core.Request) core.Decision {
	p.calls++
	return core.PermitDecision("inner", "ok")
}

func req() *core.Request { return &core.Request{Subject: "/O=Grid/CN=Bo", Action: "start"} }

// replay runs n decisions against a fresh ChaosPDP and returns the
// observed effect sequence.
func replay(seed int64, cfg PDPConfig, n int) []core.Effect {
	c := NewChaosPDP(&recordingPDP{}, seed, cfg)
	out := make([]core.Effect, n)
	for i := range out {
		out[i] = c.Authorize(req()).Effect
	}
	return out
}

func TestChaosPDPIsDeterministic(t *testing.T) {
	cfg := PDPConfig{ErrorRate: 0.5}
	a := replay(42, cfg, 200)
	b := replay(42, cfg, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d: %v vs %v", i, a[i], b[i])
		}
	}
	var sawError, sawPermit bool
	for _, e := range a {
		switch e {
		case core.Error:
			sawError = true
		case core.Permit:
			sawPermit = true
		}
	}
	if !sawError || !sawPermit {
		t.Fatalf("ErrorRate 0.5 over 200 calls produced no mix (error=%v permit=%v)", sawError, sawPermit)
	}
}

func TestChaosPDPHealAndStats(t *testing.T) {
	c := NewChaosPDP(&recordingPDP{}, 1, PDPConfig{ErrorRate: 1})
	for i := 0; i < 5; i++ {
		if d := c.Authorize(req()); d.Effect != core.Error {
			t.Fatalf("broken chaos returned %+v", d)
		}
	}
	c.SetConfig(PDPConfig{})
	if d := c.Authorize(req()); d.Effect != core.Permit {
		t.Fatalf("healed chaos returned %+v", d)
	}
	calls, errs, hangs := c.Stats()
	if calls != 6 || errs != 5 || hangs != 0 {
		t.Fatalf("stats = %d/%d/%d, want 6/5/0", calls, errs, hangs)
	}
}

func TestChaosPDPHangHonorsContext(t *testing.T) {
	c := NewChaosPDP(&recordingPDP{}, 1, PDPConfig{HangRate: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	done := make(chan core.Decision, 1)
	go func() { done <- c.AuthorizeContext(ctx, req()) }()
	select {
	case d := <-done:
		if d.Effect != core.Error {
			t.Fatalf("aborted hang returned %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hang did not abort with its context")
	}
	if _, _, hangs := c.Stats(); hangs != 1 {
		t.Fatalf("hangs = %d, want 1", hangs)
	}
}

func TestChaosPDPLatencyDelaysButPassesThrough(t *testing.T) {
	c := NewChaosPDP(&recordingPDP{}, 1, PDPConfig{Latency: 10 * time.Millisecond})
	start := time.Now()
	if d := c.Authorize(req()); d.Effect != core.Permit {
		t.Fatalf("decision = %+v", d)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("latency injection took only %v", elapsed)
	}
}

func TestConnFailsOnScheduleAndStaysFailed(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
			if _, err := b.Write([]byte("pong")); err != nil {
				return
			}
		}
	}()
	fc := NewConn(a, 0, 2) // second write fails
	if _, err := fc.Write([]byte("ping")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := fc.Read(buf); err != nil {
		t.Fatalf("first read: %v", err)
	}
	if _, err := fc.Write([]byte("ping")); !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("second write err = %v, want ECONNRESET", err)
	}
	// A reset connection stays reset — reads fail too.
	if _, err := fc.Read(buf); !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("read after reset err = %v, want ECONNRESET", err)
	}
}

// TestConnBreaksGSIHandshakeCleanly drives a real GSI handshake over a
// flaky connection: the client side must surface an error promptly, not
// hang, when the transport resets mid-protocol.
func TestConnBreaksGSIHandshakeCleanly(t *testing.T) {
	ca, err := gsi.NewCA("/O=Grid/CN=Chaos CA")
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore(ca.Certificate())
	serverCred, err := ca.Issue("/O=Grid/CN=server", gsi.KindService)
	if err != nil {
		t.Fatal(err)
	}
	clientCred, err := ca.Issue("/O=Grid/CN=client", gsi.KindUser)
	if err != nil {
		t.Fatal(err)
	}

	cs, ss := net.Pipe()
	defer cs.Close()
	defer ss.Close()
	go func() {
		// The server sees a peer that goes silent; tear the pipe down
		// when accept fails so neither side can block forever.
		defer ss.Close()
		_, _, _ = gsi.NewAuthenticator(serverCred, trust).HandshakeAccept(ss)
	}()

	flaky := NewConn(cs, 0, 2) // client's second frame dies
	done := make(chan error, 1)
	go func() {
		_, _, err := gsi.NewAuthenticator(clientCred, trust).HandshakeClient(flaky, "server")
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("handshake over a reset transport succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("handshake hung on a reset transport")
	}
}
