package gram

import (
	"context"
	"fmt"
	"net"
	"sync"

	"gridauth/internal/core"
	"gridauth/internal/jobcontrol"
	"gridauth/internal/policy"
)

// GT2 GRAM lets a client register a callback contact and receive job
// state changes as they happen. This implementation models callbacks as
// a subscription: the client dedicates an authenticated connection, the
// gatekeeper authorizes it like an information request, and then streams
// state-update messages until the job reaches a terminal state or the
// client hangs up.

// Additional message kinds for subscriptions.
const (
	MsgSubscribe   = "subscribe-request"
	MsgStateUpdate = "state-update"
)

// subscriber receives state updates for one job contact.
type subscriber struct {
	ch chan JobState
}

// watchHub fans cluster events out to subscribers. One hub per
// gatekeeper, fed by a single cluster subscription.
type watchHub struct {
	mu   sync.Mutex
	subs map[string][]*subscriber // job contact -> subscribers
	lrm  map[string]string        // scheduler job ID -> job contact
}

func newWatchHub(cluster *jobcontrol.Cluster) *watchHub {
	h := &watchHub{
		subs: make(map[string][]*subscriber),
		lrm:  make(map[string]string),
	}
	cluster.Subscribe(h.onEvent)
	return h
}

// register binds a scheduler job to its GRAM contact.
func (h *watchHub) register(lrmID, contact string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.lrm[lrmID] = contact
}

// subscribe attaches a listener to a job contact.
func (h *watchHub) subscribe(contact string) *subscriber {
	s := &subscriber{ch: make(chan JobState, 8)}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.subs[contact] = append(h.subs[contact], s)
	return s
}

// unsubscribe detaches a listener.
func (h *watchHub) unsubscribe(contact string, s *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	list := h.subs[contact]
	for i, v := range list {
		if v == s {
			h.subs[contact] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(h.subs[contact]) == 0 {
		delete(h.subs, contact)
	}
}

// onEvent translates scheduler events into GRAM states and fans out.
// Slow subscribers lose intermediate updates rather than blocking the
// scheduler (the channel is bounded; terminal states overwrite by being
// re-delivered through the final drain in the stream loop).
func (h *watchHub) onEvent(e jobcontrol.Event) {
	state, ok := eventToState(e.Kind)
	if !ok {
		return
	}
	h.mu.Lock()
	contact, ok := h.lrm[e.JobID]
	if !ok {
		h.mu.Unlock()
		return
	}
	subs := append([]*subscriber(nil), h.subs[contact]...)
	h.mu.Unlock()
	for _, s := range subs {
		select {
		case s.ch <- state:
		default: // drop rather than stall the scheduler
		}
	}
}

func eventToState(k jobcontrol.EventKind) (JobState, bool) {
	switch k {
	case jobcontrol.EventQueued, jobcontrol.EventResumed:
		return StatePending, true
	case jobcontrol.EventStarted:
		return StateActive, true
	case jobcontrol.EventSuspended:
		return StateSuspended, true
	case jobcontrol.EventCompleted:
		return StateDone, true
	case jobcontrol.EventCanceled:
		return StateCanceled, true
	case jobcontrol.EventFailed:
		return StateFailed, true
	default:
		return "", false
	}
}

// handleSubscribe authorizes a state subscription (as an information
// request) and streams updates on the connection until the job reaches a
// terminal state or the client disconnects. The connection is dedicated
// to the stream afterwards.
func (g *Gatekeeper) handleSubscribe(peer *Peer, msg *Message, conn net.Conn) {
	jmi, ok := g.jobs.Lookup(msg.JobContact)
	if !ok {
		_ = WriteMessage(conn, manageError(&ProtoError{Code: CodeNoSuchJob, Message: msg.JobContact}))
		return
	}
	if perr := g.authorizeManage(g.baseCtx, peer, jmi, policy.ActionInformation); perr != nil {
		_ = WriteMessage(conn, manageError(perr))
		return
	}
	sub := g.hub.subscribe(jmi.Contact)
	defer g.hub.unsubscribe(jmi.Contact, sub)

	// Initial snapshot so the subscriber has a starting state.
	state, detail := jmi.State()
	if err := WriteMessage(conn, &Message{
		Type: MsgStateUpdate, State: string(state), Owner: string(jmi.Owner), Detail: detail,
	}); err != nil {
		return
	}
	if terminalState(state) {
		return
	}
	// Detect client hangup by reading in the background: any read result
	// (EOF included) ends the stream.
	gone := make(chan struct{})
	go func() {
		defer close(gone)
		buf := make([]byte, 1)
		_, _ = conn.Read(buf)
	}()
	for {
		select {
		case s := <-sub.ch:
			if err := WriteMessage(conn, &Message{
				Type: MsgStateUpdate, State: string(s), Owner: string(jmi.Owner),
			}); err != nil {
				return
			}
			if terminalState(s) {
				return
			}
		case <-gone:
			return
		case <-g.closed:
			return
		}
	}
}

// authorizeManage runs the management-path authorization for a JMI,
// honoring mode, placement and tampering exactly like handleManage.
func (g *Gatekeeper) authorizeManage(ctx context.Context, peer *Peer, jmi *JMI, action string) *ProtoError {
	if g.cfg.Mode == AuthzCallout && g.cfg.Placement == PlacementGatekeeper {
		req := &core.Request{
			Subject:    peer.Identity,
			Assertions: peer.Assertions,
			Action:     action,
			JobID:      jmi.Contact,
			JobOwner:   jmi.Owner,
			Spec:       jmi.Spec,
		}
		d := g.cfg.Registry.InvokeContext(ctx, core.CalloutGatekeeper, req)
		auditDecision(ctx, g.cfg.Audit, core.CalloutGatekeeper, req, d)
		return decisionToProto(d)
	}
	return jmi.authorize(ctx, peer, action)
}

func terminalState(s JobState) bool {
	switch s {
	case StateDone, StateFailed, StateCanceled:
		return true
	default:
		return false
	}
}

// Watch subscribes to a job's state changes on a dedicated connection.
// It returns a channel of states (closed when the job reaches a terminal
// state or the watch stops) and a stop function. The first value is the
// job's current state.
func (c *Client) Watch(contact string) (<-chan JobState, func(), error) {
	conn, br, _, err := c.dial()
	if err != nil {
		return nil, nil, err
	}
	if err := WriteMessage(conn, &Message{Type: MsgSubscribe, JobContact: contact}); err != nil {
		conn.Close()
		return nil, nil, err
	}
	first, err := ReadMessage(br)
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("gram: read subscription reply: %w", err)
	}
	if first.Err != nil {
		conn.Close()
		return nil, nil, first.Err
	}
	out := make(chan JobState, 8)
	done := make(chan struct{})
	stop := sync.OnceFunc(func() {
		close(done)
		conn.Close()
	})
	deliver := func(s JobState) bool {
		select {
		case out <- s:
			return true
		case <-done:
			return false
		}
	}
	go func() {
		defer close(out)
		defer conn.Close()
		if !deliver(JobState(first.State)) || terminalState(JobState(first.State)) {
			return
		}
		for {
			msg, err := ReadMessage(br)
			if err != nil {
				return
			}
			if msg.Type != MsgStateUpdate {
				continue
			}
			if !deliver(JobState(msg.State)) || terminalState(JobState(msg.State)) {
				return
			}
		}
	}()
	return out, stop, nil
}
