package gram

import (
	"testing"
	"time"
)

func collectStates(t *testing.T, ch <-chan JobState, want int, timeout time.Duration) []JobState {
	t.Helper()
	var got []JobState
	deadline := time.After(timeout)
	for len(got) < want {
		select {
		case s, ok := <-ch:
			if !ok {
				return got
			}
			got = append(got, s)
		case <-deadline:
			t.Fatalf("timed out with states %v (want %d)", got, want)
		}
	}
	return got
}

func TestWatchStreamsLifecycle(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzCallout})
	bo := e.client(boDN)
	contact, err := bo.Submit(`&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)(simduration=300)`, "")
	if err != nil {
		t.Fatal(err)
	}
	states, stop, err := bo.Watch(contact)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if got := collectStates(t, states, 1, 5*time.Second); got[0] != StateActive {
		t.Fatalf("initial state = %v", got)
	}
	// Suspend, resume, complete: the subscriber sees each transition.
	if err := bo.Signal(contact, SignalSuspend, ""); err != nil {
		t.Fatal(err)
	}
	if got := collectStates(t, states, 1, 5*time.Second); got[0] != StateSuspended {
		t.Fatalf("after suspend = %v", got)
	}
	if err := bo.Signal(contact, SignalResume, ""); err != nil {
		t.Fatal(err)
	}
	// Resume re-queues then starts: PENDING then ACTIVE.
	got := collectStates(t, states, 2, 5*time.Second)
	if got[0] != StatePending || got[1] != StateActive {
		t.Fatalf("after resume = %v", got)
	}
	e.cluster.Advance(10 * time.Minute)
	got = collectStates(t, states, 1, 5*time.Second)
	if got[0] != StateDone {
		t.Fatalf("final = %v", got)
	}
	// The channel closes after the terminal state.
	select {
	case _, ok := <-states:
		if ok {
			t.Errorf("channel not closed after terminal state")
		}
	case <-time.After(5 * time.Second):
		t.Errorf("channel close timed out")
	}
}

func TestWatchAuthorization(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzCallout})
	bo := e.client(boDN)
	sam := e.client(samDN)
	contact, err := bo.Submit(`&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=1)(simduration=300)`, "")
	if err != nil {
		t.Fatal(err)
	}
	// Sam holds no information grant for Bo's job.
	if _, _, err := sam.Watch(contact); !IsAuthorizationDenied(err) {
		t.Errorf("unauthorized watch = %v", err)
	}
	// Unknown contacts are errors, not hangs.
	if _, _, err := bo.Watch("gram://nowhere/job/9"); err == nil {
		t.Errorf("unknown contact accepted")
	}
}

func TestWatchTerminalJobDeliversFinalStateOnly(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzLegacy})
	bo := e.client(boDN)
	contact, err := bo.Submit(`&(executable=test1)(count=1)(simduration=30)`, "")
	if err != nil {
		t.Fatal(err)
	}
	e.cluster.Advance(time.Minute)
	states, stop, err := bo.Watch(contact)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	got := collectStates(t, states, 1, 5*time.Second)
	if got[0] != StateDone {
		t.Fatalf("state = %v", got)
	}
}

func TestWatchStopSeversStream(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzLegacy})
	bo := e.client(boDN)
	contact, err := bo.Submit(`&(executable=test1)(count=1)(simduration=600)`, "")
	if err != nil {
		t.Fatal(err)
	}
	states, stop, err := bo.Watch(contact)
	if err != nil {
		t.Fatal(err)
	}
	collectStates(t, states, 1, 5*time.Second)
	stop()
	stop() // idempotent
	select {
	case _, ok := <-states:
		if ok {
			// A buffered state may still be in flight; drain to close.
			for range states {
			}
		}
	case <-time.After(5 * time.Second):
		t.Errorf("stream did not end after stop")
	}
}
