package gram

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"gridauth/internal/gsi"
)

// JobStatus is the client's view of a managed job. The Owner field is the
// paper's client-side extension: "allowing it to recognize the identity
// of the job originator", which a VO manager needs when acting on jobs
// they did not start.
type JobStatus struct {
	Contact string
	State   JobState
	Owner   gsi.DN
	Detail  string
}

// Client is the GRAM client library (the globusrun role): it
// authenticates to a gatekeeper with the user's (proxy) credential and VO
// assertions, submits jobs and issues management requests.
type Client struct {
	addr string
	auth *gsi.Authenticator

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
}

// NewClient creates a client for the gatekeeper at addr, authenticating
// with cred and presenting the given VO assertions.
func NewClient(addr string, cred *gsi.Credential, trust *gsi.TrustStore, assertions ...*gsi.Assertion) *Client {
	opts := []gsi.AuthOption{}
	if len(assertions) > 0 {
		opts = append(opts, gsi.WithAssertions(assertions...))
	}
	return &Client{
		addr: addr,
		auth: gsi.NewAuthenticator(cred, trust, opts...),
	}
}

// connect establishes (or reuses) the authenticated channel.
func (c *Client) connect() error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("gram: dial %s: %w", c.addr, err)
	}
	_, br, err := c.auth.Handshake(conn)
	if err != nil {
		conn.Close()
		return fmt.Errorf("gram: authenticate to %s: %w", c.addr, err)
	}
	c.conn = conn
	c.br = br
	return nil
}

// Close tears down the connection.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
		c.br = nil
	}
}

// roundTrip sends one message and reads one reply.
func (c *Client) roundTrip(m *Message) (*Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connect(); err != nil {
		return nil, err
	}
	if err := WriteMessage(c.conn, m); err != nil {
		c.resetLocked()
		return nil, err
	}
	reply, err := ReadMessage(c.br)
	if err != nil {
		c.resetLocked()
		return nil, fmt.Errorf("gram: read reply: %w", err)
	}
	return reply, nil
}

func (c *Client) resetLocked() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
		c.br = nil
	}
}

// Submit sends a job request with the given RSL text and optional
// account, returning the job contact.
func (c *Client) Submit(rslText, account string) (string, error) {
	reply, err := c.roundTrip(&Message{Type: MsgJobRequest, RSL: rslText, Account: account})
	if err != nil {
		return "", err
	}
	if reply.Err != nil {
		return "", reply.Err
	}
	if reply.Contact == "" {
		return "", errors.New("gram: reply carried no job contact")
	}
	return reply.Contact, nil
}

// Status queries a job. Any authenticated user may ask; policy decides.
func (c *Client) Status(contact string) (*JobStatus, error) {
	reply, err := c.roundTrip(&Message{Type: MsgManage, JobContact: contact, Action: ManageStatus})
	if err != nil {
		return nil, err
	}
	if reply.Err != nil {
		return nil, reply.Err
	}
	return &JobStatus{
		Contact: contact,
		State:   JobState(reply.State),
		Owner:   gsi.DN(reply.Owner),
		Detail:  reply.Detail,
	}, nil
}

// Cancel terminates a job.
func (c *Client) Cancel(contact string) error {
	reply, err := c.roundTrip(&Message{Type: MsgManage, JobContact: contact, Action: ManageCancel})
	if err != nil {
		return err
	}
	if reply.Err != nil {
		return reply.Err
	}
	return nil
}

// Signal sends a job management signal (suspend, resume, priority).
func (c *Client) Signal(contact, signal, arg string) error {
	reply, err := c.roundTrip(&Message{
		Type:       MsgManage,
		JobContact: contact,
		Action:     ManageSignal,
		Signal:     signal,
		SignalArg:  arg,
	})
	if err != nil {
		return err
	}
	if reply.Err != nil {
		return reply.Err
	}
	return nil
}

// IsAuthorizationDenied reports whether err is a GRAM authorization
// denial (as opposed to a system failure or transport error).
func IsAuthorizationDenied(err error) bool {
	var pe *ProtoError
	return errors.As(err, &pe) && pe.Code == CodeAuthorizationDenied
}

// IsAuthorizationFailure reports whether err is an authorization system
// failure.
func IsAuthorizationFailure(err error) bool {
	var pe *ProtoError
	return errors.As(err, &pe) && pe.Code == CodeAuthorizationFailure
}
