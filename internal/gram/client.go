package gram

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"syscall"

	"gridauth/internal/gsi"
	"gridauth/internal/resilience"
)

// JobStatus is the client's view of a managed job. The Owner field is the
// paper's client-side extension: "allowing it to recognize the identity
// of the job originator", which a VO manager needs when acting on jobs
// they did not start.
type JobStatus struct {
	Contact string
	State   JobState
	Owner   gsi.DN
	Detail  string
}

// Client is the GRAM client library (the globusrun role): it
// authenticates to a gatekeeper with the user's (proxy) credential and VO
// assertions, submits jobs and issues management requests.
//
// Against a protocol-version-2 gatekeeper (FeatureMux, negotiated in the
// GSI handshake) the client multiplexes: concurrent calls share one
// authenticated connection, correlated by Message.ID, with a demux
// goroutine routing replies to their callers. Against an older server it
// falls back to the version-1 strictly-serial conversation. Connections
// are additionally established by GSI session resumption where possible
// (see gsi.SessionCache), so reconnecting skips chain verification.
type Client struct {
	addr     string
	auth     *gsi.Authenticator
	sessions *gsi.SessionCache

	// addrs (guarded by mu) is the optional failover address list: the
	// gatekeeper nodes of a federated cluster fronting ONE resource (see
	// docs/CLUSTER.md). When set, every failed connection attempt — and
	// every CodeAuthorizationUnavailable management reply — rotates to
	// the next node before the retry policy re-dials, and failures
	// become transient as long as another node may answer. addrIdx is
	// the round-robin cursor.
	addrs   []string
	addrIdx int

	// retry (guarded by mu) is the ONE policy governing both of the
	// client's recovery paths: redialing when a GSI session resumption
	// dies mid-handshake or the connection resets, and re-asking when a
	// management reply carries the retryable
	// CodeAuthorizationUnavailable. See SetRetryPolicy.
	retry resilience.Policy

	// mu guards the connection lifecycle, the pending map and — on a
	// version-1 connection — the whole round trip.
	mu      sync.Mutex
	conn    net.Conn
	br      *bufio.Reader
	mux     bool
	resumed bool
	gen     int // connection generation, so a stale teardown is a no-op
	nextID  uint64
	pending map[uint64]chan *Message

	// writeMu serializes frame writes on a multiplexed connection.
	writeMu sync.Mutex
}

// NewClient creates a client for the gatekeeper at addr, authenticating
// with cred and presenting the given VO assertions.
func NewClient(addr string, cred *gsi.Credential, trust *gsi.TrustStore, assertions ...*gsi.Assertion) *Client {
	sessions := gsi.NewSessionCache()
	opts := []gsi.AuthOption{
		gsi.WithSessionCache(sessions),
		gsi.WithFeatures(FeatureMux),
	}
	if len(assertions) > 0 {
		opts = append(opts, gsi.WithAssertions(assertions...))
	}
	return &Client{
		addr:     addr,
		auth:     gsi.NewAuthenticator(cred, trust, opts...),
		sessions: sessions,
		pending:  make(map[uint64]chan *Message),
		// Two attempts preserves the historical "retry a failed session
		// resumption once" behavior and gives management requests one
		// backed-off retry when the authorization system is degraded.
		retry: resilience.Policy{Attempts: 2},
	}
}

// SetRetryPolicy replaces the client's retry policy. Per the degraded-
// mode design there is deliberately one policy, not two: transient
// transport failures (connection reset during a resumed handshake) and
// transient authorization failures (CodeAuthorizationUnavailable on a
// management reply) are the same class of fault — the far side is
// momentarily undecided, not refusing — and should be paced the same
// way. Policy{Attempts: 1} disables retries entirely.
func (c *Client) SetRetryPolicy(p resilience.Policy) {
	c.mu.Lock()
	c.retry = p
	c.mu.Unlock()
}

// SetFailover installs the cluster's gatekeeper address list. The
// client dials the nodes round-robin: the first address is preferred,
// and every connection failure or retryable authorization outage
// advances to the next node. Cached GSI sessions are keyed by the
// FIRST address regardless of which node answers, so a resumption
// ticket granted by one node is presented to — and, with a replicated
// ticket-secret ring, honored by — any other. Calling SetFailover with
// no arguments reverts to single-address operation.
func (c *Client) SetFailover(addrs ...string) {
	c.mu.Lock()
	c.addrs = append([]string(nil), addrs...)
	c.addrIdx = 0
	c.mu.Unlock()
}

// target returns the address the next connection attempt should dial.
// Caller holds c.mu.
func (c *Client) target() string {
	if len(c.addrs) > 0 {
		return c.addrs[c.addrIdx%len(c.addrs)]
	}
	return c.addr
}

// advance rotates to the next failover address. Caller holds c.mu.
func (c *Client) advance() {
	if len(c.addrs) > 1 {
		c.addrIdx = (c.addrIdx + 1) % len(c.addrs)
	}
}

// sessionKey is the session-cache key for handshakes: stable across
// failover so a ticket granted by one cluster node resumes on another.
// Caller holds c.mu.
func (c *Client) sessionKey() string {
	if len(c.addrs) > 0 {
		return c.addrs[0]
	}
	return c.addr
}

// dial establishes a new authenticated connection, resuming a cached
// GSI session when possible. A resumption attempt that dies mid-protocol
// (say, the server restarted and lost its ticket key *and* the
// connection) or a connection reset during the handshake is transient:
// the failed attempt already invalidated the session, so a retry — paced
// by the client's retry policy — runs a full handshake on a fresh
// connection. A plain dial refusal (nothing listening, unreachable host)
// is NOT transient and fails fast — unless a failover list is
// configured, in which case every failure rotates to the next node and
// stays transient: some surviving node may still answer, and the retry
// policy bounds how long the client hunts. Caller holds c.mu.
func (c *Client) dial() (net.Conn, *bufio.Reader, *gsi.Peer, error) {
	var (
		conn net.Conn
		br   *bufio.Reader
		peer *gsi.Peer
	)
	err := c.retry.Do(context.Background(), func(int) (error, bool) {
		addr := c.target()
		failover := len(c.addrs) > 1
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			c.advance()
			return fmt.Errorf("gram: dial %s: %w", addr, err), failover
		}
		p, r, err := c.auth.HandshakeClient(nc, c.sessionKey())
		if err == nil {
			conn, br, peer = nc, r, p
			return nil, false
		}
		nc.Close()
		c.advance()
		transient := failover ||
			errors.Is(err, gsi.ErrResumeFailed) || errors.Is(err, syscall.ECONNRESET)
		return fmt.Errorf("gram: authenticate to %s: %w", addr, err), transient
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return conn, br, peer, nil
}

// connect establishes (or reuses) the authenticated channel. Caller
// holds c.mu.
func (c *Client) connect() error {
	if c.conn != nil {
		return nil
	}
	conn, br, peer, err := c.dial()
	if err != nil {
		return err
	}
	c.conn = conn
	c.br = br
	c.mux = peer.HasFeature(FeatureMux)
	c.resumed = peer.Resumed
	c.gen++
	if c.mux {
		go c.readLoop(br, c.gen)
	}
	return nil
}

// readLoop demultiplexes replies on a version-2 connection, routing each
// to the caller registered under its ID. On read failure it tears down
// its own generation of the connection, which fails all in-flight calls.
func (c *Client) readLoop(br *bufio.Reader, gen int) {
	for {
		m, err := ReadMessage(br)
		if err != nil {
			c.teardown(gen)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[m.ID]
		if ok {
			delete(c.pending, m.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- m
		}
	}
}

// teardown resets the connection if it is still generation gen; a newer
// connection is left alone.
func (c *Client) teardown(gen int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen == gen {
		c.resetLocked() //authlint:ignore locksafe c.mu is this client's own lifecycle lock, not an authorization-path shard; Close here only tears down an already-broken conn
	}
}

// Close tears down the connection.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resetLocked() //authlint:ignore locksafe client lifecycle lock; serializing Close against in-flight dials is the point
}

// resetLocked drops the connection state; pending multiplexed callers
// observe their reply channel closing.
func (c *Client) resetLocked() {
	if c.conn != nil {
		_ = c.conn.Close()
	}
	c.conn = nil
	c.br = nil
	c.mux = false
	c.resumed = false
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
}

// Resumed reports whether the client's current connection was
// authenticated by GSI session resumption rather than a full handshake
// (observability hook; false when disconnected).
func (c *Client) Resumed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn != nil && c.resumed
}

// roundTrip sends one message and reads its reply. On a multiplexed
// connection any number of round trips proceed concurrently; on a
// version-1 connection they serialize under c.mu.
func (c *Client) roundTrip(m *Message) (*Message, error) {
	c.mu.Lock()
	if err := c.connect(); err != nil { //authlint:ignore locksafe dialing under c.mu is deliberate: concurrent round trips must share one connection, so the first caller dials while the rest wait
		c.mu.Unlock()
		return nil, err
	}
	if !c.mux {
		defer c.mu.Unlock()
		if err := WriteMessage(c.conn, m); err != nil {
			c.resetLocked()
			return nil, err
		}
		reply, err := ReadMessage(c.br)
		if err != nil {
			c.resetLocked()
			return nil, fmt.Errorf("gram: read reply: %w", err)
		}
		return reply, nil
	}
	c.nextID++
	m.ID = c.nextID
	ch := make(chan *Message, 1)
	c.pending[m.ID] = ch
	conn := c.conn
	gen := c.gen
	c.mu.Unlock()

	c.writeMu.Lock()
	err := WriteMessage(conn, m)
	c.writeMu.Unlock()
	if err != nil {
		c.teardown(gen)
		return nil, err
	}
	reply, ok := <-ch
	if !ok {
		return nil, errors.New("gram: connection lost awaiting reply")
	}
	return reply, nil
}

// manageRoundTrip is roundTrip for management requests: a reply whose
// error is the retryable CodeAuthorizationUnavailable (the
// authorization system failed transiently while deciding — callout
// timeout, open circuit breaker) is re-asked under the client's retry
// policy with backoff. With a failover list configured the retry does
// not re-ask the same struggling node: the connection is dropped and
// the cursor advanced, so the next attempt lands on the next cluster
// node (which, sharing the job table, can answer for the same job).
// Transport errors are not retried here; the next call transparently
// reconnects. Submit does NOT go through this path: an undecidable
// startup is fail-closed and final (see decisionToProto).
func (c *Client) manageRoundTrip(m *Message) (*Message, error) {
	c.mu.Lock()
	pol := c.retry
	c.mu.Unlock()
	var reply *Message
	err := pol.Do(context.Background(), func(int) (error, bool) {
		reply = nil
		r, err := c.roundTrip(m)
		if err != nil {
			return err, false
		}
		reply = r
		if r.Err != nil && r.Err.Code == CodeAuthorizationUnavailable {
			c.mu.Lock()
			if len(c.addrs) > 1 {
				c.resetLocked() //authlint:ignore locksafe client lifecycle lock; dropping the conn to a degraded node before failing over is the point
				c.advance()
			}
			c.mu.Unlock()
			return r.Err, true
		}
		return nil, false
	})
	if reply == nil {
		return nil, err
	}
	return reply, nil
}

// Submit sends a job request with the given RSL text and optional
// account, returning the job contact.
func (c *Client) Submit(rslText, account string) (string, error) {
	reply, err := c.roundTrip(&Message{Type: MsgJobRequest, RSL: rslText, Account: account})
	if err != nil {
		return "", err
	}
	if reply.Err != nil {
		return "", reply.Err
	}
	if reply.Contact == "" {
		return "", errors.New("gram: reply carried no job contact")
	}
	return reply.Contact, nil
}

// Status queries a job. Any authenticated user may ask; policy decides.
func (c *Client) Status(contact string) (*JobStatus, error) {
	reply, err := c.manageRoundTrip(&Message{Type: MsgManage, JobContact: contact, Action: ManageStatus})
	if err != nil {
		return nil, err
	}
	if reply.Err != nil {
		return nil, reply.Err
	}
	return &JobStatus{
		Contact: contact,
		State:   JobState(reply.State),
		Owner:   gsi.DN(reply.Owner),
		Detail:  reply.Detail,
	}, nil
}

// Cancel terminates a job.
func (c *Client) Cancel(contact string) error {
	reply, err := c.manageRoundTrip(&Message{Type: MsgManage, JobContact: contact, Action: ManageCancel})
	if err != nil {
		return err
	}
	if reply.Err != nil {
		return reply.Err
	}
	return nil
}

// Signal sends a job management signal (suspend, resume, priority).
func (c *Client) Signal(contact, signal, arg string) error {
	reply, err := c.manageRoundTrip(&Message{
		Type:       MsgManage,
		JobContact: contact,
		Action:     ManageSignal,
		Signal:     signal,
		SignalArg:  arg,
	})
	if err != nil {
		return err
	}
	if reply.Err != nil {
		return reply.Err
	}
	return nil
}

// IsAuthorizationDenied reports whether err is a GRAM authorization
// denial (as opposed to a system failure or transport error).
func IsAuthorizationDenied(err error) bool {
	var pe *ProtoError
	return errors.As(err, &pe) && pe.Code == CodeAuthorizationDenied
}

// IsAuthorizationFailure reports whether err is an authorization system
// failure.
func IsAuthorizationFailure(err error) bool {
	var pe *ProtoError
	return errors.As(err, &pe) && pe.Code == CodeAuthorizationFailure
}

// IsAuthorizationUnavailable reports whether err is the RETRYABLE
// authorization failure surfaced for management requests: the
// authorization system failed transiently while deciding, nothing was
// decided about the job, and a later retry may succeed. Callers that
// exhaust their retry budget can distinguish "the grid said no"
// (IsAuthorizationDenied) from "the grid could not answer" with this.
func IsAuthorizationUnavailable(err error) bool {
	var pe *ProtoError
	return errors.As(err, &pe) && pe.Code == CodeAuthorizationUnavailable
}
