package gram

import (
	"net"
	"testing"
	"time"

	"gridauth/internal/accounts"
	"gridauth/internal/core"
	"gridauth/internal/gridmap"
	"gridauth/internal/gsi"
	"gridauth/internal/jobcontrol"
	"gridauth/internal/policy"
	"gridauth/internal/resilience"
)

const gkDN2 = gsi.DN("/O=Grid/O=Globus/CN=gatekeeper/fusion2.anl.gov")

// TestClientFailoverResumesOnSecondNode is the failover contract end to
// end: two gatekeeper nodes front ONE resource (shared scheduler
// cluster, shared job table, shared ticket-secret ring). A client
// submits through node A, node A is killed mid-session, and the next
// management request must complete on node B — reached through the
// failover list, authenticated by GSI session RESUMPTION (the ticket
// node A granted redeems against the replicated ring), and answered
// for the job node A created (shared table).
func TestClientFailoverResumesOnSecondNode(t *testing.T) {
	ca, err := gsi.NewCA("/O=Grid/CN=Test CA")
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore(ca.Certificate())
	boCred, err := ca.Issue(boDN, gsi.KindUser)
	if err != nil {
		t.Fatal(err)
	}

	gmap := gridmap.New()
	gmap.Add(boDN, "bliu")
	acctMgr := accounts.NewManager()
	acctMgr.AddStatic("bliu", accounts.Rights{})

	reg := core.NewRegistry()
	core.RegisterBuiltinDrivers(reg)
	vo := &core.PolicyPDP{Policy: policy.MustParse(voPolicy, "VO:NFC")}
	local := &core.PolicyPDP{Policy: policy.MustParse(localPolicy, "local")}
	reg.Bind(core.CalloutJobManager, vo)
	reg.Bind(core.CalloutJobManager, local)
	reg.Bind(core.CalloutGatekeeper, vo)
	reg.Bind(core.CalloutGatekeeper, local)

	// The federation: every node gets the SAME cluster, job table and
	// secret ring.
	cluster := jobcontrol.NewCluster(16)
	jobs := NewJobTable()
	ring, err := gsi.NewSecretRing(time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	start := func(dn gsi.DN) (*Gatekeeper, string) {
		t.Helper()
		cred, err := ca.Issue(dn, gsi.KindService)
		if err != nil {
			t.Fatal(err)
		}
		gk, err := NewGatekeeper(Config{
			Credential: cred,
			Trust:      trust,
			GridMap:    gmap,
			Accounts:   acctMgr,
			Registry:   reg,
			Mode:       AuthzLegacy,
			Cluster:    cluster,
			Jobs:       jobs,
			TicketRing: ring,
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = gk.Serve(l) }()
		t.Cleanup(gk.Close)
		return gk, l.Addr().String()
	}
	gkA, addrA := start(gkDN)
	gkB, addrB := start(gkDN2)

	proxy, err := gsi.Delegate(boCred, time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(addrA, proxy, trust)
	t.Cleanup(c.Close)
	c.SetFailover(addrA, addrB)
	c.SetRetryPolicy(resilience.Policy{
		Attempts:  4,
		BaseDelay: 5 * time.Millisecond,
		MaxDelay:  25 * time.Millisecond,
	})

	contact, err := c.Submit(boJob, "")
	if err != nil {
		t.Fatalf("submit through node A: %v", err)
	}
	if c.Resumed() {
		t.Fatal("first connection cannot be a resumption")
	}
	// The shared table makes the job visible on BOTH nodes.
	if _, ok := gkA.Job(contact); !ok {
		t.Fatalf("node A does not know %s", contact)
	}
	if _, ok := gkB.Job(contact); !ok {
		t.Fatalf("node B does not know %s (job table not shared)", contact)
	}

	// Kill node A: listener and the client's live connection both drop.
	gkA.Close()

	// The next management request must succeed on node B. The first
	// attempt may still observe the dying connection (a transport error
	// surfaces to the caller by design), so allow a short re-ask loop —
	// exactly what a real client does.
	var st *JobStatus
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err = c.Status(contact)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("status never recovered after node kill: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != StateActive {
		t.Errorf("state after failover = %s, want ACTIVE", st.State)
	}
	if st.Owner != boDN {
		t.Errorf("owner after failover = %s, want %s", st.Owner, boDN)
	}
	if !c.Resumed() {
		t.Error("failover connection did not resume the GSI session (ring not shared?)")
	}

	// Management authority survives too: the initiator cancels their
	// node-A job through node B.
	if err := c.Cancel(contact); err != nil {
		t.Errorf("cancel through node B: %v", err)
	}
}
