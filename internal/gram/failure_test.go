package gram

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"gridauth/internal/core"
	"gridauth/internal/gsi"
)

// flakyPDP fails (authorization system failure) every other decision.
type flakyPDP struct {
	mu    sync.Mutex
	calls int
}

func (f *flakyPDP) Name() string { return "flaky" }

func (f *flakyPDP) Authorize(req *core.Request) core.Decision {
	f.mu.Lock()
	f.calls++
	n := f.calls
	f.mu.Unlock()
	if n%2 == 1 {
		return core.ErrorDecision("flaky", "backend unreachable")
	}
	return core.PermitDecision("flaky", "ok")
}

func TestFlakyPDPSurfacesSystemFailures(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzCallout, registry: func(r *core.Registry) {
		r.Bind(core.CalloutJobManager, &flakyPDP{})
	}})
	bo := e.client(boDN)
	// First decision errors; the client sees an authorization system
	// failure, distinct from a denial.
	_, err := bo.Submit(boJob, "")
	if !IsAuthorizationFailure(err) {
		t.Fatalf("first submit = %v, want system failure", err)
	}
	// Second decision permits: the system recovered without restart.
	if _, err := bo.Submit(boJob, ""); err != nil {
		t.Fatalf("second submit = %v", err)
	}
}

func TestMalformedWireInputDoesNotWedgeServer(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzLegacy})
	// Raw connection sending garbage instead of a handshake.
	raw, err := net.Dial("tcp", e.addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte("NOT A HANDSHAKE\n")); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	// A handshake followed by non-JSON application data.
	conn, err := net.Dial("tcp", e.addr)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := gsi.Delegate(e.creds[boDN], time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	auth := gsi.NewAuthenticator(proxy, e.trust)
	_, br, err := auth.Handshake(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("garbage that is not json\n")); err != nil {
		t.Fatal(err)
	}
	// The server reports the decode failure and drops the connection
	// rather than hanging.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	msg, err := ReadMessage(br)
	if err == nil && msg.Err == nil {
		t.Errorf("garbage produced a success reply: %+v", msg)
	}
	conn.Close()

	// The server is still healthy for legitimate clients.
	bo := e.client(boDN)
	if _, err := bo.Submit(boJob, ""); err != nil {
		t.Fatalf("server wedged after garbage: %v", err)
	}
}

func TestClientReconnectsAfterServerDrop(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzLegacy})
	bo := e.client(boDN)
	contact, err := bo.Submit(boJob, "")
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a connection loss by closing the client's transport
	// underneath it.
	bo.Close()
	// The next call transparently reconnects and re-authenticates.
	st, err := bo.Status(contact)
	if err != nil {
		t.Fatalf("status after reconnect: %v", err)
	}
	if st.State != StateActive {
		t.Errorf("state = %s", st.State)
	}
}

func TestConcurrentCancelRace(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzLegacy})
	bo := e.client(boDN)
	contact, err := bo.Submit(`&(executable=test1)(count=1)(simduration=3600)`, "")
	if err != nil {
		t.Fatal(err)
	}
	const racers = 8
	errs := make(chan error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := e.client(boDN)
			errs <- c.Cancel(contact)
		}()
	}
	wg.Wait()
	close(errs)
	winners, stateErrs := 0, 0
	for err := range errs {
		switch {
		case err == nil:
			winners++
		default:
			var pe *ProtoError
			if errors.As(err, &pe) && pe.Code == CodeJobState {
				stateErrs++
			} else {
				t.Errorf("unexpected race outcome: %v", err)
			}
		}
	}
	if winners != 1 || winners+stateErrs != racers {
		t.Errorf("winners = %d, state errors = %d", winners, stateErrs)
	}
	if st, _ := bo.Status(contact); st.State != StateCanceled {
		t.Errorf("final state = %s", st.State)
	}
}

func TestCloseDuringActiveSubscription(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzLegacy})
	bo := e.client(boDN)
	contact, err := bo.Submit(`&(executable=test1)(count=1)(simduration=3600)`, "")
	if err != nil {
		t.Fatal(err)
	}
	states, stop, err := bo.Watch(contact)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	// Drain the initial state, then shut the gatekeeper down while the
	// subscription is live: Close must not deadlock and the stream must
	// end.
	select {
	case <-states:
	case <-time.After(5 * time.Second):
		t.Fatal("no initial state")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.gk.Close()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked on live subscription")
	}
	select {
	case _, ok := <-states:
		if ok {
			for range states {
			}
		}
	case <-time.After(5 * time.Second):
		t.Error("subscription stream did not end after Close")
	}
}
