package gram

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gridauth/internal/accounts"
	"gridauth/internal/core"
	"gridauth/internal/gridmap"
	"gridauth/internal/gsi"
	"gridauth/internal/jobcontrol"
	"gridauth/internal/policy"
)

const (
	kateDN = gsi.DN("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey")
	boDN   = gsi.DN("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu")
	samDN  = gsi.DN("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Sam Meder")
	gkDN   = gsi.DN("/O=Grid/O=Globus/CN=gatekeeper/fusion.anl.gov")
)

// voPolicy mirrors Figure 3 plus self-management and an information
// grant for Kate, so management paths are testable end to end.
const voPolicy = `
/O=Grid/O=Globus/OU=mcs.anl.gov: &(action = start)(jobtag != NULL)
/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu:
  &(action = start)(executable = test1 test2)(directory = /sandbox/test)(jobtag = ADS NFC)(count<4)
  &(action = cancel information signal)(jobowner = self)
/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey:
  &(action = start)(executable = TRANSP)(directory = /sandbox/test)(jobtag = NFC)
  &(action = cancel information signal)(jobtag = NFC)
  &(action = cancel information signal)(jobowner = self)
`

const localPolicy = `
/O=Grid: &(action = start)(queue != fast)
/O=Grid: &(action = start cancel information signal)(executable != NULL)
`

// env is a full GRAM test deployment over real TCP.
type env struct {
	t       *testing.T
	ca      *gsi.CA
	trust   *gsi.TrustStore
	cluster *jobcontrol.Cluster
	gk      *Gatekeeper
	addr    string
	creds   map[gsi.DN]*gsi.Credential
	done    chan struct{}
}

type envOpts struct {
	mode      AuthzMode
	placement Placement
	tamper    bool
	dynamic   bool
	registry  func(*core.Registry)
	tune      func(*Config) // last-minute gatekeeper Config adjustments
}

func newEnv(t *testing.T, o envOpts) *env {
	t.Helper()
	ca, err := gsi.NewCA("/O=Grid/CN=Test CA")
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore(ca.Certificate())
	creds := make(map[gsi.DN]*gsi.Credential)
	for _, dn := range []gsi.DN{kateDN, boDN, samDN} {
		c, err := ca.Issue(dn, gsi.KindUser)
		if err != nil {
			t.Fatal(err)
		}
		creds[dn] = c
	}
	gkCred, err := ca.Issue(gkDN, gsi.KindService)
	if err != nil {
		t.Fatal(err)
	}

	gmap := gridmap.New()
	gmap.Add(kateDN, "keahey")
	gmap.Add(boDN, "bliu")
	// samDN deliberately has no account (shortcoming 5 test subject).

	acctMgr := accounts.NewManager()
	acctMgr.AddStatic("keahey", accounts.Rights{})
	acctMgr.AddStatic("bliu", accounts.Rights{})
	if o.dynamic {
		acctMgr.ProvisionPool("grid", 4)
	}

	reg := core.NewRegistry()
	core.RegisterBuiltinDrivers(reg)
	if o.registry != nil {
		o.registry(reg)
	} else {
		vo := &core.PolicyPDP{Policy: policy.MustParse(voPolicy, "VO:NFC")}
		local := &core.PolicyPDP{Policy: policy.MustParse(localPolicy, "local")}
		reg.Bind(core.CalloutJobManager, vo)
		reg.Bind(core.CalloutJobManager, local)
		reg.Bind(core.CalloutGatekeeper, vo)
		reg.Bind(core.CalloutGatekeeper, local)
	}

	cluster := jobcontrol.NewCluster(16)
	cfg := Config{
		Credential:      gkCred,
		Trust:           trust,
		GridMap:         gmap,
		Accounts:        acctMgr,
		DynamicAccounts: o.dynamic,
		Registry:        reg,
		Mode:            o.mode,
		Placement:       o.placement,
		Cluster:         cluster,
		TamperJMI:       o.tamper,
	}
	if o.tune != nil {
		o.tune(&cfg)
	}
	gk, err := NewGatekeeper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = gk.Serve(l)
	}()
	e := &env{
		t: t, ca: ca, trust: trust, cluster: cluster,
		gk: gk, addr: l.Addr().String(), creds: creds, done: done,
	}
	t.Cleanup(func() {
		gk.Close()
		<-done
	})
	return e
}

func (e *env) client(dn gsi.DN) *Client {
	e.t.Helper()
	cred, ok := e.creds[dn]
	if !ok {
		c, err := e.ca.Issue(dn, gsi.KindUser)
		if err != nil {
			e.t.Fatal(err)
		}
		e.creds[dn] = c
		cred = c
	}
	proxy, err := gsi.Delegate(cred, time.Hour, false)
	if err != nil {
		e.t.Fatal(err)
	}
	c := NewClient(e.addr, proxy, e.trust)
	e.t.Cleanup(c.Close)
	return c
}

const boJob = `&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)(simduration=600)`

// TestFig1BaselineTrace reproduces Figure 1: the stock GT2 interaction.
func TestFig1BaselineTrace(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzLegacy})

	// 1. A mapped user's job request passes the grid-mapfile gate, is
	// mapped to an account, and a JMI submits it to the scheduler.
	bo := e.client(boDN)
	contact, err := bo.Submit(boJob, "")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	jmi, ok := e.gk.Job(contact)
	if !ok {
		t.Fatalf("no JMI registered for %s", contact)
	}
	if jmi.Account != "bliu" {
		t.Errorf("account = %q, want bliu", jmi.Account)
	}
	st, err := bo.Status(contact)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateActive {
		t.Errorf("state = %s, want ACTIVE", st.State)
	}
	if st.Owner != boDN {
		t.Errorf("owner = %s", st.Owner)
	}

	// 2. Legacy management rule: only the initiator may manage.
	kate := e.client(kateDN)
	if err := kate.Cancel(contact); !IsAuthorizationDenied(err) {
		t.Errorf("non-initiator cancel = %v, want authorization denial", err)
	}
	if err := bo.Cancel(contact); err != nil {
		t.Errorf("initiator cancel failed: %v", err)
	}

	// 3. A user without a grid-mapfile entry is refused (shortcoming 5).
	sam := e.client(samDN)
	_, err = sam.Submit(boJob, "")
	var pe *ProtoError
	if !errors.As(err, &pe) || pe.Code != CodeNoLocalAccount {
		t.Errorf("unmapped user submit = %v, want no-local-account", err)
	}

	// 4. In legacy GT2, NOTHING fine-grain is checked: Bo can run any
	// executable with any count (shortcoming 1).
	if _, err := bo.Submit(`&(executable=rm)(count=16)(simduration=1)`, ""); err != nil {
		t.Errorf("legacy mode unexpectedly constrained the job: %v", err)
	}
}

// TestFig2ExtendedTrace reproduces Figure 2: the callout-extended GRAM.
func TestFig2ExtendedTrace(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzCallout})
	bo := e.client(boDN)
	kate := e.client(kateDN)

	// Policy-conforming submission passes both VO and local policy.
	contact, err := bo.Submit(boJob, "")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Fine-grain startup control (shortcoming 1 removed).
	denials := []struct {
		name string
		rsl  string
	}{
		{"unsanctioned executable", `&(executable=rm)(directory=/sandbox/test)(jobtag=ADS)(count=2)`},
		{"count over limit", `&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=8)`},
		{"missing jobtag", `&(executable=test1)(directory=/sandbox/test)(count=2)`},
		{"reserved queue", `&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)(queue=fast)`},
	}
	for _, d := range denials {
		_, err := bo.Submit(d.rsl, "")
		if !IsAuthorizationDenied(err) {
			t.Errorf("%s: err = %v, want authorization denial", d.name, err)
		} else if !strings.Contains(err.Error(), "policy") {
			t.Errorf("%s: denial does not name the policy source: %v", d.name, err)
		}
	}

	// VO-wide job management (shortcoming 2 removed): Bo's job carries
	// jobtag ADS which Kate does NOT manage; an NFC job she does.
	if err := kate.Cancel(contact); !IsAuthorizationDenied(err) {
		t.Errorf("kate canceling ADS job = %v, want denial", err)
	}
	nfcContact, err := bo.Submit(`&(executable=test2)(directory=/sandbox/test)(jobtag=NFC)(count=2)(simduration=600)`, "")
	if err != nil {
		t.Fatal(err)
	}
	st, err := kate.Status(nfcContact)
	if err != nil {
		t.Fatalf("kate status on NFC job: %v", err)
	}
	if st.Owner != boDN {
		t.Errorf("client could not learn the job originator: %s", st.Owner)
	}
	if err := kate.Signal(nfcContact, SignalSuspend, ""); err != nil {
		t.Fatalf("kate suspend on NFC job: %v", err)
	}
	if err := kate.Signal(nfcContact, SignalResume, ""); err != nil {
		t.Fatalf("kate resume: %v", err)
	}
	if err := kate.Cancel(nfcContact); err != nil {
		t.Fatalf("kate cancel on NFC job: %v", err)
	}
	// Self-management still works for the initiator.
	if err := bo.Cancel(contact); err != nil {
		t.Errorf("bo self-cancel: %v", err)
	}
	// Sam (no grants) is denied management of Bo's jobs.
	c2, err := bo.Submit(boJob, "")
	if err != nil {
		t.Fatal(err)
	}
	sam := e.client(samDN)
	if err := sam.Cancel(c2); err == nil {
		t.Errorf("sam cancel permitted")
	}
}

func TestAuthorizationErrorsDistinguished(t *testing.T) {
	// A registry with no callout bound produces authorization SYSTEM
	// failures, not denials — the protocol distinction the paper added.
	e := newEnv(t, envOpts{mode: AuthzCallout, registry: func(r *core.Registry) {}})
	bo := e.client(boDN)
	_, err := bo.Submit(boJob, "")
	if !IsAuthorizationFailure(err) {
		t.Errorf("err = %v, want authorization system failure", err)
	}
	if IsAuthorizationDenied(err) {
		t.Errorf("system failure misreported as denial")
	}
}

func TestJMTrustModel(t *testing.T) {
	// §6.2: a user-tampered JMI skips policy on management requests.
	tampered := newEnv(t, envOpts{mode: AuthzCallout, tamper: true})
	bo := tampered.client(boDN)
	sam := tampered.client(samDN)
	contact, err := bo.Submit(boJob, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := sam.Cancel(contact); err != nil {
		t.Fatalf("expected the tampered JMI to skip authorization, got %v", err)
	}

	// Moving the PEP into the Gatekeeper closes the hole even with a
	// tampered JMI.
	hardened := newEnv(t, envOpts{mode: AuthzCallout, tamper: true, placement: PlacementGatekeeper})
	bo2 := hardened.client(boDN)
	sam2 := hardened.client(samDN)
	contact2, err := bo2.Submit(boJob, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := sam2.Cancel(contact2); !IsAuthorizationDenied(err) {
		t.Errorf("gatekeeper PEP did not catch tampered JMI: %v", err)
	}
	// Authorized management still works through the Gatekeeper PEP.
	kate2 := hardened.client(kateDN)
	nfc, err := bo2.Submit(`&(executable=test2)(directory=/sandbox/test)(jobtag=NFC)(count=2)(simduration=600)`, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := kate2.Cancel(nfc); err != nil {
		t.Errorf("authorized cancel through gatekeeper PEP failed: %v", err)
	}
}

func TestDynamicAccounts(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzCallout, dynamic: true})
	// Sam has no grid-mapfile entry but presents a policy-conforming
	// request... which still needs a VO grant; give him one via the
	// shared policy? He has none, so expect authorization denial AFTER
	// account mapping succeeded (i.e. not no-local-account).
	sam := e.client(samDN)
	_, err := sam.Submit(boJob, "")
	if !IsAuthorizationDenied(err) {
		t.Fatalf("err = %v, want policy denial (account mapping should succeed)", err)
	}
	// Bo (mapped) is unaffected.
	bo := e.client(boDN)
	if _, err := bo.Submit(boJob, ""); err != nil {
		t.Fatalf("mapped user broken by dynamic accounts: %v", err)
	}
}

func TestAccountRequestAndRights(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzLegacy})
	bo := e.client(boDN)
	// Requesting an unlisted account is refused.
	if _, err := bo.Submit(boJob, "keahey"); err == nil {
		t.Errorf("mapping to another user's account permitted")
	}
	// Requesting the listed account works.
	if _, err := bo.Submit(boJob, "bliu"); err != nil {
		t.Errorf("explicit own account refused: %v", err)
	}
}

func TestBadRSLRejected(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzLegacy})
	bo := e.client(boDN)
	var pe *ProtoError
	if _, err := bo.Submit(`((`, ""); !errors.As(err, &pe) || pe.Code != CodeBadRSL {
		t.Errorf("syntax error: %v", err)
	}
	if _, err := bo.Submit(`&(count=2)`, ""); !errors.As(err, &pe) || pe.Code != CodeBadRSL {
		t.Errorf("missing executable: %v", err)
	}
	if _, err := bo.Submit(`&(executable=x)(count=frog)`, ""); !errors.As(err, &pe) || pe.Code != CodeBadRSL {
		t.Errorf("bad count: %v", err)
	}
}

func TestLimitedProxyRefused(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzLegacy})
	limited, err := gsi.Delegate(e.creds[boDN], time.Hour, true)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(e.addr, limited, e.trust)
	defer c.Close()
	_, err = c.Submit(boJob, "")
	var pe *ProtoError
	if !errors.As(err, &pe) || pe.Code != CodeAuthentication {
		t.Errorf("limited proxy submit = %v, want authentication refusal", err)
	}
}

func TestUntrustedClientDropped(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzLegacy})
	rogueCA, err := gsi.NewCA("/O=Rogue/CN=CA")
	if err != nil {
		t.Fatal(err)
	}
	cred, err := rogueCA.Issue(boDN, gsi.KindUser)
	if err != nil {
		t.Fatal(err)
	}
	rogueTrust := gsi.NewTrustStore(e.ca.Certificate(), rogueCA.Certificate())
	c := NewClient(e.addr, cred, rogueTrust)
	defer c.Close()
	if _, err := c.Submit(boJob, ""); err == nil {
		t.Errorf("rogue client served")
	}
}

func TestManageUnknownJob(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzLegacy})
	bo := e.client(boDN)
	err := bo.Cancel("gram://nowhere/job/999")
	var pe *ProtoError
	if !errors.As(err, &pe) || pe.Code != CodeNoSuchJob {
		t.Errorf("cancel unknown = %v", err)
	}
}

func TestJobLifecycleStates(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzLegacy})
	bo := e.client(boDN)
	contact, err := bo.Submit(`&(executable=test1)(count=2)(simduration=120)`, "")
	if err != nil {
		t.Fatal(err)
	}
	st, err := bo.Status(contact)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateActive {
		t.Fatalf("state = %s", st.State)
	}
	if err := bo.Signal(contact, SignalSuspend, ""); err != nil {
		t.Fatal(err)
	}
	if st, _ := bo.Status(contact); st.State != StateSuspended {
		t.Errorf("state after suspend = %s", st.State)
	}
	if err := bo.Signal(contact, SignalResume, ""); err != nil {
		t.Fatal(err)
	}
	e.cluster.Advance(3 * time.Minute)
	if st, _ := bo.Status(contact); st.State != StateDone {
		t.Errorf("state after completion = %s", st.State)
	}
	// Canceling a finished job is a state error.
	err = bo.Cancel(contact)
	var pe *ProtoError
	if !errors.As(err, &pe) || pe.Code != CodeJobState {
		t.Errorf("cancel done job = %v", err)
	}
	// Signals validate their arguments.
	contact2, err := bo.Submit(`&(executable=test1)(simduration=600)`, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := bo.Signal(contact2, SignalPriority, "not-a-number"); err == nil {
		t.Errorf("bad priority accepted")
	}
	if err := bo.Signal(contact2, SignalPriority, "7"); err != nil {
		t.Errorf("priority change failed: %v", err)
	}
	if err := bo.Signal(contact2, "unknown-signal", ""); err == nil {
		t.Errorf("unknown signal accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzCallout})
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := e.client(boDN)
			contact, err := c.Submit(`&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=1)(simduration=60)`, "")
			if err != nil {
				errs <- err
				return
			}
			if _, err := c.Status(contact); err != nil {
				errs <- err
				return
			}
			errs <- c.Cancel(contact)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("concurrent client: %v", err)
		}
	}
	if e.gk.JobCount() != n {
		t.Errorf("JobCount = %d, want %d", e.gk.JobCount(), n)
	}
}
