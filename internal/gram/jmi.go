package gram

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"gridauth/internal/audit"
	"gridauth/internal/core"
	"gridauth/internal/gsi"
	"gridauth/internal/jobcontrol"
	"gridauth/internal/obs"
	"gridauth/internal/policy"
	"gridauth/internal/rsl"
)

// JobState is the GRAM view of a job's lifecycle.
type JobState string

// GRAM job states (the GT2 protocol's PENDING/ACTIVE/SUSPENDED/DONE/
// FAILED set).
const (
	StatePending   JobState = "PENDING"
	StateActive    JobState = "ACTIVE"
	StateSuspended JobState = "SUSPENDED"
	StateDone      JobState = "DONE"
	StateFailed    JobState = "FAILED"
	StateCanceled  JobState = "CANCELED"
)

// JMI is a Job Manager Instance: one per job, responsible for submitting
// the job to the local job control system, monitoring it, and — in the
// paper's extension — authorizing every management request through the
// callout API before acting. In GT2 the JMI runs under the job
// initiator's local credential; the Account field records that binding.
type JMI struct {
	// Contact is the GRAM job contact string clients use to address the
	// job.
	Contact string
	// Owner is the Grid identity that initiated the job.
	Owner gsi.DN
	// Account is the local account the JMI (and job) runs under.
	Account string
	// Spec is the parsed RSL job description.
	Spec *rsl.Spec

	mode      AuthzMode
	registry  *core.Registry
	auditLog  *audit.Log
	cluster   *jobcontrol.Cluster
	lrmID     string
	tampered  bool
	mu        sync.Mutex
	lastState JobState
}

// AuthzMode selects which authorization model a component applies.
type AuthzMode int

// Authorization models.
const (
	// AuthzLegacy is stock GT2: grid-mapfile at the Gatekeeper;
	// initiator-only management at the JMI (§4).
	AuthzLegacy AuthzMode = iota + 1
	// AuthzCallout is the paper's extension: the configured callout
	// chain decides startup and management (§5).
	AuthzCallout
)

// String returns the mode name.
func (m AuthzMode) String() string {
	switch m {
	case AuthzLegacy:
		return "legacy"
	case AuthzCallout:
		return "callout"
	default:
		return fmt.Sprintf("AuthzMode(%d)", int(m))
	}
}

// start submits the job to the local scheduler. Called by the Gatekeeper
// after startup authorization succeeded.
func (j *JMI) start(defaultPriority int) *ProtoError {
	spec, perr := specToLRM(j.Spec, j.Account, defaultPriority)
	if perr != nil {
		return perr
	}
	job, err := j.cluster.Submit(spec)
	if err != nil {
		return &ProtoError{Code: CodeLocalScheduler, Message: err.Error()}
	}
	j.mu.Lock()
	j.lrmID = job.ID
	j.mu.Unlock()
	return nil
}

// specToLRM maps RSL attributes onto a local scheduler job. The
// simulation-only attribute "simduration" (seconds) sets how long the
// job runs on the virtual clock.
func specToLRM(spec *rsl.Spec, account string, priority int) (jobcontrol.JobSpec, *ProtoError) {
	out := jobcontrol.JobSpec{
		Executable: spec.Get("executable"),
		Account:    account,
		Count:      1,
		Priority:   priority,
	}
	badInt := func(attr string) *ProtoError {
		return &ProtoError{Code: CodeBadRSL, Message: fmt.Sprintf("attribute %q must be an integer", attr)}
	}
	if spec.Has("count") {
		n, err := strconv.Atoi(spec.Get("count"))
		if err != nil || n <= 0 {
			return out, badInt("count")
		}
		out.Count = n
	}
	if spec.Has("maxtime") { // minutes, per GT2 convention
		n, err := strconv.Atoi(spec.Get("maxtime"))
		if err != nil || n < 0 {
			return out, badInt("maxtime")
		}
		out.MaxTime = time.Duration(n) * time.Minute
	}
	if spec.Has("maxmemory") {
		n, err := strconv.Atoi(spec.Get("maxmemory"))
		if err != nil || n < 0 {
			return out, badInt("maxmemory")
		}
		out.MemoryMB = n
	}
	if spec.Has("disk") {
		n, err := strconv.Atoi(spec.Get("disk"))
		if err != nil || n < 0 {
			return out, badInt("disk")
		}
		out.DiskMB = n
	}
	if spec.Has("priority") {
		n, err := strconv.Atoi(spec.Get("priority"))
		if err != nil {
			return out, badInt("priority")
		}
		out.Priority = n
	}
	if spec.Has("simduration") {
		n, err := strconv.Atoi(spec.Get("simduration"))
		if err != nil || n < 0 {
			return out, badInt("simduration")
		}
		out.Duration = time.Duration(n) * time.Second
	}
	return out, nil
}

// LRMJobID returns the local scheduler's ID for the job.
func (j *JMI) LRMJobID() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lrmID
}

// State maps the scheduler state to the GRAM job state.
func (j *JMI) State() (JobState, string) {
	job, err := j.cluster.Lookup(j.LRMJobID())
	if err != nil {
		return StateFailed, err.Error()
	}
	switch job.State {
	case jobcontrol.StateQueued:
		return StatePending, ""
	case jobcontrol.StateRunning:
		return StateActive, ""
	case jobcontrol.StateSuspended:
		return StateSuspended, ""
	case jobcontrol.StateCompleted:
		return StateDone, ""
	case jobcontrol.StateCanceled:
		return StateCanceled, job.Detail
	default:
		return StateFailed, job.Detail
	}
}

// authorize runs the management-request authorization the paper moved
// into the JMI: legacy mode applies the initiator-only rule; callout mode
// dispatches to the configured callout chain. A tampered JMI (§6.2: the
// JM "is vulnerable to tampering by the user that could result in changed
// ... policy enforcement") skips the check entirely.
func (j *JMI) authorize(ctx context.Context, peer *Peer, action string) *ProtoError {
	if j.tampered {
		return nil
	}
	switch j.mode {
	case AuthzLegacy:
		if peer.Identity == j.Owner {
			return nil
		}
		return &ProtoError{
			Code:    CodeAuthorizationDenied,
			Source:  "gt2-jmi",
			Message: fmt.Sprintf("only the job initiator %s may manage this job", j.Owner),
		}
	case AuthzCallout:
		req := &core.Request{
			Subject:    peer.Identity,
			Assertions: peer.Assertions,
			Action:     action,
			JobID:      j.Contact,
			JobOwner:   j.Owner,
			Spec:       j.Spec,
		}
		d := j.registry.InvokeContext(ctx, core.CalloutJobManager, req)
		auditDecision(ctx, j.auditLog, core.CalloutJobManager, req, d)
		return decisionToProtoManagement(d)
	default:
		return &ProtoError{Code: CodeInternal, Message: "unknown authorization mode"}
	}
}

// Manage authorizes and executes a management request.
func (j *JMI) Manage(peer *Peer, m *Message) *Message {
	return j.manage(context.Background(), peer, m, false)
}

// ManageContext is Manage with the PEP's per-request context: the
// callout chain (and any context-aware PDP in it) observes cancellation
// when the request is abandoned.
func (j *JMI) ManageContext(ctx context.Context, peer *Peer, m *Message) *Message {
	return j.manage(ctx, peer, m, false)
}

// managePreauthorized executes a management request whose authorization
// already happened in the Gatekeeper (PlacementGatekeeper).
func (j *JMI) managePreauthorized(m *Message) *Message {
	return j.manage(context.Background(), nil, m, true)
}

func (j *JMI) manage(ctx context.Context, peer *Peer, m *Message, preauthorized bool) *Message {
	action := manageToPolicyAction(m.Action)
	if action == "" {
		return manageError(&ProtoError{Code: CodeInternal, Message: fmt.Sprintf("unknown action %q", m.Action)})
	}
	requester := gsi.DN("gatekeeper-preauthorized")
	if peer != nil {
		requester = peer.Identity
	}
	if !preauthorized {
		if perr := j.authorize(ctx, peer, action); perr != nil {
			return manageError(perr)
		}
	}
	switch m.Action {
	case ManageStatus:
		state, detail := j.State()
		return &Message{
			Type:   MsgManageReply,
			State:  string(state),
			Owner:  string(j.Owner),
			Detail: detail,
		}
	case ManageCancel:
		if err := j.cluster.Cancel(j.LRMJobID(), "canceled via GRAM by "+string(requester)); err != nil {
			return manageError(lrmError(err))
		}
		state, _ := j.State()
		return &Message{Type: MsgManageReply, State: string(state), Owner: string(j.Owner)}
	case ManageSignal:
		if perr := j.signal(m); perr != nil {
			return manageError(perr)
		}
		state, _ := j.State()
		return &Message{Type: MsgManageReply, State: string(state), Owner: string(j.Owner)}
	default:
		return manageError(&ProtoError{Code: CodeInternal, Message: "unreachable"})
	}
}

func (j *JMI) signal(m *Message) *ProtoError {
	switch m.Signal {
	case SignalSuspend:
		if err := j.cluster.Suspend(j.LRMJobID()); err != nil {
			return lrmError(err)
		}
	case SignalResume:
		if err := j.cluster.Resume(j.LRMJobID()); err != nil {
			return lrmError(err)
		}
	case SignalPriority:
		n, err := strconv.Atoi(m.SignalArg)
		if err != nil {
			return &ProtoError{Code: CodeInternal, Message: "priority signal needs an integer argument"}
		}
		if err := j.cluster.SetPriority(j.LRMJobID(), n); err != nil {
			return lrmError(err)
		}
	default:
		return &ProtoError{Code: CodeInternal, Message: fmt.Sprintf("unknown signal %q", m.Signal)}
	}
	return nil
}

// manageToPolicyAction maps protocol management actions onto policy
// action names.
func manageToPolicyAction(action string) string {
	switch action {
	case ManageCancel:
		return policy.ActionCancel
	case ManageStatus:
		return policy.ActionInformation
	case ManageSignal:
		return policy.ActionSignal
	default:
		return ""
	}
}

func manageError(perr *ProtoError) *Message {
	return &Message{Type: MsgManageReply, Err: perr}
}

func lrmError(err error) *ProtoError {
	switch {
	case err == nil:
		return nil
	default:
		return &ProtoError{Code: CodeJobState, Message: err.Error()}
	}
}

// auditDecision records one PEP-acted-on callout decision. A nil log
// disables auditing (the record construction is skipped, not queued).
// Both enforcement points — the Gatekeeper and each JMI — funnel
// through here so the trail always names who asked, for what job, and
// which policy source decided (§4.3's "security, audit, accounting").
// On a pipeline log the append is asynchronous; with the queue full,
// block mode (the docs/AUDIT.md recommendation for job startup and
// management) applies backpressure here, so no GRAM decision is ever
// acted on unrecorded.
//
// When the request is traced, the trace is finalized here — the summary
// the PEP acted on, independent of whether a log is configured — and
// the audit record carries the request's correlation ID plus the
// per-PDP spans, so a log entry alone explains the full decision path.
func auditDecision(ctx context.Context, log *audit.Log, calloutType string, req *core.Request, d core.Decision) {
	var spans []obs.Span
	if tr := obs.TraceFrom(ctx); tr != nil {
		tr.Finish(calloutType, req.Action, d.Effect.String(), d.Source, d.Reason)
		spans = tr.Spans()
	}
	if log == nil {
		return
	}
	log.Append(audit.Record{
		RequestID: obs.RequestIDFrom(ctx),
		Subject:   req.Subject,
		Action:    req.Action,
		JobID:     req.JobID,
		JobOwner:  req.JobOwner,
		PDP:       calloutType,
		Effect:    d.Effect.String(),
		Source:    d.Source,
		Reason:    d.Reason,
		Spans:     spans,
	})
}

// decisionToProto converts a callout decision into the protocol's
// authorization error classes (nil for permits). It is the STARTUP
// mapping: an authorization system failure is a hard
// CodeAuthorizationFailure, because an undecidable startup must stay
// fail-closed — nothing was admitted and nothing exists to retry
// against (the paper's default-deny assertion model).
func decisionToProto(d core.Decision) *ProtoError {
	switch d.Effect {
	case core.Permit:
		return nil
	case core.Deny:
		return &ProtoError{Code: CodeAuthorizationDenied, Source: d.Source, Message: d.Reason}
	default:
		return &ProtoError{Code: CodeAuthorizationFailure, Source: d.Source, Message: d.Reason}
	}
}

// decisionToProtoManagement is the MANAGEMENT mapping: denial is still
// a hard CodeAuthorizationDenied, but an authorization system failure
// becomes the retryable CodeAuthorizationUnavailable — the job exists,
// nothing about it was decided, and a client that backs off and
// retries will get an answer once the callout recovers (see
// Client.SetRetryPolicy). Degrading management to "try again" instead
// of a hard error is safe because no action was taken; degrading it to
// "permitted" never happens.
func decisionToProtoManagement(d core.Decision) *ProtoError {
	perr := decisionToProto(d)
	if perr != nil && perr.Code == CodeAuthorizationFailure {
		perr.Code = CodeAuthorizationUnavailable
	}
	return perr
}
