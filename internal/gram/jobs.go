package gram

import "sync"

// JobTable holds the Job Manager Instances of ONE resource, keyed by
// GRAM job contact, together with the contact ID counter. Every
// Gatekeeper owns a private table by default; a federated deployment
// (internal/cluster, docs/CLUSTER.md) hands the SAME table — alongside
// the same jobcontrol.Cluster — to every gatekeeper node fronting the
// resource, so a job submitted through any node can be queried,
// signalled or cancelled through any other node after a failover. The
// table is pure shared state: each JMI keeps the registry/audit wiring
// of the node that created it, and management authorization always runs
// in the node answering the request (PlacementGatekeeper, the
// recommended cluster placement).
type JobTable struct {
	mu     sync.Mutex
	jobs   map[string]*JMI
	nextID int
}

// NewJobTable creates an empty job table.
func NewJobTable() *JobTable {
	return &JobTable{jobs: make(map[string]*JMI)}
}

// next reserves the next contact ID.
func (t *JobTable) next() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	return t.nextID
}

// add registers a JMI under its contact.
func (t *JobTable) add(contact string, j *JMI) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.jobs[contact] = j
}

// remove forgets a contact (job aborted before it reached the LRM).
func (t *JobTable) remove(contact string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.jobs, contact)
}

// Lookup returns the JMI for a contact.
func (t *JobTable) Lookup(contact string) (*JMI, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[contact]
	return j, ok
}

// Len reports how many JMIs the table holds.
func (t *JobTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.jobs)
}
