package gram

import (
	"bufio"
	"net"
	"sync"
	"testing"
	"time"

	"gridauth/internal/gsi"
)

// rawConn dials the env gatekeeper and authenticates with the old
// symmetric handshake — a protocol-version-1 client: no feature
// announcement, no message IDs, strictly serial request/reply.
func rawConn(t *testing.T, e *env, dn gsi.DN) (net.Conn, *bufio.Reader) {
	t.Helper()
	cred, ok := e.creds[dn]
	if !ok {
		t.Fatalf("no credential for %s", dn)
	}
	proxy, err := gsi.Delegate(cred, time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", e.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	_, br, err := gsi.NewAuthenticator(proxy, e.trust).Handshake(conn)
	if err != nil {
		t.Fatal(err)
	}
	return conn, br
}

// TestLegacyClientAgainstMuxServer is the version-negotiation proof: an
// old client that never heard of FeatureMux or message IDs completes a
// full submit/status/cancel conversation against the new gatekeeper.
func TestLegacyClientAgainstMuxServer(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzLegacy})
	conn, br := rawConn(t, e, boDN)

	if err := WriteMessage(conn, &Message{Type: MsgJobRequest, RSL: boJob}); err != nil {
		t.Fatal(err)
	}
	reply, err := ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Err != nil {
		t.Fatal(reply.Err)
	}
	if reply.ID != 0 {
		t.Fatalf("server put ID %d on a reply to an ID-less client", reply.ID)
	}
	contact := reply.Contact
	if contact == "" {
		t.Fatal("submit reply carried no job contact")
	}

	if err := WriteMessage(conn, &Message{Type: MsgManage, JobContact: contact, Action: ManageStatus}); err != nil {
		t.Fatal(err)
	}
	reply, err = ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Err != nil {
		t.Fatal(reply.Err)
	}
	if reply.State == "" || reply.ID != 0 {
		t.Fatalf("status reply state=%q id=%d", reply.State, reply.ID)
	}

	if err := WriteMessage(conn, &Message{Type: MsgManage, JobContact: contact, Action: ManageCancel}); err != nil {
		t.Fatal(err)
	}
	reply, err = ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Err != nil {
		t.Fatal(reply.Err)
	}
}

// TestMultiplexedConcurrentManagement hammers one shared connection with
// concurrent status requests against two jobs held in different states.
// A demultiplexing bug (a reply routed to the wrong caller) surfaces as
// the wrong job's state.
func TestMultiplexedConcurrentManagement(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzLegacy})
	bo := e.client(boDN)

	contactA, err := bo.Submit(boJob, "")
	if err != nil {
		t.Fatal(err)
	}
	contactB, err := bo.Submit(boJob, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := bo.Cancel(contactB); err != nil {
		t.Fatal(err)
	}

	bo.mu.Lock()
	mux := bo.mux
	bo.mu.Unlock()
	if !mux {
		t.Fatal("client did not negotiate a multiplexed connection")
	}

	stA, err := bo.Status(contactA)
	if err != nil {
		t.Fatal(err)
	}
	if stA.State == StateCanceled {
		t.Fatal("job A unexpectedly canceled")
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				sA, err := bo.Status(contactA)
				if err != nil {
					t.Error(err)
					return
				}
				if sA.State != stA.State {
					t.Errorf("job A state %q, want %q (misrouted reply?)", sA.State, stA.State)
					return
				}
				sB, err := bo.Status(contactB)
				if err != nil {
					t.Error(err)
					return
				}
				if sB.State != StateCanceled {
					t.Errorf("job B state %q, want %q (misrouted reply?)", sB.State, StateCanceled)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestOversizedMessageTerminatesCleanly sends a frame over
// MaxMessageSize: the server must report the error (framing is lost, so
// the connection closes) without disturbing service for other clients.
func TestOversizedMessageTerminatesCleanly(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzLegacy})
	conn, br := rawConn(t, e, boDN)

	big := make([]byte, MaxMessageSize+64)
	for i := range big {
		big[i] = 'a'
	}
	big[len(big)-1] = '\n'
	// The server stops reading mid-line, so this write may die with a
	// reset; that is part of the expected teardown.
	_, _ = conn.Write(big)

	// Either the error reply arrives or the connection is already gone —
	// both are clean terminations. What must not happen is the server
	// keeping the desynced stream in service.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	reply, err := ReadMessage(br)
	if err == nil {
		if reply.Err == nil {
			t.Fatalf("oversized frame got a success reply: %+v", reply)
		}
		if reply.Err.Code != CodeInternal {
			t.Fatalf("oversized frame error code = %v, want %v", reply.Err.Code, CodeInternal)
		}
		if _, err := ReadMessage(br); err == nil {
			t.Fatal("connection still serving after framing loss")
		}
	}

	// The gatekeeper itself is unharmed.
	bo := e.client(boDN)
	if _, err := bo.Submit(boJob, ""); err != nil {
		t.Fatal(err)
	}
}

// TestMalformedMessageKeepsConnection sends an undecodable but complete
// frame: framing survives, so the server replies with an error and the
// same connection keeps working.
func TestMalformedMessageKeepsConnection(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzLegacy})
	conn, br := rawConn(t, e, boDN)

	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	reply, err := ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Err == nil || reply.Err.Code != CodeBadRSL {
		t.Fatalf("malformed frame reply: %+v", reply)
	}

	if err := WriteMessage(conn, &Message{Type: MsgJobRequest, RSL: boJob}); err != nil {
		t.Fatal(err)
	}
	reply, err = ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Err != nil {
		t.Fatal(reply.Err)
	}
	if reply.Contact == "" {
		t.Fatal("valid request after malformed frame got no contact")
	}
}

// TestHandshakeDeadlineFreesStalledConn connects and sends nothing: the
// handshake deadline must close the connection instead of pinning a
// gatekeeper goroutine forever.
func TestHandshakeDeadlineFreesStalledConn(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzLegacy, tune: func(c *Config) {
		c.HandshakeTimeout = 150 * time.Millisecond
	}})
	conn, err := net.Dial("tcp", e.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	_, err = conn.Read(buf)
	if err == nil {
		t.Fatal("server sent data to a silent client")
	}
	if isTimeout(err) {
		t.Fatal("server never closed the stalled connection")
	}
}

// TestIdleTimeoutAndResumedReconnect lets the server idle the client's
// connection out, then issues another request: the client must
// transparently reconnect — via GSI session resumption, because the
// first handshake granted a ticket.
func TestIdleTimeoutAndResumedReconnect(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzLegacy, tune: func(c *Config) {
		c.IdleTimeout = 150 * time.Millisecond
	}})
	bo := e.client(boDN)
	contact, err := bo.Submit(boJob, "")
	if err != nil {
		t.Fatal(err)
	}

	// The idle timeout fires server-side; the client's demux loop sees
	// the close and resets its connection state.
	deadline := time.Now().Add(5 * time.Second)
	for {
		bo.mu.Lock()
		gone := bo.conn == nil
		bo.mu.Unlock()
		if gone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle connection was never closed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	st, err := bo.Status(contact)
	if err != nil {
		t.Fatal(err)
	}
	if st.Owner != boDN {
		t.Fatalf("status owner = %s, want %s", st.Owner, boDN)
	}
	if !bo.Resumed() {
		t.Fatal("reconnect did not use session resumption")
	}
}

// TestSubscriptionExemptFromIdleTimeout: a quiet watch stream must
// outlive the idle timeout — it is server-push by design.
func TestSubscriptionExemptFromIdleTimeout(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzLegacy, tune: func(c *Config) {
		c.IdleTimeout = 150 * time.Millisecond
	}})
	bo := e.client(boDN)
	contact, err := bo.Submit(boJob, "")
	if err != nil {
		t.Fatal(err)
	}
	states, stop, err := bo.Watch(contact)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if s, ok := <-states; !ok {
		t.Fatal("watch stream closed before the first state")
	} else if s == StateCanceled {
		t.Fatalf("initial state %q", s)
	}

	time.Sleep(400 * time.Millisecond) // several idle periods of silence

	if err := bo.Cancel(contact); err != nil {
		t.Fatal(err)
	}
	timeout := time.After(5 * time.Second)
	for {
		select {
		case s, ok := <-states:
			if !ok {
				t.Fatal("watch stream died during the idle period")
			}
			if s == StateCanceled {
				return
			}
		case <-timeout:
			t.Fatal("cancel never reached the subscriber")
		}
	}
}

// TestReconnectAfterClose proves recovery after an explicit reset: the
// next call re-dials and resumes the GSI session from the cached ticket.
func TestReconnectAfterClose(t *testing.T) {
	e := newEnv(t, envOpts{mode: AuthzLegacy})
	bo := e.client(boDN)
	contact, err := bo.Submit(boJob, "")
	if err != nil {
		t.Fatal(err)
	}
	if bo.Resumed() {
		t.Fatal("first connection cannot have been resumed")
	}
	bo.Close()
	st, err := bo.Status(contact)
	if err != nil {
		t.Fatal(err)
	}
	if st.State == "" {
		t.Fatal("status reply carried no state")
	}
	if !bo.Resumed() {
		t.Fatal("reconnect did not resume the GSI session")
	}
}
