// Package gram implements the GT2 Grid Resource Acquisition and
// Management system the paper extends: the Gatekeeper, the Job Manager
// Instance (JMI), the wire protocol between them and Grid clients, and
// both authorization models — the stock GT2 one (grid-mapfile +
// initiator-only management, §4) and the paper's extension (authorization
// callouts before job-request creation and before cancel, query and
// signal, §5).
//
// The wire protocol is newline-delimited JSON over TCP, preceded by a GSI
// mutual-authentication handshake. It is not the GT2 HTTP-framed
// protocol, but it carries the same conversation: a job request with an
// RSL description and a requested account; a reply with a job contact or
// an error; management requests against a job contact. Per the paper's
// protocol extension, error replies distinguish authorization DENIAL from
// authorization SYSTEM FAILURE and carry the denial reason.
package gram

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Code is a GRAM protocol error code.
type Code int

// Protocol error codes.
const (
	CodeOK Code = iota
	// CodeAuthentication: the GSI handshake or credential check failed.
	CodeAuthentication
	// CodeAuthorizationDenied: a policy evaluation point denied the
	// request (the paper's authorization-error extension).
	CodeAuthorizationDenied
	// CodeAuthorizationFailure: the authorization system itself failed
	// (misconfigured callout, unreachable PDP, unparseable policy).
	CodeAuthorizationFailure
	// CodeBadRSL: the job description did not parse or validate.
	CodeBadRSL
	// CodeNoLocalAccount: no local account could be mapped for the user.
	CodeNoLocalAccount
	// CodeNoSuchJob: the job contact does not name a live job.
	CodeNoSuchJob
	// CodeJobState: the operation is invalid in the job's current state.
	CodeJobState
	// CodeLocalScheduler: the local job control system refused the job.
	CodeLocalScheduler
	// CodeInternal: anything else.
	CodeInternal
)

// String returns the code name.
func (c Code) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeAuthentication:
		return "authentication-failed"
	case CodeAuthorizationDenied:
		return "authorization-denied"
	case CodeAuthorizationFailure:
		return "authorization-system-failure"
	case CodeBadRSL:
		return "bad-rsl"
	case CodeNoLocalAccount:
		return "no-local-account"
	case CodeNoSuchJob:
		return "no-such-job"
	case CodeJobState:
		return "bad-job-state"
	case CodeLocalScheduler:
		return "local-scheduler-error"
	default:
		return "internal-error"
	}
}

// ProtoError is the error payload of a reply.
type ProtoError struct {
	Code    Code   `json:"code"`
	Source  string `json:"source,omitempty"`
	Message string `json:"message,omitempty"`
}

// Error implements the error interface.
func (e *ProtoError) Error() string {
	if e.Source != "" {
		return fmt.Sprintf("gram: %s (%s): %s", e.Code, e.Source, e.Message)
	}
	return fmt.Sprintf("gram: %s: %s", e.Code, e.Message)
}

// Message kinds exchanged after the handshake.
const (
	MsgJobRequest  = "job-request"
	MsgJobReply    = "job-reply"
	MsgManage      = "manage-request"
	MsgManageReply = "manage-reply"
)

// Management actions carried by MsgManage. These are the GRAM client
// operations; they map onto the policy actions cancel, information and
// signal.
const (
	ManageCancel = "cancel"
	ManageStatus = "status"
	ManageSignal = "signal"
)

// Signal subcommands (the paper: "signal describes a variety of job
// management actions such as changing priority").
const (
	SignalSuspend  = "suspend"
	SignalResume   = "resume"
	SignalPriority = "priority"
)

// Message is the protocol envelope.
type Message struct {
	Type string `json:"type"`

	// Job request fields.
	RSL     string `json:"rsl,omitempty"`
	Account string `json:"account,omitempty"`

	// Management fields.
	JobContact string `json:"jobContact,omitempty"`
	Action     string `json:"action,omitempty"`
	Signal     string `json:"signal,omitempty"`
	SignalArg  string `json:"signalArg,omitempty"`

	// Reply fields.
	State   string      `json:"state,omitempty"`
	Owner   string      `json:"owner,omitempty"`
	Detail  string      `json:"detail,omitempty"`
	Contact string      `json:"contact,omitempty"`
	Err     *ProtoError `json:"error,omitempty"`
}

// WriteMessage frames and sends a message.
func WriteMessage(w io.Writer, m *Message) error {
	b, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("encode message: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("write message: %w", err)
	}
	return nil
}

// ReadMessage reads one framed message.
func ReadMessage(br *bufio.Reader) (*Message, error) {
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	var m Message
	if err := json.Unmarshal(line, &m); err != nil {
		return nil, fmt.Errorf("decode message: %w", err)
	}
	return &m, nil
}
