// Package gram implements the GT2 Grid Resource Acquisition and
// Management system the paper extends: the Gatekeeper, the Job Manager
// Instance (JMI), the wire protocol between them and Grid clients, and
// both authorization models — the stock GT2 one (grid-mapfile +
// initiator-only management, §4) and the paper's extension (authorization
// callouts before job-request creation and before cancel, query and
// signal, §5).
//
// The wire protocol is newline-delimited JSON over TCP, preceded by a GSI
// mutual-authentication handshake. It is not the GT2 HTTP-framed
// protocol, but it carries the same conversation: a job request with an
// RSL description and a requested account; a reply with a job contact or
// an error; management requests against a job contact. Per the paper's
// protocol extension, error replies distinguish authorization DENIAL from
// authorization SYSTEM FAILURE and carry the denial reason.
package gram

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// FeatureMux is the capability string announced in the GSI handshake
// hello by peers that speak protocol version 2: request/reply
// correlation via Message.ID, allowing many in-flight requests to share
// one authenticated connection. Version-1 peers (which announce
// nothing) get the original strictly-serial conversation.
const FeatureMux = "gram-mux/2"

// MaxMessageSize caps one framed wire message. The newline-delimited
// JSON framing would otherwise let a misbehaving peer balloon server
// memory with a single unbounded line.
const MaxMessageSize = 1 << 20

// Wire framing errors.
var (
	// ErrMessageTooLarge reports a frame exceeding MaxMessageSize. The
	// stream has lost framing (the rest of the oversized line was never
	// consumed), so the connection must be torn down after reporting.
	ErrMessageTooLarge = errors.New("gram: message exceeds size limit")
	// ErrMalformedMessage reports a complete frame that failed to
	// decode. Framing is intact, so the connection can carry on after
	// an error reply.
	ErrMalformedMessage = errors.New("gram: malformed message")
)

// Code is a GRAM protocol error code.
type Code int

// Protocol error codes.
const (
	CodeOK Code = iota
	// CodeAuthentication: the GSI handshake or credential check failed.
	CodeAuthentication
	// CodeAuthorizationDenied: a policy evaluation point denied the
	// request (the paper's authorization-error extension).
	CodeAuthorizationDenied
	// CodeAuthorizationFailure: the authorization system itself failed
	// (misconfigured callout, unreachable PDP, unparseable policy).
	CodeAuthorizationFailure
	// CodeBadRSL: the job description did not parse or validate.
	CodeBadRSL
	// CodeNoLocalAccount: no local account could be mapped for the user.
	CodeNoLocalAccount
	// CodeNoSuchJob: the job contact does not name a live job.
	CodeNoSuchJob
	// CodeJobState: the operation is invalid in the job's current state.
	CodeJobState
	// CodeLocalScheduler: the local job control system refused the job.
	CodeLocalScheduler
	// CodeInternal: anything else.
	CodeInternal
	// CodeAuthorizationUnavailable: the authorization system failed
	// transiently while deciding a MANAGEMENT request (callout timeout,
	// open circuit breaker, unreachable PDP). Unlike
	// CodeAuthorizationFailure it is RETRYABLE: the job exists and
	// nothing was decided about it, so the client should back off and
	// retry. Job STARTUP never uses it — a startup the authorization
	// system could not decide is refused outright (fail-closed,
	// CodeAuthorizationFailure), per the paper's default-deny model.
	// Appended after CodeInternal so every pre-existing code keeps its
	// wire value for old peers.
	CodeAuthorizationUnavailable
)

// String returns the code name.
func (c Code) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeAuthentication:
		return "authentication-failed"
	case CodeAuthorizationDenied:
		return "authorization-denied"
	case CodeAuthorizationFailure:
		return "authorization-system-failure"
	case CodeBadRSL:
		return "bad-rsl"
	case CodeNoLocalAccount:
		return "no-local-account"
	case CodeNoSuchJob:
		return "no-such-job"
	case CodeJobState:
		return "bad-job-state"
	case CodeLocalScheduler:
		return "local-scheduler-error"
	case CodeAuthorizationUnavailable:
		return "authorization-unavailable"
	default:
		return "internal-error"
	}
}

// ProtoError is the error payload of a reply.
type ProtoError struct {
	Code    Code   `json:"code"`
	Source  string `json:"source,omitempty"`
	Message string `json:"message,omitempty"`
}

// Error implements the error interface.
func (e *ProtoError) Error() string {
	if e.Source != "" {
		return fmt.Sprintf("gram: %s (%s): %s", e.Code, e.Source, e.Message)
	}
	return fmt.Sprintf("gram: %s: %s", e.Code, e.Message)
}

// Message kinds exchanged after the handshake.
const (
	MsgJobRequest  = "job-request"
	MsgJobReply    = "job-reply"
	MsgManage      = "manage-request"
	MsgManageReply = "manage-reply"
)

// Management actions carried by MsgManage. These are the GRAM client
// operations; they map onto the policy actions cancel, information and
// signal.
const (
	ManageCancel = "cancel"
	ManageStatus = "status"
	ManageSignal = "signal"
)

// Signal subcommands (the paper: "signal describes a variety of job
// management actions such as changing priority").
const (
	SignalSuspend  = "suspend"
	SignalResume   = "resume"
	SignalPriority = "priority"
)

// Message is the protocol envelope.
type Message struct {
	Type string `json:"type"`

	// ID correlates a reply with its request on a multiplexed
	// connection (protocol version 2, negotiated via FeatureMux in the
	// GSI handshake hello). Zero on version-1 conversations, where
	// strict request/reply ordering makes correlation implicit.
	ID uint64 `json:"id,omitempty"`

	// Job request fields.
	RSL     string `json:"rsl,omitempty"`
	Account string `json:"account,omitempty"`

	// Management fields.
	JobContact string `json:"jobContact,omitempty"`
	Action     string `json:"action,omitempty"`
	Signal     string `json:"signal,omitempty"`
	SignalArg  string `json:"signalArg,omitempty"`

	// Reply fields.
	State   string      `json:"state,omitempty"`
	Owner   string      `json:"owner,omitempty"`
	Detail  string      `json:"detail,omitempty"`
	Contact string      `json:"contact,omitempty"`
	Err     *ProtoError `json:"error,omitempty"`
}

// WriteMessage frames and sends a message.
func WriteMessage(w io.Writer, m *Message) error {
	b, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("encode message: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("write message: %w", err)
	}
	return nil
}

// ReadMessage reads one framed message. It returns ErrMessageTooLarge
// for frames over MaxMessageSize (connection unusable afterwards) and
// ErrMalformedMessage for complete frames that fail to decode
// (connection still usable).
func ReadMessage(br *bufio.Reader) (*Message, error) {
	var line []byte
	for {
		frag, err := br.ReadSlice('\n')
		line = append(line, frag...)
		if len(line) > MaxMessageSize {
			return nil, ErrMessageTooLarge
		}
		if err == nil {
			break
		}
		if err != bufio.ErrBufferFull {
			return nil, err
		}
	}
	var m Message
	if err := json.Unmarshal(line, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformedMessage, err)
	}
	return &m, nil
}
