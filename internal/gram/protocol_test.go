package gram

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"gridauth/internal/core"
	"gridauth/internal/rsl"
)

func TestMessageRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Type: MsgJobRequest, RSL: `&(executable=a)(count=2)`, Account: "alice"},
		{Type: MsgJobReply, Contact: "gram://h/job/1"},
		{Type: MsgManage, JobContact: "gram://h/job/1", Action: ManageSignal, Signal: SignalPriority, SignalArg: "7"},
		{Type: MsgManageReply, State: string(StateActive), Owner: "/O=Grid/CN=A", Detail: "d"},
		{Type: MsgJobReply, Err: &ProtoError{Code: CodeAuthorizationDenied, Source: "vo", Message: "no"}},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	for i, want := range msgs {
		got, err := ReadMessage(br)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if got.Type != want.Type || got.RSL != want.RSL || got.Action != want.Action ||
			got.Signal != want.Signal || got.SignalArg != want.SignalArg ||
			got.Contact != want.Contact || got.State != want.State {
			t.Errorf("msg %d: got %+v, want %+v", i, got, want)
		}
		if (got.Err == nil) != (want.Err == nil) {
			t.Errorf("msg %d: error presence mismatch", i)
		} else if want.Err != nil && (got.Err.Code != want.Err.Code || got.Err.Source != want.Err.Source) {
			t.Errorf("msg %d: err = %+v", i, got.Err)
		}
	}
}

func TestReadMessageRejectsGarbage(t *testing.T) {
	br := bufio.NewReader(strings.NewReader("not json\n"))
	if _, err := ReadMessage(br); err == nil {
		t.Errorf("garbage accepted")
	}
}

func TestProtoErrorFormatting(t *testing.T) {
	withSource := &ProtoError{Code: CodeAuthorizationDenied, Source: "policy:VO", Message: "count too high"}
	if !strings.Contains(withSource.Error(), "policy:VO") || !strings.Contains(withSource.Error(), "authorization-denied") {
		t.Errorf("Error() = %q", withSource.Error())
	}
	plain := &ProtoError{Code: CodeNoSuchJob, Message: "gone"}
	if strings.Contains(plain.Error(), "()") {
		t.Errorf("Error() = %q", plain.Error())
	}
	// Every code has a distinct printable name.
	seen := map[string]Code{}
	for c := CodeOK; c <= CodeInternal; c++ {
		name := c.String()
		if prev, dup := seen[name]; dup {
			t.Errorf("codes %d and %d share name %q", prev, c, name)
		}
		seen[name] = c
	}
}

func TestSpecToLRM(t *testing.T) {
	spec, err := rsl.ParseSpec(`&(executable=sim)(count=4)(maxtime=30)(maxmemory=512)(disk=100)(priority=3)(simduration=600)`)
	if err != nil {
		t.Fatal(err)
	}
	got, perr := specToLRM(spec, "alice", 1)
	if perr != nil {
		t.Fatal(perr)
	}
	if got.Executable != "sim" || got.Account != "alice" || got.Count != 4 {
		t.Errorf("basic fields: %+v", got)
	}
	if got.MaxTime != 30*time.Minute {
		t.Errorf("MaxTime = %v", got.MaxTime)
	}
	if got.MemoryMB != 512 || got.DiskMB != 100 || got.Priority != 3 {
		t.Errorf("resources: %+v", got)
	}
	if got.Duration != 10*time.Minute {
		t.Errorf("Duration = %v", got.Duration)
	}

	// Defaults.
	minimal, err := rsl.ParseSpec(`&(executable=sim)`)
	if err != nil {
		t.Fatal(err)
	}
	got, perr = specToLRM(minimal, "a", 7)
	if perr != nil {
		t.Fatal(perr)
	}
	if got.Count != 1 || got.Priority != 7 || got.Duration != 0 {
		t.Errorf("defaults: %+v", got)
	}

	// Bad integers yield BadRSL protocol errors.
	for _, attr := range []string{"count", "maxtime", "maxmemory", "disk", "priority", "simduration"} {
		s := rsl.NewSpec().Set("executable", "x").Set(attr, "frog")
		if _, perr := specToLRM(s, "a", 0); perr == nil || perr.Code != CodeBadRSL {
			t.Errorf("%s=frog: perr = %v", attr, perr)
		}
	}
	zero := rsl.NewSpec().Set("executable", "x").Set("count", "0")
	if _, perr := specToLRM(zero, "a", 0); perr == nil {
		t.Errorf("count=0 accepted")
	}
}

func TestManageToPolicyAction(t *testing.T) {
	tests := map[string]string{
		ManageCancel: "cancel",
		ManageStatus: "information",
		ManageSignal: "signal",
		"bogus":      "",
	}
	for in, want := range tests {
		if got := manageToPolicyAction(in); got != want {
			t.Errorf("manageToPolicyAction(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDecisionToProto(t *testing.T) {
	if perr := decisionToProto(core.PermitDecision("s", "ok")); perr != nil {
		t.Errorf("permit produced %v", perr)
	}
	d := decisionToProto(core.DenyDecision("policy:VO", "count"))
	if d == nil || d.Code != CodeAuthorizationDenied || d.Source != "policy:VO" {
		t.Errorf("deny mapped to %+v", d)
	}
	e := decisionToProto(core.ErrorDecision("callout", "down"))
	if e == nil || e.Code != CodeAuthorizationFailure {
		t.Errorf("error mapped to %+v", e)
	}
}

func TestIsAuthorizationHelpers(t *testing.T) {
	denied := error(&ProtoError{Code: CodeAuthorizationDenied})
	failure := error(&ProtoError{Code: CodeAuthorizationFailure})
	other := errors.New("net down")
	if !IsAuthorizationDenied(denied) || IsAuthorizationDenied(failure) || IsAuthorizationDenied(other) {
		t.Errorf("IsAuthorizationDenied wrong")
	}
	if !IsAuthorizationFailure(failure) || IsAuthorizationFailure(denied) || IsAuthorizationFailure(other) {
		t.Errorf("IsAuthorizationFailure wrong")
	}
}
