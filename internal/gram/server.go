package gram

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"gridauth/internal/accounts"
	"gridauth/internal/audit"
	"gridauth/internal/core"
	"gridauth/internal/gridmap"
	"gridauth/internal/gsi"
	"gridauth/internal/jobcontrol"
	"gridauth/internal/obs"
	"gridauth/internal/policy"
	"gridauth/internal/rsl"
)

// Peer is the authenticated remote party (alias of the GSI handshake
// result).
type Peer = gsi.Peer

// Placement selects where the policy evaluation point lives (§6.2
// discusses the trade-off).
type Placement int

// PEP placements.
const (
	// PlacementJM puts the PEP in the Job Manager (the paper's design:
	// the JM parses job descriptions, so it can evaluate policy that
	// depends on the request's content). Vulnerable to JM tampering
	// because the JM runs under the user's local credential.
	PlacementJM Placement = iota + 1
	// PlacementGatekeeper puts the PEP in the Gatekeeper: tamper-proof,
	// at the cost of more complex code in the trusted component.
	PlacementGatekeeper
)

// String returns the placement name.
func (p Placement) String() string {
	switch p {
	case PlacementJM:
		return "job-manager"
	case PlacementGatekeeper:
		return "gatekeeper"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Config assembles a Gatekeeper.
type Config struct {
	// Credential is the gatekeeper's service credential.
	Credential *gsi.Credential
	// Trust verifies client credential chains.
	Trust *gsi.TrustStore
	// VOCerts are certificates of VOs whose assertions are accepted.
	VOCerts []*gsi.Certificate
	// GridMap is the grid-mapfile (ACL + account mapping).
	GridMap *gridmap.Map
	// Accounts is the local account layer; nil disables account rights
	// checks.
	Accounts *accounts.Manager
	// DynamicAccounts leases pool accounts for users absent from the
	// grid-mapfile (§6.1's dynamic accounts).
	DynamicAccounts bool
	// DynamicLease is the dynamic account lease duration.
	DynamicLease time.Duration
	// Registry is the authorization callout registry (required for
	// AuthzCallout).
	Registry *core.Registry
	// Audit, when set, receives a record for every callout decision the
	// gatekeeper and its JMIs act on, restoring the "security, audit,
	// accounting" trail the paper counts among fine-grain
	// authorization's repairs (§4.3). Nil disables PEP-side auditing.
	Audit *audit.Log
	// Mode selects the authorization model.
	Mode AuthzMode
	// Placement selects the PEP location in callout mode.
	Placement Placement
	// Cluster is the local job control system.
	Cluster *jobcontrol.Cluster
	// DefaultPriority is the scheduler priority for jobs that do not set
	// one.
	DefaultPriority int
	// TamperJMI makes every JMI skip its own management authorization,
	// simulating the §6.2 user-tampered job manager (test hook for E7).
	TamperJMI bool
	// OnJobStart, when set, is called after a job is successfully
	// submitted to the local scheduler, with the GRAM job contact (the
	// JobID presented to startup callouts) and the scheduler's job ID.
	// Accounting layers (e.g. the VO allocation tracker) use it to
	// rebind admission-time reservations to scheduler jobs.
	OnJobStart func(jobContact, lrmJobID string)
	// OnJobAborted, when set, is called when a job request passed the
	// authorization callout but failed a later step (account rights,
	// local scheduler), so reservations made at admission can be
	// released.
	OnJobAborted func(jobContact string)
	// TicketLifetime bounds the GSI session-resumption tickets issued
	// after full handshakes (0 selects gsi.DefaultTicketLifetime;
	// negative disables resumption). Individual tickets are further
	// clamped to the client credential's remaining validity.
	TicketLifetime time.Duration
	// TicketRing, when set, backs the resumption-ticket issuer with a
	// shared (typically cluster-replicated) secret ring instead of a
	// fresh private key, so tickets granted by this gatekeeper redeem on
	// every node holding the same ring secrets and survive node
	// restarts. Ignored when TicketLifetime is negative.
	TicketRing *gsi.SecretRing
	// Jobs, when set, is the job table this gatekeeper registers JMIs
	// in. Cluster deployments pass one shared table (plus one shared
	// Cluster) to every node so management requests for any job succeed
	// on any node; nil selects a private per-gatekeeper table.
	Jobs *JobTable
	// ConnWorkers bounds concurrent request processing per multiplexed
	// connection (0 selects 8). Excess requests queue in arrival order;
	// version-1 connections are inherently serial.
	ConnWorkers int
	// HandshakeTimeout bounds the GSI handshake on an accepted
	// connection (0 selects 10s; negative disables), so a client that
	// connects and stalls cannot pin a gatekeeper goroutine.
	HandshakeTimeout time.Duration
	// IdleTimeout closes an authenticated connection that carries no
	// client traffic for the duration (0 selects 5m; negative
	// disables). Subscription streams are exempt: they are
	// server-push by design.
	IdleTimeout time.Duration
	// Metrics, when set, receives the gatekeeper's operational counters
	// and gauges (requests, in-flight, connections, worker-queue depth,
	// handshake outcomes) in addition to whatever the registry itself
	// reports. Nil disables.
	Metrics *obs.Metrics
	// Traces, when set, retains a decision trace for every dispatched
	// request, retrievable by the RequestID the request's audit records
	// carry. Nil disables tracing (requests still get a RequestID).
	Traces *obs.TraceStore
}

// Gatekeeper is the resource-side GRAM daemon: it authenticates clients,
// authorizes and maps job requests, creates Job Manager Instances and
// routes management traffic to them (Figures 1 and 2).
type Gatekeeper struct {
	cfg  Config
	auth *gsi.Authenticator

	mu    sync.Mutex
	jobs  *JobTable
	conns map[net.Conn]struct{}
	hub   *watchHub

	listener net.Listener
	wg       sync.WaitGroup
	closed   chan struct{}

	// baseCtx is the root of every per-request context; cancelBase fires
	// in Close so in-flight policy evaluations (context-aware PDPs in a
	// parallel chain) stop with the daemon.
	baseCtx    context.Context
	cancelBase context.CancelFunc
}

// NewGatekeeper validates the configuration and builds a gatekeeper.
func NewGatekeeper(cfg Config) (*Gatekeeper, error) {
	if cfg.Credential == nil || cfg.Trust == nil {
		return nil, errors.New("gram: gatekeeper needs a credential and a trust store")
	}
	if cfg.GridMap == nil {
		return nil, errors.New("gram: gatekeeper needs a grid-mapfile")
	}
	if cfg.Cluster == nil {
		return nil, errors.New("gram: gatekeeper needs a local job control system")
	}
	if cfg.Mode == 0 {
		cfg.Mode = AuthzLegacy
	}
	if cfg.Placement == 0 {
		cfg.Placement = PlacementJM
	}
	if cfg.Mode == AuthzCallout && cfg.Registry == nil {
		return nil, errors.New("gram: callout mode needs a registry")
	}
	if cfg.DynamicLease == 0 {
		cfg.DynamicLease = 8 * time.Hour
	}
	if cfg.ConnWorkers <= 0 {
		cfg.ConnWorkers = 8
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	opts := []gsi.AuthOption{gsi.WithFeatures(FeatureMux)}
	if cfg.Metrics != nil {
		opts = append(opts, gsi.WithMetrics(cfg.Metrics))
	}
	for _, c := range cfg.VOCerts {
		opts = append(opts, gsi.WithVOCert(c))
	}
	if cfg.TicketLifetime >= 0 {
		var issuer *gsi.TicketIssuer
		if cfg.TicketRing != nil {
			issuer = gsi.NewTicketIssuerWithRing(cfg.TicketRing, cfg.TicketLifetime)
		} else {
			var err error
			issuer, err = gsi.NewTicketIssuer(cfg.TicketLifetime)
			if err != nil {
				return nil, fmt.Errorf("gram: %w", err)
			}
		}
		opts = append(opts, gsi.WithTicketIssuer(issuer))
	}
	if cfg.Jobs == nil {
		cfg.Jobs = NewJobTable()
	}
	baseCtx, cancelBase := context.WithCancel(context.Background())
	return &Gatekeeper{
		cfg:        cfg,
		auth:       gsi.NewAuthenticator(cfg.Credential, cfg.Trust, opts...),
		jobs:       cfg.Jobs,
		conns:      make(map[net.Conn]struct{}),
		hub:        newWatchHub(cfg.Cluster),
		closed:     make(chan struct{}),
		baseCtx:    baseCtx,
		cancelBase: cancelBase,
	}, nil
}

// Serve accepts connections on l until Close is called. It returns after
// the accept loop ends; per-connection goroutines are waited for by
// Close.
func (g *Gatekeeper) Serve(l net.Listener) error {
	g.mu.Lock()
	g.listener = l
	// Close may have run before the listener was registered, in which
	// case it had nothing to close and the accept loop below would block
	// forever on a listener nobody will ever shut.
	alreadyClosed := false
	select {
	case <-g.closed:
		alreadyClosed = true
	default:
	}
	g.mu.Unlock()
	if alreadyClosed {
		_ = l.Close()
		return nil
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-g.closed:
				return nil
			default:
				return fmt.Errorf("gram: accept: %w", err)
			}
		}
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			g.handleConn(conn)
		}()
	}
}

// Close stops the accept loop, severs every active connection and waits
// for connection handlers to drain.
func (g *Gatekeeper) Close() {
	g.mu.Lock()
	select {
	case <-g.closed:
	default:
		close(g.closed)
	}
	l := g.listener
	conns := make([]net.Conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()
	g.cancelBase()
	if l != nil {
		_ = l.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	g.wg.Wait()
}

// track registers a live connection; the returned func forgets it.
func (g *Gatekeeper) track(conn net.Conn) func() {
	g.mu.Lock()
	g.conns[conn] = struct{}{}
	g.mu.Unlock()
	return func() {
		g.mu.Lock()
		delete(g.conns, conn)
		g.mu.Unlock()
	}
}

// JobCount returns the number of JMIs in the gatekeeper's job table
// (the shared total when the table is cluster-shared).
func (g *Gatekeeper) JobCount() int {
	return g.jobs.Len()
}

// Job returns the JMI for a contact (test and tooling hook).
func (g *Gatekeeper) Job(contact string) (*JMI, bool) {
	return g.jobs.Lookup(contact)
}

func (g *Gatekeeper) handleConn(conn net.Conn) {
	defer conn.Close()
	defer g.track(conn)()
	if g.cfg.HandshakeTimeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(g.cfg.HandshakeTimeout))
	}
	peer, br, err := g.auth.HandshakeAccept(conn)
	if err != nil {
		// The handshake failed; there is no authenticated channel to
		// report the error on, matching GT2 behaviour.
		return
	}
	_ = conn.SetDeadline(time.Time{})
	if m := g.cfg.Metrics; m != nil {
		m.ConnsActive.Inc()
		defer m.ConnsActive.Dec()
	}

	// A version-2 peer gets a bounded worker pool so many requests on
	// the one connection are served concurrently; a version-1 peer gets
	// the original serial loop (it could not correlate replies anyway).
	mux := peer.HasFeature(FeatureMux)
	var (
		writeMu  sync.Mutex
		inflight sync.WaitGroup
		workers  chan struct{}
	)
	if mux {
		workers = make(chan struct{}, g.cfg.ConnWorkers)
	}
	defer inflight.Wait()
	write := func(m *Message) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		return WriteMessage(conn, m)
	}
	for {
		if g.cfg.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(g.cfg.IdleTimeout))
		}
		msg, err := ReadMessage(br)
		if err != nil {
			switch {
			case errors.Is(err, ErrMalformedMessage):
				// The frame was complete but undecodable; framing is
				// intact, so report the error and keep serving.
				if write(&Message{
					Type: MsgJobReply,
					Err:  &ProtoError{Code: CodeBadRSL, Message: err.Error()},
				}) == nil {
					continue
				}
				return
			case errors.Is(err, ErrMessageTooLarge):
				// Framing is lost (the rest of the oversized line was
				// never consumed): report, then hang up.
				_ = write(&Message{
					Type: MsgJobReply,
					Err:  &ProtoError{Code: CodeInternal, Message: err.Error()},
				})
				return
			case errors.Is(err, io.EOF), errors.Is(err, net.ErrClosed), isTimeout(err):
				return
			default:
				_ = write(&Message{
					Type: MsgJobReply,
					Err:  &ProtoError{Code: CodeInternal, Message: err.Error()},
				})
				return
			}
		}
		if msg.Type == MsgSubscribe {
			// Subscriptions take over the connection for streaming: let
			// in-flight replies drain, then lift the idle deadline — the
			// stream is server-push and a quiet subscriber is not idle.
			inflight.Wait()
			_ = conn.SetReadDeadline(time.Time{})
			g.handleSubscribe(peer, msg, conn)
			return
		}
		if !mux {
			if write(g.dispatch(peer, msg)) != nil {
				return
			}
			continue
		}
		if m := g.cfg.Metrics; m != nil {
			// Queue-depth gauge: how many reads are blocked waiting for a
			// free worker. Sampled by /metrics; nonzero sustained values
			// mean ConnWorkers is the bottleneck.
			m.QueueWaiting.Inc()
			workers <- struct{}{} // backpressure: block reads at the pool bound
			m.QueueWaiting.Dec()
		} else {
			workers <- struct{}{} // backpressure: block reads at the pool bound
		}
		inflight.Add(1)
		go func(msg *Message) {
			defer inflight.Done()
			defer func() { <-workers }()
			reply := g.dispatch(peer, msg)
			reply.ID = msg.ID
			_ = write(reply)
		}(msg)
	}
}

// dispatch authorizes and executes one request message, returning the
// reply (never nil). Each message gets its own context rooted in the
// daemon's, so policy evaluation for one request is cancellable
// independently and everything stops when the gatekeeper closes.
//
// Every request is assigned a RequestID here — the single generation
// point, so all audit records of one request carry the same ID and IDs
// never interleave across concurrent requests. When tracing is enabled
// a Trace rides the same context; it is published to the store when the
// request finishes, whatever the outcome (even requests refused before
// any callout ran appear, with zero spans and no summary).
func (g *Gatekeeper) dispatch(peer *Peer, msg *Message) *Message {
	reqCtx, cancelReq := context.WithCancel(g.baseCtx)
	defer cancelReq()
	rid := obs.NewRequestID()
	reqCtx = obs.WithRequestID(reqCtx, rid)
	if g.cfg.Traces != nil {
		tr := obs.NewTrace(rid, string(peer.Identity))
		reqCtx = obs.WithTrace(reqCtx, tr)
		defer g.cfg.Traces.Publish(tr)
	}
	if m := g.cfg.Metrics; m != nil {
		m.Requests.Inc()
		m.RequestsInflight.Inc()
		defer m.RequestsInflight.Dec()
	}
	switch msg.Type {
	case MsgJobRequest:
		return g.handleJobRequest(reqCtx, peer, msg)
	case MsgManage:
		return g.handleManage(reqCtx, peer, msg)
	default:
		return &Message{
			Type: MsgManageReply,
			Err:  &ProtoError{Code: CodeInternal, Message: fmt.Sprintf("unknown message type %q", msg.Type)},
		}
	}
}

// isTimeout reports whether err is a network deadline expiry (the idle
// timeout firing), which warrants a silent close rather than an error
// reply.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// handleJobRequest implements the Figure 1/2 startup path:
// authentication has already happened; now authorization, account
// mapping, JMI creation and job submission.
func (g *Gatekeeper) handleJobRequest(ctx context.Context, peer *Peer, msg *Message) *Message {
	fail := func(perr *ProtoError) *Message {
		return &Message{Type: MsgJobReply, Err: perr}
	}
	if peer.Limited {
		// GT2 gatekeepers refuse job startup with limited proxies.
		return fail(&ProtoError{Code: CodeAuthentication, Message: "limited proxy may not start jobs"})
	}

	// Parse and validate the RSL job description.
	spec, err := rsl.ParseSpec(msg.RSL)
	if err != nil {
		return fail(&ProtoError{Code: CodeBadRSL, Message: err.Error()})
	}
	if err := rsl.Validate(spec); err != nil {
		return fail(&ProtoError{Code: CodeBadRSL, Message: err.Error()})
	}

	// Stock GT2 authorization: presence in the grid-mapfile. With
	// dynamic accounts the mapping step can create an account instead,
	// relieving shortcoming (5).
	account, mapped := g.cfg.GridMap.LookupAccount(peer.Identity, msg.Account)
	if !mapped {
		if !g.cfg.DynamicAccounts || g.cfg.Accounts == nil {
			return fail(&ProtoError{
				Code:    CodeNoLocalAccount,
				Message: fmt.Sprintf("no grid-mapfile entry maps %s (requested account %q)", peer.Identity, msg.Account),
			})
		}
		lease, lerr := g.cfg.Accounts.Lease(peer.Identity, rightsFromSpec(spec), g.cfg.DynamicLease)
		if lerr != nil {
			return fail(&ProtoError{Code: CodeNoLocalAccount, Message: lerr.Error()})
		}
		account = lease.Name
	}

	// Allocate the GRAM job contact before authorization so callouts
	// (and any accounting they do) see a stable job identifier. The ID
	// comes from the job table, so contacts stay unique across every
	// gatekeeper sharing it.
	contact := fmt.Sprintf("gram://%s/job/%d", g.cfg.Credential.Identity().CN(), g.jobs.next())
	abort := func(perr *ProtoError) *Message {
		if g.cfg.OnJobAborted != nil {
			g.cfg.OnJobAborted(contact)
		}
		return fail(perr)
	}

	// The paper's extension: evaluate the start request against the
	// callout chain before creating the job manager request.
	if g.cfg.Mode == AuthzCallout {
		req := &core.Request{
			Subject:    peer.Identity,
			Assertions: peer.Assertions,
			Action:     policy.ActionStart,
			JobID:      contact,
			Spec:       spec,
			Account:    account,
		}
		calloutType := core.CalloutJobManager
		if g.cfg.Placement == PlacementGatekeeper {
			calloutType = core.CalloutGatekeeper
		}
		d := g.cfg.Registry.InvokeContext(ctx, calloutType, req)
		auditDecision(ctx, g.cfg.Audit, calloutType, req, d)
		if perr := decisionToProto(d); perr != nil {
			return fail(perr)
		}
	}

	// Local enforcement vehicle: the account's coarse rights (§4.3(4)).
	if g.cfg.Accounts != nil {
		if acct, err := g.cfg.Accounts.Lookup(account); err == nil {
			count := 1
			if spec.Has("count") {
				count, _ = strconv.Atoi(spec.Get("count"))
			}
			disk := 0
			if spec.Has("disk") {
				disk, _ = strconv.Atoi(spec.Get("disk"))
			}
			var wall time.Duration
			if spec.Has("maxtime") {
				m, _ := strconv.Atoi(spec.Get("maxtime"))
				wall = time.Duration(m) * time.Minute
			}
			if err := acct.CheckJob(count, disk, wall); err != nil {
				return abort(&ProtoError{Code: CodeAuthorizationDenied, Source: "local-account", Message: err.Error()})
			}
		}
	}

	// Create the Job Manager Instance and submit the job.
	jmi := &JMI{
		Contact:  contact,
		Owner:    peer.Identity,
		Account:  account,
		Spec:     spec,
		mode:     g.cfg.Mode,
		registry: g.cfg.Registry,
		auditLog: g.cfg.Audit,
		cluster:  g.cfg.Cluster,
		tampered: g.cfg.TamperJMI,
	}
	g.jobs.add(contact, jmi)

	if perr := jmi.start(g.cfg.DefaultPriority); perr != nil {
		g.jobs.remove(contact)
		return abort(perr)
	}
	g.hub.register(jmi.LRMJobID(), contact)
	if g.cfg.OnJobStart != nil {
		g.cfg.OnJobStart(contact, jmi.LRMJobID())
	}
	return &Message{Type: MsgJobReply, Contact: contact}
}

// rightsFromSpec derives the per-request account configuration for a
// dynamic lease — §6.1: "account configuration relevant to policies for a
// particular resource management request".
func rightsFromSpec(spec *rsl.Spec) accounts.Rights {
	r := accounts.Rights{}
	if spec.Has("count") {
		if n, err := strconv.Atoi(spec.Get("count")); err == nil {
			r.MaxCPUs = n
		}
	}
	if spec.Has("disk") {
		if n, err := strconv.Atoi(spec.Get("disk")); err == nil {
			r.DiskQuotaMB = n
		}
	}
	if spec.Has("maxtime") {
		if n, err := strconv.Atoi(spec.Get("maxtime")); err == nil {
			r.MaxWallTime = time.Duration(n) * time.Minute
		}
	}
	return r
}

// handleManage routes a management request to the job's JMI. With the
// PEP placed in the Gatekeeper, authorization happens here — in the
// trusted component — and the JMI is told to skip its own check; the
// trade-off §6.2 describes.
func (g *Gatekeeper) handleManage(ctx context.Context, peer *Peer, msg *Message) *Message {
	jmi, ok := g.jobs.Lookup(msg.JobContact)
	if !ok {
		return manageError(&ProtoError{Code: CodeNoSuchJob, Message: fmt.Sprintf("no job %q", msg.JobContact)})
	}
	if g.cfg.Mode == AuthzCallout && g.cfg.Placement == PlacementGatekeeper {
		action := manageToPolicyAction(msg.Action)
		if action == "" {
			return manageError(&ProtoError{Code: CodeInternal, Message: fmt.Sprintf("unknown action %q", msg.Action)})
		}
		req := &core.Request{
			Subject:    peer.Identity,
			Assertions: peer.Assertions,
			Action:     action,
			JobID:      jmi.Contact,
			JobOwner:   jmi.Owner,
			Spec:       jmi.Spec,
		}
		d := g.cfg.Registry.InvokeContext(ctx, core.CalloutGatekeeper, req)
		auditDecision(ctx, g.cfg.Audit, core.CalloutGatekeeper, req, d)
		if perr := decisionToProtoManagement(d); perr != nil {
			return manageError(perr)
		}
		return jmi.managePreauthorized(msg)
	}
	return jmi.ManageContext(ctx, peer, msg)
}
