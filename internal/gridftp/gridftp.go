// Package gridftp demonstrates the paper's concluding plan — "to use the
// same mechanism to provide pluggable authorization in other components
// of the Globus Toolkit" — by putting a GridFTP-style data service behind
// the identical callout architecture that guards GRAM.
//
// The service stores files in an in-memory tree and serves get / put /
// delete / list operations over the same GSI-authenticated framed-JSON
// transport. Every operation is authorized through the callout registry
// under the CalloutGridFTP abstract type; requests are presented to the
// policy engine as RSL-style attributes (path, dir, size), so the same
// policy language — and the same PDP backends — govern data access:
//
//	/O=Grid/CN=Alice: &(action = get list)(dir = /public)
//	/O=Grid/CN=Alice: &(action = put)(dir = /home/alice)(size<=1048576)
package gridftp

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"path"
	"sort"
	"strconv"
	"sync"

	"gridauth/internal/audit"
	"gridauth/internal/core"
	"gridauth/internal/gsi"
	"gridauth/internal/obs"
	"gridauth/internal/rsl"
)

// CalloutGridFTP is the abstract callout type the data service consults,
// parallel to core.CalloutJobManager.
const CalloutGridFTP = "globus_gridftp_authz"

// Operations, used directly as policy action names.
const (
	OpGet    = "get"
	OpPut    = "put"
	OpDelete = "delete"
	OpList   = "list"
)

// Errors surfaced by the client.
var (
	ErrDenied   = errors.New("gridftp: authorization denied")
	ErrNotFound = errors.New("gridftp: no such file")
)

// request/response wire format.
type request struct {
	Op   string `json:"op"`
	Path string `json:"path"`
	Size int64  `json:"size,omitempty"`
	Data []byte `json:"data,omitempty"`
}

type response struct {
	OK      bool     `json:"ok"`
	Code    string   `json:"code,omitempty"`
	Message string   `json:"message,omitempty"`
	Data    []byte   `json:"data,omitempty"`
	Names   []string `json:"names,omitempty"`
}

// Store is the in-memory file tree.
type Store struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{files: make(map[string][]byte)}
}

// Put writes a file.
func (s *Store) Put(p string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[path.Clean(p)] = append([]byte(nil), data...)
}

// Get reads a file.
func (s *Store) Get(p string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.files[path.Clean(p)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), b...), true
}

// Delete removes a file, reporting whether it existed.
func (s *Store) Delete(p string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p = path.Clean(p)
	_, ok := s.files[p]
	delete(s.files, p)
	return ok
}

// List returns the sorted names directly under dir.
func (s *Store) List(dir string) []string {
	dir = path.Clean(dir)
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[string]bool{}
	for p := range s.files {
		if path.Dir(p) == dir {
			seen[path.Base(p)] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Server is the authorization-guarded data service.
type Server struct {
	cred     *gsi.Credential
	trust    *gsi.TrustStore
	registry *core.Registry
	store    *Store
	audit    *audit.Log

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	listener net.Listener
	wg       sync.WaitGroup
	closed   chan struct{}
}

// NewServer builds a data service around a store, authorizing through
// the registry's CalloutGridFTP chain.
func NewServer(cred *gsi.Credential, trust *gsi.TrustStore, registry *core.Registry, store *Store) (*Server, error) {
	if cred == nil || trust == nil || registry == nil || store == nil {
		return nil, errors.New("gridftp: server needs credential, trust store, registry and store")
	}
	return &Server{
		cred:     cred,
		trust:    trust,
		registry: registry,
		store:    store,
		conns:    make(map[net.Conn]struct{}),
		closed:   make(chan struct{}),
	}, nil
}

// SetAudit wires a decision log into the data service's enforcement
// point; every authorized operation (and every refusal) leaves a
// record. Call before Serve; nil disables auditing. On a pipeline log
// the append is asynchronous; docs/AUDIT.md's degraded-mode matrix
// recommends drop mode for this high-rate data path (a shed record is
// counted, the transfer is not stalled).
func (s *Server) SetAudit(log *audit.Log) { s.audit = log }

// Serve accepts connections until Close.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil
			default:
				return fmt.Errorf("gridftp: accept: %w", err)
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops the service and drains handlers.
func (s *Server) Close() {
	s.mu.Lock()
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	auth := gsi.NewAuthenticator(s.cred, s.trust)
	peer, br, err := auth.Handshake(conn)
	if err != nil {
		return
	}
	for {
		var req request
		if err := readJSON(br, &req); err != nil {
			return
		}
		resp := s.serve(peer, &req)
		if err := writeJSON(conn, resp); err != nil {
			return
		}
	}
}

func (s *Server) serve(peer *gsi.Peer, req *request) *response {
	p := path.Clean(req.Path)
	if !path.IsAbs(p) {
		return &response{Code: "bad-request", Message: "path must be absolute"}
	}
	size := req.Size
	if req.Op == OpPut {
		size = int64(len(req.Data))
	}
	spec := rsl.NewSpec().
		Set("path", p).
		Set("dir", dirFor(req.Op, p)).
		Set("size", strconv.FormatInt(size, 10))
	creq := &core.Request{
		Subject:    peer.Identity,
		Assertions: peer.Assertions,
		Action:     req.Op,
		Spec:       spec,
	}
	d := s.registry.Invoke(CalloutGridFTP, creq)
	if s.audit != nil {
		s.audit.Append(audit.Record{
			RequestID: obs.NewRequestID(),
			Subject:   creq.Subject,
			Action:    creq.Action,
			PDP:       CalloutGridFTP,
			Effect:    d.Effect.String(),
			Source:    d.Source,
			Reason:    d.Reason,
		})
	}
	if d.Effect != core.Permit {
		code := "denied"
		if d.Effect == core.Error {
			code = "authz-failure"
		}
		return &response{Code: code, Message: d.Source + ": " + d.Reason}
	}

	switch req.Op {
	case OpGet:
		data, ok := s.store.Get(p)
		if !ok {
			return &response{Code: "not-found", Message: p}
		}
		return &response{OK: true, Data: data}
	case OpPut:
		s.store.Put(p, req.Data)
		return &response{OK: true}
	case OpDelete:
		if !s.store.Delete(p) {
			return &response{Code: "not-found", Message: p}
		}
		return &response{OK: true}
	case OpList:
		return &response{OK: true, Names: s.store.List(p)}
	default:
		return &response{Code: "bad-request", Message: "unknown op " + req.Op}
	}
}

// dirFor derives the "dir" policy attribute: the parent directory for
// file operations, the path itself for list.
func dirFor(op, p string) string {
	if op == OpList {
		return p
	}
	return path.Dir(p)
}

// Client accesses a gridftp server.
type Client struct {
	addr string
	auth *gsi.Authenticator
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
}

// NewClient builds a client authenticating with cred.
func NewClient(addr string, cred *gsi.Credential, trust *gsi.TrustStore, assertions ...*gsi.Assertion) *Client {
	opts := []gsi.AuthOption{}
	if len(assertions) > 0 {
		opts = append(opts, gsi.WithAssertions(assertions...))
	}
	return &Client{addr: addr, auth: gsi.NewAuthenticator(cred, trust, opts...)}
}

// Close tears down the connection.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		_ = c.conn.Close() //authlint:ignore locksafe client lifecycle lock; serializing Close against in-flight requests is the point
		c.conn = nil
		c.br = nil
	}
}

func (c *Client) roundTrip(req *request) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		conn, err := net.Dial("tcp", c.addr) //authlint:ignore locksafe dialing under c.mu is deliberate: requests share one connection, so the first caller dials while the rest wait
		if err != nil {
			return nil, fmt.Errorf("gridftp: dial: %w", err)
		}
		_, br, err := c.auth.Handshake(conn)
		if err != nil {
			conn.Close() //authlint:ignore locksafe teardown of a connection that never worked; nothing else can be waiting on it
			return nil, fmt.Errorf("gridftp: authenticate: %w", err)
		}
		c.conn = conn
		c.br = br
	}
	if err := writeJSON(c.conn, req); err != nil {
		c.conn.Close() //authlint:ignore locksafe error-path teardown under the client lifecycle lock
		c.conn = nil
		return nil, err
	}
	var resp response
	if err := readJSON(c.br, &resp); err != nil {
		c.conn.Close() //authlint:ignore locksafe error-path teardown under the client lifecycle lock
		c.conn = nil
		return nil, err
	}
	return &resp, nil
}

func respError(resp *response) error {
	switch resp.Code {
	case "denied":
		return fmt.Errorf("%w: %s", ErrDenied, resp.Message)
	case "not-found":
		return fmt.Errorf("%w: %s", ErrNotFound, resp.Message)
	default:
		return fmt.Errorf("gridftp: %s: %s", resp.Code, resp.Message)
	}
}

// Get fetches a file.
func (c *Client) Get(p string) ([]byte, error) {
	resp, err := c.roundTrip(&request{Op: OpGet, Path: p})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, respError(resp)
	}
	return resp.Data, nil
}

// Put stores a file.
func (c *Client) Put(p string, data []byte) error {
	resp, err := c.roundTrip(&request{Op: OpPut, Path: p, Data: data})
	if err != nil {
		return err
	}
	if !resp.OK {
		return respError(resp)
	}
	return nil
}

// Delete removes a file.
func (c *Client) Delete(p string) error {
	resp, err := c.roundTrip(&request{Op: OpDelete, Path: p})
	if err != nil {
		return err
	}
	if !resp.OK {
		return respError(resp)
	}
	return nil
}

// List names the entries under a directory.
func (c *Client) List(dir string) ([]string, error) {
	resp, err := c.roundTrip(&request{Op: OpList, Path: dir})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, respError(resp)
	}
	return resp.Names, nil
}

func writeJSON(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

func readJSON(br *bufio.Reader, v any) error {
	line, err := br.ReadBytes('\n')
	if err != nil {
		return err
	}
	return json.Unmarshal(line, v)
}
