package gridftp

import (
	"bytes"
	"errors"
	"net"
	"testing"

	"gridauth/internal/core"
	"gridauth/internal/gsi"
	"gridauth/internal/policy"
)

const (
	aliceDN = gsi.DN("/O=Grid/CN=Alice")
	bobDN   = gsi.DN("/O=Grid/CN=Bob")
)

const ftpPolicy = `
# Everyone in /O=Grid may read the public area.
/O=Grid: &(action = get list)(dir = /public)

# Alice owns her home: writes capped at 1 MiB, deletes allowed.
/O=Grid/CN=Alice:
  &(action = get put list)(dir = /home/alice)(size<=1048576)
  &(action = delete)(dir = /home/alice)
`

type ftpEnv struct {
	store  *Store
	addr   string
	trust  *gsi.TrustStore
	alice  *gsi.Credential
	bob    *gsi.Credential
	server *Server
}

func newFtpEnv(t *testing.T) *ftpEnv {
	t.Helper()
	ca, err := gsi.NewCA("/O=Grid/CN=CA")
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore(ca.Certificate())
	alice, err := ca.Issue(aliceDN, gsi.KindUser)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := ca.Issue(bobDN, gsi.KindUser)
	if err != nil {
		t.Fatal(err)
	}
	svcCred, err := ca.Issue("/O=Grid/CN=gridftp/data.anl.gov", gsi.KindService)
	if err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry()
	reg.Bind(CalloutGridFTP, &core.PolicyPDP{Policy: policy.MustParse(ftpPolicy, "site")})

	store := NewStore()
	store.Put("/public/readme.txt", []byte("welcome"))
	store.Put("/public/data.bin", []byte{1, 2, 3})
	store.Put("/home/alice/notes.txt", []byte("mine"))
	store.Put("/home/bob/secret.txt", []byte("bob's"))

	srv, err := NewServer(svcCred, trust, reg, store)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(l)
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return &ftpEnv{store: store, addr: l.Addr().String(), trust: trust, alice: alice, bob: bob, server: srv}
}

func (e *ftpEnv) client(t *testing.T, cred *gsi.Credential) *Client {
	t.Helper()
	c := NewClient(e.addr, cred, e.trust)
	t.Cleanup(c.Close)
	return c
}

func TestPublicReadForEveryone(t *testing.T) {
	e := newFtpEnv(t)
	for _, cred := range []*gsi.Credential{e.alice, e.bob} {
		c := e.client(t, cred)
		data, err := c.Get("/public/readme.txt")
		if err != nil {
			t.Fatalf("%s: %v", cred.Identity(), err)
		}
		if string(data) != "welcome" {
			t.Errorf("data = %q", data)
		}
		names, err := c.List("/public")
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != 2 || names[0] != "data.bin" {
			t.Errorf("names = %v", names)
		}
	}
}

func TestHomeDirectoryRights(t *testing.T) {
	e := newFtpEnv(t)
	alice := e.client(t, e.alice)
	bob := e.client(t, e.bob)

	// Alice reads and writes her home.
	if err := alice.Put("/home/alice/new.txt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if data, err := alice.Get("/home/alice/new.txt"); err != nil || string(data) != "hello" {
		t.Fatalf("get back: %q, %v", data, err)
	}
	// Bob cannot read Alice's home; the policy names no grant for him.
	if _, err := bob.Get("/home/alice/notes.txt"); !errors.Is(err, ErrDenied) {
		t.Errorf("bob read alice's home: %v", err)
	}
	// Alice cannot write outside her grants.
	if err := alice.Put("/public/vandalism.txt", []byte("x")); !errors.Is(err, ErrDenied) {
		t.Errorf("alice wrote public: %v", err)
	}
	if err := alice.Put("/home/bob/x", []byte("x")); !errors.Is(err, ErrDenied) {
		t.Errorf("alice wrote bob's home: %v", err)
	}
	// Size cap applies: a 2 MiB upload is denied.
	big := bytes.Repeat([]byte("a"), 2<<20)
	if err := alice.Put("/home/alice/big.bin", big); !errors.Is(err, ErrDenied) {
		t.Errorf("oversized put: %v", err)
	}
	// Delete is a separate grant.
	if err := alice.Delete("/home/alice/new.txt"); err != nil {
		t.Fatal(err)
	}
	if err := bob.Delete("/public/readme.txt"); !errors.Is(err, ErrDenied) {
		t.Errorf("bob deleted public file: %v", err)
	}
}

func TestNotFoundAndBadPaths(t *testing.T) {
	e := newFtpEnv(t)
	alice := e.client(t, e.alice)
	if _, err := alice.Get("/public/missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing get: %v", err)
	}
	if err := alice.Delete("/home/alice/missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing delete: %v", err)
	}
	if _, err := alice.Get("relative/path"); err == nil {
		t.Errorf("relative path accepted")
	}
	// Path traversal is cleaned server-side: /public/../home/bob/...
	// resolves to bob's home, which the policy denies Alice.
	if _, err := alice.Get("/public/../home/bob/secret.txt"); !errors.Is(err, ErrDenied) {
		t.Errorf("traversal slipped through policy: %v", err)
	}
}

func TestUnconfiguredCalloutFailsClosed(t *testing.T) {
	e := newFtpEnv(t)
	// Fresh server with an empty registry: everything is an authz
	// system failure, never a silent permit.
	ca, err := gsi.NewCA("/O=Grid/CN=CA2")
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore(ca.Certificate())
	svc, err := ca.Issue("/O=Grid/CN=gridftp/x", gsi.KindService)
	if err != nil {
		t.Fatal(err)
	}
	user, err := ca.Issue(aliceDN, gsi.KindUser)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(svc, trust, core.NewRegistry(), e.store)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()
	defer func() { srv.Close(); <-done }()
	c := NewClient(l.Addr().String(), user, trust)
	defer c.Close()
	_, err = c.Get("/public/readme.txt")
	if err == nil || errors.Is(err, ErrDenied) || errors.Is(err, ErrNotFound) {
		t.Errorf("unconfigured callout: %v", err)
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	s.Put("/a/b/c.txt", []byte("1"))
	s.Put("/a/b/d.txt", []byte("2"))
	s.Put("/a/e.txt", []byte("3"))
	if got := s.List("/a/b"); len(got) != 2 {
		t.Errorf("List = %v", got)
	}
	if got := s.List("/a"); len(got) != 1 || got[0] != "e.txt" {
		t.Errorf("List(/a) = %v", got)
	}
	if !s.Delete("/a/e.txt") || s.Delete("/a/e.txt") {
		t.Errorf("Delete semantics wrong")
	}
	// Stored data is isolated from caller mutation.
	buf := []byte("mut")
	s.Put("/m", buf)
	buf[0] = 'X'
	if got, _ := s.Get("/m"); string(got) != "mut" {
		t.Errorf("store aliased caller buffer")
	}
}
