// Package gridmap implements the GT2 grid-mapfile: the configuration file
// the Gatekeeper uses both as an access control list and as the mapping
// from Grid identities to local accounts.
//
// The file format is the real GT2 one: each line holds a quoted
// distinguished name followed by one or more comma-separated local
// account names, e.g.
//
//	"/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey" keahey,fusion
//	# comment lines and blank lines are ignored
//
// The first listed account is the default mapping; the rest are alternate
// accounts the user may request. As the paper notes (§4.3), this is the
// entire authorization story of stock GT2: "authorization of user job
// startup ... is based solely on whether a user has an account on a
// resource."
package gridmap

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"gridauth/internal/gsi"
)

// Entry is one grid-mapfile line: a Grid identity and its local accounts.
type Entry struct {
	Identity gsi.DN
	Accounts []string
}

// Map is a parsed grid-mapfile.
type Map struct {
	mu      sync.RWMutex
	entries map[gsi.DN]*Entry
}

// New returns an empty grid map.
func New() *Map {
	return &Map{entries: make(map[gsi.DN]*Entry)}
}

// ParseError reports a malformed grid-mapfile line.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("gridmap: line %d: %s", e.Line, e.Msg)
}

// Parse reads a grid-mapfile.
func Parse(r io.Reader) (*Map, error) {
	m := New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		entry, err := parseLine(line, lineNo)
		if err != nil {
			return nil, err
		}
		m.Add(entry.Identity, entry.Accounts...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gridmap: read: %w", err)
	}
	return m, nil
}

// ParseString parses a grid-mapfile from a string.
func ParseString(s string) (*Map, error) {
	return Parse(strings.NewReader(s))
}

func parseLine(line string, lineNo int) (*Entry, error) {
	if !strings.HasPrefix(line, `"`) {
		return nil, &ParseError{Line: lineNo, Msg: "distinguished name must be quoted"}
	}
	end := strings.Index(line[1:], `"`)
	if end < 0 {
		return nil, &ParseError{Line: lineNo, Msg: "unterminated quoted distinguished name"}
	}
	dn := gsi.DN(line[1 : 1+end])
	if !dn.Valid() {
		return nil, &ParseError{Line: lineNo, Msg: fmt.Sprintf("invalid DN %q", dn)}
	}
	rest := strings.TrimSpace(line[2+end:])
	if rest == "" {
		return nil, &ParseError{Line: lineNo, Msg: "missing local account"}
	}
	var accounts []string
	for _, a := range strings.Split(rest, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return nil, &ParseError{Line: lineNo, Msg: "empty account name"}
		}
		if strings.ContainsAny(a, " \t") {
			return nil, &ParseError{Line: lineNo, Msg: fmt.Sprintf("account %q contains whitespace", a)}
		}
		accounts = append(accounts, a)
	}
	return &Entry{Identity: dn, Accounts: accounts}, nil
}

// Add inserts or extends the entry for identity.
func (m *Map) Add(identity gsi.DN, accounts ...string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[identity]
	if !ok {
		e = &Entry{Identity: identity}
		m.entries[identity] = e
	}
	for _, a := range accounts {
		if !containsString(e.Accounts, a) {
			e.Accounts = append(e.Accounts, a)
		}
	}
}

// Remove deletes the entry for identity.
func (m *Map) Remove(identity gsi.DN) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.entries, identity)
}

// Authorized reports whether the identity appears in the map — the stock
// GT2 Gatekeeper authorization decision.
func (m *Map) Authorized(identity gsi.DN) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.entries[identity]
	return ok
}

// Lookup returns the default local account for the identity.
func (m *Map) Lookup(identity gsi.DN) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.entries[identity]
	if !ok || len(e.Accounts) == 0 {
		return "", false
	}
	return e.Accounts[0], true
}

// LookupAccount maps identity to the requested account if listed, or to
// the default account when requested is empty. The bool result reports
// whether the mapping is permitted.
func (m *Map) LookupAccount(identity gsi.DN, requested string) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.entries[identity]
	if !ok || len(e.Accounts) == 0 {
		return "", false
	}
	if requested == "" {
		return e.Accounts[0], true
	}
	if containsString(e.Accounts, requested) {
		return requested, true
	}
	return "", false
}

// Accounts returns a copy of all accounts mapped for identity.
func (m *Map) Accounts(identity gsi.DN) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.entries[identity]
	if !ok {
		return nil
	}
	return append([]string(nil), e.Accounts...)
}

// Identities returns the sorted list of identities in the map.
func (m *Map) Identities() []gsi.DN {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ids := make([]gsi.DN, 0, len(m.entries))
	for id := range m.entries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Len returns the number of entries.
func (m *Map) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.entries)
}

// WriteTo serializes the map in grid-mapfile format, sorted by DN.
func (m *Map) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, id := range m.Identities() {
		accounts := m.Accounts(id)
		n, err := fmt.Fprintf(w, "%q %s\n", string(id), strings.Join(accounts, ","))
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func containsString(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
