package gridmap

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"gridauth/internal/gsi"
)

const (
	kate = gsi.DN("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey")
	bo   = gsi.DN("/O=Grid/O=Globus/OU=uh.edu/CN=Bo Liu")
)

const sample = `
# National Fusion Collaboratory grid-mapfile
"/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey" keahey,fusion
"/O=Grid/O=Globus/OU=uh.edu/CN=Bo Liu" bliu
`

func TestParse(t *testing.T) {
	m, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if !m.Authorized(kate) || !m.Authorized(bo) {
		t.Errorf("expected both users authorized")
	}
	if m.Authorized("/O=Grid/CN=Nobody") {
		t.Errorf("unknown user authorized")
	}
	if acct, ok := m.Lookup(kate); !ok || acct != "keahey" {
		t.Errorf("Lookup(kate) = %q, %v", acct, ok)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`/O=Grid/CN=x account`,       // unquoted DN
		`"/O=Grid/CN=x`,              // unterminated quote
		`"/O=Grid/CN=x"`,             // missing account
		`"not-a-dn" acct`,            // invalid DN
		`"/O=Grid/CN=x" a,,b`,        // empty account
		`"/O=Grid/CN=x" "two words"`, // whitespace in account
	}
	for _, line := range bad {
		if _, err := ParseString(line); err == nil {
			t.Errorf("ParseString(%q): expected error", line)
		} else {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Errorf("ParseString(%q): error %v not a *ParseError", line, err)
			}
		}
	}
}

func TestLookupAccount(t *testing.T) {
	m, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		id        gsi.DN
		requested string
		want      string
		ok        bool
	}{
		{kate, "", "keahey", true},
		{kate, "fusion", "fusion", true},
		{kate, "root", "", false},
		{bo, "", "bliu", true},
		{bo, "keahey", "", false},
		{"/O=Grid/CN=Nobody", "", "", false},
	}
	for _, tt := range tests {
		got, ok := m.LookupAccount(tt.id, tt.requested)
		if got != tt.want || ok != tt.ok {
			t.Errorf("LookupAccount(%s, %q) = %q,%v want %q,%v", tt.id, tt.requested, got, ok, tt.want, tt.ok)
		}
	}
}

func TestAddRemove(t *testing.T) {
	m := New()
	m.Add(kate, "keahey")
	m.Add(kate, "keahey", "fusion") // duplicate collapses
	if got := m.Accounts(kate); len(got) != 2 {
		t.Fatalf("Accounts = %v", got)
	}
	m.Remove(kate)
	if m.Authorized(kate) {
		t.Errorf("Remove did not revoke")
	}
	if m.Accounts(kate) != nil {
		t.Errorf("Accounts after remove = %v", m.Accounts(kate))
	}
}

func TestWriteToRoundTrip(t *testing.T) {
	m, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if m2.Len() != m.Len() {
		t.Fatalf("round trip lost entries")
	}
	for _, id := range m.Identities() {
		want := strings.Join(m.Accounts(id), ",")
		got := strings.Join(m2.Accounts(id), ",")
		if want != got {
			t.Errorf("%s: %q != %q", id, got, want)
		}
	}
}

// Property: any set of valid identities round-trips through the file
// format with membership preserved.
func TestQuickRoundTrip(t *testing.T) {
	f := func(users []uint16) bool {
		m := New()
		for _, u := range users {
			dn := gsi.DN("/O=Grid/CN=user" + itoa(int(u)))
			m.Add(dn, "acct"+itoa(int(u)%7))
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			return false
		}
		m2, err := Parse(&buf)
		if err != nil {
			return false
		}
		for _, id := range m.Identities() {
			if !m2.Authorized(id) {
				return false
			}
		}
		return m.Len() == m2.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
