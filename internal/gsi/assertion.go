package gsi

import (
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// Assertion errors.
var (
	ErrAssertionExpired = errors.New("gsi: assertion outside its validity window")
	ErrAssertionForged  = errors.New("gsi: assertion signature invalid")
	ErrWrongHolder      = errors.New("gsi: assertion holder does not match credential")
)

// Assertion is a signed VO attribute statement: the VO asserts that Holder
// is a member with the listed groups and roles, and is entitled to submit
// jobs under the listed jobtags. In GT2 deployments this is the
// information a CAS or VOMS credential would carry; the paper notes that
// "in a real system the VO policies would be carried in the VO
// credentials".
type Assertion struct {
	VO        string    `json:"vo"`
	Holder    DN        `json:"holder"`
	Groups    []string  `json:"groups,omitempty"`
	Roles     []string  `json:"roles,omitempty"`
	Jobtags   []string  `json:"jobtags,omitempty"`
	Policy    string    `json:"policy,omitempty"` // embedded policy text (CAS-style)
	Issuer    DN        `json:"issuer"`
	NotBefore time.Time `json:"notBefore"`
	NotAfter  time.Time `json:"notAfter"`
	Signature []byte    `json:"signature"`
}

func (a *Assertion) tbs() ([]byte, error) {
	shadow := *a
	shadow.Signature = nil
	return json.Marshal(&shadow)
}

// SignAssertion fills in the issuer and signature fields using the VO's
// credential.
func SignAssertion(a *Assertion, issuer *Credential) error {
	leaf := issuer.Leaf()
	if leaf == nil {
		return ErrNoCertificates
	}
	a.Issuer = leaf.Subject
	msg, err := a.tbs()
	if err != nil {
		return fmt.Errorf("encode assertion: %w", err)
	}
	sig, err := issuer.Sign(msg)
	if err != nil {
		return err
	}
	a.Signature = sig
	return nil
}

// VerifyAssertion checks the assertion's signature against the issuer
// certificate, its validity window at time t, and that it was issued to
// holder.
func VerifyAssertion(a *Assertion, issuerCert *Certificate, holder DN, t time.Time) error {
	if a.Issuer != issuerCert.Subject {
		return fmt.Errorf("%w: issued by %s, expected %s", ErrAssertionForged, a.Issuer, issuerCert.Subject)
	}
	msg, err := a.tbs()
	if err != nil {
		return fmt.Errorf("encode assertion: %w", err)
	}
	if !ed25519.Verify(ed25519.PublicKey(issuerCert.PublicKey), msg, a.Signature) {
		return ErrAssertionForged
	}
	if t.Before(a.NotBefore) || t.After(a.NotAfter) {
		return ErrAssertionExpired
	}
	if a.Holder != holder {
		return fmt.Errorf("%w: held by %s, presented by %s", ErrWrongHolder, a.Holder, holder)
	}
	return nil
}

// HasRole reports whether the assertion grants the given role.
func (a *Assertion) HasRole(role string) bool {
	for _, r := range a.Roles {
		if r == role {
			return true
		}
	}
	return false
}

// HasGroup reports whether the assertion places the holder in the group.
func (a *Assertion) HasGroup(group string) bool {
	for _, g := range a.Groups {
		if g == group {
			return true
		}
	}
	return false
}

// AllowsJobtag reports whether the assertion entitles the holder to use
// the given jobtag. An assertion with no jobtag list allows none.
func (a *Assertion) AllowsJobtag(tag string) bool {
	for _, t := range a.Jobtags {
		if t == tag {
			return true
		}
	}
	return false
}
