package gsi

import (
	"net"
	"testing"
	"time"
)

func BenchmarkIssue(b *testing.B) {
	ca, err := NewCA(caDN)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ca.Issue(kateDN, KindUser); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyChain(b *testing.B) {
	ca, err := NewCA(caDN)
	if err != nil {
		b.Fatal(err)
	}
	kate, err := ca.Issue(kateDN, KindUser)
	if err != nil {
		b.Fatal(err)
	}
	proxy, err := Delegate(kate, time.Hour, false)
	if err != nil {
		b.Fatal(err)
	}
	trust := NewTrustStore(ca.Certificate())
	now := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trust.Verify(proxy, now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHandshake measures full mutual authentication over TCP.
func BenchmarkHandshake(b *testing.B) {
	ca, err := NewCA(caDN)
	if err != nil {
		b.Fatal(err)
	}
	trust := NewTrustStore(ca.Certificate())
	kate, err := ca.Issue(kateDN, KindUser)
	if err != nil {
		b.Fatal(err)
	}
	gk, err := ca.Issue(gkDN, KindService)
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				_, _, _ = NewAuthenticator(gk, trust).Handshake(conn)
			}()
		}
	}()
	auth := NewAuthenticator(kate, trust)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := auth.Handshake(conn); err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}
