package gsi

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"
)

// Bulk deterministic credential fabrication for the load harness
// (internal/loadgen): a million-identity run cannot afford a
// rand.Reader round trip per key, and reproducible experiments need
// the same seed to produce the same key material. KeyFromSeed derives
// Ed25519 keys from a labelled SHA-256 chain; IssueWithKey and
// DelegateWithKey are Issue and Delegate with the key generation
// factored out, so fabricated chains verify exactly like organically
// issued ones.

// KeyFromSeed deterministically derives an Ed25519 private key from a
// run seed and a label chain (e.g. "user", index). Distinct label
// chains yield independent keys; the same chain always yields the same
// key. Not for production key material — the seed space is the point:
// it makes synthetic identity fabrication reproducible.
func KeyFromSeed(seed int64, labels ...string) ed25519.PrivateKey {
	h := sha256.New()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	for _, l := range labels {
		binary.BigEndian.PutUint64(b[:], uint64(len(l)))
		h.Write(b[:])
		h.Write([]byte(l))
	}
	return ed25519.NewKeyFromSeed(h.Sum(nil))
}

// IssueWithKey is Issue with a caller-supplied private key (typically
// from KeyFromSeed): it skips the entropy read, which is what makes
// fabricating tens of thousands of identities per second feasible on
// one core.
func (ca *CA) IssueWithKey(subject DN, kind string, key ed25519.PrivateKey) (*Credential, error) {
	if !subject.Valid() {
		return nil, fmt.Errorf("gsi: invalid subject %q", subject)
	}
	switch kind {
	case KindUser, KindService, KindCA:
	default:
		return nil, fmt.Errorf("gsi: CA cannot issue kind %q", kind)
	}
	if len(key) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("gsi: bad private key size %d", len(key))
	}
	ca.mu.Lock()
	ca.serial++
	serial := ca.serial
	ca.mu.Unlock()
	now := ca.now()
	cert := &Certificate{
		Serial:    serial,
		Kind:      kind,
		Subject:   subject,
		Issuer:    ca.cred.Leaf().Subject,
		PublicKey: key.Public().(ed25519.PublicKey),
		NotBefore: now.Add(-time.Minute),
		NotAfter:  now.Add(ca.ttl),
	}
	if err := signCert(cert, ca.cred.Key); err != nil {
		return nil, err
	}
	chain := append([]*Certificate{cert}, ca.cred.Chain...)
	return &Credential{Chain: chain, Key: key}, nil
}

// DelegateWithKey is Delegate with a caller-supplied proxy private key
// (typically from KeyFromSeed), for bulk deterministic proxy-chain
// fabrication.
func DelegateWithKey(parent *Credential, ttl time.Duration, limited bool, key ed25519.PrivateKey) (*Credential, error) {
	leaf := parent.Leaf()
	if leaf == nil {
		return nil, ErrNoCertificates
	}
	if parent.Key == nil {
		return nil, fmt.Errorf("gsi: cannot delegate without the parent private key")
	}
	if leaf.Kind == KindLimited {
		return nil, fmt.Errorf("%w: limited proxy cannot delegate further", ErrBadProxy)
	}
	if len(key) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("gsi: bad private key size %d", len(key))
	}
	kind := KindProxy
	cn := "proxy"
	if limited {
		kind = KindLimited
		cn = "limited proxy"
	}
	now := time.Now()
	notAfter := now.Add(ttl)
	if leaf.NotAfter.Before(notAfter) {
		notAfter = leaf.NotAfter // a proxy cannot outlive its signer
	}
	cert := &Certificate{
		Serial:    leaf.Serial,
		Kind:      kind,
		Subject:   leaf.Subject.WithCN(cn),
		Issuer:    leaf.Subject,
		PublicKey: key.Public().(ed25519.PublicKey),
		NotBefore: now.Add(-time.Minute),
		NotAfter:  notAfter,
	}
	if err := signCert(cert, parent.Key); err != nil {
		return nil, err
	}
	return &Credential{
		Chain: append([]*Certificate{cert}, parent.Chain...),
		Key:   key,
	}, nil
}
