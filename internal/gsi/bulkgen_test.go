package gsi

import (
	"bytes"
	"testing"
	"time"
)

func TestKeyFromSeedDeterministic(t *testing.T) {
	a := KeyFromSeed(42, "user", "17")
	b := KeyFromSeed(42, "user", "17")
	if !bytes.Equal(a, b) {
		t.Fatal("same seed and labels produced different keys")
	}
	if c := KeyFromSeed(43, "user", "17"); bytes.Equal(a, c) {
		t.Fatal("different seeds produced the same key")
	}
	if c := KeyFromSeed(42, "proxy", "17"); bytes.Equal(a, c) {
		t.Fatal("different labels produced the same key")
	}
	// Label boundaries must matter: ("ab","c") != ("a","bc").
	if bytes.Equal(KeyFromSeed(1, "ab", "c"), KeyFromSeed(1, "a", "bc")) {
		t.Fatal("label concatenation is ambiguous")
	}
}

func TestIssueWithKeyVerifies(t *testing.T) {
	ca, err := NewCA("/O=Grid/CN=Bulk CA")
	if err != nil {
		t.Fatal(err)
	}
	trust := NewTrustStore(ca.Certificate())
	user, err := ca.IssueWithKey("/O=Grid/CN=Bulk User", KindUser, KeyFromSeed(7, "user", "0"))
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := DelegateWithKey(user, time.Hour, false, KeyFromSeed(7, "proxy", "0"))
	if err != nil {
		t.Fatal(err)
	}
	id, err := trust.Verify(proxy, time.Now())
	if err != nil {
		t.Fatalf("fabricated chain does not verify: %v", err)
	}
	if id != "/O=Grid/CN=Bulk User" {
		t.Fatalf("identity = %s", id)
	}
	// Same seed, fresh fabrication: identical leaf public keys.
	again, err := ca.IssueWithKey("/O=Grid/CN=Bulk User", KindUser, KeyFromSeed(7, "user", "0"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(user.Leaf().PublicKey, again.Leaf().PublicKey) {
		t.Fatal("same seed fabricated different public keys")
	}
}

func TestIssueWithKeyRejectsBadInput(t *testing.T) {
	ca, err := NewCA("/O=Grid/CN=Bulk CA")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.IssueWithKey("/O=Grid/CN=X", KindProxy, KeyFromSeed(1, "u")); err == nil {
		t.Fatal("proxy kind accepted")
	}
	if _, err := ca.IssueWithKey("/O=Grid/CN=X", KindUser, nil); err == nil {
		t.Fatal("nil key accepted")
	}
	user, _ := ca.IssueWithKey("/O=Grid/CN=X", KindUser, KeyFromSeed(1, "u"))
	if _, err := DelegateWithKey(user, time.Hour, false, nil); err == nil {
		t.Fatal("nil proxy key accepted")
	}
}
