package gsi

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Certificate kinds.
const (
	KindCA      = "ca"
	KindUser    = "user"
	KindService = "service"
	KindProxy   = "proxy"
	KindLimited = "limited-proxy"
)

// Errors returned by chain verification.
var (
	ErrExpired        = errors.New("gsi: certificate outside its validity window")
	ErrUntrusted      = errors.New("gsi: chain does not terminate at a trust anchor")
	ErrBadSignature   = errors.New("gsi: invalid certificate signature")
	ErrBadProxy       = errors.New("gsi: proxy certificate violates delegation rules")
	ErrNoCertificates = errors.New("gsi: empty certificate chain")
)

// Certificate is a simulated X.509 certificate. Signature covers the
// deterministic encoding of every other field and is produced with the
// issuer's Ed25519 key.
type Certificate struct {
	Serial    uint64            `json:"serial"`
	Kind      string            `json:"kind"`
	Subject   DN                `json:"subject"`
	Issuer    DN                `json:"issuer"`
	PublicKey []byte            `json:"publicKey"`
	NotBefore time.Time         `json:"notBefore"`
	NotAfter  time.Time         `json:"notAfter"`
	Ext       map[string]string `json:"ext,omitempty"`
	Signature []byte            `json:"signature"`
}

// tbs returns the deterministic "to be signed" encoding of the
// certificate: every field except the signature.
func (c *Certificate) tbs() ([]byte, error) {
	shadow := *c
	shadow.Signature = nil
	return json.Marshal(&shadow)
}

// CheckSignature verifies the certificate's signature with the given
// issuer public key.
func (c *Certificate) CheckSignature(issuerKey ed25519.PublicKey) error {
	msg, err := c.tbs()
	if err != nil {
		return fmt.Errorf("encode certificate: %w", err)
	}
	if !ed25519.Verify(issuerKey, msg, c.Signature) {
		return ErrBadSignature
	}
	return nil
}

// ValidAt reports whether t falls within the certificate's validity
// window.
func (c *Certificate) ValidAt(t time.Time) bool {
	return !t.Before(c.NotBefore) && !t.After(c.NotAfter)
}

// IsProxy reports whether the certificate is a (possibly limited) proxy.
func (c *Certificate) IsProxy() bool {
	return c.Kind == KindProxy || c.Kind == KindLimited
}

// Credential is a certificate chain (leaf first, ending just below the
// trust anchor) together with the leaf private key. Verification-only
// copies have a nil Key.
type Credential struct {
	Chain []*Certificate
	Key   ed25519.PrivateKey
}

// Leaf returns the end certificate of the chain.
func (c *Credential) Leaf() *Certificate {
	if len(c.Chain) == 0 {
		return nil
	}
	return c.Chain[0]
}

// Subject returns the DN of the leaf certificate.
func (c *Credential) Subject() DN {
	if leaf := c.Leaf(); leaf != nil {
		return leaf.Subject
	}
	return ""
}

// Identity returns the effective Grid identity: the leaf subject with any
// proxy components stripped. This is the DN policies are written against.
func (c *Credential) Identity() DN {
	return c.Subject().Base()
}

// Public returns a verification-only copy of the credential without the
// private key, safe to send to a peer.
func (c *Credential) Public() *Credential {
	return &Credential{Chain: append([]*Certificate(nil), c.Chain...)}
}

// Sign signs a message with the credential's private key.
func (c *Credential) Sign(msg []byte) ([]byte, error) {
	if c.Key == nil {
		return nil, errors.New("gsi: credential has no private key")
	}
	return ed25519.Sign(c.Key, msg), nil
}

// VerifyBy checks that sig is a signature over msg by this credential's
// leaf key.
func (c *Credential) VerifyBy(msg, sig []byte) error {
	leaf := c.Leaf()
	if leaf == nil {
		return ErrNoCertificates
	}
	if !ed25519.Verify(ed25519.PublicKey(leaf.PublicKey), msg, sig) {
		return ErrBadSignature
	}
	return nil
}

// CA is a certificate authority: a self-signed credential that can issue
// user, service and subordinate VO certificates.
type CA struct {
	mu     sync.Mutex
	cred   *Credential
	serial uint64
	now    func() time.Time
	ttl    time.Duration
}

// CAOption configures a CA.
type CAOption func(*CA)

// WithClock sets the CA's time source (for deterministic tests).
func WithClock(now func() time.Time) CAOption {
	return func(ca *CA) { ca.now = now }
}

// WithTTL sets the lifetime of issued certificates.
func WithTTL(ttl time.Duration) CAOption {
	return func(ca *CA) { ca.ttl = ttl }
}

// NewCA creates a self-signed certificate authority with the given
// subject DN.
func NewCA(subject DN, opts ...CAOption) (*CA, error) {
	if !subject.Valid() {
		return nil, fmt.Errorf("gsi: invalid CA subject %q", subject)
	}
	ca := &CA{now: time.Now, ttl: 12 * time.Hour}
	for _, o := range opts {
		o(ca)
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("generate CA key: %w", err)
	}
	now := ca.now()
	cert := &Certificate{
		Serial:    1,
		Kind:      KindCA,
		Subject:   subject,
		Issuer:    subject,
		PublicKey: pub,
		NotBefore: now.Add(-time.Minute),
		NotAfter:  now.Add(10 * 365 * 24 * time.Hour),
	}
	if err := signCert(cert, priv); err != nil {
		return nil, err
	}
	ca.cred = &Credential{Chain: []*Certificate{cert}, Key: priv}
	ca.serial = 1
	return ca, nil
}

func signCert(cert *Certificate, key ed25519.PrivateKey) error {
	msg, err := cert.tbs()
	if err != nil {
		return fmt.Errorf("encode certificate: %w", err)
	}
	cert.Signature = ed25519.Sign(key, msg)
	return nil
}

// Certificate returns the CA's self-signed certificate, usable as a trust
// anchor.
func (ca *CA) Certificate() *Certificate { return ca.cred.Leaf() }

// Credential returns the CA's own credential (it signs VO assertions with
// it when the CA doubles as a VO root).
func (ca *CA) Credential() *Credential { return ca.cred }

// Issue creates a credential of the given kind for subject.
func (ca *CA) Issue(subject DN, kind string) (*Credential, error) {
	if !subject.Valid() {
		return nil, fmt.Errorf("gsi: invalid subject %q", subject)
	}
	switch kind {
	case KindUser, KindService, KindCA:
	default:
		return nil, fmt.Errorf("gsi: CA cannot issue kind %q", kind)
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("generate key: %w", err)
	}
	ca.mu.Lock()
	ca.serial++
	serial := ca.serial
	ca.mu.Unlock()
	now := ca.now()
	cert := &Certificate{
		Serial:    serial,
		Kind:      kind,
		Subject:   subject,
		Issuer:    ca.cred.Leaf().Subject,
		PublicKey: pub,
		NotBefore: now.Add(-time.Minute),
		NotAfter:  now.Add(ca.ttl),
	}
	if err := signCert(cert, ca.cred.Key); err != nil {
		return nil, err
	}
	chain := append([]*Certificate{cert}, ca.cred.Chain...)
	return &Credential{Chain: chain, Key: priv}, nil
}

// IssueWithCredential signs a new certificate for subject using an
// arbitrary CA credential (e.g. one reloaded from disk, where the *CA
// object is unavailable). The issuing credential's leaf must be a CA
// certificate.
func IssueWithCredential(issuer *Credential, subject DN, kind string) (*Credential, error) {
	leaf := issuer.Leaf()
	if leaf == nil {
		return nil, ErrNoCertificates
	}
	if leaf.Kind != KindCA {
		return nil, fmt.Errorf("gsi: %s is not a CA certificate", leaf.Subject)
	}
	if issuer.Key == nil {
		return nil, errors.New("gsi: issuing credential has no private key")
	}
	if !subject.Valid() {
		return nil, fmt.Errorf("gsi: invalid subject %q", subject)
	}
	switch kind {
	case KindUser, KindService, KindCA:
	default:
		return nil, fmt.Errorf("gsi: cannot issue kind %q", kind)
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("generate key: %w", err)
	}
	now := time.Now()
	cert := &Certificate{
		Serial:    uint64(now.UnixNano()),
		Kind:      kind,
		Subject:   subject,
		Issuer:    leaf.Subject,
		PublicKey: pub,
		NotBefore: now.Add(-time.Minute),
		NotAfter:  leaf.NotAfter,
	}
	if err := signCert(cert, issuer.Key); err != nil {
		return nil, err
	}
	return &Credential{
		Chain: append([]*Certificate{cert}, issuer.Chain...),
		Key:   priv,
	}, nil
}

// Delegate derives a proxy credential from parent, extending the chain by
// one proxy certificate valid for ttl. When limited is true the proxy is a
// "limited proxy", which resource managers traditionally refuse for job
// startup.
func Delegate(parent *Credential, ttl time.Duration, limited bool) (*Credential, error) {
	leaf := parent.Leaf()
	if leaf == nil {
		return nil, ErrNoCertificates
	}
	if parent.Key == nil {
		return nil, errors.New("gsi: cannot delegate without the parent private key")
	}
	if leaf.Kind == KindLimited {
		return nil, fmt.Errorf("%w: limited proxy cannot delegate further", ErrBadProxy)
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("generate proxy key: %w", err)
	}
	kind := KindProxy
	cn := "proxy"
	if limited {
		kind = KindLimited
		cn = "limited proxy"
	}
	now := time.Now()
	notAfter := now.Add(ttl)
	if leaf.NotAfter.Before(notAfter) {
		notAfter = leaf.NotAfter // a proxy cannot outlive its signer
	}
	cert := &Certificate{
		Serial:    leaf.Serial,
		Kind:      kind,
		Subject:   leaf.Subject.WithCN(cn),
		Issuer:    leaf.Subject,
		PublicKey: pub,
		NotBefore: now.Add(-time.Minute),
		NotAfter:  notAfter,
	}
	if err := signCert(cert, parent.Key); err != nil {
		return nil, err
	}
	return &Credential{
		Chain: append([]*Certificate{cert}, parent.Chain...),
		Key:   priv,
	}, nil
}

// TrustStore is a set of trust anchors keyed by subject DN.
type TrustStore struct {
	mu      sync.RWMutex
	anchors map[DN]*Certificate
}

// NewTrustStore builds a trust store from the given anchor certificates.
func NewTrustStore(anchors ...*Certificate) *TrustStore {
	ts := &TrustStore{anchors: make(map[DN]*Certificate, len(anchors))}
	for _, a := range anchors {
		ts.anchors[a.Subject] = a
	}
	return ts
}

// Add installs an additional trust anchor.
func (ts *TrustStore) Add(anchor *Certificate) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.anchors[anchor.Subject] = anchor
}

// Anchor returns the anchor with the given subject, if present.
func (ts *TrustStore) Anchor(subject DN) (*Certificate, bool) {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	a, ok := ts.anchors[subject]
	return a, ok
}

// Verify checks a credential chain at time t:
//
//   - every certificate is inside its validity window,
//   - every certificate is signed by the next one in the chain,
//   - proxy certificates are issued by their parent subject and only
//     extend the parent DN by a proxy CN,
//   - the chain terminates at (or is directly signed by) a trust anchor.
//
// It returns the verified Grid identity (proxy components stripped).
func (ts *TrustStore) Verify(cred *Credential, t time.Time) (DN, error) {
	chain := cred.Chain
	if len(chain) == 0 {
		return "", ErrNoCertificates
	}
	for i, cert := range chain {
		if !cert.ValidAt(t) {
			return "", fmt.Errorf("%w: %s", ErrExpired, cert.Subject)
		}
		if cert.IsProxy() {
			if i+1 >= len(chain) {
				return "", fmt.Errorf("%w: proxy %s lacks its signer", ErrBadProxy, cert.Subject)
			}
			parent := chain[i+1]
			if cert.Issuer != parent.Subject {
				return "", fmt.Errorf("%w: proxy issuer %s != parent %s", ErrBadProxy, cert.Issuer, parent.Subject)
			}
			wantProxy := parent.Subject.WithCN("proxy")
			wantLimited := parent.Subject.WithCN("limited proxy")
			if cert.Subject != wantProxy && cert.Subject != wantLimited {
				return "", fmt.Errorf("%w: proxy subject %s does not extend %s", ErrBadProxy, cert.Subject, parent.Subject)
			}
			if err := cert.CheckSignature(ed25519.PublicKey(parent.PublicKey)); err != nil {
				return "", err
			}
			continue
		}
		// Non-proxy: either the issuer is in the chain or it must be a
		// trust anchor.
		if i+1 < len(chain) {
			parent := chain[i+1]
			if cert.Issuer != parent.Subject {
				return "", fmt.Errorf("gsi: certificate %s issued by %s, chain has %s", cert.Subject, cert.Issuer, parent.Subject)
			}
			if err := cert.CheckSignature(ed25519.PublicKey(parent.PublicKey)); err != nil {
				return "", err
			}
			continue
		}
		anchor, ok := ts.Anchor(cert.Issuer)
		if !ok {
			return "", fmt.Errorf("%w: issuer %s", ErrUntrusted, cert.Issuer)
		}
		if err := cert.CheckSignature(ed25519.PublicKey(anchor.PublicKey)); err != nil {
			return "", err
		}
	}
	// The top of the chain must itself be anchored (self-signed roots
	// must literally be in the store).
	top := chain[len(chain)-1]
	if top.Issuer == top.Subject {
		if _, ok := ts.Anchor(top.Subject); !ok {
			return "", fmt.Errorf("%w: self-signed %s", ErrUntrusted, top.Subject)
		}
	}
	return cred.Identity(), nil
}
