// Package gsi simulates the Grid Security Infrastructure used by the
// Globus Toolkit 2: X.509-style identity certificates with distinguished
// names, proxy-certificate delegation, VO attribute assertions and a
// mutual-authentication handshake.
//
// The simulation is faithful where the authorization layer cares:
// credentials carry real Ed25519 signatures, chains verify against trust
// anchors, proxies are bound to their issuing identity, and assertions are
// signed by the VO. It deliberately omits ASN.1/X.509 wire compatibility,
// which the paper's authorization design never depends on.
package gsi

import (
	"fmt"
	"strings"
)

// DN is an X.509-style distinguished name in the slash-separated Globus
// rendering, e.g. "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey".
type DN string

// RDN is a single relative distinguished name component.
type RDN struct {
	Type  string // e.g. "O", "OU", "CN"
	Value string
}

// ParseDN splits a DN into its RDN components. It returns an error when
// the string is not of the form "/T=V/T=V...".
func ParseDN(s string) ([]RDN, error) {
	if s == "" {
		return nil, fmt.Errorf("gsi: empty DN")
	}
	if !strings.HasPrefix(s, "/") {
		return nil, fmt.Errorf("gsi: DN %q must start with '/'", s)
	}
	parts := strings.Split(s[1:], "/")
	rdns := make([]RDN, 0, len(parts))
	for _, p := range parts {
		ty, val, ok := strings.Cut(p, "=")
		if !ok || ty == "" {
			// Globus service DNs embed slashes in values, e.g.
			// "/CN=gatekeeper/fusion.anl.gov": a component without '='
			// continues the previous RDN's value.
			if len(rdns) == 0 || p == "" {
				return nil, fmt.Errorf("gsi: malformed RDN %q in DN %q", p, s)
			}
			rdns[len(rdns)-1].Value += "/" + p
			continue
		}
		rdns = append(rdns, RDN{Type: ty, Value: val})
	}
	return rdns, nil
}

// Valid reports whether the DN parses.
func (d DN) Valid() bool {
	_, err := ParseDN(string(d))
	return err == nil
}

// String returns the DN text.
func (d DN) String() string { return string(d) }

// CN returns the value of the last CN component, or "" when there is none.
func (d DN) CN() string {
	rdns, err := ParseDN(string(d))
	if err != nil {
		return ""
	}
	for i := len(rdns) - 1; i >= 0; i-- {
		if rdns[i].Type == "CN" {
			return rdns[i].Value
		}
	}
	return ""
}

// HasPrefix reports whether d begins with prefix. This is the group
// matching rule of the paper's policy language: a statement subject such
// as "/O=Grid/O=Globus/OU=mcs.anl.gov" applies to every identity whose DN
// starts with that string.
func (d DN) HasPrefix(prefix DN) bool {
	return strings.HasPrefix(string(d), string(prefix))
}

// WithCN returns the DN extended by one CN component, as proxy
// certificates do ("/CN=proxy").
func (d DN) WithCN(cn string) DN {
	return DN(string(d) + "/CN=" + cn)
}

// Base strips trailing "/CN=proxy" and "/CN=limited proxy" components,
// yielding the end-entity identity a proxy chain acts for.
func (d DN) Base() DN {
	s := string(d)
	for {
		switch {
		case strings.HasSuffix(s, "/CN=proxy"):
			s = strings.TrimSuffix(s, "/CN=proxy")
		case strings.HasSuffix(s, "/CN=limited proxy"):
			s = strings.TrimSuffix(s, "/CN=limited proxy")
		default:
			return DN(s)
		}
	}
}
