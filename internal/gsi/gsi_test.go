package gsi

import (
	"errors"
	"net"
	"testing"
	"testing/quick"
	"time"
)

const (
	caDN   = DN("/O=Grid/CN=Globus Test CA")
	kateDN = DN("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey")
	boDN   = DN("/O=Grid/O=Globus/OU=uh.edu/CN=Bo Liu")
	gkDN   = DN("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=gatekeeper/fusion.anl.gov")
)

func newTestCA(t *testing.T) *CA {
	t.Helper()
	ca, err := NewCA(caDN)
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func TestParseDN(t *testing.T) {
	rdns, err := ParseDN(string(kateDN))
	if err != nil {
		t.Fatal(err)
	}
	if len(rdns) != 4 {
		t.Fatalf("got %d RDNs, want 4", len(rdns))
	}
	if rdns[3].Type != "CN" || rdns[3].Value != "Kate Keahey" {
		t.Errorf("last RDN = %+v", rdns[3])
	}
	for _, bad := range []string{"", "no-slash", "/", "/O", "/=v", "/O=Grid//CN=x"} {
		if _, err := ParseDN(bad); err == nil {
			t.Errorf("ParseDN(%q): expected error", bad)
		}
	}
}

func TestDNHelpers(t *testing.T) {
	if kateDN.CN() != "Kate Keahey" {
		t.Errorf("CN = %q", kateDN.CN())
	}
	if !kateDN.HasPrefix("/O=Grid/O=Globus/OU=mcs.anl.gov") {
		t.Errorf("HasPrefix failed")
	}
	if boDN.HasPrefix("/O=Grid/O=Globus/OU=mcs.anl.gov") {
		t.Errorf("HasPrefix false positive")
	}
	p := kateDN.WithCN("proxy").WithCN("proxy")
	if p.Base() != kateDN {
		t.Errorf("Base(%s) = %s", p, p.Base())
	}
	lp := kateDN.WithCN("proxy").WithCN("limited proxy")
	if lp.Base() != kateDN {
		t.Errorf("Base(%s) = %s", lp, lp.Base())
	}
}

func TestIssueAndVerify(t *testing.T) {
	ca := newTestCA(t)
	kate, err := ca.Issue(kateDN, KindUser)
	if err != nil {
		t.Fatal(err)
	}
	trust := NewTrustStore(ca.Certificate())
	id, err := trust.Verify(kate, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if id != kateDN {
		t.Errorf("identity = %s", id)
	}
	if kate.Identity() != kateDN {
		t.Errorf("Identity = %s", kate.Identity())
	}
}

func TestVerifyRejectsUntrustedCA(t *testing.T) {
	ca := newTestCA(t)
	rogue, err := NewCA("/O=Rogue/CN=Evil CA")
	if err != nil {
		t.Fatal(err)
	}
	mallory, err := rogue.Issue(kateDN, KindUser) // impersonation attempt
	if err != nil {
		t.Fatal(err)
	}
	trust := NewTrustStore(ca.Certificate())
	if _, err := trust.Verify(mallory, time.Now()); !errors.Is(err, ErrUntrusted) {
		t.Errorf("Verify = %v, want ErrUntrusted", err)
	}
}

func TestVerifyRejectsExpired(t *testing.T) {
	past := time.Now().Add(-48 * time.Hour)
	ca, err := NewCA(caDN, WithClock(func() time.Time { return past }), WithTTL(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	kate, err := ca.Issue(kateDN, KindUser)
	if err != nil {
		t.Fatal(err)
	}
	trust := NewTrustStore(ca.Certificate())
	if _, err := trust.Verify(kate, time.Now()); !errors.Is(err, ErrExpired) {
		t.Errorf("Verify = %v, want ErrExpired", err)
	}
	if _, err := trust.Verify(kate, past.Add(time.Minute)); err != nil {
		t.Errorf("Verify inside window = %v", err)
	}
}

func TestVerifyRejectsTamperedCert(t *testing.T) {
	ca := newTestCA(t)
	kate, err := ca.Issue(kateDN, KindUser)
	if err != nil {
		t.Fatal(err)
	}
	kate.Chain[0].Subject = boDN // tamper with the signed subject
	trust := NewTrustStore(ca.Certificate())
	if _, err := trust.Verify(kate, time.Now()); !errors.Is(err, ErrBadSignature) {
		t.Errorf("Verify = %v, want ErrBadSignature", err)
	}
}

func TestDelegation(t *testing.T) {
	ca := newTestCA(t)
	kate, err := ca.Issue(kateDN, KindUser)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := Delegate(kate, time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	trust := NewTrustStore(ca.Certificate())
	id, err := trust.Verify(proxy, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if id != kateDN {
		t.Errorf("proxy identity = %s, want %s", id, kateDN)
	}
	// Second-level delegation.
	proxy2, err := Delegate(proxy, time.Hour, true)
	if err != nil {
		t.Fatal(err)
	}
	if id, err := trust.Verify(proxy2, time.Now()); err != nil || id != kateDN {
		t.Fatalf("proxy2 verify = %s, %v", id, err)
	}
	if proxy2.Leaf().Kind != KindLimited {
		t.Errorf("kind = %s, want limited", proxy2.Leaf().Kind)
	}
	// Limited proxies cannot delegate further.
	if _, err := Delegate(proxy2, time.Hour, false); !errors.Is(err, ErrBadProxy) {
		t.Errorf("Delegate(limited) = %v, want ErrBadProxy", err)
	}
}

func TestProxyCannotOutliveParent(t *testing.T) {
	ca, err := NewCA(caDN, WithTTL(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	kate, err := ca.Issue(kateDN, KindUser)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := Delegate(kate, 24*time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	if proxy.Leaf().NotAfter.After(kate.Leaf().NotAfter) {
		t.Errorf("proxy outlives its signer")
	}
}

func TestForgedProxyRejected(t *testing.T) {
	ca := newTestCA(t)
	kate, err := ca.Issue(kateDN, KindUser)
	if err != nil {
		t.Fatal(err)
	}
	bo, err := ca.Issue(boDN, KindUser)
	if err != nil {
		t.Fatal(err)
	}
	// Bo forges a "proxy" naming Kate's DN but signed with Bo's key.
	forged, err := Delegate(bo, time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	forged.Chain[0].Subject = kateDN.WithCN("proxy")
	forged.Chain[0].Issuer = kateDN
	forged.Chain = []*Certificate{forged.Chain[0], kate.Leaf()}
	trust := NewTrustStore(ca.Certificate())
	if _, err := trust.Verify(forged, time.Now()); err == nil {
		t.Errorf("forged proxy verified")
	}
}

func TestAssertionSignVerify(t *testing.T) {
	ca := newTestCA(t)
	vo, err := ca.Issue("/O=Grid/CN=NFC VO", KindService)
	if err != nil {
		t.Fatal(err)
	}
	a := &Assertion{
		VO:        "NFC",
		Holder:    kateDN,
		Groups:    []string{"analysis"},
		Roles:     []string{"admin"},
		Jobtags:   []string{"NFC"},
		NotBefore: time.Now().Add(-time.Minute),
		NotAfter:  time.Now().Add(time.Hour),
	}
	if err := SignAssertion(a, vo); err != nil {
		t.Fatal(err)
	}
	if err := VerifyAssertion(a, vo.Leaf(), kateDN, time.Now()); err != nil {
		t.Fatal(err)
	}
	if !a.HasRole("admin") || a.HasRole("developer") {
		t.Errorf("HasRole wrong")
	}
	if !a.HasGroup("analysis") || a.HasGroup("dev") {
		t.Errorf("HasGroup wrong")
	}
	if !a.AllowsJobtag("NFC") || a.AllowsJobtag("ADS") {
		t.Errorf("AllowsJobtag wrong")
	}

	if err := VerifyAssertion(a, vo.Leaf(), boDN, time.Now()); !errors.Is(err, ErrWrongHolder) {
		t.Errorf("wrong holder accepted: %v", err)
	}
	if err := VerifyAssertion(a, vo.Leaf(), kateDN, time.Now().Add(2*time.Hour)); !errors.Is(err, ErrAssertionExpired) {
		t.Errorf("expired accepted: %v", err)
	}
	a.Groups = append(a.Groups, "admin") // tamper
	if err := VerifyAssertion(a, vo.Leaf(), kateDN, time.Now()); !errors.Is(err, ErrAssertionForged) {
		t.Errorf("tampered accepted: %v", err)
	}
}

func runHandshake(t *testing.T, a, b *Authenticator) (*Peer, *Peer, error, error) {
	t.Helper()
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	type res struct {
		p   *Peer
		err error
	}
	ch := make(chan res, 1)
	go func() {
		p, _, err := a.Handshake(c1)
		if err != nil {
			// Real endpoints close the transport when authentication
			// fails (the gatekeeper's deferred conn.Close), which is
			// what unblocks the peer; model that here.
			c1.Close()
		}
		ch <- res{p, err}
	}()
	pb, _, errB := b.Handshake(c2)
	if errB != nil {
		c2.Close()
	}
	ra := <-ch
	return ra.p, pb, ra.err, errB
}

func TestMutualAuthentication(t *testing.T) {
	ca := newTestCA(t)
	trust := NewTrustStore(ca.Certificate())
	kate, err := ca.Issue(kateDN, KindUser)
	if err != nil {
		t.Fatal(err)
	}
	gk, err := ca.Issue(gkDN, KindService)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := Delegate(kate, time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}

	userAuth := NewAuthenticator(proxy, trust)
	gkAuth := NewAuthenticator(gk, trust)
	peerAtUser, peerAtGK, errA, errB := runHandshake(t, userAuth, gkAuth)
	if errA != nil || errB != nil {
		t.Fatalf("handshake: %v / %v", errA, errB)
	}
	if peerAtUser.Identity != gkDN {
		t.Errorf("user sees peer %s", peerAtUser.Identity)
	}
	if peerAtGK.Identity != kateDN {
		t.Errorf("gatekeeper sees peer %s", peerAtGK.Identity)
	}
	if peerAtGK.Subject != kateDN.WithCN("proxy") {
		t.Errorf("gatekeeper sees subject %s", peerAtGK.Subject)
	}
	if peerAtGK.Limited {
		t.Errorf("full proxy reported limited")
	}
}

func TestHandshakeRejectsUntrusted(t *testing.T) {
	ca := newTestCA(t)
	rogueCA, err := NewCA("/O=Rogue/CN=Evil CA")
	if err != nil {
		t.Fatal(err)
	}
	trust := NewTrustStore(ca.Certificate())
	rogue, err := rogueCA.Issue(boDN, KindUser)
	if err != nil {
		t.Fatal(err)
	}
	gk, err := ca.Issue(gkDN, KindService)
	if err != nil {
		t.Fatal(err)
	}
	rogueTrust := NewTrustStore(ca.Certificate(), rogueCA.Certificate())
	userAuth := NewAuthenticator(rogue, rogueTrust)
	gkAuth := NewAuthenticator(gk, trust)
	_, _, _, errGK := runHandshake(t, userAuth, gkAuth)
	if !errors.Is(errGK, ErrHandshakeFailed) {
		t.Errorf("gatekeeper accepted rogue peer: %v", errGK)
	}
}

func TestHandshakeCarriesAssertions(t *testing.T) {
	ca := newTestCA(t)
	trust := NewTrustStore(ca.Certificate())
	vo, err := ca.Issue("/O=Grid/CN=NFC VO", KindService)
	if err != nil {
		t.Fatal(err)
	}
	kate, err := ca.Issue(kateDN, KindUser)
	if err != nil {
		t.Fatal(err)
	}
	gk, err := ca.Issue(gkDN, KindService)
	if err != nil {
		t.Fatal(err)
	}
	a := &Assertion{
		VO: "NFC", Holder: kateDN, Roles: []string{"admin"},
		NotBefore: time.Now().Add(-time.Minute), NotAfter: time.Now().Add(time.Hour),
	}
	if err := SignAssertion(a, vo); err != nil {
		t.Fatal(err)
	}
	userAuth := NewAuthenticator(kate, trust, WithAssertions(a))
	gkAuth := NewAuthenticator(gk, trust, WithVOCert(vo.Leaf()))
	_, peerAtGK, errA, errB := runHandshake(t, userAuth, gkAuth)
	if errA != nil || errB != nil {
		t.Fatalf("handshake: %v / %v", errA, errB)
	}
	if len(peerAtGK.Assertions) != 1 || !peerAtGK.Assertions[0].HasRole("admin") {
		t.Errorf("assertions not carried: %+v", peerAtGK.Assertions)
	}

	// An assertion from a VO the gatekeeper does not know is ignored.
	gkAuthNoVO := NewAuthenticator(gk, trust)
	_, peer2, errA, errB := runHandshake(t, userAuth, gkAuthNoVO)
	if errA != nil || errB != nil {
		t.Fatalf("handshake: %v / %v", errA, errB)
	}
	if len(peer2.Assertions) != 0 {
		t.Errorf("unknown-VO assertion accepted")
	}
}

func TestHandshakeRejectsStolenAssertion(t *testing.T) {
	ca := newTestCA(t)
	trust := NewTrustStore(ca.Certificate())
	vo, err := ca.Issue("/O=Grid/CN=NFC VO", KindService)
	if err != nil {
		t.Fatal(err)
	}
	bo, err := ca.Issue(boDN, KindUser)
	if err != nil {
		t.Fatal(err)
	}
	gk, err := ca.Issue(gkDN, KindService)
	if err != nil {
		t.Fatal(err)
	}
	// Kate's assertion presented by Bo must be rejected.
	a := &Assertion{
		VO: "NFC", Holder: kateDN, Roles: []string{"admin"},
		NotBefore: time.Now().Add(-time.Minute), NotAfter: time.Now().Add(time.Hour),
	}
	if err := SignAssertion(a, vo); err != nil {
		t.Fatal(err)
	}
	boAuth := NewAuthenticator(bo, trust, WithAssertions(a))
	gkAuth := NewAuthenticator(gk, trust, WithVOCert(vo.Leaf()))
	_, _, _, errGK := runHandshake(t, boAuth, gkAuth)
	if !errors.Is(errGK, ErrHandshakeFailed) {
		t.Errorf("stolen assertion accepted: %v", errGK)
	}
}

// The returned reader must deliver bytes that arrived hard on the heels
// of the handshake (the next protocol message may share a TCP segment
// with the final handshake leg).
func TestHandshakeReaderKeepsPipelinedBytes(t *testing.T) {
	ca := newTestCA(t)
	trust := NewTrustStore(ca.Certificate())
	kate, err := ca.Issue(kateDN, KindUser)
	if err != nil {
		t.Fatal(err)
	}
	gk, err := ca.Issue(gkDN, KindService)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	errCh := make(chan error, 1)
	go func() {
		_, _, err := NewAuthenticator(kate, trust).Handshake(c1)
		if err != nil {
			errCh <- err
			return
		}
		// Immediately pipeline an application message.
		_, werr := c1.Write([]byte("application-message\n"))
		errCh <- werr
	}()
	_, br, err := NewAuthenticator(gk, trust).Handshake(c2)
	if err != nil {
		t.Fatal(err)
	}
	// Read before joining the writer: net.Pipe writes block until read.
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if line != "application-message\n" {
		t.Errorf("pipelined message = %q", line)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

func TestCredentialPublicHasNoKey(t *testing.T) {
	ca := newTestCA(t)
	kate, err := ca.Issue(kateDN, KindUser)
	if err != nil {
		t.Fatal(err)
	}
	pub := kate.Public()
	if pub.Key != nil {
		t.Fatalf("Public() leaked private key")
	}
	if _, err := pub.Sign([]byte("x")); err == nil {
		t.Errorf("Sign without key should fail")
	}
}

// Property: Base is idempotent and never returns a DN ending in a proxy CN.
func TestQuickBaseIdempotent(t *testing.T) {
	f := func(nProxies uint8, limited bool) bool {
		d := kateDN
		for i := 0; i < int(nProxies%6); i++ {
			if limited && i == int(nProxies%6)-1 {
				d = d.WithCN("limited proxy")
			} else {
				d = d.WithCN("proxy")
			}
		}
		b := d.Base()
		return b == kateDN && b.Base() == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: signatures fail closed — flipping any byte of the message
// breaks verification.
func TestQuickSignatureTamperDetection(t *testing.T) {
	ca := newTestCA(t)
	kate, err := ca.Issue(kateDN, KindUser)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("authorize: cancel job 42")
	sig, err := kate.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	f := func(idx uint8, bit uint8) bool {
		m := append([]byte(nil), msg...)
		m[int(idx)%len(m)] ^= 1 << (bit % 8)
		return kate.VerifyBy(m, sig) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
