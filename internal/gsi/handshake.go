package gsi

import (
	"bufio"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// Handshake errors.
var (
	ErrHandshakeFailed = errors.New("gsi: mutual authentication failed")
)

const nonceLen = 32

// handshakeMsg is one leg of the mutual-authentication exchange.
type handshakeMsg struct {
	Chain      []*Certificate `json:"chain"`
	Nonce      []byte         `json:"nonce"`               // challenge for the peer
	Signature  []byte         `json:"signature,omitempty"` // over the peer's nonce
	Assertions []*Assertion   `json:"assertions,omitempty"`
}

// Peer describes the authenticated remote side of a connection.
type Peer struct {
	// Identity is the verified Grid identity (proxy CNs stripped).
	Identity DN
	// Subject is the literal leaf subject, including proxy components.
	Subject DN
	// Limited reports whether the peer authenticated with a limited proxy.
	Limited bool
	// Credential is the peer's verification-only credential.
	Credential *Credential
	// Assertions are the VO attribute assertions the peer presented.
	// Signature and holder verification has been performed; validity of
	// the *contents* is the authorization layer's business.
	Assertions []*Assertion
}

// Authenticator performs GSI-style mutual authentication over a stream.
type Authenticator struct {
	cred    *Credential
	trust   *TrustStore
	voCerts map[DN]*Certificate
	now     func() time.Time
	asserts []*Assertion
}

// AuthOption configures an Authenticator.
type AuthOption func(*Authenticator)

// WithAssertions attaches VO assertions that will be presented to peers.
func WithAssertions(as ...*Assertion) AuthOption {
	return func(a *Authenticator) { a.asserts = append(a.asserts, as...) }
}

// WithVOCert registers a VO certificate used to verify presented
// assertions. Assertions from unknown VOs are dropped, not fatal.
func WithVOCert(cert *Certificate) AuthOption {
	return func(a *Authenticator) { a.voCerts[cert.Subject] = cert }
}

// WithNow sets the authenticator's time source.
func WithNow(now func() time.Time) AuthOption {
	return func(a *Authenticator) { a.now = now }
}

// NewAuthenticator builds an authenticator for the local credential,
// trusting chains that verify against trust.
func NewAuthenticator(cred *Credential, trust *TrustStore, opts ...AuthOption) *Authenticator {
	a := &Authenticator{
		cred:    cred,
		trust:   trust,
		voCerts: make(map[DN]*Certificate),
		now:     time.Now,
	}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Handshake runs mutual authentication over rw. Both sides call it; the
// exchange is symmetric: each sends its chain plus a fresh nonce, then
// each returns a signature over the peer's nonce. On success it returns
// the verified peer and the buffered reader used for the exchange —
// callers MUST continue reading from that reader, not from rw directly,
// because it may already hold bytes of the next protocol message.
func (a *Authenticator) Handshake(rw io.ReadWriter) (*Peer, *bufio.Reader, error) {
	br := bufio.NewReader(rw)
	peer, err := a.handshake(rw, br)
	if err != nil {
		return nil, nil, err
	}
	return peer, br, nil
}

func (a *Authenticator) handshake(rw io.ReadWriter, br *bufio.Reader) (*Peer, error) {

	nonce := make([]byte, nonceLen)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("generate nonce: %w", err)
	}
	hello := handshakeMsg{
		Chain:      a.cred.Public().Chain,
		Nonce:      nonce,
		Assertions: a.asserts,
	}
	// Send and receive concurrently: the exchange is symmetric and both
	// sides transmit first, so a synchronous transport (e.g. net.Pipe)
	// must not serialize the two hellos.
	sendErr := make(chan error, 1)
	go func() { sendErr <- writeJSON(rw, &hello) }()
	var peerHello handshakeMsg
	if err := readJSON(br, &peerHello); err != nil {
		return nil, fmt.Errorf("read peer hello: %w", err)
	}
	if err := <-sendErr; err != nil {
		return nil, fmt.Errorf("send hello: %w", err)
	}
	if len(peerHello.Nonce) != nonceLen {
		return nil, fmt.Errorf("%w: bad peer nonce", ErrHandshakeFailed)
	}
	peerCred := &Credential{Chain: peerHello.Chain}
	identity, err := a.trust.Verify(peerCred, a.now())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshakeFailed, err)
	}

	// Prove possession of our key by signing the peer's nonce; check the
	// peer's proof over ours.
	sig, err := a.cred.Sign(peerHello.Nonce)
	if err != nil {
		return nil, err
	}
	go func() { sendErr <- writeJSON(rw, &handshakeMsg{Signature: sig}) }()
	var peerProof handshakeMsg
	if err := readJSON(br, &peerProof); err != nil {
		return nil, fmt.Errorf("read peer proof: %w", err)
	}
	if err := <-sendErr; err != nil {
		return nil, fmt.Errorf("send proof: %w", err)
	}
	if err := peerCred.VerifyBy(nonce, peerProof.Signature); err != nil {
		return nil, fmt.Errorf("%w: peer failed proof of possession", ErrHandshakeFailed)
	}

	peer := &Peer{
		Identity:   identity,
		Subject:    peerCred.Subject(),
		Limited:    peerCred.Leaf().Kind == KindLimited,
		Credential: peerCred,
	}
	for _, as := range peerHello.Assertions {
		voCert, ok := a.voCerts[as.Issuer]
		if !ok {
			continue // unknown VO: ignore the assertion
		}
		if err := VerifyAssertion(as, voCert, identity, a.now()); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrHandshakeFailed, err)
		}
		peer.Assertions = append(peer.Assertions, as)
	}
	return peer, nil
}

func writeJSON(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

func readJSON(br *bufio.Reader, v any) error {
	line, err := br.ReadBytes('\n')
	if err != nil {
		return err
	}
	return json.Unmarshal(line, v)
}
