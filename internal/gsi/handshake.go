package gsi

import (
	"bufio"
	"bytes"
	"crypto/hmac"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"gridauth/internal/obs"
)

// Handshake errors.
var (
	ErrHandshakeFailed = errors.New("gsi: mutual authentication failed")
)

const nonceLen = 32

// maxHandshakeMsg caps one handshake leg on the wire. A peer must not be
// able to balloon memory before it has authenticated; real chains,
// assertion sets and tickets are a few KB.
const maxHandshakeMsg = 1 << 20

// FeatureResume is the capability string announced in the hello when a
// side supports session resumption. It is announced automatically by
// HandshakeClient (when a SessionCache is configured) and by
// HandshakeAccept (when a TicketIssuer is configured); application
// protocols register their own capabilities with WithFeatures.
const FeatureResume = "gsi-resume/1"

// handshakeMsg is one leg of the authentication exchange. Fields are
// optional per leg; unknown fields are ignored by older peers (JSON), so
// new capabilities degrade gracefully.
type handshakeMsg struct {
	Chain      []*Certificate `json:"chain,omitempty"`
	Nonce      []byte         `json:"nonce,omitempty"`     // challenge for the peer
	Signature  []byte         `json:"signature,omitempty"` // over the peer's nonce
	Assertions []*Assertion   `json:"assertions,omitempty"`

	// Features carries capability negotiation: FeatureResume plus any
	// application-level strings registered via WithFeatures. Absent on
	// old peers, which is equivalent to "no optional features".
	Features []string `json:"features,omitempty"`

	// Session-resumption legs (see session.go).
	ResumeTicket []byte       `json:"resumeTicket,omitempty"` // client hello: ticket being redeemed
	ResumeOK     *bool        `json:"resumeOk,omitempty"`     // acceptor: ticket verdict
	ResumeMAC    []byte       `json:"resumeMac,omitempty"`    // proof of session-secret possession
	TicketGrant  *ticketGrant `json:"ticketGrant,omitempty"`  // acceptor: new ticket after a full handshake
}

// ticketGrant hands a freshly sealed ticket and its session secret to a
// client at the end of a full handshake. It travels over the channel the
// handshake just mutually authenticated, which is what makes disclosing
// the secret to this client — and only this client — sound.
type ticketGrant struct {
	Ticket []byte    `json:"ticket"`
	Secret []byte    `json:"secret"`
	Expiry time.Time `json:"expiry"`
}

// Peer describes the authenticated remote side of a connection.
type Peer struct {
	// Identity is the verified Grid identity (proxy CNs stripped).
	Identity DN
	// Subject is the literal leaf subject, including proxy components.
	Subject DN
	// Limited reports whether the peer authenticated with a limited proxy.
	Limited bool
	// Credential is the peer's verification-only credential. Nil on
	// resumed sessions: the chain was verified at the original full
	// handshake and is not re-presented.
	Credential *Credential
	// Assertions are the VO attribute assertions the peer presented.
	// Signature and holder verification has been performed; validity of
	// the *contents* is the authorization layer's business.
	Assertions []*Assertion
	// Features are the capability strings the peer announced in its
	// hello (protocol version negotiation).
	Features []string
	// Resumed reports whether this authentication was a one-round-trip
	// ticket resumption rather than a full mutual handshake.
	Resumed bool
}

// HasFeature reports whether the peer announced the capability f.
func (p *Peer) HasFeature(f string) bool {
	return hasFeature(p.Features, f)
}

func hasFeature(fs []string, f string) bool {
	for _, v := range fs {
		if v == f {
			return true
		}
	}
	return false
}

// Authenticator performs GSI-style mutual authentication over a stream.
type Authenticator struct {
	cred     *Credential
	trust    *TrustStore
	voCerts  map[DN]*Certificate
	now      func() time.Time
	asserts  []*Assertion
	features []string
	issuer   *TicketIssuer
	sessions *SessionCache
	metrics  *obs.Metrics
}

// AuthOption configures an Authenticator.
type AuthOption func(*Authenticator)

// WithAssertions attaches VO assertions that will be presented to peers.
func WithAssertions(as ...*Assertion) AuthOption {
	return func(a *Authenticator) { a.asserts = append(a.asserts, as...) }
}

// WithVOCert registers a VO certificate used to verify presented
// assertions. Assertions from unknown VOs are dropped, not fatal.
func WithVOCert(cert *Certificate) AuthOption {
	return func(a *Authenticator) { a.voCerts[cert.Subject] = cert }
}

// WithNow sets the authenticator's time source.
func WithNow(now func() time.Time) AuthOption {
	return func(a *Authenticator) { a.now = now }
}

// WithFeatures announces application-level capability strings in the
// handshake hello (e.g. a protocol version). The peer's announced set is
// reported on Peer.Features.
func WithFeatures(fs ...string) AuthOption {
	return func(a *Authenticator) { a.features = append(a.features, fs...) }
}

// WithTicketIssuer enables session resumption on the acceptor side:
// HandshakeAccept grants tickets after full handshakes and redeems them
// on later connections.
func WithTicketIssuer(ti *TicketIssuer) AuthOption {
	return func(a *Authenticator) { a.issuer = ti }
}

// WithSessionCache enables session resumption on the client side:
// HandshakeClient stores granted tickets and resumes transparently.
func WithSessionCache(sc *SessionCache) AuthOption {
	return func(a *Authenticator) { a.sessions = sc }
}

// WithMetrics counts every handshake this authenticator completes —
// full, resumed or failed — into m.
func WithMetrics(m *obs.Metrics) AuthOption {
	return func(a *Authenticator) { a.metrics = m }
}

// countHandshake classifies one handshake outcome into the metric set
// (no-op without WithMetrics).
func (a *Authenticator) countHandshake(peer *Peer, err error) {
	if a.metrics == nil {
		return
	}
	switch {
	case err != nil:
		a.metrics.HandshakesFailed.Inc()
	case peer.Resumed:
		a.metrics.HandshakesResumed.Inc()
	default:
		a.metrics.HandshakesFull.Inc()
	}
}

// NewAuthenticator builds an authenticator for the local credential,
// trusting chains that verify against trust.
func NewAuthenticator(cred *Credential, trust *TrustStore, opts ...AuthOption) *Authenticator {
	a := &Authenticator{
		cred:    cred,
		trust:   trust,
		voCerts: make(map[DN]*Certificate),
		now:     time.Now,
	}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Handshake runs mutual authentication over rw. Both sides call it; the
// exchange is symmetric: each sends its chain plus a fresh nonce, then
// each returns a signature over the peer's nonce. On success it returns
// the verified peer and the buffered reader used for the exchange —
// callers MUST continue reading from that reader, not from rw directly,
// because it may already hold bytes of the next protocol message.
//
// The symmetric form never resumes sessions and never grants tickets
// (neither side knows which of them would issue); protocols that want
// resumption use the role-aware HandshakeClient / HandshakeAccept pair.
// The forms interoperate: a symmetric caller against HandshakeAccept
// (or vice versa) completes a full handshake.
func (a *Authenticator) Handshake(rw io.ReadWriter) (*Peer, *bufio.Reader, error) {
	peer, br, err := a.handshakeSymmetric(rw)
	a.countHandshake(peer, err)
	return peer, br, err
}

func (a *Authenticator) handshakeSymmetric(rw io.ReadWriter) (*Peer, *bufio.Reader, error) {
	br := bufio.NewReader(rw)
	nonce, err := newNonce()
	if err != nil {
		return nil, nil, err
	}
	hello := handshakeMsg{
		Chain:      a.cred.Public().Chain,
		Nonce:      nonce,
		Assertions: a.asserts,
		Features:   a.features,
	}
	// Send and receive concurrently: the exchange is symmetric and both
	// sides transmit first, so a synchronous transport (e.g. net.Pipe)
	// must not serialize the two hellos.
	sendErr := make(chan error, 1)
	go func() { sendErr <- writeJSON(rw, &hello) }()
	var peerHello handshakeMsg
	if err := readJSON(br, &peerHello); err != nil {
		return nil, nil, fmt.Errorf("read peer hello: %w", err)
	}
	if err := <-sendErr; err != nil {
		return nil, nil, fmt.Errorf("send hello: %w", err)
	}
	peer, peerCred, err := a.verifyPeerHello(&peerHello)
	if err != nil {
		return nil, nil, err
	}
	if err := a.proofExchange(rw, br, nonce, peerHello.Nonce, peerCred); err != nil {
		return nil, nil, err
	}
	return peer, br, nil
}

// HandshakeAccept runs the acceptor side of a client/acceptor handshake:
// it reads the client's hello first, so it can serve both full
// handshakes and ticket resumptions (and remains compatible with old
// symmetric clients, which also transmit their hello first). With a
// TicketIssuer configured it grants a resumption ticket after every full
// handshake with a resumption-capable client.
func (a *Authenticator) HandshakeAccept(rw io.ReadWriter) (*Peer, *bufio.Reader, error) {
	br := bufio.NewReader(rw)
	peer, err := a.handshakeAccept(rw, br)
	a.countHandshake(peer, err)
	if err != nil {
		return nil, nil, err
	}
	return peer, br, nil
}

func (a *Authenticator) handshakeAccept(rw io.ReadWriter, br *bufio.Reader) (*Peer, error) {
	var clientHello handshakeMsg
	if err := readJSON(br, &clientHello); err != nil {
		return nil, fmt.Errorf("read peer hello: %w", err)
	}

	rejectedResume := false
	if len(clientHello.ResumeTicket) > 0 {
		peer, ok, err := a.acceptResume(rw, br, &clientHello)
		if err != nil {
			return nil, err
		}
		if ok {
			return peer, nil
		}
		rejectedResume = true
	}

	nonce, err := newNonce()
	if err != nil {
		return nil, err
	}
	hello := handshakeMsg{
		Chain:      a.cred.Public().Chain,
		Nonce:      nonce,
		Assertions: a.asserts,
		Features:   a.acceptFeatures(),
	}
	if rejectedResume {
		// Signal the rejection in the same leg that carries the full
		// hello, so falling back costs the client no extra round trip.
		no := false
		hello.ResumeOK = &no
	}
	if err := writeJSON(rw, &hello); err != nil {
		return nil, fmt.Errorf("send hello: %w", err)
	}
	if rejectedResume {
		// The rejected resumption attempt was not a full hello; the
		// client falls back and sends one now.
		clientHello = handshakeMsg{}
		if err := readJSON(br, &clientHello); err != nil {
			return nil, fmt.Errorf("read peer hello: %w", err)
		}
	}
	peer, peerCred, err := a.verifyPeerHello(&clientHello)
	if err != nil {
		return nil, err
	}
	if err := a.proofExchange(rw, br, nonce, clientHello.Nonce, peerCred); err != nil {
		return nil, err
	}
	// Grant a resumption ticket only to clients that announced the
	// capability: an old client would misread the extra leg as its first
	// application message.
	if a.issuer != nil && hasFeature(clientHello.Features, FeatureResume) {
		grant := handshakeMsg{}
		if ticket, secret, expiry, err := a.issuer.issue(peer); err == nil {
			grant.TicketGrant = &ticketGrant{Ticket: ticket, Secret: secret, Expiry: expiry}
		}
		// An issuance failure (credential at the edge of expiry) grants
		// nothing, but the leg must still be sent — the client is
		// waiting for it.
		if err := writeJSON(rw, &grant); err != nil {
			return nil, fmt.Errorf("send ticket grant: %w", err)
		}
	}
	return peer, nil
}

// acceptResume attempts to resume from the client's presented ticket.
// ok=false with a nil error means the ticket was rejected (expired,
// tampered, assertion mismatch, or no issuer) and the caller must fall
// back to a full handshake; a non-nil error aborts the connection.
func (a *Authenticator) acceptResume(rw io.ReadWriter, br *bufio.Reader, clientHello *handshakeMsg) (*Peer, bool, error) {
	if a.issuer == nil || len(clientHello.Nonce) != nonceLen {
		return nil, false, nil
	}
	state, secret, oldKey, err := a.issuer.redeem(clientHello.ResumeTicket, a.now())
	if err != nil {
		// Ticket refused (tampered, expired, or sealed under an unknown/
		// retired ring secret): count it and fall back to a full
		// handshake. Post-rotation refusals land here once the old
		// secret's overlap window closes.
		if a.metrics != nil {
			a.metrics.TicketsRejected.Inc()
		}
		return nil, false, nil
	}
	if oldKey && a.metrics != nil {
		// Redeemed under a superseded secret still in its overlap
		// window — the hitless-rotation path.
		a.metrics.TicketsOldSecret.Inc()
	}
	// The re-presented assertions must be the exact set the full
	// handshake verified and the ticket sealed: the digest (over the
	// assertion signatures) pins them, so no VO signature needs
	// re-checking here. Unknown-VO assertions are dropped before
	// digesting, exactly as the full handshake drops them before
	// verification. Any other set forces a full handshake.
	var kept []*Assertion
	for _, as := range clientHello.Assertions {
		if _, ok := a.voCerts[as.Issuer]; ok {
			kept = append(kept, as)
		}
	}
	if !bytes.Equal(assertionsDigest(kept), state.AssertionDigest) {
		return nil, false, nil
	}
	nonce, err := newNonce()
	if err != nil {
		return nil, false, err
	}
	ok := true
	accept := handshakeMsg{
		ResumeOK:  &ok,
		Nonce:     nonce,
		ResumeMAC: resumeMAC(secret, "accept", clientHello.Nonce),
		Features:  a.acceptFeatures(),
	}
	// The accept leg and the client's confirm leg cross on the wire (the
	// client may pipeline its confirm), so send and read concurrently.
	sendErr := make(chan error, 1)
	go func() { sendErr <- writeJSON(rw, &accept) }()
	var confirm handshakeMsg
	if err := readJSON(br, &confirm); err != nil {
		return nil, false, fmt.Errorf("read resume confirm: %w", err)
	}
	if err := <-sendErr; err != nil {
		return nil, false, fmt.Errorf("send resume accept: %w", err)
	}
	// The client proves possession of the session secret over our fresh
	// nonce; a replayed recording of an earlier resumption cannot.
	if !hmac.Equal(confirm.ResumeMAC, resumeMAC(secret, "confirm", nonce)) {
		return nil, false, fmt.Errorf("%w: peer failed resumption proof", ErrHandshakeFailed)
	}
	return &Peer{
		Identity:   state.Identity,
		Subject:    state.Subject,
		Limited:    state.Limited,
		Assertions: kept,
		Features:   clientHello.Features,
		Resumed:    true,
	}, true, nil
}

// HandshakeClient runs the initiating side of a client/acceptor
// handshake against the acceptor at target (the session-cache key,
// normally the dial address). With a SessionCache configured it resumes
// a cached session in one round trip — skipping chain verification and
// the per-leg signatures — and falls back to a full handshake, on the
// same connection, when the acceptor rejects the ticket. A resumption
// attempt that dies at the transport level returns an error wrapping
// ErrResumeFailed after invalidating the cached session, so the caller
// can redial and get a full handshake.
func (a *Authenticator) HandshakeClient(rw io.ReadWriter, target string) (*Peer, *bufio.Reader, error) {
	peer, br, err := a.handshakeClient(rw, target)
	a.countHandshake(peer, err)
	return peer, br, err
}

func (a *Authenticator) handshakeClient(rw io.ReadWriter, target string) (*Peer, *bufio.Reader, error) {
	br := bufio.NewReader(rw)
	if a.sessions != nil {
		s := a.sessions.lookup(target, credentialDigest(a.cred), assertionsDigest(a.asserts), a.now())
		if s != nil {
			peer, acceptorHello, err := a.tryResume(rw, br, s)
			if err != nil {
				a.sessions.Invalidate(target)
				if errors.Is(err, ErrHandshakeFailed) {
					return nil, nil, err
				}
				return nil, nil, fmt.Errorf("%w: %v", ErrResumeFailed, err)
			}
			if peer != nil {
				return peer, br, nil
			}
			// Rejected: acceptorHello is the acceptor's full hello; drop
			// the stale session and complete a full handshake on this
			// same connection.
			a.sessions.Invalidate(target)
			peer, err = a.clientFullFrom(rw, br, acceptorHello, target)
			if err != nil {
				return nil, nil, err
			}
			return peer, br, nil
		}
	}
	peer, err := a.clientFull(rw, br, target)
	if err != nil {
		return nil, nil, err
	}
	return peer, br, nil
}

// tryResume runs the one-round-trip resumption. It returns the resumed
// peer on success; (nil, acceptorHello, nil) when the acceptor rejected
// the ticket and fell back to a full hello; or an error.
func (a *Authenticator) tryResume(rw io.ReadWriter, br *bufio.Reader, s *Session) (*Peer, *handshakeMsg, error) {
	nonce, err := newNonce()
	if err != nil {
		return nil, nil, err
	}
	hello := handshakeMsg{
		ResumeTicket: s.Ticket,
		Nonce:        nonce,
		Assertions:   a.asserts,
		Features:     a.clientFeatures(),
	}
	if err := writeJSON(rw, &hello); err != nil {
		return nil, nil, fmt.Errorf("send resume hello: %w", err)
	}
	var reply handshakeMsg
	if err := readJSON(br, &reply); err != nil {
		return nil, nil, fmt.Errorf("read resume reply: %w", err)
	}
	if reply.ResumeOK == nil || !*reply.ResumeOK {
		if len(reply.Chain) == 0 {
			// Not an acceptor that understands fallback (e.g. an old
			// symmetric peer confused by the ticket): bail out.
			return nil, nil, errors.New("peer rejected resumption without falling back")
		}
		return nil, &reply, nil
	}
	// Authenticate the acceptor: only the ticket issuer can derive the
	// session secret, and the MAC covers our fresh nonce.
	if len(reply.Nonce) != nonceLen || !hmac.Equal(reply.ResumeMAC, resumeMAC(s.Secret, "accept", nonce)) {
		return nil, nil, fmt.Errorf("%w: peer failed resumption proof", ErrHandshakeFailed)
	}
	if err := writeJSON(rw, &handshakeMsg{ResumeMAC: resumeMAC(s.Secret, "confirm", reply.Nonce)}); err != nil {
		return nil, nil, fmt.Errorf("send resume confirm: %w", err)
	}
	return &Peer{
		Identity: s.PeerIdentity,
		Subject:  s.PeerSubject,
		Features: reply.Features,
		Resumed:  true,
	}, nil, nil
}

// clientFull runs a full handshake from scratch (no resumption attempt
// preceded it on this connection).
func (a *Authenticator) clientFull(rw io.ReadWriter, br *bufio.Reader, target string) (*Peer, error) {
	nonce, err := newNonce()
	if err != nil {
		return nil, err
	}
	hello := handshakeMsg{
		Chain:      a.cred.Public().Chain,
		Nonce:      nonce,
		Assertions: a.asserts,
		Features:   a.clientFeatures(),
	}
	// The acceptor reads first, but a symmetric peer transmits first;
	// sending concurrently keeps both orders deadlock-free.
	sendErr := make(chan error, 1)
	go func() { sendErr <- writeJSON(rw, &hello) }()
	var acceptorHello handshakeMsg
	if err := readJSON(br, &acceptorHello); err != nil {
		return nil, fmt.Errorf("read peer hello: %w", err)
	}
	if err := <-sendErr; err != nil {
		return nil, fmt.Errorf("send hello: %w", err)
	}
	return a.clientFinish(rw, br, nonce, &acceptorHello, target)
}

// clientFullFrom completes a full handshake after a rejected resumption:
// the acceptor's hello is already in hand, ours still has to be sent.
func (a *Authenticator) clientFullFrom(rw io.ReadWriter, br *bufio.Reader, acceptorHello *handshakeMsg, target string) (*Peer, error) {
	nonce, err := newNonce()
	if err != nil {
		return nil, err
	}
	hello := handshakeMsg{
		Chain:      a.cred.Public().Chain,
		Nonce:      nonce,
		Assertions: a.asserts,
		Features:   a.clientFeatures(),
	}
	if err := writeJSON(rw, &hello); err != nil {
		return nil, fmt.Errorf("send hello: %w", err)
	}
	return a.clientFinish(rw, br, nonce, acceptorHello, target)
}

// clientFinish verifies the acceptor's hello, exchanges proofs, and —
// when both sides announced FeatureResume — reads the ticket-grant leg
// and caches the session.
func (a *Authenticator) clientFinish(rw io.ReadWriter, br *bufio.Reader, nonce []byte, acceptorHello *handshakeMsg, target string) (*Peer, error) {
	peer, peerCred, err := a.verifyPeerHello(acceptorHello)
	if err != nil {
		return nil, err
	}
	if err := a.proofExchange(rw, br, nonce, acceptorHello.Nonce, peerCred); err != nil {
		return nil, err
	}
	if a.sessions != nil && hasFeature(acceptorHello.Features, FeatureResume) {
		var grant handshakeMsg
		if err := readJSON(br, &grant); err != nil {
			return nil, fmt.Errorf("read ticket grant: %w", err)
		}
		if g := grant.TicketGrant; g != nil && len(g.Ticket) > 0 && len(g.Secret) > 0 {
			a.sessions.store(target, &Session{
				Ticket:       g.Ticket,
				Secret:       g.Secret,
				Expiry:       g.Expiry,
				PeerIdentity: peer.Identity,
				PeerSubject:  peer.Subject,
				credDigest:   credentialDigest(a.cred),
				assertDigest: assertionsDigest(a.asserts),
			})
		}
	}
	return peer, nil
}

// verifyPeerHello checks the chain and assertions of a full hello and
// builds the (pre-proof) peer.
func (a *Authenticator) verifyPeerHello(ph *handshakeMsg) (*Peer, *Credential, error) {
	if len(ph.Nonce) != nonceLen {
		return nil, nil, fmt.Errorf("%w: bad peer nonce", ErrHandshakeFailed)
	}
	peerCred := &Credential{Chain: ph.Chain}
	identity, err := a.trust.Verify(peerCred, a.now())
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrHandshakeFailed, err)
	}
	peer := &Peer{
		Identity:   identity,
		Subject:    peerCred.Subject(),
		Limited:    peerCred.Leaf().Kind == KindLimited,
		Credential: peerCred,
		Features:   ph.Features,
	}
	for _, as := range ph.Assertions {
		voCert, ok := a.voCerts[as.Issuer]
		if !ok {
			continue // unknown VO: ignore the assertion
		}
		if err := VerifyAssertion(as, voCert, identity, a.now()); err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrHandshakeFailed, err)
		}
		peer.Assertions = append(peer.Assertions, as)
	}
	return peer, peerCred, nil
}

// proofExchange proves possession of our key by signing the peer's
// nonce (sent concurrently with reading the peer's proof, for symmetric
// transports) and checks the peer's proof over ours.
func (a *Authenticator) proofExchange(rw io.ReadWriter, br *bufio.Reader, myNonce, peerNonce []byte, peerCred *Credential) error {
	sig, err := a.cred.Sign(peerNonce)
	if err != nil {
		return err
	}
	sendErr := make(chan error, 1)
	go func() { sendErr <- writeJSON(rw, &handshakeMsg{Signature: sig}) }()
	var peerProof handshakeMsg
	if err := readJSON(br, &peerProof); err != nil {
		return fmt.Errorf("read peer proof: %w", err)
	}
	if err := <-sendErr; err != nil {
		return fmt.Errorf("send proof: %w", err)
	}
	if err := peerCred.VerifyBy(myNonce, peerProof.Signature); err != nil {
		return fmt.Errorf("%w: peer failed proof of possession", ErrHandshakeFailed)
	}
	return nil
}

// clientFeatures is what HandshakeClient announces: the application
// features plus FeatureResume when a session cache is configured.
func (a *Authenticator) clientFeatures() []string {
	if a.sessions == nil {
		return a.features
	}
	return append([]string{FeatureResume}, a.features...)
}

// acceptFeatures is what HandshakeAccept announces: the application
// features plus FeatureResume when a ticket issuer is configured.
func (a *Authenticator) acceptFeatures() []string {
	if a.issuer == nil {
		return a.features
	}
	return append([]string{FeatureResume}, a.features...)
}

func newNonce() ([]byte, error) {
	nonce := make([]byte, nonceLen)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("generate nonce: %w", err)
	}
	return nonce, nil
}

func writeJSON(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

func readJSON(br *bufio.Reader, v any) error {
	line, err := readLine(br, maxHandshakeMsg)
	if err != nil {
		return err
	}
	return json.Unmarshal(line, v)
}

// readLine reads one newline-terminated frame, refusing frames larger
// than max.
func readLine(br *bufio.Reader, max int) ([]byte, error) {
	var buf []byte
	for {
		frag, err := br.ReadSlice('\n')
		buf = append(buf, frag...)
		if len(buf) > max {
			return nil, fmt.Errorf("gsi: handshake message exceeds %d bytes", max)
		}
		if err == nil {
			return buf, nil
		}
		if err != bufio.ErrBufferFull {
			return nil, err
		}
	}
}
