package gsi

import (
	"crypto/rand"
	"fmt"
	"sync"
	"time"
)

// DefaultSecretOverlap is how long a superseded ticket-sealing secret
// stays redeemable after a rotation when the ring is not configured
// otherwise. It defaults to the default ticket lifetime so a rotation
// never strands a ticket that was valid when it was granted: every
// ticket sealed under the old secret has expired on its own by the time
// the old secret retires.
const DefaultSecretOverlap = DefaultTicketLifetime

// SecretVersion is one distributable ticket-sealing secret: an opaque
// key plus the monotonically increasing version that names it in sealed
// tickets. In a multi-gatekeeper deployment the cluster layer carries
// SecretVersions from the node that rotated to its peers, so a ticket
// granted by one node redeems on any other (failover-safe sessions).
type SecretVersion struct {
	ID  uint32 `json:"id"`
	Key []byte `json:"key"`
}

// retiredSecret is a superseded secret kept redeemable until retireAt.
type retiredSecret struct {
	key      []byte
	retireAt time.Time
}

// SecretRing holds the versioned ticket-sealing secrets of a
// TicketIssuer. New tickets always seal under the current (highest)
// version; redemption accepts the current version plus any superseded
// version still inside its overlap window, so rotating the secret is
// hitless: outstanding tickets stay valid for the overlap, then the old
// secret retires and they are refused (clients fall back to a full
// handshake transparently). Safe for concurrent use.
type SecretRing struct {
	mu      sync.Mutex
	current SecretVersion
	old     map[uint32]retiredSecret
	overlap time.Duration
	now     func() time.Time
}

// NewSecretRing creates a ring seeded with one fresh random secret
// (version 1). overlap <= 0 selects DefaultSecretOverlap.
func NewSecretRing(overlap time.Duration) (*SecretRing, error) {
	r := NewFollowerSecretRing(overlap)
	if _, err := r.Rotate(); err != nil {
		return nil, err
	}
	return r, nil
}

// NewFollowerSecretRing creates an EMPTY ring: it can redeem nothing
// and issue nothing until a secret arrives via Install (or Rotate).
// Cluster follower nodes start this way so they never grant a ticket
// their peers could not redeem; until the first secret replicates,
// handshakes complete without resumption grants.
func NewFollowerSecretRing(overlap time.Duration) *SecretRing {
	if overlap <= 0 {
		overlap = DefaultSecretOverlap
	}
	return &SecretRing{
		old:     make(map[uint32]retiredSecret),
		overlap: overlap,
		now:     time.Now,
	}
}

// Rotate generates a fresh random secret, makes it current and returns
// it (for distribution to peers). The previous current secret stays
// redeemable for the ring's overlap window.
func (r *SecretRing) Rotate() (SecretVersion, error) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return SecretVersion{}, fmt.Errorf("gsi: generate ticket secret: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	next := SecretVersion{ID: r.current.ID + 1, Key: key}
	r.installLocked(next)
	return next, nil
}

// Install adopts a secret distributed by a peer. A version newer than
// the current one becomes current (retiring the previous current into
// the overlap window); an unknown non-current version is retained as
// redeemable for the overlap window, so a node that joins just after a
// rotation can still redeem tickets sealed under the previous secret.
// Re-installing a known version is a no-op, making distribution
// idempotent.
func (r *SecretRing) Install(v SecretVersion) {
	if v.ID == 0 || len(v.Key) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case v.ID > r.current.ID:
		r.installLocked(v)
	case v.ID == r.current.ID:
		// Already current.
	default:
		if _, ok := r.old[v.ID]; !ok {
			r.old[v.ID] = retiredSecret{key: v.Key, retireAt: r.now().Add(r.overlap)}
		}
	}
}

// installLocked makes v current, retiring the previous current secret.
func (r *SecretRing) installLocked(v SecretVersion) {
	if r.current.ID != 0 {
		r.old[r.current.ID] = retiredSecret{key: r.current.Key, retireAt: r.now().Add(r.overlap)}
	}
	r.current = v
	r.pruneLocked()
}

// pruneLocked drops old secrets whose overlap window has passed.
func (r *SecretRing) pruneLocked() {
	now := r.now()
	for id, s := range r.old {
		if now.After(s.retireAt) {
			delete(r.old, id)
		}
	}
}

// Current returns the current secret for distribution; ok is false on
// an empty (follower) ring that has not received a secret yet.
func (r *SecretRing) Current() (SecretVersion, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.current, r.current.ID != 0
}

// Versions returns every currently redeemable secret — the current one
// plus superseded versions still inside their overlap window — newest
// first. Publishers use it to bring late-joining followers fully up to
// date in one message.
func (r *SecretRing) Versions() []SecretVersion {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked()
	var out []SecretVersion
	if r.current.ID != 0 {
		out = append(out, r.current)
	}
	for id, s := range r.old {
		out = append(out, SecretVersion{ID: id, Key: s.key})
	}
	return out
}

// keyFor resolves the sealing key for a ticket's version at time `at`.
// old reports that the key is a superseded (pre-rotation) secret still
// inside its overlap window; ok is false for unknown or retired
// versions.
func (r *SecretRing) keyFor(id uint32, at time.Time) (key []byte, old, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id != 0 && id == r.current.ID {
		return r.current.Key, false, true
	}
	s, found := r.old[id]
	if !found || at.After(s.retireAt) {
		return nil, false, false
	}
	return s.key, true, true
}
