package gsi

import (
	"errors"
	"testing"
	"time"

	"gridauth/internal/obs"
)

// ringPeer builds a minimal authenticated peer for direct issuer-level
// tests (no credential: the ticket expiry then clamps only to the
// issuer lifetime).
func ringPeer() *Peer {
	return &Peer{Identity: kateDN, Subject: kateDN}
}

func TestSecretRingRotationOverlap(t *testing.T) {
	ring, err := NewSecretRing(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	issuer := NewTicketIssuerWithRing(ring, time.Hour)
	ticket, secret, _, err := issuer.issue(ringPeer())
	if err != nil {
		t.Fatal(err)
	}

	now := time.Now()
	if _, _, oldKey, err := issuer.redeem(ticket, now); err != nil || oldKey {
		t.Fatalf("pre-rotation redeem: err=%v oldKey=%v", err, oldKey)
	}

	if _, err := ring.Rotate(); err != nil {
		t.Fatal(err)
	}
	// Inside the overlap window the old-secret ticket still redeems, and
	// the redemption is flagged as old-key.
	p, secret2, oldKey, err := issuer.redeem(ticket, now)
	if err != nil {
		t.Fatalf("redeem during overlap window: %v", err)
	}
	if !oldKey {
		t.Error("redeem under superseded secret not flagged oldKey")
	}
	if p.Identity != kateDN {
		t.Errorf("payload identity = %q", p.Identity)
	}
	if string(secret) != string(secret2) {
		t.Error("session secret changed across rotation for the same ticket")
	}

	// Past the overlap window the superseded secret is retired and the
	// ticket is refused, even though its own expiry is far away.
	after := now.Add(2 * time.Minute)
	if _, _, _, err := issuer.redeem(ticket, after); !errors.Is(err, ErrTicketInvalid) {
		t.Fatalf("redeem after overlap window: err=%v, want ErrTicketInvalid", err)
	}

	// Tickets sealed under the NEW secret are unaffected by the retirement.
	ticket2, _, _, err := issuer.issue(ringPeer())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, oldKey, err := issuer.redeem(ticket2, after); err != nil || oldKey {
		t.Fatalf("post-rotation ticket redeem: err=%v oldKey=%v", err, oldKey)
	}
}

func TestSecretRingCrossNodeRedeem(t *testing.T) {
	// The failover basis: two issuers (two gatekeeper nodes) whose rings
	// hold the same distributed secret redeem each other's tickets.
	leaderRing, err := NewSecretRing(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	cur, ok := leaderRing.Current()
	if !ok {
		t.Fatal("fresh ring has no current secret")
	}

	followerRing := NewFollowerSecretRing(time.Minute)
	nodeA := NewTicketIssuerWithRing(leaderRing, time.Hour)
	nodeB := NewTicketIssuerWithRing(followerRing, time.Hour)

	// Before the secret replicates, node B can neither issue...
	if _, _, _, err := nodeB.issue(ringPeer()); err == nil {
		t.Fatal("empty follower ring issued a ticket")
	}
	// ...nor redeem node A's tickets.
	ticket, secretA, _, err := nodeA.issue(ringPeer())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := nodeB.redeem(ticket, time.Now()); !errors.Is(err, ErrTicketInvalid) {
		t.Fatalf("redeem without the secret: err=%v, want ErrTicketInvalid", err)
	}

	followerRing.Install(cur)
	p, secretB, oldKey, err := nodeB.redeem(ticket, time.Now())
	if err != nil {
		t.Fatalf("cross-node redeem after Install: %v", err)
	}
	if oldKey {
		t.Error("current-secret ticket flagged oldKey")
	}
	if p.Identity != kateDN || string(secretA) != string(secretB) {
		t.Error("cross-node redemption did not reconstruct the same session")
	}

	// Install is idempotent and ignores stale re-deliveries.
	followerRing.Install(cur)
	if got, _ := followerRing.Current(); got.ID != cur.ID {
		t.Errorf("re-Install moved current to %d", got.ID)
	}

	// A rotation on the leader reaches the follower the same way; the
	// pre-rotation secret stays redeemable on both nodes for the overlap.
	next, err := leaderRing.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	followerRing.Install(next)
	if _, _, oldKey, err := nodeB.redeem(ticket, time.Now()); err != nil || !oldKey {
		t.Fatalf("post-rotation cross-node redeem: err=%v oldKey=%v", err, oldKey)
	}
}

// TestRotationMetrics drives rotation through the real handshake stack
// and asserts the gsi metrics count both outcomes: a resumption under a
// superseded-but-overlapping secret (gsi_tickets_old_secret_total) and
// a refusal once the secret retires (gsi_tickets_rejected_total, with a
// transparent fallback to a full handshake).
func TestRotationMetrics(t *testing.T) {
	ca := newTestCA(t)
	trust := NewTrustStore(ca.Certificate())
	kate, err := ca.Issue(kateDN, KindUser)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := Delegate(kate, time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	gkCred, err := ca.Issue(gkDN, KindService)
	if err != nil {
		t.Fatal(err)
	}

	const overlap = time.Minute
	ring, err := NewSecretRing(overlap)
	if err != nil {
		t.Fatal(err)
	}
	issuer := NewTicketIssuerWithRing(ring, time.Hour)
	m := obs.NewMetrics()

	// The server's clock is adjustable so the test can step past the
	// overlap window without sleeping. Handshakes are sequential and
	// joined before each adjustment.
	serverNow := time.Now()
	server := NewAuthenticator(gkCred, trust,
		WithTicketIssuer(issuer),
		WithMetrics(m),
		WithNow(func() time.Time { return serverNow }),
	)
	cache := NewSessionCache()
	client := NewAuthenticator(proxy, trust, WithSessionCache(cache))

	// Full handshake: ticket granted under secret v1.
	if _, peer, cerr, serr := runClientAccept(t, client, server); cerr != nil || serr != nil || peer.Resumed {
		t.Fatalf("initial handshake: cerr=%v serr=%v resumed=%v", cerr, serr, peer != nil && peer.Resumed)
	}
	if cache.Len() != 1 {
		t.Fatalf("no session cached after full handshake")
	}

	if _, err := ring.Rotate(); err != nil {
		t.Fatal(err)
	}

	// Resume inside the overlap window: accepted, counted as old-secret.
	if _, peer, cerr, serr := runClientAccept(t, client, server); cerr != nil || serr != nil || !peer.Resumed {
		t.Fatalf("overlap-window resume: cerr=%v serr=%v resumed=%v", cerr, serr, peer != nil && peer.Resumed)
	}
	if got := m.TicketsOldSecret.Load(); got != 1 {
		t.Errorf("gsi_tickets_old_secret_total = %d, want 1", got)
	}
	if got := m.TicketsRejected.Load(); got != 0 {
		t.Errorf("gsi_tickets_rejected_total = %d, want 0", got)
	}

	// Step the acceptor past the overlap window: the v1 ticket the
	// client still holds is refused and the handshake falls back to
	// full, granting a fresh v2 ticket.
	serverNow = serverNow.Add(overlap + time.Second)
	if _, peer, cerr, serr := runClientAccept(t, client, server); cerr != nil || serr != nil || peer.Resumed {
		t.Fatalf("post-retirement handshake: cerr=%v serr=%v resumed=%v", cerr, serr, peer != nil && peer.Resumed)
	}
	if got := m.TicketsRejected.Load(); got != 1 {
		t.Errorf("gsi_tickets_rejected_total = %d, want 1", got)
	}

	// The fresh current-secret ticket resumes without touching either
	// rotation counter again.
	if _, peer, cerr, serr := runClientAccept(t, client, server); cerr != nil || serr != nil || !peer.Resumed {
		t.Fatalf("fresh-ticket resume: cerr=%v serr=%v resumed=%v", cerr, serr, peer != nil && peer.Resumed)
	}
	if got := m.TicketsOldSecret.Load(); got != 1 {
		t.Errorf("gsi_tickets_old_secret_total = %d after fresh resume, want 1", got)
	}
	if got := m.TicketsRejected.Load(); got != 1 {
		t.Errorf("gsi_tickets_rejected_total = %d after fresh resume, want 1", got)
	}
}
