package gsi

import (
	"bytes"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Session resumption errors.
var (
	// ErrTicketInvalid reports a resumption ticket that failed
	// validation: tampered payload, forged seal, or expiry.
	ErrTicketInvalid = errors.New("gsi: resumption ticket invalid")
	// ErrResumeFailed wraps transport-level failures of a resumption
	// attempt. The session has already been invalidated; callers that
	// control dialing should retry with a fresh connection (which will
	// run a full handshake).
	ErrResumeFailed = errors.New("gsi: session resumption failed")
)

// DefaultTicketLifetime bounds how long a resumption ticket stays
// redeemable when the issuer is not configured otherwise. The effective
// lifetime of any individual ticket is further clamped to the peer
// credential's and assertions' remaining validity.
const DefaultTicketLifetime = 10 * time.Minute

// TicketIssuer mints and redeems the opaque, HMAC-sealed session
// resumption tickets an acceptor hands out after a full mutual
// handshake. The ticket binds the verified Peer (identity, subject,
// limited flag, digest of the presented assertions) so a later
// connection can re-establish the authenticated channel in one round
// trip, without chain verification or per-leg signatures. The issuer is
// stateless across connections: everything needed to redeem a ticket is
// inside the ticket, sealed under the issuer's random key, so restarting
// the process invalidates all outstanding tickets (clients fall back to
// a full handshake transparently).
type TicketIssuer struct {
	key      []byte
	lifetime time.Duration
	now      func() time.Time
}

// NewTicketIssuer creates an issuer with a fresh random sealing key.
// lifetime <= 0 selects DefaultTicketLifetime.
func NewTicketIssuer(lifetime time.Duration) (*TicketIssuer, error) {
	if lifetime <= 0 {
		lifetime = DefaultTicketLifetime
	}
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("gsi: generate ticket key: %w", err)
	}
	return &TicketIssuer{key: key, lifetime: lifetime, now: time.Now}, nil
}

// ticketPayload is the sealed state: everything the acceptor needs to
// reconstruct the authenticated Peer without re-verifying the chain.
type ticketPayload struct {
	Identity DN   `json:"identity"`
	Subject  DN   `json:"subject"`
	Limited  bool `json:"limited,omitempty"`
	// AssertionDigest pins the exact assertion set verified at the full
	// handshake; the client re-presents the assertions at resumption
	// and the acceptor checks them against this digest instead of
	// re-verifying VO signatures.
	AssertionDigest []byte    `json:"assertionDigest,omitempty"`
	Nonce           []byte    `json:"nonce"`
	Expiry          time.Time `json:"expiry"`
}

// sealedTicket is the wire form of a ticket: the payload plus an HMAC
// over it under the issuer's key. The client treats the whole blob as
// opaque. Note the payload is not confidential — nothing on this
// simulated wire is — but it is unforgeable and tamper-evident, and the
// session secret needed to redeem it is never derivable from the ticket
// alone (the derivation is keyed, see secretFor).
type sealedTicket struct {
	Payload json.RawMessage `json:"payload"`
	MAC     []byte          `json:"mac"`
}

func (ti *TicketIssuer) sealMAC(payload []byte) []byte {
	h := hmac.New(sha256.New, ti.key)
	h.Write([]byte("gsi-ticket-seal"))
	h.Write(payload)
	return h.Sum(nil)
}

// secretFor derives the per-ticket session secret from the seal. Only
// the issuer can perform the derivation (it is keyed), so an observer
// of a ticket on the wire cannot impersonate either side of a
// resumption; the legitimate client receives the secret once, at grant
// time, over the channel the full handshake just authenticated.
func (ti *TicketIssuer) secretFor(sealMAC []byte) []byte {
	h := hmac.New(sha256.New, ti.key)
	h.Write([]byte("gsi-resume-secret"))
	h.Write(sealMAC)
	return h.Sum(nil)
}

// issue seals a ticket for an authenticated peer. The expiry is clamped
// to the peer credential's remaining lifetime and to every presented
// assertion's validity window, so a resumed session can never outlive
// what a full handshake at redeem time would have accepted.
func (ti *TicketIssuer) issue(peer *Peer) (ticket, secret []byte, expiry time.Time, err error) {
	now := ti.now()
	expiry = now.Add(ti.lifetime)
	if peer.Credential != nil {
		if leaf := peer.Credential.Leaf(); leaf != nil && leaf.NotAfter.Before(expiry) {
			expiry = leaf.NotAfter
		}
	}
	for _, a := range peer.Assertions {
		if a.NotAfter.Before(expiry) {
			expiry = a.NotAfter
		}
	}
	if !expiry.After(now) {
		return nil, nil, time.Time{}, errors.New("gsi: peer credential expires before any ticket could be redeemed")
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return nil, nil, time.Time{}, fmt.Errorf("gsi: generate ticket nonce: %w", err)
	}
	payload, err := json.Marshal(&ticketPayload{
		Identity:        peer.Identity,
		Subject:         peer.Subject,
		Limited:         peer.Limited,
		AssertionDigest: assertionsDigest(peer.Assertions),
		Nonce:           nonce,
		Expiry:          expiry,
	})
	if err != nil {
		return nil, nil, time.Time{}, err
	}
	mac := ti.sealMAC(payload)
	ticket, err = json.Marshal(&sealedTicket{Payload: payload, MAC: mac})
	if err != nil {
		return nil, nil, time.Time{}, err
	}
	return ticket, ti.secretFor(mac), expiry, nil
}

// redeem validates a sealed ticket at time `at` and returns the bound
// peer state and the session secret.
func (ti *TicketIssuer) redeem(ticket []byte, at time.Time) (*ticketPayload, []byte, error) {
	var st sealedTicket
	if err := json.Unmarshal(ticket, &st); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrTicketInvalid, err)
	}
	if !hmac.Equal(st.MAC, ti.sealMAC(st.Payload)) {
		return nil, nil, fmt.Errorf("%w: bad seal", ErrTicketInvalid)
	}
	var p ticketPayload
	if err := json.Unmarshal(st.Payload, &p); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrTicketInvalid, err)
	}
	if at.After(p.Expiry) {
		return nil, nil, fmt.Errorf("%w: expired %s ago", ErrTicketInvalid, at.Sub(p.Expiry))
	}
	return &p, ti.secretFor(st.MAC), nil
}

// resumeMAC computes one leg's proof of session-secret possession. The
// role string domain-separates the acceptor's proof (over the client
// nonce) from the client's (over the acceptor nonce).
func resumeMAC(secret []byte, role string, nonce []byte) []byte {
	h := hmac.New(sha256.New, secret)
	h.Write([]byte(role))
	h.Write(nonce)
	return h.Sum(nil)
}

// assertionsDigest binds an exact set of presented assertions. Each
// assertion's signature already covers every one of its fields, so
// hashing the signatures in presentation order pins the set.
func assertionsDigest(as []*Assertion) []byte {
	if len(as) == 0 {
		return nil
	}
	h := sha256.New()
	for _, a := range as {
		h.Write(a.Signature)
	}
	return h.Sum(nil)
}

// credentialDigest identifies the exact chain a client authenticates
// with, so a cached session is never resumed after the credential
// changed (a re-delegated proxy must re-run the full handshake).
func credentialDigest(c *Credential) []byte {
	h := sha256.New()
	for _, cert := range c.Chain {
		h.Write(cert.Signature)
	}
	return h.Sum(nil)
}

// Session is an established resumable session with one acceptor,
// granted at the end of a full handshake.
type Session struct {
	// Ticket is the acceptor's opaque sealed ticket, presented verbatim
	// at resumption.
	Ticket []byte
	// Secret authenticates both sides of a resumption. It is never sent
	// during resumption; both proofs are HMACs keyed with it.
	Secret []byte
	// Expiry is the ticket's redeem-by time (already clamped by the
	// issuer to the credential's and assertions' validity).
	Expiry time.Time
	// PeerIdentity and PeerSubject record the acceptor's verified
	// identity from the original full handshake; a resumed connection
	// reports them without re-verifying the acceptor's chain (the
	// acceptor re-authenticates by proving possession of Secret).
	PeerIdentity DN
	PeerSubject  DN

	credDigest   []byte
	assertDigest []byte
}

// SessionCache stores resumable sessions keyed by dial target. A client
// Authenticator configured with one (WithSessionCache) resumes
// transparently and falls back to a full handshake whenever the cached
// session is expired, was established under a different credential or
// assertion set, or is rejected by the acceptor. Safe for concurrent
// use.
type SessionCache struct {
	mu       sync.Mutex
	sessions map[string]*Session
}

// NewSessionCache creates an empty session cache.
func NewSessionCache() *SessionCache {
	return &SessionCache{sessions: make(map[string]*Session)}
}

// lookup returns the session for target when it is still redeemable and
// was established with the same credential chain and assertion set;
// otherwise it drops the stale entry and returns nil.
func (c *SessionCache) lookup(target string, credDigest, assertDigest []byte, at time.Time) *Session {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sessions[target]
	if !ok {
		return nil
	}
	if at.After(s.Expiry) || !bytes.Equal(s.credDigest, credDigest) || !bytes.Equal(s.assertDigest, assertDigest) {
		delete(c.sessions, target)
		return nil
	}
	return s
}

func (c *SessionCache) store(target string, s *Session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sessions[target] = s
}

// Invalidate drops the cached session for target (e.g. after the
// acceptor rejected its ticket).
func (c *SessionCache) Invalidate(target string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.sessions, target)
}

// Len reports how many resumable sessions are cached.
func (c *SessionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sessions)
}
