package gsi

import (
	"bytes"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Session resumption errors.
var (
	// ErrTicketInvalid reports a resumption ticket that failed
	// validation: tampered payload, forged seal, or expiry.
	ErrTicketInvalid = errors.New("gsi: resumption ticket invalid")
	// ErrResumeFailed wraps transport-level failures of a resumption
	// attempt. The session has already been invalidated; callers that
	// control dialing should retry with a fresh connection (which will
	// run a full handshake).
	ErrResumeFailed = errors.New("gsi: session resumption failed")
)

// DefaultTicketLifetime bounds how long a resumption ticket stays
// redeemable when the issuer is not configured otherwise. The effective
// lifetime of any individual ticket is further clamped to the peer
// credential's and assertions' remaining validity.
const DefaultTicketLifetime = 10 * time.Minute

// TicketIssuer mints and redeems the opaque, HMAC-sealed session
// resumption tickets an acceptor hands out after a full mutual
// handshake. The ticket binds the verified Peer (identity, subject,
// limited flag, digest of the presented assertions) so a later
// connection can re-establish the authenticated channel in one round
// trip, without chain verification or per-leg signatures. The issuer is
// stateless across connections: everything needed to redeem a ticket is
// inside the ticket, sealed under one of the issuer's ring secrets, so
// an issuer whose ring holds only a private random secret invalidates
// all outstanding tickets when the process restarts (clients fall back
// to a full handshake transparently). Issuers built over a SHARED ring
// (NewTicketIssuerWithRing) instead survive both restarts and failover:
// any node holding the ring secret redeems any node's tickets, and
// rotation retires secrets gracefully through the ring's overlap
// window.
type TicketIssuer struct {
	ring     *SecretRing
	lifetime time.Duration
	now      func() time.Time
}

// NewTicketIssuer creates an issuer over a fresh private single-secret
// ring. lifetime <= 0 selects DefaultTicketLifetime.
func NewTicketIssuer(lifetime time.Duration) (*TicketIssuer, error) {
	ring, err := NewSecretRing(0)
	if err != nil {
		return nil, err
	}
	return NewTicketIssuerWithRing(ring, lifetime), nil
}

// NewTicketIssuerWithRing creates an issuer over a caller-provided
// (typically shared or replicated) secret ring. lifetime <= 0 selects
// DefaultTicketLifetime. An empty follower ring issues nothing until a
// secret is installed; redemption accepts exactly the versions the ring
// currently holds.
func NewTicketIssuerWithRing(ring *SecretRing, lifetime time.Duration) *TicketIssuer {
	if lifetime <= 0 {
		lifetime = DefaultTicketLifetime
	}
	return &TicketIssuer{ring: ring, lifetime: lifetime, now: time.Now}
}

// Ring exposes the issuer's secret ring (rotation and distribution
// happen through it).
func (ti *TicketIssuer) Ring() *SecretRing { return ti.ring }

// ticketPayload is the sealed state: everything the acceptor needs to
// reconstruct the authenticated Peer without re-verifying the chain.
type ticketPayload struct {
	Identity DN   `json:"identity"`
	Subject  DN   `json:"subject"`
	Limited  bool `json:"limited,omitempty"`
	// AssertionDigest pins the exact assertion set verified at the full
	// handshake; the client re-presents the assertions at resumption
	// and the acceptor checks them against this digest instead of
	// re-verifying VO signatures.
	AssertionDigest []byte    `json:"assertionDigest,omitempty"`
	Nonce           []byte    `json:"nonce"`
	Expiry          time.Time `json:"expiry"`
}

// sealedTicket is the wire form of a ticket: the payload, the version
// of the ring secret it is sealed under, and an HMAC over the payload
// under that secret. The client treats the whole blob as opaque. Note
// the payload is not confidential — nothing on this simulated wire is —
// but it is unforgeable and tamper-evident, and the session secret
// needed to redeem it is never derivable from the ticket alone (the
// derivation is keyed, see ticketSecret).
type sealedTicket struct {
	Payload json.RawMessage `json:"payload"`
	MAC     []byte          `json:"mac"`
	// KeyID names the SecretVersion the seal was computed under, so a
	// redeeming node (possibly a different cluster member, possibly
	// post-rotation) selects the right key without trial decryption.
	KeyID uint32 `json:"keyId,omitempty"`
}

func ticketSealMAC(key, payload []byte) []byte {
	h := hmac.New(sha256.New, key)
	h.Write([]byte("gsi-ticket-seal"))
	h.Write(payload)
	return h.Sum(nil)
}

// ticketSecret derives the per-ticket session secret from the seal.
// Only a holder of the ring secret can perform the derivation (it is
// keyed), so an observer of a ticket on the wire cannot impersonate
// either side of a resumption; the legitimate client receives the
// secret once, at grant time, over the channel the full handshake just
// authenticated.
func ticketSecret(key, sealMAC []byte) []byte {
	h := hmac.New(sha256.New, key)
	h.Write([]byte("gsi-resume-secret"))
	h.Write(sealMAC)
	return h.Sum(nil)
}

// issue seals a ticket for an authenticated peer. The expiry is clamped
// to the peer credential's remaining lifetime and to every presented
// assertion's validity window, so a resumed session can never outlive
// what a full handshake at redeem time would have accepted.
func (ti *TicketIssuer) issue(peer *Peer) (ticket, secret []byte, expiry time.Time, err error) {
	ver, ok := ti.ring.Current()
	if !ok {
		return nil, nil, time.Time{}, errors.New("gsi: ticket secret ring is empty (no secret installed yet)")
	}
	now := ti.now()
	expiry = now.Add(ti.lifetime)
	if peer.Credential != nil {
		if leaf := peer.Credential.Leaf(); leaf != nil && leaf.NotAfter.Before(expiry) {
			expiry = leaf.NotAfter
		}
	}
	for _, a := range peer.Assertions {
		if a.NotAfter.Before(expiry) {
			expiry = a.NotAfter
		}
	}
	if !expiry.After(now) {
		return nil, nil, time.Time{}, errors.New("gsi: peer credential expires before any ticket could be redeemed")
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return nil, nil, time.Time{}, fmt.Errorf("gsi: generate ticket nonce: %w", err)
	}
	payload, err := json.Marshal(&ticketPayload{
		Identity:        peer.Identity,
		Subject:         peer.Subject,
		Limited:         peer.Limited,
		AssertionDigest: assertionsDigest(peer.Assertions),
		Nonce:           nonce,
		Expiry:          expiry,
	})
	if err != nil {
		return nil, nil, time.Time{}, err
	}
	mac := ticketSealMAC(ver.Key, payload)
	ticket, err = json.Marshal(&sealedTicket{Payload: payload, MAC: mac, KeyID: ver.ID})
	if err != nil {
		return nil, nil, time.Time{}, err
	}
	return ticket, ticketSecret(ver.Key, mac), expiry, nil
}

// redeem validates a sealed ticket at time `at` and returns the bound
// peer state and the session secret. oldKey reports that the ticket was
// sealed under a superseded ring secret still inside its rotation
// overlap window (accepted, but worth counting: a burst of them right
// after a rotation is normal, a steady stream much later is a peer
// failing to pick up new secrets).
func (ti *TicketIssuer) redeem(ticket []byte, at time.Time) (p *ticketPayload, secret []byte, oldKey bool, err error) {
	var st sealedTicket
	if err := json.Unmarshal(ticket, &st); err != nil {
		return nil, nil, false, fmt.Errorf("%w: %v", ErrTicketInvalid, err)
	}
	key, oldKey, ok := ti.ring.keyFor(st.KeyID, at)
	if !ok {
		return nil, nil, false, fmt.Errorf("%w: unknown or retired secret version %d", ErrTicketInvalid, st.KeyID)
	}
	if !hmac.Equal(st.MAC, ticketSealMAC(key, st.Payload)) {
		return nil, nil, false, fmt.Errorf("%w: bad seal", ErrTicketInvalid)
	}
	p = new(ticketPayload)
	if err := json.Unmarshal(st.Payload, p); err != nil {
		return nil, nil, false, fmt.Errorf("%w: %v", ErrTicketInvalid, err)
	}
	if at.After(p.Expiry) {
		return nil, nil, false, fmt.Errorf("%w: expired %s ago", ErrTicketInvalid, at.Sub(p.Expiry))
	}
	return p, ticketSecret(key, st.MAC), oldKey, nil
}

// resumeMAC computes one leg's proof of session-secret possession. The
// role string domain-separates the acceptor's proof (over the client
// nonce) from the client's (over the acceptor nonce).
func resumeMAC(secret []byte, role string, nonce []byte) []byte {
	h := hmac.New(sha256.New, secret)
	h.Write([]byte(role))
	h.Write(nonce)
	return h.Sum(nil)
}

// assertionsDigest binds an exact set of presented assertions. Each
// assertion's signature already covers every one of its fields, so
// hashing the signatures in presentation order pins the set.
func assertionsDigest(as []*Assertion) []byte {
	if len(as) == 0 {
		return nil
	}
	h := sha256.New()
	for _, a := range as {
		h.Write(a.Signature)
	}
	return h.Sum(nil)
}

// credentialDigest identifies the exact chain a client authenticates
// with, so a cached session is never resumed after the credential
// changed (a re-delegated proxy must re-run the full handshake).
func credentialDigest(c *Credential) []byte {
	h := sha256.New()
	for _, cert := range c.Chain {
		h.Write(cert.Signature)
	}
	return h.Sum(nil)
}

// Session is an established resumable session with one acceptor,
// granted at the end of a full handshake.
type Session struct {
	// Ticket is the acceptor's opaque sealed ticket, presented verbatim
	// at resumption.
	Ticket []byte
	// Secret authenticates both sides of a resumption. It is never sent
	// during resumption; both proofs are HMACs keyed with it.
	Secret []byte
	// Expiry is the ticket's redeem-by time (already clamped by the
	// issuer to the credential's and assertions' validity).
	Expiry time.Time
	// PeerIdentity and PeerSubject record the acceptor's verified
	// identity from the original full handshake; a resumed connection
	// reports them without re-verifying the acceptor's chain (the
	// acceptor re-authenticates by proving possession of Secret).
	PeerIdentity DN
	PeerSubject  DN

	credDigest   []byte
	assertDigest []byte
}

// SessionCache stores resumable sessions keyed by dial target. A client
// Authenticator configured with one (WithSessionCache) resumes
// transparently and falls back to a full handshake whenever the cached
// session is expired, was established under a different credential or
// assertion set, or is rejected by the acceptor. Safe for concurrent
// use.
type SessionCache struct {
	mu       sync.Mutex
	sessions map[string]*Session
}

// NewSessionCache creates an empty session cache.
func NewSessionCache() *SessionCache {
	return &SessionCache{sessions: make(map[string]*Session)}
}

// lookup returns the session for target when it is still redeemable and
// was established with the same credential chain and assertion set;
// otherwise it drops the stale entry and returns nil.
func (c *SessionCache) lookup(target string, credDigest, assertDigest []byte, at time.Time) *Session {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sessions[target]
	if !ok {
		return nil
	}
	if at.After(s.Expiry) || !bytes.Equal(s.credDigest, credDigest) || !bytes.Equal(s.assertDigest, assertDigest) {
		delete(c.sessions, target)
		return nil
	}
	return s
}

func (c *SessionCache) store(target string, s *Session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sessions[target] = s
}

// Invalidate drops the cached session for target (e.g. after the
// acceptor rejected its ticket).
func (c *SessionCache) Invalidate(target string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.sessions, target)
}

// Len reports how many resumable sessions are cached.
func (c *SessionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sessions)
}
