package gsi

import (
	"errors"
	"net"
	"testing"
	"time"

	"gridauth/internal/obs"
)

// sessionTarget is the cache key used by the client side in these tests
// (in production it is the dial address).
const sessionTarget = "gatekeeper.test:7512"

// runClientAccept drives one HandshakeClient / HandshakeAccept exchange
// over a synchronous pipe, closing the failing side so the peer
// unblocks (the way real endpoints' deferred conn.Close does).
func runClientAccept(t *testing.T, client, server *Authenticator) (clientPeer, serverPeer *Peer, clientErr, serverErr error) {
	t.Helper()
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		serverPeer, _, serverErr = server.HandshakeAccept(c2)
		if serverErr != nil {
			c2.Close()
		}
	}()
	clientPeer, _, clientErr = client.HandshakeClient(c1, sessionTarget)
	if clientErr != nil {
		c1.Close()
	}
	<-done
	return
}

// sessionEnv is a resumption-capable client/acceptor pair sharing one
// trust fabric.
type sessionEnv struct {
	ca     *CA
	trust  *TrustStore
	proxy  *Credential
	gkCred *Credential
	issuer *TicketIssuer
	cache  *SessionCache
	client *Authenticator
	server *Authenticator
}

func newSessionEnv(t *testing.T, ticketLifetime time.Duration, clientOpts, serverOpts []AuthOption) *sessionEnv {
	t.Helper()
	ca := newTestCA(t)
	trust := NewTrustStore(ca.Certificate())
	kate, err := ca.Issue(kateDN, KindUser)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := Delegate(kate, time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	gkCred, err := ca.Issue(gkDN, KindService)
	if err != nil {
		t.Fatal(err)
	}
	issuer, err := NewTicketIssuer(ticketLifetime)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewSessionCache()
	e := &sessionEnv{
		ca: ca, trust: trust, proxy: proxy, gkCred: gkCred,
		issuer: issuer, cache: cache,
	}
	e.client = NewAuthenticator(proxy, trust, append([]AuthOption{WithSessionCache(cache)}, clientOpts...)...)
	e.server = NewAuthenticator(gkCred, trust, append([]AuthOption{WithTicketIssuer(issuer)}, serverOpts...)...)
	return e
}

func TestSessionResumptionRoundTrip(t *testing.T) {
	e := newSessionEnv(t, 0, nil, nil)

	// First connection: full handshake, ticket granted and cached.
	cp, sp, cerr, serr := runClientAccept(t, e.client, e.server)
	if cerr != nil || serr != nil {
		t.Fatalf("full handshake: client=%v server=%v", cerr, serr)
	}
	if cp.Resumed || sp.Resumed {
		t.Fatalf("first handshake reported resumed (client=%v server=%v)", cp.Resumed, sp.Resumed)
	}
	if e.cache.Len() != 1 {
		t.Fatalf("cache holds %d sessions after grant, want 1", e.cache.Len())
	}

	// Second connection: one-round-trip resumption on both sides.
	cp2, sp2, cerr, serr := runClientAccept(t, e.client, e.server)
	if cerr != nil || serr != nil {
		t.Fatalf("resumed handshake: client=%v server=%v", cerr, serr)
	}
	if !cp2.Resumed || !sp2.Resumed {
		t.Fatalf("resumption did not happen (client=%v server=%v)", cp2.Resumed, sp2.Resumed)
	}
	if sp2.Identity != kateDN {
		t.Errorf("resumed identity = %s, want %s", sp2.Identity, kateDN)
	}
	if sp2.Subject != e.proxy.Subject() {
		t.Errorf("resumed subject = %s, want %s", sp2.Subject, e.proxy.Subject())
	}
	if sp2.Limited {
		t.Errorf("resumed session reports a limited proxy")
	}
	if sp2.Credential != nil {
		t.Errorf("resumed peer carries a credential; the chain is not re-presented")
	}
	if cp2.Identity != gkDN {
		t.Errorf("client sees acceptor identity %s, want %s", cp2.Identity, gkDN)
	}
}

func TestResumptionCarriesFeaturesAndAssertions(t *testing.T) {
	voCred, err := newTestCA(t).Issue("/O=Grid/CN=NFC VO", KindService)
	if err != nil {
		t.Fatal(err)
	}
	as := &Assertion{
		VO: "NFC", Holder: kateDN, Jobtags: []string{"NFC"},
		NotBefore: time.Now().Add(-time.Minute), NotAfter: time.Now().Add(time.Hour),
	}
	if err := SignAssertion(as, voCred); err != nil {
		t.Fatal(err)
	}
	// An assertion from a VO the acceptor does not know: dropped on the
	// full handshake AND on resumption, never fatal.
	strangerCred, err := newTestCA(t).Issue("/O=Grid/CN=Stranger VO", KindService)
	if err != nil {
		t.Fatal(err)
	}
	unknown := &Assertion{
		VO: "stranger", Holder: kateDN,
		NotBefore: time.Now().Add(-time.Minute), NotAfter: time.Now().Add(time.Hour),
	}
	if err := SignAssertion(unknown, strangerCred); err != nil {
		t.Fatal(err)
	}

	e := newSessionEnv(t, 0,
		[]AuthOption{WithAssertions(as, unknown), WithFeatures("app/2")},
		[]AuthOption{WithVOCert(voCred.Leaf()), WithFeatures("app/2")})

	_, sp, cerr, serr := runClientAccept(t, e.client, e.server)
	if cerr != nil || serr != nil {
		t.Fatalf("full handshake: client=%v server=%v", cerr, serr)
	}
	if len(sp.Assertions) != 1 || sp.Assertions[0].VO != "NFC" {
		t.Fatalf("full handshake kept %d assertions, want the 1 known-VO one", len(sp.Assertions))
	}

	cp2, sp2, cerr, serr := runClientAccept(t, e.client, e.server)
	if cerr != nil || serr != nil {
		t.Fatalf("resumed handshake: client=%v server=%v", cerr, serr)
	}
	if !sp2.Resumed {
		t.Fatal("expected resumption despite the unknown-VO assertion in the hello")
	}
	if len(sp2.Assertions) != 1 || sp2.Assertions[0].VO != "NFC" {
		t.Errorf("resumed handshake kept %d assertions, want the 1 known-VO one", len(sp2.Assertions))
	}
	if !cp2.HasFeature("app/2") || !sp2.HasFeature("app/2") {
		t.Errorf("application feature lost on resumption (client=%v server=%v)", cp2.Features, sp2.Features)
	}
}

func TestTamperedTicketFallsBackToFullHandshake(t *testing.T) {
	e := newSessionEnv(t, 0, nil, nil)
	if _, _, cerr, serr := runClientAccept(t, e.client, e.server); cerr != nil || serr != nil {
		t.Fatalf("full handshake: client=%v server=%v", cerr, serr)
	}

	s := e.cache.sessions[sessionTarget]
	s.Ticket[len(s.Ticket)/2] ^= 0x40 // corrupt the sealed ticket

	cp, sp, cerr, serr := runClientAccept(t, e.client, e.server)
	if cerr != nil || serr != nil {
		t.Fatalf("fallback handshake: client=%v server=%v", cerr, serr)
	}
	if cp.Resumed || sp.Resumed {
		t.Fatal("tampered ticket was accepted for resumption")
	}
	if sp.Identity != kateDN {
		t.Errorf("fallback identity = %s", sp.Identity)
	}
	// The fallback full handshake granted a fresh ticket.
	if e.cache.Len() != 1 {
		t.Fatalf("cache holds %d sessions after fallback, want 1 fresh", e.cache.Len())
	}
	if cp2, sp2, _, _ := runClientAccept(t, e.client, e.server); cp2 == nil || !cp2.Resumed || !sp2.Resumed {
		t.Fatal("fresh ticket from the fallback handshake did not resume")
	}
}

func TestWrongSessionSecretFailsClosed(t *testing.T) {
	e := newSessionEnv(t, 0, nil, nil)
	if _, _, cerr, serr := runClientAccept(t, e.client, e.server); cerr != nil || serr != nil {
		t.Fatalf("full handshake: client=%v server=%v", cerr, serr)
	}

	// A valid ticket but the wrong secret: the acceptor's proof cannot
	// be verified, and that is NOT a fallback case — a party presenting
	// a stolen ticket without the secret must get nothing.
	e.cache.sessions[sessionTarget].Secret[0] ^= 0x01

	cp, _, cerr, _ := runClientAccept(t, e.client, e.server)
	if cp != nil || cerr == nil {
		t.Fatalf("resumption with wrong secret: peer=%v err=%v, want hard failure", cp, cerr)
	}
	if !errors.Is(cerr, ErrHandshakeFailed) {
		t.Errorf("error = %v, want ErrHandshakeFailed", cerr)
	}
	// The poisoned session is gone; the next attempt is a clean full
	// handshake.
	if e.cache.Len() != 0 {
		t.Fatalf("failed resumption left %d sessions cached", e.cache.Len())
	}
	if cp2, _, cerr, serr := runClientAccept(t, e.client, e.server); cerr != nil || serr != nil || cp2.Resumed {
		t.Fatalf("recovery handshake: client=%v server=%v resumed=%v", cerr, serr, cp2 != nil && cp2.Resumed)
	}
}

func TestExpiredTicketRejectedByAcceptor(t *testing.T) {
	e := newSessionEnv(t, 50*time.Millisecond, nil, nil)
	if _, _, cerr, serr := runClientAccept(t, e.client, e.server); cerr != nil || serr != nil {
		t.Fatalf("full handshake: client=%v server=%v", cerr, serr)
	}
	time.Sleep(80 * time.Millisecond)
	// Force the client to present the expired ticket anyway (its own
	// cache would normally drop it first): the acceptor must reject.
	e.cache.sessions[sessionTarget].Expiry = time.Now().Add(time.Hour)

	cp, sp, cerr, serr := runClientAccept(t, e.client, e.server)
	if cerr != nil || serr != nil {
		t.Fatalf("fallback handshake: client=%v server=%v", cerr, serr)
	}
	if cp.Resumed || sp.Resumed {
		t.Fatal("expired ticket was accepted for resumption")
	}
}

func TestTicketExpiryClampedToProxyLifetime(t *testing.T) {
	e := newSessionEnv(t, 24*time.Hour, nil, nil)
	if _, _, cerr, serr := runClientAccept(t, e.client, e.server); cerr != nil || serr != nil {
		t.Fatalf("full handshake: client=%v server=%v", cerr, serr)
	}
	s := e.cache.sessions[sessionTarget]
	leafExpiry := e.proxy.Leaf().NotAfter
	if s.Expiry.After(leafExpiry) {
		t.Errorf("ticket expiry %v outlives the proxy credential %v", s.Expiry, leafExpiry)
	}
	if time.Until(s.Expiry) < 30*time.Minute {
		t.Errorf("ticket expiry %v is not clamped to roughly the proxy lifetime", s.Expiry)
	}
}

func TestSessionInvalidatedByCredentialChange(t *testing.T) {
	e := newSessionEnv(t, 0, nil, nil)
	if _, _, cerr, serr := runClientAccept(t, e.client, e.server); cerr != nil || serr != nil {
		t.Fatalf("full handshake: client=%v server=%v", cerr, serr)
	}

	// Same user re-delegates a fresh proxy: the cached session was
	// established under the old chain and must not be resumed.
	kate, err := e.ca.Issue(kateDN, KindUser)
	if err != nil {
		t.Fatal(err)
	}
	newProxy, err := Delegate(kate, time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	client2 := NewAuthenticator(newProxy, e.trust, WithSessionCache(e.cache))
	cp, sp, cerr, serr := runClientAccept(t, client2, e.server)
	if cerr != nil || serr != nil {
		t.Fatalf("post-redelegation handshake: client=%v server=%v", cerr, serr)
	}
	if cp.Resumed || sp.Resumed {
		t.Fatal("session resumed across a credential change")
	}
}

func TestSessionInvalidatedByAssertionChange(t *testing.T) {
	voCred, err := newTestCA(t).Issue("/O=Grid/CN=NFC VO", KindService)
	if err != nil {
		t.Fatal(err)
	}
	e := newSessionEnv(t, 0, nil, []AuthOption{WithVOCert(voCred.Leaf())})
	if _, _, cerr, serr := runClientAccept(t, e.client, e.server); cerr != nil || serr != nil {
		t.Fatalf("full handshake: client=%v server=%v", cerr, serr)
	}

	// The same client now presents an assertion it did not present when
	// the session was established: full handshake required.
	as := &Assertion{
		VO: "NFC", Holder: kateDN, Jobtags: []string{"NFC"},
		NotBefore: time.Now().Add(-time.Minute), NotAfter: time.Now().Add(time.Hour),
	}
	if err := SignAssertion(as, voCred); err != nil {
		t.Fatal(err)
	}
	client2 := NewAuthenticator(e.proxy, e.trust, WithSessionCache(e.cache), WithAssertions(as))
	cp, sp, cerr, serr := runClientAccept(t, client2, e.server)
	if cerr != nil || serr != nil {
		t.Fatalf("post-assertion-change handshake: client=%v server=%v", cerr, serr)
	}
	if cp.Resumed || sp.Resumed {
		t.Fatal("session resumed across an assertion change")
	}
	if len(sp.Assertions) != 1 {
		t.Fatalf("new assertion not verified on the fallback handshake")
	}
}

func TestExpiredProxyRejectedAtHandshake(t *testing.T) {
	// A CA whose clock ran two days behind issues a 12h user credential:
	// chain-valid anchors, expired leaf.
	past := time.Now().Add(-48 * time.Hour)
	backCA, err := NewCA(caDN, WithClock(func() time.Time { return past }), WithTTL(12*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	trust := NewTrustStore(backCA.Certificate())
	staleKate, err := backCA.Issue(kateDN, KindUser)
	if err != nil {
		t.Fatal(err)
	}
	// The gatekeeper credential comes from a current CA (also trusted) so
	// only the client-side expiry is under test.
	nowCA := newTestCA(t)
	gkCred, err := nowCA.Issue(gkDN, KindService)
	if err != nil {
		t.Fatal(err)
	}
	trust.Add(nowCA.Certificate())

	client := NewAuthenticator(staleKate, trust)
	server := NewAuthenticator(gkCred, trust)
	_, _, cerr, serr := runClientAccept(t, client, server)
	if serr == nil {
		t.Fatal("acceptor accepted an expired proxy credential")
	}
	if !errors.Is(serr, ErrHandshakeFailed) {
		t.Errorf("server error = %v, want ErrHandshakeFailed", serr)
	}
	if cerr == nil {
		t.Error("client side reported success against a rejecting acceptor")
	}
}

func TestHandshakeMetricsCounters(t *testing.T) {
	cm := obs.NewMetrics()
	sm := obs.NewMetrics()
	e := newSessionEnv(t, 0,
		[]AuthOption{WithMetrics(cm)},
		[]AuthOption{WithMetrics(sm)})

	// Full handshake then a resumed one: one full + one resumed on each
	// side, zero failures.
	if _, _, cerr, serr := runClientAccept(t, e.client, e.server); cerr != nil || serr != nil {
		t.Fatalf("full handshake: client=%v server=%v", cerr, serr)
	}
	if _, _, cerr, serr := runClientAccept(t, e.client, e.server); cerr != nil || serr != nil {
		t.Fatalf("resumed handshake: client=%v server=%v", cerr, serr)
	}
	for side, m := range map[string]*obs.Metrics{"client": cm, "server": sm} {
		if got := m.HandshakesFull.Load(); got != 1 {
			t.Errorf("%s full handshakes = %d, want 1", side, got)
		}
		if got := m.HandshakesResumed.Load(); got != 1 {
			t.Errorf("%s resumed handshakes = %d, want 1", side, got)
		}
		if got := m.HandshakesFailed.Load(); got != 0 {
			t.Errorf("%s failed handshakes = %d, want 0", side, got)
		}
	}

	// A client from an untrusted CA is rejected: the server counts one
	// failure and no additional successes.
	strangerCA := newTestCA(t)
	stranger, err := strangerCA.Issue(kateDN, KindUser)
	if err != nil {
		t.Fatal(err)
	}
	badClient := NewAuthenticator(stranger, NewTrustStore(strangerCA.Certificate(), e.ca.Certificate()))
	if _, _, _, serr := runClientAccept(t, badClient, e.server); serr == nil {
		t.Fatal("acceptor accepted an untrusted credential")
	}
	if got := sm.HandshakesFailed.Load(); got != 1 {
		t.Errorf("server failed handshakes = %d, want 1", got)
	}
	if full, res := sm.HandshakesFull.Load(), sm.HandshakesResumed.Load(); full != 1 || res != 1 {
		t.Errorf("server success counters moved on failure: full=%d resumed=%d", full, res)
	}
}
