package gsi

import (
	"encoding/json"
	"fmt"
	"os"
)

// credentialFile is the on-disk form of a credential.
type credentialFile struct {
	Chain []*Certificate `json:"chain"`
	Key   []byte         `json:"key,omitempty"`
}

// SaveCredential writes a credential (including its private key, when
// present) to path with owner-only permissions, the moral equivalent of
// a proxy file in /tmp/x509up_u<uid>.
func SaveCredential(cred *Credential, path string) error {
	b, err := json.MarshalIndent(&credentialFile{Chain: cred.Chain, Key: cred.Key}, "", "  ")
	if err != nil {
		return fmt.Errorf("gsi: encode credential: %w", err)
	}
	if err := os.WriteFile(path, b, 0o600); err != nil {
		return fmt.Errorf("gsi: write credential: %w", err)
	}
	return nil
}

// LoadCredential reads a credential written by SaveCredential.
func LoadCredential(path string) (*Credential, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("gsi: read credential: %w", err)
	}
	var f credentialFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("gsi: decode credential %s: %w", path, err)
	}
	if len(f.Chain) == 0 {
		return nil, fmt.Errorf("gsi: credential %s has no certificates", path)
	}
	return &Credential{Chain: f.Chain, Key: f.Key}, nil
}

// SaveCertificate writes a single certificate (e.g. a trust anchor).
func SaveCertificate(cert *Certificate, path string) error {
	b, err := json.MarshalIndent(cert, "", "  ")
	if err != nil {
		return fmt.Errorf("gsi: encode certificate: %w", err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("gsi: write certificate: %w", err)
	}
	return nil
}

// LoadCertificate reads a certificate written by SaveCertificate.
func LoadCertificate(path string) (*Certificate, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("gsi: read certificate: %w", err)
	}
	var c Certificate
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("gsi: decode certificate %s: %w", path, err)
	}
	return &c, nil
}

// SaveAssertion writes a VO assertion to path.
func SaveAssertion(a *Assertion, path string) error {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("gsi: encode assertion: %w", err)
	}
	if err := os.WriteFile(path, b, 0o600); err != nil {
		return fmt.Errorf("gsi: write assertion: %w", err)
	}
	return nil
}

// LoadAssertion reads an assertion written by SaveAssertion.
func LoadAssertion(path string) (*Assertion, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("gsi: read assertion: %w", err)
	}
	var a Assertion
	if err := json.Unmarshal(b, &a); err != nil {
		return nil, fmt.Errorf("gsi: decode assertion %s: %w", path, err)
	}
	return &a, nil
}
