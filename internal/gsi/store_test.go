package gsi

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestCredentialSaveLoad(t *testing.T) {
	ca := newTestCA(t)
	kate, err := ca.Issue(kateDN, KindUser)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "kate.cred")
	if err := SaveCredential(kate, path); err != nil {
		t.Fatal(err)
	}
	// Owner-only permissions, like a proxy file.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Errorf("perm = %v", info.Mode().Perm())
	}
	loaded, err := LoadCredential(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Identity() != kateDN {
		t.Errorf("identity = %s", loaded.Identity())
	}
	// The private key survives: the credential can still sign, and the
	// chain still verifies.
	sig, err := loaded.Sign([]byte("msg"))
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.VerifyBy([]byte("msg"), sig); err != nil {
		t.Fatal(err)
	}
	trust := NewTrustStore(ca.Certificate())
	if _, err := trust.Verify(loaded, time.Now()); err != nil {
		t.Fatal(err)
	}
	// A public (keyless) credential round-trips too.
	pubPath := filepath.Join(t.TempDir(), "pub.cred")
	if err := SaveCredential(kate.Public(), pubPath); err != nil {
		t.Fatal(err)
	}
	pub, err := LoadCredential(pubPath)
	if err != nil {
		t.Fatal(err)
	}
	if pub.Key != nil {
		t.Errorf("public credential grew a key")
	}
}

func TestCertificateSaveLoad(t *testing.T) {
	ca := newTestCA(t)
	path := filepath.Join(t.TempDir(), "ca.cert")
	if err := SaveCertificate(ca.Certificate(), path); err != nil {
		t.Fatal(err)
	}
	cert, err := LoadCertificate(path)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Subject != ca.Certificate().Subject {
		t.Errorf("subject = %s", cert.Subject)
	}
	// The reloaded anchor still verifies chains.
	kate, err := ca.Issue(kateDN, KindUser)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTrustStore(cert).Verify(kate, time.Now()); err != nil {
		t.Fatal(err)
	}
}

func TestAssertionSaveLoad(t *testing.T) {
	ca := newTestCA(t)
	vo, err := ca.Issue("/O=Grid/CN=NFC VO", KindService)
	if err != nil {
		t.Fatal(err)
	}
	a := &Assertion{
		VO: "NFC", Holder: kateDN, Roles: []string{"admin"},
		NotBefore: time.Now().Add(-time.Minute), NotAfter: time.Now().Add(time.Hour),
	}
	if err := SignAssertion(a, vo); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "kate.assertion")
	if err := SaveAssertion(a, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAssertion(path)
	if err != nil {
		t.Fatal(err)
	}
	// Signatures survive serialization byte-for-byte.
	if err := VerifyAssertion(loaded, vo.Leaf(), kateDN, time.Now()); err != nil {
		t.Fatal(err)
	}
}

func TestStoreLoadErrors(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "missing")
	if _, err := LoadCredential(missing); err == nil {
		t.Errorf("missing credential loaded")
	}
	if _, err := LoadCertificate(missing); err == nil {
		t.Errorf("missing certificate loaded")
	}
	if _, err := LoadAssertion(missing); err == nil {
		t.Errorf("missing assertion loaded")
	}
	garbage := filepath.Join(dir, "garbage")
	if err := os.WriteFile(garbage, []byte("not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCredential(garbage); err == nil {
		t.Errorf("garbage credential loaded")
	}
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, []byte(`{"chain":[]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCredential(empty); err == nil {
		t.Errorf("chainless credential loaded")
	}
}
