package jobcontrol

import (
	"testing"
	"time"
)

func BenchmarkSubmitAndComplete(b *testing.B) {
	c := NewCluster(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Submit(JobSpec{Executable: "x", Count: 1, Duration: time.Minute}); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 1023 {
			c.Advance(2 * time.Minute) // drain periodically
		}
	}
}

func BenchmarkAdvanceBusyCluster(b *testing.B) {
	c := NewCluster(256)
	for i := 0; i < 1024; i++ {
		if _, err := c.Submit(JobSpec{Executable: "x", Count: 1, Duration: time.Hour}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Advance(time.Second)
	}
}
