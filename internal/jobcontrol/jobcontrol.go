// Package jobcontrol simulates the local job control system (the PBS/LSF
// role in GT2 deployments) that the Job Manager Instance drives: a
// cluster with a fixed CPU pool, a priority queue, and job lifecycle
// operations (start, cancel, suspend, resume, signal).
//
// The simulator runs on a virtual clock advanced explicitly with Advance,
// which keeps every test and benchmark deterministic while still
// exercising queueing, preemption and timeout behaviour. Resource usage
// is accounted per job so the sandbox package can enforce continuous
// policies against it.
package jobcontrol

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"
)

// State is a job's lifecycle state.
type State int

// Job lifecycle states.
const (
	StateQueued State = iota + 1
	StateRunning
	StateSuspended
	StateCompleted
	StateCanceled
	StateFailed
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateSuspended:
		return "suspended"
	case StateCompleted:
		return "completed"
	case StateCanceled:
		return "canceled"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateCompleted || s == StateCanceled || s == StateFailed
}

// Errors returned by cluster operations.
var (
	ErrUnknownJob   = errors.New("jobcontrol: unknown job")
	ErrBadState     = errors.New("jobcontrol: operation invalid in current state")
	ErrOverCapacity = errors.New("jobcontrol: request exceeds cluster capacity")
)

// JobSpec describes a job submission to the local scheduler.
type JobSpec struct {
	// Executable is the program name (used for bookkeeping only).
	Executable string
	// Account is the local account the job runs under.
	Account string
	// Count is the number of CPUs the job occupies.
	Count int
	// Duration is how long the job runs on the virtual clock.
	Duration time.Duration
	// MaxTime, when positive, kills the job after that much runtime
	// (the scheduler-enforced maxtime RSL attribute).
	MaxTime time.Duration
	// Priority orders the queue; higher runs first.
	Priority int
	// MemoryMB and DiskMB are the job's simulated working set, consumed
	// while running (sandbox enforcement input).
	MemoryMB int
	DiskMB   int
	// Tags carries opaque labels (e.g. the GRAM job ID).
	Tags map[string]string
}

// Job is the scheduler's view of a submitted job.
type Job struct {
	ID     string
	Spec   JobSpec
	State  State
	Detail string
	// QueuedAt, StartedAt, EndedAt are virtual-clock timestamps.
	QueuedAt  time.Time
	StartedAt time.Time
	EndedAt   time.Time
	// CPUSeconds is accumulated cpu usage (runtime × count).
	CPUSeconds float64

	remaining time.Duration // run time still needed
	runStart  time.Time     // start of the current running stretch
}

// EventKind classifies scheduler events.
type EventKind int

// Scheduler event kinds.
const (
	EventQueued EventKind = iota + 1
	EventStarted
	EventCompleted
	EventCanceled
	EventSuspended
	EventResumed
	EventFailed
)

// String returns the event kind name.
func (k EventKind) String() string {
	switch k {
	case EventQueued:
		return "queued"
	case EventStarted:
		return "started"
	case EventCompleted:
		return "completed"
	case EventCanceled:
		return "canceled"
	case EventSuspended:
		return "suspended"
	case EventResumed:
		return "resumed"
	case EventFailed:
		return "failed"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is a scheduler lifecycle notification.
type Event struct {
	Time   time.Time
	JobID  string
	Kind   EventKind
	Detail string
}

// Listener receives scheduler events. Listeners are invoked outside the
// cluster lock, in event order.
type Listener func(Event)

// Cluster is the simulated resource.
type Cluster struct {
	mu        sync.Mutex
	totalCPUs int
	freeCPUs  int
	now       time.Time
	nextID    int
	jobs      map[string]*Job
	queue     []*Job
	listeners []Listener
	pending   []Event
}

// NewCluster creates a cluster with the given CPU pool. The virtual clock
// starts at a fixed epoch for reproducibility.
func NewCluster(cpus int) *Cluster {
	return &Cluster{
		totalCPUs: cpus,
		freeCPUs:  cpus,
		now:       time.Date(2003, time.June, 16, 0, 0, 0, 0, time.UTC),
		jobs:      make(map[string]*Job),
	}
}

// Subscribe registers a listener for scheduler events.
func (c *Cluster) Subscribe(l Listener) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.listeners = append(c.listeners, l)
}

// Now returns the current virtual time.
func (c *Cluster) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// CPUs returns (total, free) processor counts.
func (c *Cluster) CPUs() (total, free int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalCPUs, c.freeCPUs
}

// Submit enqueues a job and schedules immediately if capacity allows.
func (c *Cluster) Submit(spec JobSpec) (*Job, error) {
	if spec.Count <= 0 {
		spec.Count = 1
	}
	if spec.Count > c.totalCPUs {
		return nil, fmt.Errorf("%w: count %d > %d cpus", ErrOverCapacity, spec.Count, c.totalCPUs)
	}
	c.mu.Lock()
	c.nextID++
	job := &Job{
		ID:        "lrm-" + strconv.Itoa(c.nextID),
		Spec:      spec,
		State:     StateQueued,
		QueuedAt:  c.now,
		remaining: spec.Duration,
	}
	c.jobs[job.ID] = job
	c.queue = append(c.queue, job)
	c.emit(Event{Time: c.now, JobID: job.ID, Kind: EventQueued})
	c.schedule()
	snap := c.snapshotLocked(job)
	c.dispatchLocked()
	return snap, nil
}

// Lookup returns a snapshot of the job.
func (c *Cluster) Lookup(id string) (*Job, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	job, ok := c.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return c.snapshotLocked(job), nil
}

// Jobs returns snapshots of all jobs sorted by ID.
func (c *Cluster) Jobs() []*Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Job, 0, len(c.jobs))
	for _, j := range c.jobs {
		out = append(out, c.snapshotLocked(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Cancel terminates a job in any non-terminal state.
func (c *Cluster) Cancel(id, reason string) error {
	c.mu.Lock()
	job, ok := c.jobs[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if job.State.Terminal() {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrBadState, id, job.State)
	}
	c.finish(job, StateCanceled, reason)
	c.schedule()
	c.dispatchLocked()
	return nil
}

// Suspend pauses a running job, freeing its CPUs (the §2 scenario: "this
// requires suspending existing jobs to free up resources").
func (c *Cluster) Suspend(id string) error {
	c.mu.Lock()
	job, ok := c.jobs[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if job.State != StateRunning {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrBadState, id, job.State)
	}
	c.accumulate(job)
	job.State = StateSuspended
	c.freeCPUs += job.Spec.Count
	c.emit(Event{Time: c.now, JobID: id, Kind: EventSuspended})
	c.schedule()
	c.dispatchLocked()
	return nil
}

// Resume re-queues a suspended job at its priority.
func (c *Cluster) Resume(id string) error {
	c.mu.Lock()
	job, ok := c.jobs[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if job.State != StateSuspended {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrBadState, id, job.State)
	}
	job.State = StateQueued
	c.queue = append(c.queue, job)
	c.emit(Event{Time: c.now, JobID: id, Kind: EventResumed})
	c.schedule()
	c.dispatchLocked()
	return nil
}

// SetPriority changes a job's queue priority (the "signal" management
// action's priority change).
func (c *Cluster) SetPriority(id string, priority int) error {
	c.mu.Lock()
	job, ok := c.jobs[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	job.Spec.Priority = priority
	c.schedule()
	c.dispatchLocked()
	return nil
}

// Advance moves the virtual clock forward by d, starting, completing and
// timing out jobs as the clock passes their event times.
func (c *Cluster) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	for {
		c.schedule()
		next, job := c.nextEvent()
		if job == nil || next.After(target) {
			break
		}
		c.now = next
		c.accumulate(job)
		if job.Spec.MaxTime > 0 && c.runtimeOf(job) >= job.Spec.MaxTime && job.remaining > 0 {
			c.finish(job, StateFailed, "maxtime exceeded")
			continue
		}
		c.finish(job, StateCompleted, "")
	}
	c.now = target
	c.schedule()
	c.dispatchLocked()
}

// nextEvent returns the earliest completion/timeout among running jobs.
func (c *Cluster) nextEvent() (time.Time, *Job) {
	var (
		best    time.Time
		bestJob *Job
	)
	for _, j := range c.jobs {
		if j.State != StateRunning {
			continue
		}
		end := j.runStart.Add(j.remaining)
		if j.Spec.MaxTime > 0 {
			timeout := j.runStart.Add(j.Spec.MaxTime - c.priorRuntime(j))
			if timeout.Before(end) {
				end = timeout
			}
		}
		if bestJob == nil || end.Before(best) {
			best, bestJob = end, j
		}
	}
	return best, bestJob
}

// priorRuntime is runtime accumulated before the current running stretch.
func (c *Cluster) priorRuntime(j *Job) time.Duration {
	return j.Spec.Duration - j.remaining
}

// runtimeOf is the job's total runtime as of c.now (after accumulate).
func (c *Cluster) runtimeOf(j *Job) time.Duration {
	return j.Spec.Duration - j.remaining
}

// accumulate charges the running stretch up to c.now against the job.
func (c *Cluster) accumulate(j *Job) {
	if j.State != StateRunning {
		return
	}
	ran := c.now.Sub(j.runStart)
	if ran < 0 {
		ran = 0
	}
	if ran > j.remaining {
		ran = j.remaining
	}
	j.remaining -= ran
	j.CPUSeconds += ran.Seconds() * float64(j.Spec.Count)
	j.runStart = c.now
}

// finish moves a job to a terminal state.
func (c *Cluster) finish(j *Job, state State, detail string) {
	if j.State == StateRunning {
		c.accumulate(j)
		c.freeCPUs += j.Spec.Count
	}
	if j.State == StateQueued {
		c.removeFromQueue(j)
	}
	j.State = state
	j.Detail = detail
	j.EndedAt = c.now
	kind := EventCompleted
	switch state {
	case StateCanceled:
		kind = EventCanceled
	case StateFailed:
		kind = EventFailed
	}
	c.emit(Event{Time: c.now, JobID: j.ID, Kind: kind, Detail: detail})
}

// schedule starts queued jobs while capacity allows, highest priority
// first (FIFO within a priority).
func (c *Cluster) schedule() {
	sort.SliceStable(c.queue, func(i, j int) bool {
		return c.queue[i].Spec.Priority > c.queue[j].Spec.Priority
	})
	var stillQueued []*Job
	for _, j := range c.queue {
		if j.State != StateQueued {
			continue
		}
		if j.Spec.Count <= c.freeCPUs {
			c.freeCPUs -= j.Spec.Count
			j.State = StateRunning
			j.runStart = c.now
			if j.StartedAt.IsZero() {
				j.StartedAt = c.now
			}
			if j.remaining == 0 {
				// Zero-duration job: completes at the same instant.
				c.finish(j, StateCompleted, "")
				continue
			}
			c.emit(Event{Time: c.now, JobID: j.ID, Kind: EventStarted})
			continue
		}
		stillQueued = append(stillQueued, j)
	}
	c.queue = stillQueued
}

func (c *Cluster) removeFromQueue(j *Job) {
	for i, q := range c.queue {
		if q == j {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
}

func (c *Cluster) emit(e Event) {
	c.pending = append(c.pending, e)
}

// dispatchLocked delivers pending events with the lock released, then
// returns with it released (callers must not touch state afterwards).
func (c *Cluster) dispatchLocked() {
	events := c.pending
	c.pending = nil
	listeners := append([]Listener(nil), c.listeners...)
	c.mu.Unlock()
	for _, e := range events {
		for _, l := range listeners {
			l(e)
		}
	}
}

func (c *Cluster) snapshotLocked(j *Job) *Job {
	// Charge the current running stretch so CPUSeconds is up to date in
	// the snapshot without mutating accounting state.
	cp := *j
	if j.State == StateRunning {
		ran := c.now.Sub(j.runStart)
		if ran > j.remaining {
			ran = j.remaining
		}
		cp.CPUSeconds += ran.Seconds() * float64(j.Spec.Count)
	}
	return &cp
}

// Utilization returns the fraction of CPUs currently busy.
func (c *Cluster) Utilization() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.totalCPUs == 0 {
		return 0
	}
	return float64(c.totalCPUs-c.freeCPUs) / float64(c.totalCPUs)
}
