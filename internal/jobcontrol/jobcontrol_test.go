package jobcontrol

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestSubmitRunsImmediately(t *testing.T) {
	c := NewCluster(4)
	j, err := c.Submit(JobSpec{Executable: "a", Count: 2, Duration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateRunning {
		t.Fatalf("state = %s, want running", j.State)
	}
	if _, free := c.CPUs(); free != 2 {
		t.Errorf("free cpus = %d, want 2", free)
	}
	c.Advance(time.Minute)
	got, err := c.Lookup(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCompleted {
		t.Errorf("state = %s, want completed", got.State)
	}
	if got.CPUSeconds != 120 {
		t.Errorf("CPUSeconds = %v, want 120", got.CPUSeconds)
	}
	if _, free := c.CPUs(); free != 4 {
		t.Errorf("cpus not released: free = %d", free)
	}
}

func TestQueueingAndPriority(t *testing.T) {
	c := NewCluster(2)
	low, err := c.Submit(JobSpec{Executable: "low", Count: 2, Duration: 10 * time.Minute, Priority: 0})
	if err != nil {
		t.Fatal(err)
	}
	mid, err := c.Submit(JobSpec{Executable: "mid", Count: 2, Duration: time.Minute, Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	high, err := c.Submit(JobSpec{Executable: "high", Count: 2, Duration: time.Minute, Priority: 9})
	if err != nil {
		t.Fatal(err)
	}
	if mid.State != StateQueued || high.State != StateQueued {
		t.Fatalf("later jobs should queue")
	}
	// When the low job finishes, the high-priority job must start first.
	c.Advance(10 * time.Minute)
	jh, _ := c.Lookup(high.ID)
	jm, _ := c.Lookup(mid.ID)
	jl, _ := c.Lookup(low.ID)
	if jl.State != StateCompleted {
		t.Errorf("low = %s", jl.State)
	}
	if jh.State != StateRunning {
		t.Errorf("high = %s, want running", jh.State)
	}
	if jm.State != StateQueued {
		t.Errorf("mid = %s, want queued", jm.State)
	}
	c.Advance(2 * time.Minute)
	jm, _ = c.Lookup(mid.ID)
	if jm.State != StateRunning && jm.State != StateCompleted {
		t.Errorf("mid after high completes = %s", jm.State)
	}
}

func TestCancel(t *testing.T) {
	c := NewCluster(1)
	j, err := c.Submit(JobSpec{Executable: "x", Duration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(j.ID, "operator request"); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Lookup(j.ID)
	if got.State != StateCanceled || got.Detail != "operator request" {
		t.Errorf("job = %s (%s)", got.State, got.Detail)
	}
	if err := c.Cancel(j.ID, "again"); !errors.Is(err, ErrBadState) {
		t.Errorf("double cancel = %v, want ErrBadState", err)
	}
	if err := c.Cancel("lrm-999", ""); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("cancel unknown = %v", err)
	}
	// Canceling a queued job removes it from the queue.
	a, err := c.Submit(JobSpec{Executable: "a", Duration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Submit(JobSpec{Executable: "b", Duration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(b.ID, ""); err != nil {
		t.Fatal(err)
	}
	gb, _ := c.Lookup(b.ID)
	if gb.State != StateCanceled {
		t.Errorf("queued cancel: %s", gb.State)
	}
	_ = a
}

func TestSuspendResumeFreesResources(t *testing.T) {
	c := NewCluster(2)
	long, err := c.Submit(JobSpec{Executable: "long", Count: 2, Duration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	c.Advance(10 * time.Minute)
	urgent, err := c.Submit(JobSpec{Executable: "urgent", Count: 2, Duration: 5 * time.Minute, Priority: 10})
	if err != nil {
		t.Fatal(err)
	}
	if urgent.State != StateQueued {
		t.Fatalf("urgent should queue while long runs")
	}
	// The §2 scenario: suspend the long job to free resources.
	if err := c.Suspend(long.ID); err != nil {
		t.Fatal(err)
	}
	u, _ := c.Lookup(urgent.ID)
	if u.State != StateRunning {
		t.Fatalf("urgent = %s after suspend, want running", u.State)
	}
	c.Advance(5 * time.Minute)
	u, _ = c.Lookup(urgent.ID)
	if u.State != StateCompleted {
		t.Fatalf("urgent = %s, want completed", u.State)
	}
	if err := c.Resume(long.ID); err != nil {
		t.Fatal(err)
	}
	// 10 minutes were already served; 50 remain.
	c.Advance(49 * time.Minute)
	l, _ := c.Lookup(long.ID)
	if l.State != StateRunning {
		t.Fatalf("long = %s, want still running", l.State)
	}
	c.Advance(time.Minute)
	l, _ = c.Lookup(long.ID)
	if l.State != StateCompleted {
		t.Errorf("long = %s, want completed", l.State)
	}
	if got, want := l.CPUSeconds, 3600*2.0; got != want {
		t.Errorf("CPUSeconds = %v, want %v", got, want)
	}
	// State guards.
	if err := c.Suspend(long.ID); !errors.Is(err, ErrBadState) {
		t.Errorf("suspend completed = %v", err)
	}
	if err := c.Resume(long.ID); !errors.Is(err, ErrBadState) {
		t.Errorf("resume completed = %v", err)
	}
}

func TestMaxTimeEnforcement(t *testing.T) {
	c := NewCluster(1)
	j, err := c.Submit(JobSpec{Executable: "x", Duration: time.Hour, MaxTime: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	c.Advance(9 * time.Minute)
	got, _ := c.Lookup(j.ID)
	if got.State != StateRunning {
		t.Fatalf("state at 9m = %s", got.State)
	}
	c.Advance(2 * time.Minute)
	got, _ = c.Lookup(j.ID)
	if got.State != StateFailed || got.Detail != "maxtime exceeded" {
		t.Errorf("state = %s (%s), want failed/maxtime", got.State, got.Detail)
	}
	if _, free := c.CPUs(); free != 1 {
		t.Errorf("cpus not released on timeout")
	}
}

func TestMaxTimeSpansSuspension(t *testing.T) {
	c := NewCluster(1)
	j, err := c.Submit(JobSpec{Executable: "x", Duration: time.Hour, MaxTime: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	c.Advance(6 * time.Minute)
	if err := c.Suspend(j.ID); err != nil {
		t.Fatal(err)
	}
	c.Advance(time.Hour) // suspended time must not count as runtime
	if err := c.Resume(j.ID); err != nil {
		t.Fatal(err)
	}
	c.Advance(3 * time.Minute)
	got, _ := c.Lookup(j.ID)
	if got.State != StateRunning {
		t.Fatalf("state = %s, want running (9m runtime)", got.State)
	}
	c.Advance(2 * time.Minute)
	got, _ = c.Lookup(j.ID)
	if got.State != StateFailed {
		t.Errorf("state = %s, want failed at 10m runtime", got.State)
	}
}

func TestOverCapacity(t *testing.T) {
	c := NewCluster(4)
	if _, err := c.Submit(JobSpec{Executable: "x", Count: 5, Duration: time.Minute}); !errors.Is(err, ErrOverCapacity) {
		t.Errorf("Submit = %v, want ErrOverCapacity", err)
	}
}

func TestZeroDurationJobCompletesImmediately(t *testing.T) {
	c := NewCluster(1)
	j, err := c.Submit(JobSpec{Executable: "noop"})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateCompleted {
		t.Errorf("state = %s, want completed", j.State)
	}
	if _, free := c.CPUs(); free != 1 {
		t.Errorf("cpus leaked by zero-duration job")
	}
}

func TestEvents(t *testing.T) {
	c := NewCluster(1)
	var events []Event
	c.Subscribe(func(e Event) { events = append(events, e) })
	j, err := c.Submit(JobSpec{Executable: "x", Duration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	c.Advance(time.Minute)
	kinds := make([]EventKind, 0, len(events))
	for _, e := range events {
		if e.JobID == j.ID {
			kinds = append(kinds, e.Kind)
		}
	}
	want := []EventKind{EventQueued, EventStarted, EventCompleted}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event[%d] = %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestSetPriorityReordersQueue(t *testing.T) {
	c := NewCluster(1)
	if _, err := c.Submit(JobSpec{Executable: "running", Duration: time.Hour}); err != nil {
		t.Fatal(err)
	}
	a, err := c.Submit(JobSpec{Executable: "a", Duration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Submit(JobSpec{Executable: "b", Duration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetPriority(b.ID, 5); err != nil {
		t.Fatal(err)
	}
	c.Advance(time.Hour + time.Minute)
	gb, _ := c.Lookup(b.ID)
	ga, _ := c.Lookup(a.ID)
	if gb.State != StateCompleted {
		t.Errorf("b = %s, want completed (raised priority)", gb.State)
	}
	if ga.State != StateRunning {
		t.Errorf("a = %s, want running after b", ga.State)
	}
	if err := c.SetPriority("lrm-999", 1); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("SetPriority unknown = %v", err)
	}
}

func TestUtilization(t *testing.T) {
	c := NewCluster(4)
	if got := c.Utilization(); got != 0 {
		t.Errorf("idle utilization = %v", got)
	}
	if _, err := c.Submit(JobSpec{Executable: "x", Count: 3, Duration: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if got := c.Utilization(); got != 0.75 {
		t.Errorf("utilization = %v, want 0.75", got)
	}
}

// Property: CPUs are conserved — after any sequence of submissions and a
// long Advance, free CPUs return to the total.
func TestQuickCPUConservation(t *testing.T) {
	f := func(counts []uint8, durations []uint8) bool {
		c := NewCluster(8)
		for i, cnt := range counts {
			d := time.Duration(1) * time.Minute
			if i < len(durations) {
				d = time.Duration(durations[i]%30+1) * time.Minute
			}
			spec := JobSpec{Executable: "p", Count: int(cnt%8) + 1, Duration: d}
			if _, err := c.Submit(spec); err != nil {
				return false
			}
		}
		c.Advance(1000 * time.Hour)
		total, free := c.CPUs()
		if total != free {
			return false
		}
		for _, j := range c.Jobs() {
			if !j.State.Terminal() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: accounted CPU seconds equal duration × count for completed
// jobs regardless of queueing order.
func TestQuickAccounting(t *testing.T) {
	f := func(durs []uint8) bool {
		c := NewCluster(3)
		type want struct {
			id  string
			cpu float64
		}
		var wants []want
		for _, d8 := range durs {
			d := time.Duration(d8%20+1) * time.Minute
			count := int(d8%3) + 1
			j, err := c.Submit(JobSpec{Executable: "w", Count: count, Duration: d})
			if err != nil {
				return false
			}
			wants = append(wants, want{j.ID, d.Seconds() * float64(count)})
		}
		c.Advance(10000 * time.Hour)
		for _, w := range wants {
			j, err := c.Lookup(w.id)
			if err != nil || j.State != StateCompleted || j.CPUSeconds != w.cpu {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
