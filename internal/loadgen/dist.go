package loadgen

import (
	"fmt"
	"math/rand"
)

// Subject distribution names accepted by Point.Dist.
const (
	DistUniform = "uniform"
	DistZipf    = "zipf"
	DistHotKey  = "hotkey"
)

// Op kinds: which subsystem an operation drives.
const (
	OpStartup    = "startup"    // GRAM job request over TCP (full callout path)
	OpManagement = "management" // GRAM status request on the identity's own job
	OpGridFTP    = "gridftp"    // data-service put through the gridftp callout
	OpMDS        = "mds"        // in-process directory query through the MDS callout
)

// Connection modes: how the op reaches the gatekeeper.
const (
	// ConnReuse keeps the identity's pooled client and its warm
	// multiplexed connection.
	ConnReuse = "reuse"
	// ConnResume drops the pooled client's connection first, so the op
	// reconnects by GSI session resumption (ticket, no chain verify).
	ConnResume = "resume"
	// ConnFull uses a throwaway client with an empty session cache, so
	// the op pays a full GSI handshake.
	ConnFull = "full"
)

// Op is one generated load operation. The stream of Ops for a (Point,
// seed) pair is deterministic: same inputs, byte-identical stream (see
// Encode and the distribution tests).
type Op struct {
	Seq      int    // position in the stream
	Identity int    // synthetic identity index in [0, Point.Identities)
	Kind     string // OpStartup, OpManagement, OpGridFTP or OpMDS
	Conn     string // ConnReuse, ConnResume or ConnFull
}

// Encode renders the op in a canonical single-line form, used by the
// determinism tests ("same seed → byte-identical request stream") and
// by -validate's stream preview.
func (o Op) Encode() string {
	return fmt.Sprintf("%d %d %s %s\n", o.Seq, o.Identity, o.Kind, o.Conn)
}

// sampler draws one identity index per call.
type sampler func() int

// newSampler builds the point's subject sampler over rng. Callers
// validate the point first; an unknown distribution panics.
func newSampler(p *Point, rng *rand.Rand) sampler {
	n := p.Identities
	switch p.Dist {
	case DistUniform:
		return func() int { return rng.Intn(n) }
	case DistZipf:
		s := p.ZipfS
		if s == 0 {
			s = DefaultZipfS
		}
		z := rand.NewZipf(rng, s, 1, uint64(n-1))
		return func() int { return int(z.Uint64()) }
	case DistHotKey:
		hot := p.HotKeys
		if hot == 0 {
			hot = DefaultHotKeys
		}
		if hot > n {
			hot = n
		}
		frac := p.HotFraction
		if frac == 0 {
			frac = DefaultHotFraction
		}
		return func() int {
			if rng.Float64() < frac || hot == n {
				return rng.Intn(hot)
			}
			return hot + rng.Intn(n-hot)
		}
	default:
		panic(fmt.Sprintf("loadgen: unknown distribution %q", p.Dist))
	}
}

// pick draws from a cumulative weight table.
func pick(rng *rand.Rand, names []string, weights []float64) string {
	var total float64
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return names[i]
		}
	}
	return names[len(names)-1]
}

// Ops materializes the point's deterministic operation stream: p.Requests
// operations drawn from the subject distribution, the traffic mix and
// the connection-mode mix, all from one seeded source.
func Ops(p *Point, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	subject := newSampler(p, rng)
	kinds := []string{OpStartup, OpManagement, OpGridFTP, OpMDS}
	kindW := []float64{p.Mix.Startup, p.Mix.Management, p.Mix.GridFTP, p.Mix.MDS}
	conns := []string{ConnReuse, ConnResume, ConnFull}
	connW := []float64{p.Conn.Reuse, p.Conn.Resume, p.Conn.Full}
	out := make([]Op, p.Requests)
	for i := range out {
		out[i] = Op{
			Seq:      i,
			Identity: subject(),
			Kind:     pick(rng, kinds, kindW),
			Conn:     pick(rng, conns, connW),
		}
	}
	return out
}
