package loadgen

import (
	"strings"
	"testing"
)

func testPoint(dist string, identities, requests int) *Point {
	p := &Point{
		Name:       "t",
		Identities: identities,
		Requests:   requests,
		Dist:       dist,
		Policy:     PolicyShape{Shape: ShapeExact},
	}
	p.Normalize()
	return p
}

// Same seed must yield a byte-identical request stream; a different
// seed must not.
func TestOpsDeterministic(t *testing.T) {
	p := testPoint(DistZipf, 1000, 500)
	p.Mix = Mix{Startup: 2, Management: 1, GridFTP: 1, MDS: 1}
	p.Conn = ConnMix{Reuse: 3, Resume: 1, Full: 1}
	encode := func(ops []Op) string {
		var sb strings.Builder
		for _, o := range ops {
			sb.WriteString(o.Encode())
		}
		return sb.String()
	}
	a, b := encode(Ops(p, 42)), encode(Ops(p, 42))
	if a != b {
		t.Fatal("same seed produced different streams")
	}
	if c := encode(Ops(p, 43)); c == a {
		t.Fatal("different seeds produced identical streams")
	}
	if len(a) == 0 {
		t.Fatal("empty stream")
	}
}

// counts tallies identity draws per index.
func counts(ops []Op) map[int]int {
	out := make(map[int]int)
	for _, o := range ops {
		out[o.Identity]++
	}
	return out
}

func TestDistributionSkew(t *testing.T) {
	const n, reqs = 1000, 40000
	cases := []struct {
		name  string
		setup func(*Point)
		check func(t *testing.T, c map[int]int)
	}{
		{
			name:  "uniform-spread",
			setup: func(p *Point) { p.Dist = DistUniform },
			check: func(t *testing.T, c map[int]int) {
				// Expect ~40 draws per identity; no identity may be
				// wildly over-represented, and coverage must be broad.
				if len(c) < n*9/10 {
					t.Fatalf("uniform covered only %d/%d identities", len(c), n)
				}
				for id, k := range c {
					if k > 120 { // 3x the expectation
						t.Fatalf("identity %d drawn %d times under uniform", id, k)
					}
				}
			},
		},
		{
			name:  "zipf-head-heavy",
			setup: func(p *Point) { p.Dist = DistZipf; p.ZipfS = 1.3 },
			check: func(t *testing.T, c map[int]int) {
				top10 := 0
				for id := 0; id < 10; id++ {
					top10 += c[id]
				}
				frac := float64(top10) / reqs
				// Zipf s=1.3 over 1000 ranks puts well over half the
				// mass on the first ten; uniform would put 1% there.
				if frac < 0.55 || frac > 0.95 {
					t.Fatalf("zipf top-10 fraction = %.3f, want 0.55..0.95", frac)
				}
				if c[0] < c[9] {
					t.Fatalf("zipf rank 0 (%d) drawn less than rank 9 (%d)", c[0], c[9])
				}
			},
		},
		{
			name: "hotkey-fraction",
			setup: func(p *Point) {
				p.Dist = DistHotKey
				p.HotKeys = 10
				p.HotFraction = 0.9
			},
			check: func(t *testing.T, c map[int]int) {
				hot := 0
				for id := 0; id < 10; id++ {
					hot += c[id]
				}
				frac := float64(hot) / reqs
				// 90% ± sampling noise on 40k draws.
				if frac < 0.88 || frac > 0.92 {
					t.Fatalf("hot fraction = %.3f, want 0.90 ± 0.02", frac)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := testPoint(DistUniform, n, reqs)
			tc.setup(p)
			tc.check(t, counts(Ops(p, 7)))
		})
	}
}

func TestMixRatios(t *testing.T) {
	p := testPoint(DistUniform, 100, 40000)
	p.Mix = Mix{Startup: 5, Management: 3, GridFTP: 1, MDS: 1}
	p.Conn = ConnMix{Reuse: 8, Resume: 1, Full: 1}
	kinds := map[string]int{}
	conns := map[string]int{}
	for _, o := range Ops(p, 11) {
		kinds[o.Kind]++
		conns[o.Conn]++
	}
	within := func(name string, got int, want float64) {
		frac := float64(got) / float64(p.Requests)
		if frac < want-0.02 || frac > want+0.02 {
			t.Errorf("%s fraction = %.3f, want %.2f ± 0.02", name, frac, want)
		}
	}
	within("startup", kinds[OpStartup], 0.5)
	within("management", kinds[OpManagement], 0.3)
	within("gridftp", kinds[OpGridFTP], 0.1)
	within("mds", kinds[OpMDS], 0.1)
	within("reuse", conns[ConnReuse], 0.8)
	within("resume", conns[ConnResume], 0.1)
	within("full", conns[ConnFull], 0.1)
}

// The zero-value mixes must normalize to something runnable.
func TestNormalizeDefaults(t *testing.T) {
	p := &Point{Name: "d", Identities: 10, Requests: 10, Dist: DistUniform,
		Policy: PolicyShape{Shape: ShapeReq}}
	p.Normalize()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, o := range Ops(p, 1) {
		if o.Kind != OpStartup || o.Conn != ConnReuse {
			t.Fatalf("default mix produced %s/%s, want startup/reuse", o.Kind, o.Conn)
		}
	}
	if p.Workers != DefaultWorkers || p.ZipfS != DefaultZipfS {
		t.Fatalf("defaults not applied: %+v", p)
	}
}
