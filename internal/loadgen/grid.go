// Package loadgen is the full-stack load harness (docs/PERFORMANCE.md,
// "P13 — full-stack load"): a closed-loop (or open-loop, arrival-rate
// paced) generator that drives a real gatekeeper — TCP, GSI handshakes,
// callout chain, audit, metrics — with up to a million synthetic
// identities fabricated deterministically from a seed, mixed
// startup/management/gridftp/mds traffic, configurable subject skew
// (uniform, Zipf, hot-key) and resumed-vs-full handshake mixes. It
// measures exact p50/p99/p999 latency and peak decisions/sec, and
// cross-checks its client-side counts against the gatekeeper's
// /metrics endpoint. cmd/gridload is the CLI; scripts/experiments runs
// a reproducible experiment grid into BENCH_load.json.
package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Distribution and shape defaults, applied by Point.Normalize.
const (
	DefaultZipfS       = 1.3
	DefaultHotKeys     = 10
	DefaultHotFraction = 0.9
	DefaultWorkers     = 8
	DefaultRules       = 1000
)

// PolicyShape selects the installed policy from the P12 generators in
// internal/workload.
type PolicyShape struct {
	// Shape is "exact", "prefix" or "req" (workload.ExactHeavyPolicy,
	// workload.PrefixHeavyPolicy, workload.RequirementHeavyPolicy).
	Shape string `json:"shape"`
	// Rules is the statement count (default 1000).
	Rules int `json:"rules,omitempty"`
}

// Mix is the traffic mix by op kind. Weights are relative; they need
// not sum to 1.
type Mix struct {
	Startup    float64 `json:"startup"`
	Management float64 `json:"management"`
	GridFTP    float64 `json:"gridftp"`
	MDS        float64 `json:"mds"`
}

// ConnMix is the connection-mode mix for GRAM traffic. Weights are
// relative; they need not sum to 1.
type ConnMix struct {
	Reuse  float64 `json:"reuse"`
	Resume float64 `json:"resume"`
	Full   float64 `json:"full"`
}

// Point is one experiment grid point: a complete load-run
// configuration.
type Point struct {
	// Name labels the point in reports; unique within a grid.
	Name string `json:"name"`
	// Identities is the synthetic identity population (up to 1M).
	// Identities are fabricated lazily, so only the ones traffic
	// samples are materialized.
	Identities int `json:"identities"`
	// Workers is the closed-loop concurrency (default 8).
	Workers int `json:"workers,omitempty"`
	// Requests is the total operation count.
	Requests int `json:"requests"`
	// Rate switches to open-loop mode: operations are dispatched at
	// this arrival rate per second regardless of completions, and
	// latency is measured from the scheduled arrival time (coordinated
	// omission is accounted for). 0 selects closed-loop worker mode.
	Rate float64 `json:"rate,omitempty"`
	// Dist is the subject distribution: "uniform", "zipf" or "hotkey".
	Dist string `json:"dist"`
	// ZipfS is the Zipf skew exponent (>1; default 1.3).
	ZipfS float64 `json:"zipfS,omitempty"`
	// HotKeys and HotFraction parameterize the hot-key distribution:
	// HotFraction of traffic lands on the first HotKeys identities
	// (defaults 10 and 0.9).
	HotKeys     int     `json:"hotKeys,omitempty"`
	HotFraction float64 `json:"hotFraction,omitempty"`
	// Policy selects the installed policy shape and size.
	Policy PolicyShape `json:"policy"`
	// Mix is the traffic mix (zero value selects all-startup).
	Mix Mix `json:"mix,omitempty"`
	// Conn is the connection-mode mix (zero value selects all-reuse).
	Conn ConnMix `json:"conn,omitempty"`
	// Repeats overrides the grid-level repeat count for this point
	// (0 inherits).
	Repeats int `json:"repeats,omitempty"`
}

// Grid is a reproducible experiment grid: a seed, a repeat count and a
// list of points. scripts/experiments/grid.json is the committed
// default.
type Grid struct {
	// Seed drives identity fabrication and the op streams. Repeat r of
	// a point uses seed+r, so repeats are distinct but reproducible.
	Seed int64 `json:"seed"`
	// Repeats is how many times each point runs (default 1).
	Repeats int `json:"repeats,omitempty"`
	// Points are the grid points, run in order.
	Points []Point `json:"points"`
}

// Normalize applies defaults in place.
func (p *Point) Normalize() {
	if p.Workers == 0 {
		p.Workers = DefaultWorkers
	}
	if p.Policy.Rules == 0 {
		p.Policy.Rules = DefaultRules
	}
	if p.ZipfS == 0 {
		p.ZipfS = DefaultZipfS
	}
	if p.HotKeys == 0 {
		p.HotKeys = DefaultHotKeys
	}
	if p.HotFraction == 0 {
		p.HotFraction = DefaultHotFraction
	}
	if p.Mix == (Mix{}) {
		p.Mix = Mix{Startup: 1}
	}
	if p.Conn == (ConnMix{}) {
		p.Conn = ConnMix{Reuse: 1}
	}
}

// Validate checks the point. It is the schema half of `gridload
// -validate`; ValidatePolicy dry-runs the referenced policy shape.
func (p *Point) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("point needs a name")
	}
	if p.Identities <= 0 {
		return fmt.Errorf("point %s: identities must be positive", p.Name)
	}
	if p.Requests <= 0 {
		return fmt.Errorf("point %s: requests must be positive", p.Name)
	}
	if p.Workers < 0 || p.Rate < 0 || p.Repeats < 0 {
		return fmt.Errorf("point %s: workers, rate and repeats must be non-negative", p.Name)
	}
	switch p.Dist {
	case DistUniform, DistZipf, DistHotKey:
	default:
		return fmt.Errorf("point %s: unknown distribution %q (want %s, %s or %s)",
			p.Name, p.Dist, DistUniform, DistZipf, DistHotKey)
	}
	if p.Dist == DistZipf && p.ZipfS != 0 && p.ZipfS <= 1 {
		return fmt.Errorf("point %s: zipfS must exceed 1", p.Name)
	}
	if p.HotKeys < 0 || p.HotFraction < 0 || p.HotFraction > 1 {
		return fmt.Errorf("point %s: hotKeys must be non-negative and hotFraction in [0,1]", p.Name)
	}
	switch p.Policy.Shape {
	case ShapeExact, ShapePrefix, ShapeReq:
	default:
		return fmt.Errorf("point %s: unknown policy shape %q (want %s, %s or %s)",
			p.Name, p.Policy.Shape, ShapeExact, ShapePrefix, ShapeReq)
	}
	if p.Policy.Rules < 0 || p.Policy.Rules == 1 {
		return fmt.Errorf("point %s: policy rules must be 0 (default) or at least 2", p.Name)
	}
	if bad := negWeight(p.Mix.Startup, p.Mix.Management, p.Mix.GridFTP, p.Mix.MDS); bad {
		return fmt.Errorf("point %s: mix weights must be non-negative", p.Name)
	}
	if bad := negWeight(p.Conn.Reuse, p.Conn.Resume, p.Conn.Full); bad {
		return fmt.Errorf("point %s: conn weights must be non-negative", p.Name)
	}
	return nil
}

func negWeight(ws ...float64) bool {
	for _, w := range ws {
		if w < 0 {
			return true
		}
	}
	return false
}

// Validate checks the whole grid: every point, plus name uniqueness.
func (g *Grid) Validate() error {
	if len(g.Points) == 0 {
		return fmt.Errorf("grid has no points")
	}
	if g.Repeats < 0 {
		return fmt.Errorf("repeats must be non-negative")
	}
	seen := map[string]bool{}
	for i := range g.Points {
		p := &g.Points[i]
		if err := p.Validate(); err != nil {
			return err
		}
		if seen[p.Name] {
			return fmt.Errorf("duplicate point name %q", p.Name)
		}
		seen[p.Name] = true
	}
	return nil
}

// LoadGrid reads and validates a grid file. Unknown JSON fields are
// rejected, so a typo'd key fails -validate instead of silently
// selecting a default.
func LoadGrid(path string) (*Grid, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var g Grid
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &g, nil
}
