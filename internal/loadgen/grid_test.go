package loadgen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func validGrid() *Grid {
	return &Grid{
		Seed:    1,
		Repeats: 1,
		Points: []Point{{
			Name:       "ok",
			Identities: 100,
			Requests:   50,
			Dist:       DistUniform,
			Policy:     PolicyShape{Shape: ShapeExact, Rules: 10},
		}},
	}
}

func TestGridValidate(t *testing.T) {
	if err := validGrid().Validate(); err != nil {
		t.Fatalf("valid grid rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Grid)
		want   string
	}{
		{"no-points", func(g *Grid) { g.Points = nil }, "no points"},
		{"no-name", func(g *Grid) { g.Points[0].Name = "" }, "needs a name"},
		{"bad-dist", func(g *Grid) { g.Points[0].Dist = "pareto" }, "unknown distribution"},
		{"bad-shape", func(g *Grid) { g.Points[0].Policy.Shape = "tree" }, "unknown policy shape"},
		{"one-rule", func(g *Grid) { g.Points[0].Policy.Rules = 1 }, "rules"},
		{"zero-identities", func(g *Grid) { g.Points[0].Identities = 0 }, "identities"},
		{"zero-requests", func(g *Grid) { g.Points[0].Requests = 0 }, "requests"},
		{"flat-zipf", func(g *Grid) { g.Points[0].Dist = DistZipf; g.Points[0].ZipfS = 0.5 }, "zipfS"},
		{"negative-mix", func(g *Grid) { g.Points[0].Mix.MDS = -1 }, "mix weights"},
		{"negative-conn", func(g *Grid) { g.Points[0].Conn.Full = -1 }, "conn weights"},
		{"hot-fraction", func(g *Grid) { g.Points[0].Dist = DistHotKey; g.Points[0].HotFraction = 1.5 }, "hotFraction"},
		{
			"duplicate-name",
			func(g *Grid) { g.Points = append(g.Points, g.Points[0]) },
			"duplicate point name",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := validGrid()
			tc.mutate(g)
			err := g.Validate()
			if err == nil {
				t.Fatal("invalid grid accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLoadGridRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.json")
	const text = `{"seed": 1, "points": [{"name": "x", "identities": 10,
		"requests": 10, "dist": "uniform", "policy": {"shape": "exact", "rules": 4},
		"workerz": 9}]}`
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGrid(path); err == nil || !strings.Contains(err.Error(), "workerz") {
		t.Fatalf("typo'd field not rejected: %v", err)
	}
}

func TestValidatePolicyProbes(t *testing.T) {
	for _, shape := range []string{ShapeExact, ShapePrefix, ShapeReq} {
		p := &Point{Name: "p", Identities: 10, Requests: 10, Dist: DistUniform,
			Policy: PolicyShape{Shape: shape, Rules: 100000}}
		if err := ValidatePolicy(p); err != nil {
			t.Fatalf("shape %s: %v", shape, err)
		}
	}
	p := &Point{Name: "p", Policy: PolicyShape{Shape: "nope"}}
	if err := ValidatePolicy(p); err == nil {
		t.Fatal("unknown shape accepted")
	}
}

func TestReportDiff(t *testing.T) {
	base := &Report{Schema: ReportSchema, Points: []PointSummary{
		{Point: "a", P99Micros: 1000},
		{Point: "gone", P99Micros: 500},
	}}
	cur := &Report{Schema: ReportSchema, Points: []PointSummary{
		{Point: "a", P99Micros: 1300},
		{Point: "new", P99Micros: 100},
	}}
	regs, notes, err := Diff(base, cur, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Point != "a" {
		t.Fatalf("regressions = %+v, want point a", regs)
	}
	if regs[0].ChangePct < 29 || regs[0].ChangePct > 31 {
		t.Fatalf("change = %.1f%%, want ~30%%", regs[0].ChangePct)
	}
	if len(notes) != 2 {
		t.Fatalf("notes = %v, want new+dropped", notes)
	}
	// Inside tolerance: no regression.
	cur.Points[0].P99Micros = 1200
	regs, _, err = Diff(base, cur, 25)
	if err != nil || len(regs) != 0 {
		t.Fatalf("20%% growth flagged at 25%% tolerance: %v %v", regs, err)
	}
	// Schema mismatch refuses comparison.
	cur.Schema = ReportSchema + 1
	if _, _, err := Diff(base, cur, 25); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}
